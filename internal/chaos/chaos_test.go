package chaos

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"teva/internal/artifact"
	"teva/internal/guard"
	"teva/internal/obs"
)

type payload struct {
	Name string
	Vals []int
}

// noSleep disables real retry backoff on a store under test.
func noSleep(s *artifact.Store) *artifact.Store {
	s.SetSleep(func(time.Duration) {})
	return s
}

func TestZeroOptionsIsTransparent(t *testing.T) {
	s, err := OpenStore(t.TempDir(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := artifact.SummaryKey("random", "fp-mul.d", 1.25, 1, 100, false)
	if err := s.Save(k, payload{Name: "clean", Vals: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load(k, &out) || out.Name != "clean" {
		t.Fatal("pass-through store must round-trip")
	}
}

// TestFaultDecisionsAreDeterministic replays the same operation sequence
// against two independently constructed harnesses and requires identical
// outcomes — the determinism contract for the chaos PRNG.
func TestFaultDecisionsAreDeterministic(t *testing.T) {
	opts := Options{Seed: 42, WriteFail: 0.3, ReadFail: 0.2, TornRead: 0.2, FlipRead: 0.2}
	trace := func() []string {
		var log []string
		fs := NewFS(memFS{files: map[string][]byte{}}, opts, nil)
		for i := 0; i < 40; i++ {
			name := []string{"a.json", "b.json", "c.json"}[i%3]
			if i%2 == 0 {
				err := fs.WriteFileAtomic("d", name, []byte("payload-payload-payload"))
				log = append(log, "w:"+errString(err))
			} else {
				data, err := fs.ReadFile(name)
				log = append(log, "r:"+errString(err)+":"+string(data))
			}
		}
		return log
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequence diverged at op %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestFaultDecisionsIndependentOfInterleaving drives two paths from two
// goroutines in scheduler-dependent order and checks each path saw the
// same per-path fault sequence a serial run produces.
func TestFaultDecisionsIndependentOfInterleaving(t *testing.T) {
	opts := Options{Seed: 7, ReadFail: 0.5}
	serial := func(path string) []string {
		fs := NewFS(memFS{files: map[string][]byte{path: []byte("x")}}, opts, nil)
		var log []string
		for i := 0; i < 20; i++ {
			_, err := fs.ReadFile(path)
			log = append(log, errString(err))
		}
		return log
	}
	wantA, wantB := serial("a.json"), serial("b.json")

	fs := NewFS(memFS{files: map[string][]byte{"a.json": []byte("x"), "b.json": []byte("x")}}, opts, nil)
	logs := map[string][]string{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, path := range []string{"a.json", "b.json"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			var log []string
			for i := 0; i < 20; i++ {
				_, err := fs.ReadFile(path)
				log = append(log, errString(err))
			}
			mu.Lock()
			logs[path] = log
			mu.Unlock()
		}(path)
	}
	wg.Wait()
	if strings.Join(logs["a.json"], ",") != strings.Join(wantA, ",") {
		t.Fatalf("path a fault sequence depends on interleaving:\n got %v\nwant %v", logs["a.json"], wantA)
	}
	if strings.Join(logs["b.json"], ",") != strings.Join(wantB, ",") {
		t.Fatalf("path b fault sequence depends on interleaving:\n got %v\nwant %v", logs["b.json"], wantB)
	}
}

// TestChaosReadFaultsDegradeToMisses hammers a store whose reads fail,
// tear, and bit-flip: every Load must either be a true hit (identical to
// the saved payload) or a miss — never a mangled payload, never a panic.
func TestChaosReadFaultsDegradeToMisses(t *testing.T) {
	reg := obs.NewRegistry(nil)
	s, err := OpenStore(t.TempDir(), reg, Options{
		Seed: 0xC0FFEE, ReadFail: 0.2, TornRead: 0.2, FlipRead: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	noSleep(s)
	k := artifact.CampaignKey("cg", "WA", "VR20", 24, 1, true, "t")
	want := payload{Name: "truth", Vals: []int{3, 1, 4, 1, 5}}
	if err := s.Save(k, want); err != nil {
		t.Fatal(err)
	}
	hits, misses := 0, 0
	for i := 0; i < 300; i++ {
		var out payload
		if s.Load(k, &out) {
			hits++
			if out.Name != want.Name || len(out.Vals) != 5 || out.Vals[4] != 5 {
				t.Fatalf("iteration %d: corrupted hit %+v", i, out)
			}
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("want a mix of clean hits and degraded misses, got %d/%d", hits, misses)
	}
	if faults, _ := func() (int64, int64) {
		return reg.Counter(MetricFaultsInjected).Value(), 0
	}(); faults == 0 {
		t.Fatal("harness reported no injected faults")
	}
}

// TestChaosWriteFaultsAreRetriedOrSurfaced: with a moderate write-failure
// probability the store's bounded retry absorbs most faults; saves either
// succeed (and verify) or return a clean error — and a failed save never
// leaves a loadable or partial entry.
func TestChaosWriteFaultsAreRetriedOrSurfaced(t *testing.T) {
	reg := obs.NewRegistry(nil)
	s, err := OpenStore(t.TempDir(), reg, Options{Seed: 99, WriteFail: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	noSleep(s)
	saved, failed := 0, 0
	for i := 0; i < 60; i++ {
		k := artifact.SummaryKey("random", "op", float64(i), 1, i, false)
		err := s.Save(k, payload{Name: "v", Vals: []int{i}})
		var out payload
		switch {
		case err == nil:
			saved++
			if !s.Load(k, &out) || out.Vals[0] != i {
				t.Fatalf("save %d reported success but does not load", i)
			}
		default:
			failed++
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if s.Load(k, &out) {
				t.Fatalf("failed save %d left a loadable entry", i)
			}
		}
	}
	if saved == 0 {
		t.Fatal("retry should rescue most writes at 40% per-attempt failure")
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatalf("expected retries under write chaos: %+v", st)
	}
	if int(st.WriteErrors) != failed {
		t.Fatalf("write errors %d != surfaced failures %d", st.WriteErrors, failed)
	}
}

// TestInjectedPanicsAreCatchable: panics fire only on matching paths and
// are convertible by the guard barrier into named errors.
func TestInjectedPanicsAreCatchable(t *testing.T) {
	fs := NewFS(memFS{files: map[string][]byte{"campaign-x.json": []byte("d"), "dta-y.json": []byte("d")}},
		Options{Seed: 5, Panic: 1.0, PanicOn: "campaign-"}, obs.NewRegistry(nil))
	// Non-matching path: never panics.
	if _, err := fs.ReadFile("dta-y.json"); err != nil {
		t.Fatalf("non-matching path must be untouched: %v", err)
	}
	err := guard.Recovered("cell cg/WA/VR20", func() error {
		_, _ = fs.ReadFile("campaign-x.json")
		return nil
	})
	if !guard.IsPanic(err) {
		t.Fatalf("injected panic must cross the barrier as a PanicError: %v", err)
	}
	if !strings.Contains(err.Error(), PanicValue) || !strings.Contains(err.Error(), "cell cg/WA/VR20") {
		t.Fatalf("panic error lost identity: %v", err)
	}
	if _, panics := fs.Injected(); panics != 1 {
		t.Fatalf("panic counter %d", panics)
	}
}

// memFS is a trivial in-memory artifact.FS for harness unit tests.
type memFS struct {
	files map[string][]byte
}

func (m memFS) MkdirAll(string) error { return nil }

func (m memFS) SweepTmp(string, time.Duration) int { return 0 }

func (m memFS) ReadFile(name string) ([]byte, error) {
	data, ok := m.files[name]
	if !ok {
		return nil, errors.New("memfs: not found")
	}
	return data, nil
}

func (m memFS) WriteFileAtomic(dir, name string, data []byte) error {
	m.files[name] = append([]byte(nil), data...)
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}
