// Package chaos is the fault-injection harness for the pipeline itself.
// TEVA's whole premise is injecting faults into a simulated processor and
// watching how workloads degrade; chaos turns the same discipline on the
// framework: it wraps the artifact store's filesystem (artifact.FS) with
// probabilistic write failures, torn and bit-flipped reads, ENOSPC-style
// errors and injected panics, so the chaos test suite can prove that
// every storage fault degrades to a cache miss, a retried write, or a
// clean per-cell error — never a wrong result and never a hung run.
//
// Fault decisions honor the repo's determinism contract: each decision is
// a pure function of (seed, operation, path, per-path call number), mixed
// through SplitMix64 — no global PRNG whose draw order would depend on
// goroutine scheduling. Two runs over the same store traffic inject the
// same faults, regardless of worker count or interleaving.
package chaos

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"teva/internal/artifact"
	"teva/internal/obs"
)

// ErrInjected is the root of every chaos-injected I/O error, so callers
// (and tests) can recognize harness-made failures with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// PanicValue is the value chaos panics with when an injected panic fires;
// the guard barrier surfaces it inside a *guard.PanicError.
const PanicValue = "chaos: injected panic"

// Options sets the per-operation fault probabilities, all in [0, 1].
// Effects are drawn independently (a read may be both delayed to a
// failure and, on the next call, flipped). The zero Options injects
// nothing and the wrapper is a transparent pass-through.
type Options struct {
	// Seed drives every fault decision.
	Seed uint64
	// WriteFail is the probability that one WriteFileAtomic attempt
	// fails (ENOSPC-style) before touching the underlying filesystem —
	// exercising the store's bounded retry.
	WriteFail float64
	// ReadFail is the probability a ReadFile returns an I/O error
	// (degrades to a miss in the artifact store).
	ReadFail float64
	// TornRead is the probability a ReadFile returns only a prefix of
	// the data, as after a crash mid-write on a non-atomic filesystem.
	TornRead float64
	// FlipRead is the probability a ReadFile returns the data with one
	// bit flipped — the case only the payload checksum can catch.
	FlipRead float64
	// Panic is the probability an operation panics instead of returning,
	// modeling a wedged syscall surfacing as a runtime fault. Guard
	// barriers must convert it into a named per-cell error.
	Panic float64
	// PanicOn, when non-empty, restricts injected panics to paths
	// containing the substring (e.g. "campaign-" to panic only on
	// campaign-cell artifacts and leave characterization I/O alone).
	PanicOn string
}

// Metric names published by the harness, so a chaos run's metrics
// snapshot records exactly how much abuse the store absorbed.
const (
	MetricFaultsInjected = "chaos.faults_injected"
	MetricPanicsInjected = "chaos.panics_injected"
)

// FS wraps an artifact.FS with deterministic fault injection.
type FS struct {
	inner artifact.FS
	opts  Options

	mu    sync.Mutex
	calls map[string]uint64

	faults, panics *obs.Counter
}

// NewFS wraps inner (nil means the real filesystem) with the given fault
// options, reporting injections on reg's chaos.* counters (nil reg is
// valid and records nothing).
func NewFS(inner artifact.FS, opts Options, reg *obs.Registry) *FS {
	if inner == nil {
		inner = artifact.OSFS{}
	}
	return &FS{
		inner:  inner,
		opts:   opts,
		calls:  make(map[string]uint64),
		faults: reg.Counter(MetricFaultsInjected),
		panics: reg.Counter(MetricPanicsInjected),
	}
}

// OpenStore opens an artifact store at dir whose filesystem is wrapped
// with chaos faults — the one-line entry point for the chaos test suite.
func OpenStore(dir string, reg *obs.Registry, opts Options) (*artifact.Store, error) {
	return artifact.OpenFS(dir, reg, NewFS(nil, opts, reg))
}

// splitmix64 is the standard SplitMix64 finalizer-style mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a, matching the repo's seed-derivation idiom.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// draw returns a deterministic uniform float64 in [0, 1) for the n-th
// occurrence of (op, path), independent per effect salt.
func draw(seed uint64, op, path string, n uint64, salt uint64) float64 {
	u := splitmix64(seed ^ hashString(op+"\x00"+path) ^ splitmix64(n+salt))
	return float64(u>>11) / (1 << 53)
}

// next returns the 1-based call number for (op, path). Per-path counters
// make each decision independent of how operations on other paths
// interleave, which is what keeps injection deterministic under a
// concurrent matrix build.
func (c *FS) next(op, path string) uint64 {
	key := op + "\x00" + path
	c.mu.Lock()
	c.calls[key]++
	n := c.calls[key]
	c.mu.Unlock()
	return n
}

// maybePanic fires an injected panic for the call when the dice say so.
func (c *FS) maybePanic(op, path string, n uint64) {
	if c.opts.Panic <= 0 {
		return
	}
	if c.opts.PanicOn != "" && !strings.Contains(path, c.opts.PanicOn) {
		return
	}
	if draw(c.opts.Seed, op, path, n, 5) < c.opts.Panic {
		c.panics.Inc()
		panic(fmt.Sprintf("%s (%s %s, call %d)", PanicValue, op, path, n))
	}
}

// MkdirAll implements artifact.FS; directory creation is left reliable
// (a store that cannot even open is outside the failure model).
func (c *FS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

// SweepTmp implements artifact.FS; the sweep is left reliable (it only
// removes debris, and a skipped file is reswept on the next open).
func (c *FS) SweepTmp(dir string, age time.Duration) int { return c.inner.SweepTmp(dir, age) }

// ReadFile implements artifact.FS with read-side faults: hard errors,
// torn (truncated) reads, and single-bit flips.
func (c *FS) ReadFile(name string) ([]byte, error) {
	n := c.next("read", name)
	c.maybePanic("read", name, n)
	if draw(c.opts.Seed, "read", name, n, 1) < c.opts.ReadFail {
		c.faults.Inc()
		return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
	}
	data, err := c.inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	if len(data) > 0 && draw(c.opts.Seed, "read", name, n, 2) < c.opts.TornRead {
		c.faults.Inc()
		cut := 1 + int(splitmix64(c.opts.Seed^hashString(name)^n)%uint64(len(data)))
		if cut >= len(data) {
			cut = len(data) - 1
		}
		return append([]byte(nil), data[:cut]...), nil
	}
	if len(data) > 0 && draw(c.opts.Seed, "read", name, n, 3) < c.opts.FlipRead {
		c.faults.Inc()
		flipped := append([]byte(nil), data...)
		bit := splitmix64(c.opts.Seed^hashString(name)^(n+77)) % uint64(len(data)*8)
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, nil
}

// WriteFileAtomic implements artifact.FS with ENOSPC-style write
// failures. A failed attempt never reaches the inner filesystem, so it
// leaves no partial state — matching the contract the real
// WriteFileAtomic provides.
func (c *FS) WriteFileAtomic(dir, name string, data []byte) error {
	n := c.next("write", name)
	c.maybePanic("write", name, n)
	if draw(c.opts.Seed, "write", name, n, 4) < c.opts.WriteFail {
		c.faults.Inc()
		return fmt.Errorf("%w: write %s: no space left on device", ErrInjected, name)
	}
	return c.inner.WriteFileAtomic(dir, name, data)
}

// Injected returns how many I/O faults and panics the harness has fired.
func (c *FS) Injected() (faults, panics int64) {
	return c.faults.Value(), c.panics.Value()
}
