// Package cpu is the microarchitecture-level simulator of the application
// evaluation phase (Section III-B): it executes MRV binaries cycle by
// cycle on a single-issue pipelined core model with scoreboarded
// multi-cycle functional units (whose floating-point latencies mirror the
// gate-level FPU pipelines), a direct-mapped data cache, static
// not-taken branch handling with a taken-branch redirect penalty, and a
// register writeback hook at which timing errors are injected.
//
// This is the gem5 substitute of the reproduction: a performance model,
// not an RTL model — architectural state is computed functionally while
// cycle counts come from the hazard/latency model. Floating-point
// arithmetic uses the same bit-accurate flush-to-zero softfp semantics as
// the gate-level FPU, so circuit-level bitmasks apply 1-to-1 to the
// values the software layer observes. Injected corruption propagates
// architecturally: corrupted indexes cause memory faults (Crash),
// corrupted loop bounds cause livelock (Timeout), corrupted data causes
// silent output corruption (SDC), and corrupted-but-dead values are
// masked — the four outcome classes of the paper.
package cpu

import (
	"fmt"
	"io"
	"math"

	"teva/internal/fpu"
	"teva/internal/isa"
	"teva/internal/softfp"
)

// Status is the final state of a simulation run.
type Status uint8

// Run outcomes. The campaign layer maps them (plus output comparison)
// onto the paper's Masked/SDC/Crash/Timeout classes.
const (
	// Halted: the program exited via the exit syscall.
	Halted Status = iota
	// Crashed: an unrecoverable fault (memory fault, illegal
	// instruction, FP invalid-operation trap, PC out of text).
	Crashed
	// TimedOut: the cycle budget was exhausted.
	TimedOut
)

func (s Status) String() string {
	switch s {
	case Halted:
		return "halted"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed-out"
	}
	return "unknown"
}

// Event describes one register writeback offered to the injector.
type Event struct {
	// Seq is the dynamic index of the instruction (commit order).
	Seq int64
	// Cycle is the writeback cycle.
	Cycle uint64
	// FPUDatapath reports whether this result was produced by one of the
	// 12 gate-level FPU pipelines.
	FPUDatapath bool
	// FPOp identifies the pipeline when FPUDatapath.
	FPOp fpu.Op
	// A, B are the operand encodings (FPUDatapath only).
	A, B uint64
	// Result is the value about to be written.
	Result uint64
	// Width is the destination register width in bits (32 or 64).
	Width int
}

// Injector decides, per writeback, which bits of the result to corrupt.
// Returning 0 leaves the writeback intact. Implementations include the
// DA/IA/WA error models and the trace capturer (which always returns 0).
type Injector interface {
	OnWriteback(ev Event) uint64
}

// Latencies of the functional units, in cycles.
type Latencies struct {
	IntALU        int
	IntMul        int
	IntDiv        int
	CacheHit      int
	CacheMiss     int
	BranchPenalty int
	FP            [fpu.NumOps]int
}

// DefaultLatencies mirror the gate-level FPU pipeline depths.
func DefaultLatencies() Latencies {
	l := Latencies{
		IntALU: 1, IntMul: 3, IntDiv: 16,
		CacheHit: 2, CacheMiss: 22, BranchPenalty: 2,
	}
	fpLat := map[fpu.Op]int{
		fpu.DAdd: 6, fpu.DSub: 6, fpu.DMul: 6, fpu.DDiv: 59, fpu.DI2F: 3, fpu.DF2I: 3,
		fpu.SAdd: 6, fpu.SSub: 6, fpu.SMul: 6, fpu.SDiv: 30, fpu.SI2F: 3, fpu.SF2I: 3,
	}
	for op, v := range fpLat {
		l.FP[op] = v
	}
	return l
}

// Config parameterizes a simulation.
type Config struct {
	// MemSize is the flat memory size in bytes (default isa.DefaultMemSize).
	MemSize int
	// Latencies override the default FU latencies when non-nil.
	Latencies *Latencies
	// Injector receives every register writeback (nil: no injection).
	Injector Injector
	// TrapFPInvalid makes invalid FP operations (NaN production from
	// non-NaN inputs, invalid conversions) raise a crash, modelling the
	// FPU exception path. Benchmarks are exception-free when uncorrupted.
	TrapFPInvalid bool
	// MaxOutput caps the console buffer (default 1 MiB).
	MaxOutput int
	// Trace, when non-nil, receives one line per executed instruction
	// (cycle, pc, disassembly) — a debugging aid with a large slowdown.
	Trace io.Writer
}

// Result summarizes a finished run.
type Result struct {
	Status   Status
	ExitCode int32
	// Reason describes a crash.
	Reason string
	// Cycles is the total simulated cycle count.
	Cycles uint64
	// Instret is the number of executed instructions.
	Instret int64
	// FPOps counts executed instructions per FPU pipeline.
	FPOps [fpu.NumOps]int64
	// Injections counts non-zero masks applied.
	Injections int64
	// DCacheMisses and ICacheMisses count cache misses.
	DCacheMisses int64
	ICacheMisses int64
	// Branches and TakenBranches count control-flow statistics.
	Branches, TakenBranches int64
}

// CPU is one simulator instance.
type CPU struct {
	cfg  Config
	lat  Latencies
	prog *isa.Program

	pc        uint32
	xreg      [32]uint32
	freg      [32]uint64
	mem       []byte
	output    []byte
	decoded   []isa.Inst // decoded text, indexed by (pc-TextBase)/4
	decodeErr []bool

	// Timing state.
	cycle     uint64
	intReady  [32]uint64 // cycle at which the register value is available
	fpReady   [32]uint64
	divFree   uint64 // non-pipelined divider next-free cycle
	fpDivFree uint64

	// Cache models: direct-mapped, 32-byte lines.
	tags  []uint32
	itags []uint32

	res Result
}

const (
	cacheLines   = 512 // 16 KiB, 32-byte lines
	cacheLineLog = 5
	icacheLines  = 256 // 8 KiB instruction cache
)

// New prepares a simulator for the program.
func New(prog *isa.Program, cfg Config) *CPU {
	if cfg.MemSize == 0 {
		cfg.MemSize = isa.DefaultMemSize
	}
	if cfg.MaxOutput == 0 {
		cfg.MaxOutput = 1 << 20
	}
	lat := DefaultLatencies()
	if cfg.Latencies != nil {
		lat = *cfg.Latencies
	}
	c := &CPU{
		cfg:   cfg,
		lat:   lat,
		prog:  prog,
		pc:    prog.Entry,
		mem:   make([]byte, cfg.MemSize),
		tags:  make([]uint32, cacheLines),
		itags: make([]uint32, icacheLines),
	}
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
	}
	for i := range c.itags {
		c.itags[i] = ^uint32(0)
	}
	copy(c.mem[isa.DataBase:], prog.Data)
	c.xreg[2] = isa.StackTop
	c.decoded = make([]isa.Inst, len(prog.Text))
	c.decodeErr = make([]bool, len(prog.Text))
	for i, raw := range prog.Text {
		in, err := isa.Decode(raw)
		c.decoded[i] = in
		c.decodeErr[i] = err != nil
	}
	return c
}

// Mem exposes the data memory for output-region classification.
func (c *CPU) Mem() []byte { return c.mem }

// Output returns the console output produced so far.
func (c *CPU) Output() []byte { return c.output }

// crash terminates the run.
func (c *CPU) crash(format string, args ...any) {
	c.res.Status = Crashed
	c.res.Reason = fmt.Sprintf(format, args...)
}

// Run simulates until halt, crash, or the cycle budget is exhausted.
func (c *CPU) Run(maxCycles uint64) Result {
	c.res = Result{Status: TimedOut}
	running := true
	for running && c.cycle < maxCycles {
		running = c.step()
	}
	if c.cycle >= maxCycles && c.res.Status == TimedOut {
		c.res.Status = TimedOut
	}
	c.res.Cycles = c.cycle
	return c.res
}

// step executes one instruction; returns false when the run ends.
func (c *CPU) step() bool {
	idx := (c.pc - isa.TextBase) / 4
	if c.pc < isa.TextBase || c.pc%4 != 0 || int(idx) >= len(c.decoded) {
		c.crash("pc %#x outside text", c.pc)
		return false
	}
	in := c.decoded[idx]
	if c.decodeErr[idx] {
		c.crash("illegal instruction %#08x at pc %#x", in.Raw, c.pc)
		return false
	}
	if c.cfg.Trace != nil {
		fmt.Fprintf(c.cfg.Trace, "%10d %08x  %s\n", c.cycle, c.pc, isa.Disassemble(in))
	}
	// Instruction fetch: a miss in the (direct-mapped) instruction cache
	// stalls the front end for the refill.
	line := c.pc >> cacheLineLog
	slot := line % icacheLines
	if c.itags[slot] != line {
		c.itags[slot] = line
		c.res.ICacheMisses++
		c.cycle += uint64(c.lat.CacheMiss - c.lat.CacheHit)
	}
	c.cycle++ // fetch/issue slot
	c.res.Instret++
	nextPC := c.pc + 4

	switch in.Op {
	case isa.OpInt:
		c.execInt(in)
	case isa.OpIntImm:
		c.execIntImm(in)
	case isa.OpLui:
		c.writeInt(in.Rd, uint32(in.Imm), c.cycle+uint64(c.lat.IntALU))
	case isa.OpAuipc:
		c.writeInt(in.Rd, c.pc+uint32(in.Imm), c.cycle+uint64(c.lat.IntALU))
	case isa.OpLoad:
		if !c.execLoad(in) {
			return false
		}
	case isa.OpStore:
		if !c.execStore(in) {
			return false
		}
	case isa.OpFLoad:
		if !c.execFLoad(in) {
			return false
		}
	case isa.OpFStore:
		if !c.execFStore(in) {
			return false
		}
	case isa.OpBranch:
		c.res.Branches++
		if c.evalBranch(in) {
			c.res.TakenBranches++
			c.cycle += uint64(c.lat.BranchPenalty)
			nextPC = c.pc + uint32(in.Imm)
		}
	case isa.OpJal:
		c.writeInt(in.Rd, c.pc+4, c.cycle+1)
		c.cycle += uint64(c.lat.BranchPenalty)
		nextPC = c.pc + uint32(in.Imm)
	case isa.OpJalr:
		target := (c.readInt(in.Rs1) + uint32(in.Imm)) &^ 1
		c.writeInt(in.Rd, c.pc+4, c.cycle+1)
		c.cycle += uint64(c.lat.BranchPenalty)
		nextPC = target
	case isa.OpSys:
		if !c.execSyscall() {
			return false
		}
	case isa.OpFP:
		if !c.execFP(in) {
			return false
		}
	default:
		c.crash("unimplemented opcode %#x", uint8(in.Op))
		return false
	}
	if c.res.Status == Crashed || c.res.Status == Halted {
		return false
	}
	c.pc = nextPC
	return true
}

// readInt returns rs1's value, advancing the cycle to its ready time
// (scoreboard stall).
func (c *CPU) readInt(r uint8) uint32 {
	if t := c.intReady[r]; t > c.cycle {
		c.cycle = t
	}
	return c.xreg[r]
}

func (c *CPU) readFP(r uint8) uint64 {
	if t := c.fpReady[r]; t > c.cycle {
		c.cycle = t
	}
	return c.freg[r]
}

// writeInt performs an integer writeback, consulting the injector.
func (c *CPU) writeInt(r uint8, v uint32, ready uint64) {
	if c.cfg.Injector != nil {
		mask := c.cfg.Injector.OnWriteback(Event{
			Seq: c.res.Instret, Cycle: ready, Result: uint64(v), Width: 32,
		})
		if mask != 0 {
			v ^= uint32(mask)
			c.res.Injections++
		}
	}
	if r == 0 {
		return
	}
	c.xreg[r] = v
	c.intReady[r] = ready
}

// writeFPRaw writes an FP register without consulting the injector (loads
// and moves, which bypass the FPU datapath).
func (c *CPU) writeFPRaw(r uint8, v uint64, ready uint64) {
	c.freg[r] = v
	c.fpReady[r] = ready
}

func (c *CPU) execInt(in isa.Inst) {
	a := c.readInt(in.Rs1)
	b := c.readInt(in.Rs2)
	lat := uint64(c.lat.IntALU)
	var v uint32
	if in.Funct7 == isa.F7MulD {
		switch in.Funct3 {
		case isa.F3Mul:
			v = uint32(int32(a) * int32(b))
			lat = uint64(c.lat.IntMul)
		case isa.F3Mulh:
			v = uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
			lat = uint64(c.lat.IntMul)
		case isa.F3Div, isa.F3Divu, isa.F3Rem, isa.F3Remu:
			v = c.intDivide(in.Funct3, a, b)
			if t := c.divFree; t > c.cycle {
				c.cycle = t // structural hazard: non-pipelined divider
			}
			lat = uint64(c.lat.IntDiv)
			c.divFree = c.cycle + lat
		}
	} else {
		switch in.Funct3 {
		case isa.F3AddSub:
			if in.Funct7 == isa.F7Alt {
				v = a - b
			} else {
				v = a + b
			}
		case isa.F3Sll:
			v = a << (b & 31)
		case isa.F3Slt:
			if int32(a) < int32(b) {
				v = 1
			}
		case isa.F3Sltu:
			if a < b {
				v = 1
			}
		case isa.F3Xor:
			v = a ^ b
		case isa.F3SrlSra:
			if in.Funct7 == isa.F7Alt {
				v = uint32(int32(a) >> (b & 31))
			} else {
				v = a >> (b & 31)
			}
		case isa.F3Or:
			v = a | b
		case isa.F3And:
			v = a & b
		}
	}
	c.writeInt(in.Rd, v, c.cycle+lat)
}

// intDivide implements the RISC-style non-trapping division semantics.
func (c *CPU) intDivide(f3 uint8, a, b uint32) uint32 {
	switch f3 {
	case isa.F3Div:
		if b == 0 {
			return ^uint32(0)
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return a
		}
		return uint32(int32(a) / int32(b))
	case isa.F3Divu:
		if b == 0 {
			return ^uint32(0)
		}
		return a / b
	case isa.F3Rem:
		if b == 0 {
			return a
		}
		if int32(a) == math.MinInt32 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	default: // remu
		if b == 0 {
			return a
		}
		return a % b
	}
}

func (c *CPU) execIntImm(in isa.Inst) {
	a := c.readInt(in.Rs1)
	imm := uint32(in.Imm)
	var v uint32
	switch in.Funct3 {
	case isa.F3AddSub:
		v = a + imm
	case isa.F3Sll:
		v = a << (imm & 31)
	case isa.F3Slt:
		if int32(a) < in.Imm {
			v = 1
		}
	case isa.F3Sltu:
		if a < imm {
			v = 1
		}
	case isa.F3Xor:
		v = a ^ imm
	case isa.F3SrlSra:
		if in.Imm>>5&0x7f == int32(isa.F7Alt) {
			v = uint32(int32(a) >> (imm & 31))
		} else {
			v = a >> (imm & 31)
		}
	case isa.F3Or:
		v = a | imm
	case isa.F3And:
		v = a & imm
	}
	c.writeInt(in.Rd, v, c.cycle+uint64(c.lat.IntALU))
}

func (c *CPU) evalBranch(in isa.Inst) bool {
	a := c.readInt(in.Rs1)
	b := c.readInt(in.Rs2)
	switch in.Funct3 {
	case isa.F3Beq:
		return a == b
	case isa.F3Bne:
		return a != b
	case isa.F3Blt:
		return int32(a) < int32(b)
	case isa.F3Bge:
		return int32(a) >= int32(b)
	case isa.F3Bltu:
		return a < b
	case isa.F3Bgeu:
		return a >= b
	}
	return false
}

// memAccess validates an address and returns the cache latency.
func (c *CPU) memAccess(addr uint32, size uint32) (uint64, bool) {
	if addr%size != 0 {
		c.crash("misaligned %d-byte access at %#x (pc %#x)", size, addr, c.pc)
		return 0, false
	}
	if uint64(addr)+uint64(size) > uint64(len(c.mem)) {
		c.crash("memory fault at %#x (pc %#x)", addr, c.pc)
		return 0, false
	}
	line := addr >> cacheLineLog
	slot := line % cacheLines
	if c.tags[slot] == line {
		return uint64(c.lat.CacheHit), true
	}
	c.tags[slot] = line
	c.res.DCacheMisses++
	return uint64(c.lat.CacheMiss), true
}

func (c *CPU) execLoad(in isa.Inst) bool {
	addr := c.readInt(in.Rs1) + uint32(in.Imm)
	var size uint32 = 4
	if in.Funct3 == isa.F3Byte || in.Funct3 == isa.F3ByteU {
		size = 1
	}
	lat, ok := c.memAccess(addr, size)
	if !ok {
		return false
	}
	var v uint32
	switch in.Funct3 {
	case isa.F3Word:
		v = uint32(c.mem[addr]) | uint32(c.mem[addr+1])<<8 |
			uint32(c.mem[addr+2])<<16 | uint32(c.mem[addr+3])<<24
	case isa.F3Byte:
		v = uint32(int32(int8(c.mem[addr])))
	case isa.F3ByteU:
		v = uint32(c.mem[addr])
	default:
		c.crash("illegal load funct3 %d", in.Funct3)
		return false
	}
	c.writeInt(in.Rd, v, c.cycle+lat)
	return true
}

func (c *CPU) execStore(in isa.Inst) bool {
	addr := c.readInt(in.Rs1) + uint32(in.Imm)
	v := c.readInt(in.Rs2)
	var size uint32 = 4
	if in.Funct3 == isa.F3Byte {
		size = 1
	}
	if _, ok := c.memAccess(addr, size); !ok {
		return false
	}
	switch in.Funct3 {
	case isa.F3Word:
		c.mem[addr] = byte(v)
		c.mem[addr+1] = byte(v >> 8)
		c.mem[addr+2] = byte(v >> 16)
		c.mem[addr+3] = byte(v >> 24)
	case isa.F3Byte:
		c.mem[addr] = byte(v)
	default:
		c.crash("illegal store funct3 %d", in.Funct3)
		return false
	}
	return true
}

func (c *CPU) execFLoad(in isa.Inst) bool {
	addr := c.readInt(in.Rs1) + uint32(in.Imm)
	size := uint32(8)
	if in.Funct3 == isa.F3FWord {
		size = 4
	}
	lat, ok := c.memAccess(addr, size)
	if !ok {
		return false
	}
	var v uint64
	for i := uint32(0); i < size; i++ {
		v |= uint64(c.mem[addr+i]) << (8 * i)
	}
	c.writeFPRaw(in.Rd, v, c.cycle+lat)
	return true
}

func (c *CPU) execFStore(in isa.Inst) bool {
	addr := c.readInt(in.Rs1) + uint32(in.Imm)
	v := c.readFP(in.Rs2)
	size := uint32(8)
	if in.Funct3 == isa.F3FWord {
		size = 4
	}
	if _, ok := c.memAccess(addr, size); !ok {
		return false
	}
	for i := uint32(0); i < size; i++ {
		c.mem[addr+i] = byte(v >> (8 * i))
	}
	return true
}

func (c *CPU) execSyscall() bool {
	code := c.readInt(10) // a0
	arg := c.readInt(11)  // a1
	switch code {
	case isa.SysPrintInt:
		c.print([]byte(fmt.Sprintf("%d", int32(arg))))
	case isa.SysPrintFP:
		c.print([]byte(fmt.Sprintf("%g", math.Float64frombits(c.readFP(10)))))
	case isa.SysPrintChar:
		c.print([]byte{byte(arg)})
	case isa.SysPrintStr:
		for addr := arg; ; addr++ {
			if uint64(addr) >= uint64(len(c.mem)) {
				c.crash("string fault at %#x", addr)
				return false
			}
			b := c.mem[addr]
			if b == 0 {
				break
			}
			c.print([]byte{b})
		}
	case isa.SysCycles:
		c.writeInt(10, uint32(c.cycle), c.cycle+1)
	case isa.SysExit:
		c.res.Status = Halted
		c.res.ExitCode = int32(arg)
		return false
	default:
		c.crash("unknown syscall %d", code)
		return false
	}
	return true
}

func (c *CPU) print(b []byte) {
	if len(c.output)+len(b) <= c.cfg.MaxOutput {
		c.output = append(c.output, b...)
	}
}

// fpOpFor maps an FP funct7 to its FPU pipeline.
var fpOpFor = map[isa.FPFunc]fpu.Op{
	isa.FPAddD: fpu.DAdd, isa.FPSubD: fpu.DSub, isa.FPMulD: fpu.DMul,
	isa.FPDivD: fpu.DDiv, isa.FPI2FD: fpu.DI2F, isa.FPF2ID: fpu.DF2I,
	isa.FPAddS: fpu.SAdd, isa.FPSubS: fpu.SSub, isa.FPMulS: fpu.SMul,
	isa.FPDivS: fpu.SDiv, isa.FPI2FS: fpu.SI2F, isa.FPF2IS: fpu.SF2I,
}

func (c *CPU) execFP(in isa.Inst) bool {
	fn := isa.FPFunc(in.Funct7)
	if fn.IsFPUDatapath() {
		return c.execFPUDatapath(in, fpOpFor[fn])
	}
	switch fn {
	case isa.FPMv:
		c.writeFPRaw(in.Rd, c.readFP(in.Rs1), c.cycle+1)
	case isa.FPNegD:
		c.writeFPRaw(in.Rd, c.readFP(in.Rs1)^1<<63, c.cycle+1)
	case isa.FPAbsD:
		c.writeFPRaw(in.Rd, c.readFP(in.Rs1)&^(1<<63), c.cycle+1)
	case isa.FPEqD, isa.FPLtD, isa.FPLeD:
		a := math.Float64frombits(c.readFP(in.Rs1))
		b := math.Float64frombits(c.readFP(in.Rs2))
		var v uint32
		switch {
		//teva:allow floateq -- FEQ.D is defined as exact IEEE-754 equality
		case fn == isa.FPEqD && a == b, fn == isa.FPLtD && a < b, fn == isa.FPLeD && a <= b:
			v = 1
		}
		c.writeInt(in.Rd, v, c.cycle+1)
	case isa.FPMvXD:
		c.writeInt(in.Rd, uint32(c.readFP(in.Rs1)), c.cycle+1)
	case isa.FPMvDX:
		c.writeFPRaw(in.Rd, uint64(c.readInt(in.Rs1)), c.cycle+1)
	case isa.FPCvtSD:
		// Narrowing conversion via the softfp reference (not a gate-level
		// pipeline in the reference design; excluded from injection).
		d := math.Float64frombits(c.readFP(in.Rs1))
		c.writeFPRaw(in.Rd, uint64(math.Float32bits(float32(d))), c.cycle+3)
	case isa.FPCvtDS:
		s := math.Float32frombits(uint32(c.readFP(in.Rs1)))
		c.writeFPRaw(in.Rd, math.Float64bits(float64(s)), c.cycle+3)
	default:
		c.crash("illegal fp funct7 %d", in.Funct7)
		return false
	}
	return true
}

// execFPUDatapath executes one of the 12 modelled FPU instructions with
// softfp (bit-identical to the gate-level golden model) and offers the
// writeback to the injector.
func (c *CPU) execFPUDatapath(in isa.Inst, op fpu.Op) bool {
	var a, b uint64
	if op == fpu.DI2F || op == fpu.SI2F {
		a = uint64(c.readInt(in.Rs1))
	} else {
		a = c.readFP(in.Rs1)
		if op.NumOperands() == 2 {
			b = c.readFP(in.Rs2)
		}
	}
	if !op.Double() && op != fpu.SI2F {
		a &= 0xffffffff
		b &= 0xffffffff
	}
	result, invalid := goldenWithFlags(op, a, b)
	if c.cfg.TrapFPInvalid && invalid {
		c.crash("fp invalid-operation exception (%v at pc %#x)", op, c.pc)
		return false
	}
	lat := uint64(c.lat.FP[op])
	if op == fpu.DDiv || op == fpu.SDiv {
		if t := c.fpDivFree; t > c.cycle {
			c.cycle = t
		}
		c.fpDivFree = c.cycle + lat
	}
	ready := c.cycle + lat
	c.res.FPOps[op]++
	if c.cfg.Injector != nil {
		mask := c.cfg.Injector.OnWriteback(Event{
			Seq: c.res.Instret, Cycle: ready,
			FPUDatapath: true, FPOp: op, A: a, B: b, Result: result,
			Width: op.ResultWidth(),
		})
		if mask != 0 {
			result ^= mask & widthMask(op.ResultWidth())
			c.res.Injections++
		}
	}
	if op == fpu.DF2I || op == fpu.SF2I {
		c.writeInt(in.Rd, uint32(result), ready)
	} else {
		c.writeFPRaw(in.Rd, result, ready)
	}
	return true
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// goldenWithFlags computes the softfp result and whether the operation is
// invalid (the trap condition).
func goldenWithFlags(op fpu.Op, a, b uint64) (uint64, bool) {
	f := op.Format()
	var r uint64
	var fl softfp.Flags
	switch op {
	case fpu.DAdd, fpu.SAdd:
		r, fl = f.Add(a, b)
	case fpu.DSub, fpu.SSub:
		r, fl = f.Sub(a, b)
	case fpu.DMul, fpu.SMul:
		r, fl = f.Mul(a, b)
	case fpu.DDiv, fpu.SDiv:
		r, fl = f.Div(a, b)
	case fpu.DI2F, fpu.SI2F:
		r, fl = f.FromInt32(int32(uint32(a)))
	case fpu.DF2I, fpu.SF2I:
		i, ifl := f.ToInt32(a)
		return uint64(uint32(i)), ifl.Has(softfp.FlagInvalid)
	}
	return r, fl.Has(softfp.FlagInvalid)
}
