package cpu

import (
	"math"
	"strings"
	"testing"

	"teva/internal/fpu"
	"teva/internal/isa"
)

func run(t *testing.T, src string, cfg Config) (*CPU, Result) {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, cfg)
	res := c.Run(50_000_000)
	return c, res
}

func TestHaltAndExitCode(t *testing.T) {
	_, res := run(t, `
.text
main:
    li a0, 10
    li a1, 7
    ecall
`, Config{})
	if res.Status != Halted || res.ExitCode != 7 {
		t.Fatalf("result %+v", res)
	}
	if res.Instret != 5 {
		t.Fatalf("instret %d", res.Instret)
	}
}

func TestArithmeticAndOutput(t *testing.T) {
	_, res := run(t, `
.text
main:
    li   t0, 6
    li   t1, 7
    mul  t2, t0, t1
    li   a0, 1
    mv   a1, t2
    ecall
    li   a0, 3
    li   a1, '\n'
    ecall
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
}

func TestConsoleOutput(t *testing.T) {
	c, res := run(t, `
.data
msg: .asciiz "sum="
.text
main:
    la  a1, msg
    li  a0, 4
    ecall
    li  a0, 1
    li  a1, 42
    ecall
    li  a0, 10
    li  a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	if got := string(c.Output()); got != "sum=42" {
		t.Fatalf("output %q", got)
	}
}

func TestLoopAndMemory(t *testing.T) {
	// Sum 1..100 into memory, read back.
	c, res := run(t, `
.data
out: .word 0
.text
main:
    li   t0, 0      # i
    li   t1, 0      # sum
    li   t2, 101
loop:
    add  t1, t1, t0
    addi t0, t0, 1
    blt  t0, t2, loop
    la   t3, out
    sw   t1, 0(t3)
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	addr := isa.DataBase
	got := uint32(c.Mem()[addr]) | uint32(c.Mem()[addr+1])<<8 |
		uint32(c.Mem()[addr+2])<<16 | uint32(c.Mem()[addr+3])<<24
	if got != 5050 {
		t.Fatalf("sum = %d", got)
	}
	if res.Branches == 0 || res.TakenBranches == 0 {
		t.Fatal("branch statistics missing")
	}
}

func TestFloatingPoint(t *testing.T) {
	c, res := run(t, `
.data
vals: .double 1.5, 2.25
out:  .double 0, 0, 0, 0
.text
main:
    la   s0, vals
    la   s1, out
    fld  fa0, 0(s0)
    fld  fa1, 8(s0)
    fadd.d fa2, fa0, fa1
    fsd  fa2, 0(s1)
    fmul.d fa3, fa0, fa1
    fsd  fa3, 8(s1)
    fdiv.d fa4, fa1, fa0
    fsd  fa4, 16(s1)
    li   t0, 9
    fcvt.d.w fa5, t0
    fsd  fa5, 24(s1)
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	read := func(i int) float64 {
		base := isa.DataBase + 16 + i*8
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(c.Mem()[base+b]) << (8 * b)
		}
		return math.Float64frombits(v)
	}
	if read(0) != 3.75 || read(1) != 3.375 || read(2) != 1.5 || read(3) != 9 {
		t.Fatalf("fp results: %v %v %v %v", read(0), read(1), read(2), read(3))
	}
	if res.FPOps[fpu.DAdd] != 1 || res.FPOps[fpu.DMul] != 1 ||
		res.FPOps[fpu.DDiv] != 1 || res.FPOps[fpu.DI2F] != 1 {
		t.Fatalf("FP op counts %v", res.FPOps)
	}
}

func TestFPCompareAndConvert(t *testing.T) {
	_, res := run(t, `
.data
vals: .double 2.5, 7.25
.text
main:
    la   s0, vals
    fld  fa0, 0(s0)
    fld  fa1, 8(s0)
    flt.d t0, fa0, fa1
    beqz t0, fail
    fle.d t1, fa1, fa0
    bnez t1, fail
    feq.d t2, fa0, fa0
    beqz t2, fail
    fcvt.w.d t3, fa1
    li   t4, 7
    bne  t3, t4, fail
    li   a0, 10
    li   a1, 0
    ecall
fail:
    li   a0, 10
    li   a1, 1
    ecall
`, Config{})
	if res.Status != Halted || res.ExitCode != 0 {
		t.Fatalf("result %+v (%s)", res, res.Reason)
	}
}

func TestCrashOnBadMemory(t *testing.T) {
	_, res := run(t, `
.text
main:
    li  t0, 0x7fffff00
    lw  t1, 0(t0)
`, Config{})
	if res.Status != Crashed || !strings.Contains(res.Reason, "memory fault") {
		t.Fatalf("result %+v", res)
	}
}

func TestCrashOnMisaligned(t *testing.T) {
	_, res := run(t, `
.text
main:
    li  t0, 0x100001
    lw  t1, 0(t0)
`, Config{})
	if res.Status != Crashed || !strings.Contains(res.Reason, "misaligned") {
		t.Fatalf("result %+v", res)
	}
}

func TestCrashOnWildJump(t *testing.T) {
	_, res := run(t, `
.text
main:
    li  t0, 0x400000
    jr  t0
`, Config{})
	if res.Status != Crashed {
		t.Fatalf("result %+v", res)
	}
}

func TestTimeout(t *testing.T) {
	p, err := isa.Assemble(`
.text
main:
    j main
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, Config{})
	res := c.Run(10_000)
	if res.Status != TimedOut {
		t.Fatalf("result %+v", res)
	}
	if res.Cycles < 10_000 {
		t.Fatalf("cycles %d", res.Cycles)
	}
}

func TestFPInvalidTraps(t *testing.T) {
	src := `
.data
vals: .double 0.0, 0.0
.text
main:
    la   s0, vals
    fld  fa0, 0(s0)
    fld  fa1, 8(s0)
    fdiv.d fa2, fa0, fa1   # 0/0 -> invalid
    li   a0, 10
    li   a1, 0
    ecall
`
	_, res := run(t, src, Config{TrapFPInvalid: true})
	if res.Status != Crashed || !strings.Contains(res.Reason, "invalid") {
		t.Fatalf("result %+v", res)
	}
	_, res = run(t, src, Config{TrapFPInvalid: false})
	if res.Status != Halted {
		t.Fatalf("non-trapping run %+v", res)
	}
}

func TestScoreboardStalls(t *testing.T) {
	// A dependent chain on a long-latency op must cost more cycles than
	// independent ops.
	dep := `
.data
v: .double 1.000000001, 1.25
.text
main:
    la s0, v
    fld fa0, 0(s0)
    fld fa1, 8(s0)
    fdiv.d fa2, fa0, fa1
    fadd.d fa3, fa2, fa1   # depends on the divide
    li a0, 10
    li a1, 0
    ecall
`
	indep := `
.data
v: .double 1.000000001, 1.25
.text
main:
    la s0, v
    fld fa0, 0(s0)
    fld fa1, 8(s0)
    fdiv.d fa2, fa0, fa1
    fadd.d fa3, fa1, fa1   # independent
    li a0, 10
    li a1, 0
    ecall
`
	_, r1 := run(t, dep, Config{})
	_, r2 := run(t, indep, Config{})
	if r1.Cycles <= r2.Cycles {
		t.Fatalf("dependent chain (%d cycles) should be slower than independent (%d)",
			r1.Cycles, r2.Cycles)
	}
}

func TestCacheStatistics(t *testing.T) {
	_, res := run(t, `
.text
main:
    li   t0, 0x100000
    li   t1, 0
    li   t2, 8192
loop:
    lw   t3, 0(t0)
    addi t0, t0, 64      # stride past each line: all misses
    addi t1, t1, 1
    blt  t1, t2, loop
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	if res.DCacheMisses < 8000 {
		t.Fatalf("expected ~8192 misses, got %d", res.DCacheMisses)
	}
}

// countingInjector corrupts the Nth FP writeback with a fixed mask.
type countingInjector struct {
	target int64
	mask   uint64
	seen   int64
	events []Event
}

func (ci *countingInjector) OnWriteback(ev Event) uint64 {
	if !ev.FPUDatapath {
		return 0
	}
	ci.events = append(ci.events, ev)
	ci.seen++
	if ci.seen == ci.target {
		return ci.mask
	}
	return 0
}

func TestInjectionChangesResult(t *testing.T) {
	src := `
.data
vals: .double 1.5, 2.25
out:  .double 0
.text
main:
    la   s0, vals
    fld  fa0, 0(s0)
    fld  fa1, 8(s0)
    fadd.d fa2, fa0, fa1
    fsd  fa2, 16(s0)
    li   a0, 10
    li   a1, 0
    ecall
`
	inj := &countingInjector{target: 1, mask: 1 << 51}
	c, res := run(t, src, Config{Injector: inj})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	if res.Injections != 1 {
		t.Fatalf("injections %d", res.Injections)
	}
	base := isa.DataBase + 16
	var v uint64
	for b := 0; b < 8; b++ {
		v |= uint64(c.Mem()[base+b]) << (8 * b)
	}
	want := math.Float64bits(3.75) ^ 1<<51
	if v != want {
		t.Fatalf("stored %#x, want corrupted %#x", v, want)
	}
	ev := inj.events[0]
	if ev.FPOp != fpu.DAdd || ev.A != math.Float64bits(1.5) || ev.B != math.Float64bits(2.25) {
		t.Fatalf("event fields wrong: %+v", ev)
	}
	if ev.Result != math.Float64bits(3.75) {
		t.Fatalf("event result %#x", ev.Result)
	}
}

func TestInjectedIndexCrash(t *testing.T) {
	// Corrupt an f2i result that is used as an array index scale; the
	// corrupted index must cause a memory fault (the Crash class).
	src := `
.data
arr: .space 64
x:   .double 3.0
.text
main:
    la   s0, x
    fld  fa0, 0(s0)
    fcvt.w.d t0, fa0
    slli t0, t0, 2
    la   s1, arr
    add  s1, s1, t0
    lw   t1, 0(s1)
    li   a0, 10
    li   a1, 0
    ecall
`
	inj := &countingInjector{target: 1, mask: 1 << 28}
	_, res := run(t, src, Config{Injector: inj})
	if res.Status != Crashed {
		t.Fatalf("expected crash from corrupted index, got %+v", res)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	_, res := run(t, `
.text
main:
    addi zero, zero, 5
    bnez zero, fail
    li   a0, 10
    li   a1, 0
    ecall
fail:
    li   a0, 10
    li   a1, 1
    ecall
`, Config{})
	if res.Status != Halted || res.ExitCode != 0 {
		t.Fatalf("x0 was written: %+v", res)
	}
}

func TestCyclesSyscall(t *testing.T) {
	_, res := run(t, `
.text
main:
    li   a0, 5
    ecall             # a0 <- cycles
    mv   t0, a0
    li   a0, 5
    ecall
    bleu a0, t0, fail # cycle counter must advance
    li   a0, 10
    li   a1, 0
    ecall
fail:
    li   a0, 10
    li   a1, 1
    ecall
`, Config{})
	if res.Status != Halted || res.ExitCode != 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestSinglePrecisionFlow(t *testing.T) {
	c, res := run(t, `
.data
vals: .float 1.5, 2.5
out:  .float 0, 0
.text
main:
    la   s0, vals
    flw  fa0, 0(s0)
    flw  fa1, 4(s0)
    fadd.s fa2, fa0, fa1
    fsw  fa2, 8(s0)
    fmul.s fa3, fa0, fa1
    fsw  fa3, 12(s0)
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	read32 := func(off int) float32 {
		base := isa.DataBase + 8 + off
		var v uint32
		for b := 0; b < 4; b++ {
			v |= uint32(c.Mem()[base+b]) << (8 * b)
		}
		return math.Float32frombits(v)
	}
	if read32(0) != 4.0 || read32(4) != 3.75 {
		t.Fatalf("single results %v %v", read32(0), read32(4))
	}
	if res.FPOps[fpu.SAdd] != 1 || res.FPOps[fpu.SMul] != 1 {
		t.Fatalf("single FP counts %v", res.FPOps)
	}
}

func TestFPUnaryOps(t *testing.T) {
	c, res := run(t, `
.data
v:   .double -2.5
out: .double 0, 0, 0
.text
main:
    la   s0, v
    fld  fa0, 0(s0)
    fneg.d fa1, fa0
    fsd  fa1, 8(s0)
    fabs.d fa2, fa0
    fsd  fa2, 16(s0)
    fmv.d  fa3, fa0
    fsd  fa3, 24(s0)
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v (%s)", res.Status, res.Reason)
	}
	read := func(off int) float64 {
		base := isa.DataBase + off
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(c.Mem()[base+b]) << (8 * b)
		}
		return math.Float64frombits(v)
	}
	if read(8) != 2.5 || read(16) != 2.5 || read(24) != -2.5 {
		t.Fatalf("unary results %v %v %v", read(8), read(16), read(24))
	}
	// Unary moves never traverse the FPU datapath.
	var fpTotal int64
	for _, n := range res.FPOps {
		fpTotal += n
	}
	if fpTotal != 0 {
		t.Fatalf("fmv/fneg/fabs must not count as FPU datapath ops: %v", res.FPOps)
	}
}

func TestFMVBitMoves(t *testing.T) {
	_, res := run(t, `
.text
main:
    li   t0, 0x3f800000
    fmv.d.x fa0, t0
    fmv.x.d t1, fa0
    bne  t0, t1, fail
    li   a0, 10
    li   a1, 0
    ecall
fail:
    li   a0, 10
    li   a1, 1
    ecall
`, Config{})
	if res.Status != Halted || res.ExitCode != 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestLatencyOverride(t *testing.T) {
	src := `
.data
v: .double 1.5, 2.5
.text
main:
    la s0, v
    fld fa0, 0(s0)
    fld fa1, 8(s0)
    fmul.d fa2, fa0, fa1
    fadd.d fa3, fa2, fa1
    li a0, 10
    li a1, 0
    ecall
`
	slow := DefaultLatencies()
	slow.FP[fpu.DMul] = 100
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rFast := New(p, Config{}).Run(1 << 30)
	rSlow := New(p, Config{Latencies: &slow}).Run(1 << 30)
	if rSlow.Cycles <= rFast.Cycles+50 {
		t.Fatalf("latency override ignored: %d vs %d", rSlow.Cycles, rFast.Cycles)
	}
}

func TestOutputCap(t *testing.T) {
	p, err := isa.Assemble(`
.text
main:
    li   t0, 100
loop:
    li   a0, 3
    li   a1, 'x'
    ecall
    subi t0, t0, 1
    bnez t0, loop
    li   a0, 10
    li   a1, 0
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, Config{MaxOutput: 10})
	res := c.Run(1 << 30)
	if res.Status != Halted {
		t.Fatalf("status %v", res.Status)
	}
	if len(c.Output()) > 10 {
		t.Fatalf("output cap breached: %d bytes", len(c.Output()))
	}
}

func TestStatusStrings(t *testing.T) {
	if Halted.String() != "halted" || Crashed.String() != "crashed" || TimedOut.String() != "timed-out" {
		t.Fatal("status names")
	}
}

func TestInstructionTrace(t *testing.T) {
	var buf strings.Builder
	p, err := isa.Assemble(`
.text
main:
    addi t0, zero, 3
    mul  t1, t0, t0
    li   a0, 10
    li   a1, 0
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, Config{Trace: &buf})
	if res := c.Run(1 << 20); res.Status != Halted {
		t.Fatalf("status %v", res.Status)
	}
	out := buf.String()
	for _, want := range []string{"addi t0, zero, 3", "mul t1, t0, t0", "ecall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 { // each li expands to 2
		t.Fatalf("trace has %d lines, want 7", lines)
	}
}

func TestICacheModel(t *testing.T) {
	// A tight loop fits in the instruction cache: misses happen only on
	// first touch, so the miss count is far below the instruction count.
	_, res := run(t, `
.text
main:
    li   t0, 10000
loop:
    subi t0, t0, 1
    bnez t0, loop
    li   a0, 10
    li   a1, 0
    ecall
`, Config{})
	if res.Status != Halted {
		t.Fatalf("status %v", res.Status)
	}
	if res.ICacheMisses == 0 {
		t.Fatal("cold start must miss at least once")
	}
	if res.ICacheMisses > 8 {
		t.Fatalf("loop should be icache resident: %d misses", res.ICacheMisses)
	}
}
