package cpu_test

import (
	"fmt"

	"teva/internal/cpu"
	"teva/internal/isa"
)

// Example runs a small MRV program end to end on the microarchitectural
// simulator.
func Example() {
	prog := isa.MustAssemble(`
.data
msg: .asciiz "6*7="
.text
main:
    la  a1, msg
    li  a0, 4
    ecall
    li  t0, 6
    li  t1, 7
    mul t2, t0, t1
    li  a0, 1
    mv  a1, t2
    ecall
    li  a0, 10
    li  a1, 0
    ecall
`)
	c := cpu.New(prog, cpu.Config{})
	res := c.Run(1 << 20)
	fmt.Printf("%s (%v, exit %d)\n", c.Output(), res.Status, res.ExitCode)
	// Output:
	// 6*7=42 (halted, exit 0)
}
