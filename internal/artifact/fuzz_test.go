package artifact

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzKey is the fixed lookup key the fuzzer aims adversarial bytes at.
func fuzzKey() Key {
	return CampaignKey("cg", "WA", "VR20", 24, 0xF00D, true, "scale=tiny")
}

// validEnvelope builds a well-formed entry for k.
func validEnvelope(k Key, body []byte) []byte {
	raw, err := json.Marshal(envelope{
		Schema: SchemaVersion, Kind: k.Kind, ID: k.ID,
		Sum: payloadSum(body), Payload: body,
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// FuzzEnvelopeDecode feeds arbitrary bytes to the store's Load path. The
// invariant under fuzz: Load never panics, and it returns true only for
// an entry that fully re-verifies (current schema, matching key, intact
// checksum, decodable payload) — arbitrary, truncated or bit-flipped
// input must always degrade to a miss, never a silently-wrong hit.
func FuzzEnvelopeDecode(f *testing.F) {
	k := fuzzKey()
	body := []byte(`{"Name":"cell","Masks":[1,2,3],"Hist":[0,1,0]}`)
	valid := validEnvelope(k, body)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2]) // truncated mid-envelope
	// Flipped schema version: well-formed, wrong generation.
	stale, _ := json.Marshal(envelope{
		Schema: SchemaVersion + 1, Kind: k.Kind, ID: k.ID,
		Sum: payloadSum(body), Payload: body,
	})
	f.Add(stale)
	// Key-mismatch collision: a valid envelope for a different key
	// occupying this key's file (simulated filename-hash collision).
	other := SummaryKey("random", "fp-mul.d", 1.25, 1, 100, false)
	f.Add(validEnvelope(other, body))
	// One flipped bit inside the payload: valid JSON, wrong numbers.
	flipped := append([]byte(nil), valid...)
	if i := bytes.Index(flipped, []byte("[1,2,3]")); i >= 0 {
		flipped[i+1] ^= 0x04 // '1' -> '5'
	}
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(s.Dir(), k.filename())
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out payload
		ok := s.Load(k, &out) // must never panic
		if !ok {
			return
		}
		// A reported hit must be a true hit: the raw bytes must decode to
		// an envelope whose every integrity field checks out.
		var env envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("hit from undecodable bytes: %q", data)
		}
		if env.Schema != SchemaVersion || env.Kind != k.Kind || env.ID != k.ID {
			t.Fatalf("hit with mismatched identity: %+v", env)
		}
		if env.Sum != payloadSum(env.Payload) {
			t.Fatalf("hit with bad checksum: sum=%s payload=%s", env.Sum, env.Payload)
		}
		var check payload
		if err := json.Unmarshal(env.Payload, &check); err != nil {
			t.Fatalf("hit whose payload does not decode: %v", err)
		}
	})
}
