package artifact

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"teva/internal/obs"
)

type payload struct {
	Name  string
	Masks []uint64
	Hist  []int
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openStore(t)
	k := SummaryKey("random", "fp-mul.d", 1.25, 0xF00D, 2000, false)
	in := payload{Name: "mul", Masks: []uint64{1 << 63, 0xFFFFFFFFFFFFFFFF, 7}, Hist: []int{0, 3, 1}}
	if err := s.Save(k, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Load(k, &out) {
		t.Fatal("saved entry must load")
	}
	if out.Name != in.Name || len(out.Masks) != 3 || out.Masks[1] != 0xFFFFFFFFFFFFFFFF {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Writes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMissOnAbsent(t *testing.T) {
	s := openStore(t)
	var out payload
	if s.Load(SummaryKey("random", "fp-add.d", 1.0, 1, 10, false), &out) {
		t.Fatal("absent entry must miss")
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDistinctKeysDistinctEntries(t *testing.T) {
	s := openStore(t)
	k1 := SummaryKey("random", "fp-mul.d", 1.25, 1, 100, false)
	k2 := SummaryKey("random", "fp-mul.d", 1.25, 1, 200, false) // only n differs
	k3 := CampaignKey("is", "WA", "VR20", 100, 1, true, "r2000")
	if err := s.Save(k1, payload{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(k2, payload{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(k3, payload{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	for want, k := range map[string]Key{"a": k1, "b": k2, "c": k3} {
		if !s.Load(k, &out) || out.Name != want {
			t.Fatalf("key %v loaded %q, want %q", k, out.Name, want)
		}
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	s := openStore(t)
	k := CampaignKey("cg", "DA", "VR15", 24, 7, true, "tiny")
	if err := s.Save(k, payload{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry mid-file.
	name := filepath.Join(s.Dir(), k.filename())
	if err := os.WriteFile(name, []byte(`{"schema":1,"kind":"campa`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load(k, &out) {
		t.Fatal("corrupt entry must be a miss")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Recovery: overwriting repairs the entry.
	if err := s.Save(k, payload{Name: "repaired"}); err != nil {
		t.Fatal(err)
	}
	if !s.Load(k, &out) || out.Name != "repaired" {
		t.Fatal("overwrite must repair a corrupt entry")
	}
}

func TestStaleSchemaIsMiss(t *testing.T) {
	s := openStore(t)
	k := SummaryKey("random", "fp-sub.d", 1.1, 3, 50, true)
	raw, _ := json.Marshal(envelope{Schema: SchemaVersion + 1, Kind: k.Kind, ID: k.ID,
		Payload: json.RawMessage(`{"Name":"future"}`)})
	if err := os.WriteFile(filepath.Join(s.Dir(), k.filename()), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load(k, &out) {
		t.Fatal("stale schema must be a miss")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestKeyCollisionDetected(t *testing.T) {
	s := openStore(t)
	k1 := SummaryKey("a", "op", 1, 1, 1, false)
	k2 := SummaryKey("b", "op", 1, 1, 1, false)
	if err := s.Save(k1, payload{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	// Force k2 onto k1's file to simulate a hash collision: the embedded
	// canonical ID must reject the load.
	if err := os.Rename(filepath.Join(s.Dir(), k1.filename()),
		filepath.Join(s.Dir(), k2.filename())); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load(k2, &out) {
		t.Fatal("mismatched canonical ID must be a miss")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	k := SummaryKey("random", "fp-mul.d", 1, 1, 1, false)
	if err := s.Save(k, payload{Name: "x"}); err != nil {
		t.Fatal("nil store Save must be a no-op")
	}
	var out payload
	if s.Load(k, &out) {
		t.Fatal("nil store must always miss")
	}
	if s.Stats() != (Stats{}) || s.Dir() != "" {
		t.Fatal("nil store stats must be zero")
	}
}

func TestOpenEmptyDirErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir must error")
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	s := openStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := CampaignKey("w", "IA", "VR15", i%5, uint64(g%3), true, "t")
				_ = s.Save(k, payload{Name: "x", Hist: []int{g, i}})
				var out payload
				s.Load(k, &out)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Writes != 400 {
		t.Fatalf("stats %+v", st)
	}
}

// TestOpenSweepsStaleTmpFiles pins the crash-debris sweep: a ".tmp-*"
// file older than the staleness threshold is removed when the store
// opens (and counted on artifact.tmp_swept), while a fresh one — which
// may belong to a live concurrent writer — is left alone, as are files
// that merely contain "tmp" without the atomic-write prefix.
func TestOpenSweepsStaleTmpFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-12345")
	fresh := filepath.Join(dir, ".tmp-67890")
	bystander := filepath.Join(dir, "tmp-notours.json")
	for _, name := range []string{stale, fresh, bystander} {
		if err := os.WriteFile(name, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(bystander, old, old); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry(nil)
	if _, err := OpenIn(dir, reg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived the open-time sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp file (possible live writer) was swept: %v", err)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Fatalf("non-prefixed bystander file was swept: %v", err)
	}
	if got := reg.Counter(MetricTmpSwept).Value(); got != 1 {
		t.Fatalf("artifact.tmp_swept = %d, want 1", got)
	}

	// Reopening the now-clean directory must not count anything.
	reg2 := obs.NewRegistry(nil)
	if _, err := OpenIn(dir, reg2); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter(MetricTmpSwept).Value(); got != 0 {
		t.Fatalf("artifact.tmp_swept after clean reopen = %d, want 0", got)
	}
}
