// Package artifact implements a content-addressed on-disk store for the
// expensive intermediate products of the experiment pipeline: DTA
// characterization summaries and injection-campaign results. A store maps
// a canonical key (the full set of inputs that determine an artifact —
// op, delay scale, seed, sample count for DTA summaries; workload, model
// kind, voltage level, run count, seed for campaign cells) to a JSON
// envelope on disk, so a re-run of the experiment matrix reloads every
// cell instead of recomputing it.
//
// Design points:
//
//   - Entries are written atomically (temp file + rename), so a killed
//     run never leaves a half-written artifact behind.
//   - Every envelope carries a schema version and its own canonical key;
//     a version mismatch, key mismatch (hash collision) or undecodable
//     file is treated as a cache miss, never as an error.
//   - Hit/miss/write tallies are obs registry counters (atomic adds), so
//     a progress reporter can poll them from another goroutine and a
//     -metrics-out snapshot includes cache behavior for free.
//
// A nil *Store is valid and behaves as an always-miss, drop-writes store,
// so call sites need no conditionals when caching is disabled.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"teva/internal/obs"
)

// SchemaVersion is bumped whenever the serialized payload layout of any
// artifact kind changes incompatibly (field renames, semantic changes to
// stored statistics). Entries written under another version are treated
// as misses, so stale caches age out instead of corrupting results.
const SchemaVersion = 1

// Key identifies one artifact. Kind namespaces the artifact family; ID is
// the canonical, human-readable encoding of every input that determines
// the artifact's content.
type Key struct {
	Kind string
	ID   string
}

// SummaryKey builds the key for a DTA characterization summary.
// Source names the operand stream ("random", "wl:is:...", "fig6/K1000/r2"),
// op the analyzed instruction, scale the delay inflation of the corner,
// seed the stream seed, samples the analyzed pair count, and exact the
// timing engine. The scale is encoded in hex float form so the key is
// exact, not subject to decimal rounding.
func SummaryKey(source, op string, scale float64, seed uint64, samples int, exact bool) Key {
	return Key{
		Kind: "dta-summary",
		ID: fmt.Sprintf("src=%s|op=%s|scale=%s|seed=%#x|n=%d|exact=%v",
			source, op, strconv.FormatFloat(scale, 'x', -1, 64), seed, samples, exact),
	}
}

// CampaignKey builds the key for one injection-campaign cell. The cfg tag
// folds in every framework setting that shapes the injected model
// (characterization sample sizes, workload scale, timing engine), so a
// cache directory can be shared between -quick and full runs safely.
func CampaignKey(workload, kind, level string, runs int, seed uint64, single bool, cfg string) Key {
	return Key{
		Kind: "campaign",
		ID: fmt.Sprintf("wl=%s|model=%s|level=%s|runs=%d|seed=%#x|single=%v|cfg=%s",
			workload, kind, level, runs, seed, single, cfg),
	}
}

// filename derives the content-addressed file name: the artifact kind
// plus a truncated SHA-256 of the canonical ID.
func (k Key) filename() string {
	h := sha256.Sum256([]byte(k.Kind + "\x00" + k.ID))
	return k.Kind + "-" + hex.EncodeToString(h[:12]) + ".json"
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts successful loads, Misses failed ones (absent entries
	// plus the Corrupt subset), Writes persisted artifacts.
	Hits, Misses, Writes int64
	// Corrupt counts entries that existed but failed to decode or
	// carried a stale schema/mismatched key.
	Corrupt int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%d corrupt), %d written",
		s.Hits, s.Misses, s.Corrupt, s.Writes)
}

// Metric names published by the store. The obsnames analyzer requires
// registration through constants so the namespace is fixed at compile time.
const (
	MetricHits    = "artifact.hits"
	MetricMisses  = "artifact.misses"
	MetricWrites  = "artifact.writes"
	MetricCorrupt = "artifact.corrupt"
)

// Store is an on-disk artifact cache rooted at one directory.
type Store struct {
	dir                           string
	hits, misses, writes, corrupt *obs.Counter
}

// Open creates (if needed) and opens a store rooted at dir, with its
// counters on a private registry (Stats still works; nothing is exported).
func Open(dir string) (*Store, error) { return OpenIn(dir, nil) }

// OpenIn is Open with the store's counters registered on reg, so a
// -metrics-out snapshot reports cache behavior under the artifact.*
// names. A nil reg falls back to a private registry.
func OpenIn(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	return &Store{
		dir:     dir,
		hits:    reg.Counter(MetricHits),
		misses:  reg.Counter(MetricMisses),
		writes:  reg.Counter(MetricWrites),
		corrupt: reg.Counter(MetricCorrupt),
	}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the counters (zero for a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:    s.hits.Value(),
		Misses:  s.misses.Value(),
		Writes:  s.writes.Value(),
		Corrupt: s.corrupt.Value(),
	}
}

// envelope is the on-disk JSON layout.
type envelope struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	ID      string          `json:"id"`
	Payload json.RawMessage `json:"payload"`
}

// Load looks the key up and decodes its payload into out. It returns
// false on any miss: absent entry, unreadable file, stale schema, key
// collision, or payload that does not decode into out. Corrupt entries
// never surface as errors — the caller just recomputes and overwrites.
func (s *Store) Load(k Key, out any) bool {
	if s == nil {
		return false
	}
	raw, err := os.ReadFile(filepath.Join(s.dir, k.filename()))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil ||
		env.Schema != SchemaVersion || env.Kind != k.Kind || env.ID != k.ID ||
		json.Unmarshal(env.Payload, out) != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Save persists the payload under the key, atomically: the envelope is
// written to a temp file in the store directory and renamed into place,
// so concurrent readers see either the old entry or the new one, never a
// torn write. Saving on a nil store is a no-op.
func (s *Store) Save(k Key, payload any) error {
	if s == nil {
		return nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("artifact: marshal %s: %w", k.Kind, err)
	}
	raw, err := json.Marshal(envelope{
		Schema: SchemaVersion, Kind: k.Kind, ID: k.ID, Payload: body,
	})
	if err != nil {
		return fmt.Errorf("artifact: marshal envelope: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("artifact: write %s: %w", k.Kind, werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, k.filename())); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: %w", err)
	}
	s.writes.Add(1)
	return nil
}
