// Package artifact implements a content-addressed on-disk store for the
// expensive intermediate products of the experiment pipeline: DTA
// characterization summaries and injection-campaign results. A store maps
// a canonical key (the full set of inputs that determine an artifact —
// op, delay scale, seed, sample count for DTA summaries; workload, model
// kind, voltage level, run count, seed for campaign cells) to a JSON
// envelope on disk, so a re-run of the experiment matrix reloads every
// cell instead of recomputing it.
//
// Design points:
//
//   - Entries are written atomically (temp file + rename), so a killed
//     run never leaves a half-written artifact behind.
//   - Every envelope carries a schema version, its own canonical key and
//     a SHA-256 checksum of the payload; a version mismatch, key mismatch
//     (hash collision), checksum mismatch (torn or bit-flipped entry) or
//     undecodable file is treated as a cache miss, never as an error and
//     never as a silently-wrong hit.
//   - Writes retry with bounded backoff before reporting failure, so a
//     transient I/O hiccup (briefly full disk, NFS blip) costs a pause
//     instead of a lost cache entry. A write that still fails is counted
//     and surfaced as an error — results are unaffected either way, the
//     entry is simply recomputed next run.
//   - Filesystem access goes through the FS interface, so the chaos
//     harness (internal/chaos) can inject faults deterministically and
//     prove every failure mode degrades to a miss or a counted error.
//   - Hit/miss/write/retry tallies are obs registry counters (atomic
//     adds), so a progress reporter can poll them from another goroutine
//     and a -metrics-out snapshot includes cache behavior for free.
//
// A nil *Store is valid and behaves as an always-miss, drop-writes store,
// so call sites need no conditionals when caching is disabled.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"teva/internal/obs"
)

// SchemaVersion is bumped whenever the serialized envelope layout of any
// artifact kind changes incompatibly (field renames, semantic changes to
// stored statistics). Entries written under another version are treated
// as misses, so stale caches age out instead of corrupting results.
// Version 2 added the payload checksum.
const SchemaVersion = 2

// Key identifies one artifact. Kind namespaces the artifact family; ID is
// the canonical, human-readable encoding of every input that determines
// the artifact's content.
type Key struct {
	Kind string
	ID   string
}

// SummaryKey builds the key for a DTA characterization summary.
// Source names the operand stream ("random", "wl:is:...", "fig6/K1000/r2"),
// op the analyzed instruction, scale the delay inflation of the corner,
// seed the stream seed, samples the analyzed pair count, and exact the
// timing engine. The scale is encoded in hex float form so the key is
// exact, not subject to decimal rounding.
func SummaryKey(source, op string, scale float64, seed uint64, samples int, exact bool) Key {
	return Key{
		Kind: "dta-summary",
		ID: fmt.Sprintf("src=%s|op=%s|scale=%s|seed=%#x|n=%d|exact=%v",
			source, op, strconv.FormatFloat(scale, 'x', -1, 64), seed, samples, exact),
	}
}

// CornerKey builds the key for one multi-corner STA characterization
// cell. Design names the analyzed unit ("fpu"), seed reproduces its exact
// placement, and the corner's full operating point (supply, temperature,
// process multiplier) plus the register parameters are encoded in hex
// float form so the provenance is exact per corner — two corners that
// differ in any parameter never alias.
func CornerKey(design string, seed uint64, corner string, voltage, tempC, process, clkToQ, setup float64) Key {
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	return Key{
		Kind: "sta-corner",
		ID: fmt.Sprintf("design=%s|seed=%#x|corner=%s|v=%s|t=%s|p=%s|clk2q=%s|setup=%s",
			design, seed, corner, hx(voltage), hx(tempC), hx(process), hx(clkToQ), hx(setup)),
	}
}

// CampaignKey builds the key for one injection-campaign cell. The cfg tag
// folds in every framework setting that shapes the injected model
// (characterization sample sizes, workload scale, timing engine), so a
// cache directory can be shared between -quick and full runs safely.
func CampaignKey(workload, kind, level string, runs int, seed uint64, single bool, cfg string) Key {
	return Key{
		Kind: "campaign",
		ID: fmt.Sprintf("wl=%s|model=%s|level=%s|runs=%d|seed=%#x|single=%v|cfg=%s",
			workload, kind, level, runs, seed, single, cfg),
	}
}

// filename derives the content-addressed file name: the artifact kind
// plus a truncated SHA-256 of the canonical ID.
func (k Key) filename() string {
	h := sha256.Sum256([]byte(k.Kind + "\x00" + k.ID))
	return k.Kind + "-" + hex.EncodeToString(h[:12]) + ".json"
}

// FS abstracts the filesystem operations the store performs, so the
// chaos harness can wrap them with deterministic fault injection. The
// production implementation is OSFS.
type FS interface {
	// MkdirAll creates the store directory (and parents) if needed.
	MkdirAll(dir string) error
	// ReadFile returns the full contents of the named file.
	ReadFile(name string) ([]byte, error)
	// WriteFileAtomic writes data to dir/name atomically (temp file +
	// rename): a concurrent reader observes either the old entry or the
	// new one, never a torn write, and a failed write leaves no temp
	// file behind.
	WriteFileAtomic(dir, name string, data []byte) error
	// SweepTmp removes stale temp files in dir older than age — debris a
	// crashed or SIGKILLed writer left between CreateTemp and rename. It
	// returns the number removed; errors on individual files are skipped
	// (another sweeper may have raced us to them).
	SweepTmp(dir string, age time.Duration) int
}

// OSFS is the production FS backed by the os package.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFileAtomic implements FS: temp file in the same directory, write,
// close, rename. Any failure removes the temp file.
func (OSFS) WriteFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return werr
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SweepTmp implements FS: any ".tmp-*" file whose mtime is older than
// age cannot belong to a live writer (atomic writes are milliseconds,
// and the threshold is minutes), so it is debris from a killed process.
// Fresh temp files are left alone — with sharded workers, other live
// processes are writing into the same directory right now.
func (OSFS) SweepTmp(dir string, age time.Duration) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	// File mtimes are wall-clock by nature; the sweep only removes debris
	// and never feeds a simulation result, so the clock read is harmless.
	cutoff := time.Now().Add(-age) //teva:allow simpurity -- mtime-based debris sweep, no result dataflow
	swept := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, e.Name())) == nil {
			swept++
		}
	}
	return swept
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts successful loads, Misses failed ones (absent entries
	// plus the Corrupt subset), Writes persisted artifacts.
	Hits, Misses, Writes int64
	// Corrupt counts entries that existed but failed to decode or
	// carried a stale schema, mismatched key, or bad payload checksum.
	Corrupt int64
	// Retries counts Save attempts repeated after a transient write
	// failure; WriteErrors counts Saves that failed even after retrying.
	Retries, WriteErrors int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%d corrupt), %d written (%d retries, %d write errors)",
		s.Hits, s.Misses, s.Corrupt, s.Writes, s.Retries, s.WriteErrors)
}

// Metric names published by the store. The obsnames analyzer requires
// registration through constants so the namespace is fixed at compile time.
const (
	MetricHits        = "artifact.hits"
	MetricMisses      = "artifact.misses"
	MetricWrites      = "artifact.writes"
	MetricCorrupt     = "artifact.corrupt"
	MetricRetries     = "artifact.retries"
	MetricWriteErrors = "artifact.write_errors"
	MetricTmpSwept    = "artifact.tmp_swept"
)

// tmpSweepAge is the staleness threshold for the open-time temp-file
// sweep. An atomic write holds its temp file for milliseconds; a temp
// file this old can only be debris from a writer that died between
// CreateTemp and rename (a SIGKILLed shard worker, an OOM-killed run).
// The margin keeps the sweep safe against every live concurrent writer.
const tmpSweepAge = 15 * time.Minute

// saveAttempts bounds the write retry loop: the initial attempt plus two
// retries with 1ms/4ms backoff. Transient failures (ENOSPC races, NFS
// blips, chaos-injected faults) usually clear within that; anything more
// persistent is not worth stalling the pipeline over, because a failed
// save only costs a recompute on the next run.
const saveAttempts = 3

// saveBackoff returns the pause before retry attempt n (1-based).
func saveBackoff(n int) time.Duration {
	return time.Millisecond << (2 * (n - 1)) // 1ms, 4ms, ...
}

// Store is an on-disk artifact cache rooted at one directory.
type Store struct {
	dir string
	fs  FS
	// sleep pauses between write retries; injectable so tests (and the
	// chaos suite) don't wait out real backoff.
	sleep func(time.Duration)

	hits, misses, writes, corrupt *obs.Counter
	retries, writeErrors          *obs.Counter
}

// Open creates (if needed) and opens a store rooted at dir, with its
// counters on a private registry (Stats still works; nothing is exported).
func Open(dir string) (*Store, error) { return OpenIn(dir, nil) }

// OpenIn is Open with the store's counters registered on reg, so a
// -metrics-out snapshot reports cache behavior under the artifact.*
// names. A nil reg falls back to a private registry.
func OpenIn(dir string, reg *obs.Registry) (*Store, error) {
	return OpenFS(dir, reg, OSFS{})
}

// OpenFS is OpenIn over an explicit filesystem — the seam the chaos
// harness uses to inject faults underneath an otherwise-unmodified store.
func OpenFS(dir string, reg *obs.Registry, fs FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	// Sweep debris from crashed writers before use. Multiple processes
	// opening the same directory (sharded workers) race benignly: each
	// file is removed by whichever sweeper gets there first.
	if n := fs.SweepTmp(dir, tmpSweepAge); n > 0 {
		reg.Counter(MetricTmpSwept).Add(int64(n))
	}
	return &Store{
		dir:         dir,
		fs:          fs,
		sleep:       time.Sleep,
		hits:        reg.Counter(MetricHits),
		misses:      reg.Counter(MetricMisses),
		writes:      reg.Counter(MetricWrites),
		corrupt:     reg.Counter(MetricCorrupt),
		retries:     reg.Counter(MetricRetries),
		writeErrors: reg.Counter(MetricWriteErrors),
	}, nil
}

// SetSleep replaces the retry backoff pause (nil restores time.Sleep).
// Tests use this to make write-failure paths instantaneous.
func (s *Store) SetSleep(sleep func(time.Duration)) {
	if s == nil {
		return
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	s.sleep = sleep
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the counters (zero for a nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:        s.hits.Value(),
		Misses:      s.misses.Value(),
		Writes:      s.writes.Value(),
		Corrupt:     s.corrupt.Value(),
		Retries:     s.retries.Value(),
		WriteErrors: s.writeErrors.Value(),
	}
}

// envelope is the on-disk JSON layout. Sum is the hex SHA-256 of the
// payload bytes: without it, a single flipped bit inside a numeric field
// would still parse as valid JSON and surface as a silently-wrong hit.
type envelope struct {
	Schema  int             `json:"schema"`
	Kind    string          `json:"kind"`
	ID      string          `json:"id"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// payloadSum computes the envelope checksum of payload bytes.
func payloadSum(body []byte) string {
	h := sha256.Sum256(body)
	return hex.EncodeToString(h[:])
}

// Load looks the key up and decodes its payload into out. It returns
// false on any miss: absent entry, unreadable file, stale schema, key
// collision, checksum mismatch, or payload that does not decode into out.
// Corrupt entries never surface as errors — the caller just recomputes
// and overwrites.
func (s *Store) Load(k Key, out any) bool {
	if s == nil {
		return false
	}
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, k.filename()))
	if err != nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil ||
		env.Schema != SchemaVersion || env.Kind != k.Kind || env.ID != k.ID ||
		env.Sum != payloadSum(env.Payload) ||
		json.Unmarshal(env.Payload, out) != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Save persists the payload under the key, atomically and with bounded
// retry: a transient write failure is retried saveAttempts times with
// short backoff (each retry counted on artifact.retries) before the Save
// reports an error (counted on artifact.write_errors). Failures never
// corrupt the store — the atomic write discipline means the previous
// entry, if any, stays intact. Saving on a nil store is a no-op.
func (s *Store) Save(k Key, payload any) error {
	if s == nil {
		return nil
	}
	body, err := json.Marshal(payload)
	if err != nil {
		// Marshal failures are deterministic, not transient: no retry.
		s.writeErrors.Add(1)
		return fmt.Errorf("artifact: marshal %s: %w", k.Kind, err)
	}
	raw, err := json.Marshal(envelope{
		Schema: SchemaVersion, Kind: k.Kind, ID: k.ID,
		Sum: payloadSum(body), Payload: body,
	})
	if err != nil {
		s.writeErrors.Add(1)
		return fmt.Errorf("artifact: marshal envelope: %w", err)
	}
	var werr error
	for attempt := 1; attempt <= saveAttempts; attempt++ {
		if attempt > 1 {
			s.retries.Add(1)
			s.sleep(saveBackoff(attempt - 1))
		}
		if werr = s.fs.WriteFileAtomic(s.dir, k.filename(), raw); werr == nil {
			s.writes.Add(1)
			return nil
		}
	}
	s.writeErrors.Add(1)
	return fmt.Errorf("artifact: write %s (%d attempts): %w", k.Kind, saveAttempts, werr)
}
