package artifact

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// flakyFS fails the first n WriteFileAtomic calls, then delegates to OSFS.
type flakyFS struct {
	failures int
	calls    int
}

func (f *flakyFS) MkdirAll(dir string) error            { return OSFS{}.MkdirAll(dir) }
func (f *flakyFS) ReadFile(name string) ([]byte, error) { return OSFS{}.ReadFile(name) }
func (f *flakyFS) SweepTmp(dir string, age time.Duration) int {
	return OSFS{}.SweepTmp(dir, age)
}

func (f *flakyFS) WriteFileAtomic(dir, name string, data []byte) error {
	f.calls++
	if f.calls <= f.failures {
		return errors.New("flaky: injected transient write failure")
	}
	return OSFS{}.WriteFileAtomic(dir, name, data)
}

func openFlaky(t *testing.T, failures int) (*Store, *flakyFS) {
	t.Helper()
	fs := &flakyFS{failures: failures}
	s, err := OpenFS(t.TempDir(), nil, fs)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSleep(func(time.Duration) {}) // no real backoff in tests
	return s, fs
}

func TestSaveRetriesTransientWriteFailures(t *testing.T) {
	s, fs := openFlaky(t, 2) // first two attempts fail, third succeeds
	k := SummaryKey("random", "fp-mul.d", 1.25, 1, 10, false)
	if err := s.Save(k, payload{Name: "persisted"}); err != nil {
		t.Fatalf("save must survive transient failures: %v", err)
	}
	if fs.calls != 3 {
		t.Fatalf("want 3 write attempts, got %d", fs.calls)
	}
	st := s.Stats()
	if st.Retries != 2 || st.Writes != 1 || st.WriteErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
	var out payload
	if !s.Load(k, &out) || out.Name != "persisted" {
		t.Fatal("retried save must be loadable")
	}
}

func TestSaveGivesUpAfterBoundedRetries(t *testing.T) {
	s, fs := openFlaky(t, 1000) // never succeeds
	k := SummaryKey("random", "fp-add.d", 1.0, 1, 10, false)
	err := s.Save(k, payload{Name: "doomed"})
	if err == nil {
		t.Fatal("persistent write failure must surface as an error")
	}
	if fs.calls != saveAttempts {
		t.Fatalf("want exactly %d bounded attempts, got %d", saveAttempts, fs.calls)
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.Writes != 0 || st.Retries != saveAttempts-1 {
		t.Fatalf("stats %+v", st)
	}
	// The failed save must not have left anything behind for Load.
	var out payload
	if s.Load(k, &out) {
		t.Fatal("failed save must not be loadable")
	}
}

func TestMarshalFailureDoesNotRetry(t *testing.T) {
	s, fs := openFlaky(t, 0)
	err := s.Save(SummaryKey("x", "op", 1, 1, 1, false), func() {}) // unmarshalable
	if err == nil {
		t.Fatal("marshal failure must error")
	}
	if fs.calls != 0 {
		t.Fatal("marshal failure must not reach the filesystem")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBitFlippedPayloadIsMissNotWrongHit(t *testing.T) {
	s := openStore(t)
	k := CampaignKey("cg", "WA", "VR20", 24, 7, true, "tiny")
	if err := s.Save(k, payload{Name: "truth", Hist: []int{10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(s.Dir(), k.filename())
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside a numeric payload field: the result is still
	// valid JSON with a valid schema/kind/id, so only the checksum can
	// catch it. "10" lives inside the payload; 0x31('1')^0x08 = 0x39('9').
	i := strings.Index(string(raw), "[10,20,30]")
	if i < 0 {
		t.Fatalf("fixture drifted: payload array not found in %s", raw)
	}
	flipped := append([]byte(nil), raw...)
	flipped[i+1] ^= 0x08
	if err := os.WriteFile(name, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if s.Load(k, &out) {
		t.Fatalf("bit-flipped entry surfaced as a hit: %+v", out)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteFileAtomicLeavesNoTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	// Writing into a subdirectory that doesn't exist fails at rename/creat.
	if err := (OSFS{}).WriteFileAtomic(filepath.Join(dir, "missing"), "x.json", []byte("data")); err == nil {
		t.Fatal("write into a missing dir must fail")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("temp residue after failed write: %s", e.Name())
	}
}

// Guard against backoff schedule regressions: bounded and short.
func TestSaveBackoffIsBounded(t *testing.T) {
	var total time.Duration
	for n := 1; n < saveAttempts; n++ {
		total += saveBackoff(n)
	}
	if total > 100*time.Millisecond {
		t.Fatalf("retry backoff budget too large: %v", total)
	}
}

func TestStatsStringMentionsRetries(t *testing.T) {
	s := Stats{Hits: 1, Misses: 2, Corrupt: 1, Writes: 3, Retries: 4, WriteErrors: 5}
	str := s.String()
	for _, want := range []string{"4 retries", "5 write errors"} {
		if !strings.Contains(str, want) {
			t.Fatalf("stats string %q missing %q", str, want)
		}
	}
	_ = fmt.Sprint(s)
}
