package power

import (
	"testing"

	"teva/internal/alu"
	"teva/internal/cell"
	"teva/internal/fpu"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

var (
	testFPU *fpu.FPU
	testALU *alu.Unit
	testPro *Profile
)

func setup(t testing.TB) *Profile {
	t.Helper()
	if testPro != nil {
		return testPro
	}
	lib := cell.Default()
	f, err := fpu.New(lib, 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	u, err := alu.New(lib, 0xA10)
	if err != nil {
		t.Fatal(err)
	}
	testFPU, testALU = f, u
	testPro = Characterize(f, u, 40, 5)
	return testPro
}

func TestPerOpEnergiesPositiveAndOrdered(t *testing.T) {
	p := setup(t)
	for _, op := range fpu.Ops() {
		if p.PerOp[op] <= 0 {
			t.Fatalf("%s energy %v", op, p.PerOp[op])
		}
	}
	// The double multiplier swings the largest datapath; the iterative
	// divider runs the most cycles. Both dwarf a conversion.
	if p.PerOp[fpu.DMul] <= p.PerOp[fpu.DI2F] {
		t.Fatalf("dmul %v should exceed i2f %v", p.PerOp[fpu.DMul], p.PerOp[fpu.DI2F])
	}
	if p.PerOp[fpu.DDiv] <= p.PerOp[fpu.DAdd] {
		t.Fatalf("ddiv %v should exceed dadd %v", p.PerOp[fpu.DDiv], p.PerOp[fpu.DAdd])
	}
	// Double precision costs more than single.
	if p.PerOp[fpu.DMul] <= p.PerOp[fpu.SMul] {
		t.Fatal("dmul should exceed smul")
	}
	// Any FPU op dwarfs an integer op.
	if p.PerOp[fpu.DAdd] <= p.IntOp {
		t.Fatalf("dadd %v should exceed integer op %v", p.PerOp[fpu.DAdd], p.IntOp)
	}
	if p.IntOp <= 0 || p.FPUGates == 0 || p.IntGates == 0 {
		t.Fatalf("profile incomplete: %+v", p)
	}
}

func TestWorkloadBreakdownFPShare(t *testing.T) {
	p := setup(t)
	w, err := workloads.ByName("srad_v1", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Capture(w, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := p.WorkloadBreakdown(tr)
	if b.TotalFJ <= 0 || b.FPUEnergyFJ <= 0 || b.IntEnergyFJ <= 0 {
		t.Fatalf("breakdown %+v", b)
	}
	// The paper cites FP as a major (>30%) energy contributor for
	// FP-heavy codes; srad is the most FP-intensive benchmark.
	if b.FPUShare < 0.3 {
		t.Fatalf("srad FPU energy share %.2f below 30%%", b.FPUShare)
	}
	if b.FPUShare >= 1 {
		t.Fatalf("FPU share %v must be a fraction", b.FPUShare)
	}
}

func TestAtVoltageQuadratic(t *testing.T) {
	m := vscale.Default45nm()
	e := AtVoltage(100, m, m.VddNominal)
	if e != 100 {
		t.Fatalf("nominal scaling %v", e)
	}
	e = AtVoltage(100, m, 0.88)
	if e <= 50 || e >= 100 {
		t.Fatalf("VR20 energy %v out of band", e)
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	p := setup(t)
	p2 := Characterize(testFPU, testALU, 40, 5)
	for op := range p.PerOp {
		if p.PerOp[op] != p2.PerOp[op] {
			t.Fatal("characterization not reproducible")
		}
	}
}
