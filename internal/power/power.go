// Package power performs gate-level dynamic power analysis of the
// generated units, substituting for the Cadence Voltus step of the
// paper's flow (Section IV-B.1). Energy comes from switching activity:
// operand streams are driven through the netlists with the timing engine
// counting every gate-output transition weighted by the cell's
// per-transition energy.
//
// The analysis backs two of the paper's observations: floating-point
// operations "emerge as a major contributor to the energy consumption
// (>30%)" of FP-heavy workloads, and dynamic energy scales with the
// square of the supply voltage (the saving undervolting buys).
package power

import (
	"teva/internal/alu"
	"teva/internal/fpu"
	"teva/internal/logicsim"
	"teva/internal/prng"
	"teva/internal/timingsim"
	"teva/internal/trace"
	"teva/internal/vscale"
)

// Profile holds the characterized per-operation dynamic energies at the
// nominal corner, in femtojoules.
type Profile struct {
	// PerOp is the mean dynamic energy of one FPU instruction, across
	// all pipeline stages (iterated stages counted per cycle).
	PerOp [fpu.NumOps]float64
	// IntOp is the mean dynamic energy of one integer ALU operation
	// (ALU + AGU activity), the per-instruction baseline of the core
	// model.
	IntOp float64
	// FPUGates and IntGates are the unit sizes.
	FPUGates, IntGates int
}

// Characterize measures per-op energies by driving `samples` random
// operand pairs per instruction through the gate-level units.
func Characterize(f *fpu.FPU, intU *alu.Unit, samples int, seed uint64) *Profile {
	if samples < 2 {
		samples = 2
	}
	src := prng.New(seed)
	p := &Profile{FPUGates: f.NumGates(), IntGates: intU.NumGates()}
	for _, op := range fpu.Ops() {
		n := samples
		if op == fpu.DDiv || op == fpu.SDiv {
			n = samples/8 + 2
		}
		p.PerOp[op] = opEnergy(f, op, n, src.Split())
	}
	p.IntOp = intEnergy(intU, samples, src.Split())
	return p
}

// opEnergy runs back-to-back operations through every pipeline stage,
// accumulating switching energy.
func opEnergy(f *fpu.FPU, op fpu.Op, samples int, src *prng.Source) float64 {
	pipe := f.Pipeline(op)
	mask := ^uint64(0)
	if w := op.OperandWidth(); w < 64 {
		mask = 1<<uint(w) - 1
	}
	// Per expanded cycle: a fast timing engine and the previous input.
	var sims []*timingsim.FastSim
	var prevs [][]bool
	for _, s := range pipe.Stages {
		for r := 0; r < s.Repeat; r++ {
			sims = append(sims, timingsim.NewFast(s.N.Compiled(), 1.0))
			prevs = append(prevs, make([]bool, len(s.N.Inputs())))
		}
	}
	var total float64
	var counted int
	for i := 0; i < samples; i++ {
		a, b := src.Uint64()&mask, src.Uint64()&mask
		in := packOperands(pipe, a, b)
		ci := 0
		var opEnergy float64
		for _, s := range pipe.Stages {
			for r := 0; r < s.Repeat; r++ {
				sample := sims[ci].Run(prevs[ci], in, 0, timingsim.MaxDeadline)
				opEnergy += sample.EnergyFJ
				copy(prevs[ci], in)
				in = append([]bool(nil), sample.Settled...)
				ci++
			}
		}
		if i > 0 { // the first op warms the pipeline from the zero state
			total += opEnergy
			counted++
		}
	}
	return total / float64(counted)
}

// packOperands builds the rank-0 input vector for a pipeline.
func packOperands(p *fpu.Pipeline, a, b uint64) []bool {
	op := p.Op
	in := make([]bool, len(p.Stages[0].N.Inputs()))
	w := op.OperandWidth()
	logicsim.PackInputs(in, 0, w, a)
	if op.NumOperands() == 2 {
		logicsim.PackInputs(in, w, w, b)
	}
	return in
}

// intEnergy measures the integer side: an ALU add plus an AGU add per
// operation (the dominant per-instruction switching of the core model).
func intEnergy(u *alu.Unit, samples int, src *prng.Source) float64 {
	aluSim := timingsim.NewFast(u.ALU.Compiled(), 1.0)
	aguSim := timingsim.NewFast(u.AGU.Compiled(), 1.0)
	aluPrev := make([]bool, len(u.ALU.Inputs()))
	aguPrev := make([]bool, len(u.AGU.Inputs()))
	var total float64
	var counted int
	for i := 0; i < samples; i++ {
		aluIn := make([]bool, len(aluPrev))
		for j := 0; j < 64; j++ { // operands only; function code stays add
			aluIn[j] = src.Bool()
		}
		aguIn := make([]bool, len(aguPrev))
		for j := range aguIn {
			aguIn[j] = src.Bool()
		}
		e := aluSim.Run(aluPrev, aluIn, 0, timingsim.MaxDeadline).EnergyFJ
		e += aguSim.Run(aguPrev, aguIn, 0, timingsim.MaxDeadline).EnergyFJ
		copy(aluPrev, aluIn)
		copy(aguPrev, aguIn)
		if i > 0 {
			total += e
			counted++
		}
	}
	return total / float64(counted)
}

// Breakdown is the estimated energy split of one workload execution.
type Breakdown struct {
	// FPUEnergyFJ and IntEnergyFJ are the dynamic energy totals.
	FPUEnergyFJ, IntEnergyFJ float64
	// FPUShare is the FPU's fraction of the total.
	FPUShare float64
	// TotalFJ is the whole-run dynamic energy at nominal voltage.
	TotalFJ float64
}

// WorkloadBreakdown combines the profile with a workload trace: every
// FPU-datapath instruction pays its characterized energy; every other
// instruction pays the integer baseline.
func (p *Profile) WorkloadBreakdown(tr *trace.Trace) Breakdown {
	var b Breakdown
	var fpInstr int64
	for op, count := range tr.OpCounts {
		b.FPUEnergyFJ += float64(count) * p.PerOp[op]
		fpInstr += count
	}
	b.IntEnergyFJ = float64(tr.TotalInstr-fpInstr) * p.IntOp
	b.TotalFJ = b.FPUEnergyFJ + b.IntEnergyFJ
	if b.TotalFJ > 0 {
		b.FPUShare = b.FPUEnergyFJ / b.TotalFJ
	}
	return b
}

// AtVoltage scales a nominal-corner energy to a reduced supply using the
// quadratic dynamic-energy law.
func AtVoltage(energyFJ float64, m vscale.Model, supply float64) float64 {
	return energyFJ * m.DynamicPowerRatio(supply)
}
