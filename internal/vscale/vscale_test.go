package vscale

import (
	"math"
	"testing"
)

func TestDefaultModelValid(t *testing.T) {
	if err := Default45nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConstants(t *testing.T) {
	bad := []Model{
		{VddNominal: 0, Vth: 0.3, Alpha: 1.3},
		{VddNominal: 1.1, Vth: 0, Alpha: 1.3},
		{VddNominal: 1.1, Vth: 0.3, Alpha: 0},
		{VddNominal: 1.0, Vth: 1.0, Alpha: 1.3},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("model %d should fail validation: %+v", i, m)
		}
	}
}

func TestDelayScaleNominalIsOne(t *testing.T) {
	m := Default45nm()
	if s := m.DelayScale(m.VddNominal); math.Abs(s-1) > 1e-12 {
		t.Fatalf("DelayScale(nominal) = %v", s)
	}
}

func TestDelayScaleBands(t *testing.T) {
	// The reproduction's calibration depends on these bands: VR15 ≈ 1.17x,
	// VR20 ≈ 1.26x delay inflation.
	m := Default45nm()
	s15 := m.ScaleFor(VR15)
	s20 := m.ScaleFor(VR20)
	if s15 < 1.14 || s15 > 1.21 {
		t.Fatalf("VR15 delay scale %v outside calibration band", s15)
	}
	if s20 < 1.22 || s20 > 1.30 {
		t.Fatalf("VR20 delay scale %v outside calibration band", s20)
	}
	if s20 <= s15 {
		t.Fatal("deeper undervolting must inflate delay more")
	}
}

func TestDelayScaleMonotonic(t *testing.T) {
	m := Default45nm()
	prev := m.DelayScale(m.VddNominal)
	for v := m.VddNominal - 0.01; v > m.Vth+0.05; v -= 0.01 {
		s := m.DelayScale(v)
		if s <= prev {
			t.Fatalf("delay scale not increasing at %vV: %v <= %v", v, s, prev)
		}
		prev = s
	}
}

func TestDelayScalePanicsBelowVth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic at Vth")
		}
	}()
	m := Default45nm()
	m.DelayScale(m.Vth)
}

func TestSupplyAtReduction(t *testing.T) {
	m := Default45nm()
	if v := m.SupplyAtReduction(0.15); math.Abs(v-0.935) > 1e-12 {
		t.Fatalf("15%% reduction: %v", v)
	}
	if v := m.SupplyAtReduction(0); v != m.VddNominal {
		t.Fatalf("0%% reduction: %v", v)
	}
}

func TestPowerModel(t *testing.T) {
	m := Default45nm()
	if r := m.DynamicPowerRatio(m.VddNominal); math.Abs(r-1) > 1e-12 {
		t.Fatalf("nominal power ratio %v", r)
	}
	// The paper: 1.1V -> 0.88V is "up to 56%" power improvement... at
	// constant frequency V^2 gives 36%; the quoted 56% includes frequency
	// effects. Check the V^2 component.
	sav := m.PowerSavings(0.88)
	if math.Abs(sav-0.36) > 1e-9 {
		t.Fatalf("PowerSavings(0.88) = %v, want 0.36", sav)
	}
}

func TestCorners(t *testing.T) {
	m := Default45nm()
	c := m.Corner(VR20)
	if c.Name != "VR20" || math.Abs(c.Supply-0.88) > 1e-12 {
		t.Fatalf("corner %+v", c)
	}
	levels := PaperLevels()
	if len(levels) != 2 || levels[0] != VR15 || levels[1] != VR20 {
		t.Fatalf("paper levels %v", levels)
	}
}

func TestSafeVmin(t *testing.T) {
	m := Default45nm()
	// Application tolerates anything down to 0.95V.
	vmin := m.SafeVmin(0.01, 0.5, func(v float64) bool { return v >= 0.95 })
	if math.Abs(vmin-0.95) > 0.011 {
		t.Fatalf("SafeVmin = %v, want ~0.95", vmin)
	}
	// First step already failing keeps nominal.
	vmin = m.SafeVmin(0.01, 0.5, func(v float64) bool { return false })
	if vmin != m.VddNominal {
		t.Fatalf("SafeVmin with no tolerance = %v", vmin)
	}
	// Unlimited tolerance stops at the floor/Vth guard.
	vmin = m.SafeVmin(0.05, 0.6, func(v float64) bool { return true })
	if vmin <= 0.6 || vmin >= m.VddNominal {
		t.Fatalf("SafeVmin unlimited = %v", vmin)
	}
}

func TestTemperatureScale(t *testing.T) {
	m := Default45nm()
	if s := m.TemperatureScale(TempNominalC); math.Abs(s-1) > 1e-12 {
		t.Fatalf("nominal temperature scale %v", s)
	}
	s85 := m.TemperatureScale(85)
	s125 := m.TemperatureScale(125)
	if !(1 < s85 && s85 < s125) {
		t.Fatalf("temperature scaling not monotone: %v %v", s85, s125)
	}
	if s125 > 1.2 {
		t.Fatalf("125C derate %v implausibly large", s125)
	}
	cold := m.TemperatureScale(0)
	if cold >= 1 {
		t.Fatalf("cold silicon should be faster: %v", cold)
	}
}

func TestAgingScale(t *testing.T) {
	m := Default45nm()
	if m.AgingScale(0) != 1 {
		t.Fatal("fresh silicon must have unity scale")
	}
	s3, s7 := m.AgingScale(3), m.AgingScale(7)
	if !(1 < s3 && s3 < s7) {
		t.Fatalf("aging not monotone: %v %v", s3, s7)
	}
	// Sub-linear BTI: the second span ages less than the first.
	if s7-s3 >= s3-1 {
		t.Fatalf("aging should decelerate: %v then %v", s3-1, s7-s3)
	}
	if m.AgedVth(3) <= m.Vth {
		t.Fatal("Vth must drift upward")
	}
}

func TestOverclockScale(t *testing.T) {
	m := Default45nm()
	if m.OverclockScale(1) != 1 || m.OverclockScale(1.2) != 1.2 {
		t.Fatal("overclock scale is the frequency multiplier")
	}
}

func TestStressCornerComposition(t *testing.T) {
	m := Default45nm()
	if s := m.Scale(NominalCorner()); math.Abs(s-1) > 1e-12 {
		t.Fatalf("nominal corner scale %v", s)
	}
	combined := m.Scale(StressCorner{
		SupplyReduction: 0.10, TempC: 85, AgeYears: 3, FreqMult: 1.05,
	})
	product := m.DelayScale(m.SupplyAtReduction(0.10)) *
		m.TemperatureScale(85) * m.AgingScale(3) * 1.05
	if math.Abs(combined-product) > 1e-12 {
		t.Fatalf("corner composition %v != product %v", combined, product)
	}
	if combined <= m.ScaleFor(VR15) {
		t.Fatal("combined stress should exceed mild undervolting alone")
	}
}
