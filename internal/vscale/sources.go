package vscale

import (
	"fmt"
	"math"
)

// The paper's conclusion names four further sources of delay increase the
// framework can assess beyond undervolting: "temperature variations,
// overclocking, transistor aging, and process fluctuations". This file
// models each as a multiplicative delay-scale contribution so the same
// dynamic-timing-analysis path evaluates them.

// Temperature constants: at super-threshold operation in a 45nm-class
// process, delay increases roughly linearly with junction temperature.
const (
	// TempNominalC is the characterization temperature of the library's
	// typical corner.
	TempNominalC = 25.0
	// tempCoeff is the fractional delay increase per degree Celsius.
	tempCoeff = 0.0011
)

// TemperatureScale returns the delay inflation of operating at tempC
// relative to the nominal 25C corner.
func (m Model) TemperatureScale(tempC float64) float64 {
	s := 1 + tempCoeff*(tempC-TempNominalC)
	if s <= 0 {
		panic(fmt.Sprintf("vscale: temperature %.0fC yields non-positive delay", tempC))
	}
	return s
}

// Aging constants: NBTI/PBTI threshold-voltage drift follows a
// sub-linear power law in time.
const (
	// agingCoeffV is the threshold shift after one year of stress, volts.
	agingCoeffV = 0.012
	// agingExponent is the classic BTI time exponent.
	agingExponent = 0.16
)

// AgedVth returns the effective threshold voltage after the given years
// of stress.
func (m Model) AgedVth(years float64) float64 {
	if years < 0 {
		panic("vscale: negative age")
	}
	if years == 0 {
		return m.Vth
	}
	return m.Vth + agingCoeffV*math.Pow(years, agingExponent)
}

// AgingScale returns the delay inflation caused by BTI aging at the
// nominal supply: the alpha-power law evaluated with the drifted
// threshold.
func (m Model) AgingScale(years float64) float64 {
	aged := Model{VddNominal: m.VddNominal, Vth: m.AgedVth(years), Alpha: m.Alpha}
	return aged.delayFactor(m.VddNominal) / m.delayFactor(m.VddNominal)
}

// OverclockScale expresses running the clock freqMult times faster as an
// equivalent delay inflation: shrinking the period by 1/f is
// indistinguishable, for slack purposes, from inflating every delay by f.
func (m Model) OverclockScale(freqMult float64) float64 {
	if freqMult <= 0 {
		panic("vscale: non-positive frequency multiplier")
	}
	return freqMult
}

// StressCorner combines the delay-increase sources of Section VI.
type StressCorner struct {
	// Name labels the corner for reports.
	Name string
	// SupplyReduction is the undervolting fraction (0 for nominal).
	SupplyReduction float64
	// TempC is the junction temperature (TempNominalC for nominal).
	TempC float64
	// AgeYears is the accumulated BTI stress.
	AgeYears float64
	// FreqMult is the overclocking factor (1 for nominal).
	FreqMult float64
}

// Nominal returns the no-stress corner.
func NominalCorner() StressCorner {
	return StressCorner{Name: "nominal", TempC: TempNominalC, FreqMult: 1}
}

// Scale returns the corner's combined delay inflation: the product of the
// independent contributions (the standard first-order composition).
func (m Model) Scale(sc StressCorner) float64 {
	s := 1.0
	if sc.SupplyReduction > 0 {
		s *= m.DelayScale(m.SupplyAtReduction(sc.SupplyReduction))
	}
	if sc.TempC != 0 {
		s *= m.TemperatureScale(sc.TempC)
	}
	if sc.AgeYears > 0 {
		s *= m.AgingScale(sc.AgeYears)
	}
	if sc.FreqMult > 0 {
		s *= m.OverclockScale(sc.FreqMult)
	}
	return s
}
