// Package vscale models how supply-voltage reduction inflates gate delay
// and reduces power. It stands in for the SPICE/SiliconSmart library
// re-characterization of the paper's Section IV-B.1: what dynamic timing
// analysis consumes is a per-corner delay scale factor, and what the
// energy analysis consumes is the dynamic-power ratio between corners.
//
// Delay follows the alpha-power law (Sakurai-Newton):
//
//	t_d(V) ∝ V / (V - Vth)^alpha
//
// and dynamic power follows P ∝ C · V² · f.
package vscale

import (
	"fmt"
	"math"
)

// Corner describes one operating point of the cell library.
type Corner struct {
	// Name labels the corner ("nominal", "VR15", ...).
	Name string
	// Supply is the supply voltage in volts.
	Supply float64
}

// Model captures the technology constants of the target library. The
// defaults mirror a 45nm-class process at the typical corner the paper
// uses (NanGate 45nm, 1.1V, 25C).
type Model struct {
	// VddNominal is the nominal supply voltage in volts.
	VddNominal float64
	// Vth is the effective threshold voltage in volts.
	Vth float64
	// Alpha is the velocity-saturation exponent of the alpha-power law.
	Alpha float64
}

// Default45nm returns the model constants used throughout the reproduction:
// Vdd=1.1V, Vth=0.35V, alpha=1.3. With these, 15% and 20% supply reduction
// inflate delays by ~1.17x and ~1.26x respectively — the bands that produce
// the paper's VR15/VR20 failure ordering.
func Default45nm() Model {
	return Model{VddNominal: 1.1, Vth: 0.35, Alpha: 1.3}
}

// Validate reports whether the model constants are physically meaningful.
func (m Model) Validate() error {
	if m.VddNominal <= 0 || m.Vth <= 0 || m.Alpha <= 0 {
		return fmt.Errorf("vscale: non-positive model constant %+v", m)
	}
	if m.Vth >= m.VddNominal {
		return fmt.Errorf("vscale: Vth %.3f >= Vdd %.3f", m.Vth, m.VddNominal)
	}
	return nil
}

// delayFactor returns the un-normalized alpha-power delay at supply v.
func (m Model) delayFactor(v float64) float64 {
	return v / math.Pow(v-m.Vth, m.Alpha)
}

// DelayScale returns the multiplicative delay inflation at supply v
// relative to the nominal supply. DelayScale(VddNominal) == 1.
// It panics if v does not exceed Vth (the circuit would not switch).
func (m Model) DelayScale(v float64) float64 {
	if v <= m.Vth {
		panic(fmt.Sprintf("vscale: supply %.3fV at or below Vth %.3fV", v, m.Vth))
	}
	return m.delayFactor(v) / m.delayFactor(m.VddNominal)
}

// SupplyAtReduction returns the supply voltage after reducing the nominal
// supply by the given fraction (0.15 → 15% reduction).
func (m Model) SupplyAtReduction(fraction float64) float64 {
	if fraction < 0 || fraction >= 1 {
		panic(fmt.Sprintf("vscale: reduction fraction %.3f out of [0,1)", fraction))
	}
	return m.VddNominal * (1 - fraction)
}

// DynamicPowerRatio returns dynamic power at supply v relative to nominal,
// at constant frequency: (v/Vdd)^2.
func (m Model) DynamicPowerRatio(v float64) float64 {
	r := v / m.VddNominal
	return r * r
}

// PowerSavings returns the fractional dynamic-power saving of running at
// supply v instead of nominal, at constant frequency.
func (m Model) PowerSavings(v float64) float64 {
	return 1 - m.DynamicPowerRatio(v)
}

// VRLevel is a named voltage-reduction level of the evaluation.
type VRLevel struct {
	// Name is the paper's label ("VR15").
	Name string
	// Reduction is the supply reduction fraction (0.15).
	Reduction float64
}

// The two voltage-reduction levels evaluated in the paper, plus nominal.
var (
	Nominal = VRLevel{Name: "nominal", Reduction: 0}
	VR15    = VRLevel{Name: "VR15", Reduction: 0.15}
	VR20    = VRLevel{Name: "VR20", Reduction: 0.20}
)

// PaperLevels returns the VR levels of the paper's evaluation, in order.
func PaperLevels() []VRLevel { return []VRLevel{VR15, VR20} }

// Corner materializes a VR level against a model.
func (m Model) Corner(level VRLevel) Corner {
	return Corner{Name: level.Name, Supply: m.SupplyAtReduction(level.Reduction)}
}

// ScaleFor is shorthand for the delay inflation of a VR level.
func (m Model) ScaleFor(level VRLevel) float64 {
	return m.DelayScale(m.SupplyAtReduction(level.Reduction))
}

// SafeVmin scans supply voltages downward from nominal in the given step
// and returns the lowest supply for which ok(v) reports true for all
// voltages visited down to and including it. It returns the nominal supply
// if even the first step fails. This implements the Section V-C use case:
// lowering voltage while the application's AVM stays at the target.
func (m Model) SafeVmin(step float64, floor float64, ok func(v float64) bool) float64 {
	if step <= 0 {
		panic("vscale: non-positive step")
	}
	best := m.VddNominal
	for v := m.VddNominal - step; v > floor && v > m.Vth; v -= step {
		if !ok(v) {
			break
		}
		best = v
	}
	return best
}
