package vscale_test

import (
	"fmt"

	"teva/internal/vscale"
)

// ExampleModel_DelayScale shows the delay inflation of the paper's two
// voltage-reduction corners.
func ExampleModel_DelayScale() {
	m := vscale.Default45nm()
	for _, level := range vscale.PaperLevels() {
		fmt.Printf("%s: supply %.3f V, delays x%.3f\n",
			level.Name, m.SupplyAtReduction(level.Reduction), m.ScaleFor(level))
	}
	// Output:
	// VR15: supply 0.935 V, delays x1.174
	// VR20: supply 0.880 V, delays x1.256
}

// ExampleModel_Scale composes several delay-increase sources into one
// stress corner (the paper's Section VI future work).
func ExampleModel_Scale() {
	m := vscale.Default45nm()
	corner := vscale.StressCorner{
		Name: "hot aged part", SupplyReduction: 0.10, TempC: 85, AgeYears: 3, FreqMult: 1,
	}
	fmt.Printf("%s: delays x%.3f\n", corner.Name, m.Scale(corner))
	// Output:
	// hot aged part: delays x1.209
}
