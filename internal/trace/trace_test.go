package trace

import (
	"testing"

	"teva/internal/fpu"
	"teva/internal/workloads"
)

func capture(t *testing.T, name string) *Trace {
	t.Helper()
	w, err := workloads.ByName(name, workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(w, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCaptureSobel(t *testing.T) {
	tr := capture(t, "sobel")
	if tr.Workload != "sobel" || tr.TotalInstr == 0 || tr.Cycles == 0 {
		t.Fatalf("trace metadata: %+v", tr)
	}
	// Sobel uses dmul, dadd, ddiv, i2f, f2i.
	for _, op := range []fpu.Op{fpu.DMul, fpu.DAdd, fpu.DDiv, fpu.DI2F, fpu.DF2I} {
		if tr.OpCounts[op] == 0 {
			t.Errorf("sobel trace missing %s ops", op)
		}
		if len(tr.Pairs[op]) == 0 {
			t.Errorf("sobel trace has no %s operand samples", op)
		}
	}
	if tr.FPTotal() == 0 {
		t.Fatal("no FP ops counted")
	}
	if share := tr.OpShare(fpu.DMul); share <= 0 || share >= 1 {
		t.Fatalf("dmul share %v", share)
	}
	// Single-precision ops never appear in sobel.
	if tr.OpCounts[fpu.SMul] != 0 || len(tr.Pairs[fpu.SMul]) != 0 {
		t.Fatal("unexpected single-precision activity")
	}
}

func TestReservoirCapRespected(t *testing.T) {
	w, err := workloads.ByName("is", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Capture(w, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for op := range tr.Pairs {
		if len(tr.Pairs[op]) > 100 {
			t.Fatalf("%s sample exceeds cap: %d", fpu.Op(op), len(tr.Pairs[op]))
		}
	}
	// is performs far more fp-mul than the cap.
	if tr.OpCounts[fpu.DMul] <= 100 || len(tr.Pairs[fpu.DMul]) != 100 {
		t.Fatalf("reservoir should be full: count=%d sample=%d",
			tr.OpCounts[fpu.DMul], len(tr.Pairs[fpu.DMul]))
	}
}

func TestCaptureDeterministic(t *testing.T) {
	t1 := capture(t, "cg")
	t2 := capture(t, "cg")
	for op := range t1.Pairs {
		if len(t1.Pairs[op]) != len(t2.Pairs[op]) {
			t.Fatal("sample sizes differ across identical captures")
		}
		for i := range t1.Pairs[op] {
			if t1.Pairs[op][i] != t2.Pairs[op][i] {
				t.Fatal("samples differ across identical captures")
			}
		}
	}
}

func TestOperandsAreWorkloadTypical(t *testing.T) {
	// hotspot's fp-mul operands include the characteristic constants
	// (temperatures near 323, coefficients) — magnitudes far from
	// uniformly random 64-bit patterns. Check exponent concentration:
	// most operands decode to absolute values in (1e-30, 1e10).
	tr := capture(t, "hotspot")
	pairs := tr.Pairs[fpu.DMul]
	if len(pairs) == 0 {
		t.Fatal("no dmul samples")
	}
	typical := 0
	for _, p := range pairs {
		if inRange(p.A) && inRange(p.B) {
			typical++
		}
	}
	if frac := float64(typical) / float64(len(pairs)); frac < 0.9 {
		t.Fatalf("only %.2f of operands in workload-typical range", frac)
	}
}

func inRange(bits uint64) bool {
	exp := int(bits >> 52 & 0x7ff)
	if bits<<1 == 0 {
		return true // zero
	}
	return exp > 923 && exp < 1057 // |v| in ~(1e-30, 1e10)
}
