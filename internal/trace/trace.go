// Package trace captures floating-point operand traces from real workload
// executions. The workload-aware error model characterizes the target
// design with dynamic timing analysis over operands "randomly extracted
// from the executed workload" (Section IV-C.3); this package performs that
// extraction with per-instruction-type reservoir sampling while the
// microarchitectural simulator runs the benchmark.
package trace

import (
	"fmt"

	"teva/internal/cpu"
	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/prng"
	"teva/internal/workloads"
)

// Trace is the operand sample extracted from one workload execution.
type Trace struct {
	// Workload names the benchmark.
	Workload string
	// Pairs holds the sampled operand pairs per FPU instruction.
	Pairs [fpu.NumOps][]dta.Pair
	// OpCounts is the total dynamic count per FPU instruction.
	OpCounts [fpu.NumOps]int64
	// TotalInstr is the total dynamic instruction count of the run.
	TotalInstr int64
	// Cycles is the error-free execution time.
	Cycles uint64
}

// FPTotal returns the total dynamic FPU instruction count.
func (t *Trace) FPTotal() int64 {
	var sum int64
	for _, c := range t.OpCounts {
		sum += c
	}
	return sum
}

// OpShare returns op's share of all dynamic instructions.
func (t *Trace) OpShare(op fpu.Op) float64 {
	if t.TotalInstr == 0 {
		return 0
	}
	return float64(t.OpCounts[op]) / float64(t.TotalInstr)
}

// Fingerprint returns a content hash over everything a characterization
// derives from the trace: dynamic counts and the sampled operand pools
// themselves. Two traces with equal fingerprints drive identical DTA, so
// the hash keys on-disk artifacts computed from a trace — a different
// workload scale, trace seed, or sampler change yields a different
// fingerprint and therefore a cache miss instead of a stale hit.
func (t *Trace) Fingerprint() uint64 {
	h := uint64(0xcbf29ce484222325)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xFF
			h *= 0x100000001b3
		}
	}
	mix(uint64(t.TotalInstr))
	mix(t.Cycles)
	for op := range t.Pairs {
		mix(uint64(t.OpCounts[op]))
		mix(uint64(len(t.Pairs[op])))
		for _, p := range t.Pairs[op] {
			mix(p.A)
			mix(p.B)
		}
	}
	return h
}

// capturer is the cpu.Injector that samples operands without injecting.
type capturer struct {
	res [fpu.NumOps]*prng.Reservoir[dta.Pair]
}

func (c *capturer) OnWriteback(ev cpu.Event) uint64 {
	if ev.FPUDatapath {
		c.res[ev.FPOp].Offer(dta.Pair{A: ev.A, B: ev.B})
	}
	return 0
}

// Capture runs the workload to completion and extracts up to perOpCap
// operand pairs per instruction type.
func Capture(w *workloads.Workload, perOpCap int, seed uint64) (*Trace, error) {
	src := prng.New(seed)
	cap := &capturer{}
	for i := range cap.res {
		cap.res[i] = prng.NewReservoir[dta.Pair](perOpCap, src.Split())
	}
	c := cpu.New(w.Program, cpu.Config{Injector: cap, TrapFPInvalid: true})
	res := c.Run(1 << 40)
	if res.Status != cpu.Halted {
		return nil, fmt.Errorf("trace: %s did not halt: %v (%s)", w.Name, res.Status, res.Reason)
	}
	t := &Trace{
		Workload:   w.Name,
		TotalInstr: res.Instret,
		Cycles:     res.Cycles,
	}
	for op := range cap.res {
		t.Pairs[op] = cap.res[op].Items()
		t.OpCounts[op] = res.FPOps[op]
	}
	return t, nil
}
