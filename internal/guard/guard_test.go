package guard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRecoveredPassesThroughResults(t *testing.T) {
	if err := Recovered("ok", func() error { return nil }); err != nil {
		t.Fatalf("nil result mangled: %v", err)
	}
	want := errors.New("boom")
	if err := Recovered("err", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("error result mangled: %v", err)
	}
}

func TestRecoveredConvertsPanic(t *testing.T) {
	err := Recovered("cg/WA/VR20", func() error { panic("injected") })
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T", err)
	}
	if pe.Label != "cg/WA/VR20" || pe.Value != "injected" {
		t.Fatalf("panic identity lost: %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "guard") {
		t.Fatal("stack not captured")
	}
	if !IsPanic(err) {
		t.Fatal("IsPanic must detect a bare PanicError")
	}
	wrapped := fmt.Errorf("cell failed: %w", err)
	if !IsPanic(wrapped) || !IsPanic(errors.Join(errors.New("other"), wrapped)) {
		t.Fatal("IsPanic must see through wrapping and joins")
	}
	if IsPanic(errors.New("plain")) || IsPanic(nil) {
		t.Fatal("IsPanic false positives")
	}
}

func TestSinkCollectsAndJoins(t *testing.T) {
	var s Sink
	s.Add(nil) // ignored
	if s.Len() != 0 || s.Join() != nil {
		t.Fatal("empty sink must join to nil")
	}
	e1, e2 := errors.New("one"), errors.New("two")
	s.Add(e1)
	s.Add(e2)
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	j := s.Join()
	if !errors.Is(j, e1) || !errors.Is(j, e2) {
		t.Fatalf("join lost errors: %v", j)
	}
}

func TestGoIsolatesWorkerPanics(t *testing.T) {
	var (
		wg   sync.WaitGroup
		sink Sink
		mu   sync.Mutex
		done []int
	)
	for i := 0; i < 16; i++ {
		Go(&wg, &sink, fmt.Sprintf("task %d", i), func() error {
			if i == 7 {
				panic("worker 7 explodes")
			}
			mu.Lock()
			done = append(done, i)
			mu.Unlock()
			return nil
		})
	}
	wg.Wait()
	if len(done) != 15 {
		t.Fatalf("healthy workers must complete: %d/15 done", len(done))
	}
	err := sink.Join()
	if err == nil || !IsPanic(err) {
		t.Fatalf("panic not delivered to sink: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Label != "task 7" {
		t.Fatalf("panic label lost: %v", err)
	}
}
