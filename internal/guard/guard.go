// Package guard provides the panic-isolation primitives for TEVA's
// worker pools. The experiment pipeline fans a campaign matrix out over
// hundreds of goroutines; without a barrier, a single panicking cell
// (a simulator invariant violation, a corrupt model, an injected chaos
// fault) kills the whole process and throws away every in-flight result.
// guard converts panics at the worker boundary into ordinary errors that
// carry the identity of the failing work unit plus the goroutine stack,
// so one bad cell degrades to one named error while the rest of the
// matrix completes.
//
// The panicbarrier analyzer in internal/lint enforces that every
// goroutine launched inside internal/experiments and internal/campaign
// routes through Go (or an equivalent Recovered-wrapped body), so the
// barrier cannot silently erode as the pipeline grows.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is a worker panic converted into an error at the isolation
// barrier. Label identifies the work unit that panicked (a campaign cell
// key, a task index), Value is the recovered panic value, and Stack is
// the panicking goroutine's stack captured at recovery time.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v\n%s", e.Label, e.Value, e.Stack)
}

// IsPanic reports whether err wraps a *PanicError anywhere in its tree —
// the pipeline uses this to distinguish isolatable per-cell failures
// (report, keep going) from hard errors (fail fast, cancel the rest).
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// Recovered runs fn, converting a panic into a *PanicError labeled with
// the work unit's identity. A nil return from fn stays nil; an error
// return passes through unchanged.
func Recovered(label string, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Label: label, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Sink collects errors from concurrent workers. The zero value is ready
// to use; all methods are safe for concurrent use.
type Sink struct {
	mu   sync.Mutex
	errs []error
}

// Add records a non-nil error (nil is ignored, so workers can report
// unconditionally).
func (s *Sink) Add(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

// Len returns the number of recorded errors.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.errs)
}

// Join returns every recorded error combined with errors.Join (nil when
// none were recorded), in the order they were added.
func (s *Sink) Join() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return errors.Join(s.errs...)
}

// Go launches fn on a new goroutine registered on wg, with the panic
// barrier installed: a panic inside fn is recovered into a *PanicError
// and delivered, like any returned error, to sink. This is the required
// launch path for worker goroutines in internal/experiments and
// internal/campaign (enforced by the panicbarrier analyzer).
func Go(wg *sync.WaitGroup, sink *Sink, label string, fn func() error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink.Add(Recovered(label, fn))
	}()
}
