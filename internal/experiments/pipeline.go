package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"teva/internal/artifact"
	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/obs"
)

// Metric names published by the experiment pipeline. A memo "hit" is a
// do() call that found an existing entry (the single-flight dedup saved a
// model build or campaign cell); a "miss" created the entry.
const (
	MetricMemoHits   = "experiments.memo_hits"
	MetricMemoMisses = "experiments.memo_misses"
)

// memo is a generic single-flight lazy map: the first caller of a key
// computes the value while concurrent callers of the same key block until
// it is ready, so the parallel experiment pipeline never duplicates a
// model build, trace capture, or campaign cell. Values (and errors) are
// retained for the life of the Env.
type memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	// hits/misses, when non-nil, tally do() lookups on the Env's registry.
	hits, misses *obs.Counter
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func newMemo[V any]() *memo[V] {
	return &memo[V]{entries: make(map[string]*memoEntry[V])}
}

// newMemoObs is newMemo with hit/miss counters attached (nil counters are
// valid no-ops, so a metrics-free Env costs nothing extra).
func newMemoObs[V any](m *obs.Registry) *memo[V] {
	mm := newMemo[V]()
	mm.hits = m.Counter(MetricMemoHits)
	mm.misses = m.Counter(MetricMemoMisses)
	return mm
}

// do returns the memoized value for key, computing it with fn exactly
// once across all goroutines.
func (m *memo[V]) do(key string, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	if ok {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// forEachLimit runs fn(i) for every i in [0, n) on at most workers
// goroutines (errgroup-style bounded fan-out). Every task runs to
// completion; the first error observed is returned.
func forEachLimit(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// workers returns the pipeline's fan-out width.
func (e *Env) workers() int {
	if e.F.Cfg.Workers > 0 {
		return e.F.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Progress is a point-in-time snapshot of the campaign matrix build, for
// the CLI's periodic -progress reporting.
type Progress struct {
	// CellsDone counts campaign cells materialized so far (computed or
	// reloaded) out of CellsTotal planned by RunCampaigns.
	CellsDone, CellsTotal int64
	// CellsCached counts the cells that were reloaded from the artifact
	// store instead of re-run.
	CellsCached int64
	// Cache is the artifact store's counters (DTA summaries included).
	Cache artifact.Stats
}

// Progress returns the current matrix-build counters.
func (e *Env) Progress() Progress {
	return Progress{
		CellsDone:   e.cellsDone.Load(),
		CellsTotal:  e.cellsTotal.Load(),
		CellsCached: e.cellsCached.Load(),
		Cache:       e.F.Cfg.Artifacts.Stats(),
	}
}

// cfgTag canonically encodes every framework/option setting that shapes
// model development, so artifacts from different configurations never
// alias in a shared cache directory.
func (e *Env) cfgTag() string {
	c := e.F.Cfg
	return fmt.Sprintf("scale=%s,ro=%d,wo=%d,da=%d,exact=%v",
		e.Opts.Scale, c.RandomOperands, c.WorkloadOperands, c.DASample, c.ExactTiming)
}

// cachedSummary memoizes (in-process and, when a store is configured,
// on-disk) one ad-hoc DTA characterization stream: the Figure 6
// convergence draws, the Section VI stress corners, the validation
// re-measurements, the history ablation, and the process-variation dies
// all flow through here, so a re-run with the same seed reloads them
// instead of re-simulating. The tag must uniquely name the stream's
// provenance (which rng draw, which die, ...); compute performs the
// actual analysis on a miss.
func (e *Env) cachedSummary(tag string, op fpu.Op, scale float64, samples int, compute func() *dta.Summary) *dta.Summary {
	key := fmt.Sprintf("%s|%s|%v|%d", tag, op, scale, samples)
	s, _ := e.streams.do(key, func() (*dta.Summary, error) {
		store := e.F.Cfg.Artifacts
		ak := artifact.SummaryKey(tag+","+e.cfgTag(), op.String(), scale,
			e.F.Cfg.Seed, samples, e.F.Cfg.ExactTiming)
		sum := new(dta.Summary)
		if store.Load(ak, sum) {
			return sum, nil
		}
		sum = compute()
		_ = store.Save(ak, sum)
		return sum, nil
	})
	return s
}
