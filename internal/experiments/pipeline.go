package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"teva/internal/artifact"
	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/guard"
	"teva/internal/obs"
)

// Metric names published by the experiment pipeline. A memo "hit" is a
// do() call that found an existing entry (the single-flight dedup saved a
// model build or campaign cell); a "miss" created the entry. Panics
// recovered counts worker panics the memo barrier converted into labeled
// per-cell errors; cells aborted counts matrix cells that ended in an
// error instead of a result.
const (
	MetricMemoHits        = "experiments.memo_hits"
	MetricMemoMisses      = "experiments.memo_misses"
	MetricPanicsRecovered = "experiments.panics_recovered"
	MetricCellsAborted    = "experiments.cells_aborted"
)

// ErrDrained reports that a soft drain request (first SIGINT) stopped the
// matrix build before every cell was dispatched. The cells that finished
// were cached as usual, so a re-run resumes from where the drain cut off.
var ErrDrained = errors.New("experiments: run drained before completing the matrix")

// memo is a generic single-flight lazy map: the first caller of a key
// computes the value while concurrent callers of the same key block until
// it is ready, so the parallel experiment pipeline never duplicates a
// model build, trace capture, or campaign cell. Values (and errors) are
// retained for the life of the Env. A compute that panics is converted by
// the guard barrier into an error labeled with the memo key (the cell
// identity), so one poisoned cell reports itself instead of killing the
// process — and instead of leaving waiters of the same key deadlocked on
// a half-initialized entry.
type memo[V any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[V]
	// hits/misses/panics, when non-nil, tally do() lookups and recovered
	// compute panics on the Env's registry.
	hits, misses, panics *obs.Counter
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func newMemo[V any]() *memo[V] {
	return &memo[V]{entries: make(map[string]*memoEntry[V])}
}

// newMemoObs is newMemo with hit/miss counters attached (nil counters are
// valid no-ops, so a metrics-free Env costs nothing extra).
func newMemoObs[V any](m *obs.Registry) *memo[V] {
	mm := newMemo[V]()
	mm.hits = m.Counter(MetricMemoHits)
	mm.misses = m.Counter(MetricMemoMisses)
	mm.panics = m.Counter(MetricPanicsRecovered)
	return mm
}

// do returns the memoized value for key, computing it with fn exactly
// once across all goroutines. A panicking fn is recorded as the entry's
// error (a *guard.PanicError carrying the key and stack), never re-raised.
func (m *memo[V]) do(key string, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	if ok {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
	e.once.Do(func() {
		e.err = guard.Recovered(key, func() error {
			var err error
			e.val, err = fn()
			return err
		})
		if guard.IsPanic(e.err) {
			m.panics.Inc()
		}
	})
	return e.val, e.err
}

// forEachLimit runs fn for every index in [0, n) on at most workers
// goroutines, with the failure semantics the matrix build needs:
//
//   - Fail fast: the first hard error cancels the inner context and stops
//     dispatch, so a 1000-cell matrix with a broken cell #3 does not burn
//     hours finishing the other 997 before reporting.
//   - Panic isolation: an error that is a recovered panic
//     (guard.IsPanic) marks its cell poisoned but does NOT abort the
//     rest — one bad cell is reported by name while the matrix completes.
//   - Drain: a closed drain channel stops dispatching new tasks but lets
//     in-flight ones finish (and be cached); the result then includes
//     ErrDrained.
//   - All failures are returned together via errors.Join; cancellation
//     echoes from in-flight tasks aborted by the fail-fast are filtered
//     out so the join names root causes only.
func forEachLimit(ctx context.Context, drain <-chan struct{}, workers, n int, fn func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		drained atomic.Bool
		sink    guard.Sink
	)
	draining := func() bool {
		if drain == nil {
			return false
		}
		select {
		case <-drain:
			drained.Store(true)
			return true
		default:
			return false
		}
	}
	for w := 0; w < workers; w++ {
		guard.Go(&wg, &sink, fmt.Sprintf("pipeline worker %d", w), func() error {
			for {
				if inner.Err() != nil || draining() {
					return nil
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return nil
				}
				err := fn(inner, i)
				switch {
				case err == nil:
				case guard.IsPanic(err):
					sink.Add(err)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					// An in-flight task aborted by the fail-fast cancel (or
					// by the caller's deadline); the root cause is already
					// in the sink or is ctx's own error, reported below.
				default:
					sink.Add(err)
					cancel()
				}
			}
		})
	}
	wg.Wait()
	var errs []error
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	if err := sink.Join(); err != nil {
		errs = append(errs, err)
	}
	if drained.Load() {
		errs = append(errs, ErrDrained)
	}
	return errors.Join(errs...)
}

// workers returns the pipeline's fan-out width.
func (e *Env) workers() int {
	if e.F.Cfg.Workers > 0 {
		return e.F.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Progress is a point-in-time snapshot of the campaign matrix build, for
// the CLI's periodic -progress reporting.
type Progress struct {
	// CellsDone counts campaign cells materialized so far (computed or
	// reloaded) out of CellsTotal planned by RunCampaigns.
	CellsDone, CellsTotal int64
	// CellsCached counts the cells that were reloaded from the artifact
	// store instead of re-run.
	CellsCached int64
	// Cache is the artifact store's counters (DTA summaries included).
	Cache artifact.Stats
}

// Progress returns the current matrix-build counters.
func (e *Env) Progress() Progress {
	return Progress{
		CellsDone:   e.cellsDone.Load(),
		CellsTotal:  e.cellsTotal.Load(),
		CellsCached: e.cellsCached.Load(),
		Cache:       e.F.Cfg.Artifacts.Stats(),
	}
}

// cfgTag canonically encodes every framework/option setting that shapes
// model development, so artifacts from different configurations never
// alias in a shared cache directory.
func (e *Env) cfgTag() string {
	c := e.F.Cfg
	return fmt.Sprintf("scale=%s,ro=%d,wo=%d,da=%d,exact=%v,tf=%v",
		e.Opts.Scale, c.RandomOperands, c.WorkloadOperands, c.DASample, c.Timing.Exact(),
		c.TimeoutFactor)
}

// cachedSummary memoizes (in-process and, when a store is configured,
// on-disk) one ad-hoc DTA characterization stream: the Figure 6
// convergence draws, the Section VI stress corners, the validation
// re-measurements, the history ablation, and the process-variation dies
// all flow through here, so a re-run with the same seed reloads them
// instead of re-simulating. The tag must uniquely name the stream's
// provenance (which rng draw, which die, ...); compute performs the
// actual analysis on a miss.
func (e *Env) cachedSummary(tag string, op fpu.Op, scale float64, samples int, compute func() *dta.Summary) *dta.Summary {
	key := fmt.Sprintf("%s|%s|%v|%d", tag, op, scale, samples)
	s, _ := e.streams.do(key, func() (*dta.Summary, error) {
		store := e.F.Cfg.Artifacts
		ak := artifact.SummaryKey(tag+","+e.cfgTag(), op.String(), scale,
			e.F.Cfg.Seed, samples, e.F.Cfg.Timing.Exact())
		sum := new(dta.Summary)
		if store.Load(ak, sum) {
			return sum, nil
		}
		sum = compute()
		// Cache write failures are non-fatal (the summary is recomputed
		// next run): counted by the store on artifact.write_errors, warned
		// about once per Env.
		e.noteSaveError(store.Save(ak, sum))
		return sum, nil
	})
	return s
}
