package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/shard"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// This file is the bridge between the experiment pipeline and
// internal/shard's process supervision. Sharding is cache prewarming:
// worker processes compute characterization summaries and campaign cells
// into the shared artifact store, then the supervisor process runs the
// suite exactly as an unsharded run would — every prewarmed unit
// reloads, everything else (quarantined poison units, units lost to dead
// workers) is computed in-process. The report bytes are therefore
// identical to the single-process run by construction, and the
// degradation ladder (N workers -> fewer -> zero) needs no special
// casing anywhere in the experiment code.

// PlanOf captures env's resolved pipeline configuration as a shard.Plan
// — everything a worker process needs to rebuild a framework whose
// artifact provenance keys match the supervisor's bit for bit.
func PlanOf(e *Env) shard.Plan {
	cfg := e.F.Cfg
	p := shard.Plan{
		Seed:             cfg.Seed,
		Scale:            e.Opts.Scale.String(),
		Runs:             e.Opts.Runs,
		RandomOperands:   cfg.RandomOperands,
		WorkloadOperands: cfg.WorkloadOperands,
		DASample:         cfg.DASample,
		Workers:          cfg.Workers,
		TimeoutFactor:    cfg.TimeoutFactor,
		Timing:           cfg.Timing.String(),
		ScreenEnabled:    cfg.Screen.Enabled,
		ScreenGuardband:  cfg.Screen.Guardband,
		ScreenValidate:   cfg.Screen.Validate,
	}
	if cfg.Artifacts != nil {
		p.CacheDir = cfg.Artifacts.Dir()
	}
	return p
}

// NewEnvFromPlan rebuilds a worker-side environment from a supervisor's
// Plan: same seed, scales, sample sizes, engine, and screen settings,
// sharing the supervisor's cache directory. The worker's summaries and
// cells land under exactly the keys the supervisor's in-process run will
// load.
func NewEnvFromPlan(ctx context.Context, plan shard.Plan) (*Env, error) {
	eng, err := dta.ParseEngine(plan.Timing)
	if err != nil {
		return nil, fmt.Errorf("plan timing: %w", err)
	}
	sc, err := workloads.ParseScale(plan.Scale)
	if err != nil {
		return nil, fmt.Errorf("plan scale: %w", err)
	}
	cfg := core.Config{
		Seed:             plan.Seed,
		RandomOperands:   plan.RandomOperands,
		WorkloadOperands: plan.WorkloadOperands,
		DASample:         plan.DASample,
		Workers:          plan.Workers,
		TimeoutFactor:    plan.TimeoutFactor,
		Timing:           eng,
		Screen: dta.ScreenConfig{
			Enabled:   plan.ScreenEnabled,
			Guardband: plan.ScreenGuardband,
			Validate:  plan.ScreenValidate,
		},
	}
	if plan.CacheDir != "" {
		store, err := artifact.OpenIn(plan.CacheDir, nil)
		if err != nil {
			return nil, fmt.Errorf("plan cache dir: %w", err)
		}
		cfg.Artifacts = store
	}
	f, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	opts := DefaultOptions()
	opts.Scale = sc
	if plan.Runs > 0 {
		opts.Runs = plan.Runs
	}
	return NewEnvContext(ctx, f, opts), nil
}

// ShardUnits plans the work-unit set for an experiment selection: the
// random-operand characterizations, workload characterizations, and
// campaign cells the selected experiments will consume. Units the
// selection does not need are simply not planned — the prewarm is an
// accelerator, so under-planning costs time, never correctness.
//
// Stages order the schedule: summaries (stage 0) complete before
// campaign cells (stage 1) lease, so every cell's model build on every
// worker is a cache read instead of a duplicated characterization.
func ShardUnits(e *Env, names []string) ([]shard.Unit, error) {
	if len(names) == 0 {
		names = []string{"all"}
	}
	selected := map[string]bool{}
	for _, name := range names {
		selected[name] = true
	}
	want := func(ns ...string) bool {
		if selected["all"] {
			return true
		}
		for _, n := range ns {
			if selected[n] {
				return true
			}
		}
		return false
	}
	needRandom := want("fig7", "fig9", "fig10", "avm")
	needWA := want("fig5", "fig8", "fig9", "fig10", "avm", "validate")
	needCells := want("fig9", "avm")

	var units []shard.Unit
	if needRandom {
		for _, level := range e.Levels() {
			for _, op := range fpu.Ops() {
				units = append(units, shard.Unit{
					Kind: shard.UnitRandom, Level: level.Name,
					Op: int(op), OpName: op.String(), Stage: 0,
				})
			}
		}
	}
	if needWA || needCells {
		ws, err := e.Workloads()
		if err != nil {
			return nil, err
		}
		if needWA {
			for _, level := range e.Levels() {
				for _, w := range ws {
					units = append(units, shard.Unit{
						Kind: shard.UnitWA, Level: level.Name,
						Workload: w.Name, Stage: 0,
					})
				}
			}
		}
		if needCells {
			for _, w := range ws {
				for _, level := range e.Levels() {
					for _, kind := range ModelKinds() {
						units = append(units, shard.Unit{
							Kind: shard.UnitCell, Level: level.Name,
							Workload: w.Name, Model: string(kind), Stage: 1,
						})
					}
				}
			}
		}
	}
	return units, nil
}

// unitSum is the canonical checksum of a unit's result value — what a
// worker reports to the tracker, and what late-completion reconciliation
// compares. JSON marshaling is deterministic for these result types
// (struct fields in order, map keys sorted), so byte-identical results
// produce identical sums across processes.
func unitSum(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// levelByName resolves a Plan-carried level name against the evaluated
// set.
func (e *Env) levelByName(name string) (vscale.VRLevel, error) {
	for _, level := range e.Levels() {
		if level.Name == name {
			return level, nil
		}
	}
	if name == vscale.Nominal.Name {
		return vscale.Nominal, nil
	}
	return vscale.VRLevel{}, fmt.Errorf("unknown voltage level %q", name)
}

// ExecuteUnit computes one shard work unit against env, returning the
// result checksum. The computation is the same code path the in-process
// suite runs — ExecuteUnit exists only to give it per-unit granularity
// and a canonical checksum.
func ExecuteUnit(ctx context.Context, e *Env, u shard.Unit) (string, error) {
	level, err := e.levelByName(u.Level)
	if err != nil {
		return "", err
	}
	switch u.Kind {
	case shard.UnitRandom:
		if u.Op < 0 || u.Op >= int(fpu.NumOps) {
			return "", fmt.Errorf("unit %s: op ordinal %d out of range", u.ID(), u.Op)
		}
		s, err := e.F.RandomSummaryOpCtx(ctx, level, fpu.Op(u.Op))
		if err != nil {
			return "", err
		}
		return unitSum(s)
	case shard.UnitWA:
		w, err := e.workloadByName(u.Workload)
		if err != nil {
			return "", err
		}
		sums, err := e.WASummaries(level, w)
		if err != nil {
			return "", err
		}
		// Marshal in fpu.Ops order: map iteration order must not leak
		// into the checksum.
		ordered := make([]*dta.Summary, 0, len(sums))
		for _, op := range fpu.Ops() {
			if s, ok := sums[op]; ok {
				ordered = append(ordered, s)
			}
		}
		return unitSum(ordered)
	case shard.UnitCell:
		w, err := e.workloadByName(u.Workload)
		if err != nil {
			return "", err
		}
		r, err := e.CellCtx(ctx, w, errmodel.Kind(u.Model), level)
		if err != nil {
			return "", err
		}
		return unitSum(r)
	default:
		return "", fmt.Errorf("unknown unit kind %q", u.Kind)
	}
}

func (e *Env) workloadByName(name string) (*workloads.Workload, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// WorkerOptions configures one worker process (cmd/teva-worker, or the
// test re-exec harness).
type WorkerOptions struct {
	// Supervisor is the coordinator's dial address.
	Supervisor string
	// ID is the supervisor-assigned worker identity.
	ID string
	// Diag receives the worker's progress notes (nil: discarded). The
	// supervisor pipes it, line-prefixed, onto its own Diag stream.
	Diag io.Writer
	// KillUnitSub, when non-empty, SIGKILLs this process the moment it
	// leases a unit whose ID contains the substring — the poison-cell
	// chaos hook (restarted workers inherit it, so the unit strikes out
	// and is quarantined).
	KillUnitSub string
	// KillAfterUnits, when > 0, SIGKILLs this process after completing
	// that many units — the transient-crash chaos hook.
	KillAfterUnits int
}

// WorkerMain is the worker process body: fetch the plan, rebuild the
// environment, then lease/execute/complete until the supervisor reports
// the unit set drained. It returns nil on a clean drain; the supervisor
// treats any exit before that as a fault and reassigns the worker's
// lease.
func WorkerMain(ctx context.Context, o WorkerOptions) error {
	diag := o.Diag
	if diag == nil {
		diag = io.Discard
	}
	c := shard.NewClient(o.Supervisor)
	plan, err := c.FetchPlan(ctx)
	if err != nil {
		return fmt.Errorf("worker %s: fetch plan: %w", o.ID, err)
	}
	env, err := NewEnvFromPlan(ctx, plan)
	if err != nil {
		return fmt.Errorf("worker %s: build env: %w", o.ID, err)
	}
	fmt.Fprintf(diag, "worker %s: substrate ready (seed=%#x scale=%s workers=%d)\n",
		o.ID, plan.Seed, plan.Scale, plan.Workers)
	completed := 0
	return shard.ClientLoop(ctx, c, o.ID, func(ctx context.Context, u shard.Unit) (string, error) {
		if o.KillUnitSub != "" && strings.Contains(u.ID(), o.KillUnitSub) {
			fmt.Fprintf(diag, "worker %s: chaos self-SIGKILL on unit %s\n", o.ID, u.ID())
			killSelf()
		}
		sum, err := ExecuteUnit(ctx, env, u)
		if err != nil {
			fmt.Fprintf(diag, "worker %s: unit %s failed: %v\n", o.ID, u.ID(), err)
			return "", err
		}
		completed++
		fmt.Fprintf(diag, "worker %s: unit %s done (%d total)\n", o.ID, u.ID(), completed)
		if o.KillAfterUnits > 0 && completed >= o.KillAfterUnits {
			fmt.Fprintf(diag, "worker %s: chaos self-SIGKILL after %d units\n", o.ID, completed)
			killSelf()
		}
		return sum, nil
	})
}

// killSelf delivers SIGKILL to the current process: no deferred cleanup,
// no exit handlers — the closest portable stand-in for an OOM kill.
func killSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {} // unreachable on delivery; block rather than return
}

// shardPrewarm runs the sharded cache prewarm for a RunSuite call. It
// never fails the run: every fault — no cache dir, no worker binary,
// workers all dead, poison units — degrades to the in-process run
// computing whatever is missing, and is reported on diag only (stdout
// must stay byte-identical to the unsharded run).
func shardPrewarm(e *Env, cfg SuiteConfig, diag io.Writer) {
	if e.F.Cfg.Artifacts == nil {
		fmt.Fprintf(diag, "shard: -shards %d ignored: sharding needs a shared -cache-dir; running in-process\n", cfg.Shards)
		return
	}
	if cfg.ShardWorkerBin == "" {
		fmt.Fprintf(diag, "shard: -shards %d ignored: no worker binary configured; running in-process\n", cfg.Shards)
		return
	}
	if e.Draining() {
		return
	}
	units, err := ShardUnits(e, cfg.Experiments)
	if err != nil {
		fmt.Fprintf(diag, "shard: unit planning failed (%v); running in-process\n", err)
		return
	}
	if len(units) == 0 {
		fmt.Fprintf(diag, "shard: selection has no shardable units; running in-process\n")
		return
	}
	plan := PlanOf(e)
	// Split the core budget across workers so N shards don't oversubscribe
	// the machine N-fold. Worker counts never change results, only speed.
	plan.Workers = e.workers() / cfg.Shards
	if plan.Workers < 1 {
		plan.Workers = 1
	}
	sup, err := shard.NewSupervisor(units, plan, shard.SupervisorConfig{
		Shards:         cfg.Shards,
		WorkerBin:      cfg.ShardWorkerBin,
		WorkerEnv:      cfg.ShardWorkerEnv,
		KillAfterUnits: cfg.ShardKillAfterUnits,
		Metrics:        e.F.Cfg.Metrics,
		Diag:           diag,
	})
	if err != nil {
		fmt.Fprintf(diag, "shard: supervisor setup failed (%v); running in-process\n", err)
		return
	}
	fmt.Fprintf(diag, "shard: prewarming %d units across %d workers (%s)\n",
		len(units), cfg.Shards, cfg.ShardWorkerBin)
	rep, err := sup.Run(e.ctx)
	if err != nil {
		fmt.Fprintf(diag, "shard: prewarm stopped (%v); the in-process run computes the remainder\n", err)
	}
	fmt.Fprintf(diag, "%s\n", rep.String())
	if !rep.Completed {
		fmt.Fprintf(diag, "shard: prewarm incomplete; the in-process run computes the remainder\n")
	}
}
