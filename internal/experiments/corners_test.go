package experiments

import (
	"bytes"
	"testing"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/obs"
	"teva/internal/workloads"
)

func cornerEnv(t *testing.T, dir string) (*Env, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	cfg := core.Config{Seed: 0xF00D, Metrics: reg}
	if dir != "" {
		store, err := artifact.OpenIn(dir, reg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Artifacts = store
	}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(f, Options{Scale: workloads.Tiny, Runs: 8}), reg
}

func TestCornerSweepCachesPerCorner(t *testing.T) {
	dir := t.TempDir()
	e, reg := cornerEnv(t, dir)
	corners := DefaultCorners()
	rows, err := CornerSweep(e, corners)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCornerSTA).Value(); got != int64(len(corners)) {
		t.Fatalf("cold sweep ran %d analyses, want %d", got, len(corners))
	}
	for i, r := range rows {
		if r.Cached {
			t.Fatalf("cold sweep row %d claims to be cached", i)
		}
	}

	// Warm cache: a fresh Env over the same store must reload every row
	// without a single analysis.
	e2, reg2 := cornerEnv(t, dir)
	rows2, err := CornerSweep(e2, corners)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter(MetricCornerSTA).Value(); got != 0 {
		t.Fatalf("warm sweep ran %d analyses, want 0", got)
	}
	for i := range rows2 {
		if !rows2[i].Cached {
			t.Fatalf("warm sweep row %d not marked cached", i)
		}
		rows2[i].Cached = false
		if rows2[i] != rows[i] {
			t.Fatalf("row %d differs across cache reload:\ncold %+v\nwarm %+v", i, rows[i], rows2[i])
		}
	}

	// Rendered output must not depend on cache state.
	var cold, warm bytes.Buffer
	RenderCorners(&cold, e, rows)
	for i := range rows2 {
		rows2[i].Cached = true
	}
	RenderCorners(&warm, e2, rows2)
	if cold.String() != warm.String() {
		t.Fatalf("render differs between cold and warm runs:\n%s\nvs\n%s", cold.String(), warm.String())
	}
}

func TestCornerSweepPhysics(t *testing.T) {
	e, _ := cornerEnv(t, "")
	rows, err := CornerSweep(e, DefaultCorners())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	nom, vr15, vr20 := rows[0], rows[1], rows[2]
	clk := e.F.FPU.CLK
	if nom.Derate != 1 || nom.ClockPeriod > clk+1e-6 || nom.WNS < -1e-6 {
		t.Fatalf("nominal corner fails its own calibration: %+v", nom)
	}
	if nom.FailingStages != 0 || nom.FailingEndpoints != 0 {
		t.Fatalf("nominal corner has failures: %+v", nom)
	}
	if !(vr20.Derate > vr15.Derate && vr15.Derate > 1) {
		t.Fatalf("derate ordering wrong: %v vs %v", vr15.Derate, vr20.Derate)
	}
	if !(vr20.ClockPeriod > vr15.ClockPeriod && vr15.ClockPeriod > nom.ClockPeriod) {
		t.Fatalf("clock period ordering wrong: %+v %+v %+v", nom, vr15, vr20)
	}
	// Reduced-voltage corners must fail the calibrated clock (the premise
	// of the whole timing-error study) with VR20 strictly worse.
	if vr15.WNS >= 0 || vr20.WNS >= vr15.WNS {
		t.Fatalf("WNS ordering wrong: VR15 %v, VR20 %v", vr15.WNS, vr20.WNS)
	}
	if vr15.FailingStages == 0 || vr20.FailingEndpoints < vr15.FailingEndpoints {
		t.Fatalf("failure counts not monotone: %+v vs %+v", vr15, vr20)
	}
}

func TestParseCorners(t *testing.T) {
	got, err := ParseCorners(" nominal, VR15,vr20 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "nominal" || got[1].Name != "VR15" || got[2].Name != "VR20" {
		t.Fatalf("parsed %+v", got)
	}
	def, err := ParseCorners("")
	if err != nil || len(def) != 3 {
		t.Fatalf("empty spec: %v %+v", err, def)
	}
	custom, err := ParseCorners("0.95")
	if err != nil || len(custom) != 1 || custom[0].Voltage != 0.95 || custom[0].Name != "0.95V" {
		t.Fatalf("custom voltage: %v %+v", err, custom)
	}
	if _, err := ParseCorners("bogus"); err == nil {
		t.Fatal("bogus corner accepted")
	}
	if _, err := ParseCorners("0.2"); err == nil {
		t.Fatal("sub-threshold supply accepted")
	}
}
