package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"teva/internal/artifact"
	"teva/internal/core"
	"teva/internal/obs"
	"teva/internal/shard"
	"teva/internal/workloads"
)

// TestMain doubles as the shard worker binary for this package's chaos
// tests: when the supervisor re-execs the test binary with
// TEVA_EXP_TEST_WORKER set, we run the real WorkerMain (the same body
// cmd/teva-worker wraps) instead of the tests.
func TestMain(m *testing.M) {
	if os.Getenv("TEVA_EXP_TEST_WORKER") != "" {
		os.Exit(shardTestWorkerMain())
	}
	os.Exit(m.Run())
}

func shardTestWorkerMain() int {
	var addr, id string
	for i, a := range os.Args {
		switch a {
		case "-supervisor":
			addr = os.Args[i+1]
		case "-id":
			id = os.Args[i+1]
		}
	}
	o := WorkerOptions{
		Supervisor:  addr,
		ID:          id,
		Diag:        os.Stderr,
		KillUnitSub: os.Getenv("TEVA_WORKER_KILL_UNIT"),
	}
	if v := os.Getenv("TEVA_WORKER_KILL_AFTER_UNITS"); v != "" {
		o.KillAfterUnits, _ = strconv.Atoi(v)
	}
	if err := WorkerMain(context.Background(), o); err != nil {
		fmt.Fprintf(os.Stderr, "test worker %s: %v\n", id, err)
		return 1
	}
	return 0
}

// shardTestEnv builds a scaled-down quick-style environment; the sample
// sizes propagate to worker processes through the Plan, so the sharded
// and unsharded runs compare like for like.
func shardTestEnv(t *testing.T, cacheDir string) *Env {
	t.Helper()
	reg := obs.NewRegistry(nil)
	cfg := core.Config{
		Seed:             0xF00D,
		RandomOperands:   1500,
		WorkloadOperands: 800,
		DASample:         100000,
		Metrics:          reg,
	}
	if cacheDir != "" {
		store, err := artifact.OpenIn(cacheDir, reg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Artifacts = store
	}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(f, Options{Scale: workloads.Tiny, Runs: 12})
}

// TestShardedFig7ChaosByteIdentical is the acceptance test for the
// sharded execution path: run fig7 with 3 worker processes while (a) the
// supervisor SIGKILLs one worker mid-campaign and (b) a poison unit
// SIGKILLs every worker that leases it until quarantine — and require
// stdout byte-identical to the unsharded in-process run, with the
// restarts and the quarantined unit named in the diag summary.
func TestShardedFig7ChaosByteIdentical(t *testing.T) {
	// Unsharded reference run (no cache, no workers).
	var ref bytes.Buffer
	if err := RunSuite(shardTestEnv(t, ""), SuiteConfig{Experiments: []string{"fig7"}}, &ref); err != nil {
		t.Fatal(err)
	}

	const poison = "random/VR20/fp-div.s"
	env := shardTestEnv(t, t.TempDir())
	var out, diag bytes.Buffer
	err := RunSuite(env, SuiteConfig{
		Experiments:    []string{"fig7"},
		Shards:         3,
		ShardWorkerBin: os.Args[0],
		ShardWorkerEnv: append(os.Environ(),
			"TEVA_EXP_TEST_WORKER=1",
			"TEVA_WORKER_KILL_UNIT="+poison,
		),
		ShardKillAfterUnits: 2,
		Diag:                &diag,
	}, &out)
	if err != nil {
		t.Fatalf("sharded run failed: %v\ndiag:\n%s", err, diag.String())
	}

	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatalf("sharded stdout differs from unsharded run\n--- sharded\n%s\n--- unsharded\n%s\ndiag:\n%s",
			out.String(), ref.String(), diag.String())
	}
	d := diag.String()
	if !strings.Contains(d, "chaos: SIGKILL worker") {
		t.Fatalf("diag missing the supervisor-side chaos kill:\n%s", d)
	}
	if !strings.Contains(d, "restarted worker") {
		t.Fatalf("diag missing worker restarts after SIGKILL:\n%s", d)
	}
	if !strings.Contains(d, "poison unit "+poison+" quarantined") {
		t.Fatalf("diag missing the named poison quarantine:\n%s", d)
	}
	// The exit summary must carry nonzero restart and quarantine tallies.
	reg := env.F.Cfg.Metrics
	if got := reg.Counter(shard.MetricRestarts).Value(); got < 1 {
		t.Fatalf("shard.restarts = %d, want >= 1", got)
	}
	if got := reg.Counter(shard.MetricQuarantines).Value(); got != 1 {
		t.Fatalf("shard.quarantines = %d, want 1", got)
	}
	if got := reg.Counter(shard.MetricSumMismatches).Value(); got != 0 {
		t.Fatalf("shard.sum_mismatches = %d, want 0 — workers disagreed on a unit result", got)
	}
	// The prewarm must have done real work: all units except the poison
	// one completed in worker processes.
	if got := reg.Counter(shard.MetricUnitsDone).Value(); got < 20 {
		t.Fatalf("shard.units_done = %d, want >= 20 of 24 fig7 units", got)
	}
}

// TestShardedRunWithoutCacheDegradesInProcess pins the degradation
// ladder's bottom rung: -shards without a cache dir must not fail (or
// change) the run — it just runs in-process with a diag note.
func TestShardedRunWithoutCacheDegradesInProcess(t *testing.T) {
	var ref bytes.Buffer
	if err := RunSuite(shardTestEnv(t, ""), SuiteConfig{Experiments: []string{"table1"}}, &ref); err != nil {
		t.Fatal(err)
	}
	var out, diag bytes.Buffer
	err := RunSuite(shardTestEnv(t, ""), SuiteConfig{
		Experiments:    []string{"table1"},
		Shards:         3,
		ShardWorkerBin: os.Args[0],
		Diag:           &diag,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatalf("degraded sharded run changed stdout:\n%s", out.String())
	}
	if !strings.Contains(diag.String(), "sharding needs a shared -cache-dir") {
		t.Fatalf("diag missing the degradation note:\n%s", diag.String())
	}
}

func TestPlanRoundTrip(t *testing.T) {
	env := shardTestEnv(t, t.TempDir())
	plan := PlanOf(env)
	if plan.CacheDir == "" {
		t.Fatal("PlanOf lost the cache dir")
	}
	env2, err := NewEnvFromPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// The config tag is what artifact provenance keys fold in: if the
	// round trip preserves it, worker cache writes land under exactly
	// the keys the supervisor's run loads.
	if got, want := env2.cfgTag(), env.cfgTag(); got != want {
		t.Fatalf("cfgTag after round trip = %q, want %q", got, want)
	}
	if env2.F.Cfg.Seed != env.F.Cfg.Seed {
		t.Fatalf("seed after round trip = %#x, want %#x", env2.F.Cfg.Seed, env.F.Cfg.Seed)
	}
	if got := PlanOf(env2); got != plan {
		t.Fatalf("PlanOf after round trip = %+v, want %+v", got, plan)
	}
}

func TestShardUnitsSelection(t *testing.T) {
	env := shardTestEnv(t, "")
	fig7, err := ShardUnits(env, []string{"fig7"})
	if err != nil {
		t.Fatal(err)
	}
	// fig7 needs the random characterizations only: levels x ops.
	if want := len(env.Levels()) * 12; len(fig7) != want {
		t.Fatalf("fig7 units = %d, want %d", len(fig7), want)
	}
	for _, u := range fig7 {
		if u.Kind != shard.UnitRandom {
			t.Fatalf("fig7 planned a %s unit: %s", u.Kind, u.ID())
		}
	}

	all, err := ShardUnits(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws, _ := env.Workloads()
	nLevels := len(env.Levels())
	want := nLevels*12 + nLevels*len(ws) + nLevels*len(ws)*len(ModelKinds())
	if len(all) != want {
		t.Fatalf("all units = %d, want %d", len(all), want)
	}
	// Cells must be staged after summaries, and IDs must be unique.
	seen := map[string]bool{}
	for _, u := range all {
		if seen[u.ID()] {
			t.Fatalf("duplicate unit %s", u.ID())
		}
		seen[u.ID()] = true
		wantStage := 0
		if u.Kind == shard.UnitCell {
			wantStage = 1
		}
		if u.Stage != wantStage {
			t.Fatalf("unit %s stage = %d, want %d", u.ID(), u.Stage, wantStage)
		}
	}

	table1, err := ShardUnits(env, []string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(table1) != 0 {
		t.Fatalf("table1 planned %d units, want 0 (nothing shardable)", len(table1))
	}
}
