package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"teva/internal/core"
	"teva/internal/obs"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// This file is the shared experiment-suite driver: the exact dispatch
// sequence teva-experiments runs, extracted so the serving layer
// (internal/serve) can produce byte-identical reports without forking
// the CLI. The determinism contract is split across three writers:
//
//   - out: the deterministic report. For a given spec (seed, scale,
//     runs, engine, corners, screening) these bytes are identical run
//     to run, machine to machine, cold or warm cache.
//   - Trace: wall-clock per-experiment timing lines ("[x completed in
//     …]"). The CLI sends them to stdout interleaved with the report;
//     the server drops them (or turns them into events) so served
//     results stay byte-deterministic.
//   - Diag: cache- and budget-dependent notes (corner reload counts,
//     fig4 truncation, interrupt reasons). stderr in the CLI.

// Names returns every experiment name RunSuite understands, in
// execution order. "all" additionally selects every one of them.
func Names() []string {
	return []string{
		"design", "corners", "table1", "table2",
		"fig4", "fig5", "fig6", "fig7", "fig8",
		"sources", "power", "process", "validate",
		"adders", "history", "fig10", "fig9", "avm",
	}
}

// KnownExperiment reports whether name is a selectable experiment
// ("all" included).
func KnownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// IsInterrupt reports whether err is (or wraps) one of the orderly-stop
// sentinels — a drained run, a canceled context, or an expired
// wall-clock budget — as opposed to a real per-cell failure.
func IsInterrupt(err error) bool {
	return errors.Is(err, ErrDrained) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// PrintBanner writes the run banner: the line every report starts with,
// naming the settings that shape all numbers below it.
func PrintBanner(w io.Writer, opts Options, seed uint64) {
	fmt.Fprintf(w, "teva-experiments: scale=%s runs/cell=%d seed=%#x\n",
		opts.Scale, opts.Runs, seed)
}

// ApplyPreset applies the -quick/-full preset to an option/config pair,
// exactly as the CLI flags do. quick shrinks every knob for a smoke
// run; full restores the paper's statistical settings. quick wins when
// both are set (matching the CLI's switch order).
func ApplyPreset(quick, full bool, opts *Options, cfg *core.Config) {
	switch {
	case quick:
		opts.Scale = workloads.Tiny
		opts.Runs = 24
		opts.Fig4Paths = 300
		opts.Fig6Full = 4000
		opts.Fig6Ks = []int{500, 2000}
		cfg.RandomOperands = 4000
		cfg.WorkloadOperands = 2000
	case full:
		*opts = PaperOptions()
		cfg.RandomOperands = 100000
		cfg.WorkloadOperands = 40000
	}
}

// SuiteConfig selects and instruments a RunSuite call.
type SuiteConfig struct {
	// Experiments is the selection (names from Names, or "all"). Empty
	// means "all".
	Experiments []string
	// CornerSpec is the -corners argument for the corner sweep ("" uses
	// the default set).
	CornerSpec string
	// CSVDir, when non-empty, also writes each experiment's
	// machine-readable CSVs there.
	CSVDir string
	// OmitBanner skips the run banner (the CLI prints it itself, before
	// the substrate is built, so startup isn't silent).
	OmitBanner bool
	// Trace receives the wall-clock "[x completed in …]" lines; nil
	// discards them. Requires Clock.
	Trace io.Writer
	// Diag receives cache-/budget-dependent diagnostics; nil discards.
	Diag io.Writer
	// Clock is the monotonic clock behind Trace durations (the obs
	// registry's clock in both CLIs). nil disables Trace timing.
	Clock obs.Clock
	// OnStart/OnExperiment, when non-nil, observe each experiment as it
	// begins and ends (err is nil on success, the interrupt or failure
	// otherwise). The serving layer turns these into job events.
	OnStart      func(name string)
	OnExperiment func(name string, err error)
	// Shards, when > 1, prewarm the artifact cache with that many
	// supervised teva-worker processes before the suite runs (see
	// internal/shard). The prewarm requires a cache dir and a worker
	// binary; anything that goes wrong — missing prerequisites, crashed
	// or SIGKILLed workers, quarantined poison units — degrades to the
	// in-process run computing the remainder, so the report bytes never
	// depend on sharding.
	Shards int
	// ShardWorkerBin is the worker executable for Shards > 1.
	ShardWorkerBin string
	// ShardWorkerEnv, when non-nil, is the complete K=V environment for
	// every worker process (chaos hooks ride through here as
	// os.Environ() plus extras); nil workers inherit this process's
	// environment.
	ShardWorkerEnv []string
	// ShardKillAfterUnits, when > 0, makes the supervisor SIGKILL one
	// live worker after that many units complete — the deterministic
	// mid-campaign crash used by the chaos CI job.
	ShardKillAfterUnits int
}

// RunSuite runs the selected experiments against env in the canonical
// order, writing the deterministic report to out. It returns nil when
// every selected experiment completed, an IsInterrupt error when a
// drain/cancel stopped the run early (completed cells are cached), or
// the first hard failure wrapped with its experiment name.
func RunSuite(env *Env, cfg SuiteConfig, out io.Writer) error {
	diag := cfg.Diag
	if diag == nil {
		diag = io.Discard
	}
	if !cfg.OmitBanner {
		PrintBanner(out, env.Opts, env.F.Cfg.Seed)
	}
	if cfg.Shards > 1 {
		shardPrewarm(env, cfg, diag)
	}
	names := cfg.Experiments
	if len(names) == 0 {
		names = []string{"all"}
	}
	selected := map[string]bool{}
	for _, name := range names {
		selected[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return selected["all"] || selected[name] }
	reg := env.F.Cfg.Metrics

	var failed error
	var interruptErr error
	interrupted := false
	run := func(name string, fn func() error) {
		if !want(name) || interrupted || failed != nil {
			return
		}
		if env.Draining() {
			interrupted = true
			return
		}
		if cfg.OnStart != nil {
			cfg.OnStart(name)
		}
		var t0 int64
		if cfg.Clock != nil {
			t0 = cfg.Clock()
		}
		sp := reg.Phase("exp/" + name)
		err := fn()
		if cfg.OnExperiment != nil {
			cfg.OnExperiment(name, err)
		}
		if err != nil {
			if IsInterrupt(err) {
				interrupted = true
				interruptErr = err
				fmt.Fprintf(diag, "%s interrupted: %v\n", name, err)
				return
			}
			failed = fmt.Errorf("%s: %w", name, err)
			return
		}
		sp.End()
		if cfg.Trace != nil && cfg.Clock != nil {
			fmt.Fprintf(cfg.Trace, "[%s completed in %s]\n",
				name, time.Duration(cfg.Clock()-t0).Round(time.Millisecond))
		}
	}

	run("design", func() error {
		rows, err := Design(env)
		if err != nil {
			return err
		}
		RenderDesign(out, env, rows)
		if cfg.CSVDir != "" {
			return CSVDesign(cfg.CSVDir, rows)
		}
		return nil
	})
	run("corners", func() error {
		corners, err := ParseCorners(cfg.CornerSpec)
		if err != nil {
			return err
		}
		rows, err := CornerSweep(env, corners)
		if err != nil {
			return err
		}
		cached := 0
		for _, r := range rows {
			if r.Cached {
				cached++
			}
		}
		// Cache-dependent, so Diag: the report must stay identical
		// between cold and warm runs.
		fmt.Fprintf(diag, "corner reports reloaded %d/%d\n", cached, len(rows))
		RenderCorners(out, env, rows)
		if cfg.CSVDir != "" {
			return CSVCorners(cfg.CSVDir, rows)
		}
		return nil
	})
	run("table1", func() error { Table1(out); return nil })
	run("table2", func() error {
		rows, err := Table2(env)
		if err != nil {
			return err
		}
		RenderTable2(out, rows)
		if cfg.CSVDir != "" {
			return CSVTable2(cfg.CSVDir, rows)
		}
		return nil
	})
	run("fig4", func() error {
		r, err := Fig4(env)
		if err != nil {
			return err
		}
		if r.Truncated {
			fmt.Fprintf(diag,
				"fig4 path enumeration hit its expansion budget before yielding %d paths per stage; tail counts may undercount some units\n",
				env.Opts.Fig4Paths)
		}
		RenderFig4(out, r)
		if cfg.CSVDir != "" {
			return CSVFig4(cfg.CSVDir, r)
		}
		return nil
	})
	run("fig5", func() error {
		r, err := Fig5(env)
		if err != nil {
			return err
		}
		RenderFig5(out, r)
		if cfg.CSVDir != "" {
			return CSVFig5(cfg.CSVDir, r)
		}
		return nil
	})
	run("fig6", func() error {
		r, err := Fig6(env)
		if err != nil {
			return err
		}
		RenderFig6(out, r)
		if cfg.CSVDir != "" {
			return CSVFig6(cfg.CSVDir, r)
		}
		return nil
	})
	run("fig7", func() error {
		r, err := Fig7(env)
		if err != nil {
			return err
		}
		RenderFig7(out, r)
		if cfg.CSVDir != "" {
			return CSVFig7(cfg.CSVDir, r)
		}
		return nil
	})
	run("fig8", func() error {
		r, err := Fig8(env)
		if err != nil {
			return err
		}
		RenderFig8(out, r)
		if cfg.CSVDir != "" {
			return CSVFig8(cfg.CSVDir, r)
		}
		return nil
	})
	run("sources", func() error {
		rows, err := Sources(env)
		if err != nil {
			return err
		}
		RenderSources(out, rows)
		if cfg.CSVDir != "" {
			return CSVSources(cfg.CSVDir, rows)
		}
		return nil
	})
	run("power", func() error {
		r, err := Power(env)
		if err != nil {
			return err
		}
		RenderPower(out, r)
		if cfg.CSVDir != "" {
			return CSVPower(cfg.CSVDir, r)
		}
		return nil
	})
	run("process", func() error {
		r, err := ProcessVariation(env, 8, 0.04)
		if err != nil {
			return err
		}
		RenderProcess(out, r)
		if cfg.CSVDir != "" {
			return CSVProcess(cfg.CSVDir, r)
		}
		return nil
	})
	run("validate", func() error {
		rows, meanErr, err := Validate(env, vscale.VR20)
		if err != nil {
			return err
		}
		RenderValidate(out, "VR20", rows, meanErr)
		if cfg.CSVDir != "" {
			return CSVValidate(cfg.CSVDir, rows)
		}
		return nil
	})
	run("adders", func() error {
		rows, err := AdderAblation(env)
		if err != nil {
			return err
		}
		RenderAdders(out, rows)
		if cfg.CSVDir != "" {
			return CSVAdders(cfg.CSVDir, rows)
		}
		return nil
	})
	run("history", func() error {
		rows, err := HistoryAblation(env, vscale.VR20)
		if err != nil {
			return err
		}
		RenderHistory(out, "VR20", rows)
		return nil
	})
	run("fig10", func() error {
		r, err := Fig10(env)
		if err != nil {
			return err
		}
		RenderFig10(out, workloads.Names(), r)
		if cfg.CSVDir != "" {
			return CSVFig10(cfg.CSVDir, workloads.Names(), r)
		}
		return nil
	})
	if (want("fig9") || want("avm")) && !interrupted && failed == nil && !env.Draining() {
		if cfg.OnStart != nil {
			cfg.OnStart("campaigns")
		}
		sp := reg.Phase("exp/campaigns")
		cs, err := RunCampaigns(env)
		if cfg.OnExperiment != nil {
			cfg.OnExperiment("campaigns", err)
		}
		switch {
		case err == nil:
			sp.End()
		case IsInterrupt(err):
			// Completed cells are already in the cache; rendering a
			// partial matrix would make the report depend on the abort
			// point, so skip the figures and note it on Diag.
			interrupted = true
			interruptErr = err
			fmt.Fprintf(diag, "campaigns interrupted: %v\n", err)
		default:
			failed = fmt.Errorf("campaigns: %w", err)
		}
		run("fig9", func() error {
			RenderFig9(out, cs)
			if cfg.CSVDir != "" {
				return CSVFig9(cfg.CSVDir, cs)
			}
			return nil
		})
		run("avm", func() error {
			r, err := AVMAnalysis(env, cs)
			if err != nil {
				return err
			}
			RenderAVM(out, env, cs, r)
			if cfg.CSVDir != "" {
				return CSVAVM(cfg.CSVDir, cs, r)
			}
			return nil
		})
	}
	switch {
	case failed != nil:
		return failed
	case interruptErr != nil:
		return interruptErr
	case interrupted || env.Draining():
		if err := env.ctx.Err(); err != nil {
			return err
		}
		return ErrDrained
	}
	return nil
}
