package experiments

import (
	"fmt"
	"io"

	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/sta"
	"teva/internal/stats"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// Table1 renders the error-model feature matrix (static content).
func Table1(w io.Writer) {
	header(w, "Table I: overview of timing error injection models")
	fmt.Fprintf(w, "%-10s %-22s %-8s %-12s %-9s %-10s\n",
		"Model", "Injection technique", "Voltage", "Instruction", "Workload", "Microarch")
	fmt.Fprintf(w, "%-10s %-22s %-8s %-12s %-9s %-10s\n",
		"DA-model", "fixed probability", "yes", "no", "no", "no")
	fmt.Fprintf(w, "%-10s %-22s %-8s %-12s %-9s %-10s\n",
		"IA-model", "statistical", "yes", "yes", "no", "no")
	fmt.Fprintf(w, "%-10s %-22s %-8s %-12s %-9s %-10s\n",
		"WA-model", "statistical", "yes", "yes", "yes", "yes")
}

// Table2Row is one benchmark's inventory line.
type Table2Row struct {
	App          string
	Input        string
	Instructions int64
	FPShare      float64
	Criteria     string
}

// Table2 measures the benchmark inventory.
func Table2(e *Env) ([]Table2Row, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, w := range ws {
		tr, err := e.Trace(w)
		if err != nil {
			return nil, err
		}
		fp := float64(tr.FPTotal()) / float64(tr.TotalInstr)
		rows = append(rows, Table2Row{
			App: w.Name, Input: w.Input,
			Instructions: tr.TotalInstr, FPShare: fp, Criteria: w.Criteria,
		})
	}
	return rows, nil
}

// RenderTable2 prints the inventory.
func RenderTable2(w io.Writer, rows []Table2Row) {
	header(w, "Table II: input, size and error classification across the benchmarks")
	fmt.Fprintf(w, "%-8s %-16s %14s %8s  %s\n", "App", "Input", "Instructions", "FP%", "Classification")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-16s %14d %7.1f%%  %s\n",
			r.App, r.Input, r.Instructions, 100*r.FPShare, r.Criteria)
	}
}

// Fig4Result is the longest-path distribution.
type Fig4Result struct {
	CLK float64
	// Paths are the K longest register-to-register paths of the design.
	Paths []sta.Path
	// ByGroup counts paths per functional-unit group ("fpu/fp-mul.d",
	// "alu", ...).
	ByGroup map[string]int
	// MinSlack is the smallest slack among the K paths.
	MinSlack float64
	// IntWorst is the slowest integer-side path delay.
	IntWorst float64
	// UnitWorst maps every functional-unit group (including those absent
	// from the top-K tail) to its worst static path delay.
	UnitWorst map[string]float64
	// Truncated reports that at least one stage's path enumeration hit
	// its expansion budget before yielding the requested K, so the tail
	// counts may undercount that unit. The CLI surfaces this as a
	// warning on stderr (stdout stays deterministic either way).
	Truncated bool
}

// Fig4 enumerates the longest paths of the placed core (FPU + integer
// units) and groups them per unit.
func Fig4(e *Env) (*Fig4Result, error) {
	intU, err := e.IntUnit()
	if err != nil {
		return nil, err
	}
	reports := append(e.F.FPU.StageReports(), intU.StageReports()...)
	paths, truncated := sta.TopPathsAcross(reports, e.Opts.Fig4Paths)
	res := &Fig4Result{
		CLK:       e.F.FPU.CLK,
		Paths:     paths,
		ByGroup:   make(map[string]int),
		MinSlack:  e.F.FPU.CLK,
		IntWorst:  intU.WorstDelay(),
		UnitWorst: make(map[string]float64),
		Truncated: truncated,
	}
	for _, p := range paths {
		res.ByGroup[pathGroup(p)]++
		if s := p.Slack(res.CLK); s < res.MinSlack {
			res.MinSlack = s
		}
	}
	for _, r := range reports {
		g := pathGroup(sta.Path{Netlist: r.Netlist, Unit: r.Netlist})
		if r.WorstDelay > res.UnitWorst[g] {
			res.UnitWorst[g] = r.WorstDelay
		}
	}
	return res, nil
}

// pathGroup maps a unit tag to its Figure 4 group: the FPU pipeline
// ("fpu/fp-mul.d") or the integer unit ("alu").
func pathGroup(p sta.Path) string {
	unit := p.Unit
	if unit == "" {
		unit = p.Netlist
	}
	// "fpu/fp-mul.d/s4-cpa" -> "fpu/fp-mul.d"; "alu/exec" -> "alu".
	parts := splitN(unit, '/', 3)
	if len(parts) >= 2 && parts[0] == "fpu" {
		return parts[0] + "/" + parts[1]
	}
	return parts[0]
}

func splitN(s string, sep byte, n int) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s) && len(parts) < n-1; i++ {
		if s[i] == sep {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// RenderFig4 prints the distribution.
func RenderFig4(w io.Writer, r *Fig4Result) {
	header(w, fmt.Sprintf("Figure 4: distribution of the %d longest timing paths (CLK %.0f ps)", len(r.Paths), r.CLK))
	for _, g := range sortedKeys(r.ByGroup) {
		fmt.Fprintf(w, "%-16s %5d paths\n", g, r.ByGroup[g])
	}
	fmt.Fprintf(w, "minimum slack among plotted paths: %.0f ps\n", r.MinSlack)
	fmt.Fprintf(w, "slowest integer-side path: %.0f ps (slack %.0f ps)\n",
		r.IntWorst, r.CLK-r.IntWorst)
	fmt.Fprintln(w, "\nworst static path delay per unit (slack at CLK):")
	for _, g := range sortedKeys(r.UnitWorst) {
		d := r.UnitWorst[g]
		fmt.Fprintf(w, "%-16s %6.0f ps  (slack %5.0f ps)\n", g, d, r.CLK-d)
	}
}

// Fig5Result is the bit-flip multiplicity distribution per level.
type Fig5Result struct {
	// Fraction[level][k] is the share of faulty instructions with k
	// corrupted bits (k = 1, 2; index 0 holds the ">2" share).
	One, Two, More map[string]float64
	// MultiAvg is the average multi-bit share across levels (the paper
	// reports 64.5%).
	MultiAvg float64
}

// Fig5 aggregates flip-count histograms over all benchmarks' workload
// DTA at both levels.
func Fig5(e *Env) (*Fig5Result, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		One:  make(map[string]float64),
		Two:  make(map[string]float64),
		More: make(map[string]float64),
	}
	var multis []float64
	for _, level := range e.Levels() {
		var one, two, more, faulty int
		for _, wl := range ws {
			sums, err := e.WASummaries(level, wl)
			if err != nil {
				return nil, err
			}
			for _, s := range sums {
				faulty += s.Faulty
				if len(s.FlipHist) > 1 {
					one += s.FlipHist[1]
				}
				if len(s.FlipHist) > 2 {
					two += s.FlipHist[2]
				}
				for k := 3; k < len(s.FlipHist); k++ {
					more += s.FlipHist[k]
				}
			}
		}
		if faulty == 0 {
			continue
		}
		res.One[level.Name] = float64(one) / float64(faulty)
		res.Two[level.Name] = float64(two) / float64(faulty)
		res.More[level.Name] = float64(more) / float64(faulty)
		multis = append(multis, float64(two+more)/float64(faulty))
	}
	res.MultiAvg = stats.Mean(multis)
	return res, nil
}

// RenderFig5 prints the histogram.
func RenderFig5(w io.Writer, r *Fig5Result) {
	header(w, "Figure 5: number of bit flips at faulty instruction outputs")
	for _, lv := range []string{"VR15", "VR20"} {
		if _, ok := r.One[lv]; !ok {
			fmt.Fprintf(w, "%s: no faulty instructions observed\n", lv)
			continue
		}
		fmt.Fprintf(w, "%s: 1 bit %5.1f%%   2 bits %5.1f%%   >2 bits %5.1f%%\n",
			lv, 100*r.One[lv], 100*r.Two[lv], 100*r.More[lv])
	}
	fmt.Fprintf(w, "multi-bit share, average across levels: %.1f%% (paper: 64.5%%)\n",
		100*r.MultiAvg)
}

// Fig6Result is the BER-convergence study.
type Fig6Result struct {
	// FullN is the full-trace sample size; AE maps each sub-sample size
	// K to the mean absolute BER error vs the full trace (Eq. 3).
	FullN int
	AE    map[int]float64
	// FullBER is the full-trace per-bit error ratio.
	FullBER []float64
}

// Fig6 reproduces the convergence experiment: the BER of fp-mul.d on the
// is benchmark's operands, for increasing DTA sample sizes, against the
// "full trace".
func Fig6(e *Env) (*Fig6Result, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	var isW *workloads.Workload
	for _, w := range ws {
		if w.Name == "is" {
			isW = w
		}
	}
	if isW == nil {
		return nil, fmt.Errorf("experiments: is benchmark missing")
	}
	tr, err := e.Trace(isW)
	if err != nil {
		return nil, err
	}
	pool := tr.Pairs[fpu.DMul]
	if len(pool) == 0 {
		return nil, fmt.Errorf("experiments: is trace has no fp-mul.d operands")
	}
	src := e.rng("fig6")
	scale := e.F.Volt.ScaleFor(vscale.VR20)
	// Each draw advances the shared source whether or not the analysis
	// itself is reloaded from the artifact store, so cached and cold runs
	// see identical operand streams. The tag names the draw (full trace,
	// or sub-sample K and repetition), keeping every stream's cache entry
	// distinct.
	ber := func(tag string, n int) []float64 {
		pairs := make([]dta.Pair, n)
		for i := range pairs {
			pairs[i] = pool[src.Intn(len(pool))]
		}
		sum := e.cachedSummary("fig6/"+tag, fpu.DMul, scale, n, func() *dta.Summary {
			recs := dta.AnalyzeStreamObs(e.F.FPU, fpu.DMul, scale,
				e.F.Cfg.Timing, pairs, e.F.Cfg.Workers, nil)
			return dta.Summarize(fpu.DMul, recs)
		})
		return sum.BER()
	}
	full := ber("full", e.Opts.Fig6Full)
	res := &Fig6Result{FullN: e.Opts.Fig6Full, AE: make(map[int]float64), FullBER: full}
	reps := e.Opts.Fig6Reps
	if reps < 1 {
		reps = 1
	}
	for _, k := range e.Opts.Fig6Ks {
		var aes []float64
		for r := 0; r < reps; r++ {
			aes = append(aes, stats.MeanAbsError(full, ber(fmt.Sprintf("K%d/r%d", k, r), k)))
		}
		res.AE[k] = stats.Mean(aes)
	}
	return res, nil
}

// RenderFig6 prints the convergence table.
func RenderFig6(w io.Writer, r *Fig6Result) {
	header(w, "Figure 6: BER convergence with DTA sample size (fp-mul.d of is, VR20)")
	fmt.Fprintf(w, "full trace: %d operands\n", r.FullN)
	ks := make([]int, 0, len(r.AE))
	for k := range r.AE {
		ks = append(ks, k)
	}
	sortInts(ks)
	for _, k := range ks {
		fmt.Fprintf(w, "K = %7d  mean absolute BER error vs full: %.3f\n", k, r.AE[k])
	}
	s, e2, m := berGroups(r.FullBER)
	fmt.Fprintf(w, "full-trace BER means: sign %.4f, exponent %.4f, mantissa %.4f\n", s, e2, m)
}

// BERProfile is the per-field BER summary of one op at one level.
type BERProfile struct {
	Op                fpu.Op
	ER                float64
	SignBER           float64
	ExponentBER       float64
	MantissaBER       float64
	MaxBitBER         float64
	MaxBitIndex       int
	CharacterizedBits int
}

// profile derives a BERProfile from a DTA summary.
func profile(op fpu.Op, s *dta.Summary) BERProfile {
	ber := s.BER()
	p := BERProfile{Op: op, ER: s.ErrorRatio(), CharacterizedBits: len(ber)}
	p.SignBER, p.ExponentBER, p.MantissaBER = berGroupsFor(op, ber)
	for i, b := range ber {
		if b > p.MaxBitBER {
			p.MaxBitBER, p.MaxBitIndex = b, i
		}
	}
	return p
}

// berGroups splits a 64-bit binary64 BER vector into field means.
func berGroups(ber []float64) (sign, exponent, mantissa float64) {
	return berGroupsFor(fpu.DMul, ber)
}

// berGroupsFor splits a BER vector into (sign, exponent, mantissa) means
// using the op's result format; integer results report everything under
// mantissa.
func berGroupsFor(op fpu.Op, ber []float64) (sign, exponent, mantissa float64) {
	f := op.Format()
	fb, eb := int(f.FracBits), int(f.ExpBits)
	if op.ResultWidth() != int(f.Width()) {
		return 0, 0, stats.Mean(ber) // f2i: integer destination
	}
	if len(ber) < fb+eb+1 {
		return 0, 0, 0
	}
	mantissa = stats.Mean(ber[:fb])
	exponent = stats.Mean(ber[fb : fb+eb])
	sign = ber[fb+eb]
	return sign, exponent, mantissa
}

// Fig7 characterizes the IA model's bit error-injection probabilities.
func Fig7(e *Env) (map[string][]BERProfile, error) {
	out := make(map[string][]BERProfile)
	for _, level := range e.Levels() {
		sums := e.F.RandomSummaries(level)
		var profiles []BERProfile
		for _, op := range fpu.Ops() {
			profiles = append(profiles, profile(op, sums[op]))
		}
		out[level.Name] = profiles
	}
	return out, nil
}

// RenderFig7 prints the per-op profiles.
func RenderFig7(w io.Writer, r map[string][]BERProfile) {
	header(w, "Figure 7: bit error-injection probabilities per instruction (IA-model)")
	for _, lv := range []string{"VR15", "VR20"} {
		fmt.Fprintf(w, "-- %s\n", lv)
		fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %12s\n",
			"op", "ER", "sign", "exponent", "mantissa", "max-bit")
		for _, p := range r[lv] {
			fmt.Fprintf(w, "%-10s %10.2e %10.2e %10.2e %10.2e %8.2e@%d\n",
				p.Op, p.ER, p.SignBER, p.ExponentBER, p.MantissaBER,
				p.MaxBitBER, p.MaxBitIndex)
		}
	}
}

// Fig8 characterizes the WA model's bit error-injection probabilities per
// benchmark. The result maps level -> workload -> per-op profiles (ops
// absent from the workload are omitted).
func Fig8(e *Env) (map[string]map[string][]BERProfile, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string][]BERProfile)
	for _, level := range e.Levels() {
		byWorkload := make(map[string][]BERProfile)
		for _, wl := range ws {
			sums, err := e.WASummaries(level, wl)
			if err != nil {
				return nil, err
			}
			var profiles []BERProfile
			for _, op := range fpu.Ops() {
				if s, ok := sums[op]; ok {
					profiles = append(profiles, profile(op, s))
				}
			}
			byWorkload[wl.Name] = profiles
		}
		out[level.Name] = byWorkload
	}
	return out, nil
}

// RenderFig8 prints the per-benchmark profiles.
func RenderFig8(w io.Writer, r map[string]map[string][]BERProfile) {
	header(w, "Figure 8: bit error-injection probabilities per benchmark (WA-model)")
	for _, lv := range []string{"VR15", "VR20"} {
		fmt.Fprintf(w, "-- %s\n", lv)
		for _, name := range sortedKeys(r[lv]) {
			for _, p := range r[lv][name] {
				fmt.Fprintf(w, "%-8s %-10s ER %9.2e  sign %9.2e  exp %9.2e  mant %9.2e\n",
					name, p.Op, p.ER, p.SignBER, p.ExponentBER, p.MantissaBER)
			}
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
