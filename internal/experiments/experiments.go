// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections IV-V) from the reproduction's own substrate:
//
//	Table I   — error-model feature matrix
//	Table II  — benchmark inventory (inputs, dynamic sizes, criteria)
//	Figure 4  — distribution of the 1000 longest paths across units
//	Figure 5  — bit-flip multiplicity of faulty instructions per VR level
//	Figure 6  — BER convergence with DTA sample size (fp-mul of is)
//	Figure 7  — IA-model per-instruction bit error-injection probabilities
//	Figure 8  — WA-model per-benchmark bit error-injection probabilities
//	Figure 9  — injection outcome distributions (Masked/SDC/Crash/Timeout)
//	Figure 10 — injected error ratios and model divergence (the ~250x)
//	Section V-C — AVM analysis and voltage-guidance table
//
// plus the extension experiments: the Section VI future-work delay
// sources (temperature, aging, overclocking, process variation), the
// Voltus-substitute power study, the model-validation check, the
// pipeline-history and adder-architecture ablations, and the FPU design
// report. Every experiment also exports machine-readable CSV series.
//
// Each experiment is a pure function of a shared lazily-populated
// environment, so the campaign-heavy figures (9, 10, AVM) reuse one
// campaign set.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"teva/internal/alu"
	"teva/internal/artifact"
	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/prng"
	"teva/internal/stats"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects the workload input class.
	Scale workloads.Scale
	// Runs is the injections per campaign cell (the paper's statistical
	// setting is stats.SampleSize(stats.Z95, 0.03) = 1068).
	Runs int
	// Fig4Paths is the path count of Figure 4 (1000 in the paper).
	Fig4Paths int
	// Fig6Full is the "full trace" DTA sample size of Figure 6; Fig6Ks
	// are the sub-sample sizes compared against it, and Fig6Reps is the
	// number of independent draws averaged per K.
	Fig6Full int
	Fig6Ks   []int
	Fig6Reps int
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		Scale:     workloads.Small,
		Runs:      100,
		Fig4Paths: 1000,
		Fig6Full:  24000,
		Fig6Ks:    []int{1000, 4000, 12000},
		Fig6Reps:  3,
	}
}

// PaperOptions restores the paper's statistical settings (much slower).
func PaperOptions() Options {
	o := DefaultOptions()
	o.Runs = stats.SampleSize(stats.Z95, 0.03) // 1068
	return o
}

// Env materializes the shared artifacts (workloads, traces, models,
// campaigns) the experiments draw from. Every lazily built artifact lives
// behind a single-flight memo, so the environment is safe for concurrent
// use and the parallel matrix build (RunCampaigns) never duplicates work:
// Figures 9, 10 and the AVM analysis all reuse one campaign set, and
// every DA cell at a level waits on one shared characterization instead
// of racing it. When the framework carries an artifact store, campaign
// cells are additionally persisted across process lifetimes.
type Env struct {
	F    *core.Framework
	Opts Options

	// ctx is the environment's hard-cancellation context (wall-clock
	// budget, fatal-error abort): once done, in-flight work stops at its
	// next check and new cells are not dispatched.
	ctx context.Context
	// drain is the soft-stop channel: once closed (Drain), the matrix
	// build dispatches no new cells but in-flight ones run to completion
	// and reach the artifact cache, so a re-run resumes incrementally.
	drain     chan struct{}
	drainOnce sync.Once
	// saveWarn rate-limits the non-fatal cache-write-failure warning to
	// once per Env (the store counts every failure on
	// artifact.write_errors regardless).
	saveWarn sync.Once

	ws      []*workloads.Workload
	wsErr   error
	wsOnce  sync.Once
	traces  *memo[*trace.Trace]
	waSums  *memo[map[fpu.Op]*dta.Summary] // key: level/workload
	daBy    *memo[*errmodel.DAModel]
	iaBy    *memo[*errmodel.IAModel]
	waBy    *memo[*errmodel.WAModel] // key: level/workload
	cells   *memo[*campaign.Result]  // key: workload/kind/level
	streams *memo[*dta.Summary]      // ad-hoc characterization streams
	intUnit *memo[*alu.Unit]

	cellsDone   atomic.Int64
	cellsTotal  atomic.Int64
	cellsCached atomic.Int64
}

// NewEnv creates the environment. When the framework's Config carries a
// metrics registry, every memo reports its single-flight hit/miss tallies
// under the experiments.* names.
func NewEnv(f *core.Framework, opts Options) *Env {
	return NewEnvContext(context.Background(), f, opts)
}

// NewEnvContext is NewEnv bound to a cancellation context: when ctx is
// done (a -max-duration budget expired, or a hard failure aborted the
// run), campaign cells and characterization streams stop at their next
// cooperative check instead of running the matrix to completion.
func NewEnvContext(ctx context.Context, f *core.Framework, opts Options) *Env {
	if ctx == nil {
		ctx = context.Background()
	}
	m := f.Cfg.Metrics
	return &Env{
		F:       f,
		Opts:    opts,
		ctx:     ctx,
		drain:   make(chan struct{}),
		traces:  newMemoObs[*trace.Trace](m),
		waSums:  newMemoObs[map[fpu.Op]*dta.Summary](m),
		daBy:    newMemoObs[*errmodel.DAModel](m),
		iaBy:    newMemoObs[*errmodel.IAModel](m),
		waBy:    newMemoObs[*errmodel.WAModel](m),
		cells:   newMemoObs[*campaign.Result](m),
		streams: newMemoObs[*dta.Summary](m),
		intUnit: newMemoObs[*alu.Unit](m),
	}
}

// Drain requests a graceful stop: the matrix build dispatches no new
// cells, in-flight cells complete and are cached, and RunCampaigns
// returns the partial set alongside ErrDrained. Safe to call from any
// goroutine, any number of times.
func (e *Env) Drain() { e.drainOnce.Do(func() { close(e.drain) }) }

// Draining reports whether a drain has been requested (or the hard
// context is already done) — experiment drivers check it between
// experiments to skip the remainder of a run being shut down.
func (e *Env) Draining() bool {
	select {
	case <-e.drain:
		return true
	default:
		return e.ctx.Err() != nil
	}
}

// noteSaveError surfaces a non-fatal artifact cache write failure exactly
// once per Env on stderr; every failure is counted by the store on
// artifact.write_errors either way. Losing a cache write costs only
// recomputation on the next run, so it must not fail the experiment — but
// a silently read-only cache directory should not be silent.
func (e *Env) noteSaveError(err error) {
	if err == nil {
		return
	}
	e.saveWarn.Do(func() {
		fmt.Fprintf(os.Stderr, "teva: artifact cache write failed (non-fatal, counted on %s): %v\n",
			artifact.MetricWriteErrors, err)
	})
}

// Levels returns the evaluated voltage-reduction levels.
func (e *Env) Levels() []vscale.VRLevel { return vscale.PaperLevels() }

// Workloads returns (building once) the benchmark set.
func (e *Env) Workloads() ([]*workloads.Workload, error) {
	e.wsOnce.Do(func() { e.ws, e.wsErr = workloads.All(e.Opts.Scale) })
	return e.ws, e.wsErr
}

// Trace returns (capturing once) a workload's operand trace.
func (e *Env) Trace(w *workloads.Workload) (*trace.Trace, error) {
	return e.traces.do(w.Name, func() (*trace.Trace, error) {
		return e.F.CaptureTrace(w)
	})
}

// WASummaries returns (computing once) the workload-aware DTA summaries.
func (e *Env) WASummaries(level vscale.VRLevel, w *workloads.Workload) (map[fpu.Op]*dta.Summary, error) {
	return e.waSums.do(level.Name+"/"+w.Name, func() (map[fpu.Op]*dta.Summary, error) {
		tr, err := e.Trace(w)
		if err != nil {
			return nil, err
		}
		return e.F.WorkloadSummariesCtx(e.ctx, level, tr)
	})
}

// DAModel returns (building once) the data-agnostic model at a level.
func (e *Env) DAModel(level vscale.VRLevel) (*errmodel.DAModel, error) {
	return e.daBy.do(level.Name, func() (*errmodel.DAModel, error) {
		ws, err := e.Workloads()
		if err != nil {
			return nil, err
		}
		var trs []*trace.Trace
		for _, w := range ws {
			tr, err := e.Trace(w)
			if err != nil {
				return nil, err
			}
			trs = append(trs, tr)
		}
		return e.F.DevelopDACtx(e.ctx, level, trs)
	})
}

// IAModel returns (building once) the instruction-aware model at a level.
func (e *Env) IAModel(level vscale.VRLevel) *errmodel.IAModel {
	m, _ := e.IAModelErr(level)
	return m
}

// IAModelErr is IAModel with the build error (a canceled or panicking
// characterization) surfaced instead of swallowed.
func (e *Env) IAModelErr(level vscale.VRLevel) (*errmodel.IAModel, error) {
	return e.iaBy.do(level.Name, func() (*errmodel.IAModel, error) {
		return e.F.DevelopIACtx(e.ctx, level)
	})
}

// WAModel returns (building once) the workload-aware model for a cell.
func (e *Env) WAModel(level vscale.VRLevel, w *workloads.Workload) (*errmodel.WAModel, error) {
	return e.waBy.do(level.Name+"/"+w.Name, func() (*errmodel.WAModel, error) {
		sums, err := e.WASummaries(level, w)
		if err != nil {
			return nil, err
		}
		return errmodel.BuildWA(level.Name, w.Name, sums), nil
	})
}

// Cell runs (once) the injection campaign for one (workload, model
// family, level). A cell found in the artifact store is reloaded without
// building its model at all — on a warm cache the whole matrix resolves
// without a single simulation.
func (e *Env) Cell(w *workloads.Workload, kind errmodel.Kind, level vscale.VRLevel) (*campaign.Result, error) {
	return e.CellCtx(e.ctx, w, kind, level)
}

// CellCtx is Cell under an explicit cancellation context (RunCampaigns
// passes its fail-fast inner context so in-flight cells abort promptly
// once another cell hard-fails). A panic anywhere in the cell's model
// build or campaign is recovered into an error labeled with the cell key.
func (e *Env) CellCtx(ctx context.Context, w *workloads.Workload, kind errmodel.Kind, level vscale.VRLevel) (*campaign.Result, error) {
	key := fmt.Sprintf("%s/%s/%s", w.Name, kind, level.Name)
	return e.cells.do(key, func() (*campaign.Result, error) {
		store := e.F.Cfg.Artifacts
		ak := artifact.CampaignKey(w.Name, string(kind), level.Name,
			e.Opts.Runs, e.F.Cfg.Seed, true, e.cfgTag())
		cached := new(campaign.Result)
		if store.Load(ak, cached) {
			e.cellsCached.Add(1)
			e.cellsDone.Add(1)
			return cached, nil
		}
		var m errmodel.Model
		var err error
		switch kind {
		case errmodel.DA:
			m, err = e.DAModel(level)
		case errmodel.IA:
			m, err = e.IAModelErr(level)
		case errmodel.WA:
			m, err = e.WAModel(level, w)
		default:
			err = fmt.Errorf("experiments: unknown model kind %q", kind)
		}
		if err != nil {
			return nil, err
		}
		// Figures 9 and the AVM analysis use the paper's single-injection
		// statistical discipline. Cancellation discards the cell entirely
		// (campaign.Run never returns partial results), so the store below
		// only ever sees complete cells.
		r, err := e.F.EvaluateSingleCtx(ctx, w, m, e.Opts.Runs)
		if err != nil {
			return nil, err
		}
		e.noteSaveError(store.Save(ak, r))
		e.cellsDone.Add(1)
		return r, nil
	})
}

// IntUnit returns (building once) the integer-side netlists for Figure 4.
func (e *Env) IntUnit() (*alu.Unit, error) {
	return e.intUnit.do("int", func() (*alu.Unit, error) {
		return alu.New(e.F.Lib, e.F.Cfg.Seed+0xA10)
	})
}

// ModelKinds returns the three compared families in presentation order.
func ModelKinds() []errmodel.Kind {
	return []errmodel.Kind{errmodel.DA, errmodel.IA, errmodel.WA}
}

// opShares derives the per-op dynamic instruction shares from a trace.
func opShares(tr *trace.Trace) [fpu.NumOps]float64 {
	var shares [fpu.NumOps]float64
	for op := range shares {
		shares[op] = tr.OpShare(fpu.Op(op))
	}
	return shares
}

// rng returns a derived deterministic source.
func (e *Env) rng(tag string) *prng.Source {
	h := uint64(1469598103934665603)
	for i := 0; i < len(tag); i++ {
		h = (h ^ uint64(tag[i])) * 1099511628211
	}
	return prng.New(e.F.Cfg.Seed ^ h)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// sortedKeys is a tiny helper for stable map iteration in reports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
