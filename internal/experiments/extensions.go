package experiments

import (
	"fmt"
	"io"
	"sort"

	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/netlist"
	"teva/internal/power"
	"teva/internal/sta"
	"teva/internal/timingsim"
	"teva/internal/vscale"
)

// This file implements the reproduction's extension experiments:
//
//   - Sources: the paper's Section VI future work — assessing timing
//     errors caused by overclocking, temperature and transistor aging
//     through the same DTA path used for undervolting.
//   - Power: the Voltus-substitute gate-level dynamic power analysis
//     backing the paper's ">30% FP energy" observation and the energy
//     accounting of the mitigation study.
//   - History ablation: quantifying how much the pipeline-history
//     modelling in DTA matters (the execution-history sensitivity the
//     same group's ExHero work establishes).

// SourceRow is one delay-increase source evaluated against fp-mul.d.
type SourceRow struct {
	// Name labels the stress ("VR20", "85C", "3y aging", "1.10x clock").
	Name string
	// Scale is the source's delay inflation.
	Scale float64
	// ER is the resulting fp-mul.d error ratio on random operands.
	ER float64
}

// Sources evaluates the Section VI delay-increase sources.
func Sources(e *Env) ([]SourceRow, error) {
	m := e.F.Volt
	corners := []struct {
		name string
		sc   vscale.StressCorner
	}{
		{"nominal", vscale.NominalCorner()},
		{"VR15", vscale.StressCorner{SupplyReduction: 0.15, TempC: vscale.TempNominalC, FreqMult: 1}},
		{"VR20", vscale.StressCorner{SupplyReduction: 0.20, TempC: vscale.TempNominalC, FreqMult: 1}},
		{"85C", vscale.StressCorner{TempC: 85, FreqMult: 1}},
		{"125C", vscale.StressCorner{TempC: 125, FreqMult: 1}},
		{"aging 3y", vscale.StressCorner{TempC: vscale.TempNominalC, AgeYears: 3, FreqMult: 1}},
		{"aging 7y", vscale.StressCorner{TempC: vscale.TempNominalC, AgeYears: 7, FreqMult: 1}},
		{"1.10x clock", vscale.StressCorner{TempC: vscale.TempNominalC, FreqMult: 1.10}},
		{"1.20x clock", vscale.StressCorner{TempC: vscale.TempNominalC, FreqMult: 1.20}},
		{"VR10+85C+3y", vscale.StressCorner{SupplyReduction: 0.10, TempC: 85, AgeYears: 3, FreqMult: 1}},
	}
	n := e.F.Cfg.RandomOperands
	src := e.rng("sources")
	pairs := make([]dta.Pair, n)
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
	}
	var rows []SourceRow
	for _, c := range corners {
		scale := m.Scale(c.sc)
		sum := e.cachedSummary("sources/"+c.name, fpu.DMul, scale, len(pairs), func() *dta.Summary {
			recs := dta.AnalyzeStreamObs(e.F.FPU, fpu.DMul, scale, e.F.Cfg.Timing, pairs, e.F.Cfg.Workers, nil)
			return dta.Summarize(fpu.DMul, recs)
		})
		rows = append(rows, SourceRow{
			Name:  c.name,
			Scale: scale,
			ER:    sum.ErrorRatio(),
		})
	}
	return rows, nil
}

// RenderSources prints the stress ladder.
func RenderSources(w io.Writer, rows []SourceRow) {
	header(w, "Extension (paper SVI): timing errors from other delay-increase sources (fp-mul.d)")
	fmt.Fprintf(w, "%-14s %10s %12s\n", "source", "delay x", "ER")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9.3fx %12.3e\n", r.Name, r.Scale, r.ER)
	}
}

// PowerResult is the gate-level power study.
type PowerResult struct {
	Profile *power.Profile
	// PerWorkload maps benchmarks to their FPU energy share.
	PerWorkload map[string]power.Breakdown
}

// Power runs the Voltus-substitute analysis: per-op switching energies
// and per-workload FPU energy shares.
func Power(e *Env) (*PowerResult, error) {
	intU, err := e.IntUnit()
	if err != nil {
		return nil, err
	}
	samples := e.F.Cfg.RandomOperands / 20
	if samples < 40 {
		samples = 40
	}
	prof := power.Characterize(e.F.FPU, intU, samples, e.F.Cfg.Seed^0x90AE)
	res := &PowerResult{Profile: prof, PerWorkload: make(map[string]power.Breakdown)}
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		tr, err := e.Trace(w)
		if err != nil {
			return nil, err
		}
		res.PerWorkload[w.Name] = prof.WorkloadBreakdown(tr)
	}
	return res, nil
}

// RenderPower prints the power study.
func RenderPower(w io.Writer, r *PowerResult) {
	header(w, "Extension (Voltus substitute): gate-level dynamic energy")
	fmt.Fprintf(w, "per-operation switching energy (nominal corner):\n")
	for _, op := range fpu.Ops() {
		fmt.Fprintf(w, "   %-10s %9.0f fJ\n", op, r.Profile.PerOp[op])
	}
	fmt.Fprintf(w, "   %-10s %9.0f fJ\n", "int-op", r.Profile.IntOp)
	fmt.Fprintf(w, "\nper-workload FPU share of dynamic energy (paper: FP >30%% for FP-heavy codes):\n")
	names := make([]string, 0, len(r.PerWorkload))
	for n := range r.PerWorkload {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := r.PerWorkload[n]
		fmt.Fprintf(w, "   %-8s %5.1f%%\n", n, 100*b.FPUShare)
	}
}

// HistoryRow compares DTA with and without pipeline history for one op.
type HistoryRow struct {
	Op fpu.Op
	// WithHistory is the ER with real back-to-back operand transitions.
	WithHistory float64
	// FixedHistory is the ER when every instruction transitions from the
	// same fixed reference state (history ignored).
	FixedHistory float64
}

// HistoryAblation quantifies the execution-history sensitivity of the
// timing-error rate: the same operand set analyzed once with genuine
// pipeline history and once from a fixed reference state. The divergence
// justifies the history-aware DTA the framework (and the ExHero line of
// work) uses.
func HistoryAblation(e *Env, level vscale.VRLevel) ([]HistoryRow, error) {
	n := e.F.Cfg.RandomOperands / 2
	if n < 200 {
		n = 200
	}
	var rows []HistoryRow
	for _, op := range []fpu.Op{fpu.DMul, fpu.DSub, fpu.DAdd} {
		op := op
		src := e.rng("history/" + op.String())
		pairs := make([]dta.Pair, n)
		for i := range pairs {
			pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
		}
		scale := e.F.Volt.ScaleFor(level)
		with := e.cachedSummary("history/with/"+level.Name, op, scale, n, func() *dta.Summary {
			recs := dta.AnalyzeStreamObs(e.F.FPU, op, scale, e.F.Cfg.Timing, pairs, e.F.Cfg.Workers, nil)
			return dta.Summarize(op, recs)
		})
		fixed := e.cachedSummary("history/fixed/"+level.Name, op, scale, n, func() *dta.Summary {
			// Fixed history: re-warm the analyzer with the same reference
			// pair before every instruction.
			recs := make([]dta.Record, len(pairs))
			a := dta.NewEngineAt(e.F.FPU, op, scale, e.F.Cfg.Timing)
			ref := dta.Pair{A: 0x3FF0000000000000, B: 0x3FF0000000000000} // 1.0, 1.0
			for i, p := range pairs {
				a.Warm(ref)
				recs[i] = a.Analyze(p)
			}
			return dta.Summarize(op, recs)
		})
		rows = append(rows, HistoryRow{
			Op:           op,
			WithHistory:  with.ErrorRatio(),
			FixedHistory: fixed.ErrorRatio(),
		})
	}
	return rows, nil
}

// RenderHistory prints the ablation.
func RenderHistory(w io.Writer, level string, rows []HistoryRow) {
	header(w, fmt.Sprintf("Ablation: pipeline-history sensitivity of DTA (%s)", level))
	fmt.Fprintf(w, "%-10s %14s %14s\n", "op", "real history", "fixed history")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14.3e %14.3e\n", r.Op, r.WithHistory, r.FixedHistory)
	}
	fmt.Fprintln(w, "diverging columns show that the error rate depends on the previously")
	fmt.Fprintln(w, "executed instruction's data, not just the current operands")
}

// ProcessResult is the die-to-die Monte-Carlo study (the paper's fourth
// Section VI source: process fluctuations).
type ProcessResult struct {
	// Sigma is the per-gate lognormal delay spread.
	Sigma float64
	// ERs holds fp-mul.d error ratios at VR15, one per simulated die.
	ERs []float64
}

// ProcessVariation evaluates `dies` process-variation instances of the
// design at VR15: per-gate lognormal delay factors shift each die's
// dynamic slack, spreading the error ratio around the typical corner's.
func ProcessVariation(e *Env, dies int, sigma float64) (*ProcessResult, error) {
	if dies <= 0 {
		return nil, fmt.Errorf("experiments: non-positive die count")
	}
	n := e.F.Cfg.RandomOperands
	src := e.rng("process")
	pairs := make([]dta.Pair, n)
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64(), B: src.Uint64()}
	}
	scale := e.F.Volt.ScaleFor(vscale.VR15)
	res := &ProcessResult{Sigma: sigma}
	for die := 0; die < dies; die++ {
		die := die
		sum := e.cachedSummary(fmt.Sprintf("process/sigma%g/die%d", sigma, die),
			fpu.DMul, scale, n, func() *dta.Summary {
				f := e.F.FPU.Vary(sigma, uint64(die)+1)
				recs := dta.AnalyzeStreamObs(f, fpu.DMul, scale, e.F.Cfg.Timing, pairs, e.F.Cfg.Workers, nil)
				return dta.Summarize(fpu.DMul, recs)
			})
		res.ERs = append(res.ERs, sum.ErrorRatio())
	}
	sort.Float64s(res.ERs)
	return res, nil
}

// RenderProcess prints the die distribution.
func RenderProcess(w io.Writer, r *ProcessResult) {
	header(w, fmt.Sprintf("Extension (paper SVI): process variation, %d dies at sigma %.0f%% (fp-mul.d, VR15)", len(r.ERs), 100*r.Sigma))
	for i, er := range r.ERs {
		fmt.Fprintf(w, "die %2d  ER %.3e\n", i+1, er)
	}
	if n := len(r.ERs); n > 0 {
		fmt.Fprintf(w, "min %.3e   median %.3e   max %.3e\n",
			r.ERs[0], r.ERs[n/2], r.ERs[n-1])
	}
	fmt.Fprintln(w, "die-to-die spread at identical voltage shows why per-part")
	fmt.Fprintln(w, "characterization (and guardbanding) exists")
}

// ValidationRow compares a WA model's predicted error ratio against a
// fresh DTA measurement for one (workload, op).
type ValidationRow struct {
	Workload  string
	Op        fpu.Op
	Predicted float64
	Observed  float64
}

// Validate addresses the paper's Section II-C critique that prior
// instruction-aware statistics were "never validated or tuned with
// experimental results": every WA model's per-op ratio is re-measured by
// an independent DTA pass over freshly drawn operands from the same
// workload trace.
func Validate(e *Env, level vscale.VRLevel) ([]ValidationRow, float64, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, 0, err
	}
	var rows []ValidationRow
	var errs []float64
	for _, w := range ws {
		m, err := e.WAModel(level, w)
		if err != nil {
			return nil, 0, err
		}
		tr, err := e.Trace(w)
		if err != nil {
			return nil, 0, err
		}
		src := e.rng("validate/" + w.Name)
		for _, op := range fpu.Ops() {
			pool := tr.Pairs[op]
			pred := m.PerOp[op].ER
			if len(pool) == 0 || pred == 0 {
				continue
			}
			n := e.F.Cfg.WorkloadOperands / 2
			if n < 100 {
				n = 100
			}
			pairs := make([]dta.Pair, n)
			for i := range pairs {
				pairs[i] = pool[src.Intn(len(pool))]
			}
			op := op
			sum := e.cachedSummary("validate/"+level.Name+"/"+w.Name, op,
				e.F.Volt.ScaleFor(level), n, func() *dta.Summary {
					recs := dta.AnalyzeStreamObs(e.F.FPU, op, e.F.Volt.ScaleFor(level), e.F.Cfg.Timing, pairs, e.F.Cfg.Workers, nil)
					return dta.Summarize(op, recs)
				})
			obs := sum.ErrorRatio()
			rows = append(rows, ValidationRow{Workload: w.Name, Op: op, Predicted: pred, Observed: obs})
			if pred > 0 {
				d := (obs - pred) / pred
				if d < 0 {
					d = -d
				}
				errs = append(errs, d)
			}
		}
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	if len(errs) > 0 {
		mean /= float64(len(errs))
	}
	return rows, mean, nil
}

// RenderValidate prints the validation table.
func RenderValidate(w io.Writer, level string, rows []ValidationRow, meanRelErr float64) {
	header(w, fmt.Sprintf("Model validation: WA predicted vs re-measured error ratios (%s)", level))
	fmt.Fprintf(w, "%-8s %-10s %12s %12s\n", "app", "op", "predicted", "observed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %12.3e %12.3e\n", r.Workload, r.Op, r.Predicted, r.Observed)
	}
	fmt.Fprintf(w, "mean relative prediction error: %.1f%%\n", 100*meanRelErr)
}

// DesignRow describes one pipeline stage of one instruction.
type DesignRow struct {
	Op       fpu.Op
	Stage    string
	Repeat   int
	Gates    int
	Depth    int
	DelayPS  float64
	CLKShare float64
}

// Design reports the generated FPU's structure: the Figure 3 view of each
// pipeline (stages, gate counts, logic depth) annotated with static
// timing — the "design report" a signoff flow prints.
func Design(e *Env) ([]DesignRow, error) {
	var rows []DesignRow
	clk := e.F.FPU.CLK
	for _, op := range fpu.Ops() {
		p := e.F.FPU.Pipeline(op)
		reports := p.STA()
		for i, s := range p.Stages {
			st := s.N.Stats()
			rows = append(rows, DesignRow{
				Op:       op,
				Stage:    s.Name,
				Repeat:   s.Repeat,
				Gates:    st.Gates,
				Depth:    st.MaxDepth,
				DelayPS:  reports[i].WorstDelay,
				CLKShare: reports[i].WorstDelay / clk,
			})
		}
	}
	return rows, nil
}

// RenderDesign prints the design report.
func RenderDesign(w io.Writer, e *Env, rows []DesignRow) {
	header(w, fmt.Sprintf("Design report: %d-gate FPU, CLK %.0f ps (Eq. 1 over %d stages)",
		e.F.FPU.NumGates(), e.F.FPU.CLK, len(rows)))
	fmt.Fprintf(w, "%-10s %-14s %4s %7s %6s %9s %7s\n",
		"op", "stage", "rep", "gates", "depth", "delay ps", "of CLK")
	var lastOp fpu.Op = fpu.NumOps
	for _, r := range rows {
		opName := ""
		if r.Op != lastOp {
			opName = r.Op.String()
			lastOp = r.Op
		}
		fmt.Fprintf(w, "%-10s %-14s %4d %7d %6d %9.0f %6.1f%%\n",
			opName, r.Stage, r.Repeat, r.Gates, r.Depth, r.DelayPS, 100*r.CLKShare)
	}
}

// AdderRow summarizes one adder architecture in the ablation.
type AdderRow struct {
	Name  string
	Gates int
	// STAps is the static worst-case delay (with register overheads).
	STAps float64
	// MeanArr/MaxArr are dynamic arrival statistics over random
	// back-to-back transitions, ps.
	MeanArr, MaxArr float64
	// FailAt85 is the fraction of transitions whose worst arrival misses
	// a deadline at 85% of the architecture's own STA bound — the
	// static-vs-dynamic gap that the FPU calibration exploits.
	FailAt85 float64
}

// AdderAblation compares 56-bit adder architectures (the add/sub mantissa
// width): full ripple, hybrid carry-bypass with 8- and 16-bit blocks (the
// design choice DESIGN.md documents), and a Kogge-Stone prefix adder.
func AdderAblation(e *Env) ([]AdderRow, error) {
	const w = 56
	type arch struct {
		name  string
		build func(b *netlist.Builder, x, y netlist.Bus) netlist.Bus
	}
	archs := []arch{
		{"ripple", func(b *netlist.Builder, x, y netlist.Bus) netlist.Bus {
			return b.Sum(b.RippleAdder(x, y, netlist.Const0))
		}},
		{"hybrid-8", func(b *netlist.Builder, x, y netlist.Bus) netlist.Bus {
			return b.Sum(b.HybridAdder(x, y, netlist.Const0, 8))
		}},
		{"hybrid-16", func(b *netlist.Builder, x, y netlist.Bus) netlist.Bus {
			return b.Sum(b.HybridAdder(x, y, netlist.Const0, 16))
		}},
		{"kogge-stone", func(b *netlist.Builder, x, y netlist.Bus) netlist.Bus {
			return b.Sum(b.PrefixAdder(x, y, netlist.Const0))
		}},
	}
	lib := e.F.Lib
	n := e.F.Cfg.RandomOperands
	if n > 4000 {
		n = 4000
	}
	var rows []AdderRow
	for _, a := range archs {
		b := netlist.NewBuilder("ablate/"+a.name, lib, 0xADDE)
		x := b.Input(w)
		y := b.Input(w)
		b.Output(a.build(b, x, y))
		nl, err := b.Build()
		if err != nil {
			return nil, err
		}
		report := sta.Analyze(nl.Compiled(), lib.ClockToQ, lib.Setup)
		sim := timingsim.NewFast(nl.Compiled(), 1.0)
		src := e.rng("adders/" + a.name)
		prev := make([]bool, 2*w)
		cur := make([]bool, 2*w)
		deadline := 0.85*report.WorstDelay - lib.Setup
		var sumArr, maxArr float64
		fails := 0
		for i := 0; i < n; i++ {
			copy(prev, cur)
			for j := range cur {
				cur[j] = src.Bool()
			}
			s := sim.Run(prev, cur, lib.ClockToQ, deadline)
			arr := s.WorstArrival + lib.Setup
			sumArr += arr
			if arr > maxArr {
				maxArr = arr
			}
			if s.Violations > 0 {
				fails++
			}
		}
		rows = append(rows, AdderRow{
			Name:     a.name,
			Gates:    nl.NumGates(),
			STAps:    report.WorstDelay,
			MeanArr:  sumArr / float64(n),
			MaxArr:   maxArr,
			FailAt85: float64(fails) / float64(n),
		})
	}
	return rows, nil
}

// RenderAdders prints the ablation.
func RenderAdders(w io.Writer, rows []AdderRow) {
	header(w, "Ablation: 56-bit adder architectures (static vs dynamic timing)")
	fmt.Fprintf(w, "%-12s %7s %9s %10s %9s %10s\n",
		"architecture", "gates", "STA ps", "mean arr", "max arr", "P(fail@85%)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7d %9.0f %10.0f %9.0f %10.3f\n",
			r.Name, r.Gates, r.STAps, r.MeanArr, r.MaxArr, r.FailAt85)
	}
	fmt.Fprintln(w, "the hybrid carry-bypass blocks trade a short static bound for a")
	fmt.Fprintln(w, "data-dependent dynamic tail — the profile the FPU calibration uses")
}
