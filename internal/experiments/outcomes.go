package experiments

import (
	"context"
	"fmt"
	"io"

	"teva/internal/campaign"
	"teva/internal/errmodel"
	"teva/internal/stats"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// CampaignSet is the full cross product of (workload, model, level)
// campaign results backing Figures 9-10 and the AVM analysis.
type CampaignSet struct {
	// Cells maps "workload/kind/level" to its result.
	Cells map[string]*campaign.Result
	// Order lists workload names in Table II order.
	Order []string
}

// cellKey formats the map key.
func cellKey(workload string, kind errmodel.Kind, level string) string {
	return fmt.Sprintf("%s/%s/%s", workload, kind, level)
}

// Get fetches one cell.
func (cs *CampaignSet) Get(workload string, kind errmodel.Kind, level string) *campaign.Result {
	return cs.Cells[cellKey(workload, kind, level)]
}

// RunCampaigns executes (or reuses) every campaign cell. The full
// workload × model × level matrix is fanned out over a bounded worker
// pool; per-cell single-flight inside Env deduplicates the shared model
// builds, so the matrix scales with cores on a cold cache and resolves
// without any simulation on a warm one. The assembled set is identical
// to a serial build: every cell's campaign derives its own seed from
// (workload, kind, level), independent of scheduling order.
//
// Failure semantics (see forEachLimit): the first hard error cancels the
// remaining cells; a cell that panics is reported by name while the rest
// of the matrix completes; a drain request stops dispatch but finishes
// in-flight cells. In every one of those cases the returned set still
// holds all cells that did complete (so partial results can be rendered
// or inspected) alongside the errors.Join of what went wrong.
func RunCampaigns(e *Env) (*CampaignSet, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	type job struct {
		w     *workloads.Workload
		kind  errmodel.Kind
		level vscale.VRLevel
	}
	var jobs []job
	cs := &CampaignSet{Cells: make(map[string]*campaign.Result)}
	for _, w := range ws {
		cs.Order = append(cs.Order, w.Name)
		for _, level := range e.Levels() {
			for _, kind := range ModelKinds() {
				jobs = append(jobs, job{w, kind, level})
			}
		}
	}
	e.cellsTotal.Store(int64(len(jobs)))
	aborted := e.F.Cfg.Metrics.Counter(MetricCellsAborted)
	results := make([]*campaign.Result, len(jobs))
	err = forEachLimit(e.ctx, e.drain, e.workers(), len(jobs), func(ctx context.Context, i int) error {
		r, err := e.CellCtx(ctx, jobs[i].w, jobs[i].kind, jobs[i].level)
		if err != nil {
			aborted.Inc()
			return err
		}
		results[i] = r
		return nil
	})
	for i, j := range jobs {
		if results[i] != nil {
			cs.Cells[cellKey(j.w.Name, j.kind, j.level.Name)] = results[i]
		}
	}
	return cs, err
}

// RenderFig9 prints the outcome distributions and the aggregate crash
// taxonomy (the paper's process-crash / kernel-panic / FP-exception
// breakdown).
func RenderFig9(w io.Writer, cs *CampaignSet) {
	header(w, "Figure 9: injection outcome distributions per benchmark, model and VR level")
	fmt.Fprintf(w, "%-8s %-5s %-5s %8s %8s %8s %8s %8s\n",
		"app", "model", "VR", "masked", "sdc", "crash", "timeout", "AVM")
	crashKinds := map[string]int{}
	totalCrashes := 0
	for _, name := range cs.Order {
		for _, level := range []string{"VR15", "VR20"} {
			for _, kind := range ModelKinds() {
				r := cs.Get(name, kind, level)
				if r == nil {
					continue
				}
				fmt.Fprintf(w, "%-8s %-5s %-5s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.3f\n",
					name, kind, level,
					100*r.Fraction(campaign.Masked), 100*r.Fraction(campaign.SDC),
					100*r.Fraction(campaign.Crash), 100*r.Fraction(campaign.Timeout),
					r.AVM())
				for k, c := range r.CrashKinds {
					crashKinds[k] += c
					totalCrashes += c
				}
			}
		}
	}
	if totalCrashes > 0 {
		fmt.Fprintf(w, "\ncrash taxonomy across all cells (%d crashes):", totalCrashes)
		for _, k := range sortedKeys(crashKinds) {
			fmt.Fprintf(w, "  %s %.0f%%", k, 100*float64(crashKinds[k])/float64(totalCrashes))
		}
		fmt.Fprintln(w)
	}
}

// Fig10Result is the error-ratio comparison.
type Fig10Result struct {
	// ER maps cell keys to injected error ratios (Eq. 2).
	ER map[string]float64
	// DAFold and IAFold are the per-(workload, level) fold divergences of
	// the DA/IA ratios from the WA reference.
	DAFold, IAFold map[string]float64
	// DAAvgFold and IAAvgFold are the geometric means — the paper's
	// "~250x" and "~230x" headlines — with medians and maxima alongside
	// (the divergence distribution is extremely skewed: cells where the
	// workload-aware ratio is zero diverge by 10^4-10^5x).
	DAAvgFold, IAAvgFold       float64
	DAMedianFold, IAMedianFold float64
	DAMaxFold, IAMaxFold       float64
}

// Fig10 computes each model's injected error ratio per benchmark and
// level (Eq. 2: the expected number of injected errors per dynamic
// instruction, from the model's rates and the benchmark's dynamic
// instruction mix) and the fold divergences from the WA reference.
func Fig10(e *Env) (*Fig10Result, error) {
	ws, err := e.Workloads()
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{
		ER:     make(map[string]float64),
		DAFold: make(map[string]float64),
		IAFold: make(map[string]float64),
	}
	var daFolds, iaFolds []float64
	for _, w := range ws {
		tr, err := e.Trace(w)
		if err != nil {
			return nil, err
		}
		shares := opShares(tr)
		for _, level := range e.Levels() {
			da, err := e.DAModel(level)
			if err != nil {
				return nil, err
			}
			ia, err := e.IAModelErr(level)
			if err != nil {
				return nil, err
			}
			wa, err := e.WAModel(level, w)
			if err != nil {
				return nil, err
			}
			ers := [3]float64{
				da.ExpectedER(shares), ia.ExpectedER(shares), wa.ExpectedER(shares),
			}
			for i, kind := range ModelKinds() {
				res.ER[cellKey(w.Name, kind, level.Name)] = ers[i]
			}
			key := w.Name + "/" + level.Name
			// A zero ratio is floored at what a paper-scale campaign could
			// have resolved: one error across 1068 runs of the benchmark.
			floor := 1.0 / (1068 * float64(tr.TotalInstr))
			res.DAFold[key] = stats.FoldRatio(ers[0], ers[2], floor)
			res.IAFold[key] = stats.FoldRatio(ers[1], ers[2], floor)
			daFolds = append(daFolds, res.DAFold[key])
			iaFolds = append(iaFolds, res.IAFold[key])
		}
	}
	res.DAAvgFold = stats.GeoMean(daFolds)
	res.IAAvgFold = stats.GeoMean(iaFolds)
	res.DAMedianFold = stats.Median(daFolds)
	res.IAMedianFold = stats.Median(iaFolds)
	for i := range daFolds {
		if daFolds[i] > res.DAMaxFold {
			res.DAMaxFold = daFolds[i]
		}
		if iaFolds[i] > res.IAMaxFold {
			res.IAMaxFold = iaFolds[i]
		}
	}
	return res, nil
}

// RenderFig10 prints the ratios and divergences.
func RenderFig10(w io.Writer, order []string, r *Fig10Result) {
	header(w, "Figure 10: timing error injection ratios per benchmark and model")
	fmt.Fprintf(w, "%-8s %-5s %12s %12s %12s %10s %10s\n",
		"app", "VR", "DA", "IA", "WA", "DA/WA x", "IA/WA x")
	for _, name := range order {
		for _, level := range []string{"VR15", "VR20"} {
			key := name + "/" + level
			fmt.Fprintf(w, "%-8s %-5s %12.3e %12.3e %12.3e %10.1f %10.1f\n",
				name, level,
				r.ER[cellKey(name, errmodel.DA, level)],
				r.ER[cellKey(name, errmodel.IA, level)],
				r.ER[cellKey(name, errmodel.WA, level)],
				r.DAFold[key], r.IAFold[key])
		}
	}
	fmt.Fprintf(w, "\nDA-vs-WA ratio divergence: geomean ~%.0fx, median %.1fx, worst cell %.0fx (paper: ~250x avg)\n",
		r.DAAvgFold, r.DAMedianFold, r.DAMaxFold)
	fmt.Fprintf(w, "IA-vs-WA ratio divergence: geomean ~%.0fx, median %.1fx, worst cell %.0fx (paper: ~230x avg)\n",
		r.IAAvgFold, r.IAMedianFold, r.IAMaxFold)
}

// AVMResult is the Section V-C analysis.
type AVMResult struct {
	// AVM maps cell keys to the Application Vulnerability Metric.
	AVM map[string]float64
	// MeanAbsDiffDA / IA are the mean |AVM_model - AVM_WA| gaps in
	// percentage points (the paper reports 49.8% on average).
	MeanAbsDiffDA, MeanAbsDiffIA float64
	// SafeLevel maps workloads to the deepest evaluated VR level whose
	// WA-model AVM is zero ("" when even VR15 disturbs the app).
	SafeLevel map[string]string
	// PowerSavings maps workloads to the dynamic-power saving at that
	// safe level.
	PowerSavings map[string]float64
}

// AVMAnalysis computes Eq. 4 for every cell and the voltage guidance the
// paper derives from it.
func AVMAnalysis(e *Env, cs *CampaignSet) (*AVMResult, error) {
	res := &AVMResult{
		AVM:          make(map[string]float64),
		SafeLevel:    make(map[string]string),
		PowerSavings: make(map[string]float64),
	}
	var daDiffs, iaDiffs []float64
	for _, name := range cs.Order {
		for _, level := range []string{"VR15", "VR20"} {
			var avm [3]float64
			for i, kind := range ModelKinds() {
				r := cs.Get(name, kind, level)
				avm[i] = r.AVM()
				res.AVM[cellKey(name, kind, level)] = avm[i]
			}
			daDiffs = append(daDiffs, abs(avm[0]-avm[2]))
			iaDiffs = append(iaDiffs, abs(avm[1]-avm[2]))
		}
		// Voltage guidance: deepest level the WA model declares safe.
		safe := ""
		for _, level := range e.Levels() {
			if res.AVM[cellKey(name, errmodel.WA, level.Name)] == 0 {
				safe = level.Name
			} else {
				break
			}
		}
		res.SafeLevel[name] = safe
		if safe != "" {
			for _, level := range e.Levels() {
				if level.Name == safe {
					res.PowerSavings[name] = e.F.Volt.PowerSavings(
						e.F.Volt.SupplyAtReduction(level.Reduction))
				}
			}
		}
	}
	res.MeanAbsDiffDA = stats.Mean(daDiffs)
	res.MeanAbsDiffIA = stats.Mean(iaDiffs)
	return res, nil
}

// RenderAVM prints the vulnerability analysis.
func RenderAVM(w io.Writer, e *Env, cs *CampaignSet, r *AVMResult) {
	header(w, "Application Vulnerability Metric (Eq. 4) and voltage guidance")
	fmt.Fprintf(w, "%-8s %-5s %8s %8s %8s\n", "app", "VR", "DA", "IA", "WA")
	for _, name := range cs.Order {
		for _, level := range []string{"VR15", "VR20"} {
			fmt.Fprintf(w, "%-8s %-5s %8.3f %8.3f %8.3f\n", name, level,
				r.AVM[cellKey(name, errmodel.DA, level)],
				r.AVM[cellKey(name, errmodel.IA, level)],
				r.AVM[cellKey(name, errmodel.WA, level)])
		}
	}
	fmt.Fprintf(w, "\nmean |AVM_DA - AVM_WA| = %.1f%%   mean |AVM_IA - AVM_WA| = %.1f%% (paper: 49.8%% avg)\n",
		100*r.MeanAbsDiffDA, 100*r.MeanAbsDiffIA)
	fmt.Fprintln(w, "\nWA-guided operating points:")
	for _, name := range cs.Order {
		safe := r.SafeLevel[name]
		if safe == "" {
			fmt.Fprintf(w, "%-8s keep nominal supply (errors already at VR15)\n", name)
			continue
		}
		fmt.Fprintf(w, "%-8s safe down to %s: dynamic power savings %.0f%%\n",
			name, safe, 100*r.PowerSavings[name])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// All runs every experiment and renders the full report.
func All(e *Env, w io.Writer) error {
	Table1(w)
	rows, err := Table2(e)
	if err != nil {
		return err
	}
	RenderTable2(w, rows)
	f4, err := Fig4(e)
	if err != nil {
		return err
	}
	RenderFig4(w, f4)
	f5, err := Fig5(e)
	if err != nil {
		return err
	}
	RenderFig5(w, f5)
	f6, err := Fig6(e)
	if err != nil {
		return err
	}
	RenderFig6(w, f6)
	f7, err := Fig7(e)
	if err != nil {
		return err
	}
	RenderFig7(w, f7)
	f8, err := Fig8(e)
	if err != nil {
		return err
	}
	RenderFig8(w, f8)
	cs, err := RunCampaigns(e)
	if err != nil {
		return err
	}
	RenderFig9(w, cs)
	f10, err := Fig10(e)
	if err != nil {
		return err
	}
	RenderFig10(w, cs.Order, f10)
	avm, err := AVMAnalysis(e, cs)
	if err != nil {
		return err
	}
	RenderAVM(w, e, cs, avm)
	return nil
}
