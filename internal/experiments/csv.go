package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"teva/internal/campaign"
	"teva/internal/errmodel"
	"teva/internal/fpu"
)

// CSV export: every figure's data as the plottable series the paper's
// charts are drawn from. Files land in the chosen directory, one per
// experiment.

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSVTable2 exports the benchmark inventory.
func CSVTable2(dir string, rows []Table2Row) error {
	out := [][]string{{"app", "input", "instructions", "fp_share", "criteria"}}
	for _, r := range rows {
		out = append(out, []string{
			r.App, r.Input, strconv.FormatInt(r.Instructions, 10),
			ftoa(r.FPShare), r.Criteria,
		})
	}
	return writeCSV(dir, "table2.csv", out)
}

// CSVFig4 exports the path distribution and per-unit worst delays.
func CSVFig4(dir string, r *Fig4Result) error {
	out := [][]string{{"unit", "paths_in_tail", "worst_delay_ps", "slack_ps"}}
	units := map[string]bool{}
	for g := range r.ByGroup {
		units[g] = true
	}
	for g := range r.UnitWorst {
		units[g] = true
	}
	names := make([]string, 0, len(units))
	for g := range units {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		out = append(out, []string{
			g, strconv.Itoa(r.ByGroup[g]),
			ftoa(r.UnitWorst[g]), ftoa(r.CLK - r.UnitWorst[g]),
		})
	}
	return writeCSV(dir, "fig4.csv", out)
}

// CSVFig5 exports the flip-multiplicity histogram.
func CSVFig5(dir string, r *Fig5Result) error {
	out := [][]string{{"level", "one_bit", "two_bits", "more_bits"}}
	for _, lv := range []string{"VR15", "VR20"} {
		if _, ok := r.One[lv]; !ok {
			continue
		}
		out = append(out, []string{lv, ftoa(r.One[lv]), ftoa(r.Two[lv]), ftoa(r.More[lv])})
	}
	return writeCSV(dir, "fig5.csv", out)
}

// CSVFig6 exports the convergence study: the AE series plus the
// full-trace per-bit BER vector.
func CSVFig6(dir string, r *Fig6Result) error {
	out := [][]string{{"k", "mean_abs_error"}}
	ks := make([]int, 0, len(r.AE))
	for k := range r.AE {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		out = append(out, []string{strconv.Itoa(k), ftoa(r.AE[k])})
	}
	if err := writeCSV(dir, "fig6_ae.csv", out); err != nil {
		return err
	}
	ber := [][]string{{"bit", "ber"}}
	for i, b := range r.FullBER {
		ber = append(ber, []string{strconv.Itoa(i), ftoa(b)})
	}
	return writeCSV(dir, "fig6_ber.csv", ber)
}

// csvProfiles flattens BER profiles.
func csvProfiles(name string, dir string, r map[string][]BERProfile, withWorkload map[string]string) error {
	out := [][]string{{"level", "op", "er", "sign_ber", "exponent_ber", "mantissa_ber", "max_bit_ber", "max_bit"}}
	for _, lv := range []string{"VR15", "VR20"} {
		for _, p := range r[lv] {
			out = append(out, []string{
				lv, p.Op.String(), ftoa(p.ER), ftoa(p.SignBER),
				ftoa(p.ExponentBER), ftoa(p.MantissaBER),
				ftoa(p.MaxBitBER), strconv.Itoa(p.MaxBitIndex),
			})
		}
	}
	_ = withWorkload
	return writeCSV(dir, name, out)
}

// CSVFig7 exports the IA characterization.
func CSVFig7(dir string, r map[string][]BERProfile) error {
	return csvProfiles("fig7.csv", dir, r, nil)
}

// CSVFig8 exports the WA characterization per benchmark.
func CSVFig8(dir string, r map[string]map[string][]BERProfile) error {
	out := [][]string{{"level", "workload", "op", "er", "sign_ber", "exponent_ber", "mantissa_ber"}}
	for _, lv := range []string{"VR15", "VR20"} {
		for _, name := range sortedKeys(r[lv]) {
			for _, p := range r[lv][name] {
				out = append(out, []string{
					lv, name, p.Op.String(), ftoa(p.ER),
					ftoa(p.SignBER), ftoa(p.ExponentBER), ftoa(p.MantissaBER),
				})
			}
		}
	}
	return writeCSV(dir, "fig8.csv", out)
}

// CSVFig9 exports the outcome distributions (plus crash taxonomy).
func CSVFig9(dir string, cs *CampaignSet) error {
	out := [][]string{{"app", "model", "level", "masked", "sdc", "crash", "timeout", "avm", "crash_kinds"}}
	for _, name := range cs.Order {
		for _, level := range []string{"VR15", "VR20"} {
			for _, kind := range ModelKinds() {
				r := cs.Get(name, kind, level)
				if r == nil {
					continue
				}
				kinds := ""
				for _, k := range sortedKeys(r.CrashKinds) {
					if kinds != "" {
						kinds += ";"
					}
					kinds += fmt.Sprintf("%s=%d", k, r.CrashKinds[k])
				}
				out = append(out, []string{
					name, string(kind), level,
					ftoa(r.Fraction(campaign.Masked)), ftoa(r.Fraction(campaign.SDC)),
					ftoa(r.Fraction(campaign.Crash)), ftoa(r.Fraction(campaign.Timeout)),
					ftoa(r.AVM()), kinds,
				})
			}
		}
	}
	return writeCSV(dir, "fig9.csv", out)
}

// CSVFig10 exports the error-ratio comparison.
func CSVFig10(dir string, order []string, r *Fig10Result) error {
	out := [][]string{{"app", "level", "da_er", "ia_er", "wa_er", "da_fold", "ia_fold"}}
	for _, name := range order {
		for _, level := range []string{"VR15", "VR20"} {
			key := name + "/" + level
			out = append(out, []string{
				name, level,
				ftoa(r.ER[cellKey(name, errmodel.DA, level)]),
				ftoa(r.ER[cellKey(name, errmodel.IA, level)]),
				ftoa(r.ER[cellKey(name, errmodel.WA, level)]),
				ftoa(r.DAFold[key]), ftoa(r.IAFold[key]),
			})
		}
	}
	return writeCSV(dir, "fig10.csv", out)
}

// CSVAVM exports the vulnerability analysis.
func CSVAVM(dir string, cs *CampaignSet, r *AVMResult) error {
	out := [][]string{{"app", "level", "avm_da", "avm_ia", "avm_wa", "safe_level", "power_savings"}}
	for _, name := range cs.Order {
		for _, level := range []string{"VR15", "VR20"} {
			out = append(out, []string{
				name, level,
				ftoa(r.AVM[cellKey(name, errmodel.DA, level)]),
				ftoa(r.AVM[cellKey(name, errmodel.IA, level)]),
				ftoa(r.AVM[cellKey(name, errmodel.WA, level)]),
				r.SafeLevel[name], ftoa(r.PowerSavings[name]),
			})
		}
	}
	return writeCSV(dir, "avm.csv", out)
}

// CSVSources exports the delay-source ladder.
func CSVSources(dir string, rows []SourceRow) error {
	out := [][]string{{"source", "delay_scale", "er"}}
	for _, r := range rows {
		out = append(out, []string{r.Name, ftoa(r.Scale), ftoa(r.ER)})
	}
	return writeCSV(dir, "sources.csv", out)
}

// CSVPower exports the energy study.
func CSVPower(dir string, r *PowerResult) error {
	out := [][]string{{"op", "energy_fj"}}
	for op, e := range r.Profile.PerOp {
		out = append(out, []string{fpu.Op(op).String(), ftoa(e)})
	}
	out = append(out, []string{"int-op", ftoa(r.Profile.IntOp)})
	if err := writeCSV(dir, "power_ops.csv", out); err != nil {
		return err
	}
	wl := [][]string{{"workload", "fpu_energy_fj", "int_energy_fj", "fpu_share"}}
	names := make([]string, 0, len(r.PerWorkload))
	for n := range r.PerWorkload {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := r.PerWorkload[n]
		wl = append(wl, []string{n, ftoa(b.FPUEnergyFJ), ftoa(b.IntEnergyFJ), ftoa(b.FPUShare)})
	}
	return writeCSV(dir, "power_workloads.csv", wl)
}

// CSVProcess exports the die Monte-Carlo.
func CSVProcess(dir string, r *ProcessResult) error {
	out := [][]string{{"die", "er"}}
	for i, er := range r.ERs {
		out = append(out, []string{strconv.Itoa(i + 1), ftoa(er)})
	}
	return writeCSV(dir, "process.csv", out)
}

// CSVValidate exports the model-validation rows.
func CSVValidate(dir string, rows []ValidationRow) error {
	out := [][]string{{"workload", "op", "predicted_er", "observed_er"}}
	for _, r := range rows {
		out = append(out, []string{r.Workload, r.Op.String(), ftoa(r.Predicted), ftoa(r.Observed)})
	}
	return writeCSV(dir, "validate.csv", out)
}

// CSVAdders exports the architecture ablation.
func CSVAdders(dir string, rows []AdderRow) error {
	out := [][]string{{"architecture", "gates", "sta_ps", "mean_arrival_ps", "max_arrival_ps", "fail_at_85pct"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Name, strconv.Itoa(r.Gates), ftoa(r.STAps),
			ftoa(r.MeanArr), ftoa(r.MaxArr), ftoa(r.FailAt85),
		})
	}
	return writeCSV(dir, "adders.csv", out)
}

// CSVDesign exports the design report.
func CSVDesign(dir string, rows []DesignRow) error {
	out := [][]string{{"op", "stage", "repeat", "gates", "depth", "delay_ps", "clk_share"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Op.String(), r.Stage, strconv.Itoa(r.Repeat), strconv.Itoa(r.Gates),
			strconv.Itoa(r.Depth), ftoa(r.DelayPS), ftoa(r.CLKShare),
		})
	}
	return writeCSV(dir, "design.csv", out)
}
