package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/errmodel"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// testEnv uses tiny workloads and characterization so the entire figure
// suite runs in seconds.
var testEnv = mustEnv()

func mustEnv() *Env {
	f, err := core.New(core.Config{
		Seed:             0xF00D,
		RandomOperands:   2000,
		WorkloadOperands: 1200,
		DASample:         100000,
	})
	if err != nil {
		panic(err)
	}
	return NewEnv(f, Options{
		Scale:     workloads.Tiny,
		Runs:      12,
		Fig4Paths: 300,
		Fig6Full:  2400,
		Fig6Ks:    []int{150, 1200},
		Fig6Reps:  6,
	})
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	for _, want := range []string{"DA-model", "IA-model", "WA-model", "fixed probability"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table I missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("expected 7 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Instructions == 0 || r.FPShare <= 0 || r.Criteria == "" {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	if !strings.Contains(buf.String(), "k-means") {
		t.Fatal("render missing benchmark")
	}
}

func TestFig4OnlyFPUPathsInTail(t *testing.T) {
	r, err := Fig4(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) != testEnv.Opts.Fig4Paths {
		t.Fatalf("got %d paths", len(r.Paths))
	}
	// The paper's Figure 4 message: the low-slack tail is entirely FPU.
	if r.ByGroup["alu"] != 0 {
		t.Fatalf("integer paths in the longest-path tail: %v", r.ByGroup)
	}
	var fpuPaths int
	for g, c := range r.ByGroup {
		if strings.HasPrefix(g, "fpu/") {
			fpuPaths += c
		}
	}
	if fpuPaths != len(r.Paths) {
		t.Fatalf("non-FPU paths present: %v", r.ByGroup)
	}
	if r.ByGroup["fpu/fp-mul.d"] == 0 {
		t.Fatal("multiplier paths missing from the tail")
	}
	if r.MinSlack < 0 || r.MinSlack > r.CLK {
		t.Fatalf("min slack %v", r.MinSlack)
	}
	if r.IntWorst >= r.CLK/1.256 {
		t.Fatal("integer paths must clear even the VR20 threshold")
	}
	var buf bytes.Buffer
	RenderFig4(&buf, r)
	if !strings.Contains(buf.String(), "fp-mul.d") {
		t.Fatal("render incomplete")
	}
}

func TestFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 DTA sweep")
	}
	r, err := Fig5(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	// At VR20 there must be observed faults, and fractions sum to 1.
	if _, ok := r.One["VR20"]; !ok {
		t.Fatal("no VR20 fault statistics")
	}
	sum := r.One["VR20"] + r.Two["VR20"] + r.More["VR20"]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	var buf bytes.Buffer
	RenderFig5(&buf, r)
	if !strings.Contains(buf.String(), "multi-bit") {
		t.Fatal("render incomplete")
	}
}

func TestFig6Structure(t *testing.T) {
	// At Tiny scale the is benchmark yields too few faulty fp-mul
	// instructions for the AE ordering to be statistically meaningful
	// (the paper's convergence claim is checked at experiment scale in
	// EXPERIMENTS.md); here we validate the machinery.
	r, err := Fig6(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AE) != 2 {
		t.Fatalf("expected 2 sample sizes, got %d", len(r.AE))
	}
	for k, ae := range r.AE {
		if ae < 0 {
			t.Fatalf("negative AE for K=%d", k)
		}
	}
	if len(r.FullBER) != 64 {
		t.Fatalf("full BER width %d", len(r.FullBER))
	}
	var any bool
	for _, b := range r.FullBER {
		if b < 0 || b > 1 {
			t.Fatalf("BER out of range: %v", b)
		}
		any = any || b > 0
	}
	if !any {
		t.Fatal("full-trace BER all zero: no VR20 faults observed at all")
	}
	var buf bytes.Buffer
	RenderFig6(&buf, r)
	if !strings.Contains(buf.String(), "mean absolute BER error") {
		t.Fatal("render incomplete")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("IA characterization")
	}
	r, err := Fig7(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	find := func(lv string, op string) BERProfile {
		for _, p := range r[lv] {
			if p.Op.String() == op {
				return p
			}
		}
		t.Fatalf("missing %s at %s", op, lv)
		return BERProfile{}
	}
	mul20 := find("VR20", "fp-mul.d")
	if mul20.ER == 0 {
		t.Fatal("fp-mul.d must fail at VR20")
	}
	for _, p := range r["VR20"] {
		if p.ER > mul20.ER {
			t.Fatalf("%s more error-prone than fp-mul.d", p.Op)
		}
	}
	// Conversions and single precision stay error-free.
	for _, op := range []string{"i2f.d", "f2i.d", "fp-mul.s", "fp-add.s"} {
		if p := find("VR20", op); p.ER != 0 {
			t.Fatalf("%s should be error-free: %v", op, p.ER)
		}
	}
	// Mantissa bits dominate exponent bits.
	if mul20.MantissaBER <= mul20.ExponentBER {
		t.Fatalf("mantissa BER %v not above exponent BER %v",
			mul20.MantissaBER, mul20.ExponentBER)
	}
	var buf bytes.Buffer
	RenderFig7(&buf, r)
	if !strings.Contains(buf.String(), "fp-mul.d") {
		t.Fatal("render incomplete")
	}
}

func TestFig8WorkloadDependence(t *testing.T) {
	r, err := Fig8(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	vr20 := r["VR20"]
	if len(vr20) != 7 {
		t.Fatalf("expected 7 benchmarks, got %d", len(vr20))
	}
	// Different workloads must show different fp-mul.d ratios at VR20
	// (the paper's central observation).
	ers := map[string]float64{}
	for name, profiles := range vr20 {
		for _, p := range profiles {
			if p.Op.String() == "fp-mul.d" {
				ers[name] = p.ER
			}
		}
	}
	if len(ers) < 2 {
		t.Skip("too few benchmarks with fp-mul.d")
	}
	distinct := map[float64]bool{}
	for _, er := range ers {
		distinct[er] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all workloads show identical fp-mul.d ER: %v", ers)
	}
	var buf bytes.Buffer
	RenderFig8(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("render empty")
	}
}

func TestCampaignFiguresEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign cross product")
	}
	cs, err := RunCampaigns(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Cells) != 7*2*3 {
		t.Fatalf("expected 42 cells, got %d", len(cs.Cells))
	}
	// Every cell's outcomes sum to the run count.
	for key, r := range cs.Cells {
		var total int
		for _, c := range r.Outcomes {
			total += c
		}
		if total != testEnv.Opts.Runs {
			t.Fatalf("%s outcomes sum %d", key, total)
		}
	}

	f10, err := Fig10(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	// DA's fixed ratio must diverge from WA's workload-specific ratios.
	if f10.DAAvgFold <= 1 {
		t.Fatalf("DA/WA divergence %v should exceed 1x", f10.DAAvgFold)
	}

	avm, err := AVMAnalysis(testEnv, cs)
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range avm.AVM {
		if v < 0 || v > 1 {
			t.Fatalf("AVM %s = %v out of range", key, v)
		}
	}

	var buf bytes.Buffer
	RenderFig9(&buf, cs)
	RenderFig10(&buf, cs.Order, f10)
	RenderAVM(&buf, testEnv, cs, avm)
	out := buf.String()
	for _, want := range []string{"Figure 9", "Figure 10", "Vulnerability", "divergence"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	_ = campaign.Masked
	_ = errmodel.DA
}

func TestSourcesExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("delay-source sweep")
	}
	rows, err := Sources(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SourceRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["nominal"].ER != 0 {
		t.Fatalf("nominal corner must be error free: %+v", byName["nominal"])
	}
	if byName["VR20"].ER == 0 {
		t.Fatal("VR20 must show fp-mul errors")
	}
	// 1.20x overclock inflates delays about as much as VR15 and must not
	// be error-free either.
	if byName["1.20x clock"].ER == 0 {
		t.Fatal("deep overclocking should produce errors")
	}
	// Mild single stresses stay clean; scales are ordered sensibly.
	if byName["85C"].Scale >= byName["125C"].Scale {
		t.Fatal("temperature scale ordering")
	}
	if byName["aging 3y"].Scale >= byName["aging 7y"].Scale {
		t.Fatal("aging scale ordering")
	}
	var buf bytes.Buffer
	RenderSources(&buf, rows)
	if !strings.Contains(buf.String(), "delay-increase sources") {
		t.Fatal("render incomplete")
	}
}

func TestPowerExtension(t *testing.T) {
	r, err := Power(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerWorkload) != 7 {
		t.Fatalf("expected 7 workload breakdowns, got %d", len(r.PerWorkload))
	}
	for name, b := range r.PerWorkload {
		if b.FPUShare <= 0 || b.FPUShare >= 1 {
			t.Fatalf("%s FPU share %v out of range", name, b.FPUShare)
		}
	}
	// srad (the most FP-intensive benchmark) must show a major FP share.
	if r.PerWorkload["srad_v1"].FPUShare < 0.3 {
		t.Fatalf("srad FPU share %v below the paper's >30%% observation",
			r.PerWorkload["srad_v1"].FPUShare)
	}
	var buf bytes.Buffer
	RenderPower(&buf, r)
	if !strings.Contains(buf.String(), "fJ") {
		t.Fatal("render incomplete")
	}
}

func TestHistoryAblation(t *testing.T) {
	rows, err := HistoryAblation(testEnv, vscale.VR20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 ops, got %d", len(rows))
	}
	var anyDiff bool
	for _, r := range rows {
		if r.WithHistory != r.FixedHistory {
			anyDiff = true
		}
	}
	if !anyDiff {
		t.Fatal("history ablation shows no sensitivity at all")
	}
	var buf bytes.Buffer
	RenderHistory(&buf, "VR20", rows)
	if !strings.Contains(buf.String(), "history") {
		t.Fatal("render incomplete")
	}
}

func TestProcessVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("process-variation sweep")
	}
	r, err := ProcessVariation(testEnv, 4, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ERs) != 4 {
		t.Fatalf("die count %d", len(r.ERs))
	}
	distinct := map[float64]bool{}
	for _, er := range r.ERs {
		if er < 0 || er > 1 {
			t.Fatalf("ER %v out of range", er)
		}
		distinct[er] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("dies indistinguishable: %v", r.ERs)
	}
	var buf bytes.Buffer
	RenderProcess(&buf, r)
	if !strings.Contains(buf.String(), "die-to-die") {
		t.Fatal("render incomplete")
	}
	if _, err := ProcessVariation(testEnv, 0, 0.03); err == nil {
		t.Fatal("zero dies must error")
	}
}

func TestCSVExports(t *testing.T) {
	dir := t.TempDir()
	rows, err := Table2(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := CSVTable2(dir, rows); err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := CSVFig4(dir, f4); err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := CSVFig5(dir, f5); err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := CSVFig7(dir, f7); err != nil {
		t.Fatal(err)
	}
	f10, err := Fig10(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if err := CSVFig10(dir, workloads.Names(), f10); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.csv", "fig4.csv", "fig5.csv", "fig7.csv", "fig10.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
		for i, rec := range recs {
			if len(rec) != len(recs[0]) {
				t.Fatalf("%s row %d has %d cols, want %d", name, i, len(rec), len(recs[0]))
			}
		}
	}
}

func TestValidateModels(t *testing.T) {
	if testing.Short() {
		t.Skip("model validation sweep")
	}
	rows, meanErr, err := Validate(testEnv, vscale.VR20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("nothing validated")
	}
	for _, r := range rows {
		if r.Predicted <= 0 {
			t.Fatalf("validated a zero-rate op: %+v", r)
		}
	}
	// With characterization and validation drawn from the same trace
	// pools, predictions must track the re-measured values to well within
	// an order of magnitude on average.
	if meanErr > 1.0 {
		t.Fatalf("mean relative prediction error %.2f too large", meanErr)
	}
	var buf bytes.Buffer
	RenderValidate(&buf, "VR20", rows, meanErr)
	if !strings.Contains(buf.String(), "prediction error") {
		t.Fatal("render incomplete")
	}
}

func TestDesignReport(t *testing.T) {
	rows, err := Design(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 12*3 {
		t.Fatalf("too few stage rows: %d", len(rows))
	}
	var maxShare float64
	var addStages int
	for _, r := range rows {
		if r.Gates <= 0 || r.DelayPS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.CLKShare > maxShare {
			maxShare = r.CLKShare
		}
		if r.Op.String() == "fp-add.d" {
			addStages++
		}
	}
	if addStages != 6 {
		t.Fatalf("fp-add.d should report 6 stages (Figure 3), got %d", addStages)
	}
	if maxShare < 0.999 || maxShare > 1.001 {
		t.Fatalf("critical stage share %v should be 1.0 (Eq. 1)", maxShare)
	}
	var buf bytes.Buffer
	RenderDesign(&buf, testEnv, rows)
	if !strings.Contains(buf.String(), "s4-cpa") {
		t.Fatal("render incomplete")
	}
}

func TestAdderAblation(t *testing.T) {
	rows, err := AdderAblation(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AdderRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Gates <= 0 || r.STAps <= 0 || r.MeanArr <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.MaxArr > r.STAps+1e-9 {
			t.Fatalf("%s: dynamic max %v exceeds STA bound %v", r.Name, r.MaxArr, r.STAps)
		}
	}
	// Architecture ordering: ripple has by far the longest static bound;
	// the prefix adder the shortest.
	if byName["ripple"].STAps <= byName["hybrid-16"].STAps {
		t.Fatal("ripple should be statically slowest")
	}
	if byName["kogge-stone"].STAps >= byName["hybrid-8"].STAps {
		t.Fatal("kogge-stone should be statically fastest")
	}
	// The static-dynamic gap is the discriminator: ripple's mean dynamic
	// arrival sits far below its own STA bound, while the prefix adder's
	// dynamic behaviour hugs its bound (high fail rate at 85%).
	rippleGap := byName["ripple"].MeanArr / byName["ripple"].STAps
	prefixGap := byName["kogge-stone"].MeanArr / byName["kogge-stone"].STAps
	if rippleGap >= prefixGap {
		t.Fatalf("ripple relative arrival %v should be below prefix %v", rippleGap, prefixGap)
	}
	if byName["kogge-stone"].FailAt85 <= byName["ripple"].FailAt85 {
		t.Fatal("prefix adder should miss a tightened deadline far more often than ripple")
	}
	var buf bytes.Buffer
	RenderAdders(&buf, rows)
	if !strings.Contains(buf.String(), "hybrid") {
		t.Fatal("render incomplete")
	}
}
