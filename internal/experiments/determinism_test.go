package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"teva/internal/campaign"
	"teva/internal/power"
)

// The CSV exporters iterate Go maps, whose range order is randomized per
// run. Every exporter must therefore sort keys before emission; this test
// renders the map-driven exports twice from the same in-memory results
// and requires byte-identical files. Enough keys are used that an
// accidental order collision is essentially impossible (12! orderings).

func deterministicFixtures() (*Fig4Result, *Fig6Result, *PowerResult, *CampaignSet) {
	f4 := &Fig4Result{CLK: 900, ByGroup: map[string]int{}, UnitWorst: map[string]float64{}}
	f6 := &Fig6Result{FullN: 2400, AE: map[int]float64{}, FullBER: []float64{0.25, 0, 0.125}}
	pw := &PowerResult{Profile: &power.Profile{IntOp: 11}, PerWorkload: map[string]power.Breakdown{}}
	for i := 0; i < 12; i++ {
		unit := fmt.Sprintf("unit-%02d", i)
		f4.ByGroup[unit] = i + 1
		f4.UnitWorst[unit] = 800 + float64(i)
		f6.AE[100*(i+1)] = 1 / float64(i+2)
		pw.PerWorkload[unit] = power.Breakdown{
			FPUEnergyFJ: float64(i), IntEnergyFJ: 2 * float64(i), FPUShare: 0.25,
		}
	}
	cs := &CampaignSet{Cells: map[string]*campaign.Result{}}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("bench-%d", i)
		cs.Order = append(cs.Order, name)
		for _, level := range []string{"VR15", "VR20"} {
			for _, kind := range ModelKinds() {
				r := &campaign.Result{
					Workload: name, Model: kind, Level: level,
					Runs: 24, CrashKinds: map[string]int{},
				}
				r.Outcomes[campaign.Masked] = 24
				for k := 0; k < 8; k++ {
					r.CrashKinds[fmt.Sprintf("kind-%d", k)] = k + 1
				}
				cs.Cells[cellKey(name, kind, level)] = r
			}
		}
	}
	return f4, f6, pw, cs
}

func renderAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	f4, f6, pw, cs := deterministicFixtures()
	if err := CSVFig4(dir, f4); err != nil {
		t.Fatal(err)
	}
	if err := CSVFig6(dir, f6); err != nil {
		t.Fatal(err)
	}
	if err := CSVPower(dir, pw); err != nil {
		t.Fatal(err)
	}
	if err := CSVFig9(dir, cs); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = data
	}
	return files
}

func TestCSVExportsAreByteDeterministic(t *testing.T) {
	a := renderAll(t, t.TempDir())
	b := renderAll(t, t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("render produced %d files, then %d", len(a), len(b))
	}
	if len(a) < 5 {
		t.Fatalf("expected at least 5 exported files, got %d", len(a))
	}
	for name, data := range a {
		other, ok := b[name]
		if !ok {
			t.Fatalf("%s missing from second render", name)
		}
		if string(data) != string(other) {
			t.Errorf("%s differs between two renders of the same results:\n--- first\n%s\n--- second\n%s",
				name, data, other)
		}
	}
}
