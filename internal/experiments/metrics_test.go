package experiments

import (
	"bytes"
	"testing"

	"teva/internal/core"
	"teva/internal/errmodel"
	"teva/internal/obs"
	"teva/internal/workloads"
)

// metricsEnv builds a fresh Env wired to its own nil-clock registry, so
// every phase duration is zero and the full snapshot — timers included —
// must be byte-identical across runs of the same work.
func metricsEnv(t *testing.T) (*Env, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	f, err := core.New(core.Config{
		Seed:             0xF00D,
		RandomOperands:   2000,
		WorkloadOperands: 1200,
		DASample:         100000,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(f, Options{Scale: workloads.Tiny, Runs: 12}), reg
}

func runOneCell(t *testing.T) obs.Snapshot {
	t.Helper()
	e, reg := metricsEnv(t)
	ws, err := e.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Cell(ws[0], errmodel.WA, e.Levels()[0]); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

// TestMetricsSnapshotIsByteDeterministic is the acceptance check for the
// obs wiring: the same workload cell, run twice from scratch, must yield
// byte-identical JSON snapshots (the nil clock removes the only
// nondeterministic field).
func TestMetricsSnapshotIsByteDeterministic(t *testing.T) {
	a := runOneCell(t).JSON()
	b := runOneCell(t).JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("metrics snapshots differ between identical runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestMetricsSnapshotCoversLayers checks that one cell's worth of work
// actually touches every instrumented layer: dta stream analysis,
// campaign fan-out, and the experiment memos.
func TestMetricsSnapshotCoversLayers(t *testing.T) {
	snap := runOneCell(t)
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"dta.stream_calls", "dta.pairs_analyzed", "dta.cycles_analyzed",
		"campaign.cells", "campaign.runs", "campaign.golden_runs",
		"experiments.memo_misses",
	} {
		if counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0 after a campaign cell", name, counters[name])
		}
	}
	phases := map[string]bool{}
	for _, p := range snap.Phases {
		phases[p.Path] = true
		if p.Nanos != 0 {
			t.Errorf("phase %s has nonzero nanos %d under a nil clock", p.Path, p.Nanos)
		}
	}
	for _, want := range []string{"dta", "campaign"} {
		if !phases[want] {
			t.Errorf("phase %q missing from snapshot (have %v)", want, snap.Phases)
		}
	}
	hists := 0
	for _, h := range snap.Histograms {
		if h.Name == "campaign.injections_per_run" && h.Total() > 0 {
			hists++
		}
	}
	if hists != 1 {
		t.Errorf("campaign.injections_per_run histogram missing or empty")
	}
}
