package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"teva/internal/artifact"
	"teva/internal/chaos"
	"teva/internal/core"
	"teva/internal/errmodel"
	"teva/internal/guard"
	"teva/internal/workloads"
)

func TestForEachLimitFailsFast(t *testing.T) {
	var executed atomic.Int64
	err := forEachLimit(context.Background(), nil, 4, 1000, func(ctx context.Context, i int) error {
		executed.Add(1)
		if i == 3 {
			return errors.New("hard failure in task 3")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("missing root cause: %v", err)
	}
	if n := executed.Load(); n >= 1000 || n > 100 {
		t.Fatalf("fail-fast still executed %d of 1000 tasks", n)
	}
}

func TestForEachLimitIsolatesPanicsAndJoinsAll(t *testing.T) {
	var executed atomic.Int64
	err := forEachLimit(context.Background(), nil, 4, 100, func(ctx context.Context, i int) error {
		executed.Add(1)
		if i == 3 || i == 60 {
			return guard.Recovered(fmt.Sprintf("task %d", i), func() error {
				panic("poisoned cell")
			})
		}
		return nil
	})
	if n := executed.Load(); n != 100 {
		t.Fatalf("panic must not stop the matrix: executed %d of 100", n)
	}
	if !guard.IsPanic(err) {
		t.Fatalf("panics lost in the join: %v", err)
	}
	for _, want := range []string{"task 3", "task 60", "poisoned cell"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

func TestForEachLimitDrainStopsDispatch(t *testing.T) {
	drain := make(chan struct{})
	var executed atomic.Int64
	err := forEachLimit(context.Background(), drain, 2, 1000, func(ctx context.Context, i int) error {
		if executed.Add(1) == 10 {
			close(drain)
		}
		return nil
	})
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if n := executed.Load(); n >= 1000 {
		t.Fatalf("drain did not stop dispatch: %d tasks ran", n)
	}
}

func TestForEachLimitCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	err := forEachLimit(ctx, nil, 4, 100, func(ctx context.Context, i int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if executed.Load() != 0 {
		t.Fatal("canceled run must not dispatch tasks")
	}
}

// chaosEnv builds a small, self-contained experiment environment whose
// artifact store sits on a (possibly fault-injecting) filesystem.
func chaosEnv(t *testing.T, opts chaos.Options) *Env {
	t.Helper()
	var store *artifact.Store
	var err error
	if opts == (chaos.Options{}) {
		store, err = artifact.Open(t.TempDir())
	} else {
		store, err = chaos.OpenStore(t.TempDir(), nil, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	store.SetSleep(func(time.Duration) {}) // no real backoff under test
	f, err := core.New(core.Config{
		Seed:             0xF00D,
		RandomOperands:   600,
		WorkloadOperands: 400,
		DASample:         50000,
		Artifacts:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewEnv(f, Options{Scale: workloads.Tiny, Runs: 8})
}

// TestChaosMatrixIsByteIdentical is the tentpole guarantee: with 10%
// write failures and 10% read faults of every flavor injected into the
// artifact store, the campaign matrix must render byte-for-byte the same
// report as a fault-free run — every fault degrades to a cache miss or a
// retried write, never a wrong result.
func TestChaosMatrixIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaign matrix builds")
	}
	render := func(e *Env) string {
		cs, err := RunCampaigns(e)
		if err != nil {
			t.Fatalf("matrix under chaos must still complete: %v", err)
		}
		if len(cs.Cells) != 7*2*3 {
			t.Fatalf("incomplete matrix: %d cells", len(cs.Cells))
		}
		var buf bytes.Buffer
		RenderFig9(&buf, cs)
		return buf.String()
	}
	clean := render(chaosEnv(t, chaos.Options{}))
	faulty := render(chaosEnv(t, chaos.Options{
		Seed:      0xBAD5EED,
		WriteFail: 0.1,
		ReadFail:  0.1,
		TornRead:  0.1,
		FlipRead:  0.1,
	}))
	if clean != faulty {
		t.Fatalf("chaos changed the results:\n--- clean ---\n%s\n--- faulty ---\n%s", clean, faulty)
	}
}

// TestChaosPanickingCellsAreIsolated injects panics on campaign-cell
// artifact I/O: each affected cell must surface as one named error in the
// join while the remaining cells complete normally.
func TestChaosPanickingCellsAreIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign matrix build")
	}
	e := chaosEnv(t, chaos.Options{Seed: 1, Panic: 0.05, PanicOn: "campaign-"})
	cs, err := RunCampaigns(e)
	if err == nil {
		t.Fatal("expected at least one injected panic at 5% over 42 cells")
	}
	if !guard.IsPanic(err) {
		t.Fatalf("injected panics must surface as PanicErrors: %v", err)
	}
	for _, want := range []string{chaos.PanicValue, "panic in "} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error lost the panic identity (%q): %v", want, err)
		}
	}
	if len(cs.Cells) == 0 || len(cs.Cells) >= 7*2*3 {
		t.Fatalf("want a partial matrix (some cells poisoned, the rest complete), got %d of 42", len(cs.Cells))
	}
	// The poisoned cells and the completed cells must partition the matrix:
	// every missing cell is named in the joined error by its memo key.
	named := 0
	for _, w := range mustNames(t, e) {
		for _, level := range e.Levels() {
			for _, kind := range ModelKinds() {
				key := cellKey(w, kind, level.Name)
				if cs.Cells[key] == nil && strings.Contains(err.Error(), "panic in "+key) {
					named++
				}
			}
		}
	}
	if named != 7*2*3-len(cs.Cells) {
		t.Fatalf("%d cells missing but %d named in the error:\n%v", 7*2*3-len(cs.Cells), named, err)
	}
}

func mustNames(t *testing.T, e *Env) []string {
	t.Helper()
	ws, err := e.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// TestDeadCacheIsNonFatal: a store whose every write fails (ENOSPC on all
// attempts) must not fail the experiment — results are computed, the
// failure is counted on artifact.write_errors, and the run goes on.
func TestDeadCacheIsNonFatal(t *testing.T) {
	e := chaosEnv(t, chaos.Options{Seed: 3, WriteFail: 1.0})
	ws, err := e.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Cell(ws[0], errmodel.WA, e.Levels()[0])
	if err != nil {
		t.Fatalf("dead cache must not fail the cell: %v", err)
	}
	if r == nil || r.Runs != e.Opts.Runs {
		t.Fatalf("degenerate result %+v", r)
	}
	if st := e.F.Cfg.Artifacts.Stats(); st.WriteErrors == 0 {
		t.Fatalf("write failures not counted: %+v", st)
	}
}

func TestRunCampaignsHonorsPreDrain(t *testing.T) {
	e := chaosEnv(t, chaos.Options{})
	e.Drain()
	if !e.Draining() {
		t.Fatal("Draining must report the drain request")
	}
	cs, err := RunCampaigns(e)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("want ErrDrained, got %v", err)
	}
	if len(cs.Cells) != 0 {
		t.Fatalf("pre-drained run dispatched %d cells", len(cs.Cells))
	}
}

func TestRunCampaignsHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f, err := core.New(core.Config{
		Seed:             0xF00D,
		RandomOperands:   600,
		WorkloadOperands: 400,
		DASample:         50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnvContext(ctx, f, Options{Scale: workloads.Tiny, Runs: 8})
	cs, err := RunCampaigns(e)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(cs.Cells) != 0 {
		t.Fatalf("canceled run produced %d cells", len(cs.Cells))
	}
}
