package experiments

import (
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"teva/internal/campaign"
	"teva/internal/errmodel"
)

// The determinism test only proves the exporters are stable run-to-run;
// these golden-file tests pin the actual content — column layout, number
// formatting, nil-cell skipping, the crash-kind join — against files
// under testdata/. Regenerate with: go test -run TestCSVGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the CSV golden files")

func table2Fixture() []Table2Row {
	return []Table2Row{
		{App: "cg", Input: "S", Instructions: 123456, FPShare: 0.25, Criteria: "fp-heavy"},
		{App: "sobel", Input: "lena", Instructions: 1000000, FPShare: 0.0625, Criteria: "mixed"},
	}
}

// fig9Fixture builds a sparse CampaignSet: only three of the twelve
// possible cells exist, so the exporter's nil-skip path is exercised,
// and one cell carries a crash taxonomy to pin the k=v;k=v join.
func fig9Fixture() *CampaignSet {
	cs := &CampaignSet{Cells: map[string]*campaign.Result{}, Order: []string{"cg", "sobel"}}

	a := &campaign.Result{
		Workload: "cg", Model: errmodel.DA, Level: "VR15",
		Runs: 8, RunsWithInjection: 8,
		CrashKinds: map[string]int{"fp exception": 2, "memory fault": 1},
	}
	a.Outcomes[campaign.Masked] = 4
	a.Outcomes[campaign.SDC] = 2
	a.Outcomes[campaign.Crash] = 1
	a.Outcomes[campaign.Timeout] = 1
	cs.Cells[cellKey("cg", errmodel.DA, "VR15")] = a

	b := &campaign.Result{
		Workload: "cg", Model: errmodel.WA, Level: "VR15",
		Runs: 4, CrashKinds: map[string]int{},
	}
	b.Outcomes[campaign.Masked] = 4
	cs.Cells[cellKey("cg", errmodel.WA, "VR15")] = b

	c := &campaign.Result{
		Workload: "sobel", Model: errmodel.IA, Level: "VR20",
		Runs: 10, RunsWithInjection: 5, CrashKinds: map[string]int{},
	}
	c.Outcomes[campaign.Masked] = 5
	c.Outcomes[campaign.SDC] = 5
	cs.Cells[cellKey("sobel", errmodel.IA, "VR20")] = c
	return cs
}

func avmFixture() (*CampaignSet, *AVMResult) {
	cs := &CampaignSet{Order: []string{"cg"}}
	r := &AVMResult{
		AVM: map[string]float64{
			cellKey("cg", errmodel.DA, "VR15"): 0.25,
			cellKey("cg", errmodel.IA, "VR15"): 0.5,
			cellKey("cg", errmodel.WA, "VR15"): 0,
			cellKey("cg", errmodel.DA, "VR20"): 1,
			cellKey("cg", errmodel.IA, "VR20"): 0.75,
			cellKey("cg", errmodel.WA, "VR20"): 0.125,
		},
		SafeLevel:    map[string]string{"cg": "VR15"},
		PowerSavings: map[string]float64{"cg": 0.1875},
	}
	return cs, r
}

func checkGolden(t *testing.T, dir, name string) {
	t.Helper()
	got, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("%s content drifted from golden:\n--- got\n%s\n--- want\n%s", name, got, want)
	}
}

func TestCSVGoldenTable2(t *testing.T) {
	dir := t.TempDir()
	if err := CSVTable2(dir, table2Fixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, dir, "table2.csv")
}

func TestCSVGoldenFig9(t *testing.T) {
	dir := t.TempDir()
	if err := CSVFig9(dir, fig9Fixture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, dir, "fig9.csv")
}

func TestCSVGoldenAVM(t *testing.T) {
	dir := t.TempDir()
	cs, r := avmFixture()
	if err := CSVAVM(dir, cs, r); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, dir, "avm.csv")
}

// TestCSVQuotesCommas pins the encoding/csv quoting contract the exports
// rely on: a workload name (or input) containing commas or quotes must
// round-trip through the file intact, not split into extra columns.
func TestCSVQuotesCommas(t *testing.T) {
	dir := t.TempDir()
	rows := []Table2Row{
		{App: "mat,mul", Input: `say "hi", twice`, Instructions: 7, FPShare: 0.5, Criteria: "comma,bench"},
	}
	if err := CSVTable2(dir, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"mat,mul"`) {
		t.Errorf("comma-bearing app name not quoted:\n%s", data)
	}
	recs, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not re-parse: %v", err)
	}
	want := [][]string{
		{"app", "input", "instructions", "fp_share", "criteria"},
		{"mat,mul", `say "hi", twice`, "7", "0.5", "comma,bench"},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("round-trip mismatch:\ngot  %q\nwant %q", recs, want)
	}
}
