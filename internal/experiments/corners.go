package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"teva/internal/artifact"
	"teva/internal/cell"
	"teva/internal/sta"
	"teva/internal/vscale"
)

// MetricCornerSTA counts actual multi-corner STA characterizations (one
// per corner computed, not reloaded). On a warm artifact cache a sweep
// leaves this counter untouched — the acceptance check for per-corner
// provenance keys.
const MetricCornerSTA = "experiments.corner_sta_runs"

// CornerRow is the characterization of the FPU at one operating corner.
type CornerRow struct {
	// Corner is the corner's label ("nominal", "VR15", ...).
	Corner string
	// Supply is the effective supply voltage in volts.
	Supply float64
	// Derate is the uniform delay inflation at the corner.
	Derate float64
	// ClockPeriod is the Eq. 1 zero-margin clock at the corner, ps: the
	// slowest pipeline stage's worst path delay after derating.
	ClockPeriod float64
	// WNS is the worst negative slack at the calibrated nominal clock, ps
	// (negative once the corner's critical path no longer fits the clock).
	WNS float64
	// FailingStages counts pipeline stages whose corner-derated worst
	// delay exceeds the nominal clock.
	FailingStages int
	// FailingEndpoints counts endpoints (across all stages) with negative
	// slack at the nominal clock.
	FailingEndpoints int

	// Cached reports whether the row was reloaded from the artifact store
	// instead of analyzed. Excluded from the stored payload (it describes
	// the run, not the corner) and never rendered, so output stays
	// cache-independent.
	Cached bool `json:"-"`
}

// DefaultCorners returns the standard sweep: the nominal corner plus the
// paper's two voltage-reduction bands.
func DefaultCorners() []cell.Corner {
	m := vscale.Default45nm()
	return []cell.Corner{
		cell.Nominal(),
		cell.AtReduction("VR15", m, 0.15),
		cell.AtReduction("VR20", m, 0.20),
	}
}

// ParseCorners parses a comma-separated corner spec: the named corners
// "nominal", "VR15" and "VR20", or a bare supply voltage in volts
// ("0.95"). An empty spec yields DefaultCorners.
func ParseCorners(spec string) ([]cell.Corner, error) {
	if strings.TrimSpace(spec) == "" {
		return DefaultCorners(), nil
	}
	m := vscale.Default45nm()
	var corners []cell.Corner
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch strings.ToLower(tok) {
		case "":
			continue
		case "nominal":
			corners = append(corners, cell.Nominal())
		case "vr15":
			corners = append(corners, cell.AtReduction("VR15", m, 0.15))
		case "vr20":
			corners = append(corners, cell.AtReduction("VR20", m, 0.20))
		default:
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: corner %q is neither a named corner (nominal, VR15, VR20) nor a supply voltage", tok)
			}
			if v <= m.Vth || v > 2*m.VddNominal {
				return nil, fmt.Errorf("experiments: corner supply %gV outside the model's operating range (Vth %gV, nominal %gV)", v, m.Vth, m.VddNominal)
			}
			corners = append(corners, cell.Corner{Name: tok + "V", Voltage: v})
		}
	}
	if len(corners) == 0 {
		return DefaultCorners(), nil
	}
	return corners, nil
}

// CornerSweep characterizes the FPU at every corner: one full STA pass
// (every stage of every pipeline) per corner, fanned out over the
// environment's worker pool. Each corner's row is keyed in the artifact
// store by its full provenance (design seed, supply, temperature, process,
// register parameters), so a warm-cache rerun reloads every row without a
// single analysis — MetricCornerSTA counts only the corners actually
// computed.
func CornerSweep(e *Env, corners []cell.Corner) ([]CornerRow, error) {
	f := e.F
	runs := f.Cfg.Metrics.Counter(MetricCornerSTA)
	rows := make([]CornerRow, len(corners))
	err := forEachLimit(e.ctx, e.drain, e.workers(), len(corners), func(ctx context.Context, i int) error {
		co := corners[i]
		store := f.Cfg.Artifacts
		ak := artifact.CornerKey("fpu", f.FPU.Seed, co.Label(),
			co.Voltage, co.TempC, co.Process, f.Lib.ClockToQ, f.Lib.Setup)
		if store.Load(ak, &rows[i]) {
			rows[i].Cached = true
			return nil
		}
		runs.Inc()
		reports := f.FPU.StageReportsCorner(co)
		clk := f.FPU.CLK
		row := CornerRow{
			Corner:      co.Label(),
			Supply:      co.Voltage,
			Derate:      co.Derate(),
			ClockPeriod: sta.ClockPeriod(reports, 1.0),
		}
		if row.Supply == 0 {
			row.Supply = vscale.Default45nm().VddNominal
		}
		row.WNS = clk - row.ClockPeriod
		for _, r := range reports {
			if r.WorstDelay > clk {
				row.FailingStages++
			}
			row.FailingEndpoints += r.FailingEndpoints(clk)
		}
		rows[i] = row
		e.noteSaveError(store.Save(ak, row))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderCorners prints the sweep as a table against the calibrated clock.
func RenderCorners(w io.Writer, e *Env, rows []CornerRow) {
	header(w, "Multi-corner STA characterization")
	fmt.Fprintf(w, "calibrated nominal clock: %.0f ps; %d corners\n\n", e.F.FPU.CLK, len(rows))
	fmt.Fprintf(w, "%-10s %8s %8s %12s %10s %8s %10s\n",
		"corner", "supply", "derate", "clk(corner)", "wns@CLK", "stages", "endpoints")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %7.3fV %8.4f %10.0fps %8.0fps %8d %10d\n",
			r.Corner, r.Supply, r.Derate, r.ClockPeriod, r.WNS,
			r.FailingStages, r.FailingEndpoints)
	}
}

// CSVCorners exports the sweep.
func CSVCorners(dir string, rows []CornerRow) error {
	out := [][]string{{"corner", "supply_v", "derate", "clock_period_ps", "wns_ps", "failing_stages", "failing_endpoints"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Corner, ftoa(r.Supply), ftoa(r.Derate), ftoa(r.ClockPeriod),
			ftoa(r.WNS), strconv.Itoa(r.FailingStages), strconv.Itoa(r.FailingEndpoints),
		})
	}
	return writeCSV(dir, "corners.csv", out)
}
