package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"teva/internal/core"
	"teva/internal/workloads"
)

func TestNamesKnownAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate experiment name %q", n)
		}
		seen[n] = true
		if !KnownExperiment(n) {
			t.Fatalf("Names entry %q not known", n)
		}
	}
	if !KnownExperiment("all") {
		t.Fatal("all must be selectable")
	}
	for _, bad := range []string{"fig77", "", "ALL", " fig7"} {
		if KnownExperiment(bad) {
			t.Fatalf("KnownExperiment(%q) = true", bad)
		}
	}
}

func TestApplyPresetQuickWinsOverFull(t *testing.T) {
	opts := DefaultOptions()
	var cfg core.Config
	ApplyPreset(true, true, &opts, &cfg)
	if opts.Scale != workloads.Tiny || opts.Runs != 24 {
		t.Fatalf("quick preset: scale=%v runs=%d", opts.Scale, opts.Runs)
	}
	if cfg.RandomOperands != 4000 || cfg.WorkloadOperands != 2000 {
		t.Fatalf("quick preset operands: %d/%d", cfg.RandomOperands, cfg.WorkloadOperands)
	}

	opts = DefaultOptions()
	cfg = core.Config{}
	ApplyPreset(false, true, &opts, &cfg)
	if cfg.RandomOperands != 100000 {
		t.Fatalf("full preset operands: %d", cfg.RandomOperands)
	}
}

func TestIsInterrupt(t *testing.T) {
	for _, err := range []error{
		ErrDrained,
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("fig9: %w", ErrDrained),
		fmt.Errorf("budget: %w", context.DeadlineExceeded),
	} {
		if !IsInterrupt(err) {
			t.Fatalf("IsInterrupt(%v) = false", err)
		}
	}
	for _, err := range []error{nil, errors.New("cell exploded")} {
		if IsInterrupt(err) {
			t.Fatalf("IsInterrupt(%v) = true", err)
		}
	}
}

func TestPrintBanner(t *testing.T) {
	var buf bytes.Buffer
	opts := DefaultOptions()
	opts.Scale = workloads.Tiny
	opts.Runs = 24
	PrintBanner(&buf, opts, 0xF00D)
	want := "teva-experiments: scale=tiny runs/cell=24 seed=0xf00d\n"
	if buf.String() != want {
		t.Fatalf("banner %q, want %q", buf.String(), want)
	}
}

// TestRunSuiteSelectionDeterministic runs a cheap selection twice and
// requires byte-identical reports — the property the serving layer's
// whole contract rests on.
func TestRunSuiteSelectionDeterministic(t *testing.T) {
	run := func() []byte {
		opts := DefaultOptions()
		var cfg core.Config
		ApplyPreset(true, false, &opts, &cfg)
		f, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		env := NewEnv(f, opts)
		var buf bytes.Buffer
		if err := RunSuite(env, SuiteConfig{Experiments: []string{"table1", "design"}}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("RunSuite not deterministic:\n--- a\n%s\n--- b\n%s", a, b)
	}
	if !bytes.HasPrefix(a, []byte("teva-experiments: ")) {
		t.Fatalf("report does not start with the banner:\n%s", a)
	}
}

// TestRunSuiteUnknownSelectionRunsNothing pins the contract that the
// suite driver trusts its caller's validation: selecting only unknown
// names runs zero experiments and reports success with a bare banner.
func TestRunSuiteUnknownSelectionRunsNothing(t *testing.T) {
	opts := DefaultOptions()
	var cfg core.Config
	ApplyPreset(true, false, &opts, &cfg)
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(f, opts)
	var buf bytes.Buffer
	if err := RunSuite(env, SuiteConfig{Experiments: []string{"fig77"}, OmitBanner: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unknown selection produced output:\n%s", buf.Bytes())
	}
}
