package netlist

import "fmt"

// Arithmetic structure generators. These are the datapath building blocks
// the FPU and ALU are generated from. Architectural choices (ripple vs
// carry-save, array vs tree reduction) are deliberate: they set the
// path-delay profile that dynamic timing analysis measures, mirroring how
// the synthesized marocchino datapath determines the paper's Figure 4.

// RippleAdder returns sum and carry-out of x + y + cin using a ripple
// carry chain. The carry chain's length is data dependent, which is the
// mechanism behind workload-dependent timing errors.
func (b *Builder) RippleAdder(x, y Bus, cin NetID) (Bus, NetID) {
	b.checkWidths("RippleAdder", x, y)
	sum := make(Bus, len(x))
	c := cin
	for i := range x {
		sum[i], c = b.FFullAdd(x[i], y[i], c)
	}
	return sum, c
}

// RippleSub returns x - y and a "no borrow" flag (1 when x >= y),
// implemented as x + ^y + 1.
func (b *Builder) RippleSub(x, y Bus) (Bus, NetID) {
	return b.RippleAdder(x, b.FNotBus(y), Const1)
}

// AddSub computes x + y when sub is low and x - y when sub is high. The
// second output is carry-out (add) / no-borrow (sub).
func (b *Builder) AddSub(x, y Bus, sub NetID) (Bus, NetID) {
	ymod := make(Bus, len(y))
	for i := range y {
		ymod[i] = b.FXor(y[i], sub)
	}
	return b.RippleAdder(x, ymod, sub)
}

// Increment returns x + cin using a half-adder chain.
func (b *Builder) Increment(x Bus, cin NetID) (Bus, NetID) {
	sum := make(Bus, len(x))
	c := cin
	for i := range x {
		sum[i], c = b.FHalfAdd(x[i], c)
	}
	return sum, c
}

// Negate returns the two's complement of x.
func (b *Builder) Negate(x Bus) Bus {
	return b.Sum(b.Increment(b.FNotBus(x), Const1))
}

// CSA compresses three addends into sum and carry vectors (3:2). The
// returned carry is already shifted left by one position (bit i of carry
// corresponds to weight i, with a constant-zero LSB).
func (b *Builder) CSA(x, y, z Bus) (sum, carry Bus) {
	b.checkWidths("CSA", x, y)
	b.checkWidths("CSA", x, z)
	w := len(x)
	sum = make(Bus, w)
	carry = make(Bus, w)
	carry[0] = Const0
	var lastCarry NetID
	for i := 0; i < w; i++ {
		sum[i], lastCarry = b.FFullAdd(x[i], y[i], z[i])
		if i+1 < w {
			carry[i+1] = lastCarry
		}
	}
	// The top carry falls off the compression width by construction.
	b.Discard(lastCarry)
	return sum, carry
}

// shiftLeftConst rewires x left by s bit positions into a width-w bus,
// filling with constant zero. No gates are created.
func (b *Builder) shiftLeftConst(x Bus, s, w int) Bus {
	out := make(Bus, w)
	for i := range out {
		src := i - s
		if src >= 0 && src < len(x) {
			out[i] = x[src]
		} else {
			out[i] = Const0
		}
	}
	return out
}

// PartialProducts returns the w addends of the unsigned product x*y, each
// 2w bits wide (AND-gated rows shifted into position).
func (b *Builder) PartialProducts(x, y Bus) []Bus {
	b.checkWidths("PartialProducts", x, y)
	w := len(x)
	pw := 2 * w
	addends := make([]Bus, 0, w)
	for i := 0; i < w; i++ {
		pp := b.FAndWith(x, y[i])
		addends = append(addends, b.shiftLeftConst(pp, i, pw))
	}
	return addends
}

// CompressAddends applies carry-save (3:2) levels until at most target
// addends remain (target >= 2). It allows the multiplier's reduction tree
// to be split across pipeline stages.
func (b *Builder) CompressAddends(addends []Bus, target int) []Bus {
	if target < 2 {
		panic("netlist: CompressAddends target must be >= 2")
	}
	for len(addends) > target {
		var next []Bus
		i := 0
		for ; i+2 < len(addends); i += 3 {
			s, c := b.CSA(addends[i], addends[i+1], addends[i+2])
			next = append(next, s, c)
		}
		next = append(next, addends[i:]...)
		if len(next) >= len(addends) {
			break // 2 addends: nothing left to compress
		}
		addends = next
	}
	return addends
}

// ArrayMultiplier returns the full 2w-bit product of two w-bit unsigned
// buses: partial products, a carry-save reduction tree, and a final ripple
// carry-propagate adder whose long data-dependent carry chains make it the
// natural critical path of a datapath — the paper's fp-mul critical stage.
func (b *Builder) ArrayMultiplier(x, y Bus) Bus {
	addends := b.CompressAddends(b.PartialProducts(x, y), 2)
	if len(addends) == 1 {
		return addends[0]
	}
	// The 2w-bit product cannot carry out of the final adder, so its
	// carry-out net is structurally dead.
	return b.Sum(b.RippleAdder(addends[0], addends[1], Const0))
}

// HybridAdder returns sum and carry-out of x + y + cin using ripple blocks
// of blockSize bits with a fast generate/propagate block-carry bypass
// chain — the structure of a synthesized carry-select/skip adder. Its
// static critical path is far shorter than a full ripple adder's while the
// dynamic arrival of each sum bit still depends on the actual in-block
// carry runs and on how far the block-carry chain re-evaluates, which is
// what gives the FPU its realistic data-dependent timing-slack profile.
func (b *Builder) HybridAdder(x, y Bus, cin NetID, blockSize int) (Bus, NetID) {
	b.checkWidths("HybridAdder", x, y)
	if blockSize <= 0 {
		panic("netlist: non-positive block size")
	}
	w := len(x)
	sum := make(Bus, w)
	blockCin := cin
	for lo := 0; lo < w; lo += blockSize {
		hi := lo + blockSize
		if hi > w {
			hi = w
		}
		// Fast block generate/propagate from bitwise g/p via a tree.
		type gp struct{ g, p NetID }
		level := make([]gp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			level = append(level, gp{g: b.FAnd(x[i], y[i]), p: b.FXor(x[i], y[i])})
		}
		for len(level) > 1 {
			var next []gp
			i := 0
			for ; i+1 < len(level); i += 2 {
				lo2, hi2 := level[i], level[i+1]
				next = append(next, gp{
					g: b.FOr(hi2.g, b.FAnd(hi2.p, lo2.g)),
					p: b.FAnd(hi2.p, lo2.p),
				})
			}
			if i < len(level) {
				next = append(next, level[i])
			}
			level = next
		}
		// In-block ripple seeded by the (fast) block carry-in.
		c := blockCin
		for i := lo; i < hi; i++ {
			sum[i], c = b.FFullAdd(x[i], y[i], c)
		}
		// Next block's carry-in comes from the bypass chain, not the
		// ripple, so the static path across blocks is two gates per block.
		// The block's ripple carry-out is an unused pin of the last FA.
		b.Discard(c)
		// When the block carry-in is a constant the propagate term folds
		// away, leaving the group-propagate root unconsumed.
		b.Discard(level[0].p)
		blockCin = b.FOr(level[0].g, b.FAnd(level[0].p, blockCin))
	}
	return sum, blockCin
}

// HybridAddSub computes x + y when sub is low and x - y when sub is high
// using HybridAdder; the second result is carry-out/no-borrow.
func (b *Builder) HybridAddSub(x, y Bus, sub NetID, blockSize int) (Bus, NetID) {
	ymod := make(Bus, len(y))
	for i := range y {
		ymod[i] = b.FXor(y[i], sub)
	}
	return b.HybridAdder(x, ymod, sub, blockSize)
}

// ShiftRight returns x >> amt (logical when fill is Const0, arithmetic when
// fill is the sign bit), as a logarithmic barrel shifter. amt is unsigned;
// shift counts >= len(x) produce all-fill.
func (b *Builder) ShiftRight(x Bus, amt Bus, fill NetID) Bus {
	cur := append(Bus(nil), x...)
	w := len(x)
	for k, sel := range amt {
		s := 1 << uint(k)
		if s >= w {
			// Any set bit at or above this weight flushes to fill.
			rest := b.ReduceOr(Bus(amt[k:]))
			flushed := make(Bus, w)
			for i := range flushed {
				flushed[i] = fill
			}
			cur = b.FMuxBus(rest, cur, flushed)
			break
		}
		shifted := make(Bus, w)
		for i := 0; i < w; i++ {
			if i+s < w {
				shifted[i] = cur[i+s]
			} else {
				shifted[i] = fill
			}
		}
		cur = b.FMuxBus(sel, cur, shifted)
	}
	return cur
}

// ShiftLeft returns x << amt as a logarithmic barrel shifter, zero-filling.
func (b *Builder) ShiftLeft(x Bus, amt Bus) Bus {
	cur := append(Bus(nil), x...)
	w := len(x)
	for k, sel := range amt {
		s := 1 << uint(k)
		if s >= w {
			rest := b.ReduceOr(Bus(amt[k:]))
			cur = b.FMuxBus(rest, cur, b.Zeros(w))
			break
		}
		shifted := b.shiftLeftConst(cur, s, w)
		cur = b.FMuxBus(sel, cur, shifted)
	}
	return cur
}

// StickyRight computes OR of the bits shifted out by x >> amt: the sticky
// bit of IEEE-754 alignment. It mirrors ShiftRight's structure, OR-ing the
// discarded bits at each level.
func (b *Builder) StickyRight(x Bus, amt Bus) NetID {
	cur := append(Bus(nil), x...)
	w := len(x)
	sticky := Const0
	for k, sel := range amt {
		s := 1 << uint(k)
		if s >= w {
			rest := b.ReduceOr(Bus(amt[k:]))
			all := b.ReduceOr(cur)
			sticky = b.FOr(sticky, b.FAnd(rest, all))
			break
		}
		dropped := b.ReduceOr(Bus(cur[:s]))
		sticky = b.FOr(sticky, b.FAnd(sel, dropped))
		if k+1 == len(amt) {
			break // no further level reads the shifted value
		}
		shifted := make(Bus, w)
		for i := 0; i < w; i++ {
			if i+s < w {
				shifted[i] = cur[i+s]
			} else {
				shifted[i] = Const0
			}
		}
		cur = b.FMuxBus(sel, cur, shifted)
	}
	return sticky
}

// NormalizeLeft shifts x left until its most significant bit is 1 and
// returns the shifted value plus the applied shift count (the leading-zero
// count). For an all-zero input the result is zero and the count saturates
// at the largest applied shift total. countWidth must satisfy
// 2^countWidth > len(x)-1.
func (b *Builder) NormalizeLeft(x Bus, countWidth int) (Bus, Bus) {
	w := len(x)
	if 1<<uint(countWidth) < w {
		panic(fmt.Sprintf("netlist: NormalizeLeft countWidth %d too small for width %d", countWidth, w))
	}
	cur := append(Bus(nil), x...)
	count := make(Bus, countWidth)
	for i := range count {
		count[i] = Const0
	}
	for k := countWidth - 1; k >= 0; k-- {
		s := 1 << uint(k)
		if s >= w {
			continue
		}
		// Top s bits all zero?
		top := Bus(cur[w-s:])
		topZero := b.FNot(b.ReduceOr(top))
		count[k] = topZero
		cur = b.FMuxBus(topZero, cur, b.shiftLeftConst(cur, s, w))
	}
	return cur, count
}

// Equal returns 1 when x == y.
func (b *Builder) Equal(x, y Bus) NetID {
	b.checkWidths("Equal", x, y)
	bits := make(Bus, len(x))
	for i := range x {
		bits[i] = b.FXnor(x[i], y[i])
	}
	return b.ReduceAnd(bits)
}

// IsZero returns 1 when every bit of x is 0.
func (b *Builder) IsZero(x Bus) NetID { return b.FNot(b.ReduceOr(x)) }

// IsOnes returns 1 when every bit of x is 1.
func (b *Builder) IsOnes(x Bus) NetID { return b.ReduceAnd(x) }

// LessUnsigned returns 1 when x < y (unsigned), via the borrow of x - y.
// Only the borrow is consumed; the difference bus is discarded.
func (b *Builder) LessUnsigned(x, y Bus) NetID {
	diff, noBorrow := b.RippleSub(x, y)
	b.DiscardBus(diff)
	return b.FNot(noBorrow)
}

// Decoder returns the one-hot decode of sel (width 2^len(sel)).
func (b *Builder) Decoder(sel Bus) Bus {
	out := Bus{Const1}
	for _, s := range sel {
		ns := b.FNot(s)
		next := make(Bus, 0, len(out)*2)
		low := make(Bus, len(out))
		high := make(Bus, len(out))
		for i, o := range out {
			low[i] = b.FAnd(o, ns)
			high[i] = b.FAnd(o, s)
		}
		next = append(next, low...)
		next = append(next, high...)
		out = next
	}
	return out
}

// PrefixAdder returns sum and carry-out of x + y + cin using a
// Kogge-Stone parallel-prefix carry network: logarithmic static depth
// with little data-dependent spread — the architectural opposite of
// RippleAdder, used by the adder-architecture ablation.
func (b *Builder) PrefixAdder(x, y Bus, cin NetID) (Bus, NetID) {
	b.checkWidths("PrefixAdder", x, y)
	w := len(x)
	g := make(Bus, w)
	p := make(Bus, w)
	for i := 0; i < w; i++ {
		g[i] = b.FAnd(x[i], y[i])
		p[i] = b.FXor(x[i], y[i])
	}
	// Fold the carry-in as generate at a virtual position -1 by updating
	// bit 0: g0' = g0 | p0&cin.
	carry0 := b.FAnd(p[0], cin)
	gk := append(Bus{}, g...)
	pk := append(Bus{}, p...)
	gk[0] = b.FOr(g[0], carry0)
	// Kogge-Stone prefix levels. Group-propagate nodes are computed
	// speculatively for every position; later levels consume only a
	// subset, so the remainder is declared dead up front (a synthesizer
	// would prune them — keeping them preserves the reference structure).
	for d := 1; d < w; d <<= 1 {
		ng := append(Bus{}, gk...)
		np := append(Bus{}, pk...)
		for i := d; i < w; i++ {
			ng[i] = b.FOr(gk[i], b.FAnd(pk[i], gk[i-d]))
			np[i] = b.FAnd(pk[i], pk[i-d])
		}
		b.DiscardBus(np[d:])
		gk, pk = ng, np
	}
	// carries[i] is the carry into bit i.
	sum := make(Bus, w)
	sum[0] = b.FXor(p[0], cin)
	for i := 1; i < w; i++ {
		sum[i] = b.FXor(p[i], gk[i-1])
	}
	return sum, gk[w-1]
}
