package netlist

// Constant folding for the builder primitives. Generator code describes
// arithmetic naively (e.g. partial products with constant-zero padding);
// folding prunes gates with constant inputs the way logic synthesis would,
// keeping generated netlists at realistic sizes. Folding happens inside
// the F* ("folded") primitives, which the arithmetic generators use; the
// plain primitives always instantiate a cell, which matters when a gate is
// placed purely for delay (buffers, margin tuning).

func isConst(a NetID) bool { return a == Const0 || a == Const1 }

// FNot is Not with constant folding.
func (b *Builder) FNot(a NetID) NetID {
	switch a {
	case Const0:
		return Const1
	case Const1:
		return Const0
	}
	return b.Not(a)
}

// FAnd is And with constant folding.
func (b *Builder) FAnd(x, y NetID) NetID {
	if x == Const0 || y == Const0 {
		return Const0
	}
	if x == Const1 {
		return y
	}
	if y == Const1 {
		return x
	}
	if x == y {
		return x
	}
	return b.And(x, y)
}

// FOr is Or with constant folding.
func (b *Builder) FOr(x, y NetID) NetID {
	if x == Const1 || y == Const1 {
		return Const1
	}
	if x == Const0 {
		return y
	}
	if y == Const0 {
		return x
	}
	if x == y {
		return x
	}
	return b.Or(x, y)
}

// FXor is Xor with constant folding.
func (b *Builder) FXor(x, y NetID) NetID {
	if x == Const0 {
		return y
	}
	if y == Const0 {
		return x
	}
	if x == Const1 {
		return b.FNot(y)
	}
	if y == Const1 {
		return b.FNot(x)
	}
	if x == y {
		return Const0
	}
	return b.Xor(x, y)
}

// FXnor is Xnor with constant folding.
func (b *Builder) FXnor(x, y NetID) NetID { return b.FNot2(b.FXor(x, y)) }

// FNot2 folds double inversion by peeking at the driver; it only folds
// constants (cheap and sufficient).
func (b *Builder) FNot2(a NetID) NetID { return b.FNot(a) }

// FMux is Mux with constant folding.
func (b *Builder) FMux(sel, d0, d1 NetID) NetID {
	switch sel {
	case Const0:
		return d0
	case Const1:
		return d1
	}
	if d0 == d1 {
		return d0
	}
	if d0 == Const0 && d1 == Const1 {
		return sel
	}
	if d0 == Const1 && d1 == Const0 {
		return b.Not(sel)
	}
	if d0 == Const0 {
		return b.FAnd(sel, d1)
	}
	if d1 == Const0 {
		return b.FAnd(b.FNot(sel), d0)
	}
	if d0 == Const1 {
		return b.FOr(b.FNot(sel), d1)
	}
	if d1 == Const1 {
		return b.FOr(sel, d0)
	}
	return b.Mux(sel, d0, d1)
}

// FHalfAdd is HalfAdd with constant folding.
func (b *Builder) FHalfAdd(x, y NetID) (sum, carry NetID) {
	if x == Const0 {
		return y, Const0
	}
	if y == Const0 {
		return x, Const0
	}
	if x == Const1 && y == Const1 {
		return Const0, Const1
	}
	if x == Const1 {
		return b.FNot(y), y
	}
	if y == Const1 {
		return b.FNot(x), x
	}
	return b.HalfAdd(x, y)
}

// FFullAdd is FullAdd with constant folding.
func (b *Builder) FFullAdd(x, y, cin NetID) (sum, carry NetID) {
	// Normalize constants towards cin, then x.
	if isConst(y) && !isConst(cin) {
		y, cin = cin, y
	}
	if isConst(x) && !isConst(y) {
		x, y = y, x
	}
	switch cin {
	case Const0:
		return b.FHalfAdd(x, y)
	case Const1:
		if x == Const1 && y == Const1 {
			return Const1, Const1
		}
		if y == Const1 {
			return x, Const1
		}
		if x == Const1 {
			return y, Const1
		}
		// x + y + 1: sum = XNOR, carry = OR.
		return b.FXnor(x, y), b.FOr(x, y)
	}
	return b.FullAdd(x, y, cin)
}

// FMuxBus applies FMux bitwise.
func (b *Builder) FMuxBus(sel NetID, d0, d1 Bus) Bus {
	b.checkWidths("FMuxBus", d0, d1)
	out := make(Bus, len(d0))
	for i := range d0 {
		out[i] = b.FMux(sel, d0[i], d1[i])
	}
	return out
}

// FAndWith masks every bit of x with m, folding constants.
func (b *Builder) FAndWith(x Bus, m NetID) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.FAnd(x[i], m)
	}
	return out
}

// FXorBus applies FXor bitwise.
func (b *Builder) FXorBus(x, y Bus) Bus {
	b.checkWidths("FXorBus", x, y)
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.FXor(x[i], y[i])
	}
	return out
}

// FNotBus complements every bit with folding.
func (b *Builder) FNotBus(x Bus) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.FNot(x[i])
	}
	return out
}
