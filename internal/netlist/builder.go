package netlist

import (
	"fmt"

	"teva/internal/cell"
	"teva/internal/prng"
)

// Bus is an ordered group of nets, least-significant bit first.
type Bus []NetID

// Width returns the number of bits in the bus.
func (b Bus) Width() int { return len(b) }

// Slice returns bits [lo, hi) of the bus.
func (b Bus) Slice(lo, hi int) Bus { return b[lo:hi] }

// Builder constructs a Netlist. Gate creation methods return the output
// net; bus helpers operate bitwise. The builder annotates every created
// gate with a deterministic interconnect delay derived from its seed,
// standing in for post-place-and-route wire parasitics (the SDF file of
// the paper's flow).
type Builder struct {
	n    *Netlist
	rng  *prng.Source
	unit string
	// wireMax is the largest interconnect delay added to any pin, ps.
	wireMax float64
}

// NewBuilder returns a builder for a netlist with the given name over the
// library. The seed determines the interconnect-delay annotation; the same
// seed reproduces the identical "placed" design.
func NewBuilder(name string, lib *cell.Library, seed uint64) *Builder {
	n := &Netlist{Name: name, Lib: lib, numNets: 2}
	return &Builder{n: n, rng: prng.New(seed), wireMax: 12}
}

// SetUnit sets the functional-unit tag applied to subsequently created
// gates (e.g. "stage2/align"). Used to group timing paths per unit.
func (b *Builder) SetUnit(unit string) { b.unit = unit }

// Unit returns the current functional-unit tag.
func (b *Builder) Unit() string { return b.unit }

// newNet allocates a fresh net.
func (b *Builder) newNet() NetID {
	id := NetID(b.n.numNets)
	b.n.numNets++
	return id
}

// Input declares a primary-input bus of the given width.
func (b *Builder) Input(width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = b.newNet()
		b.n.inputs = append(b.n.inputs, bus[i])
	}
	return bus
}

// InputNet declares a single primary-input net.
func (b *Builder) InputNet() NetID {
	id := b.newNet()
	b.n.inputs = append(b.n.inputs, id)
	return id
}

// Output marks the bus as primary outputs, in order.
func (b *Builder) Output(bus Bus) {
	b.n.outputs = append(b.n.outputs, bus...)
}

// Discard declares that the given nets are intentionally unconsumed (a
// carry-out absorbed by the result width, an ignored flag bit). Build
// rejects any undeclared floating input or zero-fanout gate output, so
// every dead end in a generator must be explicit.
func (b *Builder) Discard(nets ...NetID) {
	if b.n.discarded == nil {
		b.n.discarded = make(map[NetID]bool)
	}
	for _, id := range nets {
		b.n.discarded[id] = true
	}
}

// DiscardBus is Discard over every net of a bus.
func (b *Builder) DiscardBus(x Bus) { b.Discard(x...) }

// Sum discards the carry companion of an adder-style (sum, carry) result
// and returns the sum: the explicit replacement for `sum, _ := ...` now
// that Build rejects undeclared dead logic. Use as b.Sum(b.RippleAdder(x,
// y, cin)).
func (b *Builder) Sum(sum Bus, carry NetID) Bus {
	b.Discard(carry)
	return sum
}

// wire returns a random interconnect delay contribution for one pin.
func (b *Builder) wire() float64 { return b.rng.Float64() * b.wireMax }

// gate instantiates a cell with the default (sum) function.
func (b *Builder) gate(kind cell.Kind, inputs ...NetID) NetID {
	c := b.n.Lib.Cell(kind)
	if len(inputs) != c.Inputs {
		panic(fmt.Sprintf("netlist: %v expects %d inputs, got %d", kind, c.Inputs, len(inputs)))
	}
	return b.place(kind, c.Op, c.Delays, c.Energy, inputs)
}

// place creates the gate instance with annotated delays.
func (b *Builder) place(kind cell.Kind, op cell.OpCode, base []cell.PinDelay, energy float64, inputs []NetID) NetID {
	out := b.newNet()
	delays := make([]cell.PinDelay, len(base))
	w := b.wire()
	for i, d := range base {
		delays[i] = cell.PinDelay{Rise: d.Rise + w, Fall: d.Fall + w}
	}
	b.n.gates = append(b.n.gates, Gate{
		Kind:   kind,
		Inputs: append([]NetID(nil), inputs...),
		Output: out,
		Op:     op,
		Delays: delays,
		Energy: energy,
		Unit:   b.unit,
	})
	return out
}

// Single-net logic operators.

// Not returns the complement of a.
func (b *Builder) Not(a NetID) NetID { return b.gate(cell.Inv, a) }

// Buf returns a buffered copy of a (adds delay; used for margin tuning).
func (b *Builder) Buf(a NetID) NetID { return b.gate(cell.Buf, a) }

// And returns x AND y.
func (b *Builder) And(x, y NetID) NetID { return b.gate(cell.And2, x, y) }

// Or returns x OR y.
func (b *Builder) Or(x, y NetID) NetID { return b.gate(cell.Or2, x, y) }

// Nand returns NOT(x AND y).
func (b *Builder) Nand(x, y NetID) NetID { return b.gate(cell.Nand2, x, y) }

// Nor returns NOT(x OR y).
func (b *Builder) Nor(x, y NetID) NetID { return b.gate(cell.Nor2, x, y) }

// Xor returns x XOR y.
func (b *Builder) Xor(x, y NetID) NetID { return b.gate(cell.Xor2, x, y) }

// Xnor returns NOT(x XOR y).
func (b *Builder) Xnor(x, y NetID) NetID { return b.gate(cell.Xnor2, x, y) }

// And3 returns x AND y AND z.
func (b *Builder) And3(x, y, z NetID) NetID { return b.gate(cell.And3, x, y, z) }

// Or3 returns x OR y OR z.
func (b *Builder) Or3(x, y, z NetID) NetID { return b.gate(cell.Or3, x, y, z) }

// Mux returns sel ? d1 : d0.
func (b *Builder) Mux(sel, d0, d1 NetID) NetID { return b.gate(cell.Mux2, d0, d1, sel) }

// HalfAdd returns the sum and carry of x + y using HA cells.
func (b *Builder) HalfAdd(x, y NetID) (sum, carry NetID) {
	c := b.n.Lib.Cell(cell.HA)
	sum = b.place(cell.HA, c.Op, c.Delays, c.Energy, []NetID{x, y})
	carry = b.place(cell.HA, cell.CarryOp(cell.HA), cell.CarryDelays(cell.HA), c.Energy, []NetID{x, y})
	return sum, carry
}

// FullAdd returns the sum and carry of x + y + cin using FA cells.
func (b *Builder) FullAdd(x, y, cin NetID) (sum, carry NetID) {
	c := b.n.Lib.Cell(cell.FA)
	sum = b.place(cell.FA, c.Op, c.Delays, c.Energy, []NetID{x, y, cin})
	carry = b.place(cell.FA, cell.CarryOp(cell.FA), cell.CarryDelays(cell.FA), c.Energy, []NetID{x, y, cin})
	return sum, carry
}

// Bus-wide operators. Buses must have equal widths.

func (b *Builder) checkWidths(op string, x, y Bus) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("netlist: %s width mismatch %d vs %d", op, len(x), len(y)))
	}
}

// NotBus complements every bit.
func (b *Builder) NotBus(x Bus) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// AndBus is the bitwise AND of two buses.
func (b *Builder) AndBus(x, y Bus) Bus {
	b.checkWidths("AndBus", x, y)
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// OrBus is the bitwise OR of two buses.
func (b *Builder) OrBus(x, y Bus) Bus {
	b.checkWidths("OrBus", x, y)
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// XorBus is the bitwise XOR of two buses.
func (b *Builder) XorBus(x, y Bus) Bus {
	b.checkWidths("XorBus", x, y)
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// MuxBus selects d1 when sel is high, d0 otherwise, bitwise.
func (b *Builder) MuxBus(sel NetID, d0, d1 Bus) Bus {
	b.checkWidths("MuxBus", d0, d1)
	out := make(Bus, len(d0))
	for i := range d0 {
		out[i] = b.Mux(sel, d0[i], d1[i])
	}
	return out
}

// AndWith masks every bit of x with the single net m.
func (b *Builder) AndWith(x Bus, m NetID) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.And(x[i], m)
	}
	return out
}

// Constant returns a bus holding the given unsigned constant.
func (b *Builder) Constant(value uint64, width int) Bus {
	out := make(Bus, width)
	for i := 0; i < width; i++ {
		if value>>uint(i)&1 == 1 {
			out[i] = Const1
		} else {
			out[i] = Const0
		}
	}
	return out
}

// Zeros returns a width-bit bus of constant 0.
func (b *Builder) Zeros(width int) Bus { return b.Constant(0, width) }

// ReduceOr returns the OR of all bits (balanced tree).
func (b *Builder) ReduceOr(x Bus) NetID { return b.reduce(x, b.Or) }

// ReduceAnd returns the AND of all bits (balanced tree).
func (b *Builder) ReduceAnd(x Bus) NetID { return b.reduce(x, b.And) }

// ReduceXor returns the XOR of all bits (balanced tree).
func (b *Builder) ReduceXor(x Bus) NetID { return b.reduce(x, b.Xor) }

func (b *Builder) reduce(x Bus, op func(NetID, NetID) NetID) NetID {
	if len(x) == 0 {
		return Const0
	}
	work := append(Bus(nil), x...)
	for len(work) > 1 {
		var next Bus
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, op(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// Detour inserts a buffer whose input pin carries an extra interconnect
// delay of ps picoseconds, modelling a routing detour in the placed
// design. The FPU generator uses detours to reproduce the per-stage
// margins of the synthesized reference core (an SDF-annotation stand-in).
func (b *Builder) Detour(a NetID, ps float64) NetID {
	if ps < 0 {
		panic("netlist: negative detour")
	}
	c := b.n.Lib.Cell(cell.Buf)
	base := []cell.PinDelay{{Rise: c.Delays[0].Rise + ps, Fall: c.Delays[0].Fall + ps}}
	return b.place(cell.Buf, c.Op, base, c.Energy, []NetID{a})
}

// DetourBus applies Detour to every bit of a bus.
func (b *Builder) DetourBus(x Bus, ps float64) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.Detour(x[i], ps)
	}
	return out
}

// BufChain inserts n buffers in series, adding deterministic delay; the
// FPU generator uses it to tune stage margins (the paper tunes margins by
// synthesis constraints).
func (b *Builder) BufChain(a NetID, n int) NetID {
	for i := 0; i < n; i++ {
		a = b.Buf(a)
	}
	return a
}

// BufBus buffers every bit of a bus through n buffers.
func (b *Builder) BufBus(x Bus, n int) Bus {
	out := make(Bus, len(x))
	for i := range x {
		out[i] = b.BufChain(x[i], n)
	}
	return out
}

// Build validates and finalizes the netlist. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Netlist, error) {
	n := b.n
	b.n = nil
	if err := n.finalize(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustBuild is Build for generator code paths where a structural error is
// a programming bug.
func (b *Builder) MustBuild() *Netlist {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
