// Package netlist represents gate-level combinational circuits and provides
// a builder for generating them structurally. It substitutes for the
// synthesis + place-and-route products of the paper's ASIC flow (Section
// III-A): a Verilog gate-level netlist plus SDF delay annotation. Circuits
// are generated from RTL-equivalent Go constructors; each gate instance
// carries per-pin delays taken from the standard-cell library plus a
// deterministic per-net interconnect component standing in for extracted
// wire parasitics.
package netlist

import (
	"fmt"

	"teva/internal/cell"
)

// NetID identifies a net (wire) in a netlist. Nets 0 and 1 are the constant
// low/high nets of every netlist.
type NetID int32

// Constant nets present in every netlist.
const (
	Const0 NetID = 0
	Const1 NetID = 1
)

// GateID identifies a gate instance.
type GateID int32

// Gate is one placed cell instance.
type Gate struct {
	// Kind is the library cell.
	Kind cell.Kind
	// Inputs are the nets driving each input pin.
	Inputs []NetID
	// Output is the net driven by this gate.
	Output NetID
	// Op is the resolved logic function (sum vs carry variant for HA/FA).
	// Simulation engines dispatch on it via the compiled IR; see Compiled.
	Op cell.OpCode
	// Delays are the annotated per-pin delays: library cell delay plus the
	// interconnect component of the output net, in picoseconds at the
	// nominal corner.
	Delays []cell.PinDelay
	// Energy is the dynamic energy per output transition, fJ.
	Energy float64
	// Unit tags the functional unit / pipeline stage the gate belongs to
	// (used to group Figure 4's path distribution).
	Unit string
}

// Netlist is a combinational circuit: a DAG of gates between primary
// inputs (pipeline register outputs) and primary outputs (pipeline
// register inputs).
type Netlist struct {
	// Name labels the circuit ("fpu/dmul/stage3").
	Name string
	// Lib is the library the gates were drawn from.
	Lib *cell.Library

	gates   []Gate
	numNets int
	inputs  []NetID
	outputs []NetID

	// discarded marks nets whose lack of fanout is intentional (e.g. the
	// carry-out of an adder whose width absorbs the result). finalize
	// rejects any other floating input or dead gate output.
	discarded map[NetID]bool

	// derived structures, built by Finalize
	driver []GateID   // per net, -1 for inputs/constants
	fanout [][]GateID // per net
	topo   []GateID   // gates in topological order
	level  []int32    // per gate, longest input depth

	// cbox caches the compiled simulation IR (one per finalized netlist,
	// shared by every engine instance; see Compiled). It is a pointer so
	// Vary's shallow copy can swap in a fresh cache without copying a lock.
	cbox *compileBox
}

// NumNets returns the number of nets, including the two constants.
func (n *Netlist) NumNets() int { return n.numNets }

// NumGates returns the number of gate instances.
func (n *Netlist) NumGates() int { return len(n.gates) }

// Gates returns the gate slice in topological order (after Finalize the
// storage order is topological). Callers must not mutate it.
func (n *Netlist) Gates() []Gate { return n.gates }

// Gate returns the gate with the given id.
func (n *Netlist) Gate(id GateID) *Gate { return &n.gates[id] }

// Inputs returns the primary input nets.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// Driver returns the gate driving the net, or -1 for primary inputs and
// constants.
func (n *Netlist) Driver(id NetID) GateID { return n.driver[id] }

// Fanout returns the gates reading the net. Callers must not mutate it.
func (n *Netlist) Fanout(id NetID) []GateID { return n.fanout[id] }

// Level returns the logic depth of a gate (0 for gates fed only by inputs
// or constants).
func (n *Netlist) Level(id GateID) int { return int(n.level[id]) }

// Stats summarizes a netlist for reports.
type Stats struct {
	Gates    int
	Nets     int
	Inputs   int
	Outputs  int
	MaxDepth int
	ByKind   map[cell.Kind]int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Gates:   len(n.gates),
		Nets:    n.numNets,
		Inputs:  len(n.inputs),
		Outputs: len(n.outputs),
		ByKind:  make(map[cell.Kind]int),
	}
	for i := range n.gates {
		s.ByKind[n.gates[i].Kind]++
		if d := int(n.level[i]) + 1; d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%d gates, %d nets, %d in, %d out, depth %d",
		s.Gates, s.Nets, s.Inputs, s.Outputs, s.MaxDepth)
}

// finalize validates the structure, orders gates topologically and builds
// the derived driver/fanout/level tables. The builder calls it from Build.
func (n *Netlist) finalize() error {
	n.cbox = &compileBox{}
	maxFanIn := 1
	if n.Lib != nil {
		maxFanIn = n.Lib.MaxFanIn()
	}
	for gi := range n.gates {
		g := &n.gates[gi]
		if g.Op == cell.OpNone {
			return fmt.Errorf("netlist %s: gate %d (%v) has no opcode", n.Name, gi, g.Kind)
		}
		if got, want := len(g.Inputs), g.Op.Arity(); got != want {
			return fmt.Errorf("netlist %s: gate %d (%v/%v) has %d pins, opcode needs %d",
				n.Name, gi, g.Kind, g.Op, got, want)
		}
		if len(g.Inputs) > maxFanIn {
			return fmt.Errorf("netlist %s: gate %d (%v) fan-in %d exceeds library max %d",
				n.Name, gi, g.Kind, len(g.Inputs), maxFanIn)
		}
		if len(g.Delays) != len(g.Inputs) {
			return fmt.Errorf("netlist %s: gate %d (%v) has %d delays for %d pins",
				n.Name, gi, g.Kind, len(g.Delays), len(g.Inputs))
		}
	}
	n.driver = make([]GateID, n.numNets)
	for i := range n.driver {
		n.driver[i] = -1
	}
	for gi := range n.gates {
		out := n.gates[gi].Output
		if out == Const0 || out == Const1 {
			return fmt.Errorf("netlist %s: gate %d drives a constant net", n.Name, gi)
		}
		if n.driver[out] != -1 {
			return fmt.Errorf("netlist %s: net %d has multiple drivers", n.Name, out)
		}
		n.driver[out] = GateID(gi)
	}
	isInput := make([]bool, n.numNets)
	isInput[Const0], isInput[Const1] = true, true
	for _, in := range n.inputs {
		if n.driver[in] != -1 {
			return fmt.Errorf("netlist %s: primary input net %d is gate-driven", n.Name, in)
		}
		isInput[in] = true
	}
	n.fanout = make([][]GateID, n.numNets)
	for gi := range n.gates {
		for _, in := range n.gates[gi].Inputs {
			if n.driver[in] == -1 && !isInput[in] {
				return fmt.Errorf("netlist %s: gate %d reads undriven net %d", n.Name, gi, in)
			}
			n.fanout[in] = append(n.fanout[in], GateID(gi))
		}
	}
	for _, out := range n.outputs {
		if n.driver[out] == -1 && !isInput[out] {
			return fmt.Errorf("netlist %s: primary output net %d undriven", n.Name, out)
		}
	}

	// Structural lints: every net must go somewhere. A primary input nobody
	// reads or a gate computing a value nobody consumes is almost always a
	// generator bug (a mis-wired operand, a result bit that fell off);
	// intentional dead ends (discarded carry-outs, ignored flag bits) must
	// be declared with Builder.Discard so the intent is in the netlist.
	isOutput := make([]bool, n.numNets)
	for _, out := range n.outputs {
		isOutput[out] = true
	}
	for _, in := range n.inputs {
		if len(n.fanout[in]) == 0 && !isOutput[in] && !n.discarded[in] {
			return fmt.Errorf("netlist %s: primary input net %d is floating: no gate reads it and it is not a primary output; remove it or mark it with Discard",
				n.Name, in)
		}
	}
	for gi := range n.gates {
		g := &n.gates[gi]
		if len(n.fanout[g.Output]) == 0 && !isOutput[g.Output] && !n.discarded[g.Output] {
			return fmt.Errorf("netlist %s: gate %d (%v, unit %q) drives net %d which has zero fanout and is not a primary output; dead logic — remove the gate or mark its output with Discard",
				n.Name, gi, g.Kind, g.Unit, g.Output)
		}
	}

	// Kahn topological sort over gates.
	pending := make([]int32, len(n.gates))
	ready := make([]GateID, 0, len(n.gates))
	for gi := range n.gates {
		cnt := int32(0)
		for _, in := range n.gates[gi].Inputs {
			if n.driver[in] != -1 {
				cnt++
			}
		}
		pending[gi] = cnt
		if cnt == 0 {
			ready = append(ready, GateID(gi))
		}
	}
	n.topo = make([]GateID, 0, len(n.gates))
	n.level = make([]int32, len(n.gates))
	for len(ready) > 0 {
		g := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		n.topo = append(n.topo, g)
		for _, fo := range n.fanout[n.gates[g].Output] {
			if lvl := n.level[g] + 1; lvl > n.level[fo] {
				n.level[fo] = lvl
			}
			pending[fo]--
			if pending[fo] == 0 {
				ready = append(ready, fo)
			}
		}
	}
	if len(n.topo) != len(n.gates) {
		return fmt.Errorf("netlist %s: combinational cycle (%d of %d gates ordered)",
			n.Name, len(n.topo), len(n.gates))
	}
	n.reorderTopological()
	return nil
}

// reorderTopological permutes gate storage into topological order so
// simulators can iterate the slice directly. All GateID-bearing tables are
// remapped.
func (n *Netlist) reorderTopological() {
	perm := make([]GateID, len(n.gates)) // old id -> new id
	newGates := make([]Gate, len(n.gates))
	for newID, oldID := range n.topo {
		perm[oldID] = GateID(newID)
		newGates[newID] = n.gates[oldID]
	}
	newLevel := make([]int32, len(n.gates))
	for oldID, lvl := range n.level {
		newLevel[perm[oldID]] = lvl
	}
	n.gates = newGates
	n.level = newLevel
	for net, d := range n.driver {
		if d != -1 {
			n.driver[net] = perm[d]
		}
	}
	for net, fo := range n.fanout {
		for i, g := range fo {
			fo[i] = perm[g]
		}
		n.fanout[net] = fo
	}
	for i := range n.topo {
		n.topo[i] = GateID(i)
	}
}

// TotalEnergy sums the per-transition energies of all gates, a proxy for
// the circuit's switched capacitance used in power comparisons.
func (n *Netlist) TotalEnergy() float64 {
	var sum float64
	for i := range n.gates {
		sum += n.gates[i].Energy
	}
	return sum
}
