package netlist

import (
	"sync"

	"teva/internal/cell"
)

// Compiled is the flat structure-of-arrays simulation IR of a finalized
// netlist. It is produced once per netlist (cached, immutable, shared by
// every engine instance and worker) and is what the four simulation
// engines — logicsim (scalar and 64-wide), timingsim.FastSim,
// timingsim.ExactSim and sta — iterate instead of the []Gate slice: gates
// are opcode-dispatched array walks in topological storage order, with no
// closure or interface calls and no per-gate slice headers on the hot
// path.
//
// Input pins are stored stride-padded: gate gi's pins occupy
// In[gi*Stride : gi*Stride+NumIn[gi]], and unused slots hold Const0 (net
// 0, constant false), so engines may load Stride pins unconditionally —
// the opcode's function ignores lanes beyond its arity, and Const0 never
// changes, so activity scans over padded slots are also safe. Rise/Fall
// delays and the per-pin fanout tables use the same indexing conventions
// as the pre-compiled structures, preserving event order (and therefore
// bit-identical simulation results) with the original per-gate walk.
type Compiled struct {
	// Name labels the source circuit.
	Name string
	// NumNets counts nets including the two constants.
	NumNets int
	// NumGates counts gate instances.
	NumGates int
	// Inputs and Outputs are the primary nets, aliased from the netlist.
	Inputs, Outputs []NetID
	// MaxFanIn is the widest gate fan-in in this circuit.
	MaxFanIn int
	// Stride is the padded per-gate pin count (>= MaxFanIn, >= 3 so
	// three-input opcode kernels can always load their operands).
	Stride int

	// Per-gate arrays, topological storage order.
	Op     []cell.OpCode // logic function
	NumIn  []int8        // actual pin count
	In     []int32       // stride-padded input nets (padding = Const0)
	Rise   []float64     // stride-padded per-pin rise delay, ps
	Fall   []float64     // stride-padded per-pin fall delay, ps
	Out    []int32       // output net
	Energy []float64     // dynamic energy per output transition, fJ
	Unit   []string      // functional-unit tag

	// Per-net arrays.
	Driver []int32 // driving gate, -1 for inputs/constants

	// Fanout in compressed-sparse-row form: net v's readers are entries
	// FanOff[v]..FanOff[v+1]. One entry per reading pin occurrence, in
	// the same order the netlist's fanout lists hold them; FanPin is the
	// first pin of that gate connected to the net (the pin the original
	// event-driven engine selected for delay lookup).
	FanOff  []int32
	FanGate []int32
	FanPin  []int32

	// Level schedule in compressed-sparse-row form: the gates at
	// topological level L are Levels[LevelOff[L]:LevelOff[L+1]], in
	// ascending gate-id order. A gate's level is its longest input depth,
	// so every gate at level L reads only nets driven at levels < L (or
	// primary inputs/constants) — engines may process one level's gates
	// in any order, or in parallel, without races. NumLevels is the
	// schedule depth (0 for an empty circuit).
	NumLevels int
	LevelOff  []int32
	Levels    []int32
}

// compileBox caches a netlist's Compiled form. It lives behind a pointer
// on the Netlist so Vary's shallow copy can reset the cache without
// copying the sync.Once.
type compileBox struct {
	once sync.Once
	c    *Compiled
}

// Compiled returns the netlist's compiled simulation IR, building it on
// first use. The result is immutable and safe to share across
// goroutines; repeated calls return the same instance, so parallel
// analysis shards reuse one IR per stage instead of re-deriving per-gate
// state.
func (n *Netlist) Compiled() *Compiled {
	if n.cbox == nil {
		panic("netlist: Compiled on an unfinalized netlist")
	}
	n.cbox.once.Do(func() { n.cbox.c = n.compile() })
	return n.cbox.c
}

// compile lowers the finalized gate slice into the flat SoA form.
func (n *Netlist) compile() *Compiled {
	numGates := len(n.gates)
	maxFanIn := 1
	for gi := range n.gates {
		if ni := len(n.gates[gi].Inputs); ni > maxFanIn {
			maxFanIn = ni
		}
	}
	stride := maxFanIn
	if stride < 3 {
		stride = 3
	}
	c := &Compiled{
		Name:     n.Name,
		NumNets:  n.numNets,
		NumGates: numGates,
		Inputs:   n.inputs,
		Outputs:  n.outputs,
		MaxFanIn: maxFanIn,
		Stride:   stride,
		Op:       make([]cell.OpCode, numGates),
		NumIn:    make([]int8, numGates),
		In:       make([]int32, numGates*stride),
		Rise:     make([]float64, numGates*stride),
		Fall:     make([]float64, numGates*stride),
		Out:      make([]int32, numGates),
		Energy:   make([]float64, numGates),
		Unit:     make([]string, numGates),
		Driver:   make([]int32, n.numNets),
	}
	for gi := range n.gates {
		g := &n.gates[gi]
		base := gi * stride
		c.Op[gi] = g.Op
		c.NumIn[gi] = int8(len(g.Inputs))
		for pin, in := range g.Inputs {
			c.In[base+pin] = int32(in)
			c.Rise[base+pin] = g.Delays[pin].Rise
			c.Fall[base+pin] = g.Delays[pin].Fall
		}
		// Padded slots already read Const0 (zero value) with zero delay.
		c.Out[gi] = int32(g.Output)
		c.Energy[gi] = g.Energy
		c.Unit[gi] = g.Unit
	}
	for net, d := range n.driver {
		c.Driver[net] = int32(d)
	}
	// Fanout CSR, preserving the netlist's per-net entry order.
	c.FanOff = make([]int32, n.numNets+1)
	total := 0
	for net := range n.fanout {
		c.FanOff[net] = int32(total)
		total += len(n.fanout[net])
	}
	c.FanOff[n.numNets] = int32(total)
	c.FanGate = make([]int32, total)
	c.FanPin = make([]int32, total)
	idx := 0
	for net := range n.fanout {
		for _, gid := range n.fanout[net] {
			c.FanGate[idx] = int32(gid)
			pin := int32(0)
			for i, in := range n.gates[gid].Inputs {
				if in == NetID(net) {
					pin = int32(i)
					break
				}
			}
			c.FanPin[idx] = pin
			idx++
		}
	}
	// Level schedule: bucket gates by topological level (counting sort —
	// levels are dense small ints). Gate ids within a level come out
	// ascending because gates are visited in storage order, which keeps
	// the schedule deterministic for any consumer that walks it serially.
	numLevels := 0
	for gi := range n.gates {
		if l := int(n.level[gi]) + 1; l > numLevels {
			numLevels = l
		}
	}
	c.NumLevels = numLevels
	c.LevelOff = make([]int32, numLevels+1)
	for gi := range n.gates {
		c.LevelOff[n.level[gi]+1]++
	}
	for l := 0; l < numLevels; l++ {
		c.LevelOff[l+1] += c.LevelOff[l]
	}
	c.Levels = make([]int32, numGates)
	fill := make([]int32, numLevels)
	copy(fill, c.LevelOff[:numLevels])
	for gi := range n.gates {
		l := n.level[gi]
		c.Levels[fill[l]] = int32(gi)
		fill[l]++
	}
	return c
}

// Pins returns gate gi's actual input nets (a view into the padded
// array; callers must not mutate it).
func (c *Compiled) Pins(gi int32) []int32 {
	base := int(gi) * c.Stride
	return c.In[base : base+int(c.NumIn[gi])]
}
