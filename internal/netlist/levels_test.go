package netlist_test

import (
	"testing"

	"teva/internal/netlist"
)

// buildLevelCircuit returns a compiled multi-level circuit with a mix of
// depths: a ripple adder has one gate chain per bit position.
func buildLevelCircuit(t *testing.T) *netlist.Compiled {
	t.Helper()
	b := netlist.NewBuilder("levels", lib, 9)
	x := b.Input(16)
	y := b.Input(16)
	sum, cout := b.RippleAdder(x, y, b.InputNet())
	b.Output(append(append(netlist.Bus{}, sum...), cout))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n.Compiled()
}

func TestLevelScheduleCoversEveryGateOnce(t *testing.T) {
	c := buildLevelCircuit(t)
	if c.NumLevels <= 1 {
		t.Fatalf("adder should be multi-level, got %d levels", c.NumLevels)
	}
	if len(c.LevelOff) != c.NumLevels+1 {
		t.Fatalf("LevelOff length %d, want %d", len(c.LevelOff), c.NumLevels+1)
	}
	if c.LevelOff[0] != 0 || int(c.LevelOff[c.NumLevels]) != c.NumGates {
		t.Fatalf("LevelOff bounds [%d, %d], want [0, %d]",
			c.LevelOff[0], c.LevelOff[c.NumLevels], c.NumGates)
	}
	seen := make([]bool, c.NumGates)
	for l := 0; l < c.NumLevels; l++ {
		lo, hi := c.LevelOff[l], c.LevelOff[l+1]
		if lo > hi {
			t.Fatalf("level %d has negative extent [%d, %d)", l, lo, hi)
		}
		for i := lo; i < hi; i++ {
			gi := c.Levels[i]
			if seen[gi] {
				t.Fatalf("gate %d scheduled twice", gi)
			}
			seen[gi] = true
			if i > lo && c.Levels[i-1] >= gi {
				t.Fatalf("level %d not in ascending gate order at slot %d", l, i)
			}
		}
	}
	for gi, ok := range seen {
		if !ok {
			t.Fatalf("gate %d missing from the level schedule", gi)
		}
	}
}

// TestLevelScheduleRespectsDependencies checks the property engines rely
// on: every input of a gate at level L is a primary input, a constant, or
// driven by a gate at a strictly lower level.
func TestLevelScheduleRespectsDependencies(t *testing.T) {
	c := buildLevelCircuit(t)
	levelOf := make([]int, c.NumGates)
	for l := 0; l < c.NumLevels; l++ {
		for i := c.LevelOff[l]; i < c.LevelOff[l+1]; i++ {
			levelOf[c.Levels[i]] = l
		}
	}
	for gi := int32(0); gi < int32(c.NumGates); gi++ {
		for _, in := range c.Pins(gi) {
			d := c.Driver[in]
			if d < 0 {
				continue // primary input or constant
			}
			if levelOf[d] >= levelOf[gi] {
				t.Fatalf("gate %d (level %d) reads net driven at level %d",
					gi, levelOf[gi], levelOf[d])
			}
		}
	}
}

func TestLevelScheduleEmptyCircuit(t *testing.T) {
	b := netlist.NewBuilder("feedthrough", lib, 1)
	x := b.InputNet()
	b.Output(netlist.Bus{x})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := n.Compiled()
	if c.NumLevels != 0 || len(c.Levels) != 0 || len(c.LevelOff) != 1 {
		t.Fatalf("gate-free circuit schedule: NumLevels=%d Levels=%v LevelOff=%v",
			c.NumLevels, c.Levels, c.LevelOff)
	}
}
