package netlist

// Internal tests for finalize's structural validation and for the
// compiled IR's layout invariants (stride padding, CSR fanout).

import (
	"strings"
	"testing"

	"teva/internal/cell"
)

// rawNetlist hand-assembles a netlist bypassing the Builder, so invalid
// structures can be expressed.
func rawNetlist(gates []Gate, numNets int, inputs, outputs []NetID) *Netlist {
	return &Netlist{
		Name:    "raw",
		Lib:     cell.Default(),
		gates:   gates,
		numNets: numNets,
		inputs:  inputs,
		outputs: outputs,
	}
}

func delays(n int) []cell.PinDelay {
	d := make([]cell.PinDelay, n)
	for i := range d {
		d[i] = cell.PinDelay{Rise: 10, Fall: 10}
	}
	return d
}

func TestFinalizeRejectsInvalidGates(t *testing.T) {
	cases := []struct {
		name string
		n    *Netlist
		want string
	}{
		{
			"missing opcode",
			rawNetlist([]Gate{{Kind: cell.And2, Inputs: []NetID{2, 2}, Output: 3, Delays: delays(2)}},
				4, []NetID{2}, []NetID{3}),
			"has no opcode",
		},
		{
			"arity mismatch",
			rawNetlist([]Gate{{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2}, Output: 3, Delays: delays(1)}},
				4, []NetID{2}, []NetID{3}),
			"opcode needs",
		},
		{
			"delay count mismatch",
			rawNetlist([]Gate{{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2, 2}, Output: 3, Delays: delays(1)}},
				4, []NetID{2}, []NetID{3}),
			"delays for",
		},
		{
			"undriven input net",
			rawNetlist([]Gate{{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2, 3}, Output: 4, Delays: delays(2)}},
				5, []NetID{2}, []NetID{4}),
			"undriven",
		},
		{
			"floating primary input",
			rawNetlist([]Gate{{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2, 2}, Output: 4, Delays: delays(2)}},
				5, []NetID{2, 3}, []NetID{4}),
			"floating",
		},
		{
			"zero-fanout gate output",
			rawNetlist([]Gate{
				{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2, 2}, Output: 3, Delays: delays(2)},
				{Kind: cell.Inv, Op: cell.OpInv, Inputs: []NetID{2}, Output: 4, Delays: delays(1)},
			}, 5, []NetID{2}, []NetID{3}),
			"dead logic",
		},
	}
	for _, tc := range cases {
		err := tc.n.finalize()
		if err == nil {
			t.Fatalf("%s: finalize accepted an invalid netlist", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestFinalizeRejectsFanInAboveLibraryMax(t *testing.T) {
	// With no library the max fan-in floor is 1, so a well-formed 2-input
	// gate must be rejected on the fan-in bound specifically.
	n := rawNetlist([]Gate{{Kind: cell.And2, Op: cell.OpAnd2, Inputs: []NetID{2, 2}, Output: 3, Delays: delays(2)}},
		4, []NetID{2}, []NetID{3})
	n.Lib = nil
	err := n.finalize()
	if err == nil || !strings.Contains(err.Error(), "exceeds library max") {
		t.Fatalf("fan-in bound not enforced: %v", err)
	}
}

func TestDiscardLegitimizesDeadEnds(t *testing.T) {
	build := func(discard bool) error {
		b := NewBuilder("deadend", cell.Default(), 7)
		x := b.Input(4)
		y := b.Input(4)
		unread := b.InputNet()
		sum, cout := b.RippleAdder(x, y, Const0)
		b.Output(sum)
		if discard {
			b.Discard(cout, unread)
		}
		_, err := b.Build()
		return err
	}
	if err := build(false); err == nil {
		t.Fatal("Build accepted a dead carry-out and a floating input without Discard")
	}
	if err := build(true); err != nil {
		t.Fatalf("Build rejected Discard-marked dead ends: %v", err)
	}
}

func TestCompiledLayoutInvariants(t *testing.T) {
	b := NewBuilder("layout", cell.Default(), 5)
	x := b.Input(8)
	y := b.Input(8)
	sum, cout := b.RippleAdder(x, y, Const0)
	b.Output(append(append(Bus{}, sum...), cout))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := n.Compiled()
	if c != n.Compiled() {
		t.Fatal("Compiled must return the cached instance")
	}
	if c.Stride < 3 || c.Stride < c.MaxFanIn {
		t.Fatalf("stride %d too small for max fan-in %d", c.Stride, c.MaxFanIn)
	}
	if got, want := c.MaxFanIn, cell.Default().MaxFanIn(); got != want {
		t.Fatalf("MaxFanIn = %d, want library's %d", got, want)
	}
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * c.Stride
		ni := int(c.NumIn[gi])
		if got, want := ni, len(n.Gates()[gi].Inputs); got != want {
			t.Fatalf("gate %d: NumIn %d want %d", gi, got, want)
		}
		for p := ni; p < c.Stride; p++ {
			if c.In[base+p] != int32(Const0) {
				t.Fatalf("gate %d pad pin %d points at net %d, want Const0", gi, p, c.In[base+p])
			}
		}
	}
	// CSR fanout: one entry per reading pin occurrence, consistent with
	// the netlist's per-net fanout lists.
	for net := 0; net < c.NumNets; net++ {
		gates := n.Fanout(NetID(net))
		lo, hi := c.FanOff[net], c.FanOff[net+1]
		if int(hi-lo) != len(gates) {
			t.Fatalf("net %d: CSR fanout %d entries, netlist has %d", net, hi-lo, len(gates))
		}
		for j := lo; j < hi; j++ {
			gi := c.FanGate[j]
			if GateID(gi) != gates[j-lo] {
				t.Fatalf("net %d: fanout order diverges at entry %d", net, j-lo)
			}
			pin := c.FanPin[j]
			if c.In[int(gi)*c.Stride+int(pin)] != int32(net) {
				t.Fatalf("net %d: FanPin %d of gate %d does not read the net", net, pin, gi)
			}
		}
	}
}
