package netlist_test

import (
	"math/bits"
	"testing"
	"testing/quick"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/netlist"
	"teva/internal/prng"
)

var lib = cell.Default()

// harness bundles a built netlist with a zero-delay simulator for oracle
// comparisons against native integer arithmetic.
type harness struct {
	n   *netlist.Netlist
	sim *logicsim.Sim
	in  []bool
}

func newHarness(t *testing.T, b *netlist.Builder) *harness {
	t.Helper()
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &harness{n: n, sim: logicsim.New(n.Compiled()), in: make([]bool, len(n.Inputs()))}
}

func (h *harness) setBus(offset, width int, v uint64) {
	logicsim.PackInputs(h.in, offset, width, v)
}

func (h *harness) run() { h.sim.Run(h.in) }

func (h *harness) bus(b netlist.Bus) uint64 { return h.sim.ReadBus(b) }

func TestBuilderConstants(t *testing.T) {
	b := netlist.NewBuilder("const", lib, 1)
	c := b.Constant(0b1011, 6)
	b.Output(c)
	h := newHarness(t, b)
	h.run()
	if got := h.bus(c); got != 0b1011 {
		t.Fatalf("constant = %b", got)
	}
	if h.n.NumGates() != 0 {
		t.Fatal("constants must not create gates")
	}
}

func TestConstantFolding(t *testing.T) {
	b := netlist.NewBuilder("fold", lib, 1)
	x := b.InputNet()
	// All of these fold away.
	r1 := b.FAnd(x, netlist.Const0)
	r2 := b.FOr(x, netlist.Const0)
	r3 := b.FXor(x, netlist.Const0)
	r4 := b.FMux(netlist.Const1, netlist.Const0, x)
	if r1 != netlist.Const0 || r2 != x || r3 != x || r4 != x {
		t.Fatal("folding identities failed")
	}
	s, c := b.FHalfAdd(x, netlist.Const0)
	if s != x || c != netlist.Const0 {
		t.Fatal("FHalfAdd fold failed")
	}
	b.Output(netlist.Bus{x})
	h := newHarness(t, b)
	if h.n.NumGates() != 0 {
		t.Fatalf("folded circuit has %d gates", h.n.NumGates())
	}
}

func TestFoldedGatesMatchUnfolded(t *testing.T) {
	// For every primitive, folded and unfolded versions must agree on all
	// input combinations including constants.
	b := netlist.NewBuilder("foldcheck", lib, 3)
	x := b.InputNet()
	y := b.InputNet()
	z := b.InputNet()
	nets := []netlist.NetID{x, y, z, netlist.Const0, netlist.Const1}
	var outs netlist.Bus
	type pair struct{ folded, plain netlist.NetID }
	var pairs []pair
	add := func(f, p netlist.NetID) {
		pairs = append(pairs, pair{f, p})
		outs = append(outs, f, p)
	}
	for _, a := range nets {
		add(b.FNot(a), b.Not(a))
		for _, c := range nets {
			add(b.FAnd(a, c), b.And(a, c))
			add(b.FOr(a, c), b.Or(a, c))
			add(b.FXor(a, c), b.Xor(a, c))
			add(b.FXnor(a, c), b.Xnor(a, c))
			for _, d := range nets {
				add(b.FMux(a, c, d), b.Mux(a, c, d))
				fs, fc := b.FFullAdd(c, d, a)
				s, cr := b.FullAdd(c, d, a)
				add(fs, s)
				add(fc, cr)
			}
			fs, fc := b.FHalfAdd(a, c)
			s, cr := b.HalfAdd(a, c)
			add(fs, s)
			add(fc, cr)
		}
	}
	b.Output(outs)
	h := newHarness(t, b)
	for v := 0; v < 8; v++ {
		h.setBus(0, 3, uint64(v))
		h.run()
		for i, p := range pairs {
			if h.sim.Value(p.folded) != h.sim.Value(p.plain) {
				t.Fatalf("pair %d diverges for input %03b", i, v)
			}
		}
	}
}

func TestRippleAdder(t *testing.T) {
	const w = 16
	b := netlist.NewBuilder("add", lib, 2)
	x := b.Input(w)
	y := b.Input(w)
	cin := b.InputNet()
	sum, cout := b.RippleAdder(x, y, cin)
	b.Output(append(append(netlist.Bus{}, sum...), cout))
	h := newHarness(t, b)
	src := prng.New(99)
	for i := 0; i < 2000; i++ {
		a := src.Uint64() & (1<<w - 1)
		c := src.Uint64() & (1<<w - 1)
		ci := src.Uint64() & 1
		h.setBus(0, w, a)
		h.setBus(w, w, c)
		h.in[2*w] = ci == 1
		h.run()
		want := a + c + ci
		if got := h.bus(sum); got != want&(1<<w-1) {
			t.Fatalf("%d+%d+%d: sum %d want %d", a, c, ci, got, want&(1<<w-1))
		}
		if got := h.sim.Value(cout); got != (want>>w == 1) {
			t.Fatalf("%d+%d+%d: cout %v", a, c, ci, got)
		}
	}
}

func TestAddSub(t *testing.T) {
	const w = 12
	b := netlist.NewBuilder("addsub", lib, 3)
	x := b.Input(w)
	y := b.Input(w)
	sub := b.InputNet()
	res, flag := b.AddSub(x, y, sub)
	b.Output(append(append(netlist.Bus{}, res...), flag))
	h := newHarness(t, b)
	src := prng.New(5)
	mask := uint64(1<<w - 1)
	for i := 0; i < 2000; i++ {
		a := src.Uint64() & mask
		c := src.Uint64() & mask
		doSub := src.Bool()
		h.setBus(0, w, a)
		h.setBus(w, w, c)
		h.in[2*w] = doSub
		h.run()
		var want uint64
		if doSub {
			want = (a - c) & mask
			if noBorrow := a >= c; h.sim.Value(flag) != noBorrow {
				t.Fatalf("sub flag wrong for %d-%d", a, c)
			}
		} else {
			want = (a + c) & mask
			if carry := (a+c)>>w == 1; h.sim.Value(flag) != carry {
				t.Fatalf("add carry wrong for %d+%d", a, c)
			}
		}
		if got := h.bus(res); got != want {
			t.Fatalf("addsub(%d,%d,%v) = %d want %d", a, c, doSub, got, want)
		}
	}
}

func TestIncrementAndNegate(t *testing.T) {
	const w = 10
	b := netlist.NewBuilder("inc", lib, 4)
	x := b.Input(w)
	cin := b.InputNet()
	inc := b.Sum(b.Increment(x, cin))
	neg := b.Negate(x)
	b.Output(inc)
	b.Output(neg)
	h := newHarness(t, b)
	mask := uint64(1<<w - 1)
	for a := uint64(0); a <= mask; a++ {
		for _, ci := range []uint64{0, 1} {
			h.setBus(0, w, a)
			h.in[w] = ci == 1
			h.run()
			if got := h.bus(inc); got != (a+ci)&mask {
				t.Fatalf("inc(%d,%d) = %d", a, ci, got)
			}
			if got := h.bus(neg); got != (-a)&mask {
				t.Fatalf("neg(%d) = %d", a, got)
			}
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	for _, w := range []int{4, 8, 13} {
		b := netlist.NewBuilder("mul", lib, 6)
		x := b.Input(w)
		y := b.Input(w)
		p := b.ArrayMultiplier(x, y)
		if len(p) != 2*w {
			t.Fatalf("product width %d, want %d", len(p), 2*w)
		}
		b.Output(p)
		h := newHarness(t, b)
		src := prng.New(uint64(w))
		mask := uint64(1<<w - 1)
		for i := 0; i < 1500; i++ {
			a := src.Uint64() & mask
			c := src.Uint64() & mask
			h.setBus(0, w, a)
			h.setBus(w, w, c)
			h.run()
			if got := h.bus(p); got != a*c {
				t.Fatalf("w=%d: %d*%d = %d want %d", w, a, c, got, a*c)
			}
		}
	}
}

func TestShifters(t *testing.T) {
	const w = 16
	const aw = 5
	b := netlist.NewBuilder("shift", lib, 7)
	x := b.Input(w)
	amt := b.Input(aw)
	sr := b.ShiftRight(x, amt, netlist.Const0)
	sl := b.ShiftLeft(x, amt)
	sticky := b.StickyRight(x, amt)
	b.Output(sr)
	b.Output(sl)
	b.Output(netlist.Bus{sticky})
	h := newHarness(t, b)
	src := prng.New(8)
	mask := uint64(1<<w - 1)
	for i := 0; i < 3000; i++ {
		a := src.Uint64() & mask
		s := src.Uint64() & (1<<aw - 1)
		h.setBus(0, w, a)
		h.setBus(w, aw, s)
		h.run()
		wantSR := uint64(0)
		if s < 64 {
			wantSR = a >> s
		}
		if got := h.bus(sr); got != wantSR {
			t.Fatalf("%d>>%d = %d want %d", a, s, got, wantSR)
		}
		wantSL := uint64(0)
		if s < 64 {
			wantSL = a << s & mask
		}
		if got := h.bus(sl); got != wantSL {
			t.Fatalf("%d<<%d = %d want %d", a, s, got, wantSL)
		}
		var dropped uint64
		if s >= w {
			dropped = a
		} else {
			dropped = a & (1<<s - 1)
		}
		if got := h.sim.Value(sticky); got != (dropped != 0) {
			t.Fatalf("sticky(%d, %d) = %v", a, s, got)
		}
	}
}

func TestArithmeticShiftRight(t *testing.T) {
	const w = 8
	b := netlist.NewBuilder("sra", lib, 17)
	x := b.Input(w)
	amt := b.Input(3)
	sr := b.ShiftRight(x, amt, x[w-1])
	b.Output(sr)
	h := newHarness(t, b)
	for a := uint64(0); a < 256; a++ {
		for s := uint64(0); s < 8; s++ {
			h.setBus(0, w, a)
			h.setBus(w, 3, s)
			h.run()
			want := uint64(int8(a)>>s) & 0xff
			if got := h.bus(sr); got != want {
				t.Fatalf("sra(%d,%d) = %d want %d", a, s, got, want)
			}
		}
	}
}

func TestNormalizeLeft(t *testing.T) {
	const w = 24
	b := netlist.NewBuilder("norm", lib, 9)
	x := b.Input(w)
	shifted, count := b.NormalizeLeft(x, 5)
	b.Output(shifted)
	b.Output(count)
	h := newHarness(t, b)
	src := prng.New(10)
	mask := uint64(1<<w - 1)
	check := func(a uint64) {
		h.setBus(0, w, a)
		h.run()
		if a == 0 {
			return // all-zero input: count saturates, value stays zero
		}
		lz := bits.LeadingZeros64(a) - (64 - w)
		if got := h.bus(count); got != uint64(lz) {
			t.Fatalf("lzc(%b) = %d want %d", a, got, lz)
		}
		if got := h.bus(shifted); got != a<<uint(lz)&mask {
			t.Fatalf("normalize(%b) = %b", a, got)
		}
	}
	for i := 0; i < 2000; i++ {
		// Bias towards small values so high leading-zero counts occur.
		shift := src.Intn(w)
		check(src.Uint64() & mask >> uint(shift))
	}
	for i := 0; i < w; i++ {
		check(1 << uint(i))
	}
}

func TestComparators(t *testing.T) {
	const w = 9
	b := netlist.NewBuilder("cmp", lib, 11)
	x := b.Input(w)
	y := b.Input(w)
	eq := b.Equal(x, y)
	lt := b.LessUnsigned(x, y)
	zero := b.IsZero(x)
	ones := b.IsOnes(x)
	b.Output(netlist.Bus{eq, lt, zero, ones})
	h := newHarness(t, b)
	src := prng.New(12)
	mask := uint64(1<<w - 1)
	for i := 0; i < 3000; i++ {
		a := src.Uint64() & mask
		c := src.Uint64() & mask
		if i%5 == 0 {
			c = a // exercise equality often
		}
		h.setBus(0, w, a)
		h.setBus(w, w, c)
		h.run()
		if h.sim.Value(eq) != (a == c) {
			t.Fatalf("eq(%d,%d)", a, c)
		}
		if h.sim.Value(lt) != (a < c) {
			t.Fatalf("lt(%d,%d)", a, c)
		}
		if h.sim.Value(zero) != (a == 0) {
			t.Fatalf("zero(%d)", a)
		}
		if h.sim.Value(ones) != (a == mask) {
			t.Fatalf("ones(%d)", a)
		}
	}
}

func TestDecoder(t *testing.T) {
	b := netlist.NewBuilder("dec", lib, 13)
	sel := b.Input(3)
	out := b.Decoder(sel)
	if len(out) != 8 {
		t.Fatalf("decoder width %d", len(out))
	}
	b.Output(out)
	h := newHarness(t, b)
	for v := uint64(0); v < 8; v++ {
		h.setBus(0, 3, v)
		h.run()
		if got := h.bus(out); got != 1<<v {
			t.Fatalf("decode(%d) = %b", v, got)
		}
	}
}

func TestReduceOps(t *testing.T) {
	const w = 7
	b := netlist.NewBuilder("reduce", lib, 14)
	x := b.Input(w)
	or := b.ReduceOr(x)
	and := b.ReduceAnd(x)
	xor := b.ReduceXor(x)
	b.Output(netlist.Bus{or, and, xor})
	h := newHarness(t, b)
	for v := uint64(0); v < 1<<w; v++ {
		h.setBus(0, w, v)
		h.run()
		if h.sim.Value(or) != (v != 0) {
			t.Fatalf("reduceOr(%b)", v)
		}
		if h.sim.Value(and) != (v == 1<<w-1) {
			t.Fatalf("reduceAnd(%b)", v)
		}
		if h.sim.Value(xor) != (bits.OnesCount64(v)%2 == 1) {
			t.Fatalf("reduceXor(%b)", v)
		}
	}
}

func TestTopologicalOrder(t *testing.T) {
	b := netlist.NewBuilder("topo", lib, 15)
	x := b.Input(8)
	y := b.Input(8)
	p := b.ArrayMultiplier(x, y)
	b.Output(p)
	h := newHarness(t, b)
	n := h.n
	seen := make([]bool, n.NumNets())
	seen[netlist.Const0], seen[netlist.Const1] = true, true
	for _, in := range n.Inputs() {
		seen[in] = true
	}
	for _, g := range n.Gates() {
		for _, in := range g.Inputs {
			if !seen[in] {
				t.Fatal("gate reads a net not yet produced: storage not topological")
			}
		}
		seen[g.Output] = true
	}
}

func TestStatsAndUnits(t *testing.T) {
	b := netlist.NewBuilder("stats", lib, 16)
	b.SetUnit("alpha")
	x := b.Input(4)
	y := b.Input(4)
	s1 := b.Sum(b.RippleAdder(x, y, netlist.Const0))
	b.SetUnit("beta")
	s2 := b.XorBus(s1, x)
	b.Output(s2)
	h := newHarness(t, b)
	st := h.n.Stats()
	if st.Gates == 0 || st.MaxDepth == 0 || st.Inputs != 8 || st.Outputs != 4 {
		t.Fatalf("stats %+v", st)
	}
	var alpha, beta int
	for _, g := range h.n.Gates() {
		switch g.Unit {
		case "alpha":
			alpha++
		case "beta":
			beta++
		default:
			t.Fatalf("gate with unexpected unit %q", g.Unit)
		}
	}
	if alpha == 0 || beta == 0 {
		t.Fatal("unit tags not applied")
	}
	if h.n.TotalEnergy() <= 0 {
		t.Fatal("TotalEnergy must be positive")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := netlist.NewBuilder("panic", lib, 17)
	x := b.Input(4)
	y := b.Input(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	b.AndBus(x, y)
}

func TestInterconnectDeterminism(t *testing.T) {
	build := func() *netlist.Netlist {
		b := netlist.NewBuilder("det", lib, 31)
		x := b.Input(8)
		y := b.Input(8)
		s := b.Sum(b.RippleAdder(x, y, netlist.Const0))
		b.Output(s)
		return b.MustBuild()
	}
	n1, n2 := build(), build()
	g1, g2 := n1.Gates(), n2.Gates()
	if len(g1) != len(g2) {
		t.Fatal("gate counts differ")
	}
	for i := range g1 {
		for pin := range g1[i].Delays {
			if g1[i].Delays[pin] != g2[i].Delays[pin] {
				t.Fatal("same seed produced different interconnect delays")
			}
		}
	}
	// A different seed must change the placement noise.
	b := netlist.NewBuilder("det", lib, 32)
	x := b.Input(8)
	y := b.Input(8)
	s := b.Sum(b.RippleAdder(x, y, netlist.Const0))
	b.Output(s)
	n3 := b.MustBuild()
	diff := false
	for i, g := range n3.Gates() {
		for pin := range g.Delays {
			if g.Delays[pin] != g1[i].Delays[pin] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical interconnect delays")
	}
}

func TestHybridAdder(t *testing.T) {
	for _, tc := range []struct{ w, block int }{{16, 4}, {24, 8}, {13, 5}, {8, 16}} {
		b := netlist.NewBuilder("hybrid", lib, 21)
		x := b.Input(tc.w)
		y := b.Input(tc.w)
		cin := b.InputNet()
		sum, cout := b.HybridAdder(x, y, cin, tc.block)
		b.Output(append(append(netlist.Bus{}, sum...), cout))
		h := newHarness(t, b)
		src := prng.New(uint64(tc.w * tc.block))
		mask := uint64(1<<tc.w - 1)
		for i := 0; i < 2000; i++ {
			a := src.Uint64() & mask
			c := src.Uint64() & mask
			ci := src.Uint64() & 1
			h.setBus(0, tc.w, a)
			h.setBus(tc.w, tc.w, c)
			h.in[2*tc.w] = ci == 1
			h.run()
			want := a + c + ci
			if got := h.bus(sum); got != want&mask {
				t.Fatalf("w=%d b=%d: %d+%d+%d = %d want %d", tc.w, tc.block, a, c, ci, got, want&mask)
			}
			if got := h.sim.Value(cout); got != (want>>tc.w == 1) {
				t.Fatalf("w=%d b=%d: cout wrong for %d+%d+%d", tc.w, tc.block, a, c, ci)
			}
		}
	}
}

func TestHybridAddSub(t *testing.T) {
	const w = 14
	b := netlist.NewBuilder("haddsub", lib, 22)
	x := b.Input(w)
	y := b.Input(w)
	sub := b.InputNet()
	res, flag := b.HybridAddSub(x, y, sub, 4)
	b.Output(append(append(netlist.Bus{}, res...), flag))
	h := newHarness(t, b)
	src := prng.New(23)
	mask := uint64(1<<w - 1)
	for i := 0; i < 2000; i++ {
		a := src.Uint64() & mask
		c := src.Uint64() & mask
		doSub := src.Bool()
		h.setBus(0, w, a)
		h.setBus(w, w, c)
		h.in[2*w] = doSub
		h.run()
		want := (a + c) & mask
		if doSub {
			want = (a - c) & mask
		}
		if got := h.bus(res); got != want {
			t.Fatalf("hybrid addsub(%d,%d,%v) = %d want %d", a, c, doSub, got, want)
		}
	}
}

func TestHybridAdderShorterCriticalPath(t *testing.T) {
	// The bypass chain must beat the pure ripple adder's critical path by
	// a wide margin; this is the property the FPU calibration relies on.
	build := func(hybrid bool) *netlist.Netlist {
		b := netlist.NewBuilder("cmp", lib, 24)
		x := b.Input(64)
		y := b.Input(64)
		var sum netlist.Bus
		if hybrid {
			sum = b.Sum(b.HybridAdder(x, y, netlist.Const0, 8))
		} else {
			sum = b.Sum(b.RippleAdder(x, y, netlist.Const0))
		}
		b.Output(sum)
		return b.MustBuild()
	}
	depth := func(n *netlist.Netlist) int { return n.Stats().MaxDepth }
	if dh, dr := depth(build(true)), depth(build(false)); dh*2 > dr {
		t.Fatalf("hybrid depth %d not much shorter than ripple depth %d", dh, dr)
	}
}

func TestCompressAddends(t *testing.T) {
	const w = 16
	b := netlist.NewBuilder("csa", lib, 25)
	addends := make([]netlist.Bus, 5)
	for i := range addends {
		addends[i] = b.Input(w)
	}
	two := b.CompressAddends(addends, 2)
	if len(two) != 2 {
		t.Fatalf("compressed to %d addends", len(two))
	}
	sum := b.Sum(b.RippleAdder(two[0], two[1], netlist.Const0))
	b.Output(sum)
	h := newHarness(t, b)
	src := prng.New(29)
	mask := uint64(1<<w - 1)
	for i := 0; i < 2000; i++ {
		var want uint64
		for j := range addends {
			v := src.Uint64() & mask
			h.setBus(j*w, w, v)
			want += v
		}
		h.run()
		if got := h.bus(sum); got != want&mask {
			t.Fatalf("compressed sum %d want %d", got, want&mask)
		}
	}
}

func TestDetourAddsDelay(t *testing.T) {
	b := netlist.NewBuilder("detour", lib, 26)
	x := b.InputNet()
	out := b.Detour(x, 500)
	b.Output(netlist.Bus{out})
	h := newHarness(t, b)
	g := h.n.Gates()[0]
	if g.Delays[0].Rise < 500 || g.Delays[0].Fall < 500 {
		t.Fatalf("detour delay not applied: %+v", g.Delays[0])
	}
	h.in[0] = true
	h.run()
	if !h.sim.Value(out) {
		t.Fatal("detour must be logically transparent")
	}
}

func TestQuickHybridAdderMatchesNative(t *testing.T) {
	const w = 32
	b := netlist.NewBuilder("qh", lib, 33)
	x := b.Input(w)
	y := b.Input(w)
	sum, cout := b.HybridAdder(x, y, netlist.Const0, 16)
	b.Output(append(append(netlist.Bus{}, sum...), cout))
	h := newHarness(t, b)
	if err := quick.Check(func(a, c uint32) bool {
		h.setBus(0, w, uint64(a))
		h.setBus(w, w, uint64(c))
		h.run()
		want := uint64(a) + uint64(c)
		return h.bus(sum) == want&(1<<w-1) && h.sim.Value(cout) == (want>>w == 1)
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMultiplierMatchesNative(t *testing.T) {
	const w = 12
	b := netlist.NewBuilder("qm", lib, 34)
	x := b.Input(w)
	y := b.Input(w)
	p := b.ArrayMultiplier(x, y)
	b.Output(p)
	h := newHarness(t, b)
	if err := quick.Check(func(a, c uint16) bool {
		av, cv := uint64(a&(1<<w-1)), uint64(c&(1<<w-1))
		h.setBus(0, w, av)
		h.setBus(w, w, cv)
		h.run()
		return h.bus(p) == av*cv
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestDetourRejectsNegative(t *testing.T) {
	b := netlist.NewBuilder("neg", lib, 35)
	x := b.InputNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative detour")
		}
	}()
	b.Detour(x, -1)
}

func TestCompressAddendsRejectsBadTarget(t *testing.T) {
	b := netlist.NewBuilder("bad", lib, 36)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for target < 2")
		}
	}()
	b.CompressAddends([]netlist.Bus{b.Input(4)}, 1)
}

func TestNormalizeLeftRejectsNarrowCount(t *testing.T) {
	b := netlist.NewBuilder("narrow", lib, 37)
	x := b.Input(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for insufficient count width")
		}
	}()
	b.NormalizeLeft(x, 3)
}

func TestVaryPreservesFunctionChangesDelays(t *testing.T) {
	b := netlist.NewBuilder("vary", lib, 38)
	x := b.Input(12)
	y := b.Input(12)
	sum := b.Sum(b.RippleAdder(x, y, netlist.Const0))
	b.Output(sum)
	base := b.MustBuild()
	die1 := base.Vary(0.05, 1)
	die2 := base.Vary(0.05, 2)
	die1b := base.Vary(0.05, 1)

	// Function identical across dies.
	s0 := logicsim.New(base.Compiled())
	s1 := logicsim.New(die1.Compiled())
	src := prng.New(99)
	in := make([]bool, 24)
	for trial := 0; trial < 500; trial++ {
		for i := range in {
			in[i] = src.Bool()
		}
		s0.Run(in)
		s1.Run(in)
		for _, out := range base.Outputs() {
			if s0.Value(out) != s1.Value(out) {
				t.Fatal("variation changed logic function")
			}
		}
	}
	// Delays changed, deterministically per seed, differently per die.
	var changed, differs bool
	for gi := range base.Gates() {
		d0 := base.Gates()[gi].Delays[0]
		d1 := die1.Gates()[gi].Delays[0]
		d2 := die2.Gates()[gi].Delays[0]
		d1b := die1b.Gates()[gi].Delays[0]
		if d1 != d1b {
			t.Fatal("same seed must reproduce the same die")
		}
		if d1 != d0 {
			changed = true
		}
		if d1 != d2 {
			differs = true
		}
		if base.Gates()[gi].Delays[0] != d0 {
			t.Fatal("original netlist mutated")
		}
	}
	if !changed || !differs {
		t.Fatal("variation had no effect")
	}
}

func TestVaryRejectsNegativeSigma(t *testing.T) {
	b := netlist.NewBuilder("vneg", lib, 39)
	x := b.InputNet()
	b.Output(netlist.Bus{b.Not(x)})
	n := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Vary(-0.1, 1)
}

func TestPrefixAdder(t *testing.T) {
	for _, w := range []int{8, 16, 24} {
		b := netlist.NewBuilder("prefix", lib, uint64(40+w))
		x := b.Input(w)
		y := b.Input(w)
		cin := b.InputNet()
		sum, cout := b.PrefixAdder(x, y, cin)
		b.Output(append(append(netlist.Bus{}, sum...), cout))
		h := newHarness(t, b)
		src := prng.New(uint64(w))
		mask := uint64(1<<w - 1)
		for i := 0; i < 3000; i++ {
			a := src.Uint64() & mask
			c := src.Uint64() & mask
			ci := src.Uint64() & 1
			h.setBus(0, w, a)
			h.setBus(w, w, c)
			h.in[2*w] = ci == 1
			h.run()
			want := a + c + ci
			if got := h.bus(sum); got != want&mask {
				t.Fatalf("w=%d: %d+%d+%d = %d want %d", w, a, c, ci, got, want&mask)
			}
			if got := h.sim.Value(cout); got != (want>>w == 1) {
				t.Fatalf("w=%d: cout wrong", w)
			}
		}
	}
}

func TestPrefixAdderLogDepth(t *testing.T) {
	build := func(prefix bool) int {
		b := netlist.NewBuilder("depth", lib, 41)
		x := b.Input(64)
		y := b.Input(64)
		var sum netlist.Bus
		if prefix {
			sum = b.Sum(b.PrefixAdder(x, y, netlist.Const0))
		} else {
			sum = b.Sum(b.RippleAdder(x, y, netlist.Const0))
		}
		b.Output(sum)
		return b.MustBuild().Stats().MaxDepth
	}
	dp, dr := build(true), build(false)
	if dp*4 > dr {
		t.Fatalf("prefix depth %d not much shallower than ripple %d", dp, dr)
	}
}
