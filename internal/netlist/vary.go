package netlist

import (
	"math"

	"teva/internal/cell"
	"teva/internal/prng"
)

// Vary returns a copy of the netlist whose every gate carries a
// per-instance random delay multiplier — intra-die process variation,
// the fourth delay-increase source of the paper's Section VI. Factors are
// lognormal with the given sigma (e.g. 0.03 for a 3% spread) so they are
// positive and mildly right-skewed like measured per-transistor
// variation. The same (sigma, seed) reproduces the same die; different
// seeds are different dies of the same design.
//
// Logic function, structure and derived tables are shared with the
// original (they are immutable); only the per-gate delay annotation is
// cloned.
func (n *Netlist) Vary(sigma float64, seed uint64) *Netlist {
	if sigma < 0 {
		panic("netlist: negative variation sigma")
	}
	src := prng.New(seed)
	out := *n // shallow copy shares driver/fanout/topo/level
	// The varied die has different delays, so it must compile separately.
	out.cbox = &compileBox{}
	out.gates = make([]Gate, len(n.gates))
	copy(out.gates, n.gates)
	for gi := range out.gates {
		factor := math.Exp(src.NormFloat64() * sigma)
		delays := make([]cell.PinDelay, len(out.gates[gi].Delays))
		for pin, d := range out.gates[gi].Delays {
			delays[pin] = cell.PinDelay{Rise: d.Rise * factor, Fall: d.Fall * factor}
		}
		out.gates[gi].Delays = delays
	}
	return &out
}
