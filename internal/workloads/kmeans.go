package workloads

import "fmt"

// kmeansParams returns (points, clusters, dims, maxIters) per scale.
func kmeansParams(scale Scale) (n, k, d, iters int) {
	switch scale {
	case Tiny:
		return 128, 4, 4, 4
	case Full:
		return 4096, 16, 4, 20
	default:
		return 512, 8, 4, 10
	}
}

const kmeansSeed = 0x0C0FFEE5

// buildKMeans emits the k-means clustering benchmark: pseudo-random
// D-dimensional points, Lloyd iterations (assignment by squared Euclidean
// distance, centroid recomputation) until assignments stabilize or the
// iteration cap is hit. The output region holds the final assignment
// vector followed by the centroids ("Clustering" in Table II).
func buildKMeans(scale Scale) (*Workload, error) {
	n, k, d, iters := kmeansParams(scale)
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d      # assignments (n bytes, n is 8-aligned)
centroids:  .space %[2]d      # k*d doubles
outbuf_end: .word 0
.align 3
points:     .space %[3]d      # n*d doubles
sums:       .space %[2]d
counts:     .space %[4]d      # k words
.align 3
c_scale:    .double 9.5367431640625e-06   # 10 * 2^-20
.text
main:
    # Generate points in [0, 10).
    la   s0, points
    li   s1, %[5]d            # n*d values
    li   s2, %[6]d            # seed
    la   t2, c_scale
    fld  ft0, 0(t2)
genp:%[7]s
    li   t1, 0xfffff
    and  t1, s2, t1
    fcvt.d.w fa0, t1
    fmul.d   fa0, fa0, ft0
    fsd  fa0, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, genp

    # Initial centroids: the first k points.
    la   s0, points
    la   s1, centroids
    li   s2, %[8]d            # k*d values
initc:
    fld  fa0, 0(s0)
    fsd  fa0, 0(s1)
    addi s0, s0, 8
    addi s1, s1, 8
    subi s2, s2, 1
    bnez s2, initc

    # Initialize assignments to 255 so the first pass marks changes.
    la   s0, outbuf
    li   s1, %[9]d
    li   t0, 255
inita:
    sb   t0, 0(s0)
    addi s0, s0, 1
    subi s1, s1, 1
    bnez s1, inita

    li   s11, 0               # iteration counter
lloyd:
    # Clear sums and counts.
    la   s0, sums
    li   s1, %[8]d
    fcvt.d.w ft1, zero        # 0.0
clrs:
    fsd  ft1, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, clrs
    la   s0, counts
    li   s1, %[10]d
clrc:
    sw   zero, 0(s0)
    addi s0, s0, 4
    subi s1, s1, 1
    bnez s1, clrc

    li   s10, 0               # changed flag
    li   s5, 0                # i
assign_loop:
    # point base: points + i*d*8
    li   t0, %[11]d
    mul  t1, s5, t0
    la   s6, points
    add  s6, s6, t1           # &p[i][0]

    li   s7, 0                # k index
    li   s3, 0                # best
    # bestd initialized on first cluster below
cluster_loop:
    li   t0, %[11]d
    mul  t1, s7, t0
    la   s8, centroids
    add  s8, s8, t1           # &c[k][0]
    fcvt.d.w fa1, zero        # dist = 0
    li   s9, 0                # j
dim_loop:
    slli t2, s9, 3
    add  t3, s6, t2
    fld  fa2, 0(t3)
    add  t3, s8, t2
    fld  fa3, 0(t3)
    fsub.d fa4, fa2, fa3
    fmul.d fa4, fa4, fa4
    fadd.d fa1, fa1, fa4
    addi s9, s9, 1
    li   t2, %[12]d
    blt  s9, t2, dim_loop

    beqz s7, take             # first cluster: always take
    flt.d t2, fa1, fs0
    beqz t2, skip
take:
    fmv.d fs0, fa1
    mv   s3, s7
skip:
    addi s7, s7, 1
    li   t2, %[13]d
    blt  s7, t2, cluster_loop

    # Record assignment; note changes.
    la   t2, outbuf
    add  t2, t2, s5
    lbu  t3, 0(t2)
    beq  t3, s3, same
    li   s10, 1
    sb   s3, 0(t2)
same:
    # counts[best]++ and sums[best][:] += p[i][:]
    la   t2, counts
    slli t3, s3, 2
    add  t2, t2, t3
    lw   t4, 0(t2)
    addi t4, t4, 1
    sw   t4, 0(t2)
    li   t0, %[11]d
    mul  t1, s3, t0
    la   t2, sums
    add  t2, t2, t1
    li   s9, 0
acc_loop:
    slli t3, s9, 3
    add  t4, s6, t3
    fld  fa2, 0(t4)
    add  t4, t2, t3
    fld  fa3, 0(t4)
    fadd.d fa3, fa3, fa2
    fsd  fa3, 0(t4)
    addi s9, s9, 1
    li   t3, %[12]d
    blt  s9, t3, acc_loop

    addi s5, s5, 1
    li   t0, %[9]d
    blt  s5, t0, assign_loop

    # Update centroids: c[k][j] = sums[k][j] / counts[k] (counts > 0).
    li   s7, 0
upd_k:
    la   t2, counts
    slli t3, s7, 2
    add  t2, t2, t3
    lw   t4, 0(t2)
    beqz t4, upd_next
    fcvt.d.w fa5, t4
    li   t0, %[11]d
    mul  t1, s7, t0
    la   t2, sums
    add  t2, t2, t1
    la   t3, centroids
    add  t3, t3, t1
    li   s9, 0
upd_j:
    slli t5, s9, 3
    add  t6, t2, t5
    fld  fa2, 0(t6)
    fdiv.d fa2, fa2, fa5
    add  t6, t3, t5
    fsd  fa2, 0(t6)
    addi s9, s9, 1
    li   t5, %[12]d
    blt  s9, t5, upd_j
upd_next:
    addi s7, s7, 1
    li   t5, %[13]d
    blt  s7, t5, upd_k

    addi s11, s11, 1
    li   t5, %[14]d
    bge  s11, t5, kdone
    bnez s10, lloyd
kdone:
`+exitSeq,
		n, k*d*8, n*d*8, k*4,
		n*d, kmeansSeed, xorshiftGen("s2", "t0"),
		k*d, n, k, d*8, d, k, iters)
	return finish("k-means",
		fmt.Sprintf("%d_%d%df", n, k, d),
		"Clustering", src)
}

// kmeansReference mirrors the MRV program exactly: same generator, same
// iteration structure, same arithmetic order. It returns the assignment
// vector and centroids.
func kmeansReference(scale Scale) ([]byte, []float64) {
	n, k, d, iters := kmeansParams(scale)
	const scaleC = 9.5367431640625e-06
	seed := uint32(kmeansSeed)
	points := make([]float64, n*d)
	for i := range points {
		seed = xorshift32(seed)
		points[i] = float64(int32(seed&0xfffff)) * scaleC
	}
	centroids := make([]float64, k*d)
	copy(centroids, points[:k*d])
	assign := make([]byte, n)
	for i := range assign {
		assign[i] = 255
	}
	sums := make([]float64, k*d)
	counts := make([]int32, k)
	for it := 0; it < iters; it++ {
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		changed := false
		for i := 0; i < n; i++ {
			best := 0
			var bestd float64
			for c := 0; c < k; c++ {
				dist := 0.0
				for j := 0; j < d; j++ {
					diff := points[i*d+j] - centroids[c*d+j]
					dist += diff * diff
				}
				if c == 0 || dist < bestd {
					bestd = dist
					best = c
				}
			}
			if assign[i] != byte(best) {
				changed = true
				assign[i] = byte(best)
			}
			counts[best]++
			for j := 0; j < d; j++ {
				sums[best*d+j] += points[i*d+j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				centroids[c*d+j] = sums[c*d+j] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return assign, centroids
}
