package workloads

import (
	"bytes"
	"math"
	"testing"

	"teva/internal/cpu"
)

// runWorkload executes a workload to completion with no injection.
func runWorkload(t *testing.T, w *Workload) (*cpu.CPU, cpu.Result) {
	t.Helper()
	c := cpu.New(w.Program, cpu.Config{TrapFPInvalid: true})
	res := c.Run(500_000_000)
	if res.Status != cpu.Halted {
		t.Fatalf("%s: %v (%s) after %d instrs", w.Name, res.Status, res.Reason, res.Instret)
	}
	return c, res
}

func outRegion(c *cpu.CPU, w *Workload) []byte {
	return c.Mem()[w.OutStart : w.OutStart+w.OutLen]
}

func TestSobelMatchesReference(t *testing.T) {
	w, err := ByName("sobel", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	want := sobelReference(Tiny)
	got := outRegion(c, w)
	if !bytes.Equal(got, want) {
		diff := 0
		for i := range want {
			if got[i] != want[i] {
				diff++
			}
		}
		t.Fatalf("sobel output differs from reference in %d/%d bytes", diff, len(want))
	}
	if res.FPOps[2] == 0 || res.FPOps[3] == 0 { // DMul, DDiv
		t.Fatalf("sobel should exercise fp mul and div: %v", res.FPOps)
	}
}

func TestHotspotMatchesReference(t *testing.T) {
	w, err := ByName("hotspot", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	want := hotspotReference(Tiny)
	got := outRegion(c, w)
	for i, wf := range want {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != mathFloat64bits(wf) {
			t.Fatalf("hotspot cell %d: %#x want %#x", i, v, mathFloat64bits(wf))
		}
	}
	if res.FPOps[0] == 0 || res.FPOps[2] == 0 {
		t.Fatalf("hotspot should exercise fadd/fmul: %v", res.FPOps)
	}
}

func mathFloat64bits(f float64) uint64 { return math.Float64bits(f) }

func TestKMeansMatchesReference(t *testing.T) {
	w, err := ByName("k-means", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	wantAssign, wantCentroids := kmeansReference(Tiny)
	got := outRegion(c, w)
	for i, a := range wantAssign {
		if got[i] != a {
			t.Fatalf("k-means assignment %d: %d want %d", i, got[i], a)
		}
	}
	base := len(wantAssign)
	for i, cf := range wantCentroids {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[base+i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(cf) {
			t.Fatalf("k-means centroid %d: %#x want %#x", i, v, math.Float64bits(cf))
		}
	}
	if res.FPOps[3] == 0 { // DDiv used in centroid update
		t.Fatalf("k-means should exercise fdiv: %v", res.FPOps)
	}
}

func TestCGMatchesReference(t *testing.T) {
	w, err := ByName("cg", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runWorkload(t, w)
	wantX, wantPass := cgReference(Tiny)
	if !wantPass {
		t.Fatal("reference CG must converge")
	}
	if got := string(c.Output()); got != "VERIFICATION SUCCESSFUL\n" {
		t.Fatalf("cg console %q", got)
	}
	got := outRegion(c, w)
	for i, xf := range wantX {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(xf) {
			t.Fatalf("cg x[%d] = %#x want %#x", i, v, math.Float64bits(xf))
		}
	}
}

func TestISMatchesReference(t *testing.T) {
	w, err := ByName("is", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	if got := string(c.Output()); got != "VERIFICATION SUCCESSFUL\n" {
		t.Fatalf("is console %q", got)
	}
	sorted, _ := isReference(Tiny)
	got := outRegion(c, w)
	for i, k := range sorted {
		v := int32(uint32(got[i*4]) | uint32(got[i*4+1])<<8 |
			uint32(got[i*4+2])<<16 | uint32(got[i*4+3])<<24)
		if v != k {
			t.Fatalf("is sorted[%d] = %d want %d", i, v, k)
		}
	}
	if res.FPOps[2] < int64(len(sorted)*8) { // DMul-heavy generator
		t.Fatalf("is should be fp-mul heavy: %v", res.FPOps)
	}
}

func TestRandlcMatchesNPBBehaviour(t *testing.T) {
	// The generator must produce values in [0,1) and a long period
	// without repetition in a short window.
	x := isSeedX
	seen := map[float64]bool{}
	for i := 0; i < 10000; i++ {
		r := randlc46(&x)
		if r < 0 || r >= 1 {
			t.Fatalf("randlc out of range: %v", r)
		}
		if seen[r] {
			t.Fatalf("randlc repeated after %d draws", i)
		}
		seen[r] = true
	}
}

func TestSRADMatchesReference(t *testing.T) {
	w, err := ByName("srad_v1", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	want := sradReference(Tiny)
	got := outRegion(c, w)
	for i, wf := range want {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(wf) {
			t.Fatalf("srad cell %d: %#x want %#x (%v vs %v)", i, v, math.Float64bits(wf),
				math.Float64frombits(v), wf)
		}
	}
	if res.FPOps[3] == 0 {
		t.Fatalf("srad should be fdiv heavy: %v", res.FPOps)
	}
}

func TestMGMatchesReference(t *testing.T) {
	w, err := ByName("mg", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runWorkload(t, w)
	if got := string(c.Output()); got != "VERIFICATION SUCCESSFUL\n" {
		t.Fatalf("mg console %q", got)
	}
	want, _ := mgReference(Tiny)
	got := outRegion(c, w)
	for i, wf := range want {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(wf) {
			t.Fatalf("mg cell %d: %v want %v", i, math.Float64frombits(v), wf)
		}
	}
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	ws, err := All(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("expected 7 benchmarks, got %d", len(ws))
	}
	for _, w := range ws {
		if w.OutLen == 0 {
			t.Errorf("%s: empty output region", w.Name)
		}
		_, res := runWorkload(t, w)
		if res.Instret == 0 || res.Cycles == 0 {
			t.Errorf("%s: no work executed", w.Name)
		}
		var fpTotal int64
		for _, c := range res.FPOps {
			fpTotal += c
		}
		if fpTotal == 0 {
			t.Errorf("%s: no FP datapath activity", w.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", Tiny); err == nil {
		t.Fatal("expected error")
	}
}

func TestScaleStrings(t *testing.T) {
	if Tiny.String() != "tiny" || Small.String() != "small" || Full.String() != "full" {
		t.Fatal("scale names")
	}
}

func TestBTMatchesReference(t *testing.T) {
	w, err := ByName("bt", Tiny)
	if err != nil {
		t.Fatal(err)
	}
	c, res := runWorkload(t, w)
	if got := string(c.Output()); got != "VERIFICATION SUCCESSFUL\n" {
		t.Fatalf("bt console %q", got)
	}
	want, pass := btReference(Tiny)
	if !pass {
		t.Fatal("reference bt must verify")
	}
	got := outRegion(c, w)
	for i, xf := range want {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(xf) {
			t.Fatalf("bt x[%d] = %v want %v", i, math.Float64frombits(v), xf)
		}
	}
	if res.FPOps[3] == 0 { // DDiv from the block inversions
		t.Fatalf("bt should be fdiv heavy: %v", res.FPOps)
	}
}

func TestAllNamesIncludesBT(t *testing.T) {
	names := AllNames()
	if len(names) != 8 || names[len(names)-1] != "bt" {
		t.Fatalf("AllNames = %v", names)
	}
	if len(Names()) != 7 {
		t.Fatal("Names must stay the paper's seven")
	}
}

func TestSmallScaleMatchesReferences(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale verification")
	}
	// Every benchmark stays bit-exact against its Go reference at the
	// experiment scale, not just the unit-test scale.
	w, err := ByName("sobel", Small)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runWorkload(t, w)
	if !bytes.Equal(outRegion(c, w), sobelReference(Small)) {
		t.Fatal("sobel small-scale output diverges from reference")
	}

	w, err = ByName("hotspot", Small)
	if err != nil {
		t.Fatal(err)
	}
	c, _ = runWorkload(t, w)
	got := outRegion(c, w)
	for i, wf := range hotspotReference(Small) {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(got[i*8+b]) << (8 * b)
		}
		if v != math.Float64bits(wf) {
			t.Fatalf("hotspot small cell %d diverges", i)
		}
	}

	for _, name := range []string{"cg", "is", "mg", "bt"} {
		w, err := ByName(name, Small)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := runWorkload(t, w)
		if gotOut := string(c.Output()); gotOut != "VERIFICATION SUCCESSFUL\n" {
			t.Fatalf("%s small-scale verification: %q", name, gotOut)
		}
	}
}

func TestFullScaleBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale assembly")
	}
	// The Full inputs must at least assemble and declare sane regions.
	for _, name := range AllNames() {
		w, err := ByName(name, Full)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.OutLen == 0 || len(w.Program.Text) == 0 {
			t.Fatalf("%s: degenerate full-scale build", name)
		}
	}
}
