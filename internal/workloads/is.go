package workloads

import "fmt"

// isParams returns (keys, key range) per scale.
func isParams(scale Scale) (n, maxKey int) {
	switch scale {
	case Tiny:
		return 2048, 512
	case Full:
		return 65536, 4096
	default:
		return 16384, 2048
	}
}

// NPB randlc constants: x0 = 314159265, a = 5^13.
const (
	isSeedX = 314159265.0
	isMultA = 1220703125.0
)

// randlc46 advances the NPB 46-bit linear congruential generator using
// only double-precision multiplies, adds and truncations — the reason the
// paper's Figure 6 draws its fp-mul operand trace from the is benchmark.
// The truncations mirror the MRV program's f2i/i2f round trips.
func randlc46(x *float64) float64 {
	const (
		r23 = 0x1p-23
		t23 = 0x1p23
		r46 = 0x1p-46
		t46 = 0x1p46
	)
	ra := r23 * isMultA
	a1 := float64(int32(ra))
	a2 := isMultA - t23*a1
	x1 := float64(int32(r23 * *x))
	x2 := *x - t23*x1
	t1 := a1*x2 + a2*x1
	t2 := float64(int32(r23 * t1))
	z := t1 - t23*t2
	t3 := t23*z + a2*x2
	t4 := float64(int32(r46 * t3))
	*x = t3 - t46*t4
	return r46 * *x
}

// buildIS emits the NAS integer-sort benchmark: keys drawn from the
// randlc double-precision generator, a counting sort, and in-program
// verification (sorted order, population count, and a key checksum
// compared against the expected value).
func buildIS(scale Scale) (*Workload, error) {
	n, maxKey := isParams(scale)
	// The expected checksum comes from the reference generator.
	_, checksum := isReference(scale)
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d          # sorted keys (n words)
outbuf_end: .word 0
counts:     .space %[2]d          # maxKey words
.align 3
c_x0:       .double 314159265.0
c_a:        .double 1220703125.0
c_r23:      .double 1.1920928955078125e-07
c_t23:      .double 8388608.0
c_r46:      .double 1.4210854715202004e-14
c_t46:      .double 70368744177664.0
c_range:    .double %[3]d.0
`+verifyData+`
.text
main:
    la   t0, c_x0
    fld  fs0, 0(t0)       # x
    la   t0, c_a
    fld  fs1, 0(t0)       # a
    la   t0, c_r23
    fld  fs3, 0(t0)
    la   t0, c_t23
    fld  fs4, 0(t0)
    la   t0, c_r46
    fld  fs5, 0(t0)
    la   t0, c_t46
    fld  fs6, 0(t0)
    la   t0, c_range
    fld  fs7, 0(t0)

    # Precompute a1 = trunc(r23*a), a2 = a - t23*a1.
    fmul.d fa0, fs3, fs1
    fcvt.w.d t0, fa0
    fcvt.d.w fs8, t0      # a1
    fmul.d fa0, fs4, fs8
    fsub.d fs9, fs1, fa0  # a2

    li   s0, 0            # i
    li   s1, 0            # checksum
keygen:
    # randlc step.
    fmul.d fa0, fs3, fs0
    fcvt.w.d t0, fa0
    fcvt.d.w fa1, t0      # x1
    fmul.d fa2, fs4, fa1
    fsub.d fa2, fs0, fa2  # x2
    fmul.d fa3, fs8, fa2  # a1*x2
    fmul.d fa4, fs9, fa1  # a2*x1
    fadd.d fa3, fa3, fa4  # t1
    fmul.d fa0, fs3, fa3
    fcvt.w.d t0, fa0
    fcvt.d.w fa4, t0      # t2
    fmul.d fa4, fs4, fa4
    fsub.d fa4, fa3, fa4  # z
    fmul.d fa4, fs4, fa4  # t23*z
    fmul.d fa5, fs9, fa2  # a2*x2
    fadd.d fa4, fa4, fa5  # t3
    fmul.d fa0, fs5, fa4
    fcvt.w.d t0, fa0
    fcvt.d.w fa5, t0      # t4
    fmul.d fa5, fs6, fa5
    fsub.d fs0, fa4, fa5  # x'
    fmul.d fa0, fs5, fs0  # r in [0,1)

    # key = trunc(r * range); bump its bucket.
    fmul.d fa0, fa0, fs7
    fcvt.w.d t1, fa0
    add  s1, s1, t1       # checksum
    la   t2, counts
    slli t3, t1, 2
    add  t2, t2, t3
    lw   t4, 0(t2)
    addi t4, t4, 1
    sw   t4, 0(t2)

    addi s0, s0, 1
    li   t0, %[4]d
    blt  s0, t0, keygen

    # Verify the key checksum against the expected value.
    li   t0, %[5]d
    bne  s1, t0, verify_fail

    # Emit sorted keys from the buckets.
    la   s2, outbuf
    li   s3, 0            # key value
    li   s4, 0            # emitted count
emit_k:
    la   t2, counts
    slli t3, s3, 2
    add  t2, t2, t3
    lw   t4, 0(t2)
emit_c:
    beqz t4, emit_next
    sw   s3, 0(s2)
    addi s2, s2, 4
    addi s4, s4, 1
    subi t4, t4, 1
    j    emit_c
emit_next:
    addi s3, s3, 1
    li   t0, %[3]d
    blt  s3, t0, emit_k

    # Population check.
    li   t0, %[4]d
    bne  s4, t0, verify_fail

    # Sorted-order check.
    la   s2, outbuf
    lw   t5, 0(s2)
    li   s5, 1
chk:
    slli t3, s5, 2
    la   t2, outbuf
    add  t2, t2, t3
    lw   t6, 0(t2)
    blt  t6, t5, verify_fail
    mv   t5, t6
    addi s5, s5, 1
    li   t0, %[4]d
    blt  s5, t0, chk
    j    verify_pass
`+verifyRoutines,
		n*4, maxKey*4, maxKey, n, int32(checksum))
	return finish("is", "S", "Verification checking", src)
}

// isReference returns the sorted key array and the generation checksum.
func isReference(scale Scale) ([]int32, int32) {
	n, maxKey := isParams(scale)
	x := isSeedX
	keys := make([]int32, n)
	var checksum int32
	for i := range keys {
		r := randlc46(&x)
		keys[i] = int32(r * float64(maxKey))
		checksum += keys[i]
	}
	counts := make([]int32, maxKey)
	for _, k := range keys {
		counts[k]++
	}
	sorted := make([]int32, 0, n)
	for k, c := range counts {
		for j := int32(0); j < c; j++ {
			sorted = append(sorted, int32(k))
		}
	}
	return sorted, checksum
}
