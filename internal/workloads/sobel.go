package workloads

import "fmt"

// sobelDim returns the square image dimension per scale.
func sobelDim(scale Scale) int {
	switch scale {
	case Tiny:
		return 24
	case Full:
		return 192
	default:
		return 96
	}
}

const sobelSeed = 0x12345678

// buildSobel emits the Sobel edge-detection benchmark: a pseudo-random
// grayscale image is convolved with the 3x3 Sobel kernels and the
// gradient magnitude sqrt(gx^2+gy^2) — computed with a Newton iteration
// on the FPU — is clamped into the output image. Classification criterion:
// the output image bytes.
func buildSobel(scale Scale) (*Workload, error) {
	n := sobelDim(scale)
	src := fmt.Sprintf(`
.data
outbuf:     .space %[1]d
outbuf_end: .word 0
img:        .space %[1]d
.align 3
c_half:     .double 0.5
.text
main:
    # Generate the input image with xorshift32.
    la   s0, img
    li   s1, %[1]d
    li   s2, %[3]d
gen:%[4]s
    andi t1, s2, 255
    sb   t1, 0(s0)
    addi s0, s0, 1
    subi s1, s1, 1
    bnez s1, gen

    la   s10, c_half
    fld  fs0, 0(s10)      # 0.5
    li   s3, 1            # y
yloop:
    li   s4, 1            # x
xloop:
    li   t0, %[2]d
    mul  t1, s3, t0
    add  t1, t1, s4       # y*N + x
    la   t2, img
    add  t2, t2, t1

    # 3x3 neighborhood (p00 top-left).
    lbu  a2, %[5]d(t2)    # p00 (-N-1)
    lbu  a3, %[6]d(t2)    # p01 (-N)
    lbu  a4, %[7]d(t2)    # p02 (-N+1)
    lbu  a5, -1(t2)       # p10
    lbu  a6, 1(t2)        # p12
    lbu  a7, %[8]d(t2)    # p20 (N-1)
    lbu  s5, %[2]d(t2)    # p21 (N)
    lbu  s6, %[9]d(t2)    # p22 (N+1)

    # gx = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
    add  t3, a4, s6
    slli t4, a6, 1
    add  t3, t3, t4
    add  t4, a2, a7
    slli t5, a5, 1
    add  t4, t4, t5
    sub  t3, t3, t4       # gx
    # gy = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
    add  t4, a7, s6
    slli t5, s5, 1
    add  t4, t4, t5
    add  t5, a2, a4
    slli t6, a3, 1
    add  t5, t5, t6
    sub  t4, t4, t5       # gy

    # Flat region: magnitude 0 without touching the divider.
    or   t5, t3, t4
    beqz t5, store_zero

    fcvt.d.w fa0, t3
    fcvt.d.w fa1, t4
    fmul.d   fa0, fa0, fa0
    fmul.d   fa1, fa1, fa1
    fadd.d   fa0, fa0, fa1   # s = gx^2 + gy^2

    # Newton iteration for sqrt(s), 12 steps from x0 = s.
    fmv.d fa2, fa0
    li    t5, 12
newton:
    fdiv.d fa3, fa0, fa2
    fadd.d fa2, fa2, fa3
    fmul.d fa2, fa2, fs0
    subi  t5, t5, 1
    bnez  t5, newton

    fcvt.w.d t5, fa2
    li   t6, 255
    ble  t5, t6, store
    mv   t5, t6
store:
    la   t6, outbuf
    add  t6, t6, t1
    sb   t5, 0(t6)
    j    next
store_zero:
    la   t6, outbuf
    add  t6, t6, t1
    sb   zero, 0(t6)
next:
    addi s4, s4, 1
    li   t0, %[10]d
    blt  s4, t0, xloop
    addi s3, s3, 1
    blt  s3, t0, yloop
`+exitSeq,
		n*n, n, sobelSeed, xorshiftGen("s2", "t0"),
		-n-1, -n, -n+1, n-1, n+1, n-1)
	return finish("sobel",
		fmt.Sprintf("%d x %d", n, n),
		"Image Output", src)
}

// sobelReference computes the expected output image with the same
// arithmetic the MRV program performs (bit-identical for normal values).
func sobelReference(scale Scale) []byte {
	n := sobelDim(scale)
	img := make([]byte, n*n)
	seed := uint32(sobelSeed)
	for i := range img {
		seed = xorshift32(seed)
		img[i] = byte(seed & 255)
	}
	out := make([]byte, n*n)
	p := func(y, x int) int32 { return int32(img[y*n+x]) }
	for y := 1; y < n-1; y++ {
		for x := 1; x < n-1; x++ {
			gx := (p(y-1, x+1) + 2*p(y, x+1) + p(y+1, x+1)) -
				(p(y-1, x-1) + 2*p(y, x-1) + p(y+1, x-1))
			gy := (p(y+1, x-1) + 2*p(y+1, x) + p(y+1, x+1)) -
				(p(y-1, x-1) + 2*p(y-1, x) + p(y-1, x+1))
			if gx == 0 && gy == 0 {
				continue
			}
			s := float64(gx)*float64(gx) + float64(gy)*float64(gy)
			xv := s
			for i := 0; i < 12; i++ {
				xv = (xv + s/xv) * 0.5
			}
			v := int32(xv)
			if v > 255 {
				v = 255
			}
			out[y*n+x] = byte(v)
		}
	}
	return out
}
