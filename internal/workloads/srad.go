package workloads

import "fmt"

// sradParams returns (grid dimension, iterations) per scale.
func sradParams(scale Scale) (n, iters int) {
	switch scale {
	case Tiny:
		return 16, 2
	case Full:
		return 128, 8
	default:
		return 64, 4
	}
}

const (
	sradSeed   = 0x5EAD0001
	sradLambda = 0.5
)

// buildSRAD emits the Rodinia srad_v1 (speckle-reducing anisotropic
// diffusion) benchmark: per iteration it derives the speckle statistic
// q0² from the global mean/variance, computes the per-cell diffusion
// coefficient (division-heavy), and applies the divergence update. The
// output is the final image grid ("Image Output").
func buildSRAD(scale Scale) (*Workload, error) {
	n, iters := sradParams(scale)
	cells := n * n
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d      # image J (n*n doubles)
outbuf_end: .word 0
.align 3
coef:       .space %[1]d      # diffusion coefficients (boundary stays 0)
.align 3
c_uscale:   .double 9.5367431640625e-07
c_one:      .double 1.0
c_half:     .double 0.5
c_quarter:  .double 0.25
c_sixt:     .double 0.0625
c_qlam:     .double %[2]v     # lambda/4
c_cellsinv: .double %[3]v     # 1/(n*n)
.text
main:
    # J = 1 + u.
    la   s0, outbuf
    li   s1, %[4]d
    li   s2, %[5]d
    la   t2, c_uscale
    fld  ft0, 0(t2)
    la   t2, c_one
    fld  ft1, 0(t2)
genj:%[6]s
    li   t1, 0xfffff
    and  t1, s2, t1
    fcvt.d.w fa0, t1
    fmul.d   fa0, fa0, ft0
    fadd.d   fa0, fa0, ft1
    fsd  fa0, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, genj

    la   t2, c_half
    fld  fs5, 0(t2)
    la   t2, c_quarter
    fld  fs6, 0(t2)
    la   t2, c_sixt
    fld  fs7, 0(t2)
    la   t2, c_qlam
    fld  fs8, 0(t2)
    la   t2, c_cellsinv
    fld  fs9, 0(t2)
    la   t2, c_one
    fld  fs10, 0(t2)

    li   s11, %[7]d       # iterations
srad_iter:
    # Pass 0: mean and variance -> q0sqr (fs0).
    la   s0, outbuf
    li   s1, %[4]d
    fcvt.d.w fa0, zero    # sum
    fcvt.d.w fa1, zero    # sum2
stats:
    fld  fa2, 0(s0)
    fadd.d fa0, fa0, fa2
    fmul.d fa2, fa2, fa2
    fadd.d fa1, fa1, fa2
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, stats
    fmul.d fa0, fa0, fs9      # mean
    fmul.d fa1, fa1, fs9      # E[J^2]
    fmul.d fa2, fa0, fa0      # mean^2
    fsub.d fa1, fa1, fa2      # var
    fdiv.d fs0, fa1, fa2      # q0sqr

    # Pass 1: diffusion coefficient for interior cells.
    li   s3, 1
sc_y:
    li   s4, 1
sc_x:
    li   t0, %[8]d
    mul  t1, s3, t0
    add  t1, t1, s4
    slli t1, t1, 3
    la   t2, outbuf
    add  t2, t2, t1
    fld  fa0, 0(t2)           # Jc
    fld  fa1, %[9]d(t2)       # N
    fld  fa2, %[10]d(t2)      # S
    fld  fa3, -8(t2)          # W
    fld  fa4, 8(t2)           # E
    fsub.d fa1, fa1, fa0      # dN
    fsub.d fa2, fa2, fa0      # dS
    fsub.d fa3, fa3, fa0      # dW
    fsub.d fa4, fa4, fa0      # dE
    # G2 = (dN^2+dS^2+dW^2+dE^2)/Jc^2
    fmul.d fa5, fa1, fa1
    fmul.d ft2, fa2, fa2
    fadd.d fa5, fa5, ft2
    fmul.d ft2, fa3, fa3
    fadd.d fa5, fa5, ft2
    fmul.d ft2, fa4, fa4
    fadd.d fa5, fa5, ft2
    fmul.d ft3, fa0, fa0
    fdiv.d fa5, fa5, ft3      # G2
    # L = (dN+dS+dW+dE)/Jc
    fadd.d ft2, fa1, fa2
    fadd.d ft2, ft2, fa3
    fadd.d ft2, ft2, fa4
    fdiv.d ft2, ft2, fa0      # L
    # num = 0.5*G2 - (1/16)*L^2 ; den = 1 + 0.25*L
    fmul.d ft4, fa5, fs5
    fmul.d ft5, ft2, ft2
    fmul.d ft5, ft5, fs7
    fsub.d ft4, ft4, ft5      # num
    fmul.d ft5, ft2, fs6
    fadd.d ft5, ft5, fs10     # den
    fmul.d ft5, ft5, ft5
    fdiv.d ft4, ft4, ft5      # qsqr
    # den2 = (qsqr - q0sqr) / (q0sqr*(1+q0sqr)); c = 1/(1+den2)
    fsub.d ft5, ft4, fs0
    fadd.d ft6, fs0, fs10
    fmul.d ft6, ft6, fs0
    fdiv.d ft5, ft5, ft6
    fadd.d ft5, ft5, fs10
    fdiv.d ft5, fs10, ft5     # c
    # clamp to [0,1]
    fcvt.d.w ft6, zero
    flt.d t3, ft5, ft6
    beqz t3, noclamplo
    fmv.d ft5, ft6
noclamplo:
    flt.d t3, fs10, ft5
    beqz t3, noclamphi
    fmv.d ft5, fs10
noclamphi:
    la   t2, coef
    add  t2, t2, t1
    fsd  ft5, 0(t2)
    addi s4, s4, 1
    li   t0, %[11]d
    blt  s4, t0, sc_x
    addi s3, s3, 1
    blt  s3, t0, sc_y

    # Pass 2: divergence update J += (lambda/4)*(cN*dN + cS*dS + cW*dW + cE*dE),
    # with cN = cW = c[i][j], cS = c[i+1][j], cE = c[i][j+1].
    li   s3, 1
up_y:
    li   s4, 1
up_x:
    li   t0, %[8]d
    mul  t1, s3, t0
    add  t1, t1, s4
    slli t1, t1, 3
    la   t2, outbuf
    add  t2, t2, t1
    fld  fa0, 0(t2)
    fld  fa1, %[9]d(t2)
    fld  fa2, %[10]d(t2)
    fld  fa3, -8(t2)
    fld  fa4, 8(t2)
    fsub.d fa1, fa1, fa0
    fsub.d fa2, fa2, fa0
    fsub.d fa3, fa3, fa0
    fsub.d fa4, fa4, fa0
    la   t3, coef
    add  t3, t3, t1
    fld  fa5, 0(t3)           # cN = cW
    fld  ft2, %[10]d(t3)      # cS
    fld  ft3, 8(t3)           # cE
    fmul.d fa1, fa1, fa5
    fmul.d fa2, fa2, ft2
    fmul.d fa3, fa3, fa5
    fmul.d fa4, fa4, ft3
    fadd.d fa1, fa1, fa2
    fadd.d fa1, fa1, fa3
    fadd.d fa1, fa1, fa4
    fmul.d fa1, fa1, fs8
    fadd.d fa0, fa0, fa1
    fsd  fa0, 0(t2)
    addi s4, s4, 1
    li   t0, %[11]d
    blt  s4, t0, up_x
    addi s3, s3, 1
    blt  s3, t0, up_y

    subi s11, s11, 1
    bnez s11, srad_iter
`+exitSeq,
		cells*8, sradLambda/4, 1.0/float64(cells), cells, sradSeed,
		xorshiftGen("s2", "t0"), iters, n, -8*n, 8*n, n-1)
	return finish("srad_v1",
		fmt.Sprintf("%d %v %d %d %d", iters, sradLambda, n, n, 1),
		"Image Output", src)
}

// sradReference mirrors the MRV program exactly.
func sradReference(scale Scale) []float64 {
	n, iters := sradParams(scale)
	const uscale = 9.5367431640625e-07
	qlam := sradLambda / 4
	cellsInv := 1.0 / float64(n*n)
	seed := uint32(sradSeed)
	j := make([]float64, n*n)
	for i := range j {
		seed = xorshift32(seed)
		j[i] = float64(int32(seed&0xfffff))*uscale + 1.0
	}
	coef := make([]float64, n*n)
	for it := 0; it < iters; it++ {
		sum, sum2 := 0.0, 0.0
		for _, v := range j {
			sum += v
			sum2 += v * v
		}
		mean := sum * cellsInv
		esq := sum2 * cellsInv
		variance := esq - mean*mean
		q0 := variance / (mean * mean)
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				jc := j[i]
				dN := j[i-n] - jc
				dS := j[i+n] - jc
				dW := j[i-1] - jc
				dE := j[i+1] - jc
				g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (jc * jc)
				l := (dN + dS + dW + dE) / jc
				num := g2*0.5 - (l*l)*0.0625
				den := l*0.25 + 1.0
				qsqr := num / (den * den)
				den2 := (qsqr - q0) / ((q0 + 1.0) * q0)
				cval := 1.0 / (den2 + 1.0)
				if cval < 0 {
					cval = 0
				} else if cval > 1 {
					cval = 1
				}
				coef[i] = cval
			}
		}
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				jc := j[i]
				dN := j[i-n] - jc
				dS := j[i+n] - jc
				dW := j[i-1] - jc
				dE := j[i+1] - jc
				div := dN*coef[i] + dS*coef[i+n] + dW*coef[i] + dE*coef[i+1]
				j[i] = jc + div*qlam
			}
		}
	}
	return j
}
