package workloads

import "fmt"

// btParams returns (number of systems, blocks per system) per scale.
func btParams(scale Scale) (systems, blocks int) {
	switch scale {
	case Tiny:
		return 8, 12
	case Full:
		return 96, 48
	default:
		return 32, 24
	}
}

const btSeed = 0xB70C0DE5

// buildBT emits the bt benchmark (the NAS BT kernel's structure, scaled
// to 2x2 blocks): a batch of block-tridiagonal systems solved with the
// block Thomas algorithm — forward elimination with explicit 2x2 block
// inversion (determinant division, the FP-div-heavy phase) followed by
// back substitution — then verified in-program by substituting the
// solution back into the original system. bt is listed alongside the
// other NAS codes in the paper's Section IV-A; it is provided as an
// additional workload beyond the seven of Table II.
func buildBT(scale Scale) (*Workload, error) {
	systems, blocks := btParams(scale)
	// Per system: diag blocks D (blocks x 4 doubles), off-diagonals
	// L and U (blocks x 4 each, L[0] and U[last] unused), rhs
	// (blocks x 2), solution (blocks x 2).
	perSys := blocks * 4
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d      # solutions: systems * blocks * 2 doubles
outbuf_end: .word 0
.align 3
dmat:       .space %[2]d      # diagonal blocks (working copy)
lmat:       .space %[2]d      # sub-diagonal blocks
umat:       .space %[2]d      # super-diagonal blocks
rhs:        .space %[3]d      # right-hand sides (working copy)
dmat0:      .space %[2]d      # pristine copies for verification
lmat0:      .space %[2]d
umat0:      .space %[2]d
rhs0:       .space %[3]d
.align 3
c_uscale:   .double 9.5367431640625e-07
c_diag:     .double 8.0
c_vtol:     .double 1e-14
`+verifyData+`
.text
main:
    li   s10, 0               # system index
sys_loop:
    # ---- generate one system: D blocks diagonally dominant, L/U small.
    li   s2, %[4]d
    add  s2, s2, s10          # per-system seed
    la   t0, c_uscale
    fld  ft0, 0(t0)
    la   t0, c_diag
    fld  ft1, 0(t0)
    # base offsets for this system
    li   t0, %[5]d            # bytes per system in block arrays
    mul  s9, s10, t0          # block-array base offset
    li   t0, %[6]d            # bytes per system in rhs arrays
    mul  s8, s10, t0          # rhs base offset

    li   s3, 0                # block index
gen_blk:
    li   t0, 32               # bytes per 2x2 block
    mul  t1, s3, t0
    add  t1, t1, s9
    # D block: [8+u, u; u, 8+u'] pattern
    la   t2, dmat
    add  t2, t2, t1
    la   t3, dmat0
    add  t3, t3, t1
%[7]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fadd.d   fa1, fa0, ft1    # 8 + u
    fsd  fa1, 0(t2)
    fsd  fa1, 0(t3)
%[8]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fsd  fa0, 8(t2)
    fsd  fa0, 8(t3)
%[9]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fsd  fa0, 16(t2)
    fsd  fa0, 16(t3)
%[10]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fadd.d   fa1, fa0, ft1
    fsd  fa1, 24(t2)
    fsd  fa1, 24(t3)
    # L and U blocks: plain u values.
    la   t2, lmat
    add  t2, t2, t1
    la   t3, lmat0
    add  t3, t3, t1
    la   t5, umat
    add  t5, t5, t1
    la   t6, umat0
    add  t6, t6, t1
    li   s4, 0
gen_lu:
%[11]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    slli t4, s4, 3
    add  a2, t2, t4
    fsd  fa0, 0(a2)
    add  a2, t3, t4
    fsd  fa0, 0(a2)
%[12]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    slli t4, s4, 3
    add  a2, t5, t4
    fsd  fa0, 0(a2)
    add  a2, t6, t4
    fsd  fa0, 0(a2)
    addi s4, s4, 1
    li   t4, 4
    blt  s4, t4, gen_lu
    # rhs block: two values in [0,1).
    li   t0, 16
    mul  t1, s3, t0
    add  t1, t1, s8
    la   t2, rhs
    add  t2, t2, t1
    la   t3, rhs0
    add  t3, t3, t1
%[13]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fsd  fa0, 0(t2)
    fsd  fa0, 0(t3)
%[14]s
    li   t4, 0xfffff
    and  t4, s2, t4
    fcvt.d.w fa0, t4
    fmul.d   fa0, fa0, ft0
    fsd  fa0, 8(t2)
    fsd  fa0, 8(t3)
    addi s3, s3, 1
    li   t0, %[15]d
    blt  s3, t0, gen_blk

    # ---- forward elimination (block Thomas):
    # for k = 1..blocks-1:
    #   M = L[k] * inv(D[k-1])
    #   D[k] -= M * U[k-1]
    #   r[k] -= M * r[k-1]
    li   s3, 1
fwd_loop:
    # addr(D[k-1]) in a2, addr(D[k]) in a3, L[k] in a4, U[k-1] in a5
    li   t0, 32
    mul  t1, s3, t0
    add  t1, t1, s9
    la   a3, dmat
    add  a3, a3, t1
    la   a4, lmat
    add  a4, a4, t1
    subi t1, t1, 32
    la   a2, dmat
    add  a2, a2, t1
    la   a5, umat
    add  a5, a5, t1
    # inv(D[k-1]) = 1/det * [d,-b;-c,a] with D=[a,b;c,d]
    fld  fa0, 0(a2)           # a
    fld  fa1, 8(a2)           # b
    fld  fa2, 16(a2)          # c
    fld  fa3, 24(a2)          # d
    fmul.d fa4, fa0, fa3
    fmul.d fa5, fa1, fa2
    fsub.d fa4, fa4, fa5      # det
    fld  ft2, 0(a4)           # L = [la,lb;lc,ld]
    fld  ft3, 8(a4)
    fld  ft4, 16(a4)
    fld  ft5, 24(a4)
    # M = L * inv(D): row-major 2x2 products, each divided by det.
    # m00 = (la*d - lb*c)/det, m01 = (-la*b + lb*a)/det
    fmul.d ft6, ft2, fa3
    fmul.d ft7, ft3, fa2
    fsub.d ft6, ft6, ft7
    fdiv.d fs0, ft6, fa4      # m00
    fmul.d ft6, ft3, fa0
    fmul.d ft7, ft2, fa1
    fsub.d ft6, ft6, ft7
    fdiv.d fs1, ft6, fa4      # m01
    fmul.d ft6, ft4, fa3
    fmul.d ft7, ft5, fa2
    fsub.d ft6, ft6, ft7
    fdiv.d fs2, ft6, fa4      # m10
    fmul.d ft6, ft5, fa0
    fmul.d ft7, ft4, fa1
    fsub.d ft6, ft6, ft7
    fdiv.d fs3, ft6, fa4      # m11
    # D[k] -= M * U[k-1]
    fld  fa0, 0(a5)           # u00
    fld  fa1, 8(a5)
    fld  fa2, 16(a5)
    fld  fa3, 24(a5)
    fld  ft2, 0(a3)
    fmul.d ft6, fs0, fa0
    fmul.d ft7, fs1, fa2
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 0(a3)
    fld  ft2, 8(a3)
    fmul.d ft6, fs0, fa1
    fmul.d ft7, fs1, fa3
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 8(a3)
    fld  ft2, 16(a3)
    fmul.d ft6, fs2, fa0
    fmul.d ft7, fs3, fa2
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 16(a3)
    fld  ft2, 24(a3)
    fmul.d ft6, fs2, fa1
    fmul.d ft7, fs3, fa3
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 24(a3)
    # r[k] -= M * r[k-1]
    li   t0, 16
    mul  t1, s3, t0
    add  t1, t1, s8
    la   a6, rhs
    add  a6, a6, t1
    subi t1, t1, 16
    la   a7, rhs
    add  a7, a7, t1
    fld  fa0, 0(a7)
    fld  fa1, 8(a7)
    fld  ft2, 0(a6)
    fmul.d ft6, fs0, fa0
    fmul.d ft7, fs1, fa1
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 0(a6)
    fld  ft2, 8(a6)
    fmul.d ft6, fs2, fa0
    fmul.d ft7, fs3, fa1
    fadd.d ft6, ft6, ft7
    fsub.d ft2, ft2, ft6
    fsd  ft2, 8(a6)
    addi s3, s3, 1
    li   t0, %[15]d
    blt  s3, t0, fwd_loop

    # ---- back substitution:
    # x[last] = inv(D[last]) r[last]
    # x[k] = inv(D[k]) (r[k] - U[k] x[k+1])
    li   s3, %[16]d           # blocks-1
bs_loop:
    li   t0, 32
    mul  t1, s3, t0
    add  t1, t1, s9
    la   a2, dmat
    add  a2, a2, t1
    la   a5, umat
    add  a5, a5, t1
    li   t0, 16
    mul  t1, s3, t0
    add  t1, t1, s8
    la   a6, rhs
    add  a6, a6, t1
    # t = r[k]
    fld  fs0, 0(a6)
    fld  fs1, 8(a6)
    li   t0, %[16]d
    beq  s3, t0, bs_solve     # last block: no U term
    # t -= U[k] * x[k+1]
    li   t0, 16
    addi t2, s3, 1
    mul  t1, t2, t0
    add  t1, t1, s8
    la   a7, outbuf
    add  a7, a7, t1
    fld  fa0, 0(a7)
    fld  fa1, 8(a7)
    fld  fa2, 0(a5)
    fld  fa3, 8(a5)
    fld  fa4, 16(a5)
    fld  fa5, 24(a5)
    fmul.d ft6, fa2, fa0
    fmul.d ft7, fa3, fa1
    fadd.d ft6, ft6, ft7
    fsub.d fs0, fs0, ft6
    fmul.d ft6, fa4, fa0
    fmul.d ft7, fa5, fa1
    fadd.d ft6, ft6, ft7
    fsub.d fs1, fs1, ft6
bs_solve:
    # x[k] = inv(D[k]) * t
    fld  fa0, 0(a2)
    fld  fa1, 8(a2)
    fld  fa2, 16(a2)
    fld  fa3, 24(a2)
    fmul.d fa4, fa0, fa3
    fmul.d fa5, fa1, fa2
    fsub.d fa4, fa4, fa5      # det
    fmul.d ft6, fa3, fs0
    fmul.d ft7, fa1, fs1
    fsub.d ft6, ft6, ft7
    fdiv.d ft6, ft6, fa4      # x0
    fmul.d ft7, fa0, fs1
    fmul.d fa5, fa2, fs0
    fsub.d ft7, ft7, fa5
    fdiv.d ft7, ft7, fa4      # x1
    li   t0, 16
    mul  t1, s3, t0
    add  t1, t1, s8
    la   a7, outbuf
    add  a7, a7, t1
    fsd  ft6, 0(a7)
    fsd  ft7, 8(a7)
    subi s3, s3, 1
    bge  s3, zero, bs_loop

    addi s10, s10, 1
    li   t0, %[17]d
    blt  s10, t0, sys_loop

    # ---- verification: max |(A x - b)_i| over all systems via the
    # pristine copies: for each block row k:
    #   res = D0[k] x[k] + L0[k] x[k-1] + U0[k] x[k+1] - b0[k]
    fcvt.d.w fs4, zero        # running max |res|
    li   s10, 0
v_sys:
    li   t0, %[5]d
    mul  s9, s10, t0
    li   t0, %[6]d
    mul  s8, s10, t0
    li   s3, 0
v_blk:
    li   t0, 32
    mul  t1, s3, t0
    add  t1, t1, s9
    la   a2, dmat0
    add  a2, a2, t1
    li   t0, 16
    mul  t2, s3, t0
    add  t2, t2, s8
    la   a7, outbuf
    add  a7, a7, t2
    fld  fa0, 0(a7)           # x[k]0
    fld  fa1, 8(a7)           # x[k]1
    fld  fa2, 0(a2)
    fld  fa3, 8(a2)
    fld  fa4, 16(a2)
    fld  fa5, 24(a2)
    fmul.d fs0, fa2, fa0
    fmul.d ft6, fa3, fa1
    fadd.d fs0, fs0, ft6      # row 0 accum
    fmul.d fs1, fa4, fa0
    fmul.d ft6, fa5, fa1
    fadd.d fs1, fs1, ft6      # row 1 accum
    beqz s3, v_noL
    la   a2, lmat0
    add  a2, a2, t1
    la   a7, outbuf
    add  a7, a7, t2
    fld  fa0, -16(a7)         # x[k-1]0
    fld  fa1, -8(a7)
    fld  fa2, 0(a2)
    fld  fa3, 8(a2)
    fld  fa4, 16(a2)
    fld  fa5, 24(a2)
    fmul.d ft6, fa2, fa0
    fmul.d ft7, fa3, fa1
    fadd.d ft6, ft6, ft7
    fadd.d fs0, fs0, ft6
    fmul.d ft6, fa4, fa0
    fmul.d ft7, fa5, fa1
    fadd.d ft6, ft6, ft7
    fadd.d fs1, fs1, ft6
v_noL:
    li   t0, %[16]d
    beq  s3, t0, v_noU
    la   a2, umat0
    add  a2, a2, t1
    la   a7, outbuf
    add  a7, a7, t2
    fld  fa0, 16(a7)          # x[k+1]0
    fld  fa1, 24(a7)
    fld  fa2, 0(a2)
    fld  fa3, 8(a2)
    fld  fa4, 16(a2)
    fld  fa5, 24(a2)
    fmul.d ft6, fa2, fa0
    fmul.d ft7, fa3, fa1
    fadd.d ft6, ft6, ft7
    fadd.d fs0, fs0, ft6
    fmul.d ft6, fa4, fa0
    fmul.d ft7, fa5, fa1
    fadd.d ft6, ft6, ft7
    fadd.d fs1, fs1, ft6
v_noU:
    la   a2, rhs0
    add  a2, a2, t2
    fld  fa0, 0(a2)
    fld  fa1, 8(a2)
    fsub.d fs0, fs0, fa0
    fabs.d fs0, fs0
    fsub.d fs1, fs1, fa1
    fabs.d fs1, fs1
    flt.d t0, fs4, fs0
    beqz t0, v_m1
    fmv.d fs4, fs0
v_m1:
    flt.d t0, fs4, fs1
    beqz t0, v_m2
    fmv.d fs4, fs1
v_m2:
    addi s3, s3, 1
    li   t0, %[15]d
    blt  s3, t0, v_blk
    addi s10, s10, 1
    li   t0, %[17]d
    blt  s10, t0, v_sys

    la   t0, c_vtol
    fld  fa0, 0(t0)
    flt.d t1, fs4, fa0
    bnez t1, verify_pass
    j    verify_fail
`+verifyRoutines,
		systems*blocks*16,                                // [1] outbuf bytes
		systems*perSys*8,                                 // [2] block array bytes
		systems*blocks*16,                                // [3] rhs bytes
		btSeed,                                           // [4]
		blocks*32,                                        // [5] bytes/system in block arrays
		blocks*16,                                        // [6] bytes/system in rhs arrays
		xorshiftGen("s2", "t4"), xorshiftGen("s2", "t4"), // [7] [8]
		xorshiftGen("s2", "t4"), xorshiftGen("s2", "t4"), // [9] [10]
		xorshiftGen("s2", "t4"), xorshiftGen("s2", "t4"), // [11] [12]
		xorshiftGen("s2", "t4"), xorshiftGen("s2", "t4"), // [13] [14]
		blocks,   // [15]
		blocks-1, // [16]
		systems,  // [17]
	)
	return finish("bt", "S", "Verification checking", src)
}

// btReference mirrors the MRV program: generation, block Thomas solve,
// and the residual check. It returns the solution array and whether
// verification passes.
func btReference(scale Scale) ([]float64, bool) {
	systems, blocks := btParams(scale)
	const uscale = 9.5367431640625e-07
	type blk = [4]float64
	x := make([]float64, systems*blocks*2)
	maxRes := 0.0
	for sys := 0; sys < systems; sys++ {
		seed := uint32(btSeed + sys)
		next := func() float64 {
			seed = xorshift32(seed)
			return float64(int32(seed&0xfffff)) * uscale
		}
		d := make([]blk, blocks)
		l := make([]blk, blocks)
		u := make([]blk, blocks)
		r := make([]float64, blocks*2)
		for k := 0; k < blocks; k++ {
			d[k][0] = next() + 8.0
			d[k][1] = next()
			d[k][2] = next()
			d[k][3] = next() + 8.0
			for j := 0; j < 4; j++ {
				l[k][j] = next()
				u[k][j] = next()
			}
			r[k*2] = next()
			r[k*2+1] = next()
		}
		d0 := append([]blk(nil), d...)
		r0 := append([]float64(nil), r...)
		// Forward elimination.
		for k := 1; k < blocks; k++ {
			a, b, c2, dd := d[k-1][0], d[k-1][1], d[k-1][2], d[k-1][3]
			det := a*dd - b*c2
			la, lb, lc, ld := l[k][0], l[k][1], l[k][2], l[k][3]
			m00 := (la*dd - lb*c2) / det
			m01 := (lb*a - la*b) / det
			m10 := (lc*dd - ld*c2) / det
			m11 := (ld*a - lc*b) / det
			up := u[k-1]
			d[k][0] -= m00*up[0] + m01*up[2]
			d[k][1] -= m00*up[1] + m01*up[3]
			d[k][2] -= m10*up[0] + m11*up[2]
			d[k][3] -= m10*up[1] + m11*up[3]
			r[k*2] -= m00*r[(k-1)*2] + m01*r[(k-1)*2+1]
			r[k*2+1] -= m10*r[(k-1)*2] + m11*r[(k-1)*2+1]
		}
		// Back substitution.
		xs := x[sys*blocks*2 : (sys+1)*blocks*2]
		for k := blocks - 1; k >= 0; k-- {
			t0, t1 := r[k*2], r[k*2+1]
			if k != blocks-1 {
				up := u[k]
				t0 -= up[0]*xs[(k+1)*2] + up[1]*xs[(k+1)*2+1]
				t1 -= up[2]*xs[(k+1)*2] + up[3]*xs[(k+1)*2+1]
			}
			a, b, c2, dd := d[k][0], d[k][1], d[k][2], d[k][3]
			det := a*dd - b*c2
			xs[k*2] = (dd*t0 - b*t1) / det
			xs[k*2+1] = (a*t1 - c2*t0) / det
		}
		// Residual against the pristine system.
		for k := 0; k < blocks; k++ {
			res0 := d0[k][0]*xs[k*2] + d0[k][1]*xs[k*2+1]
			res1 := d0[k][2]*xs[k*2] + d0[k][3]*xs[k*2+1]
			if k > 0 {
				res0 += l[k][0]*xs[(k-1)*2] + l[k][1]*xs[(k-1)*2+1]
				res1 += l[k][2]*xs[(k-1)*2] + l[k][3]*xs[(k-1)*2+1]
			}
			if k < blocks-1 {
				res0 += u[k][0]*xs[(k+1)*2] + u[k][1]*xs[(k+1)*2+1]
				res1 += u[k][2]*xs[(k+1)*2] + u[k][3]*xs[(k+1)*2+1]
			}
			res0 -= r0[k*2]
			res1 -= r0[k*2+1]
			maxRes = max3(maxRes, absf(res0), absf(res1))
		}
	}
	return x, maxRes < 1e-14
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
