package workloads

import (
	"fmt"
	"math"
)

// mgParams returns (fine dimension, V-cycles) per scale. Dimensions are
// 2^k+1 so the coarse grid nests exactly.
func mgParams(scale Scale) (n, cycles int) {
	switch scale {
	case Tiny:
		return 17, 2
	case Full:
		return 65, 6
	default:
		return 33, 4
	}
}

const mgSeed = 0x36C0FFEE

// buildMG emits the multigrid benchmark (the NAS MG kernel's structure on
// a 2D Poisson problem): Gauss-Seidel smoothing, residual computation,
// injection restriction, a coarse-grid correction solve, bilinear
// prolongation, and a final residual-norm verification against the
// expected value ("Verification checking").
func buildMG(scale Scale) (*Workload, error) {
	n, cycles := mgParams(scale)
	c := (n + 1) / 2
	h2 := 1.0 / float64((n-1)*(n-1))
	h2c := 4 * h2
	h2inv := float64((n - 1) * (n - 1))
	// Expected squared residual norm from the bit-identical reference.
	_, norm2 := mgReference(scale)
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d      # u (n*n doubles)
outbuf_end: .word 0
.align 3
rhs:        .space %[1]d      # f
res:        .space %[1]d      # r
rc:         .space %[2]d      # coarse rhs (c*c doubles)
ec:         .space %[2]d      # coarse correction
.align 3
c_quarter:  .double 0.25
c_half:     .double 0.5
c_four:     .double 4.0
c_one:      .double 1.0
c_none:     .double -1.0
c_h2:       .double %[3]v
c_h2c:      .double %[4]v
c_h2inv:    .double %[5]v
c_expect:   .double %[6]v
c_rtol:     .double 1e-9
`+verifyData+`
.text
main:
    la   t0, c_quarter
    fld  fs5, 0(t0)
    la   t0, c_half
    fld  fs6, 0(t0)
    la   t0, c_four
    fld  fs7, 0(t0)
    la   t0, c_h2
    fld  fs8, 0(t0)
    la   t0, c_h2c
    fld  fs9, 0(t0)
    la   t0, c_h2inv
    fld  fs10, 0(t0)

    # Point sources: 4 positive, 4 negative, at pseudo-random interior
    # points of f.
    li   s2, %[7]d
    la   t0, c_one
    fld  fa0, 0(t0)
    li   s3, 0
srcs:%[8]s
    li   t1, %[9]d
    remu t2, s2, t1
    addi t2, t2, 1        # y
%[10]s
    remu t3, s2, t1
    addi t3, t3, 1        # x
    li   t4, %[11]d
    mul  t5, t2, t4
    add  t5, t5, t3
    slli t5, t5, 3
    la   t6, rhs
    add  t6, t6, t5
    fsd  fa0, 0(t6)
    addi s3, s3, 1
    li   t4, 4
    bne  s3, t4, srcs_next
    la   t0, c_none
    fld  fa0, 0(t0)       # switch to negative sources
srcs_next:
    li   t4, 8
    blt  s3, t4, srcs

    li   s11, %[12]d      # V-cycles
vcycle:
    # Pre-smooth u (2 sweeps, fine grid).
    la   a0, outbuf
    la   a1, rhs
    li   a2, %[11]d
    li   a3, 2
    fmv.d fs1, fs8
    call smooth
    # Residual on the fine grid.
    call residual
    # Restrict by injection: rc[y][x] = r[2y][2x].
    li   t0, 1
rst_y:
    li   t1, 1
rst_x:
    slli t2, t0, 1
    li   t3, %[11]d
    mul  t2, t2, t3
    slli t4, t1, 1
    add  t2, t2, t4
    slli t2, t2, 3
    la   t3, res
    add  t3, t3, t2
    fld  fa0, 0(t3)
    li   t3, %[13]d
    mul  t2, t0, t3
    add  t2, t2, t1
    slli t2, t2, 3
    la   t3, rc
    add  t3, t3, t2
    fsd  fa0, 0(t3)
    addi t1, t1, 1
    li   t3, %[14]d
    blt  t1, t3, rst_x
    addi t0, t0, 1
    blt  t0, t3, rst_y
    # Clear the coarse correction and solve approximately (8 sweeps).
    la   t0, ec
    li   t1, %[15]d
    fcvt.d.w fa0, zero
clr_e:
    fsd  fa0, 0(t0)
    addi t0, t0, 8
    subi t1, t1, 1
    bnez t1, clr_e
    la   a0, ec
    la   a1, rc
    li   a2, %[13]d
    li   a3, 8
    fmv.d fs1, fs9
    call smooth
    # Prolongate bilinearly and correct u.
    li   s3, 0            # coarse y
pro_y:
    li   s4, 0            # coarse x
pro_x:
    li   t0, %[13]d
    mul  t1, s3, t0
    add  t1, t1, s4
    slli t1, t1, 3
    la   t2, ec
    add  t2, t2, t1
    fld  fa0, 0(t2)       # e00
    fld  fa1, 8(t2)       # e01
    fld  fa2, %[16]d(t2)  # e10
    fld  fa3, %[17]d(t2)  # e11
    # Fine-cell base index (2y, 2x).
    slli t3, s3, 1
    li   t4, %[11]d
    mul  t3, t3, t4
    slli t5, s4, 1
    add  t3, t3, t5
    slli t3, t3, 3
    la   t4, outbuf
    add  t4, t4, t3
    fld  fa4, 0(t4)
    fadd.d fa4, fa4, fa0
    fsd  fa4, 0(t4)
    fadd.d fa5, fa0, fa1
    fmul.d fa5, fa5, fs6
    fld  fa4, 8(t4)
    fadd.d fa4, fa4, fa5
    fsd  fa4, 8(t4)
    fadd.d fa5, fa0, fa2
    fmul.d fa5, fa5, fs6
    fld  fa4, %[18]d(t4)
    fadd.d fa4, fa4, fa5
    fsd  fa4, %[18]d(t4)
    fadd.d fa5, fa0, fa1
    fadd.d ft2, fa2, fa3
    fadd.d fa5, fa5, ft2
    fmul.d fa5, fa5, fs5
    fld  fa4, %[19]d(t4)
    fadd.d fa4, fa4, fa5
    fsd  fa4, %[19]d(t4)
    addi s4, s4, 1
    li   t0, %[20]d
    blt  s4, t0, pro_x
    addi s3, s3, 1
    blt  s3, t0, pro_y
    # Post-smooth.
    la   a0, outbuf
    la   a1, rhs
    li   a2, %[11]d
    li   a3, 2
    fmv.d fs1, fs8
    call smooth
    subi s11, s11, 1
    bnez s11, vcycle

    # Final residual norm^2 and verification.
    call residual
    la   t0, res
    li   t1, %[21]d
    fcvt.d.w fa0, zero
nrm:
    fld  fa1, 0(t0)
    fmul.d fa1, fa1, fa1
    fadd.d fa0, fa0, fa1
    addi t0, t0, 8
    subi t1, t1, 1
    bnez t1, nrm
    la   t0, c_expect
    fld  fa1, 0(t0)
    fsub.d fa2, fa0, fa1
    fabs.d fa2, fa2
    la   t0, c_rtol
    fld  fa3, 0(t0)
    fmul.d fa3, fa3, fa1
    fabs.d fa3, fa3
    fle.d t1, fa2, fa3
    bnez t1, verify_pass
    j    verify_fail

# smooth: Gauss-Seidel sweeps. a0 grid, a1 rhs, a2 dim, a3 sweeps,
# fs1 = h^2. Clobbers t0-t6, a4-a5, fa0-fa3.
smooth:
sm_sweep:
    li   t0, 1            # y
sm_y:
    li   t1, 1            # x
sm_x:
    mul  t2, t0, a2
    add  t2, t2, t1
    slli t2, t2, 3
    add  t3, a0, t2
    slli a4, a2, 3        # row stride in bytes
    sub  t4, t3, a4
    fld  fa0, 0(t4)       # gN
    add  t4, t3, a4
    fld  fa1, 0(t4)       # gS
    fld  fa2, -8(t3)      # gW
    fld  fa3, 8(t3)       # gE
    fadd.d fa0, fa0, fa1
    fadd.d fa0, fa0, fa2
    fadd.d fa0, fa0, fa3
    add  t4, a1, t2
    fld  fa1, 0(t4)
    fmul.d fa1, fa1, fs1  # h2 * rhs
    fadd.d fa0, fa0, fa1
    fmul.d fa0, fa0, fs5  # * 0.25
    fsd  fa0, 0(t3)
    addi t1, t1, 1
    subi t5, a2, 1
    blt  t1, t5, sm_x
    addi t0, t0, 1
    blt  t0, t5, sm_y
    subi a3, a3, 1
    bnez a3, sm_sweep
    ret

# residual: res = rhs - A*u on the fine grid (interior; boundary zero).
# Uses fixed fine-grid symbols. Clobbers t0-t6, fa0-fa5.
residual:
    li   t0, 1
rs_y:
    li   t1, 1
rs_x:
    li   t2, %[11]d
    mul  t3, t0, t2
    add  t3, t3, t1
    slli t3, t3, 3
    la   t4, outbuf
    add  t4, t4, t3
    fld  fa0, 0(t4)       # u
    fld  fa1, %[22]d(t4)  # uN
    fld  fa2, %[23]d(t4)  # uS
    fld  fa3, -8(t4)      # uW
    fld  fa4, 8(t4)       # uE
    fmul.d fa5, fa0, fs7  # 4u
    fsub.d fa5, fa5, fa1
    fsub.d fa5, fa5, fa2
    fsub.d fa5, fa5, fa3
    fsub.d fa5, fa5, fa4
    fmul.d fa5, fa5, fs10 # * 1/h^2
    la   t4, rhs
    add  t4, t4, t3
    fld  fa1, 0(t4)
    fsub.d fa5, fa1, fa5
    la   t4, res
    add  t4, t4, t3
    fsd  fa5, 0(t4)
    addi t1, t1, 1
    li   t2, %[9]d
    addi t2, t2, 1        # n-1
    blt  t1, t2, rs_x
    addi t0, t0, 1
    blt  t0, t2, rs_y
    ret
`+verifyRoutines,
		n*n*8, c*c*8, h2, h2c, h2inv, norm2,
		mgSeed, xorshiftGen("s2", "t0"), n-2, xorshiftGen("s2", "t0"), n,
		cycles, c, c-1, c*c, 8*c, 8*c+8, 8*n, 8*n+8, c-1, n*n, -8*n, 8*n)
	return finish("mg", "S", "Verification checking", src)
}

// mgReference mirrors the MRV multigrid program exactly; it returns the
// final fine grid and the squared residual norm used as the verification
// constant.
func mgReference(scale Scale) ([]float64, float64) {
	n, cycles := mgParams(scale)
	c := (n + 1) / 2
	h2 := 1.0 / float64((n-1)*(n-1))
	h2c := 4 * h2
	h2inv := float64((n - 1) * (n - 1))
	u := make([]float64, n*n)
	f := make([]float64, n*n)
	seed := uint32(mgSeed)
	val := 1.0
	for s := 0; s < 8; s++ {
		seed = xorshift32(seed)
		y := int(seed%uint32(n-2)) + 1
		seed = xorshift32(seed)
		x := int(seed%uint32(n-2)) + 1
		f[y*n+x] = val
		if s == 3 {
			val = -1.0
		}
	}
	smooth := func(g, rhs []float64, dim, sweeps int, hh float64) {
		for s := 0; s < sweeps; s++ {
			for y := 1; y < dim-1; y++ {
				for x := 1; x < dim-1; x++ {
					i := y*dim + x
					g[i] = (g[i-dim] + g[i+dim] + g[i-1] + g[i+1] + rhs[i]*hh) * 0.25
				}
			}
		}
	}
	r := make([]float64, n*n)
	residual := func() {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				au := (u[i]*4 - u[i-n] - u[i+n] - u[i-1] - u[i+1]) * h2inv
				r[i] = f[i] - au
			}
		}
	}
	rc := make([]float64, c*c)
	ec := make([]float64, c*c)
	for cycle := 0; cycle < cycles; cycle++ {
		smooth(u, f, n, 2, h2)
		residual()
		for y := 1; y < c-1; y++ {
			for x := 1; x < c-1; x++ {
				rc[y*c+x] = r[2*y*n+2*x]
			}
		}
		for i := range ec {
			ec[i] = 0
		}
		smooth(ec, rc, c, 8, h2c)
		for y := 0; y < c-1; y++ {
			for x := 0; x < c-1; x++ {
				e00 := ec[y*c+x]
				e01 := ec[y*c+x+1]
				e10 := ec[(y+1)*c+x]
				e11 := ec[(y+1)*c+x+1]
				fi := 2*y*n + 2*x
				u[fi] += e00
				u[fi+1] += (e00 + e01) * 0.5
				u[fi+n] += (e00 + e10) * 0.5
				u[fi+n+1] += ((e00 + e01) + (e10 + e11)) * 0.25
			}
		}
		smooth(u, f, n, 2, h2)
	}
	residual()
	norm2 := 0.0
	for _, v := range r {
		norm2 += v * v
	}
	if math.IsNaN(norm2) {
		panic("mg reference produced NaN")
	}
	return u, norm2
}
