// Package workloads implements the paper's seven evaluation benchmarks
// (Table II) for the MRV ISA: sobel (image detection), cg, is, mg (NAS),
// k-means, srad_v1 and hotspot (Rodinia). Each is a self-contained
// assembly program with deterministic in-program input generation, a
// declared output region for Masked/SDC classification, and (for the NAS
// codes) built-in verification printed to the console.
//
// Inputs are scaled down from the paper's (which run up to 35 billion
// instructions on gem5) to laptop-scale dynamic instruction counts; the
// scaling is recorded per benchmark and surfaced in the regenerated
// Table II.
package workloads

import (
	"fmt"
	"sort"

	"teva/internal/isa"
)

// Scale selects the input size class.
type Scale int

// Input size classes. Tiny keeps unit tests fast; Small is the default
// experiment scale; Full is the largest supported input.
const (
	Tiny Scale = iota
	Small
	Full
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Full:
		return "full"
	}
	return "unknown"
}

// ParseScale parses a scale name as written by String — the CLI's
// -scale argument and the serve spec's "scale" field.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("workloads: unknown scale %q (tiny, small, full)", name)
}

// Workload is one benchmark instance.
type Workload struct {
	// Name is the paper's benchmark name.
	Name string
	// Input describes the input configuration (Table II's input column).
	Input string
	// Criteria is Table II's classification criteria.
	Criteria string
	// Program is the assembled binary.
	Program *isa.Program
	// OutStart/OutLen delimit the output memory region compared against
	// the golden run for SDC detection.
	OutStart, OutLen uint32
	// Source is the assembly text (for tooling).
	Source string
}

// builderFunc constructs a workload at a scale.
type builderFunc func(Scale) (*Workload, error)

var registry = map[string]builderFunc{
	"sobel":   buildSobel,
	"cg":      buildCG,
	"k-means": buildKMeans,
	"srad_v1": buildSRAD,
	"hotspot": buildHotspot,
	"is":      buildIS,
	"mg":      buildMG,
	"bt":      buildBT,
}

// Names returns the benchmark names in the paper's Table II order. The
// additional bt kernel (mentioned in the paper's Section IV-A benchmark
// list but absent from Table II and the figures) is available through
// ByName and AllNames.
func Names() []string {
	return []string{"sobel", "cg", "k-means", "srad_v1", "hotspot", "is", "mg"}
}

// AllNames returns every implemented benchmark, including bt.
func AllNames() []string { return append(Names(), "bt") }

// ByName builds the named workload at the given scale.
func ByName(name string, scale Scale) (*Workload, error) {
	b, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, known)
	}
	return b(scale)
}

// All builds every benchmark at the given scale.
func All(scale Scale) ([]*Workload, error) {
	var out []*Workload
	for _, name := range Names() {
		w, err := ByName(name, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// finish assembles the source and resolves the output region from the
// outbuf/outbuf_end symbols.
func finish(name, input, criteria, source string) (*Workload, error) {
	prog, err := isa.Assemble(source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	start, ok := prog.Symbols["outbuf"]
	if !ok {
		return nil, fmt.Errorf("workloads: %s: missing outbuf symbol", name)
	}
	end, ok := prog.Symbols["outbuf_end"]
	if !ok || end < start {
		return nil, fmt.Errorf("workloads: %s: missing/invalid outbuf_end symbol", name)
	}
	return &Workload{
		Name:     name,
		Input:    input,
		Criteria: criteria,
		Program:  prog,
		OutStart: start,
		OutLen:   end - start,
		Source:   source,
	}, nil
}

// exitSeq is the common program epilogue.
const exitSeq = `
    li   a0, 10
    li   a1, 0
    ecall
`

// printPass/printFail print the NAS-style verification verdicts.
const verifyRoutines = `
# print "VERIFICATION SUCCESSFUL\n" and exit
verify_pass:
    la   a1, msg_pass
    li   a0, 4
    ecall
` + exitSeq + `
# print "VERIFICATION FAILED\n" and exit
verify_fail:
    la   a1, msg_fail
    li   a0, 4
    ecall
` + exitSeq

const verifyData = `
msg_pass: .asciiz "VERIFICATION SUCCESSFUL\n"
msg_fail: .asciiz "VERIFICATION FAILED\n"
`

// xorshiftGen emits an inline xorshift32 step: reg = xorshift32(reg),
// using scratch (must differ from reg).
func xorshiftGen(reg, scratch string) string {
	return fmt.Sprintf(`
    slli %[2]s, %[1]s, 13
    xor  %[1]s, %[1]s, %[2]s
    srli %[2]s, %[1]s, 17
    xor  %[1]s, %[1]s, %[2]s
    slli %[2]s, %[1]s, 5
    xor  %[1]s, %[1]s, %[2]s`, reg, scratch)
}

// xorshift32 is the matching Go-side generator used by reference models.
func xorshift32(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}
