package workloads

import "fmt"

// hotspotParams returns grid dimension and iteration count per scale.
func hotspotParams(scale Scale) (dim, iters int) {
	switch scale {
	case Tiny:
		return 16, 2
	case Full:
		return 96, 16
	default:
		return 64, 8
	}
}

const hotspotSeed = 0x51CA7E57

// buildHotspot emits the Rodinia hotspot thermal simulation: an iterative
// 5-point stencil over a temperature grid driven by a per-cell power map,
// double-buffered, with fixed ambient-temperature boundary. The output is
// the final temperature grid ("File Output" in Table II).
func buildHotspot(scale Scale) (*Workload, error) {
	n, iters := hotspotParams(scale)
	cells := n * n
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d          # final temperatures (doubles)
outbuf_end: .word 0
.align 3
gridB:      .space %[1]d
power:      .space %[1]d
.align 3
c_base:     .double 323.0
c_tscale:   .double 9.5367431640625e-07   # 2^-20
c_pscale:   .double 0.1
c_k1:       .double 0.001
c_rx:       .double 0.1
c_ry:       .double 0.12
c_rz:       .double 0.05
c_amb:      .double 80.0
c_ten:      .double 10.0
.text
main:
    # Generate initial temperatures (outbuf doubles as grid A) and power.
    la   s0, outbuf
    la   s1, power
    li   s2, %[4]d
    li   s3, %[3]d       # cell count
    la   t2, c_base
    fld  ft0, 0(t2)      # 323.0
    la   t2, c_tscale
    fld  ft1, 0(t2)      # 2^-20
    la   t2, c_pscale
    fld  ft2, 0(t2)      # 0.1
    la   t2, c_ten
    fld  ft3, 0(t2)      # 10.0
gen:%[5]s
    li   t1, 0xfffff
    and  t1, s2, t1
    fcvt.d.w fa0, t1
    fmul.d   fa0, fa0, ft1    # u in [0,1)
    fmul.d   fa1, fa0, ft3
    fadd.d   fa1, fa1, ft0    # temp = 323 + 10u
    fsd  fa1, 0(s0)
%[6]s
    li   t1, 0xfffff
    and  t1, s2, t1
    fcvt.d.w fa0, t1
    fmul.d   fa0, fa0, ft1
    fmul.d   fa0, fa0, ft2    # power = 0.1u
    fsd  fa0, 0(s1)
    addi s0, s0, 8
    addi s1, s1, 8
    subi s3, s3, 1
    bnez s3, gen

    # Copy grid A into grid B so boundary cells agree in both buffers.
    la   s0, outbuf
    la   s1, gridB
    li   s3, %[3]d
copyb:
    fld  fa0, 0(s0)
    fsd  fa0, 0(s1)
    addi s0, s0, 8
    addi s1, s1, 8
    subi s3, s3, 1
    bnez s3, copyb

    la   t2, c_k1
    fld  fs0, 0(t2)
    la   t2, c_rx
    fld  fs1, 0(t2)
    la   t2, c_ry
    fld  fs2, 0(t2)
    la   t2, c_rz
    fld  fs3, 0(t2)
    la   t2, c_amb
    fld  fs4, 0(t2)

    la   s0, outbuf      # src buffer
    la   s1, gridB       # dst buffer
    li   s2, %[2]d       # iterations
iter:
    li   s3, 1           # y
hs_y:
    li   s4, 1           # x
hs_x:
    li   t0, %[7]d
    mul  t1, s3, t0
    add  t1, t1, s4
    slli t1, t1, 3       # byte offset
    add  t2, s0, t1      # &src[y][x]
    la   t3, power
    add  t3, t3, t1

    fld  fa0, 0(t2)          # t
    fld  fa1, %[8]d(t2)      # north (-8N)
    fld  fa2, %[9]d(t2)      # south (+8N)
    fld  fa3, -8(t2)         # west
    fld  fa4, 8(t2)          # east
    fld  fa5, 0(t3)          # power

    fadd.d ft4, fa1, fa2
    fsub.d ft4, ft4, fa0
    fsub.d ft4, ft4, fa0     # tN + tS - 2t
    fmul.d ft4, ft4, fs2     # * ry
    fadd.d ft5, fa3, fa4
    fsub.d ft5, ft5, fa0
    fsub.d ft5, ft5, fa0     # tE + tW - 2t
    fmul.d ft5, ft5, fs1     # * rx
    fsub.d ft6, fs4, fa0     # amb - t
    fmul.d ft6, ft6, fs3     # * rz
    fadd.d ft7, fa5, ft4
    fadd.d ft7, ft7, ft5
    fadd.d ft7, ft7, ft6
    fmul.d ft7, ft7, fs0     # * k1
    fadd.d ft7, fa0, ft7     # t'

    add  t4, s1, t1
    fsd  ft7, 0(t4)

    addi s4, s4, 1
    li   t0, %[10]d
    blt  s4, t0, hs_x
    addi s3, s3, 1
    blt  s3, t0, hs_y

    # Swap buffers.
    mv   t0, s0
    mv   s0, s1
    mv   s1, t0
    subi s2, s2, 1
    bnez s2, iter

    # Ensure the final state lives in outbuf: with an even iteration
    # count the source pointer is back at outbuf; otherwise copy.
    la   t0, outbuf
    beq  s0, t0, done
    la   s1, outbuf
    li   s3, %[3]d
copyout:
    fld  fa0, 0(s0)
    fsd  fa0, 0(s1)
    addi s0, s0, 8
    addi s1, s1, 8
    subi s3, s3, 1
    bnez s3, copyout
done:
`+exitSeq,
		cells*8, iters, cells, hotspotSeed,
		xorshiftGen("s2", "t0"), xorshiftGen("s2", "t0"),
		n, -8*n, 8*n, n-1)
	return finish("hotspot",
		fmt.Sprintf("%d %d %d", n, n, iters),
		"File Output", src)
}

// hotspotReference mirrors the MRV program's arithmetic exactly.
func hotspotReference(scale Scale) []float64 {
	n, iters := hotspotParams(scale)
	const (
		k1, rx, ry, rz = 0.001, 0.1, 0.12, 0.05
		amb            = 80.0
		tscale         = 9.5367431640625e-07
	)
	seed := uint32(hotspotSeed)
	next := func() float64 {
		seed = xorshift32(seed)
		return float64(int32(seed&0xfffff)) * tscale
	}
	temp := make([]float64, n*n)
	power := make([]float64, n*n)
	for i := range temp {
		temp[i] = next()*10.0 + 323.0
		power[i] = next() * 0.1
	}
	src := append([]float64(nil), temp...)
	dst := append([]float64(nil), temp...)
	for it := 0; it < iters; it++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				i := y*n + x
				t := src[i]
				dst[i] = t + ((power[i] +
					(src[i-n]+src[i+n]-t-t)*ry +
					(src[i-1]+src[i+1]-t-t)*rx +
					(amb-t)*rz) * k1)
			}
		}
		src, dst = dst, src
	}
	return src
}
