package workloads

import "fmt"

// cgParams returns (matrix dimension, max iterations) per scale.
func cgParams(scale Scale) (n, maxIter int) {
	switch scale {
	case Tiny:
		return 16, 32
	case Full:
		return 96, 192
	default:
		return 48, 96
	}
}

const cgSeed = 0x00C67A5E

// buildCG emits the conjugate-gradient benchmark (the NAS CG kernel's
// structure on a dense symmetric positive-definite system): generate a
// diagonally dominant symmetric matrix, solve Ax = b with CG, then verify
// the residual in-program and print the NAS-style verdict ("Verification
// checking" in Table II). The solve loop exits on convergence, so
// corrupted residuals translate into extra iterations or failed
// verification — the timeout/SDC paths of the paper.
func buildCG(scale Scale) (*Workload, error) {
	n, maxIter := cgParams(scale)
	src := fmt.Sprintf(`
.data
.align 3
outbuf:     .space %[1]d      # solution vector x (n doubles)
outbuf_end: .word 0
.align 3
mat:        .space %[2]d      # A (n*n doubles)
vb:         .space %[1]d      # b
vr:         .space %[1]d      # r
vp:         .space %[1]d      # p
vq:         .space %[1]d      # q
.align 3
c_uscale:   .double 9.5367431640625e-07   # 2^-20
c_diag:     .double %[3]d.0
c_one:      .double 1.0
c_tol:      .double 1e-24
c_vtol:     .double 1e-16
`+verifyData+`
.text
main:
    # Generate the symmetric matrix: upper triangle from xorshift,
    # mirrored; the diagonal gets +n for dominance.
    li   s2, %[4]d            # seed
    la   s6, c_uscale
    fld  ft0, 0(s6)
    la   s6, c_diag
    fld  ft1, 0(s6)
    li   s3, 0                # i
geni:
    mv   s4, s3               # j = i
genj:%[5]s
    li   t1, 0xfffff
    and  t1, s2, t1
    fcvt.d.w fa0, t1
    fmul.d   fa0, fa0, ft0    # u in [0,1)
    bne  s3, s4, offdiag
    fadd.d fa0, fa0, ft1      # diagonal: n + u
offdiag:
    li   t0, %[6]d
    mul  t1, s3, t0
    add  t1, t1, s4
    slli t1, t1, 3
    la   t2, mat
    add  t3, t2, t1
    fsd  fa0, 0(t3)
    mul  t1, s4, t0
    add  t1, t1, s3
    slli t1, t1, 3
    add  t3, t2, t1
    fsd  fa0, 0(t3)
    addi s4, s4, 1
    blt  s4, t0, genj
    addi s3, s3, 1
    blt  s3, t0, geni

    # b = 1, x = 0, r = b, p = b.
    la   s3, vb
    la   s4, outbuf
    la   s5, vr
    la   s6, vp
    la   t2, c_one
    fld  fa0, 0(t2)
    fcvt.d.w fa1, zero
    li   s7, %[6]d
initv:
    fsd  fa0, 0(s3)
    fsd  fa1, 0(s4)
    fsd  fa0, 0(s5)
    fsd  fa0, 0(s6)
    addi s3, s3, 8
    addi s4, s4, 8
    addi s5, s5, 8
    addi s6, s6, 8
    subi s7, s7, 1
    bnez s7, initv

    # rho = r . r
    la   a0, vr
    la   a1, vr
    call dot
    fmv.d fs0, fa0            # rho

    li   s11, 0               # iteration counter
cg_iter:
    # q = A p
    la   a0, vp
    la   a1, vq
    call matvec
    # alpha = rho / (p . q)
    la   a0, vp
    la   a1, vq
    call dot
    fdiv.d fs1, fs0, fa0      # alpha
    # x += alpha p ; r -= alpha q
    la   s3, outbuf
    la   s4, vp
    la   s5, vr
    la   s6, vq
    li   s7, %[6]d
upd:
    fld  fa1, 0(s4)
    fmul.d fa1, fa1, fs1
    fld  fa2, 0(s3)
    fadd.d fa2, fa2, fa1
    fsd  fa2, 0(s3)
    fld  fa1, 0(s6)
    fmul.d fa1, fa1, fs1
    fld  fa2, 0(s5)
    fsub.d fa2, fa2, fa1
    fsd  fa2, 0(s5)
    addi s3, s3, 8
    addi s4, s4, 8
    addi s5, s5, 8
    addi s6, s6, 8
    subi s7, s7, 1
    bnez s7, upd
    # rho' = r . r
    la   a0, vr
    la   a1, vr
    call dot
    # converged?
    la   t2, c_tol
    fld  fa3, 0(t2)
    flt.d t3, fa0, fa3
    bnez t3, cg_done
    # beta = rho' / rho ; rho = rho'
    fdiv.d fs2, fa0, fs0
    fmv.d  fs0, fa0
    # p = r + beta p
    la   s4, vp
    la   s5, vr
    li   s7, %[6]d
updp:
    fld  fa1, 0(s4)
    fmul.d fa1, fa1, fs2
    fld  fa2, 0(s5)
    fadd.d fa1, fa2, fa1
    fsd  fa1, 0(s4)
    addi s4, s4, 8
    addi s5, s5, 8
    subi s7, s7, 1
    bnez s7, updp
    addi s11, s11, 1
    li   t3, %[7]d
    blt  s11, t3, cg_iter

cg_done:
    # Verification: err = sum((b - A x)^2) must be below vtol.
    la   a0, outbuf
    la   a1, vq
    call matvec
    fcvt.d.w fa4, zero        # err
    la   s3, vb
    la   s4, vq
    li   s7, %[6]d
vloop:
    fld  fa1, 0(s3)
    fld  fa2, 0(s4)
    fsub.d fa1, fa1, fa2
    fmul.d fa1, fa1, fa1
    fadd.d fa4, fa4, fa1
    addi s3, s3, 8
    addi s4, s4, 8
    subi s7, s7, 1
    bnez s7, vloop
    la   t2, c_vtol
    fld  fa3, 0(t2)
    flt.d t3, fa4, fa3
    bnez t3, verify_pass
    j    verify_fail

# matvec: a1[i] = sum_j mat[i][j]*a0[j]
matvec:
    li   t0, 0                # i
mv_i:
    li   t1, %[6]d
    mul  t2, t0, t1
    slli t2, t2, 3
    la   t3, mat
    add  t3, t3, t2           # &A[i][0]
    mv   t4, a0               # &src[0]
    fcvt.d.w fa0, zero
    li   t5, %[6]d
mv_j:
    fld  fa1, 0(t3)
    fld  fa2, 0(t4)
    fmul.d fa1, fa1, fa2
    fadd.d fa0, fa0, fa1
    addi t3, t3, 8
    addi t4, t4, 8
    subi t5, t5, 1
    bnez t5, mv_j
    slli t6, t0, 3
    add  t6, a1, t6
    fsd  fa0, 0(t6)
    addi t0, t0, 1
    li   t1, %[6]d
    blt  t0, t1, mv_i
    ret

# dot: fa0 = a0 . a1
dot:
    fcvt.d.w fa0, zero
    li   t0, %[6]d
    mv   t1, a0
    mv   t2, a1
dot_l:
    fld  fa1, 0(t1)
    fld  fa2, 0(t2)
    fmul.d fa1, fa1, fa2
    fadd.d fa0, fa0, fa1
    addi t1, t1, 8
    addi t2, t2, 8
    subi t0, t0, 1
    bnez t0, dot_l
    ret
`+verifyRoutines,
		n*8, n*n*8, n, cgSeed, xorshiftGen("s2", "t0"), n, maxIter)
	return finish("cg", "S", "Verification checking", src)
}

// cgReference mirrors the MRV CG program; it returns the solution vector
// and whether in-program verification passes.
func cgReference(scale Scale) ([]float64, bool) {
	n, maxIter := cgParams(scale)
	const uscale = 9.5367431640625e-07
	seed := uint32(cgSeed)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			seed = xorshift32(seed)
			u := float64(int32(seed&0xfffff)) * uscale
			if i == j {
				u += float64(n)
			}
			a[i*n+j] = u
			a[j*n+i] = u
		}
	}
	matvec := func(src, dst []float64) {
		for i := 0; i < n; i++ {
			acc := 0.0
			for j := 0; j < n; j++ {
				acc += a[i*n+j] * src[j]
			}
			dst[i] = acc
		}
	}
	dot := func(x, y []float64) float64 {
		acc := 0.0
		for i := range x {
			acc += x[i] * y[i]
		}
		return acc
	}
	b := make([]float64, n)
	x := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range b {
		b[i], r[i], p[i] = 1, 1, 1
	}
	rho := dot(r, r)
	for it := 0; it < maxIter; it++ {
		matvec(p, q)
		alpha := rho / dot(p, q)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rho2 := dot(r, r)
		if rho2 < 1e-24 {
			break
		}
		beta := rho2 / rho
		rho = rho2
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	matvec(x, q)
	err := 0.0
	for i := range b {
		d := b[i] - q[i]
		err += d * d
	}
	return x, err < 1e-16
}
