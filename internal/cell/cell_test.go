package cell

import "testing"

// allInputs enumerates every boolean assignment of width n.
func allInputs(n int) [][]bool {
	total := 1 << uint(n)
	out := make([][]bool, total)
	for v := 0; v < total; v++ {
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			in[i] = v>>uint(i)&1 == 1
		}
		out[v] = in
	}
	return out
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestTruthTables(t *testing.T) {
	lib := Default()
	cases := []struct {
		kind Kind
		want func(in []bool) bool
	}{
		{Inv, func(in []bool) bool { return !in[0] }},
		{Buf, func(in []bool) bool { return in[0] }},
		{Nand2, func(in []bool) bool { return !(in[0] && in[1]) }},
		{Nor2, func(in []bool) bool { return !(in[0] || in[1]) }},
		{And2, func(in []bool) bool { return in[0] && in[1] }},
		{Or2, func(in []bool) bool { return in[0] || in[1] }},
		{Xor2, func(in []bool) bool { return in[0] != in[1] }},
		{Xnor2, func(in []bool) bool { return in[0] == in[1] }},
		{Mux2, func(in []bool) bool {
			if in[2] {
				return in[1]
			}
			return in[0]
		}},
		{Aoi21, func(in []bool) bool { return !((in[0] && in[1]) || in[2]) }},
		{Oai21, func(in []bool) bool { return !((in[0] || in[1]) && in[2]) }},
		{And3, func(in []bool) bool { return in[0] && in[1] && in[2] }},
		{Or3, func(in []bool) bool { return in[0] || in[1] || in[2] }},
		{Nand3, func(in []bool) bool { return !(in[0] && in[1] && in[2]) }},
		{Nor3, func(in []bool) bool { return !(in[0] || in[1] || in[2]) }},
	}
	for _, tc := range cases {
		c := lib.Cell(tc.kind)
		for _, in := range allInputs(c.Inputs) {
			if got, want := c.Op.EvalSlice(in), tc.want(in); got != want {
				t.Errorf("%v%v = %v, want %v", tc.kind, in, got, want)
			}
		}
	}
}

func TestAdderCells(t *testing.T) {
	lib := Default()
	ha := lib.Cell(HA)
	haCarry := CarryOp(HA)
	for _, in := range allInputs(2) {
		total := b2i(in[0]) + b2i(in[1])
		if got := b2i(ha.Op.EvalSlice(in)); got != total&1 {
			t.Errorf("HA sum%v = %d", in, got)
		}
		if got := b2i(haCarry.EvalSlice(in)); got != total>>1 {
			t.Errorf("HA carry%v = %d", in, got)
		}
	}
	fa := lib.Cell(FA)
	faCarry := CarryOp(FA)
	for _, in := range allInputs(3) {
		total := b2i(in[0]) + b2i(in[1]) + b2i(in[2])
		if got := b2i(fa.Op.EvalSlice(in)); got != total&1 {
			t.Errorf("FA sum%v = %d", in, got)
		}
		if got := b2i(faCarry.EvalSlice(in)); got != total>>1 {
			t.Errorf("FA carry%v = %d", in, got)
		}
	}
}

func TestCarryVariantsOnlyForAdders(t *testing.T) {
	if CarryOp(And2) != OpNone || CarryDelays(Xor2) != nil {
		t.Fatal("carry variants must be absent for non-adder cells")
	}
	if CarryOp(FA) == OpNone || CarryDelays(HA) == nil {
		t.Fatal("adder cells must have carry variants")
	}
}

func TestDelaysPositiveAndComplete(t *testing.T) {
	lib := Default()
	for k := Kind(0); k < numKinds; k++ {
		c := lib.Cell(k)
		if c.Kind != k {
			t.Fatalf("cell %v stored under wrong kind %v", k, c.Kind)
		}
		if len(c.Delays) == 0 {
			t.Fatalf("%v has no delays", k)
		}
		for pin, d := range c.Delays {
			if d.Rise <= 0 || d.Fall <= 0 {
				t.Fatalf("%v pin %d has non-positive delay %+v", k, pin, d)
			}
		}
		if c.Energy <= 0 {
			t.Fatalf("%v has non-positive energy", k)
		}
	}
}

func TestCarryFasterThanSum(t *testing.T) {
	// In the FA/HA compound cells the carry output skips the second XOR
	// stage and must be faster; the multiplier's delay profile depends on
	// this ratio.
	lib := Default()
	for _, k := range []Kind{HA, FA} {
		sum := lib.Cell(k).Delays
		carry := CarryDelays(k)
		if len(sum) != len(carry) {
			t.Fatalf("%v pin-count mismatch", k)
		}
		for pin := range sum {
			if carry[pin].Max() >= sum[pin].Max() {
				t.Fatalf("%v pin %d: carry %.0f not faster than sum %.0f",
					k, pin, carry[pin].Max(), sum[pin].Max())
			}
		}
	}
}

func TestComplexCellsSlowerThanSimple(t *testing.T) {
	lib := Default()
	if lib.Cell(Xor2).Delays[0].Max() <= lib.Cell(Nand2).Delays[0].Max() {
		t.Fatal("XOR2 should be slower than NAND2")
	}
	if lib.Cell(FA).Delays[0].Max() <= lib.Cell(Xor2).Delays[0].Max() {
		t.Fatal("FA sum should be slower than XOR2")
	}
}

func TestSequentialParameters(t *testing.T) {
	lib := Default()
	if lib.ClockToQ <= 0 || lib.Setup <= 0 {
		t.Fatal("register parameters must be positive")
	}
	if lib.Cell(DFF).Op != OpNone {
		t.Fatal("DFF must not have a combinational opcode")
	}
}

func TestPinDelayMax(t *testing.T) {
	if (PinDelay{Rise: 3, Fall: 5}).Max() != 5 {
		t.Fatal("Max should pick fall")
	}
	if (PinDelay{Rise: 7, Fall: 5}).Max() != 7 {
		t.Fatal("Max should pick rise")
	}
}

func TestKindString(t *testing.T) {
	if Inv.String() != "INV" || FA.String() != "FA" || DFF.String() != "DFF" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}
