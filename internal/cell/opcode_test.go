package cell

import "testing"

func TestOpcodeWordMatchesScalar(t *testing.T) {
	// Every 64-wide kernel must agree lane-by-lane with the scalar
	// function over the full truth table, replicated across all lanes.
	for op := OpCode(1); op < NumOpCodes; op++ {
		n := op.Arity()
		for _, in := range allInputs(n) {
			var a, b, c bool
			var wa, wb, wc uint64
			bit := func(v bool) uint64 {
				if v {
					return ^uint64(0)
				}
				return 0
			}
			switch n {
			case 3:
				c = in[2]
				wc = bit(c)
				fallthrough
			case 2:
				b = in[1]
				wb = bit(b)
				fallthrough
			case 1:
				a = in[0]
				wa = bit(a)
			}
			want := bit(op.Eval(a, b, c))
			if got := op.EvalWord(wa, wb, wc); got != want {
				t.Fatalf("%v%v: word %016x want %016x", op, in, got, want)
			}
			if got := op.EvalSlice(in); got != op.Eval(a, b, c) {
				t.Fatalf("%v%v: EvalSlice disagrees with Eval", op, in)
			}
		}
	}
}

func TestOpcodeWordMixedLanes(t *testing.T) {
	// Lanes must be fully independent: drive each input with a distinct
	// lane pattern and check every lane against the scalar function.
	a, b, c := uint64(0xA5A5_5A5A_F00F_0FF0), uint64(0x3C3C_C3C3_1234_5678), uint64(0xFFFF_0000_AAAA_5555)
	for op := OpCode(1); op < NumOpCodes; op++ {
		got := op.EvalWord(a, b, c)
		for lane := 0; lane < 64; lane++ {
			la := a>>uint(lane)&1 == 1
			lb := b>>uint(lane)&1 == 1
			lc := c>>uint(lane)&1 == 1
			want := op.Eval(la, lb, lc)
			if (got>>uint(lane)&1 == 1) != want {
				t.Fatalf("%v lane %d: got %v want %v", op, lane, !want, want)
			}
		}
	}
}

func TestOpcodeArityMatchesCells(t *testing.T) {
	lib := Default()
	for k := Kind(0); k < numKinds; k++ {
		if k == DFF {
			continue
		}
		c := lib.Cell(k)
		if c.Op.Arity() != c.Inputs {
			t.Fatalf("%v: opcode %v arity %d, cell has %d inputs", k, c.Op, c.Op.Arity(), c.Inputs)
		}
		if carry := CarryOp(k); carry != OpNone && carry.Arity() != c.Inputs {
			t.Fatalf("%v: carry opcode %v arity mismatch", k, carry)
		}
	}
	if lib.MaxFanIn() != 3 {
		t.Fatalf("default library MaxFanIn = %d, want 3", lib.MaxFanIn())
	}
}

func TestOpcodeString(t *testing.T) {
	if OpXor3.String() != "XOR3" || OpNone.String() != "NONE" {
		t.Fatal("opcode names wrong")
	}
	if OpCode(200).String() == "" {
		t.Fatal("unknown opcode should still format")
	}
}
