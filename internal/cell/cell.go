// Package cell defines the standard-cell library the gate-level circuits
// are built from. It substitutes for the NanGate 45nm CCS library of the
// paper's flow: each cell carries a logic function, per-input-pin
// rise/fall propagation delays at the nominal corner, and a per-transition
// dynamic energy. Re-characterization at a reduced supply voltage is a
// uniform delay inflation supplied by internal/vscale (the alpha-power
// law), exactly the quantity the paper obtains from SiliconSmart.
package cell

import "fmt"

// Kind identifies a cell in the library.
type Kind uint8

// The library cells. FA/HA are the compound adder cells present in real
// standard-cell libraries (e.g. NanGate FA_X1/HA_X1); using them keeps the
// generated arithmetic netlists at realistic gate counts.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Xnor2
	Mux2 // inputs: D0, D1, S; output: S ? D1 : D0
	Aoi21
	Oai21
	And3
	Or3
	Nand3
	Nor3
	HA // half adder; 2 inputs, outputs Sum, Cout (instantiated per-output)
	FA // full adder; 3 inputs, outputs Sum, Cout (instantiated per-output)
	DFF
	numKinds
)

var kindNames = [numKinds]string{
	"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2", "MUX2",
	"AOI21", "OAI21", "AND3", "OR3", "NAND3", "NOR3", "HA", "FA", "DFF",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PinDelay is the propagation delay from one input pin to the output, in
// picoseconds, split by output transition direction.
type PinDelay struct {
	Rise float64
	Fall float64
}

// Max returns the worse of the rise/fall delays (used by STA).
func (d PinDelay) Max() float64 {
	if d.Rise > d.Fall {
		return d.Rise
	}
	return d.Fall
}

// Cell describes one library cell.
type Cell struct {
	Kind Kind
	// Inputs is the number of data input pins (clock excluded for DFF).
	Inputs int
	// Delays holds per-input-pin propagation delay to the output. For DFF
	// it holds a single entry: the clock-to-Q delay.
	Delays []PinDelay
	// Energy is the dynamic energy per output transition, femtojoules, at
	// the nominal corner.
	Energy float64
	// Op is the combinational function (for HA/FA, the sum-output
	// function; the carry variant comes from CarryOp). OpNone for DFF.
	Op OpCode
}

// Library is a fixed set of characterized cells.
type Library struct {
	// Name labels the library ("teva45").
	Name string
	// ClockToQ is the DFF clock-to-output delay, ps.
	ClockToQ float64
	// Setup is the DFF setup time, ps. A data arrival later than
	// CLK - Setup is a timing violation even if it beats the edge.
	Setup float64
	cells [numKinds]Cell
}

// Cell returns the library cell of the given kind.
func (l *Library) Cell(k Kind) *Cell { return &l.cells[k] }

// MaxFanIn returns the widest data-pin count of any combinational cell in
// the library. Compiled-circuit consumers size their per-gate input slots
// from this instead of hard-coding a width, so adding a wider cell widens
// the simulators automatically (and netlist validation rejects any gate
// whose pin count disagrees with its opcode's arity).
func (l *Library) MaxFanIn() int {
	max := 1
	for k := Kind(0); k < numKinds; k++ {
		if k == DFF {
			continue
		}
		if n := l.cells[k].Inputs; n > max {
			max = n
		}
	}
	return max
}

// Default returns the repository's 45nm-class typical-corner library.
// Delay values are representative X1-drive figures (ps) with realistic
// ratios between simple and complex cells; the absolute unit only sets the
// CLK scale, which is calibrated in internal/fpu.
func Default() *Library {
	l := &Library{Name: "teva45", ClockToQ: 85, Setup: 35}
	def := func(k Kind, inputs int, energy float64, op OpCode, delays ...PinDelay) {
		if len(delays) != inputs {
			panic(fmt.Sprintf("cell: %v has %d inputs but %d delays", k, inputs, len(delays)))
		}
		if op.Arity() != inputs {
			panic(fmt.Sprintf("cell: %v has %d inputs but opcode %v has arity %d", k, inputs, op, op.Arity()))
		}
		l.cells[k] = Cell{Kind: k, Inputs: inputs, Delays: delays, Energy: energy, Op: op}
	}
	d := func(r, f float64) PinDelay { return PinDelay{Rise: r, Fall: f} }

	def(Inv, 1, 0.4, OpInv, d(14, 10))
	def(Buf, 1, 0.6, OpBuf, d(28, 26))
	def(Nand2, 2, 0.7, OpNand2, d(16, 14), d(18, 15))
	def(Nor2, 2, 0.8, OpNor2, d(22, 12), d(24, 13))
	def(And2, 2, 1.0, OpAnd2, d(30, 28), d(32, 29))
	def(Or2, 2, 1.1, OpOr2, d(32, 30), d(34, 31))
	def(Xor2, 2, 1.8, OpXor2, d(42, 40), d(45, 43))
	def(Xnor2, 2, 1.8, OpXnor2, d(43, 41), d(46, 44))
	def(Mux2, 3, 1.5, OpMux2, d(34, 32), d(34, 32), d(40, 38))
	def(Aoi21, 3, 1.0, OpAoi21, d(26, 20), d(27, 21), d(22, 16))
	def(Oai21, 3, 1.0, OpOai21, d(27, 21), d(28, 22), d(23, 17))
	def(And3, 3, 1.3, OpAnd3, d(36, 33), d(38, 35), d(40, 37))
	def(Or3, 3, 1.4, OpOr3, d(38, 35), d(40, 37), d(42, 39))
	def(Nand3, 3, 0.9, OpNand3, d(20, 17), d(22, 19), d(24, 21))
	def(Nor3, 3, 1.0, OpNor3, d(28, 15), d(30, 16), d(32, 17))
	// HA/FA are instantiated once per output bit; the opcode here is the
	// Sum function, and the netlist builder requests the carry variant via
	// CarryOp.
	def(HA, 2, 1.9, OpXor2, d(44, 42), d(46, 44))
	def(FA, 3, 3.0, OpXor3, d(56, 53), d(58, 55), d(48, 45))
	// DFF: single "delay" entry is clock-to-Q; no combinational function.
	l.cells[DFF] = Cell{Kind: DFF, Inputs: 1, Delays: []PinDelay{d(l.ClockToQ, l.ClockToQ)}, Energy: 2.4}
	return l
}

// CarryOp returns the carry-output opcode for HA/FA cells, or OpNone for
// other kinds.
func CarryOp(k Kind) OpCode {
	switch k {
	case HA:
		return OpAnd2
	case FA:
		return OpMaj3
	default:
		return OpNone
	}
}

// CarryDelays returns per-pin delays for the carry output of HA/FA, which
// is faster than the sum output (no second XOR stage).
func CarryDelays(k Kind) []PinDelay {
	switch k {
	case HA:
		return []PinDelay{{Rise: 30, Fall: 28}, {Rise: 32, Fall: 30}}
	case FA:
		return []PinDelay{{Rise: 38, Fall: 35}, {Rise: 40, Fall: 37}, {Rise: 34, Fall: 31}}
	default:
		return nil
	}
}
