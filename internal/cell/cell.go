// Package cell defines the standard-cell library the gate-level circuits
// are built from. It substitutes for the NanGate 45nm CCS library of the
// paper's flow: each cell carries a logic function, per-input-pin
// rise/fall propagation delays at the nominal corner, and a per-transition
// dynamic energy. Re-characterization at a reduced supply voltage is a
// uniform delay inflation supplied by internal/vscale (the alpha-power
// law), exactly the quantity the paper obtains from SiliconSmart.
package cell

import "fmt"

// Kind identifies a cell in the library.
type Kind uint8

// The library cells. FA/HA are the compound adder cells present in real
// standard-cell libraries (e.g. NanGate FA_X1/HA_X1); using them keeps the
// generated arithmetic netlists at realistic gate counts.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Xnor2
	Mux2 // inputs: D0, D1, S; output: S ? D1 : D0
	Aoi21
	Oai21
	And3
	Or3
	Nand3
	Nor3
	HA // half adder; 2 inputs, outputs Sum, Cout (instantiated per-output)
	FA // full adder; 3 inputs, outputs Sum, Cout (instantiated per-output)
	DFF
	numKinds
)

var kindNames = [numKinds]string{
	"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2", "MUX2",
	"AOI21", "OAI21", "AND3", "OR3", "NAND3", "NOR3", "HA", "FA", "DFF",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PinDelay is the propagation delay from one input pin to the output, in
// picoseconds, split by output transition direction.
type PinDelay struct {
	Rise float64
	Fall float64
}

// Max returns the worse of the rise/fall delays (used by STA).
func (d PinDelay) Max() float64 {
	if d.Rise > d.Fall {
		return d.Rise
	}
	return d.Fall
}

// Cell describes one library cell.
type Cell struct {
	Kind Kind
	// Inputs is the number of data input pins (clock excluded for DFF).
	Inputs int
	// Delays holds per-input-pin propagation delay to the output. For DFF
	// it holds a single entry: the clock-to-Q delay.
	Delays []PinDelay
	// Energy is the dynamic energy per output transition, femtojoules, at
	// the nominal corner.
	Energy float64
	// Eval computes the combinational function. It is nil for DFF.
	Eval func(in []bool) bool
	// Sum selects the Sum output function for HA/FA when instantiated for
	// the sum bit; see Library.Function. Unused elsewhere.
}

// Library is a fixed set of characterized cells.
type Library struct {
	// Name labels the library ("teva45").
	Name string
	// ClockToQ is the DFF clock-to-output delay, ps.
	ClockToQ float64
	// Setup is the DFF setup time, ps. A data arrival later than
	// CLK - Setup is a timing violation even if it beats the edge.
	Setup float64
	cells [numKinds]Cell
}

// Cell returns the library cell of the given kind.
func (l *Library) Cell(k Kind) *Cell { return &l.cells[k] }

// Default returns the repository's 45nm-class typical-corner library.
// Delay values are representative X1-drive figures (ps) with realistic
// ratios between simple and complex cells; the absolute unit only sets the
// CLK scale, which is calibrated in internal/fpu.
func Default() *Library {
	l := &Library{Name: "teva45", ClockToQ: 85, Setup: 35}
	def := func(k Kind, inputs int, energy float64, eval func(in []bool) bool, delays ...PinDelay) {
		if len(delays) != inputs {
			panic(fmt.Sprintf("cell: %v has %d inputs but %d delays", k, inputs, len(delays)))
		}
		l.cells[k] = Cell{Kind: k, Inputs: inputs, Delays: delays, Energy: energy, Eval: eval}
	}
	d := func(r, f float64) PinDelay { return PinDelay{Rise: r, Fall: f} }

	def(Inv, 1, 0.4, func(in []bool) bool { return !in[0] }, d(14, 10))
	def(Buf, 1, 0.6, func(in []bool) bool { return in[0] }, d(28, 26))
	def(Nand2, 2, 0.7, func(in []bool) bool { return !(in[0] && in[1]) },
		d(16, 14), d(18, 15))
	def(Nor2, 2, 0.8, func(in []bool) bool { return !(in[0] || in[1]) },
		d(22, 12), d(24, 13))
	def(And2, 2, 1.0, func(in []bool) bool { return in[0] && in[1] },
		d(30, 28), d(32, 29))
	def(Or2, 2, 1.1, func(in []bool) bool { return in[0] || in[1] },
		d(32, 30), d(34, 31))
	def(Xor2, 2, 1.8, func(in []bool) bool { return in[0] != in[1] },
		d(42, 40), d(45, 43))
	def(Xnor2, 2, 1.8, func(in []bool) bool { return in[0] == in[1] },
		d(43, 41), d(46, 44))
	def(Mux2, 3, 1.5, func(in []bool) bool {
		if in[2] {
			return in[1]
		}
		return in[0]
	}, d(34, 32), d(34, 32), d(40, 38))
	def(Aoi21, 3, 1.0, func(in []bool) bool { return !((in[0] && in[1]) || in[2]) },
		d(26, 20), d(27, 21), d(22, 16))
	def(Oai21, 3, 1.0, func(in []bool) bool { return !((in[0] || in[1]) && in[2]) },
		d(27, 21), d(28, 22), d(23, 17))
	def(And3, 3, 1.3, func(in []bool) bool { return in[0] && in[1] && in[2] },
		d(36, 33), d(38, 35), d(40, 37))
	def(Or3, 3, 1.4, func(in []bool) bool { return in[0] || in[1] || in[2] },
		d(38, 35), d(40, 37), d(42, 39))
	def(Nand3, 3, 0.9, func(in []bool) bool { return !(in[0] && in[1] && in[2]) },
		d(20, 17), d(22, 19), d(24, 21))
	def(Nor3, 3, 1.0, func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
		d(28, 15), d(30, 16), d(32, 17))
	// HA/FA are instantiated once per output bit; the Eval below is the
	// Sum function, and the netlist builder requests the carry variant via
	// CarryEval.
	def(HA, 2, 1.9, func(in []bool) bool { return in[0] != in[1] },
		d(44, 42), d(46, 44))
	def(FA, 3, 3.0, func(in []bool) bool { return in[0] != in[1] != in[2] },
		d(56, 53), d(58, 55), d(48, 45))
	// DFF: single "delay" entry is clock-to-Q; Eval nil.
	l.cells[DFF] = Cell{Kind: DFF, Inputs: 1, Delays: []PinDelay{d(l.ClockToQ, l.ClockToQ)}, Energy: 2.4}
	return l
}

// CarryEval returns the carry-output function for HA/FA cells, or nil for
// other kinds.
func CarryEval(k Kind) func(in []bool) bool {
	switch k {
	case HA:
		return func(in []bool) bool { return in[0] && in[1] }
	case FA:
		return func(in []bool) bool {
			return (in[0] && in[1]) || (in[2] && (in[0] != in[1]))
		}
	default:
		return nil
	}
}

// CarryDelays returns per-pin delays for the carry output of HA/FA, which
// is faster than the sum output (no second XOR stage).
func CarryDelays(k Kind) []PinDelay {
	switch k {
	case HA:
		return []PinDelay{{Rise: 30, Fall: 28}, {Rise: 32, Fall: 30}}
	case FA:
		return []PinDelay{{Rise: 38, Fall: 35}, {Rise: 40, Fall: 37}, {Rise: 34, Fall: 31}}
	default:
		return nil
	}
}
