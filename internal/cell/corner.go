package cell

import (
	"fmt"

	"teva/internal/vscale"
)

// Corner is one operating point of the characterized library: a supply
// voltage, a junction temperature, and a process speed multiplier. It is
// the unit of re-characterization — a compiled netlist is analyzed at a
// corner by derating its nominal delays (alpha-power law for voltage,
// linear coefficient for temperature, direct multiplier for process)
// without being rebuilt, mirroring how SiliconSmart re-characterizes a
// .lib per PVT point without touching the gate-level design.
//
// Zero values mean "nominal": Voltage 0 is the model's nominal supply,
// TempC 0 is the 25C characterization temperature, Process 0 (or 1) is
// the typical-speed die. Nominal() is therefore the zero Corner with a
// name.
type Corner struct {
	// Name labels the corner in reports and cache keys ("nominal",
	// "VR15", "hot-slow", ...).
	Name string
	// Voltage is the supply in volts (0: nominal supply).
	Voltage float64
	// TempC is the junction temperature in Celsius (0: the nominal 25C
	// characterization point).
	TempC float64
	// Process is the process delay multiplier (0 or 1: typical; >1 slow
	// corner, <1 fast corner).
	Process float64
}

// Nominal returns the library's characterization corner.
func Nominal() Corner { return Corner{Name: "nominal"} }

// Label returns the corner's display name, deriving one from the
// parameters when Name is empty.
func (co Corner) Label() string {
	if co.Name != "" {
		return co.Name
	}
	return fmt.Sprintf("v%.3g-t%.3g-p%.3g", co.Voltage, co.TempC, co.process())
}

func (co Corner) process() float64 {
	if co.Process == 0 {
		return 1
	}
	return co.Process
}

// DelayScale returns the corner's multiplicative delay inflation under a
// technology model: the product of the alpha-power voltage scale, the
// linear temperature scale, and the process multiplier. DelayScale of the
// nominal corner is exactly 1.
func (co Corner) DelayScale(m vscale.Model) float64 {
	s := co.process()
	if co.Voltage > 0 {
		s *= m.DelayScale(co.Voltage)
	}
	if co.TempC != 0 {
		s *= m.TemperatureScale(co.TempC)
	}
	return s
}

// Derate is DelayScale under the repository's default 45nm model — the
// model every other layer (core, dta, vscale corners) runs with.
func (co Corner) Derate() float64 {
	return co.DelayScale(vscale.Default45nm())
}

// AtReduction builds a corner at a fractional supply reduction of the
// model's nominal voltage (0.15 → the paper's VR15 band), at nominal
// temperature and typical process.
func AtReduction(name string, m vscale.Model, fraction float64) Corner {
	return Corner{Name: name, Voltage: m.SupplyAtReduction(fraction)}
}
