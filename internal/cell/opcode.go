package cell

import "fmt"

// OpCode identifies a combinational logic function. It replaces the old
// per-gate Eval closure: a placed gate carries an opcode, and every
// simulation engine dispatches on it with a branch-predictable switch
// instead of an indirect call. Each opcode has a fixed arity; compound
// cells that drive two outputs (HA, FA) are placed as two gates with
// distinct opcodes (sum and carry functions).
type OpCode uint8

// The opcode set. OpNone is the invalid zero value so an unset opcode
// fails netlist validation loudly.
const (
	OpNone  OpCode = iota
	OpBuf          // a
	OpInv          // !a
	OpAnd2         // a & b
	OpOr2          // a | b
	OpNand2        // !(a & b)
	OpNor2         // !(a | b)
	OpXor2         // a ^ b        (also the HA sum function)
	OpXnor2        // !(a ^ b)
	OpMux2         // c ? b : a    (pins: D0, D1, S)
	OpAoi21        // !((a & b) | c)
	OpOai21        // !((a | b) & c)
	OpAnd3         // a & b & c
	OpOr3          // a | b | c
	OpNand3        // !(a & b & c)
	OpNor3         // !(a | b | c)
	OpXor3         // a ^ b ^ c    (the FA sum function)
	OpMaj3         // majority     (the FA carry function)
	NumOpCodes
)

var opNames = [NumOpCodes]string{
	"NONE", "BUF", "INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2",
	"MUX2", "AOI21", "OAI21", "AND3", "OR3", "NAND3", "NOR3", "XOR3", "MAJ3",
}

var opArity = [NumOpCodes]int{
	0, 1, 1, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3,
}

func (op OpCode) String() string {
	if op < NumOpCodes {
		return opNames[op]
	}
	return fmt.Sprintf("OpCode(%d)", uint8(op))
}

// Arity returns the number of input pins the function reads. Netlist
// validation requires every gate's pin count to equal its opcode's arity,
// so a new wider cell fails at build time instead of corrupting a
// simulation mid-run.
func (op OpCode) Arity() int { return opArity[op] }

// Eval computes the function on scalar inputs. Unused trailing arguments
// (beyond Arity) are ignored, so callers may always pass three values.
func (op OpCode) Eval(a, b, c bool) bool {
	switch op {
	case OpBuf:
		return a
	case OpInv:
		return !a
	case OpAnd2:
		return a && b
	case OpOr2:
		return a || b
	case OpNand2:
		return !(a && b)
	case OpNor2:
		return !(a || b)
	case OpXor2:
		return a != b
	case OpXnor2:
		return a == b
	case OpMux2:
		if c {
			return b
		}
		return a
	case OpAoi21:
		return !((a && b) || c)
	case OpOai21:
		return !((a || b) && c)
	case OpAnd3:
		return a && b && c
	case OpOr3:
		return a || b || c
	case OpNand3:
		return !(a && b && c)
	case OpNor3:
		return !(a || b || c)
	case OpXor3:
		return a != b != c
	case OpMaj3:
		return (a && b) || (c && (a != b))
	}
	panic(fmt.Sprintf("cell: Eval on %v", op))
}

// EvalSlice is Eval over a pin slice, the reference form used by tests
// and non-hot-path callers.
func (op OpCode) EvalSlice(in []bool) bool {
	var a, b, c bool
	switch len(in) {
	case 1:
		a = in[0]
	case 2:
		a, b = in[0], in[1]
	case 3:
		a, b, c = in[0], in[1], in[2]
	default:
		panic(fmt.Sprintf("cell: EvalSlice %v with %d pins", op, len(in)))
	}
	return op.Eval(a, b, c)
}

// EvalWord computes the function bitwise over 64 independent lanes: bit L
// of each word is input/output lane L (LSB = lane 0). This is the kernel
// of the 64-wide bit-parallel golden engine.
func (op OpCode) EvalWord(a, b, c uint64) uint64 {
	switch op {
	case OpBuf:
		return a
	case OpInv:
		return ^a
	case OpAnd2:
		return a & b
	case OpOr2:
		return a | b
	case OpNand2:
		return ^(a & b)
	case OpNor2:
		return ^(a | b)
	case OpXor2:
		return a ^ b
	case OpXnor2:
		return ^(a ^ b)
	case OpMux2:
		return (a &^ c) | (b & c)
	case OpAoi21:
		return ^((a & b) | c)
	case OpOai21:
		return ^((a | b) & c)
	case OpAnd3:
		return a & b & c
	case OpOr3:
		return a | b | c
	case OpNand3:
		return ^(a & b & c)
	case OpNor3:
		return ^(a | b | c)
	case OpXor3:
		return a ^ b ^ c
	case OpMaj3:
		return (a & b) | (c & (a ^ b))
	}
	panic(fmt.Sprintf("cell: EvalWord on %v", op))
}
