// Package sta performs static timing analysis on netlists as a two-pass
// engine: a forward pass propagates worst-case arrival times from the
// launching registers, and a backward pass propagates required times from
// the capturing registers, so every net carries a real slack
// (Slack = Required − Arrival), not just the endpoints. On top of the two
// passes sit clock-period determination (Eq. 1 of the paper), slack
// histograms, and enumeration of the K longest register-to-register paths
// (the analysis behind the paper's Figure 4). Analysis runs on the
// compiled flat IR (netlist.Compiled), the same substrate the simulation
// engines use, and schedules by the IR's precomputed topological levels:
// gates within a level are independent, so both passes fan wide levels
// out over a bounded worker pool. Each gate's value is computed by
// exactly one worker with a fixed pin-iteration order, so the report is
// bitwise identical for any worker count.
//
// Path delay follows the paper's convention: D(P) includes the launching
// register's clock-to-output delay and the capturing register's setup time.
//
// AnalyzeCorner re-derates the compiled library at an operating corner
// (voltage, temperature, process; see cell.Corner) without rebuilding the
// netlist: the alpha-power delay scale is applied per pin during both
// passes, which keeps the corner abstraction open for future non-uniform
// derating models.
package sta

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"teva/internal/cell"
	"teva/internal/guard"
	"teva/internal/netlist"
)

// Path is one register-to-register timing path.
type Path struct {
	// Delay is the total path delay, including clock-to-Q and setup, ps.
	Delay float64
	// Nets is the net sequence from the launching input to the endpoint.
	Nets []netlist.NetID
	// Unit is the functional-unit tag of the gate driving the endpoint.
	Unit string
	// Netlist names the circuit the path belongs to.
	Netlist string
}

// Slack returns CLK - Delay for the given clock period.
func (p Path) Slack(clk float64) float64 { return clk - p.Delay }

// Report is the STA result for one netlist.
type Report struct {
	// Netlist names the analyzed circuit.
	Netlist string
	// Corner labels the operating corner the analysis ran at ("nominal"
	// for plain Analyze).
	Corner string
	// Derate is the uniform delay inflation applied to every cell delay
	// (1 at the nominal corner).
	Derate float64
	// WorstDelay is the longest path delay (with clock-to-Q and setup), ps.
	WorstDelay float64
	// EndpointDelay maps each primary output index to its worst delay.
	EndpointDelay []float64
	arrival       []float64 // per net, worst arrival (incl. clock-to-Q)
	toEnd         []float64 // per net, longest remaining delay to any endpoint (excl. setup); -Inf when none is reachable
	c             *netlist.Compiled
	clkToQ, setup float64 // derated register parameters
}

// pinDelayMax returns the worse of a pin's rise/fall delays at flat pin
// index pi (gate*stride + pin).
func pinDelayMax(c *netlist.Compiled, pi int) float64 {
	if r, f := c.Rise[pi], c.Fall[pi]; r > f {
		return r
	} else {
		return f
	}
}

// parallelGrain is the minimum level width worth fanning out: below it,
// goroutine handoff costs more than the per-gate arithmetic saves.
const parallelGrain = 512

// forEachLevelGate applies fn to every gate of the half-open schedule
// range [lo, hi), splitting wide ranges across up to workers goroutines.
// Every gate is visited by exactly one worker, so fn may write per-gate
// (or per-output-net) state freely; results are independent of the split
// because each gate's own computation is sequential. Worker panics are
// funneled through the guard barrier and re-raised after the join, so a
// poisoned analysis surfaces exactly like a serial panic would.
func forEachLevelGate(c *netlist.Compiled, lo, hi int32, workers int, fn func(gi int32)) {
	n := hi - lo
	if workers <= 1 || n < parallelGrain {
		for i := lo; i < hi; i++ {
			fn(c.Levels[i])
		}
		return
	}
	chunks := int32(workers)
	if chunks > n {
		chunks = n
	}
	var wg sync.WaitGroup
	var sink guard.Sink
	for w := int32(0); w < chunks; w++ {
		first := lo + n*w/chunks
		last := lo + n*(w+1)/chunks
		guard.Go(&wg, &sink, fmt.Sprintf("sta level worker %d", w), func() error {
			for i := first; i < last; i++ {
				fn(c.Levels[i])
			}
			return nil
		})
	}
	wg.Wait()
	if err := sink.Join(); err != nil {
		panic(err)
	}
}

// Analyze runs STA on the compiled netlist with the given register timing
// parameters (typically Library.ClockToQ and Library.Setup), using all
// available cores for wide levels. The report is bitwise identical for
// any worker count.
func Analyze(c *netlist.Compiled, clkToQ, setup float64) *Report {
	return analyze(c, clkToQ, setup, 1, "nominal", runtime.GOMAXPROCS(0))
}

// AnalyzeWorkers is Analyze with an explicit worker bound (<= 1: serial).
func AnalyzeWorkers(c *netlist.Compiled, clkToQ, setup float64, workers int) *Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return analyze(c, clkToQ, setup, 1, "nominal", workers)
}

// AnalyzeCorner runs STA with the compiled library re-derated at the
// operating corner: every pin delay, the clock-to-Q delay and the setup
// time are inflated by the corner's alpha-power delay scale (see
// cell.Corner.Derate). The netlist is not rebuilt — derating happens
// during the passes.
func AnalyzeCorner(c *netlist.Compiled, clkToQ, setup float64, corner cell.Corner) *Report {
	return analyze(c, clkToQ, setup, corner.Derate(), corner.Label(), runtime.GOMAXPROCS(0))
}

// passState carries the two-pass engine's per-analysis state. The
// per-gate kernels are named methods (rather than closures inside
// analyze) so the //teva:hotpath annotation can mark them and the
// hotalloc analyzer can prove the level walk allocation-free — analyze
// itself allocates the report arrays once up front and is deliberately
// outside the hot set.
type passState struct {
	c        *netlist.Compiled
	stride   int
	derate   float64
	arrival  []float64
	toEnd    []float64
	isOutput []bool
}

// forward computes one gate's worst-case output arrival from its already
// final input arrivals (levels ascending make that ordering safe).
//
//teva:hotpath
func (ps *passState) forward(gi int32) {
	c := ps.c
	base := int(gi) * ps.stride
	worst := math.Inf(-1)
	ni := int(c.NumIn[gi])
	for pin := 0; pin < ni; pin++ {
		if a := ps.arrival[c.In[base+pin]]; !math.IsInf(a, -1) {
			if t := a + ps.derate*pinDelayMax(c, base+pin); t > worst {
				worst = t
			}
		}
	}
	ps.arrival[c.Out[gi]] = worst
}

// relax computes the longest remaining delay from a net to any endpoint
// from its readers' already-final continuations.
func (ps *passState) relax(net int32) float64 {
	c := ps.c
	best := math.Inf(-1)
	if ps.isOutput[net] {
		best = 0
	}
	for j := c.FanOff[net]; j < c.FanOff[net+1]; j++ {
		g := c.FanGate[j]
		te := ps.toEnd[c.Out[g]]
		if math.IsInf(te, -1) {
			continue
		}
		// Scan every pin of the reader connected to this net (a gate
		// may read the same net on several pins with different
		// delays); the CSR holds one entry per occurrence but always
		// names the first pin, so the scan keeps the bound exact.
		base := int(g) * ps.stride
		ni := int(c.NumIn[g])
		for pin := 0; pin < ni; pin++ {
			if c.In[base+pin] != net {
				continue
			}
			if t := ps.derate*pinDelayMax(c, base+pin) + te; t > best {
				best = t
			}
		}
	}
	return best
}

// backward relaxes one gate's output net (levels descending make every
// continuation it reads final).
//
//teva:hotpath
func (ps *passState) backward(gi int32) {
	out := ps.c.Out[gi]
	ps.toEnd[out] = ps.relax(out)
}

// analyze is the two-pass engine core. derate multiplies every cell delay
// (1 for the nominal corner; note x*1 is exact in IEEE arithmetic, so the
// nominal path is bit-identical to an underate-free walk).
func analyze(c *netlist.Compiled, clkToQ, setup, derate float64, cornerName string, workers int) *Report {
	clkToQ *= derate
	setup *= derate

	// Forward pass: worst arrival per net, levels ascending. A gate reads
	// only nets driven at lower levels (or inputs/constants) and writes
	// only its own output net, so gates within a level are race-free.
	arrival := make([]float64, c.NumNets)
	for i := range arrival {
		arrival[i] = math.Inf(-1)
	}
	arrival[netlist.Const0] = math.Inf(-1) // constants never transition
	arrival[netlist.Const1] = math.Inf(-1)
	for _, in := range c.Inputs {
		arrival[in] = clkToQ
	}
	ps := &passState{c: c, stride: c.Stride, derate: derate, arrival: arrival}
	for l := 0; l < c.NumLevels; l++ {
		forEachLevelGate(c, c.LevelOff[l], c.LevelOff[l+1], workers, ps.forward)
	}

	// Backward pass: longest remaining delay from each net to any
	// endpoint, levels descending. A gate's fanout lives strictly above
	// its own level (a reader's level exceeds every driver's), so when
	// gate gi computes toEnd of its output net, every continuation it
	// reads is already final; it writes only its own output net.
	isOutput := make([]bool, c.NumNets)
	for _, out := range c.Outputs {
		isOutput[out] = true
	}
	toEnd := make([]float64, c.NumNets)
	for i := range toEnd {
		toEnd[i] = math.Inf(-1)
	}
	ps.isOutput = isOutput
	ps.toEnd = toEnd
	for l := c.NumLevels - 1; l >= 0; l-- {
		forEachLevelGate(c, c.LevelOff[l], c.LevelOff[l+1], workers, ps.backward)
	}
	// Primary inputs are driven by no gate; their continuations are all
	// gate outputs, final after the level sweep. Constants stay -Inf:
	// paths never launch from a constant net.
	for _, in := range c.Inputs {
		toEnd[in] = ps.relax(int32(in))
	}

	r := &Report{
		Netlist:       c.Name,
		Corner:        cornerName,
		Derate:        derate,
		EndpointDelay: make([]float64, len(c.Outputs)),
		arrival:       arrival,
		toEnd:         toEnd,
		c:             c,
		clkToQ:        clkToQ,
		setup:         setup,
	}
	for i, out := range c.Outputs {
		d := arrival[out]
		if math.IsInf(d, -1) {
			d = 0 // constant or input-fed-through endpoint
		} else {
			d += setup
		}
		r.EndpointDelay[i] = d
		if d > r.WorstDelay {
			r.WorstDelay = d
		}
	}
	return r
}

// Arrival returns the worst-case arrival time at a net (including
// clock-to-Q), or -Inf when the net is unreachable from any register
// output (constants, dead nets).
func (r *Report) Arrival(net netlist.NetID) float64 { return r.arrival[net] }

// Required returns the backward-pass required time at a net for a clock
// period: the latest arrival that still meets setup at every endpoint the
// net reaches. Nets that reach no endpoint have +Inf required time.
func (r *Report) Required(net netlist.NetID, clk float64) float64 {
	te := r.toEnd[net]
	if math.IsInf(te, -1) {
		return math.Inf(1)
	}
	return clk - r.setup - te
}

// NetSlack returns Required − Arrival at a net: the margin of the worst
// register-to-register path through it. Nets outside any path (constants,
// nets that reach no endpoint) have +Inf slack.
func (r *Report) NetSlack(net netlist.NetID, clk float64) float64 {
	a, te := r.arrival[net], r.toEnd[net]
	if math.IsInf(a, -1) || math.IsInf(te, -1) {
		return math.Inf(1)
	}
	return clk - (a + te + r.setup)
}

// NetSlacks returns the per-net slack vector at a clock period.
func (r *Report) NetSlacks(clk float64) []float64 {
	slacks := make([]float64, len(r.arrival))
	for net := range slacks {
		slacks[net] = r.NetSlack(netlist.NetID(net), clk)
	}
	return slacks
}

// WNS returns the worst negative slack at a clock period: clk −
// WorstDelay, negative when the circuit fails timing. (The name follows
// signoff convention; the value is positive when every path meets clk.)
func (r *Report) WNS(clk float64) float64 { return clk - r.WorstDelay }

// FailingEndpoints counts endpoints with negative slack at a clock period.
func (r *Report) FailingEndpoints(clk float64) int {
	n := 0
	for _, d := range r.EndpointDelay {
		if clk-d < 0 {
			n++
		}
	}
	return n
}

// SlackHistogram returns per-endpoint slacks for a clock period.
func (r *Report) SlackHistogram(clk float64) []float64 {
	slacks := make([]float64, len(r.EndpointDelay))
	for i, d := range r.EndpointDelay {
		slacks[i] = clk - d
	}
	return slacks
}

// ClockPeriod implements Eq. 1 over a set of stage reports: the max worst
// delay across all pipeline stages, optionally padded by a margin factor
// (1.0 = zero-margin signoff, as in the paper's "fastest CLK achieved").
// It panics on an empty report set — a misconfigured pipeline would
// otherwise silently sign off at a 0 ps clock.
func ClockPeriod(reports []*Report, margin float64) float64 {
	if len(reports) == 0 {
		panic("sta: ClockPeriod over an empty report set")
	}
	var clk float64
	for _, r := range reports {
		if r.WorstDelay > clk {
			clk = r.WorstDelay
		}
	}
	return clk * margin
}

// ---------------------------------------------------------------------------
// K-longest-path enumeration

type pathNode struct {
	net  netlist.NetID
	prev *pathNode
}

type searchItem struct {
	// bound = delaySoFar + toEnd(net): the exact best completion.
	bound      float64
	delaySoFar float64
	node       *pathNode
}

type searchHeap []searchItem

func (h searchHeap) Len() int           { return len(h) }
func (h searchHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h searchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *searchHeap) Push(x any)        { *h = append(*h, x.(searchItem)) }
func (h *searchHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TopPaths enumerates the k longest register-to-register paths in
// descending delay order using best-first search with an exact completion
// bound — the backward pass the report already carries, so enumeration
// shares one longest-distance-to-endpoint table with slack reporting
// instead of recomputing its own. The search is exact; a generous
// expansion budget guards against pathological path explosion and is
// reported via the truncated return.
func (r *Report) TopPaths(k int) (paths []Path, truncated bool) {
	c := r.c
	isOutput := make([]bool, c.NumNets)
	for _, out := range c.Outputs {
		isOutput[out] = true
	}
	toEnd := r.toEnd
	stride := c.Stride

	h := &searchHeap{}
	for _, in := range c.Inputs {
		if math.IsInf(toEnd[in], -1) {
			continue
		}
		heap.Push(h, searchItem{
			bound:      toEnd[in],
			delaySoFar: 0,
			node:       &pathNode{net: in},
		})
	}

	budget := 400 * k
	for h.Len() > 0 && len(paths) < k {
		if budget--; budget < 0 {
			truncated = true
			break
		}
		it := heap.Pop(h).(searchItem)
		net := it.node.net
		if isOutput[net] {
			paths = append(paths, r.materialize(it))
		}
		for j := c.FanOff[net]; j < c.FanOff[net+1]; j++ {
			gid := c.FanGate[j]
			out := c.Out[gid]
			base := int(gid) * stride
			ni := int(c.NumIn[gid])
			for pin := 0; pin < ni; pin++ {
				if netlist.NetID(c.In[base+pin]) != net {
					continue
				}
				if math.IsInf(toEnd[out], -1) {
					continue
				}
				d := it.delaySoFar + r.Derate*pinDelayMax(c, base+pin)
				heap.Push(h, searchItem{
					bound:      d + toEnd[out],
					delaySoFar: d,
					node:       &pathNode{net: netlist.NetID(out), prev: it.node},
				})
			}
		}
	}
	return paths, truncated
}

// materialize converts a search item into a Path.
func (r *Report) materialize(it searchItem) Path {
	var nets []netlist.NetID
	for n := it.node; n != nil; n = n.prev {
		nets = append(nets, n.net)
	}
	// Reverse into launch-to-capture order.
	for i, j := 0, len(nets)-1; i < j; i, j = i+1, j-1 {
		nets[i], nets[j] = nets[j], nets[i]
	}
	unit := ""
	if d := r.c.Driver[it.node.net]; d >= 0 {
		unit = r.c.Unit[d]
	}
	return Path{
		Delay:   r.clkToQ + it.delaySoFar + r.setup,
		Nets:    nets,
		Unit:    unit,
		Netlist: r.Netlist,
	}
}

// TopPathsAcross merges the k longest paths across multiple reports
// (e.g. all pipeline stages of all functional units), descending by
// delay. The truncated return is the OR of the per-report truncation
// flags: when set, at least one report hit its expansion budget before
// yielding k paths, so the merged tail may undercount that report's unit.
func TopPathsAcross(reports []*Report, k int) (all []Path, truncated bool) {
	for _, r := range reports {
		p, t := r.TopPaths(k)
		truncated = truncated || t
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Delay > all[j].Delay })
	if len(all) > k {
		all = all[:k]
	}
	return all, truncated
}

// UnitDistribution counts paths per functional-unit tag; the quantity
// plotted in Figure 4.
func UnitDistribution(paths []Path) map[string]int {
	dist := make(map[string]int, 8)
	for _, p := range paths {
		dist[p.Unit]++
	}
	return dist
}

func (p Path) String() string {
	return fmt.Sprintf("%s[%s] %.0fps via %d nets", p.Netlist, p.Unit, p.Delay, len(p.Nets))
}
