// Package sta performs static timing analysis on netlists: worst-case
// arrival per endpoint, clock-period determination (Eq. 1 of the paper),
// slack histograms, and enumeration of the K longest register-to-register
// paths (the analysis behind the paper's Figure 4). Analysis runs on the
// compiled flat IR (netlist.Compiled), the same substrate the simulation
// engines use.
//
// Path delay follows the paper's convention: D(P) includes the launching
// register's clock-to-output delay and the capturing register's setup time.
package sta

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"teva/internal/netlist"
)

// Path is one register-to-register timing path.
type Path struct {
	// Delay is the total path delay, including clock-to-Q and setup, ps.
	Delay float64
	// Nets is the net sequence from the launching input to the endpoint.
	Nets []netlist.NetID
	// Unit is the functional-unit tag of the gate driving the endpoint.
	Unit string
	// Netlist names the circuit the path belongs to.
	Netlist string
}

// Slack returns CLK - Delay for the given clock period.
func (p Path) Slack(clk float64) float64 { return clk - p.Delay }

// Report is the STA result for one netlist.
type Report struct {
	// Netlist names the analyzed circuit.
	Netlist string
	// WorstDelay is the longest path delay (with clock-to-Q and setup), ps.
	WorstDelay float64
	// EndpointDelay maps each primary output index to its worst delay.
	EndpointDelay []float64
	arrival       []float64 // per net, worst arrival (incl. clock-to-Q)
	c             *netlist.Compiled
	clkToQ, setup float64
}

// pinDelayMax returns the worse of a pin's rise/fall delays at flat pin
// index pi (gate*stride + pin).
func pinDelayMax(c *netlist.Compiled, pi int) float64 {
	if r, f := c.Rise[pi], c.Fall[pi]; r > f {
		return r
	} else {
		return f
	}
}

// Analyze runs STA on the compiled netlist with the given register timing
// parameters (typically Library.ClockToQ and Library.Setup).
func Analyze(c *netlist.Compiled, clkToQ, setup float64) *Report {
	arrival := make([]float64, c.NumNets)
	for i := range arrival {
		arrival[i] = math.Inf(-1)
	}
	arrival[netlist.Const0] = math.Inf(-1) // constants never transition
	arrival[netlist.Const1] = math.Inf(-1)
	for _, in := range c.Inputs {
		arrival[in] = clkToQ
	}
	stride := c.Stride
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		worst := math.Inf(-1)
		ni := int(c.NumIn[gi])
		for pin := 0; pin < ni; pin++ {
			if a := arrival[c.In[base+pin]]; !math.IsInf(a, -1) {
				if t := a + pinDelayMax(c, base+pin); t > worst {
					worst = t
				}
			}
		}
		arrival[c.Out[gi]] = worst
	}
	r := &Report{
		Netlist:       c.Name,
		EndpointDelay: make([]float64, len(c.Outputs)),
		arrival:       arrival,
		c:             c,
		clkToQ:        clkToQ,
		setup:         setup,
	}
	for i, out := range c.Outputs {
		d := arrival[out]
		if math.IsInf(d, -1) {
			d = 0 // constant or input-fed-through endpoint
		} else {
			d += setup
		}
		r.EndpointDelay[i] = d
		if d > r.WorstDelay {
			r.WorstDelay = d
		}
	}
	return r
}

// SlackHistogram returns per-endpoint slacks for a clock period.
func (r *Report) SlackHistogram(clk float64) []float64 {
	slacks := make([]float64, len(r.EndpointDelay))
	for i, d := range r.EndpointDelay {
		slacks[i] = clk - d
	}
	return slacks
}

// ClockPeriod implements Eq. 1 over a set of stage reports: the max worst
// delay across all pipeline stages, optionally padded by a margin factor
// (1.0 = zero-margin signoff, as in the paper's "fastest CLK achieved").
func ClockPeriod(reports []*Report, margin float64) float64 {
	var clk float64
	for _, r := range reports {
		if r.WorstDelay > clk {
			clk = r.WorstDelay
		}
	}
	return clk * margin
}

// ---------------------------------------------------------------------------
// K-longest-path enumeration

type pathNode struct {
	net  netlist.NetID
	prev *pathNode
}

type searchItem struct {
	// bound = delaySoFar + bestToEnd(net): the exact best completion.
	bound      float64
	delaySoFar float64
	node       *pathNode
}

type searchHeap []searchItem

func (h searchHeap) Len() int           { return len(h) }
func (h searchHeap) Less(i, j int) bool { return h[i].bound > h[j].bound }
func (h searchHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *searchHeap) Push(x any)        { *h = append(*h, x.(searchItem)) }
func (h *searchHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TopPaths enumerates the k longest register-to-register paths in
// descending delay order using best-first search with an exact
// completion bound (longest-distance-to-endpoint precomputation). The
// search is exact; a generous expansion budget guards against pathological
// path explosion and is reported via the truncated return.
func (r *Report) TopPaths(k int) (paths []Path, truncated bool) {
	c := r.c
	isOutput := make([]bool, c.NumNets)
	for _, out := range c.Outputs {
		isOutput[out] = true
	}
	// bestToEnd[net]: longest delay from net to any endpoint (0 at
	// endpoints), -inf when no endpoint is reachable.
	bestToEnd := make([]float64, c.NumNets)
	for i := range bestToEnd {
		if isOutput[netlist.NetID(i)] {
			bestToEnd[i] = 0
		} else {
			bestToEnd[i] = math.Inf(-1)
		}
	}
	stride := c.Stride
	for gi := c.NumGates - 1; gi >= 0; gi-- {
		out := c.Out[gi]
		if math.IsInf(bestToEnd[out], -1) {
			continue
		}
		base := gi * stride
		ni := int(c.NumIn[gi])
		for pin := 0; pin < ni; pin++ {
			in := netlist.NetID(c.In[base+pin])
			if in == netlist.Const0 || in == netlist.Const1 {
				continue
			}
			if t := pinDelayMax(c, base+pin) + bestToEnd[out]; t > bestToEnd[in] {
				bestToEnd[in] = t
			}
		}
	}

	h := &searchHeap{}
	for _, in := range c.Inputs {
		if math.IsInf(bestToEnd[in], -1) {
			continue
		}
		heap.Push(h, searchItem{
			bound:      bestToEnd[in],
			delaySoFar: 0,
			node:       &pathNode{net: in},
		})
	}

	budget := 400 * k
	for h.Len() > 0 && len(paths) < k {
		if budget--; budget < 0 {
			truncated = true
			break
		}
		it := heap.Pop(h).(searchItem)
		net := it.node.net
		if isOutput[net] {
			paths = append(paths, r.materialize(it))
		}
		for j := c.FanOff[net]; j < c.FanOff[net+1]; j++ {
			gid := c.FanGate[j]
			out := c.Out[gid]
			base := int(gid) * stride
			ni := int(c.NumIn[gid])
			for pin := 0; pin < ni; pin++ {
				if netlist.NetID(c.In[base+pin]) != net {
					continue
				}
				if math.IsInf(bestToEnd[out], -1) {
					continue
				}
				d := it.delaySoFar + pinDelayMax(c, base+pin)
				heap.Push(h, searchItem{
					bound:      d + bestToEnd[out],
					delaySoFar: d,
					node:       &pathNode{net: netlist.NetID(out), prev: it.node},
				})
			}
		}
	}
	return paths, truncated
}

// materialize converts a search item into a Path.
func (r *Report) materialize(it searchItem) Path {
	var nets []netlist.NetID
	for n := it.node; n != nil; n = n.prev {
		nets = append(nets, n.net)
	}
	// Reverse into launch-to-capture order.
	for i, j := 0, len(nets)-1; i < j; i, j = i+1, j-1 {
		nets[i], nets[j] = nets[j], nets[i]
	}
	unit := ""
	if d := r.c.Driver[it.node.net]; d >= 0 {
		unit = r.c.Unit[d]
	}
	return Path{
		Delay:   r.clkToQ + it.delaySoFar + r.setup,
		Nets:    nets,
		Unit:    unit,
		Netlist: r.Netlist,
	}
}

// TopPathsAcross merges the k longest paths across multiple reports
// (e.g. all pipeline stages of all functional units), descending by delay.
func TopPathsAcross(reports []*Report, k int) []Path {
	var all []Path
	for _, r := range reports {
		p, _ := r.TopPaths(k)
		all = append(all, p...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Delay > all[j].Delay })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// UnitDistribution counts paths per functional-unit tag; the quantity
// plotted in Figure 4.
func UnitDistribution(paths []Path) map[string]int {
	dist := make(map[string]int, 8)
	for _, p := range paths {
		dist[p.Unit]++
	}
	return dist
}

func (p Path) String() string {
	return fmt.Sprintf("%s[%s] %.0fps via %d nets", p.Netlist, p.Unit, p.Delay, len(p.Nets))
}
