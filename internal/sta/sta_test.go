package sta_test

import (
	"math"
	"testing"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/netlist"
	"teva/internal/prng"
	"teva/internal/sta"
	"teva/internal/timingsim"
)

var lib = cell.Default()

const (
	clkToQ = 85.0
	setup  = 35.0
)

func TestChainWorstDelay(t *testing.T) {
	b := netlist.NewBuilder("chain", lib, 3)
	x := b.InputNet()
	out := b.BufChain(x, 7)
	b.Output(netlist.Bus{out})
	n := b.MustBuild()
	var want float64
	for _, g := range n.Gates() {
		want += g.Delays[0].Max()
	}
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	if math.Abs(r.WorstDelay-(clkToQ+want+setup)) > 1e-9 {
		t.Fatalf("WorstDelay %v, want %v", r.WorstDelay, clkToQ+want+setup)
	}
	if len(r.EndpointDelay) != 1 || r.EndpointDelay[0] != r.WorstDelay {
		t.Fatalf("endpoint delays %v", r.EndpointDelay)
	}
}

func TestTopPathsChain(t *testing.T) {
	b := netlist.NewBuilder("chain", lib, 3)
	x := b.InputNet()
	out := b.BufChain(x, 7)
	b.Output(netlist.Bus{out})
	n := b.MustBuild()
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	paths, truncated := r.TopPaths(10)
	if truncated {
		t.Fatal("trivial chain should not truncate")
	}
	if len(paths) != 1 {
		t.Fatalf("chain has %d paths, want 1", len(paths))
	}
	if math.Abs(paths[0].Delay-r.WorstDelay) > 1e-9 {
		t.Fatalf("path delay %v vs worst %v", paths[0].Delay, r.WorstDelay)
	}
	if len(paths[0].Nets) != 8 { // input + 7 buffer outputs
		t.Fatalf("path has %d nets", len(paths[0].Nets))
	}
}

func adder(t *testing.T, w int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("adder", lib, 4)
	b.SetUnit("adder")
	x := b.Input(w)
	y := b.Input(w)
	sum, cout := b.RippleAdder(x, y, b.InputNet())
	b.Output(append(append(netlist.Bus{}, sum...), cout))
	return b.MustBuild()
}

func TestTopPathsSortedAndBounded(t *testing.T) {
	n := adder(t, 12)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	paths, _ := r.TopPaths(50)
	if len(paths) != 50 {
		t.Fatalf("got %d paths", len(paths))
	}
	if math.Abs(paths[0].Delay-r.WorstDelay) > 1e-9 {
		t.Fatalf("first path %v != worst delay %v", paths[0].Delay, r.WorstDelay)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Delay > paths[i-1].Delay+1e-9 {
			t.Fatalf("paths not in descending order at %d", i)
		}
	}
	for _, p := range paths {
		if p.Unit != "adder" || p.Netlist != "adder" {
			t.Fatalf("path labels wrong: %+v", p)
		}
		if len(p.Nets) < 2 {
			t.Fatalf("degenerate path %+v", p)
		}
	}
}

func TestPathNetsFormRealPath(t *testing.T) {
	n := adder(t, 8)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	paths, _ := r.TopPaths(20)
	isInput := make(map[netlist.NetID]bool)
	for _, in := range n.Inputs() {
		isInput[in] = true
	}
	isOutput := make(map[netlist.NetID]bool)
	for _, out := range n.Outputs() {
		isOutput[out] = true
	}
	for _, p := range paths {
		if !isInput[p.Nets[0]] {
			t.Fatal("path must start at a primary input")
		}
		if !isOutput[p.Nets[len(p.Nets)-1]] {
			t.Fatal("path must end at a primary output")
		}
		for i := 1; i < len(p.Nets); i++ {
			d := n.Driver(p.Nets[i])
			if d < 0 {
				t.Fatal("path net has no driver")
			}
			found := false
			for _, in := range n.Gate(d).Inputs {
				if in == p.Nets[i-1] {
					found = true
				}
			}
			if !found {
				t.Fatal("consecutive path nets not connected by a gate")
			}
		}
	}
}

func TestSTABoundsDynamicArrival(t *testing.T) {
	// STA must upper-bound every dynamically observed arrival.
	const w = 12
	n := adder(t, w)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	fast := timingsim.NewFast(n.Compiled(), 1.0)
	exact := timingsim.NewExact(n.Compiled(), 1.0)
	src := prng.New(55)
	prev := make([]bool, 2*w+1)
	cur := make([]bool, 2*w+1)
	for trial := 0; trial < 500; trial++ {
		for i := range prev {
			prev[i] = src.Bool()
			cur[i] = src.Bool()
		}
		for _, s := range []*timingsim.Sample{
			fast.Run(prev, cur, clkToQ, timingsim.MaxDeadline),
			exact.Run(prev, cur, clkToQ, timingsim.MaxDeadline),
		} {
			if s.WorstArrival+setup > r.WorstDelay+1e-9 {
				t.Fatalf("dynamic arrival %v exceeds STA bound %v",
					s.WorstArrival+setup, r.WorstDelay)
			}
		}
	}
}

func TestSTACriticalPathIsAchievable(t *testing.T) {
	// For a ripple adder the critical path (full carry propagation) is
	// excitable: driving it dynamically should reach a large fraction of
	// the STA bound. This pins down the pessimism gap.
	const w = 12
	n := adder(t, w)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	fast := timingsim.NewFast(n.Compiled(), 1.0)
	mk := func(x, y, cin uint64) []bool {
		in := make([]bool, 2*w+1)
		logicsim.PackInputs(in, 0, w, x)
		logicsim.PackInputs(in, w, w, y)
		in[2*w] = cin == 1
		return in
	}
	s := fast.Run(mk(1<<w-1, 0, 0), mk(1<<w-1, 0, 1), clkToQ, timingsim.MaxDeadline)
	if s.WorstArrival+setup < 0.7*r.WorstDelay {
		t.Fatalf("full carry chain reaches only %v of STA bound %v",
			s.WorstArrival+setup, r.WorstDelay)
	}
}

func TestSlackHistogram(t *testing.T) {
	n := adder(t, 8)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	clk := r.WorstDelay * 1.1
	slacks := r.SlackHistogram(clk)
	if len(slacks) != len(n.Outputs()) {
		t.Fatalf("slack count %d", len(slacks))
	}
	minSlack := math.Inf(1)
	for _, s := range slacks {
		if s < 0 {
			t.Fatalf("negative slack %v at 10%% margin clock", s)
		}
		if s < minSlack {
			minSlack = s
		}
	}
	if math.Abs(minSlack-(clk-r.WorstDelay)) > 1e-9 {
		t.Fatalf("min slack %v want %v", minSlack, clk-r.WorstDelay)
	}
}

func TestClockPeriod(t *testing.T) {
	n1 := adder(t, 8)
	n2 := adder(t, 16)
	r1 := sta.Analyze(n1.Compiled(), clkToQ, setup)
	r2 := sta.Analyze(n2.Compiled(), clkToQ, setup)
	clk := sta.ClockPeriod([]*sta.Report{r1, r2}, 1.0)
	if clk != r2.WorstDelay {
		t.Fatalf("ClockPeriod %v, want the wider adder's %v", clk, r2.WorstDelay)
	}
	if m := sta.ClockPeriod([]*sta.Report{r1, r2}, 1.05); math.Abs(m-clk*1.05) > 1e-9 {
		t.Fatalf("margin not applied: %v", m)
	}
}

func TestTopPathsAcrossAndUnitDistribution(t *testing.T) {
	b1 := netlist.NewBuilder("fpu", lib, 5)
	b1.SetUnit("fpu/mul")
	x := b1.Input(16)
	y := b1.Input(16)
	s1 := b1.Sum(b1.RippleAdder(x, y, netlist.Const0))
	b1.Output(s1)
	nFPU := b1.MustBuild()

	b2 := netlist.NewBuilder("alu", lib, 6)
	b2.SetUnit("alu")
	a := b2.Input(4)
	c := b2.Input(4)
	s2 := b2.XorBus(a, c)
	b2.Output(s2)
	nALU := b2.MustBuild()

	rFPU := sta.Analyze(nFPU.Compiled(), clkToQ, setup)
	rALU := sta.Analyze(nALU.Compiled(), clkToQ, setup)
	paths, truncated := sta.TopPathsAcross([]*sta.Report{rFPU, rALU}, 30)
	if truncated {
		t.Fatal("small circuits should not hit the enumeration budget")
	}
	if len(paths) != 30 {
		t.Fatalf("got %d paths", len(paths))
	}
	dist := sta.UnitDistribution(paths)
	// All long paths live in the 16-bit adder; the 1-level XOR unit must
	// not appear among the top 30.
	if dist["fpu/mul"] != 30 || dist["alu"] != 0 {
		t.Fatalf("unit distribution %v", dist)
	}
}

func TestConstantFedOutput(t *testing.T) {
	b := netlist.NewBuilder("const", lib, 7)
	x := b.InputNet()
	b.Output(netlist.Bus{netlist.Const0, x})
	n := b.MustBuild()
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	if r.EndpointDelay[0] != 0 {
		t.Fatalf("constant endpoint should have zero delay, got %v", r.EndpointDelay[0])
	}
	if math.Abs(r.EndpointDelay[1]-(clkToQ+setup)) > 1e-9 {
		t.Fatalf("feedthrough endpoint delay %v", r.EndpointDelay[1])
	}
}
