package sta_test

import (
	"math"
	"testing"

	"teva/internal/cell"
	"teva/internal/netlist"
	"teva/internal/sta"
	"teva/internal/vscale"
)

// wideCircuit builds a circuit whose first level is wider than the STA
// parallel grain (512), so AnalyzeWorkers actually fans the level out: 700
// parallel XORs feeding a reduction tree, with the XOR outputs also exposed
// as endpoints so they carry both endpoint and through-path slack.
func wideCircuit(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("wide", lib, 11)
	b.SetUnit("wide")
	const w = 700
	x := b.Input(w)
	y := b.Input(w)
	z := b.XorBus(x, y)
	red := b.ReduceXor(z)
	b.Output(append(append(netlist.Bus{}, z...), red))
	return b.MustBuild()
}

func TestEndpointSlackMatchesEndpointDelay(t *testing.T) {
	// At an endpoint net with no further fanout, the backward pass carries
	// toEnd = 0, so NetSlack must reduce to clk - EndpointDelay exactly.
	n := adder(t, 16)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	clk := r.WorstDelay * 1.2
	for i, out := range n.Outputs() {
		got := r.NetSlack(out, clk)
		want := clk - r.EndpointDelay[i]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("endpoint %d: NetSlack %v, clk-EndpointDelay %v", i, got, want)
		}
	}
}

func TestMinNetSlackEqualsWorstPathSlack(t *testing.T) {
	// The minimum per-net slack is attained on the critical path and must
	// equal the worst-path slack clk - WorstDelay (the report's WNS).
	for _, n := range []*netlist.Netlist{adder(t, 16), wideCircuit(t)} {
		c := n.Compiled()
		r := sta.Analyze(c, clkToQ, setup)
		clk := r.WorstDelay * 1.1
		min := math.Inf(1)
		finite := 0
		for net := 0; net < c.NumNets; net++ {
			if s := r.NetSlack(netlist.NetID(net), clk); !math.IsInf(s, 1) {
				finite++
				if s < min {
					min = s
				}
			}
		}
		if finite == 0 {
			t.Fatalf("%s: no net carries finite slack", c.Name)
		}
		// Forward and backward partial sums associate differently along the
		// critical path, so equality holds to rounding, not bitwise.
		if math.Abs(min-(clk-r.WorstDelay)) > 1e-6 {
			t.Fatalf("%s: min net slack %v, worst-path slack %v",
				c.Name, min, clk-r.WorstDelay)
		}
		if wns := r.WNS(clk); wns != clk-r.WorstDelay {
			t.Fatalf("%s: WNS %v, want %v", c.Name, wns, clk-r.WorstDelay)
		}
	}
}

func TestRequiredArrivalSlackIdentity(t *testing.T) {
	n := wideCircuit(t)
	c := n.Compiled()
	r := sta.Analyze(c, clkToQ, setup)
	clk := r.WorstDelay // zero-margin clock: critical nets have ~0 slack
	for net := 0; net < c.NumNets; net++ {
		id := netlist.NetID(net)
		s := r.NetSlack(id, clk)
		req, arr := r.Required(id, clk), r.Arrival(id)
		if math.IsInf(s, 1) {
			if !math.IsInf(req, 1) && math.IsInf(arr, -1) == false {
				t.Fatalf("net %d: infinite slack but finite required %v and arrival %v", net, req, arr)
			}
			continue
		}
		if math.Abs(s-(req-arr)) > 1e-9 {
			t.Fatalf("net %d: slack %v != required-arrival %v", net, s, req-arr)
		}
	}
}

func TestFailingEndpoints(t *testing.T) {
	n := adder(t, 8)
	r := sta.Analyze(n.Compiled(), clkToQ, setup)
	if got := r.FailingEndpoints(r.WorstDelay); got != 0 {
		t.Fatalf("%d endpoints fail at the zero-margin clock", got)
	}
	if got := r.FailingEndpoints(r.WorstDelay * 0.5); got == 0 {
		t.Fatal("no endpoint fails at half the required clock")
	}
}

func TestReportDeterminismAcrossWorkers(t *testing.T) {
	// The acceptance bar: the report is bitwise identical for any worker
	// count. The wide circuit's 700-gate level exceeds the parallel grain,
	// so workers 4 and 16 genuinely split levels while worker 1 is the
	// serial reference.
	n := wideCircuit(t)
	c := n.Compiled()
	serial := sta.AnalyzeWorkers(c, clkToQ, setup, 1)
	clk := serial.WorstDelay * 1.05
	refPaths, refTrunc := serial.TopPaths(25)
	for _, workers := range []int{4, 16} {
		r := sta.AnalyzeWorkers(c, clkToQ, setup, workers)
		if math.Float64bits(r.WorstDelay) != math.Float64bits(serial.WorstDelay) {
			t.Fatalf("workers=%d: WorstDelay %v != serial %v", workers, r.WorstDelay, serial.WorstDelay)
		}
		for i := range r.EndpointDelay {
			if math.Float64bits(r.EndpointDelay[i]) != math.Float64bits(serial.EndpointDelay[i]) {
				t.Fatalf("workers=%d: endpoint %d delay differs", workers, i)
			}
		}
		for net := 0; net < c.NumNets; net++ {
			id := netlist.NetID(net)
			if math.Float64bits(r.Arrival(id)) != math.Float64bits(serial.Arrival(id)) {
				t.Fatalf("workers=%d: arrival at net %d differs", workers, net)
			}
			if math.Float64bits(r.NetSlack(id, clk)) != math.Float64bits(serial.NetSlack(id, clk)) {
				t.Fatalf("workers=%d: slack at net %d differs", workers, net)
			}
		}
		paths, trunc := r.TopPaths(25)
		if trunc != refTrunc || len(paths) != len(refPaths) {
			t.Fatalf("workers=%d: path enumeration diverged", workers)
		}
		for i := range paths {
			if math.Float64bits(paths[i].Delay) != math.Float64bits(refPaths[i].Delay) {
				t.Fatalf("workers=%d: path %d delay differs", workers, i)
			}
			if len(paths[i].Nets) != len(refPaths[i].Nets) {
				t.Fatalf("workers=%d: path %d net count differs", workers, i)
			}
			for j := range paths[i].Nets {
				if paths[i].Nets[j] != refPaths[i].Nets[j] {
					t.Fatalf("workers=%d: path %d diverges at net %d", workers, i, j)
				}
			}
		}
	}
	// Analyze (GOMAXPROCS workers) must agree with the serial reference too.
	auto := sta.Analyze(c, clkToQ, setup)
	if math.Float64bits(auto.WorstDelay) != math.Float64bits(serial.WorstDelay) {
		t.Fatal("Analyze disagrees with AnalyzeWorkers(1)")
	}
}

func TestAnalyzeCornerDerates(t *testing.T) {
	n := adder(t, 12)
	c := n.Compiled()
	nom := sta.Analyze(c, clkToQ, setup)

	// The nominal corner derates by exactly 1, which is IEEE-exact: the
	// report must be bitwise identical to plain Analyze.
	atNom := sta.AnalyzeCorner(c, clkToQ, setup, cell.Nominal())
	if atNom.Corner != "nominal" || atNom.Derate != 1 {
		t.Fatalf("nominal corner report: corner=%q derate=%v", atNom.Corner, atNom.Derate)
	}
	if math.Float64bits(atNom.WorstDelay) != math.Float64bits(nom.WorstDelay) {
		t.Fatal("nominal corner WorstDelay differs from Analyze")
	}
	for net := 0; net < c.NumNets; net++ {
		id := netlist.NetID(net)
		if math.Float64bits(atNom.Arrival(id)) != math.Float64bits(nom.Arrival(id)) {
			t.Fatalf("nominal corner arrival differs at net %d", net)
		}
	}

	// A reduced-voltage corner inflates every delay uniformly, so the worst
	// delay scales by the derate (to rounding; the per-pin products
	// accumulate in a different order than one final multiply).
	m := vscale.Default45nm()
	vr15 := cell.AtReduction("VR15", m, 0.15)
	scale := vr15.Derate()
	if scale <= 1 {
		t.Fatalf("VR15 derate %v, want > 1", scale)
	}
	r := sta.AnalyzeCorner(c, clkToQ, setup, vr15)
	if r.Corner != "VR15" || r.Derate != scale {
		t.Fatalf("corner report: corner=%q derate=%v want VR15/%v", r.Corner, r.Derate, scale)
	}
	if math.Abs(r.WorstDelay-scale*nom.WorstDelay) > 1e-6*r.WorstDelay {
		t.Fatalf("VR15 WorstDelay %v, want ~%v", r.WorstDelay, scale*nom.WorstDelay)
	}
	// A slow hot corner compounds with voltage.
	hotSlow := cell.Corner{Name: "hot-slow", Voltage: vr15.Voltage, TempC: 85, Process: 1.05}
	if hs := hotSlow.Derate(); hs <= scale {
		t.Fatalf("hot-slow derate %v not above VR15's %v", hs, scale)
	}
	rHS := sta.AnalyzeCorner(c, clkToQ, setup, hotSlow)
	if rHS.WorstDelay <= r.WorstDelay {
		t.Fatalf("hot-slow WorstDelay %v not above VR15's %v", rHS.WorstDelay, r.WorstDelay)
	}
}

func TestClockPeriodEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClockPeriod(nil) did not panic")
		}
	}()
	sta.ClockPeriod(nil, 1.0)
}
