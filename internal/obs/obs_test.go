package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("test.events")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Re-registering the same name returns the same instrument.
	if r.Counter("test.events") != c {
		t.Fatal("Counter not idempotent")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("test.flips", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 512; i++ {
				h.Observe(float64(i % 8))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Total(); got != 8*512 {
		t.Fatalf("total = %d, want %d", got, 8*512)
	}
	snap := r.Snapshot()
	hs := snap.Histograms[0]
	// i%8 in 0..7: bucket <=1 gets {0,1}, <=2 gets {2}, <=4 gets {3,4},
	// overflow gets {5,6,7} — each value 512 times across 8 workers.
	want := []int64{2 * 4096 / 8, 1 * 4096 / 8, 2 * 4096 / 8, 3 * 4096 / 8}
	for i, c := range hs.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], hs.Counts)
		}
	}
}

func TestConcurrentRegistration(t *testing.T) {
	// Racing get-or-create on the same names must be safe and converge on
	// one instrument per name.
	r := NewRegistry(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("race.counter").Inc()
			r.Gauge("race.gauge").Add(1)
			r.Histogram("race.hist", []float64{1}).Observe(0)
			sp := r.Phase("race/phase")
			sp.End()
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[0].Value != 8 || s.Histograms[0].Total() != 8 || s.Phases[0].Count != 8 {
		t.Fatalf("racing registration lost updates: %+v", s)
	}
	if g := r.Gauge("race.gauge").Value(); g != 8 {
		t.Fatalf("gauge = %d, want 8", g)
	}
}

func TestFakeClockPhases(t *testing.T) {
	var now int64
	r := NewRegistry(func() int64 { return now })
	sp := r.Phase("exp/fig9")
	now = 250
	child := sp.Phase("campaigns")
	now = 1000
	child.End()
	now = 1500
	sp.End()
	sp2 := r.Phase("exp/fig9") // re-entering accumulates
	now = 1600
	sp2.End()

	s := r.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases: %+v", s.Phases)
	}
	if p := s.Phases[0]; p.Path != "exp/fig9" || p.Count != 2 || p.Nanos != 1500+100 {
		t.Fatalf("parent phase: %+v", p)
	}
	if p := s.Phases[1]; p.Path != "exp/fig9/campaigns" || p.Count != 1 || p.Nanos != 750 {
		t.Fatalf("child phase: %+v", p)
	}
}

func TestNilClockZeroDurations(t *testing.T) {
	r := NewRegistry(nil)
	r.Time("p", func() {})
	if p := r.Snapshot().Phases[0]; p.Nanos != 0 || p.Count != 1 {
		t.Fatalf("nil clock phase: %+v", p)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x.y").Add(3)
	r.Counter("x.y").Inc()
	r.Gauge("x.y").Set(1)
	r.Histogram("x.y", []float64{1}).Observe(0)
	sp := r.Phase("p")
	sp.Phase("q").End()
	sp.End()
	r.Time("p", func() {})
	if c := r.Counter("x.y").Value(); c != 0 {
		t.Fatalf("nil registry counter = %d", c)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms)+len(s.Phases) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if string(s.JSON()) == "" || len(s.PrometheusText()) != 0 {
		t.Fatal("nil snapshot renderings")
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry(nil)
	for _, bad := range []string{"", "Upper", "9lead", "has-dash", "has space", "ünicode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry(nil)
	r.Histogram("h.ok", []float64{1, 2})
	for _, bounds := range [][]float64{{1}, {1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: want panic", bounds)
				}
			}()
			r.Histogram("h.ok", bounds)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unsorted bounds: want panic")
			}
		}()
		r.Histogram("h.bad", []float64{2, 1})
	}()
}

// populate fills a registry with a fixed state, updating in the given
// permutation order to prove order-independence of the renderings.
func populate(r *Registry, reverse bool) {
	names := []string{"a.hits", "b.misses", "z.writes"}
	if reverse {
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
	}
	for i, n := range names {
		r.Counter(n).Add(int64(10 * (i + 1)))
	}
	if reverse {
		// Same totals, accumulated differently.
		for _, n := range names {
			r.Counter(n).Add(0)
		}
		r.Counter("a.hits").Add(-20)
		r.Counter("z.writes").Add(20)
	}
	r.Gauge("cfg.workers").Set(4)
	h := r.Histogram("lat.buckets", []float64{0.5, 1.5, 2.5})
	for _, v := range []float64{0, 1, 1, 2, 9} {
		h.Observe(v)
	}
	r.Time("exp/one", func() {})
	r.Time("exp/two", func() {})
}

func TestRenderingsAreByteDeterministic(t *testing.T) {
	r1, r2 := NewRegistry(nil), NewRegistry(nil)
	populate(r1, false)
	populate(r2, true)
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if string(s1.JSON()) != string(s2.JSON()) {
		t.Fatalf("JSON differs:\n%s\n---\n%s", s1.JSON(), s2.JSON())
	}
	if string(s1.PrometheusText()) != string(s2.PrometheusText()) {
		t.Fatalf("Prometheus text differs:\n%s\n---\n%s", s1.PrometheusText(), s2.PrometheusText())
	}
	if s1.Summary() != s2.Summary() {
		t.Fatalf("Summary differs: %q vs %q", s1.Summary(), s2.Summary())
	}
}

func TestJSONIsValidAndSorted(t *testing.T) {
	r := NewRegistry(nil)
	populate(r, false)
	raw := r.Snapshot().JSON()
	var decoded map[string]map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("JSON does not parse: %v\n%s", err, raw)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "phases"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("missing top-level key %q in %s", key, raw)
		}
	}
	if decoded["counters"]["a.hits"].(float64) != 10 {
		t.Fatalf("counter value wrong: %v", decoded["counters"])
	}
	txt := string(raw)
	if strings.Index(txt, `"a.hits"`) > strings.Index(txt, `"z.writes"`) {
		t.Fatal("counters not sorted")
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("artifact.hits").Add(3)
	r.Gauge("cfg.runs").Set(24)
	h := r.Histogram("campaign.injections_per_run", []float64{1, 2})
	h.Observe(1)
	h.Observe(1)
	h.Observe(5)
	r.Time("exp/fig9", func() {})
	got := string(r.Snapshot().PrometheusText())
	for _, w := range []string{
		"# TYPE teva_artifact_hits counter\nteva_artifact_hits 3\n",
		"# TYPE teva_cfg_runs gauge\nteva_cfg_runs 24\n",
		"teva_campaign_injections_per_run_bucket{le=\"1\"} 2\n",
		"teva_campaign_injections_per_run_bucket{le=\"2\"} 2\n",
		"teva_campaign_injections_per_run_bucket{le=\"+Inf\"} 3\n",
		"teva_campaign_injections_per_run_count 3\n",
		"teva_phase_count{phase=\"exp/fig9\"} 1\n",
	} {
		if !strings.Contains(got, w) {
			t.Fatalf("missing %q in:\n%s", w, got)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("edge.hist", []float64{1, 2})
	// Bucket semantics are v <= bound, Prometheus-style.
	h.Observe(1)        // -> le=1
	h.Observe(1.000001) // -> le=2
	h.Observe(2)        // -> le=2
	h.Observe(3)        // -> overflow
	s := r.Snapshot().Histograms[0]
	want := []int64{1, 2, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts %v, want %v", s.Counts, want)
		}
	}
}
