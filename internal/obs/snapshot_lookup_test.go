package obs

import "testing"

func TestSnapshotCounterLookup(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("campaign.cells").Add(42)
	reg.Counter("campaign.runs").Add(7)
	reg.Counter("a.first").Inc()
	reg.Counter("z.last").Inc()
	snap := reg.Snapshot()
	cases := map[string]int64{
		"campaign.cells": 42,
		"campaign.runs":  7,
		"a.first":        1,
		"z.last":         1,
		"never.touched":  0, // absent reads as zero, like a nil-safe live counter
	}
	for name, want := range cases {
		if got := snap.Counter(name); got != want {
			t.Fatalf("Counter(%q) = %d, want %d", name, got, want)
		}
	}
	var empty Snapshot
	if got := empty.Counter("anything"); got != 0 {
		t.Fatalf("empty snapshot Counter = %d", got)
	}
}
