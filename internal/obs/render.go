package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry's state, ordered: every
// slice is sorted by name/path, so two snapshots of equal state render
// byte-identically.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistSnap
	Phases     []PhaseSnap
}

// CounterSnap is one counter's state.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge's state.
type GaugeSnap struct {
	Name  string
	Value int64
}

// HistSnap is one histogram's state. Counts[i] is the non-cumulative
// count for Bounds[i]; the final Counts entry is the overflow bucket.
type HistSnap struct {
	Name   string
	Bounds []float64
	Counts []int64
}

// Total returns the histogram's observation count.
func (h HistSnap) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// PhaseSnap is one phase path's accumulated timings. Nanos is the only
// snapshot field that is not a pure function of the run's inputs — it
// reads the injected clock — so determinism tests zero it via a fake
// (or nil) clock.
type PhaseSnap struct {
	Path  string
	Count int64
	Nanos int64
}

// Snapshot copies the registry's current state. Safe during concurrent
// updates (each value is an atomic load); the result is a consistent
// rendering input, not an instantaneous cross-metric cut.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hs := HistSnap{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hs)
	}
	for path, st := range r.phases {
		s.Phases = append(s.Phases, PhaseSnap{
			Path: path, Count: st.count.Load(), Nanos: st.nanos.Load(),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Path < s.Phases[j].Path })
	return s
}

// Counter returns the named counter's value in the snapshot (0 when
// absent — an unregistered counter and a zero counter are
// indistinguishable, which is exactly how the nil-safe live counters
// behave). The slice is sorted by name, so this is a binary search.
func (s Snapshot) Counter(name string) int64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value
	}
	return 0
}

// ftoa renders a float in the canonical shortest form shared by every
// deterministic exporter in the repo.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// JSON renders the snapshot as deterministic JSON: object keys in fixed
// order, metric entries sorted by name, floats via FormatFloat 'g' -1.
// The encoder is hand-rolled so byte layout is pinned by this package,
// not by encoding/json internals.
func (s Snapshot) JSON() []byte {
	var b bytes.Buffer
	b.WriteString("{\n  \"counters\": {")
	for i, c := range s.Counters {
		writeSep(&b, i)
		fmt.Fprintf(&b, "    %s: %d", quote(c.Name), c.Value)
	}
	closeObj(&b, len(s.Counters))
	b.WriteString(",\n  \"gauges\": {")
	for i, g := range s.Gauges {
		writeSep(&b, i)
		fmt.Fprintf(&b, "    %s: %d", quote(g.Name), g.Value)
	}
	closeObj(&b, len(s.Gauges))
	b.WriteString(",\n  \"histograms\": {")
	for i, h := range s.Histograms {
		writeSep(&b, i)
		fmt.Fprintf(&b, "    %s: {\"bounds\": [", quote(h.Name))
		for j, bound := range h.Bounds {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ftoa(bound))
		}
		b.WriteString("], \"counts\": [")
		for j, c := range h.Counts {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", c)
		}
		fmt.Fprintf(&b, "], \"total\": %d}", h.Total())
	}
	closeObj(&b, len(s.Histograms))
	b.WriteString(",\n  \"phases\": {")
	for i, p := range s.Phases {
		writeSep(&b, i)
		fmt.Fprintf(&b, "    %s: {\"count\": %d, \"nanos\": %d}", quote(p.Path), p.Count, p.Nanos)
	}
	closeObj(&b, len(s.Phases))
	b.WriteString("\n}\n")
	return b.Bytes()
}

func writeSep(b *bytes.Buffer, i int) {
	if i > 0 {
		b.WriteString(",")
	}
	b.WriteString("\n")
}

func closeObj(b *bytes.Buffer, n int) {
	if n > 0 {
		b.WriteString("\n  }")
	} else {
		b.WriteString("}")
	}
}

// quote JSON-quotes a name. Metric names match NameRE and phase paths
// are slash-joined segments, so no JSON escaping is ever required beyond
// the surrounding quotes; the strict check keeps that assumption honest.
func quote(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == '"' || name[i] == '\\' {
			panic(fmt.Sprintf("obs: name %q needs JSON escaping", name))
		}
	}
	return `"` + name + `"`
}

// promName converts a dotted metric name to the Prometheus exposition
// convention with the shared "teva_" namespace: dots become underscores.
func promName(name string) string {
	return "teva_" + strings.ReplaceAll(name, ".", "_")
}

// PrometheusText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one TYPE line per metric, samples sorted,
// histogram buckets cumulative with `le` labels, phases as two labeled
// series (count and seconds). Byte-deterministic for equal snapshots.
func (s Snapshot) PrometheusText() []byte {
	var b bytes.Buffer
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, ftoa(bound), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&b, "%s_count %d\n", n, cum)
	}
	if len(s.Phases) > 0 {
		b.WriteString("# TYPE teva_phase_count counter\n")
		for _, p := range s.Phases {
			fmt.Fprintf(&b, "teva_phase_count{phase=%q} %d\n", p.Path, p.Count)
		}
		b.WriteString("# TYPE teva_phase_seconds counter\n")
		for _, p := range s.Phases {
			fmt.Fprintf(&b, "teva_phase_seconds{phase=%q} %s\n", p.Path, ftoa(float64(p.Nanos)/1e9))
		}
	}
	return b.Bytes()
}

// Summary renders the one-line end-of-run digest the CLIs print: metric
// family sizes plus the total event count, deterministic for equal
// snapshots (timer nanos are deliberately excluded).
func (s Snapshot) Summary() string {
	var events int64
	for _, c := range s.Counters {
		events += c.Value
	}
	return fmt.Sprintf("obs: %d counters (%d events), %d gauges, %d histograms, %d phases",
		len(s.Counters), events, len(s.Gauges), len(s.Histograms), len(s.Phases))
}
