// Package obs is TEVA's dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), phase-scoped
// timers, and a snapshot API whose JSON and Prometheus-text renderings
// are byte-deterministic.
//
// The design is constrained by the repo's determinism contract
// (DESIGN.md, "Determinism invariants and teva-vet"):
//
//   - No wall-clock reads. Timers take their readings from a Clock
//     injected at registry construction; simulation packages receive an
//     already-constructed registry, the cmd/ entry points (exempt from
//     the simpurity analyzer) supply the real monotonic clock, and tests
//     supply a fake. A nil Clock is valid and makes every phase report a
//     zero duration, so instrumented code paths stay byte-reproducible
//     under test without stubbing.
//   - Metric values must be order-independent under concurrency. Counters
//     and histograms accumulate integers with atomics (commutative, so
//     worker scheduling cannot change a snapshot); histograms carry no
//     float sum field, only bucket counts, for the same reason.
//   - Renderings sort every key and format floats with
//     strconv.FormatFloat(v, 'g', -1, 64), so two snapshots of equal
//     state are byte-identical.
//
// Hot paths hold a *Counter (one atomic add per event); the registry map
// lookup happens only at instrumentation setup. All methods are safe on
// nil receivers: a nil *Registry hands out nil instruments whose methods
// are no-ops, so instrumented packages need no conditionals when metrics
// are disabled (mirroring the nil *artifact.Store contract).
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Clock supplies monotonic time in nanoseconds for phase timers. The
// origin is arbitrary (only differences are used). cmd/ binaries pass a
// closure over time.Since; tests pass a fake or nil.
type Clock func() int64

// NameRE is the metric-name contract: names are lowercase dotted paths
// ("campaign.injections", "artifact.hits"). The obsnames analyzer
// enforces it statically at every registration site; the registry
// enforces it again at runtime and panics on violation, because an
// invalid name would destabilize the Prometheus rendering.
var NameRE = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)

// Registry owns a set of named metrics and phase timers.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   map[string]*phaseStat
}

// phaseStat accumulates one phase path's completions.
type phaseStat struct {
	count atomic.Int64
	nanos atomic.Int64
}

// NewRegistry returns an empty registry. A nil clock disables duration
// measurement (phases record counts with zero nanos).
func NewRegistry(clock Clock) *Registry {
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		phases:   make(map[string]*phaseStat),
	}
}

// checkName panics on a name the obsnames contract rejects.
func checkName(kind, name string) {
	if !NameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid %s name %q (want %s)", kind, name, NameRE))
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; no-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating once) the named counter. Returns nil — a
// valid no-op counter — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName("counter", name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge is a settable integer metric. Because last-write-wins is
// scheduling-dependent, gauges are for values set from one goroutine
// (configuration echoes, end-of-run totals), not for racing workers —
// use counters there.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value; no-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta; no-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Gauge returns (creating once) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName("gauge", name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and above Bounds[i-1]); one
// implicit overflow bucket catches the rest. There is deliberately no
// sum field: a float sum's value would depend on accumulation order
// under concurrency, breaking snapshot determinism.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
}

// Observe records one observation; no-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
}

// Total returns the observation count (0 for nil).
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// Histogram returns (creating once) the named histogram with the given
// strictly increasing upper bounds; nil on a nil registry. Re-registering
// an existing name with different bounds panics — the first registration
// fixes the schema.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkName("histogram", name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] { //teva:allow floateq -- schema identity check, bounds are registration constants
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
	}
	return h
}

// Span is one running phase timer. Ending it accumulates the elapsed
// clock time under its path; re-entering the same path accumulates into
// the same slot. Spans nest by deriving children, giving "/"-joined
// paths ("exp/fig9/campaigns").
type Span struct {
	r     *Registry
	path  string
	start int64
}

// now reads the registry clock (0 without one).
func (r *Registry) now() int64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// Phase starts a timer for the named phase. Phase paths are "/"-joined
// lowercase segments; unlike metric names they may be derived at run
// time (the set of phases a run executes is itself deterministic given
// the flags). Nil registries return a nil Span whose methods are no-ops.
func (r *Registry) Phase(path string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, path: path, start: r.now()}
}

// Phase derives a nested child span ("parent/child").
func (s *Span) Phase(sub string) *Span {
	if s == nil {
		return nil
	}
	return s.r.Phase(s.path + "/" + sub)
}

// End stops the span, accumulating its duration; no-op on nil. Ending a
// span twice double-counts; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := s.r.now() - s.start
	s.r.mu.Lock()
	st, ok := s.r.phases[s.path]
	if !ok {
		st = &phaseStat{}
		s.r.phases[s.path] = st
	}
	s.r.mu.Unlock()
	st.count.Add(1)
	st.nanos.Add(elapsed)
}

// Time runs fn under a span — the common non-nested case.
func (r *Registry) Time(path string, fn func()) {
	sp := r.Phase(path)
	fn()
	sp.End()
}
