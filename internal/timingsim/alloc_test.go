package timingsim_test

import (
	"testing"

	"teva/internal/netlist"
	"teva/internal/prng"
	"teva/internal/timingsim"
)

// randomVectors returns n prev/cur input-vector pairs for the netlist.
func randomVectors(n *netlist.Netlist, count int, seed uint64) (prev, cur [][]bool) {
	src := prng.New(seed)
	ins := len(n.Inputs())
	for i := 0; i < count; i++ {
		p := make([]bool, ins)
		c := make([]bool, ins)
		for j := range p {
			p[j] = src.Intn(2) == 1
			c[j] = src.Intn(2) == 1
		}
		prev = append(prev, p)
		cur = append(cur, c)
	}
	return prev, cur
}

// TestRunSteadyStateAllocs pins the zero-allocation invariant of every
// timing engine's Run: after construction (and one warm-up Run for the
// event-driven engine, whose event heap grows to the circuit's high-water
// mark on first use), timing an instruction allocates nothing. This is
// the invariant that keeps million-pair DTA campaigns out of the
// allocator.
func TestRunSteadyStateAllocs(t *testing.T) {
	n := randomCircuit(t, 0xA110C)
	c := n.Compiled()
	prev, cur := randomVectors(n, 16, 99)

	scalars := map[string]timingsim.Runner{
		"fast":  timingsim.NewFast(c, 1.3),
		"exact": timingsim.NewExact(c, 1.3),
	}
	for name, r := range scalars {
		i := 0
		r.Run(prev[0], cur[0], 2, 400) // warm-up: heap high-water mark
		avg := testing.AllocsPerRun(100, func() {
			r.Run(prev[i%len(prev)], cur[i%len(cur)], 2, 400)
			i++
		})
		if avg != 0 {
			t.Errorf("%s: Run allocates %.1f objects per call, want 0", name, avg)
		}
	}

	wide := timingsim.NewWideFast(c, 1.3)
	words := make([]uint64, len(n.Inputs()))
	prevW := make([]uint64, len(n.Inputs()))
	for j := range words {
		if cur[0][j] {
			words[j] = ^uint64(0)
		}
		if prev[0][j] {
			prevW[j] = 0xAAAA5555AAAA5555
		}
	}
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		wide.Run(prevW, words, 2, 400)
		i++
	})
	if avg != 0 {
		t.Errorf("wide: Run allocates %.1f objects per call, want 0", avg)
	}
}
