package timingsim

import (
	"math/bits"

	"teva/internal/cell"
	"teva/internal/netlist"
)

// WideSample is the outcome of one WideFastSim run: up to 64 independent
// input transitions timed by a single circuit walk. Lane L of every word
// (bit L, LSB = lane 0) is the result of transition L; the per-lane
// arrays mirror the scalar Sample fields exactly, so
// WideFastSim.LaneSample can reconstruct the scalar engine's Sample for
// any lane bit for bit.
type WideSample struct {
	// Captured holds, per primary output (netlist output order), the
	// 64-lane word of values latched at the capture deadline.
	Captured []uint64
	// Settled holds, per primary output, the steady-state words.
	Settled []uint64
	// WorstArrival is each lane's maximum output arrival time.
	WorstArrival [64]float64
	// Violations counts, per lane, outputs whose captured value differs
	// from the settled value.
	Violations [64]int
	// Toggles counts, per lane, gate-output transitions.
	Toggles [64]int64
	// EnergyFJ is each lane's dynamic switching energy, femtojoules.
	EnergyFJ [64]float64
}

// Erroneous reports whether the given lane captured any wrong value.
func (s *WideSample) Erroneous(lane int) bool { return s.Violations[lane] > 0 }

// Clone returns an independent deep copy. WideFastSim.Run returns an
// engine-owned sample that the next Run overwrites; callers that need to
// keep a result past the next Run must Clone it (the sampleretain
// teva-vet analyzer flags retained Run results).
func (s *WideSample) Clone() *WideSample {
	c := *s
	c.Captured = append([]uint64(nil), s.Captured...)
	c.Settled = append([]uint64(nil), s.Settled...)
	return &c
}

// WideFastSim is the 64-lane counterpart of FastSim: one levelized walk
// over the compiled IR times up to 64 operand transitions at once. Per-net
// old/new/changed values are bit-parallel uint64 words (like
// logicsim.WideSim) and arrival times live in a lane-major [net*64+lane]
// structure-of-arrays; the per-lane float work runs only for lanes whose
// gate output actually toggled, so the fixed cost of walking the circuit
// is paid once per 64 transitions instead of once per transition.
//
// The engine is bit-exact against FastSim: for every lane, Captured,
// Settled, arrivals, violation/toggle counts and energies equal a scalar
// FastSim run of that lane's transition (enforced by differential tests).
// Lanes are independent; callers that drive fewer than 64 lanes should
// make the unused lanes transition-free (prev bit == cur bit) so they cost
// nothing.
type WideFastSim struct {
	c     *netlist.Compiled
	scale float64
	// riseS/fallS are the stride-padded per-pin delays pre-multiplied by
	// scale, the same d*scale product FastSim forms per lookup.
	riseS, fallS []float64
	oldW         []uint64
	newW         []uint64
	changedW     []uint64
	// arr is the lane-major arrival SoA: arr[net*64+lane]. Slots are only
	// valid while the matching changedW bit is set; stale lanes are never
	// read.
	arr    []float64
	sample WideSample
}

// WideScratch is the per-net working storage of a WideFastSim. Engines
// that never run concurrently (e.g. one dta.Analyzer's per-stage engines,
// which execute strictly cycle by cycle) can share one scratch sized for
// the largest netlist: Run leaves no state behind that a later Run — its
// own or another sharing engine's — reads, so sharing only saves the
// allocation, not determinism.
type WideScratch struct {
	oldW, newW, changedW []uint64
	arr                  []float64
}

// NewWideScratch returns working storage for netlists of up to maxNets
// nets.
func NewWideScratch(maxNets int) *WideScratch {
	ws := &WideScratch{
		oldW:     make([]uint64, maxNets),
		newW:     make([]uint64, maxNets),
		changedW: make([]uint64, maxNets),
		arr:      make([]float64, maxNets*64),
	}
	// The constant nets sit at the same indices in every compiled
	// netlist, no engine ever writes them, and Const0's all-zero words
	// are the allocation's zero value — so the constant rows are set once
	// here, not per Run.
	ws.oldW[netlist.Const1] = ^uint64(0)
	ws.newW[netlist.Const1] = ^uint64(0)
	return ws
}

// NewWideFast returns a 64-lane fast engine for the compiled netlist with
// all gate delays multiplied by scale.
func NewWideFast(c *netlist.Compiled, scale float64) *WideFastSim {
	return NewWideFastShared(c, scale, NewWideScratch(c.NumNets))
}

// NewWideFastShared is NewWideFast on shared working storage (which must
// span at least c.NumNets nets). Engines sharing a scratch must not run
// concurrently.
func NewWideFastShared(c *netlist.Compiled, scale float64, ws *WideScratch) *WideFastSim {
	s := &WideFastSim{
		c:        c,
		scale:    scale,
		riseS:    make([]float64, len(c.Rise)),
		fallS:    make([]float64, len(c.Fall)),
		oldW:     ws.oldW[:c.NumNets],
		newW:     ws.newW[:c.NumNets],
		changedW: ws.changedW[:c.NumNets],
		arr:      ws.arr[:c.NumNets*64],
	}
	for i, d := range c.Rise {
		s.riseS[i] = d * scale
	}
	for i, d := range c.Fall {
		s.fallS[i] = d * scale
	}
	outs := len(c.Outputs)
	s.sample = WideSample{
		Captured: make([]uint64, outs),
		Settled:  make([]uint64, outs),
	}
	return s
}

// Run times the transitions from the prev input words to cur (one word
// per primary input, lanes packed LSB = lane 0). Inputs switch at
// inputArrival; capture happens at deadline. The returned WideSample is
// valid until the next Run call.
//
//teva:hotpath
func (s *WideFastSim) Run(prev, cur []uint64, inputArrival, deadline float64) *WideSample {
	c := s.c
	if len(prev) != len(c.Inputs) || len(cur) != len(c.Inputs) {
		panic("timingsim: input width mismatch")
	}
	arr := s.arr
	oldW, newW, changedW := s.oldW, s.newW, s.changedW
	// seedRow is one net's worth of arrivals all at inputArrival; a single
	// 512-byte copy initializes a whole output row (cheaper than storing
	// per toggled lane, and harmless for untoggled lanes — they are never
	// read while their changed bit is clear).
	var seedRow [64]float64
	for l := range seedRow {
		seedRow[l] = inputArrival
	}
	for i, net := range c.Inputs {
		oldW[net] = prev[i]
		newW[net] = cur[i]
		changedW[net] = prev[i] ^ cur[i]
		*(*[64]float64)(arr[int(net)*64:]) = seedRow
	}
	sm := &s.sample
	for l := range sm.WorstArrival {
		sm.WorstArrival[l] = 0
		sm.Violations[l] = 0
		sm.Toggles[l] = 0
		sm.EnergyFJ[l] = 0
	}

	in, stride := c.In, c.Stride
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		i0, i1, i2 := in[base], in[base+1], in[base+2]
		a0, b0, c0 := oldW[i0], oldW[i1], oldW[i2]
		a1, b1, c1 := newW[i0], newW[i1], newW[i2]
		var oldOut, newOut uint64
		switch c.Op[gi] {
		case cell.OpBuf:
			oldOut, newOut = a0, a1
		case cell.OpInv:
			oldOut, newOut = ^a0, ^a1
		case cell.OpAnd2:
			oldOut, newOut = a0&b0, a1&b1
		case cell.OpOr2:
			oldOut, newOut = a0|b0, a1|b1
		case cell.OpNand2:
			oldOut, newOut = ^(a0 & b0), ^(a1 & b1)
		case cell.OpNor2:
			oldOut, newOut = ^(a0 | b0), ^(a1 | b1)
		case cell.OpXor2:
			oldOut, newOut = a0^b0, a1^b1
		case cell.OpXnor2:
			oldOut, newOut = ^(a0 ^ b0), ^(a1 ^ b1)
		case cell.OpMux2:
			oldOut, newOut = (a0&^c0)|(b0&c0), (a1&^c1)|(b1&c1)
		case cell.OpAoi21:
			oldOut, newOut = ^((a0 & b0) | c0), ^((a1 & b1) | c1)
		case cell.OpOai21:
			oldOut, newOut = ^((a0 | b0) & c0), ^((a1 | b1) & c1)
		case cell.OpAnd3:
			oldOut, newOut = a0&b0&c0, a1&b1&c1
		case cell.OpOr3:
			oldOut, newOut = a0|b0|c0, a1|b1|c1
		case cell.OpNand3:
			oldOut, newOut = ^(a0 & b0 & c0), ^(a1 & b1 & c1)
		case cell.OpNor3:
			oldOut, newOut = ^(a0 | b0 | c0), ^(a1 | b1 | c1)
		case cell.OpXor3:
			oldOut, newOut = a0^b0^c0, a1^b1^c1
		case cell.OpMaj3:
			oldOut, newOut = (a0&b0)|(c0&(a0^b0)), (a1&b1)|(c1&(a1^b1))
		default:
			panic("timingsim: invalid opcode " + c.Op[gi].String())
		}
		out := c.Out[gi]
		oldW[out] = oldOut
		newW[out] = newOut
		toggled := oldOut ^ newOut
		changedW[out] = toggled
		if toggled == 0 {
			continue
		}
		energy := c.Energy[gi]
		ob := (*[64]float64)(arr[int(out)*64:])
		// Seed the whole output row's arrivals with inputArrival. Any
		// changed pin's candidate is arr+d ≥ inputArrival, so the running
		// max ends at the pins' worst when one contributed and at
		// inputArrival when none did — exactly FastSim's `worst == 0 →
		// inputArrival` fallback, without the per-lane test.
		*ob = seedRow
		for m := toggled; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m) & 63
			sm.Toggles[lane]++
			sm.EnergyFJ[lane] += energy
		}
		// Rising and falling lanes take different pin delays; splitting
		// the toggled mask keeps each inner loop's delay a constant and
		// restricts it to lanes where the pin actually switched — no
		// per-lane masking or rise/fall select left.
		riseM := toggled & newOut
		fallM := toggled &^ newOut
		ni := int(c.NumIn[gi])
		for p := 0; p < ni; p++ {
			inNet := int(in[base+p])
			ch := changedW[inNet]
			if ch == 0 {
				continue
			}
			ab := (*[64]float64)(arr[inNet*64:])
			if rm := riseM & ch; rm != 0 {
				d := s.riseS[base+p]
				for m := rm; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros64(m) & 63
					ob[lane] = max(ob[lane], ab[lane]+d)
				}
			}
			if fm := fallM & ch; fm != 0 {
				d := s.fallS[base+p]
				for m := fm; m != 0; m &= m - 1 {
					lane := bits.TrailingZeros64(m) & 63
					ob[lane] = max(ob[lane], ab[lane]+d)
				}
			}
		}
	}

	for oi, net := range c.Outputs {
		settled := newW[net]
		sm.Settled[oi] = settled
		captured := settled
		if ch := changedW[net]; ch != 0 {
			base := int(net) * 64
			var late uint64
			for m := ch; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				a := arr[base+lane]
				if a > sm.WorstArrival[lane] {
					sm.WorstArrival[lane] = a
				}
				if a > deadline {
					late |= 1 << uint(lane)
					sm.Violations[lane]++
				}
			}
			// Late lanes latch the previous-cycle value (the old-value
			// capture model), everything else the settled value.
			captured = settled&^late | oldW[net]&late
		}
		sm.Captured[oi] = captured
	}
	return sm
}

// LaneArrival returns output oi's arrival time in the given lane after
// Run (0 when the output never switched), matching Sample.Arrival[oi] of
// a scalar run of that lane.
func (s *WideFastSim) LaneArrival(oi, lane int) float64 {
	net := s.c.Outputs[oi]
	if s.changedW[net]>>uint(lane)&1 == 0 {
		return 0
	}
	return s.arr[int(net)*64+lane]
}

// LaneSample reconstructs the scalar Sample of one lane into dst
// (allocating when dst is nil), for differential testing and for callers
// that need a scalar view of a single lane. Valid until the next Run.
func (s *WideFastSim) LaneSample(lane int, dst *Sample) *Sample {
	outs := len(s.c.Outputs)
	if dst == nil {
		dst = &Sample{}
	}
	if len(dst.Captured) != outs {
		dst.Captured = make([]bool, outs)
		dst.Settled = make([]bool, outs)
		dst.Arrival = make([]float64, outs)
	}
	sm := &s.sample
	for oi := range s.c.Outputs {
		dst.Captured[oi] = sm.Captured[oi]>>uint(lane)&1 == 1
		dst.Settled[oi] = sm.Settled[oi]>>uint(lane)&1 == 1
		dst.Arrival[oi] = s.LaneArrival(oi, lane)
	}
	dst.WorstArrival = sm.WorstArrival[lane]
	dst.Violations = sm.Violations[lane]
	dst.Toggles = sm.Toggles[lane]
	dst.EnergyFJ = sm.EnergyFJ[lane]
	return dst
}
