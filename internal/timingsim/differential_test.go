package timingsim_test

// Differential tests: the compiled-IR engines (logicsim.Sim/WideSim,
// timingsim.FastSim/ExactSim) must reproduce the behaviour of the legacy
// per-gate closure walk exactly. The reference engines below are faithful
// test-local ports of the pre-compilation implementations, operating
// directly on the netlist's gate list (with Gate.Op.EvalSlice standing in
// for the removed Eval closure). Circuits are random DAGs from
// netlist.Builder, deliberately including duplicate-input gates and
// input-fed-through outputs.

import (
	"container/heap"
	"math"
	"testing"

	"teva/internal/logicsim"
	"teva/internal/netlist"
	"teva/internal/prng"
	"teva/internal/timingsim"
)

// randomCircuit builds an arbitrary combinational DAG. pick may return the
// same net for several pins of one gate (exercising the duplicate-pin
// fanout semantics) and outputs may repeat or tap primary inputs.
func randomCircuit(t *testing.T, seed uint64) *netlist.Netlist {
	t.Helper()
	src := prng.New(seed)
	b := netlist.NewBuilder("diff", lib, seed)
	pool := make([]netlist.NetID, 0, 160)
	for i, n := 0, 4+src.Intn(9); i < n; i++ {
		pool = append(pool, b.InputNet())
	}
	pick := func() netlist.NetID { return pool[src.Intn(len(pool))] }
	for i, n := 0, 30+src.Intn(91); i < n; i++ {
		var out netlist.NetID
		switch src.Intn(13) {
		case 0:
			out = b.Not(pick())
		case 1:
			out = b.Buf(pick())
		case 2:
			out = b.And(pick(), pick())
		case 3:
			out = b.Or(pick(), pick())
		case 4:
			out = b.Nand(pick(), pick())
		case 5:
			out = b.Nor(pick(), pick())
		case 6:
			out = b.Xor(pick(), pick())
		case 7:
			out = b.Xnor(pick(), pick())
		case 8:
			out = b.And3(pick(), pick(), pick())
		case 9:
			out = b.Or3(pick(), pick(), pick())
		case 10:
			out = b.Mux(pick(), pick(), pick())
		case 11:
			sum, carry := b.HalfAdd(pick(), pick())
			pool = append(pool, sum)
			out = carry
		default:
			sum, carry := b.FullAdd(pick(), pick(), pick())
			pool = append(pool, sum)
			out = carry
		}
		pool = append(pool, out)
	}
	var outs netlist.Bus
	for i := 0; i < 8; i++ {
		outs = append(outs, pick())
	}
	outs = append(outs, pool[len(pool)-1], pool[len(pool)-2])
	b.Output(outs)
	// The random DAG intentionally leaves unpicked pool nets unconsumed.
	b.Discard(pool...)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// refLogicRun is the legacy functional walk: evaluate gates in stored
// (topological) order via per-gate slice dispatch.
func refLogicRun(n *netlist.Netlist, inputs []bool) []bool {
	values := make([]bool, n.NumNets())
	values[netlist.Const1] = true
	for i, net := range n.Inputs() {
		values[net] = inputs[i]
	}
	buf := make([]bool, 4)
	gates := n.Gates()
	for gi := range gates {
		g := &gates[gi]
		in := buf[:len(g.Inputs)]
		for i, net := range g.Inputs {
			in[i] = values[net]
		}
		values[g.Output] = g.Op.EvalSlice(in)
	}
	return values
}

// refFast is the pre-compilation levelized arrival engine.
type refFast struct {
	n       *netlist.Netlist
	scale   float64
	oldV    []bool
	newV    []bool
	changed []bool
	arrival []float64
	sample  timingsim.Sample
}

func newRefFast(n *netlist.Netlist, scale float64) *refFast {
	s := &refFast{
		n:       n,
		scale:   scale,
		oldV:    make([]bool, n.NumNets()),
		newV:    make([]bool, n.NumNets()),
		changed: make([]bool, n.NumNets()),
		arrival: make([]float64, n.NumNets()),
	}
	s.oldV[netlist.Const1] = true
	s.newV[netlist.Const1] = true
	outs := len(n.Outputs())
	s.sample = timingsim.Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

func (s *refFast) Run(prev, cur []bool, inputArrival, deadline float64) *timingsim.Sample {
	for i, net := range s.n.Inputs() {
		s.oldV[net] = prev[i]
		s.newV[net] = cur[i]
		s.changed[net] = prev[i] != cur[i]
		s.arrival[net] = inputArrival
	}
	var toggles int64
	var energy float64
	gates := s.n.Gates()
	var bufOld, bufNew [4]bool
	for gi := range gates {
		g := &gates[gi]
		ni := len(g.Inputs)
		anyChanged := false
		for i := 0; i < ni; i++ {
			in := g.Inputs[i]
			bufOld[i] = s.oldV[in]
			bufNew[i] = s.newV[in]
			anyChanged = anyChanged || s.changed[in]
		}
		out := g.Output
		oldOut := g.Op.EvalSlice(bufOld[:ni])
		s.oldV[out] = oldOut
		if !anyChanged {
			s.newV[out] = oldOut
			s.changed[out] = false
			s.arrival[out] = 0
			continue
		}
		newOut := g.Op.EvalSlice(bufNew[:ni])
		s.newV[out] = newOut
		if newOut == oldOut {
			s.changed[out] = false
			s.arrival[out] = 0
			continue
		}
		toggles++
		energy += g.Energy
		s.changed[out] = true
		worst := 0.0
		for i := 0; i < ni; i++ {
			in := g.Inputs[i]
			if !s.changed[in] {
				continue
			}
			var d float64
			if newOut {
				d = g.Delays[i].Rise
			} else {
				d = g.Delays[i].Fall
			}
			if t := s.arrival[in] + d*s.scale; t > worst {
				worst = t
			}
		}
		if worst == 0 {
			worst = inputArrival
		}
		s.arrival[out] = worst
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range s.n.Outputs() {
		settled := s.newV[net]
		sm.Settled[i] = settled
		arr := 0.0
		if s.changed[net] {
			arr = s.arrival[net]
		}
		sm.Arrival[i] = arr
		if arr > sm.WorstArrival {
			sm.WorstArrival = arr
		}
		if s.changed[net] && arr > deadline {
			sm.Captured[i] = s.oldV[net]
			sm.Violations++
		} else {
			sm.Captured[i] = settled
		}
	}
	return sm
}

// refExact is the pre-compilation event-driven inertial engine.
type refEvent struct {
	time  float64
	seq   uint64
	net   netlist.NetID
	value bool
	stamp uint32
}

type refEventHeap []refEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refEventHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type refExact struct {
	n          *netlist.Netlist
	scale      float64
	values     []bool
	atDeadline []bool
	lastChange []float64
	stamp      []uint32
	heap       refEventHeap
	seq        uint64
	sample     timingsim.Sample
	inBuf      [4]bool
}

func newRefExact(n *netlist.Netlist, scale float64) *refExact {
	s := &refExact{
		n:          n,
		scale:      scale,
		values:     make([]bool, n.NumNets()),
		atDeadline: make([]bool, n.NumNets()),
		lastChange: make([]float64, n.NumNets()),
		stamp:      make([]uint32, n.NumNets()),
	}
	outs := len(n.Outputs())
	s.sample = timingsim.Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

func (s *refExact) settle(inputs []bool) {
	s.values[netlist.Const0] = false
	s.values[netlist.Const1] = true
	for i, net := range s.n.Inputs() {
		s.values[net] = inputs[i]
	}
	gates := s.n.Gates()
	for gi := range gates {
		g := &gates[gi]
		buf := s.inBuf[:len(g.Inputs)]
		for i, in := range g.Inputs {
			buf[i] = s.values[in]
		}
		s.values[g.Output] = g.Op.EvalSlice(buf)
	}
}

func (s *refExact) scheduleGate(g *netlist.Gate, changedPin int, t float64) {
	buf := s.inBuf[:len(g.Inputs)]
	for i, in := range g.Inputs {
		buf[i] = s.values[in]
	}
	v := g.Op.EvalSlice(buf)
	out := g.Output
	s.stamp[out]++
	if v == s.values[out] {
		return
	}
	var d float64
	if v {
		d = g.Delays[changedPin].Rise
	} else {
		d = g.Delays[changedPin].Fall
	}
	s.seq++
	heap.Push(&s.heap, refEvent{
		time:  t + d*s.scale,
		seq:   s.seq,
		net:   out,
		value: v,
		stamp: s.stamp[out],
	})
}

func (s *refExact) Run(prev, cur []bool, inputArrival, deadline float64) *timingsim.Sample {
	s.settle(prev)
	for i := range s.lastChange {
		s.lastChange[i] = 0
		s.stamp[i] = 0
	}
	s.heap = s.heap[:0]
	s.seq = 0

	for i, net := range s.n.Inputs() {
		if cur[i] != prev[i] {
			s.seq++
			s.stamp[net]++
			heap.Push(&s.heap, refEvent{
				time:  inputArrival,
				seq:   s.seq,
				net:   net,
				value: cur[i],
				stamp: s.stamp[net],
			})
		}
	}

	snapshotTaken := false
	var toggles int64
	var energy float64
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(refEvent)
		if e.stamp != s.stamp[e.net] {
			continue
		}
		if !snapshotTaken && e.time > deadline {
			copy(s.atDeadline, s.values)
			snapshotTaken = true
		}
		if s.values[e.net] == e.value {
			continue
		}
		s.values[e.net] = e.value
		s.lastChange[e.net] = e.time
		if d := s.n.Driver(e.net); d >= 0 {
			toggles++
			energy += s.n.Gate(d).Energy
		}
		for _, gid := range s.n.Fanout(e.net) {
			g := s.n.Gate(gid)
			pin := 0
			for i, in := range g.Inputs {
				if in == e.net {
					pin = i
					break
				}
			}
			s.scheduleGate(g, pin, e.time)
		}
	}
	if !snapshotTaken {
		copy(s.atDeadline, s.values)
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range s.n.Outputs() {
		sm.Settled[i] = s.values[net]
		sm.Captured[i] = s.atDeadline[net]
		sm.Arrival[i] = s.lastChange[net]
		if sm.Arrival[i] > sm.WorstArrival {
			sm.WorstArrival = sm.Arrival[i]
		}
		if sm.Captured[i] != sm.Settled[i] {
			sm.Violations++
		}
	}
	return sm
}

func compareSamples(t *testing.T, tag string, seed uint64, trial int, want, got *timingsim.Sample) {
	t.Helper()
	if want.Violations != got.Violations {
		t.Fatalf("%s seed %d trial %d: violations %d want %d", tag, seed, trial, got.Violations, want.Violations)
	}
	if want.Toggles != got.Toggles {
		t.Fatalf("%s seed %d trial %d: toggles %d want %d", tag, seed, trial, got.Toggles, want.Toggles)
	}
	if math.Abs(want.EnergyFJ-got.EnergyFJ) > 1e-9 {
		t.Fatalf("%s seed %d trial %d: energy %v want %v", tag, seed, trial, got.EnergyFJ, want.EnergyFJ)
	}
	if math.Abs(want.WorstArrival-got.WorstArrival) > 1e-9 {
		t.Fatalf("%s seed %d trial %d: worst arrival %v want %v", tag, seed, trial, got.WorstArrival, want.WorstArrival)
	}
	for i := range want.Captured {
		if want.Captured[i] != got.Captured[i] {
			t.Fatalf("%s seed %d trial %d: captured[%d] = %v want %v", tag, seed, trial, i, got.Captured[i], want.Captured[i])
		}
		if want.Settled[i] != got.Settled[i] {
			t.Fatalf("%s seed %d trial %d: settled[%d] = %v want %v", tag, seed, trial, i, got.Settled[i], want.Settled[i])
		}
		if math.Abs(want.Arrival[i]-got.Arrival[i]) > 1e-9 {
			t.Fatalf("%s seed %d trial %d: arrival[%d] = %v want %v", tag, seed, trial, i, got.Arrival[i], want.Arrival[i])
		}
	}
}

func TestCompiledTimingEnginesMatchReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1009, 77777} {
		n := randomCircuit(t, seed)
		c := n.Compiled()
		src := prng.New(seed ^ 0xD1FF)
		ins := len(n.Inputs())
		prev := make([]bool, ins)
		cur := make([]bool, ins)
		for _, scale := range []float64{1.0, 1.18, 1.35} {
			fast := timingsim.NewFast(c, scale)
			exact := timingsim.NewExact(c, scale)
			rf := newRefFast(n, scale)
			re := newRefExact(n, scale)
			for trial := 0; trial < 25; trial++ {
				for i := range prev {
					prev[i] = src.Bool()
					cur[i] = src.Bool()
				}
				worst := re.Run(prev, cur, 10, timingsim.MaxDeadline).WorstArrival
				for _, frac := range []float64{0.3, 0.7, 1.05} {
					deadline := worst * frac
					compareSamples(t, "fast", seed, trial,
						rf.Run(prev, cur, 10, deadline), fast.Run(prev, cur, 10, deadline))
					compareSamples(t, "exact", seed, trial,
						re.Run(prev, cur, 10, deadline), exact.Run(prev, cur, 10, deadline))
				}
			}
		}
	}
}

// compareLaneExact asserts a wide lane reproduces the scalar FastSim
// sample bit for bit — including exact float equality on every arrival,
// the energy sum and the worst arrival, which the wide engine guarantees
// by performing the identical float operations in the identical order.
func compareLaneExact(t *testing.T, seed uint64, trial, lane int, want, got *timingsim.Sample) {
	t.Helper()
	if want.Violations != got.Violations || want.Toggles != got.Toggles {
		t.Fatalf("seed %d trial %d lane %d: violations/toggles %d/%d want %d/%d",
			seed, trial, lane, got.Violations, got.Toggles, want.Violations, want.Toggles)
	}
	//teva:allow floateq -- bit-exactness is the contract under test
	if want.EnergyFJ != got.EnergyFJ || want.WorstArrival != got.WorstArrival {
		t.Fatalf("seed %d trial %d lane %d: energy/worst %v/%v want %v/%v",
			seed, trial, lane, got.EnergyFJ, got.WorstArrival, want.EnergyFJ, want.WorstArrival)
	}
	for i := range want.Captured {
		//teva:allow floateq -- bit-exactness is the contract under test
		if want.Captured[i] != got.Captured[i] || want.Settled[i] != got.Settled[i] || want.Arrival[i] != got.Arrival[i] {
			t.Fatalf("seed %d trial %d lane %d output %d: captured/settled/arrival %v/%v/%v want %v/%v/%v",
				seed, trial, lane, i, got.Captured[i], got.Settled[i], got.Arrival[i],
				want.Captured[i], want.Settled[i], want.Arrival[i])
		}
	}
}

// TestWideFastMatchesScalarFast drives 64 random transitions per circuit
// through one WideFastSim walk and through 64 scalar FastSim runs, and
// requires every lane to match bit for bit. Circuits include
// duplicate-pin gates and outputs tapping primary inputs; deadlines sit
// inside the contested settling window so late captures occur.
func TestWideFastMatchesScalarFast(t *testing.T) {
	for _, seed := range []uint64{2, 17, 404, 90210} {
		n := randomCircuit(t, seed)
		c := n.Compiled()
		src := prng.New(seed*0x9E3779B9 + 1)
		ins := len(n.Inputs())
		prevs := make([][]bool, 64)
		curs := make([][]bool, 64)
		prevW := make([]uint64, ins)
		curW := make([]uint64, ins)
		for _, scale := range []float64{1.0, 1.27} {
			fast := timingsim.NewFast(c, scale)
			wide := timingsim.NewWideFast(c, scale)
			exact := timingsim.NewExact(c, scale)
			var laneBuf timingsim.Sample
			for trial := 0; trial < 10; trial++ {
				for i := range prevW {
					prevW[i] = 0
					curW[i] = 0
				}
				for lane := 0; lane < 64; lane++ {
					p := make([]bool, ins)
					q := make([]bool, ins)
					for i := range p {
						p[i] = src.Bool()
						q[i] = src.Bool()
						if p[i] {
							prevW[i] |= 1 << uint(lane)
						}
						if q[i] {
							curW[i] |= 1 << uint(lane)
						}
					}
					prevs[lane], curs[lane] = p, q
				}
				// Pick a deadline in the contested region of lane 0.
				worst := exact.Run(prevs[0], curs[0], 10, timingsim.MaxDeadline).WorstArrival
				for _, frac := range []float64{0.4, 0.8, 1.1} {
					deadline := worst * frac
					wide.Run(prevW, curW, 10, deadline)
					for lane := 0; lane < 64; lane++ {
						want := fast.Run(prevs[lane], curs[lane], 10, deadline)
						got := wide.LaneSample(lane, &laneBuf)
						compareLaneExact(t, seed, trial, lane, want, got)
					}
				}
			}
		}
	}
}

func TestCompiledLogicAndWideMatchReference(t *testing.T) {
	for _, seed := range []uint64{3, 99, 2024} {
		n := randomCircuit(t, seed)
		c := n.Compiled()
		sim := logicsim.New(c)
		wide := logicsim.NewWide(c)
		src := prng.New(seed + 13)
		ins := len(n.Inputs())
		outs := n.Outputs()
		words := make([]uint64, ins)
		scalar := make([][]bool, 64)
		for lane := 0; lane < 64; lane++ {
			v := make([]bool, ins)
			for i := range v {
				v[i] = src.Bool()
				if v[i] {
					words[i] |= 1 << uint(lane)
				}
			}
			ref := refLogicRun(n, v)
			sim.Run(v)
			got := make([]bool, len(outs))
			for oi, net := range outs {
				got[oi] = sim.Value(net)
				if got[oi] != ref[net] {
					t.Fatalf("seed %d lane %d: scalar output %d = %v want %v", seed, lane, oi, got[oi], ref[net])
				}
			}
			scalar[lane] = got
		}
		wide.Run(words)
		for lane := 0; lane < 64; lane++ {
			for oi, net := range outs {
				if got := wide.Word(net)>>uint(lane)&1 == 1; got != scalar[lane][oi] {
					t.Fatalf("seed %d lane %d: wide output %d = %v want %v", seed, lane, oi, got, scalar[lane][oi])
				}
			}
		}
	}
}
