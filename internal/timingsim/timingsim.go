// Package timingsim simulates a netlist with annotated gate delays under a
// voltage corner. It is the "second instance" of the paper's dynamic
// timing analysis: the reduced-voltage gate-level simulation whose sampled
// outputs are compared with the golden run to detect timing errors.
//
// Two engines are provided, both running on the compiled flat IR
// (netlist.Compiled) with opcode dispatch:
//
//   - Exact: event-driven simulation with inertial delays. Captures the
//     value every net holds at the capture deadline, including glitches.
//   - Fast: single-pass levelized transition/arrival propagation. For a
//     late-arriving bit it assumes the previous-cycle value is captured
//     (the standard "old value" timing-error model) and ignores
//     glitch-induced wrong captures. ~10-50x faster; validated against
//     Exact in tests and used for large characterization campaigns.
package timingsim

import (
	"math"

	"teva/internal/netlist"
)

// Sample is the outcome of simulating one input transition.
type Sample struct {
	// Captured holds, per primary output (in netlist output order), the
	// value latched at the capture deadline.
	Captured []bool
	// Settled holds, per primary output, the final steady-state value
	// (what a nominal-speed circuit would produce).
	Settled []bool
	// Arrival holds, per primary output, the time the output reached its
	// final value (0 when it never switched).
	Arrival []float64
	// WorstArrival is the maximum over Arrival.
	WorstArrival float64
	// Violations counts outputs whose captured value differs from the
	// settled value.
	Violations int
	// Toggles counts gate-output transitions during the run (a dynamic
	// energy proxy; Exact counts every event, Fast counts changed gates).
	Toggles int64
	// EnergyFJ is the dynamic energy of those transitions (sum of the
	// toggled gates' per-transition energies), femtojoules.
	EnergyFJ float64
}

// Erroneous reports whether any output captured a wrong value.
func (s *Sample) Erroneous() bool { return s.Violations > 0 }

// Clone returns an independent deep copy of the sample. Runner.Run
// returns an engine-owned Sample that the next Run overwrites; callers
// that need to keep a result past the next Run must Clone it (the
// sampleretain teva-vet analyzer flags retained Run results).
func (s *Sample) Clone() *Sample {
	c := *s
	c.Captured = append([]bool(nil), s.Captured...)
	c.Settled = append([]bool(nil), s.Settled...)
	c.Arrival = append([]float64(nil), s.Arrival...)
	return &c
}

// Runner is a timing engine bound to one netlist and corner.
type Runner interface {
	// Run simulates the transition from the prev input vector to cur.
	// Inputs switch at inputArrival (the register clock-to-Q time);
	// capture happens at deadline (CLK minus setup). The returned Sample
	// is valid until the next Run call.
	Run(prev, cur []bool, inputArrival, deadline float64) *Sample
}

// ---------------------------------------------------------------------------
// Fast engine

// FastSim is the levelized arrival-time engine.
type FastSim struct {
	c       *netlist.Compiled
	scale   float64
	oldV    []bool
	newV    []bool
	changed []bool
	arrival []float64
	sample  Sample
}

// NewFast returns a fast engine for the compiled netlist with all gate
// delays multiplied by scale (the corner's delay inflation; 1.0 =
// nominal).
func NewFast(c *netlist.Compiled, scale float64) *FastSim {
	s := &FastSim{
		c:       c,
		scale:   scale,
		oldV:    make([]bool, c.NumNets),
		newV:    make([]bool, c.NumNets),
		changed: make([]bool, c.NumNets),
		arrival: make([]float64, c.NumNets),
	}
	s.oldV[netlist.Const1] = true
	s.newV[netlist.Const1] = true
	outs := len(c.Outputs)
	s.sample = Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

// Run implements Runner.
func (s *FastSim) Run(prev, cur []bool, inputArrival, deadline float64) *Sample {
	c := s.c
	if len(prev) != len(c.Inputs) || len(cur) != len(c.Inputs) {
		panic("timingsim: input width mismatch")
	}
	for i, net := range c.Inputs {
		s.oldV[net] = prev[i]
		s.newV[net] = cur[i]
		s.changed[net] = prev[i] != cur[i]
		s.arrival[net] = inputArrival
	}
	var toggles int64
	var energy float64
	in, stride := c.In, c.Stride
	oldV, newV, changed := s.oldV, s.newV, s.changed
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		// Padded pins read Const0, which never changes and which every
		// opcode ignores beyond its arity, so the loads are unconditional.
		i0, i1, i2 := in[base], in[base+1], in[base+2]
		op := c.Op[gi]
		out := c.Out[gi]
		anyChanged := changed[i0] || changed[i1] || changed[i2]
		oldOut := op.Eval(oldV[i0], oldV[i1], oldV[i2])
		oldV[out] = oldOut
		if !anyChanged {
			newV[out] = oldOut
			changed[out] = false
			s.arrival[out] = 0
			continue
		}
		newOut := op.Eval(newV[i0], newV[i1], newV[i2])
		newV[out] = newOut
		if newOut == oldOut {
			changed[out] = false
			s.arrival[out] = 0
			continue
		}
		toggles++
		energy += c.Energy[gi]
		changed[out] = true
		worst := 0.0
		ni := int(c.NumIn[gi])
		for i := 0; i < ni; i++ {
			inNet := in[base+i]
			if !changed[inNet] {
				continue
			}
			var d float64
			if newOut {
				d = c.Rise[base+i]
			} else {
				d = c.Fall[base+i]
			}
			if t := s.arrival[inNet] + d*s.scale; t > worst {
				worst = t
			}
		}
		if worst == 0 {
			worst = inputArrival
		}
		s.arrival[out] = worst
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range c.Outputs {
		settled := s.newV[net]
		sm.Settled[i] = settled
		arr := 0.0
		if s.changed[net] {
			arr = s.arrival[net]
		}
		sm.Arrival[i] = arr
		if arr > sm.WorstArrival {
			sm.WorstArrival = arr
		}
		if s.changed[net] && arr > deadline {
			sm.Captured[i] = s.oldV[net] // old-value capture
			sm.Violations++
		} else {
			sm.Captured[i] = settled
		}
	}
	return sm
}

// ---------------------------------------------------------------------------
// Exact engine

type event struct {
	time  float64
	seq   uint64 // global ordering tiebreak
	net   netlist.NetID
	value bool
	stamp uint32 // per-net validity stamp
}

// before is the heap ordering: earliest time first, global sequence number
// as the tiebreak. seq is unique per event, so the order is total and the
// pop sequence is independent of heap internals.
func (e event) before(o event) bool {
	//teva:allow floateq -- tie-break comparator: equal times fall through to seq
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// eventHeap is a typed binary min-heap of events. Unlike container/heap
// it moves concrete values — no interface boxing, so pushing an event
// allocates nothing once the backing array has grown to the run's
// high-water mark (it is reset with h = h[:0] between runs and its
// capacity reused).
type eventHeap []event

func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q[i].before(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && q[r].before(q[kid]) {
			kid = r
		}
		if !q[kid].before(q[i]) {
			break
		}
		q[i], q[kid] = q[kid], q[i]
		i = kid
	}
	*h = q
	return top
}

// ExactSim is the event-driven engine with inertial delays.
type ExactSim struct {
	c          *netlist.Compiled
	scale      float64
	values     []bool
	atDeadline []bool
	lastChange []float64
	stamp      []uint32
	heap       eventHeap
	seq        uint64
	sample     Sample
}

// NewExact returns an exact engine for the compiled netlist at the given
// delay scale.
func NewExact(c *netlist.Compiled, scale float64) *ExactSim {
	s := &ExactSim{
		c:          c,
		scale:      scale,
		values:     make([]bool, c.NumNets),
		atDeadline: make([]bool, c.NumNets),
		lastChange: make([]float64, c.NumNets),
		stamp:      make([]uint32, c.NumNets),
	}
	outs := len(c.Outputs)
	s.sample = Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

// settle evaluates the netlist functionally into values (steady state for
// the prev vector).
func (s *ExactSim) settle(inputs []bool) {
	c := s.c
	s.values[netlist.Const0] = false
	s.values[netlist.Const1] = true
	for i, net := range c.Inputs {
		s.values[net] = inputs[i]
	}
	vals := s.values
	in, stride := c.In, c.Stride
	for gi := 0; gi < c.NumGates; gi++ {
		base := gi * stride
		vals[c.Out[gi]] = c.Op[gi].Eval(vals[in[base]], vals[in[base+1]], vals[in[base+2]])
	}
}

// scheduleGate re-evaluates gate gi at time t following a change on one of
// its inputs and schedules the resulting output event (inertial rule: a
// newer evaluation supersedes any pending event on the output).
func (s *ExactSim) scheduleGate(gi, changedPin int32, t float64) {
	c := s.c
	base := int(gi) * c.Stride
	in := c.In
	v := c.Op[gi].Eval(s.values[in[base]], s.values[in[base+1]], s.values[in[base+2]])
	out := netlist.NetID(c.Out[gi])
	// Supersede any pending event for this net.
	s.stamp[out]++
	if v == s.values[out] {
		return // pulse filtered (or no change)
	}
	var d float64
	if v {
		d = c.Rise[base+int(changedPin)]
	} else {
		d = c.Fall[base+int(changedPin)]
	}
	s.seq++
	s.heap.push(event{
		time:  t + d*s.scale,
		seq:   s.seq,
		net:   out,
		value: v,
		stamp: s.stamp[out],
	})
}

// Run implements Runner.
func (s *ExactSim) Run(prev, cur []bool, inputArrival, deadline float64) *Sample {
	c := s.c
	if len(prev) != len(c.Inputs) || len(cur) != len(c.Inputs) {
		panic("timingsim: input width mismatch")
	}
	s.settle(prev)
	for i := range s.lastChange {
		s.lastChange[i] = 0
		s.stamp[i] = 0
	}
	s.heap = s.heap[:0]
	s.seq = 0

	// Primary-input transitions at inputArrival.
	for i, net := range c.Inputs {
		if cur[i] != prev[i] {
			s.seq++
			s.stamp[net]++
			s.heap.push(event{
				time:  inputArrival,
				seq:   s.seq,
				net:   net,
				value: cur[i],
				stamp: s.stamp[net],
			})
		}
	}

	snapshotTaken := false
	var toggles int64
	var energy float64
	for len(s.heap) > 0 {
		e := s.heap.pop()
		if e.stamp != s.stamp[e.net] {
			continue // superseded
		}
		if !snapshotTaken && e.time > deadline {
			copy(s.atDeadline, s.values)
			snapshotTaken = true
		}
		if s.values[e.net] == e.value {
			continue
		}
		s.values[e.net] = e.value
		s.lastChange[e.net] = e.time
		if d := c.Driver[e.net]; d >= 0 {
			toggles++ // count gate-output transitions only, as Fast does
			energy += c.Energy[d]
		}
		for j := c.FanOff[e.net]; j < c.FanOff[e.net+1]; j++ {
			s.scheduleGate(c.FanGate[j], c.FanPin[j], e.time)
		}
	}
	if !snapshotTaken {
		copy(s.atDeadline, s.values)
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range c.Outputs {
		sm.Settled[i] = s.values[net]
		sm.Captured[i] = s.atDeadline[net]
		sm.Arrival[i] = s.lastChange[net]
		if sm.Arrival[i] > sm.WorstArrival {
			sm.WorstArrival = sm.Arrival[i]
		}
		if sm.Captured[i] != sm.Settled[i] {
			sm.Violations++
		}
	}
	return sm
}

// MaxDeadline is a deadline so large no path misses it; used to obtain
// pure settling behaviour.
const MaxDeadline = math.MaxFloat64 / 4
