// Package timingsim simulates a netlist with annotated gate delays under a
// voltage corner. It is the "second instance" of the paper's dynamic
// timing analysis: the reduced-voltage gate-level simulation whose sampled
// outputs are compared with the golden run to detect timing errors.
//
// Two engines are provided:
//
//   - Exact: event-driven simulation with inertial delays. Captures the
//     value every net holds at the capture deadline, including glitches.
//   - Fast: single-pass levelized transition/arrival propagation. For a
//     late-arriving bit it assumes the previous-cycle value is captured
//     (the standard "old value" timing-error model) and ignores
//     glitch-induced wrong captures. ~10-50x faster; validated against
//     Exact in tests and used for large characterization campaigns.
package timingsim

import (
	"container/heap"
	"math"

	"teva/internal/netlist"
)

// Sample is the outcome of simulating one input transition.
type Sample struct {
	// Captured holds, per primary output (in netlist output order), the
	// value latched at the capture deadline.
	Captured []bool
	// Settled holds, per primary output, the final steady-state value
	// (what a nominal-speed circuit would produce).
	Settled []bool
	// Arrival holds, per primary output, the time the output reached its
	// final value (0 when it never switched).
	Arrival []float64
	// WorstArrival is the maximum over Arrival.
	WorstArrival float64
	// Violations counts outputs whose captured value differs from the
	// settled value.
	Violations int
	// Toggles counts gate-output transitions during the run (a dynamic
	// energy proxy; Exact counts every event, Fast counts changed gates).
	Toggles int64
	// EnergyFJ is the dynamic energy of those transitions (sum of the
	// toggled gates' per-transition energies), femtojoules.
	EnergyFJ float64
}

// Erroneous reports whether any output captured a wrong value.
func (s *Sample) Erroneous() bool { return s.Violations > 0 }

// Runner is a timing engine bound to one netlist and corner.
type Runner interface {
	// Run simulates the transition from the prev input vector to cur.
	// Inputs switch at inputArrival (the register clock-to-Q time);
	// capture happens at deadline (CLK minus setup). The returned Sample
	// is valid until the next Run call.
	Run(prev, cur []bool, inputArrival, deadline float64) *Sample
}

// ---------------------------------------------------------------------------
// Fast engine

// FastSim is the levelized arrival-time engine.
type FastSim struct {
	n       *netlist.Netlist
	scale   float64
	oldV    []bool
	newV    []bool
	changed []bool
	arrival []float64
	sample  Sample
	inBuf   []bool
}

// NewFast returns a fast engine for the netlist with all gate delays
// multiplied by scale (the corner's delay inflation; 1.0 = nominal).
func NewFast(n *netlist.Netlist, scale float64) *FastSim {
	s := &FastSim{
		n:       n,
		scale:   scale,
		oldV:    make([]bool, n.NumNets()),
		newV:    make([]bool, n.NumNets()),
		changed: make([]bool, n.NumNets()),
		arrival: make([]float64, n.NumNets()),
		inBuf:   make([]bool, 4),
	}
	s.oldV[netlist.Const1] = true
	s.newV[netlist.Const1] = true
	outs := len(n.Outputs())
	s.sample = Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

// Run implements Runner.
func (s *FastSim) Run(prev, cur []bool, inputArrival, deadline float64) *Sample {
	ins := s.n.Inputs()
	if len(prev) != len(ins) || len(cur) != len(ins) {
		panic("timingsim: input width mismatch")
	}
	for i, net := range ins {
		s.oldV[net] = prev[i]
		s.newV[net] = cur[i]
		s.changed[net] = prev[i] != cur[i]
		s.arrival[net] = inputArrival
	}
	var toggles int64
	var energy float64
	gates := s.n.Gates()
	bufOld := s.inBuf[:4]
	var bufNew [4]bool
	for gi := range gates {
		g := &gates[gi]
		ni := len(g.Inputs)
		anyChanged := false
		for i := 0; i < ni; i++ {
			in := g.Inputs[i]
			bufOld[i] = s.oldV[in]
			bufNew[i] = s.newV[in]
			anyChanged = anyChanged || s.changed[in]
		}
		out := g.Output
		oldOut := g.Eval(bufOld[:ni])
		s.oldV[out] = oldOut
		if !anyChanged {
			s.newV[out] = oldOut
			s.changed[out] = false
			s.arrival[out] = 0
			continue
		}
		newOut := g.Eval(bufNew[:ni])
		s.newV[out] = newOut
		if newOut == oldOut {
			s.changed[out] = false
			s.arrival[out] = 0
			continue
		}
		toggles++
		energy += g.Energy
		s.changed[out] = true
		worst := 0.0
		for i := 0; i < ni; i++ {
			in := g.Inputs[i]
			if !s.changed[in] {
				continue
			}
			var d float64
			if newOut {
				d = g.Delays[i].Rise
			} else {
				d = g.Delays[i].Fall
			}
			if t := s.arrival[in] + d*s.scale; t > worst {
				worst = t
			}
		}
		if worst == 0 {
			worst = inputArrival
		}
		s.arrival[out] = worst
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range s.n.Outputs() {
		settled := s.newV[net]
		sm.Settled[i] = settled
		arr := 0.0
		if s.changed[net] {
			arr = s.arrival[net]
		}
		sm.Arrival[i] = arr
		if arr > sm.WorstArrival {
			sm.WorstArrival = arr
		}
		if s.changed[net] && arr > deadline {
			sm.Captured[i] = s.oldV[net] // old-value capture
			sm.Violations++
		} else {
			sm.Captured[i] = settled
		}
	}
	return sm
}

// ---------------------------------------------------------------------------
// Exact engine

type event struct {
	time  float64
	seq   uint64 // global ordering tiebreak
	net   netlist.NetID
	value bool
	stamp uint32 // per-net validity stamp
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// ExactSim is the event-driven engine with inertial delays.
type ExactSim struct {
	n          *netlist.Netlist
	scale      float64
	values     []bool
	atDeadline []bool
	lastChange []float64
	stamp      []uint32
	heap       eventHeap
	seq        uint64
	sample     Sample
	inBuf      [4]bool
}

// NewExact returns an exact engine for the netlist at the given delay
// scale.
func NewExact(n *netlist.Netlist, scale float64) *ExactSim {
	s := &ExactSim{
		n:          n,
		scale:      scale,
		values:     make([]bool, n.NumNets()),
		atDeadline: make([]bool, n.NumNets()),
		lastChange: make([]float64, n.NumNets()),
		stamp:      make([]uint32, n.NumNets()),
	}
	outs := len(n.Outputs())
	s.sample = Sample{
		Captured: make([]bool, outs),
		Settled:  make([]bool, outs),
		Arrival:  make([]float64, outs),
	}
	return s
}

// settle evaluates the netlist functionally into values (steady state for
// the prev vector).
func (s *ExactSim) settle(inputs []bool) {
	s.values[netlist.Const0] = false
	s.values[netlist.Const1] = true
	for i, net := range s.n.Inputs() {
		s.values[net] = inputs[i]
	}
	gates := s.n.Gates()
	for gi := range gates {
		g := &gates[gi]
		buf := s.inBuf[:len(g.Inputs)]
		for i, in := range g.Inputs {
			buf[i] = s.values[in]
		}
		s.values[g.Output] = g.Eval(buf)
	}
}

// scheduleGate re-evaluates gate g at time t following a change on one of
// its inputs and schedules the resulting output event (inertial rule: a
// newer evaluation supersedes any pending event on the output).
func (s *ExactSim) scheduleGate(g *netlist.Gate, changedPin int, t float64) {
	buf := s.inBuf[:len(g.Inputs)]
	for i, in := range g.Inputs {
		buf[i] = s.values[in]
	}
	v := g.Eval(buf)
	out := g.Output
	// Supersede any pending event for this net.
	s.stamp[out]++
	if v == s.values[out] {
		return // pulse filtered (or no change)
	}
	var d float64
	if v {
		d = g.Delays[changedPin].Rise
	} else {
		d = g.Delays[changedPin].Fall
	}
	s.seq++
	heap.Push(&s.heap, event{
		time:  t + d*s.scale,
		seq:   s.seq,
		net:   out,
		value: v,
		stamp: s.stamp[out],
	})
}

// Run implements Runner.
func (s *ExactSim) Run(prev, cur []bool, inputArrival, deadline float64) *Sample {
	ins := s.n.Inputs()
	if len(prev) != len(ins) || len(cur) != len(ins) {
		panic("timingsim: input width mismatch")
	}
	s.settle(prev)
	for i := range s.lastChange {
		s.lastChange[i] = 0
		s.stamp[i] = 0
	}
	s.heap = s.heap[:0]
	s.seq = 0

	// Primary-input transitions at inputArrival.
	for i, net := range ins {
		if cur[i] != prev[i] {
			s.seq++
			s.stamp[net]++
			heap.Push(&s.heap, event{
				time:  inputArrival,
				seq:   s.seq,
				net:   net,
				value: cur[i],
				stamp: s.stamp[net],
			})
		}
	}

	snapshotTaken := false
	var toggles int64
	var energy float64
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(event)
		if e.stamp != s.stamp[e.net] {
			continue // superseded
		}
		if !snapshotTaken && e.time > deadline {
			copy(s.atDeadline, s.values)
			snapshotTaken = true
		}
		if s.values[e.net] == e.value {
			continue
		}
		s.values[e.net] = e.value
		s.lastChange[e.net] = e.time
		if d := s.n.Driver(e.net); d >= 0 {
			toggles++ // count gate-output transitions only, as Fast does
			energy += s.n.Gate(d).Energy
		}
		for _, gid := range s.n.Fanout(e.net) {
			g := s.n.Gate(gid)
			pin := 0
			for i, in := range g.Inputs {
				if in == e.net {
					pin = i
					break
				}
			}
			s.scheduleGate(g, pin, e.time)
		}
	}
	if !snapshotTaken {
		copy(s.atDeadline, s.values)
	}

	sm := &s.sample
	sm.WorstArrival = 0
	sm.Violations = 0
	sm.Toggles = toggles
	sm.EnergyFJ = energy
	for i, net := range s.n.Outputs() {
		sm.Settled[i] = s.values[net]
		sm.Captured[i] = s.atDeadline[net]
		sm.Arrival[i] = s.lastChange[net]
		if sm.Arrival[i] > sm.WorstArrival {
			sm.WorstArrival = sm.Arrival[i]
		}
		if sm.Captured[i] != sm.Settled[i] {
			sm.Violations++
		}
	}
	return sm
}

// MaxDeadline is a deadline so large no path misses it; used to obtain
// pure settling behaviour.
const MaxDeadline = math.MaxFloat64 / 4
