package timingsim_test

import (
	"math"
	"testing"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/netlist"
	"teva/internal/prng"
	"teva/internal/timingsim"
)

var lib = cell.Default()

// bufChain builds a single-input circuit through n buffers.
func bufChain(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain", lib, 3)
	x := b.InputNet()
	out := b.BufChain(x, n)
	b.Output(netlist.Bus{out})
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// chainDelay sums the rise (or fall) path delay through the chain.
func chainDelay(n *netlist.Netlist, rise bool) float64 {
	var d float64
	for _, g := range n.Gates() {
		if rise {
			d += g.Delays[0].Rise
		} else {
			d += g.Delays[0].Fall
		}
	}
	return d
}

func runners(n *netlist.Netlist, scale float64) map[string]timingsim.Runner {
	return map[string]timingsim.Runner{
		"fast":  timingsim.NewFast(n.Compiled(), scale),
		"exact": timingsim.NewExact(n.Compiled(), scale),
	}
}

func TestChainCapturesAfterPropagation(t *testing.T) {
	n := bufChain(t, 10)
	rise := chainDelay(n, true)
	for name, r := range runners(n, 1.0) {
		s := r.Run([]bool{false}, []bool{true}, 0, rise+1)
		if !s.Captured[0] || s.Violations != 0 {
			t.Fatalf("%s: generous deadline should capture the new value", name)
		}
		if math.Abs(s.WorstArrival-rise) > 1e-9 {
			t.Fatalf("%s: arrival %v want %v", name, s.WorstArrival, rise)
		}
	}
}

func TestChainTimingErrorCapturesOldValue(t *testing.T) {
	n := bufChain(t, 10)
	rise := chainDelay(n, true)
	for name, r := range runners(n, 1.0) {
		s := r.Run([]bool{false}, []bool{true}, 0, rise/2)
		if s.Captured[0] {
			t.Fatalf("%s: tight deadline should capture the old value", name)
		}
		if !s.Settled[0] {
			t.Fatalf("%s: settled value must be the new value", name)
		}
		if s.Violations != 1 {
			t.Fatalf("%s: expected 1 violation, got %d", name, s.Violations)
		}
	}
}

func TestNoTransitionNoError(t *testing.T) {
	n := bufChain(t, 10)
	for name, r := range runners(n, 1.0) {
		s := r.Run([]bool{true}, []bool{true}, 0, 0.001)
		if s.Violations != 0 || s.WorstArrival != 0 {
			t.Fatalf("%s: steady input must not produce violations", name)
		}
		if !s.Captured[0] || !s.Settled[0] {
			t.Fatalf("%s: wrong steady values", name)
		}
	}
}

func TestVoltageScaleInflatesDelay(t *testing.T) {
	n := bufChain(t, 10)
	rise := chainDelay(n, true)
	const scale = 1.26
	for name, r := range runners(n, scale) {
		s := r.Run([]bool{false}, []bool{true}, 0, timingsim.MaxDeadline)
		if math.Abs(s.WorstArrival-rise*scale) > 1e-9 {
			t.Fatalf("%s: scaled arrival %v want %v", name, s.WorstArrival, rise*scale)
		}
		// A deadline between nominal and scaled delay: fails only scaled.
		mid := rise * (1 + scale) / 2
		if s := r.Run([]bool{false}, []bool{true}, 0, mid); s.Violations != 1 {
			t.Fatalf("%s: undervolted run should miss deadline %v", name, mid)
		}
	}
	nominal := timingsim.NewFast(n.Compiled(), 1.0)
	if s := nominal.Run([]bool{false}, []bool{true}, 0, rise*(1+scale)/2); s.Violations != 0 {
		t.Fatal("nominal run should meet the mid deadline")
	}
}

func TestInputArrivalShiftsCapture(t *testing.T) {
	n := bufChain(t, 5)
	rise := chainDelay(n, true)
	for name, r := range runners(n, 1.0) {
		clkToQ := 85.0
		s := r.Run([]bool{false}, []bool{true}, clkToQ, timingsim.MaxDeadline)
		if math.Abs(s.WorstArrival-(clkToQ+rise)) > 1e-9 {
			t.Fatalf("%s: arrival %v want %v", name, s.WorstArrival, clkToQ+rise)
		}
	}
}

// rippleHarness builds a w-bit ripple adder with an exposed carry-out.
func rippleHarness(t *testing.T, w int) (*netlist.Netlist, netlist.Bus) {
	t.Helper()
	b := netlist.NewBuilder("ripple", lib, 4)
	x := b.Input(w)
	y := b.Input(w)
	cin := b.InputNet()
	sum, cout := b.RippleAdder(x, y, cin)
	outs := append(append(netlist.Bus{}, sum...), cout)
	b.Output(outs)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, outs
}

func TestCarryChainIsDataDependent(t *testing.T) {
	const w = 16
	n, _ := rippleHarness(t, w)
	mk := func(x, y, cin uint64) []bool {
		in := make([]bool, 2*w+1)
		logicsim.PackInputs(in, 0, w, x)
		logicsim.PackInputs(in, w, w, y)
		in[2*w] = cin == 1
		return in
	}
	for name, r := range runners(n, 1.0) {
		// Full carry propagation: 0xFFFF + 0, cin 0 -> 1. The Sample is
		// reused by the next Run, so copy the value out.
		long := r.Run(mk(0xFFFF, 0, 0), mk(0xFFFF, 0, 1), 0, timingsim.MaxDeadline).WorstArrival
		// LSB-only change with no carry chain: 0 + 0, cin 0 -> 1.
		short := r.Run(mk(0, 0, 0), mk(0, 0, 1), 0, timingsim.MaxDeadline).WorstArrival
		if long <= 2*short {
			t.Fatalf("%s: full carry chain (%v) should dwarf LSB-only (%v)",
				name, long, short)
		}
	}
}

func TestTimingErrorOnLongCarryOnly(t *testing.T) {
	const w = 16
	n, _ := rippleHarness(t, w)
	mk := func(x, y, cin uint64) []bool {
		in := make([]bool, 2*w+1)
		logicsim.PackInputs(in, 0, w, x)
		logicsim.PackInputs(in, w, w, y)
		in[2*w] = cin == 1
		return in
	}
	fast := timingsim.NewFast(n.Compiled(), 1.0)
	probe := fast.Run(mk(0xFFFF, 0, 0), mk(0xFFFF, 0, 1), 0, timingsim.MaxDeadline)
	deadline := probe.WorstArrival * 0.6
	for name, r := range runners(n, 1.0) {
		long := r.Run(mk(0xFFFF, 0, 0), mk(0xFFFF, 0, 1), 0, deadline)
		if long.Violations == 0 {
			t.Fatalf("%s: long carry chain should violate the tightened deadline", name)
		}
		short := r.Run(mk(0, 0, 0), mk(0, 0, 1), 0, deadline)
		if short.Violations != 0 {
			t.Fatalf("%s: short path must not violate", name)
		}
	}
}

func TestSettledMatchesFunctionalSim(t *testing.T) {
	const w = 12
	n, _ := rippleHarness(t, w)
	golden := logicsim.New(n.Compiled())
	src := prng.New(77)
	prev := make([]bool, 2*w+1)
	cur := make([]bool, 2*w+1)
	for name, r := range runners(n, 1.3) {
		for trial := 0; trial < 300; trial++ {
			for i := range prev {
				prev[i] = src.Bool()
				cur[i] = src.Bool()
			}
			s := r.Run(prev, cur, 0, timingsim.MaxDeadline)
			golden.Run(cur)
			for i, net := range n.Outputs() {
				if s.Settled[i] != golden.Value(net) {
					t.Fatalf("%s: settled bit %d wrong on trial %d", name, i, trial)
				}
				if s.Captured[i] != s.Settled[i] {
					t.Fatalf("%s: generous deadline must capture settled values", name)
				}
			}
		}
	}
}

func TestFastAgreesWithExactOnChainTopologies(t *testing.T) {
	// Without reconvergent fanout the two engines must agree exactly on
	// captured values for any deadline.
	n := bufChain(t, 8)
	fast := timingsim.NewFast(n.Compiled(), 1.0)
	exact := timingsim.NewExact(n.Compiled(), 1.0)
	total := chainDelay(n, true)
	for _, frac := range []float64{0.1, 0.5, 0.9, 1.1} {
		deadline := total * frac
		sf := fast.Run([]bool{false}, []bool{true}, 0, deadline)
		se := exact.Run([]bool{false}, []bool{true}, 0, deadline)
		if sf.Captured[0] != se.Captured[0] {
			t.Fatalf("engines disagree at deadline fraction %v", frac)
		}
	}
}

func TestFastApproximatesExactOnAdder(t *testing.T) {
	const w = 10
	n, _ := rippleHarness(t, w)
	fast := timingsim.NewFast(n.Compiled(), 1.0)
	exact := timingsim.NewExact(n.Compiled(), 1.0)
	src := prng.New(123)
	prev := make([]bool, 2*w+1)
	cur := make([]bool, 2*w+1)
	var bits, disagreements int
	for trial := 0; trial < 400; trial++ {
		for i := range prev {
			prev[i] = src.Bool()
			cur[i] = src.Bool()
		}
		// A deadline in the contested region.
		probe := exact.Run(prev, cur, 0, timingsim.MaxDeadline)
		deadline := probe.WorstArrival * 0.7
		sf := fast.Run(prev, cur, 0, deadline)
		se := exact.Run(prev, cur, 0, deadline)
		for i := range sf.Captured {
			bits++
			if sf.Captured[i] != se.Captured[i] {
				disagreements++
			}
		}
	}
	// The deadline sits deliberately inside the contested settling window,
	// where the fast engine's old-value assumption and the exact engine's
	// glitch-accurate capture legitimately differ; they must still agree
	// on the large majority of bits.
	if frac := float64(disagreements) / float64(bits); frac > 0.20 {
		t.Fatalf("fast/exact captured-bit disagreement %.3f exceeds 20%%", frac)
	}
}

func TestTogglesCounted(t *testing.T) {
	n := bufChain(t, 10)
	for name, r := range runners(n, 1.0) {
		s := r.Run([]bool{false}, []bool{true}, 0, timingsim.MaxDeadline)
		if s.Toggles != 10 {
			t.Fatalf("%s: toggles = %d, want 10", name, s.Toggles)
		}
		s = r.Run([]bool{true}, []bool{true}, 0, timingsim.MaxDeadline)
		if s.Toggles != 0 {
			t.Fatalf("%s: steady input toggles = %d", name, s.Toggles)
		}
	}
}

func TestExactFiltersGlitchesInertially(t *testing.T) {
	// x AND NOT(x) through a slow inverter produces a hazard pulse at the
	// AND gate; the inertial model must leave the steady-state output low
	// and the captured value low for a generous deadline.
	b := netlist.NewBuilder("glitch", lib, 6)
	x := b.InputNet()
	nx := b.BufChain(b.Not(x), 3) // delay the complement path
	y := b.And(x, nx)
	b.Output(netlist.Bus{y})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact := timingsim.NewExact(n.Compiled(), 1.0)
	s := exact.Run([]bool{false}, []bool{true}, 0, timingsim.MaxDeadline)
	if s.Captured[0] || s.Settled[0] {
		t.Fatal("glitch must not survive to a generous deadline")
	}
}

func TestErroneousHelper(t *testing.T) {
	s := &timingsim.Sample{}
	if s.Erroneous() {
		t.Fatal("zero violations should not be erroneous")
	}
	s.Violations = 2
	if !s.Erroneous() {
		t.Fatal("violations should be erroneous")
	}
}
