package errmodel

import (
	"math"
	"testing"

	"teva/internal/cpu"
	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/prng"
)

func fpEvent(op fpu.Op) cpu.Event {
	return cpu.Event{FPUDatapath: true, FPOp: op, Width: op.ResultWidth()}
}

func TestDAModel(t *testing.T) {
	m := BuildDA("VR15", 10, 10000)
	if m.Kind() != DA || m.Level() != "VR15" {
		t.Fatal("metadata wrong")
	}
	if m.ER != 0.001 {
		t.Fatalf("ER %v", m.ER)
	}
	// Workload independence.
	var shares [fpu.NumOps]float64
	if m.ExpectedER(shares) != 0.001 {
		t.Fatal("DA ER must be workload independent")
	}
	// Injection statistics: rate and single-bit masks.
	inj := m.NewInjector(prng.New(1))
	hits, trials := 0, 200000
	for i := 0; i < trials; i++ {
		mask := inj.OnWriteback(cpu.Event{Width: 64})
		if mask != 0 {
			hits++
			if mask&(mask-1) != 0 {
				t.Fatal("DA mask must be single-bit")
			}
		}
	}
	got := float64(hits) / float64(trials)
	if math.Abs(got-0.001) > 0.0004 {
		t.Fatalf("DA injection rate %v, want ~0.001", got)
	}
	// DA injects into any destination width.
	inj = m.NewInjector(prng.New(2))
	for i := 0; i < 100000; i++ {
		if mask := inj.OnWriteback(cpu.Event{Width: 32}); mask >= 1<<32 {
			t.Fatal("DA mask outside 32-bit destination")
		}
	}
}

func TestDAZeroSample(t *testing.T) {
	m := BuildDA("VR15", 0, 0)
	if m.ER != 0 {
		t.Fatal("empty sample must give zero ER")
	}
	inj := m.NewInjector(prng.New(3))
	for i := 0; i < 1000; i++ {
		if inj.OnWriteback(cpu.Event{Width: 64}) != 0 {
			t.Fatal("zero-ER model must not inject")
		}
	}
}

// summaryWith builds a synthetic DTA summary.
func summaryWith(op fpu.Op, total int, masks []uint64) *dta.Summary {
	recs := make([]dta.Record, 0, total)
	for _, m := range masks {
		recs = append(recs, dta.Record{Mask: m})
	}
	for len(recs) < total {
		recs = append(recs, dta.Record{})
	}
	return dta.Summarize(op, recs)
}

func TestIAModel(t *testing.T) {
	sums := map[fpu.Op]*dta.Summary{
		fpu.DMul: summaryWith(fpu.DMul, 1000, []uint64{0b11, 0b10, 0b10, 0b10}),
	}
	m := BuildIA("VR20", sums)
	if m.Kind() != IA {
		t.Fatal("kind")
	}
	st := m.PerOp[fpu.DMul]
	if st.ER != 0.004 {
		t.Fatalf("IA ER %v", st.ER)
	}
	if st.BitProb[0] != 0.25 || st.BitProb[1] != 1.0 {
		t.Fatalf("bit probs %v", st.BitProb[:2])
	}
	// Injection respects per-op gating.
	inj := m.NewInjector(prng.New(5))
	if inj.OnWriteback(fpEvent(fpu.DAdd)) != 0 {
		t.Fatal("op without stats must not inject")
	}
	if inj.OnWriteback(cpu.Event{Width: 32}) != 0 {
		t.Fatal("IA must ignore non-FPU writebacks")
	}
	hits, trials := 0, 300000
	for i := 0; i < trials; i++ {
		mask := inj.OnWriteback(fpEvent(fpu.DMul))
		if mask != 0 {
			hits++
			if mask&^uint64(0b11) != 0 {
				t.Fatalf("mask %b outside characterized bits", mask)
			}
		}
	}
	rate := float64(hits) / float64(trials)
	if math.Abs(rate-0.004) > 0.001 {
		t.Fatalf("IA rate %v want ~0.004", rate)
	}
	var shares [fpu.NumOps]float64
	shares[fpu.DMul] = 0.5
	if got := m.ExpectedER(shares); math.Abs(got-0.002) > 1e-12 {
		t.Fatalf("ExpectedER %v", got)
	}
}

func TestWAModel(t *testing.T) {
	masks := []uint64{0xF0, 0x0F, 0xF0}
	sums := map[fpu.Op]*dta.Summary{
		fpu.DSub: summaryWith(fpu.DSub, 100, masks),
	}
	m := BuildWA("VR15", "cg", sums)
	if m.Kind() != WA || m.Workload != "cg" {
		t.Fatal("metadata")
	}
	st := m.PerOp[fpu.DSub]
	if st.ER != 0.03 || len(st.Masks) != 3 {
		t.Fatalf("stats %+v", st)
	}
	inj := m.NewInjector(prng.New(7))
	seen := map[uint64]int{}
	for i := 0; i < 200000; i++ {
		if mask := inj.OnWriteback(fpEvent(fpu.DSub)); mask != 0 {
			seen[mask]++
		}
	}
	if len(seen) != 2 { // 0xF0 and 0x0F
		t.Fatalf("observed masks %v", seen)
	}
	if seen[0xF0] < seen[0x0F] {
		t.Fatal("pool frequencies not respected")
	}
	if inj.OnWriteback(fpEvent(fpu.DMul)) != 0 {
		t.Fatal("uncharacterized op must not inject")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	models := []Model{
		BuildDA("VR15", 3, 1000),
		BuildIA("VR20", map[fpu.Op]*dta.Summary{
			fpu.DMul: summaryWith(fpu.DMul, 100, []uint64{0b101}),
		}),
		BuildWA("VR20", "sobel", map[fpu.Op]*dta.Summary{
			fpu.DAdd: summaryWith(fpu.DAdd, 50, []uint64{0xAA}),
		}),
	}
	for _, m := range models {
		data, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind() != m.Kind() || back.Level() != m.Level() {
			t.Fatalf("round trip lost identity: %s vs %s", back.Describe(), m.Describe())
		}
		var shares [fpu.NumOps]float64
		for op := range shares {
			shares[op] = 0.01
		}
		if math.Abs(back.ExpectedER(shares)-m.ExpectedER(shares)) > 1e-15 {
			t.Fatal("round trip changed statistics")
		}
	}
	if _, err := Unmarshal([]byte(`{"kind":"XX","body":{}}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := Unmarshal([]byte(`garbage`)); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestDescribe(t *testing.T) {
	for _, m := range []Model{
		BuildDA("VR15", 1, 100),
		BuildIA("VR15", nil),
		BuildWA("VR15", "mg", nil),
	} {
		if m.Describe() == "" {
			t.Fatal("empty description")
		}
	}
}

func TestSingleInjectorTargets(t *testing.T) {
	prof := ExecProfile{TotalInstr: 1000}
	prof.FPOps[fpu.DMul] = 100
	prof.FPOps[fpu.DAdd] = 50

	// WA: only dmul characterized -> always targets dmul.
	wa := BuildWA("VR20", "x", map[fpu.Op]*dta.Summary{
		fpu.DMul: summaryWith(fpu.DMul, 100, []uint64{0xF}),
		fpu.DAdd: summaryWith(fpu.DAdd, 100, nil), // zero rate
	})
	for trial := 0; trial < 50; trial++ {
		inj := SingleInjector(wa, prof, prng.New(uint64(trial)))
		if inj == nil {
			t.Fatal("WA single injector should exist")
		}
		fired := 0
		for i := int64(1); i <= prof.FPOps[fpu.DMul]; i++ {
			ev := fpEvent(fpu.DMul)
			ev.Seq = i
			if mask := inj.OnWriteback(ev); mask != 0 {
				if mask != 0xF {
					t.Fatalf("mask %x not from pool", mask)
				}
				fired++
			}
			// adds must never be hit
			if mask := inj.OnWriteback(fpEvent(fpu.DAdd)); mask != 0 {
				t.Fatal("zero-rate op was injected")
			}
		}
		if fired != 1 {
			t.Fatalf("trial %d: fired %d times, want exactly 1", trial, fired)
		}
	}

	// Zero-rate model -> nil injector.
	empty := BuildWA("VR20", "x", nil)
	if SingleInjector(empty, prof, prng.New(1)) != nil {
		t.Fatal("empty WA model must yield nil injector")
	}

	// DA targets by instruction sequence number.
	da := BuildDA("VR20", 1, 100)
	inj := SingleInjector(da, prof, prng.New(3))
	if inj == nil {
		t.Fatal("DA single injector should exist")
	}
	fired := 0
	for i := int64(1); i <= prof.TotalInstr; i++ {
		if mask := inj.OnWriteback(cpu.Event{Seq: i, Width: 32}); mask != 0 {
			if mask&(mask-1) != 0 {
				t.Fatal("DA mask must be single-bit")
			}
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("DA fired %d times", fired)
	}

	// IA samples masks from the characterized bit distribution.
	ia := BuildIA("VR20", map[fpu.Op]*dta.Summary{
		fpu.DSub: summaryWith(fpu.DSub, 100, []uint64{0b110}),
	})
	prof2 := ExecProfile{TotalInstr: 100}
	prof2.FPOps[fpu.DSub] = 10
	inj = SingleInjector(ia, prof2, prng.New(5))
	fired = 0
	for i := 0; i < 10; i++ {
		if mask := inj.OnWriteback(fpEvent(fpu.DSub)); mask != 0 {
			if mask&^uint64(0b110) != 0 {
				t.Fatalf("IA mask %b outside characterized bits", mask)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("IA fired %d times", fired)
	}
}
