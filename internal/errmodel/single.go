package errmodel

import (
	"teva/internal/cpu"
	"teva/internal/fpu"
	"teva/internal/prng"
)

// ExecProfile summarizes a golden execution for single-injection
// targeting: how many dynamic instructions ran in total and per FPU op.
type ExecProfile struct {
	FPOps      [fpu.NumOps]int64
	TotalInstr int64
}

// SingleInjector returns an injector that corrupts exactly one dynamic
// instruction of the run — the paper's statistical-fault-injection
// discipline ("for every program execution, we apply the bitmasks in a
// random clock cycle"), with the target drawn from the model's injection
// distribution over the golden execution profile:
//
//   - DA-model: a uniformly random dynamic instruction, one random
//     destination bit;
//   - IA/WA-models: an instruction type drawn with probability
//     proportional to (dynamic count x type error ratio), a uniform
//     dynamic instance of that type, and a bitmask from the model's
//     distribution.
//
// It returns nil when the model cannot inject into this profile at all
// (every rate is zero): the paper's "this voltage level produces no
// errors for this application" case.
func SingleInjector(m Model, prof ExecProfile, src *prng.Source) cpu.Injector {
	switch model := m.(type) {
	case *DAModel:
		if model.ER == 0 || prof.TotalInstr == 0 {
			return nil
		}
		return &singleDA{target: int64(src.Uint64n(uint64(prof.TotalInstr))) + 1, src: src}
	case *IAModel:
		op, idx, ok := pickTarget(src, prof, func(op fpu.Op) float64 { return model.PerOp[op].ER })
		if !ok {
			return nil
		}
		return &singleOp{op: op, target: idx, sample: func(s *prng.Source) uint64 {
			return model.sampleMask(op, s)
		}, src: src}
	case *WAModel:
		op, idx, ok := pickTarget(src, prof, func(op fpu.Op) float64 {
			if len(model.PerOp[op].Masks) == 0 {
				return 0
			}
			return model.PerOp[op].ER
		})
		if !ok {
			return nil
		}
		return &singleOp{op: op, target: idx, sample: func(s *prng.Source) uint64 {
			masks := model.PerOp[op].Masks
			return masks[s.Intn(len(masks))]
		}, src: src}
	}
	return nil
}

// pickTarget draws (op, dynamic index) weighted by count x rate.
func pickTarget(src *prng.Source, prof ExecProfile, rate func(fpu.Op) float64) (fpu.Op, int64, bool) {
	var weights [fpu.NumOps]float64
	var total float64
	for op := range weights {
		w := float64(prof.FPOps[op]) * rate(fpu.Op(op))
		weights[op] = w
		total += w
	}
	if total <= 0 {
		return 0, 0, false
	}
	x := src.Float64() * total
	for op, w := range weights {
		x -= w
		if x < 0 {
			idx := int64(src.Uint64n(uint64(prof.FPOps[op]))) + 1
			return fpu.Op(op), idx, true
		}
	}
	// Floating-point edge: fall back to the last weighted op.
	for op := fpu.NumOps - 1; ; op-- {
		if weights[op] > 0 {
			return op, int64(src.Uint64n(uint64(prof.FPOps[op]))) + 1, true
		}
	}
}

// sampleMask draws a bitmask from the IA model's conditional per-bit
// probabilities (non-zero by construction).
func (m *IAModel) sampleMask(op fpu.Op, src *prng.Source) uint64 {
	st := &m.PerOp[op]
	for attempt := 0; attempt < 8; attempt++ {
		var mask uint64
		for i, p := range st.BitProb {
			if p > 0 && src.Float64() < p {
				mask |= 1 << uint(i)
			}
		}
		if mask != 0 {
			return mask
		}
	}
	best, bestP := 0, 0.0
	for i, p := range st.BitProb {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return 1 << uint(best)
}

// singleDA corrupts one random bit of the target dynamic instruction's
// destination (any instruction class).
type singleDA struct {
	target int64
	src    *prng.Source
	fired  bool
}

func (d *singleDA) OnWriteback(ev cpu.Event) uint64 {
	if d.fired || ev.Seq != d.target {
		return 0
	}
	d.fired = true
	return 1 << uint(d.src.Intn(ev.Width))
}

// singleOp corrupts the target-th dynamic instance of one FPU op.
type singleOp struct {
	op     fpu.Op
	target int64
	sample func(*prng.Source) uint64
	src    *prng.Source
	seen   int64
	fired  bool
}

func (d *singleOp) OnWriteback(ev cpu.Event) uint64 {
	if d.fired || !ev.FPUDatapath || ev.FPOp != d.op {
		return 0
	}
	d.seen++
	if d.seen != d.target {
		return 0
	}
	d.fired = true
	return d.sample(d.src)
}
