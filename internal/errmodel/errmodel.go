// Package errmodel implements the three timing-error injection models the
// paper compares (Table I):
//
//   - DA-model: data-agnostic — a fixed, voltage-dependent error ratio;
//     each error flips one uniformly chosen bit of a uniformly chosen
//     instruction's destination register.
//   - IA-model: instruction-aware — per-instruction-type error ratios and
//     per-bit error probabilities extracted by DTA over random operands.
//   - WA-model: instruction- and workload-aware (the paper's proposal) —
//     per-benchmark, per-instruction-type error ratios and empirical
//     bitmask pools extracted by DTA over operands sampled from the
//     workload itself.
//
// Each model turns into a cpu.Injector for microarchitectural injection
// campaigns and serializes to JSON for the tool flow.
package errmodel

import (
	"encoding/json"
	"fmt"

	"teva/internal/cpu"
	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/prng"
)

// Kind discriminates the model families.
type Kind string

// The model families of Table I.
const (
	DA Kind = "DA"
	IA Kind = "IA"
	WA Kind = "WA"
)

// Model is a timing-error injection model bound to one voltage level.
type Model interface {
	// Kind returns the model family.
	Kind() Kind
	// Level returns the voltage-reduction level name ("VR15").
	Level() string
	// Describe returns a one-line summary for reports.
	Describe() string
	// NewInjector returns a fresh injector drawing randomness from src.
	NewInjector(src *prng.Source) cpu.Injector
	// ExpectedER returns the model's expected injected-error ratio
	// (errors per dynamic instruction) for a workload whose per-op
	// dynamic instruction shares are given; opShare[op] is the fraction
	// of all instructions that are FPU instructions of that type.
	ExpectedER(opShare [fpu.NumOps]float64) float64
}

// ---------------------------------------------------------------------------
// DA-model

// DAModel injects uniformly random single-bit flips at a fixed ratio.
type DAModel struct {
	ModelLevel string `json:"level"`
	// ER is the fixed per-instruction error ratio (Eq. 2 over the mixed
	// Monte-Carlo DTA sample).
	ER float64 `json:"er"`
}

// BuildDA estimates the fixed error ratio from DTA summaries of a mixed
// instruction sample: faultyInstr counts DTA-detected errors, totalInstr
// is the full sample size including instructions that cannot fail.
func BuildDA(level string, faultyInstr, totalInstr int64) *DAModel {
	er := 0.0
	if totalInstr > 0 {
		er = float64(faultyInstr) / float64(totalInstr)
	}
	return &DAModel{ModelLevel: level, ER: er}
}

// Kind implements Model.
func (m *DAModel) Kind() Kind { return DA }

// Level implements Model.
func (m *DAModel) Level() string { return m.ModelLevel }

// Describe implements Model.
func (m *DAModel) Describe() string {
	return fmt.Sprintf("DA-model @%s: fixed ER %.3g, uniform single-bit flips", m.ModelLevel, m.ER)
}

// ExpectedER implements Model: the DA ratio is workload-independent.
func (m *DAModel) ExpectedER(_ [fpu.NumOps]float64) float64 { return m.ER }

type daInjector struct {
	m   *DAModel
	src *prng.Source
}

// NewInjector implements Model.
func (m *DAModel) NewInjector(src *prng.Source) cpu.Injector {
	return &daInjector{m: m, src: src}
}

// OnWriteback flips a single uniformly chosen destination bit with the
// fixed probability, for any instruction that writes a register.
func (d *daInjector) OnWriteback(ev cpu.Event) uint64 {
	if d.src.Float64() >= d.m.ER {
		return 0
	}
	return 1 << uint(d.src.Intn(ev.Width))
}

// ---------------------------------------------------------------------------
// IA-model

// IAOpStats is the instruction-aware characterization of one op.
type IAOpStats struct {
	// ER is the probability that an instance of the op suffers an error.
	ER float64 `json:"er"`
	// BitProb[i] is the conditional probability that output bit i is
	// corrupted given that the instruction is faulty.
	BitProb []float64 `json:"bit_prob,omitempty"`
}

// IAModel injects per-instruction-type statistical errors.
type IAModel struct {
	ModelLevel string                `json:"level"`
	PerOp      [fpu.NumOps]IAOpStats `json:"per_op"`
}

// BuildIA derives the model from per-op DTA summaries over random
// operands (one summary per op; missing entries mean no errors).
func BuildIA(level string, summaries map[fpu.Op]*dta.Summary) *IAModel {
	m := &IAModel{ModelLevel: level}
	for op, s := range summaries {
		st := IAOpStats{ER: s.ErrorRatio()}
		if s.Faulty > 0 {
			st.BitProb = make([]float64, len(s.BitErrors))
			for i, c := range s.BitErrors {
				st.BitProb[i] = float64(c) / float64(s.Faulty)
			}
		}
		m.PerOp[op] = st
	}
	return m
}

// Kind implements Model.
func (m *IAModel) Kind() Kind { return IA }

// Level implements Model.
func (m *IAModel) Level() string { return m.ModelLevel }

// Describe implements Model.
func (m *IAModel) Describe() string {
	return fmt.Sprintf("IA-model @%s: per-instruction statistical injection", m.ModelLevel)
}

// ExpectedER implements Model.
func (m *IAModel) ExpectedER(opShare [fpu.NumOps]float64) float64 {
	var er float64
	for op := range m.PerOp {
		er += opShare[op] * m.PerOp[op].ER
	}
	return er
}

type iaInjector struct {
	m   *IAModel
	src *prng.Source
}

// NewInjector implements Model.
func (m *IAModel) NewInjector(src *prng.Source) cpu.Injector {
	return &iaInjector{m: m, src: src}
}

// OnWriteback corrupts FPU results per the op's statistics: with
// probability ER, sample each output bit independently from its
// conditional error probability (retrying an all-zero draw so a selected
// instruction is actually corrupted).
func (d *iaInjector) OnWriteback(ev cpu.Event) uint64 {
	if !ev.FPUDatapath {
		return 0
	}
	st := &d.m.PerOp[ev.FPOp]
	if st.ER == 0 || len(st.BitProb) == 0 || d.src.Float64() >= st.ER {
		return 0
	}
	for attempt := 0; attempt < 8; attempt++ {
		var mask uint64
		for i, p := range st.BitProb {
			if p > 0 && d.src.Float64() < p {
				mask |= 1 << uint(i)
			}
		}
		if mask != 0 {
			return mask
		}
	}
	// Degenerate statistics: corrupt the most error-prone bit.
	best, bestP := 0, 0.0
	for i, p := range st.BitProb {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return 1 << uint(best)
}

// ---------------------------------------------------------------------------
// WA-model

// WAOpStats is the workload-aware characterization of one op.
type WAOpStats struct {
	// ER is the probability that an instance of the op suffers an error
	// when executing this workload at this voltage.
	ER float64 `json:"er"`
	// Masks is the empirical pool of observed error bitmasks.
	Masks []uint64 `json:"masks,omitempty"`
}

// WAModel injects errors from per-workload empirical DTA distributions —
// the paper's proposed model.
type WAModel struct {
	ModelLevel string                `json:"level"`
	Workload   string                `json:"workload"`
	PerOp      [fpu.NumOps]WAOpStats `json:"per_op"`
}

// BuildWA derives the model from per-op DTA summaries over operands
// sampled from the named workload.
func BuildWA(level, workload string, summaries map[fpu.Op]*dta.Summary) *WAModel {
	m := &WAModel{ModelLevel: level, Workload: workload}
	for op, s := range summaries {
		m.PerOp[op] = WAOpStats{ER: s.ErrorRatio(), Masks: s.Masks}
	}
	return m
}

// Kind implements Model.
func (m *WAModel) Kind() Kind { return WA }

// Level implements Model.
func (m *WAModel) Level() string { return m.ModelLevel }

// Describe implements Model.
func (m *WAModel) Describe() string {
	return fmt.Sprintf("WA-model @%s/%s: workload-aware bitmask injection", m.ModelLevel, m.Workload)
}

// ExpectedER implements Model.
func (m *WAModel) ExpectedER(opShare [fpu.NumOps]float64) float64 {
	var er float64
	for op := range m.PerOp {
		er += opShare[op] * m.PerOp[op].ER
	}
	return er
}

type waInjector struct {
	m   *WAModel
	src *prng.Source
}

// NewInjector implements Model.
func (m *WAModel) NewInjector(src *prng.Source) cpu.Injector {
	return &waInjector{m: m, src: src}
}

// OnWriteback corrupts FPU results with workload-specific probability,
// applying a bitmask drawn from the observed pool.
func (d *waInjector) OnWriteback(ev cpu.Event) uint64 {
	if !ev.FPUDatapath {
		return 0
	}
	st := &d.m.PerOp[ev.FPOp]
	if st.ER == 0 || len(st.Masks) == 0 || d.src.Float64() >= st.ER {
		return 0
	}
	return st.Masks[d.src.Intn(len(st.Masks))]
}

// ---------------------------------------------------------------------------
// Serialization

// envelope wraps a model with its kind for JSON round trips.
type envelope struct {
	Kind Kind            `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// Marshal serializes any model.
func Marshal(m Model) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(envelope{Kind: m.Kind(), Body: body}, "", "  ")
}

// Unmarshal restores a model serialized with Marshal.
func Unmarshal(data []byte) (Model, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("errmodel: %w", err)
	}
	var m Model
	switch env.Kind {
	case DA:
		m = &DAModel{}
	case IA:
		m = &IAModel{}
	case WA:
		m = &WAModel{}
	default:
		return nil, fmt.Errorf("errmodel: unknown kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Body, m); err != nil {
		return nil, fmt.Errorf("errmodel: %w", err)
	}
	return m, nil
}
