package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Integer ABI register aliases.
var intRegs = buildIntRegs()

func buildIntRegs() map[string]uint8 {
	m := map[string]uint8{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "fp": 8, "s0": 8, "s1": 9,
	}
	for i := 0; i <= 7; i++ {
		m["a"+strconv.Itoa(i)] = uint8(10 + i)
	}
	for i := 2; i <= 11; i++ {
		m["s"+strconv.Itoa(i)] = uint8(16 + i)
	}
	for i := 3; i <= 6; i++ {
		m["t"+strconv.Itoa(i)] = uint8(25 + i)
	}
	for i := 0; i < 32; i++ {
		m["x"+strconv.Itoa(i)] = uint8(i)
	}
	return m
}

// FP ABI register aliases.
var fpRegs = buildFPRegs()

func buildFPRegs() map[string]uint8 {
	m := make(map[string]uint8, 64)
	for i := 0; i < 32; i++ {
		m["f"+strconv.Itoa(i)] = uint8(i)
	}
	for i := 0; i <= 7; i++ {
		m["ft"+strconv.Itoa(i)] = uint8(i)
		m["fa"+strconv.Itoa(i)] = uint8(10 + i)
	}
	m["ft8"], m["ft9"], m["ft10"], m["ft11"] = 28, 29, 30, 31
	m["fs0"], m["fs1"] = 8, 9
	for i := 2; i <= 11; i++ {
		m["fs"+strconv.Itoa(i)] = uint8(16 + i)
	}
	return m
}

func (a *assembler) intReg(s string) (uint8, error) {
	if r, ok := intRegs[s]; ok {
		return r, nil
	}
	return 0, a.errf("bad integer register %q", s)
}

func (a *assembler) fpReg(s string) (uint8, error) {
	if r, ok := fpRegs[s]; ok {
		return r, nil
	}
	return 0, a.errf("bad fp register %q", s)
}

// memOperand parses "offset(base)"; the offset may be empty or a literal.
func (a *assembler) memOperand(s string) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	var off int32
	if head := strings.TrimSpace(s[:open]); head != "" {
		v, err := a.intValue(head)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := a.intReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	return off, base, err
}

// immOrSym resolves an operand that may be a literal or a label address.
func (a *assembler) immOrSym(s string) (int32, error) {
	if v, err := a.intValue(s); err == nil {
		return v, nil
	}
	if isIdent(s) {
		v, err := a.symValue(s)
		return int32(v), err
	}
	return 0, a.errf("bad immediate %q", s)
}

func checkImm12(a *assembler, v int32) error {
	if v < -2048 || v > 2047 {
		return a.errf("immediate %d out of 12-bit range", v)
	}
	return nil
}

// rTypes maps R-format integer mnemonics to (funct3, funct7).
var rTypes = map[string][2]uint8{
	"add": {F3AddSub, F7Base}, "sub": {F3AddSub, F7Alt},
	"sll": {F3Sll, F7Base}, "slt": {F3Slt, F7Base}, "sltu": {F3Sltu, F7Base},
	"xor": {F3Xor, F7Base}, "srl": {F3SrlSra, F7Base}, "sra": {F3SrlSra, F7Alt},
	"or": {F3Or, F7Base}, "and": {F3And, F7Base},
	"mul": {F3Mul, F7MulD}, "mulh": {F3Mulh, F7MulD},
	"div": {F3Div, F7MulD}, "divu": {F3Divu, F7MulD},
	"rem": {F3Rem, F7MulD}, "remu": {F3Remu, F7MulD},
}

// iTypes maps I-format ALU mnemonics to funct3 (shifts carry funct7 in
// the immediate's high bits).
var iTypes = map[string]uint8{
	"addi": F3AddSub, "slti": F3Slt, "sltiu": F3Sltu,
	"xori": F3Xor, "ori": F3Or, "andi": F3And,
}

var branchTypes = map[string]uint8{
	"beq": F3Beq, "bne": F3Bne, "blt": F3Blt, "bge": F3Bge,
	"bltu": F3Bltu, "bgeu": F3Bgeu,
}

// fpBinary maps 3-fp-operand mnemonics to FPFunc.
var fpBinary = map[string]FPFunc{
	"fadd.d": FPAddD, "fsub.d": FPSubD, "fmul.d": FPMulD, "fdiv.d": FPDivD,
	"fadd.s": FPAddS, "fsub.s": FPSubS, "fmul.s": FPMulS, "fdiv.s": FPDivS,
}

// fpCompare maps fp-compare mnemonics (integer rd) to FPFunc.
var fpCompare = map[string]FPFunc{
	"feq.d": FPEqD, "flt.d": FPLtD, "fle.d": FPLeD,
}

// fpUnary maps fp->fp single-operand mnemonics to FPFunc.
var fpUnary = map[string]FPFunc{
	"fmv.d": FPMv, "fmv.s": FPMv, "fneg.d": FPNegD, "fabs.d": FPAbsD,
	"fcvt.s.d": FPCvtSD, "fcvt.d.s": FPCvtDS,
}

// instruction assembles one mnemonic line, expanding pseudo instructions.
func (a *assembler) instruction(line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	ops := splitOperands(rest)
	n := func(want int) error {
		if len(ops) != want {
			return a.errf("%s expects %d operands, got %d", mnem, want, len(ops))
		}
		return nil
	}

	if ft, ok := rTypes[mnem]; ok {
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.intReg(ops[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpInt, Rd: rd, Rs1: rs1, Rs2: rs2, Funct3: ft[0], Funct7: ft[1]})
		return nil
	}

	if f3, ok := iTypes[mnem]; ok {
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		imm, err := a.immOrSym(ops[2])
		if err != nil {
			return err
		}
		if err := checkImm12(a, imm); err != nil {
			return err
		}
		a.emit(Inst{Op: OpIntImm, Rd: rd, Rs1: rs1, Funct3: f3, Imm: imm})
		return nil
	}

	switch mnem {
	case "slli", "srli", "srai":
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		sh, err := a.intValue(ops[2])
		if err != nil {
			return err
		}
		if sh < 0 || sh > 31 {
			return a.errf("shift amount %d out of range", sh)
		}
		f3 := uint8(F3Sll)
		imm := sh
		if mnem != "slli" {
			f3 = F3SrlSra
			if mnem == "srai" {
				imm |= int32(F7Alt) << 5
			}
		}
		a.emit(Inst{Op: OpIntImm, Rd: rd, Rs1: rs1, Funct3: f3, Imm: imm})
		return nil

	case "lw", "lb", "lbu":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		f3 := map[string]uint8{"lw": F3Word, "lb": F3Byte, "lbu": F3ByteU}[mnem]
		a.emit(Inst{Op: OpLoad, Rd: rd, Rs1: base, Funct3: f3, Imm: off})
		return nil

	case "sw", "sb":
		if err := n(2); err != nil {
			return err
		}
		rs2, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		f3 := uint8(F3Word)
		if mnem == "sb" {
			f3 = F3Byte
		}
		a.emit(Inst{Op: OpStore, Rs1: base, Rs2: rs2, Funct3: f3, Imm: off})
		return nil

	case "fld", "flw":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		f3 := uint8(F3FDbl)
		if mnem == "flw" {
			f3 = F3FWord
		}
		a.emit(Inst{Op: OpFLoad, Rd: rd, Rs1: base, Funct3: f3, Imm: off})
		return nil

	case "fsd", "fsw":
		if err := n(2); err != nil {
			return err
		}
		rs2, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(ops[1])
		if err != nil {
			return err
		}
		f3 := uint8(F3FDbl)
		if mnem == "fsw" {
			f3 = F3FWord
		}
		a.emit(Inst{Op: OpFStore, Rs1: base, Rs2: rs2, Funct3: f3, Imm: off})
		return nil
	}

	if f3, ok := branchTypes[mnem]; ok {
		return a.branch(f3, ops, false)
	}
	switch mnem {
	case "bgt", "ble", "bgtu", "bleu":
		f3 := map[string]uint8{"bgt": F3Blt, "ble": F3Bge, "bgtu": F3Bltu, "bleu": F3Bgeu}[mnem]
		return a.branch(f3, ops, true)
	case "beqz", "bnez":
		if err := n(2); err != nil {
			return err
		}
		f3 := uint8(F3Beq)
		if mnem == "bnez" {
			f3 = F3Bne
		}
		return a.branch(f3, []string{ops[0], "zero", ops[1]}, false)
	}

	if fn, ok := fpBinary[mnem]; ok {
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.fpReg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.fpReg(ops[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Rs2: rs2, Funct7: uint8(fn)})
		return nil
	}
	if fn, ok := fpCompare[mnem]; ok {
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.fpReg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := a.fpReg(ops[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Rs2: rs2, Funct7: uint8(fn)})
		return nil
	}
	if fn, ok := fpUnary[mnem]; ok {
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.fpReg(ops[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Funct7: uint8(fn)})
		return nil
	}

	switch mnem {
	case "fcvt.d.w", "fcvt.s.w": // int reg -> fp reg
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		fn := FPI2FD
		if mnem == "fcvt.s.w" {
			fn = FPI2FS
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Funct7: uint8(fn)})
		return nil
	case "fcvt.w.d", "fcvt.w.s": // fp reg -> int reg
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.fpReg(ops[1])
		if err != nil {
			return err
		}
		fn := FPF2ID
		if mnem == "fcvt.w.s" {
			fn = FPF2IS
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Funct7: uint8(fn)})
		return nil
	case "fmv.x.d":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.fpReg(ops[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Funct7: uint8(FPMvXD)})
		return nil
	case "fmv.d.x":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.fpReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpFP, Rd: rd, Rs1: rs1, Funct7: uint8(FPMvDX)})
		return nil

	case "lui":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := a.immOrSym(ops[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpLui, Rd: rd, Imm: imm << 12})
		return nil

	case "jal":
		if len(ops) == 1 {
			ops = []string{"ra", ops[0]}
		}
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		target, err := a.symValue(ops[1])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpJal, Rd: rd, Imm: a.relTo(target)})
		return nil

	case "jalr":
		if err := n(3); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := a.intReg(ops[1])
		if err != nil {
			return err
		}
		imm, err := a.intValue(ops[2])
		if err != nil {
			return err
		}
		a.emit(Inst{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: imm})
		return nil

	case "ecall":
		a.emit(Inst{Op: OpSys})
		return nil

	// Pseudo instructions.
	case "nop":
		a.emit(Inst{Op: OpIntImm, Funct3: F3AddSub})
		return nil
	case "mv":
		if err := n(2); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("addi %s, %s, 0", ops[0], ops[1]))
	case "neg":
		if err := n(2); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("sub %s, zero, %s", ops[0], ops[1]))
	case "not":
		if err := n(2); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("xori %s, %s, -1", ops[0], ops[1]))
	case "subi":
		if err := n(3); err != nil {
			return err
		}
		v, err := a.intValue(ops[2])
		if err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("addi %s, %s, %d", ops[0], ops[1], -v))
	case "seqz":
		if err := n(2); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("sltiu %s, %s, 1", ops[0], ops[1]))
	case "snez":
		if err := n(2); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("sltu %s, zero, %s", ops[0], ops[1]))
	case "j":
		if err := n(1); err != nil {
			return err
		}
		return a.instruction("jal zero, " + ops[0])
	case "jr":
		if err := n(1); err != nil {
			return err
		}
		return a.instruction(fmt.Sprintf("jalr zero, %s, 0", ops[0]))
	case "ret":
		return a.instruction("jalr zero, ra, 0")
	case "call":
		if err := n(1); err != nil {
			return err
		}
		return a.instruction("jal ra, " + ops[0])
	case "li":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.immOrSym(ops[1])
		if err != nil {
			return err
		}
		a.expandLI(rd, v)
		return nil
	case "la":
		if err := n(2); err != nil {
			return err
		}
		rd, err := a.intReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := a.symValue(ops[1])
		if err != nil {
			return err
		}
		a.expandLI(rd, int32(addr))
		return nil
	}
	return a.errf("unknown mnemonic %q", mnem)
}

// expandLI emits the lui/addi pair for an arbitrary 32-bit constant.
// Always two instructions, so pass-1 sizing is stable for labels that
// resolve later.
func (a *assembler) expandLI(rd uint8, v int32) {
	hi := (uint32(v) + 0x800) >> 12
	lo := v - int32(hi<<12)
	a.emit(Inst{Op: OpLui, Rd: rd, Imm: int32(hi << 12)})
	a.emit(Inst{Op: OpIntImm, Rd: rd, Rs1: rd, Funct3: F3AddSub, Imm: lo})
}

// branch emits a conditional branch; swap reverses operand order (bgt is
// blt with swapped sources).
func (a *assembler) branch(f3 uint8, ops []string, swap bool) error {
	if len(ops) != 3 {
		return a.errf("branch expects 3 operands")
	}
	rs1, err := a.intReg(ops[0])
	if err != nil {
		return err
	}
	rs2, err := a.intReg(ops[1])
	if err != nil {
		return err
	}
	if swap {
		rs1, rs2 = rs2, rs1
	}
	target, err := a.symValue(ops[2])
	if err != nil {
		return err
	}
	off := a.relTo(target)
	if a.pass == 2 && (off < -4096 || off > 4095) {
		return a.errf("branch target out of range (%d)", off)
	}
	a.emit(Inst{Op: OpBranch, Rs1: rs1, Rs2: rs2, Funct3: f3, Imm: off})
	return nil
}

// relTo computes the PC-relative offset to target from the instruction
// being emitted.
func (a *assembler) relTo(target uint32) int32 {
	return int32(target) - int32(a.textPC)
}
