package isa

import "testing"

// FuzzDecode checks that instruction decoding is total (never panics) and
// that successful decodes re-encode to a word that decodes identically
// (unused fields may canonicalize, so we compare decoded forms).
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0, 0xffffffff, 0x00000033, 0x00000013, 0x00000063,
		0x0000006f, 0x00000053, 0xfff00313, 0x40b50533,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw uint32) {
		in, err := Decode(raw)
		if err != nil {
			return
		}
		re, err := Decode(in.Encode())
		if err != nil {
			t.Fatalf("re-decode of %#x failed: %v", raw, err)
		}
		if re.Op != in.Op || re.Rd != in.Rd || re.Rs1 != in.Rs1 ||
			re.Rs2 != in.Rs2 || re.Funct3 != in.Funct3 || re.Imm != in.Imm {
			t.Fatalf("decode/encode unstable: %+v vs %+v", in, re)
		}
		// Disassembly must be total too.
		_ = Disassemble(in)
	})
}

// FuzzAssemble checks the assembler never panics on arbitrary source text
// and that successfully assembled programs decode cleanly.
func FuzzAssemble(f *testing.F) {
	f.Add(".text\nmain: addi t0, zero, 1\n")
	f.Add(".data\nx: .word 1, 2, 3\n.text\nlw t0, 0(a0)\n")
	f.Add(".text\nli a0, 10\nli a1, 0\necall\n")
	f.Add("label without colon addi")
	f.Add(".data\ns: .asciiz \"hi\\n\"\n")
	f.Add(".text\nx: j x\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		for i, raw := range p.Text {
			if _, err := Decode(raw); err != nil {
				t.Fatalf("assembled word %d (%#x) undecodable: %v", i, raw, err)
			}
		}
	})
}
