// Package isa defines MRV, the 32-bit RISC instruction set the evaluation
// workloads are compiled to, together with its binary encoding, assembler
// and disassembler. MRV stands in for the paper's software platform: a
// general-purpose load/store architecture whose floating-point
// instructions map 1-to-1 onto the 12 operations of the gate-level FPU
// (the paper relies on the same 1-to-1 correspondence between its gem5
// ARM model and the OpenRISC FPU).
//
// The machine has 32 32-bit integer registers (x0 hardwired to zero) and
// 32 64-bit floating-point registers. Instructions are 32 bits, in
// R/I/S/B/U/J formats.
package isa

import "fmt"

// Opcode is the major opcode (bits 6:0).
type Opcode uint8

// Major opcodes.
const (
	OpLoad   Opcode = 0x03 // lb, lbu, lw
	OpFLoad  Opcode = 0x07 // flw, fld
	OpIntImm Opcode = 0x13 // addi, slti, xori, ...
	OpAuipc  Opcode = 0x17
	OpStore  Opcode = 0x23 // sb, sw
	OpFStore Opcode = 0x27 // fsw, fsd
	OpInt    Opcode = 0x33 // add, sub, mul, div, ...
	OpLui    Opcode = 0x37
	OpFP     Opcode = 0x53 // all floating-point register ops
	OpBranch Opcode = 0x63
	OpJalr   Opcode = 0x67
	OpJal    Opcode = 0x6F
	OpSys    Opcode = 0x73 // ecall
)

// ALU funct3 values (OpInt/OpIntImm).
const (
	F3AddSub = 0 // funct7 bit 5 selects sub (register form)
	F3Sll    = 1
	F3Slt    = 2
	F3Sltu   = 3
	F3Xor    = 4
	F3SrlSra = 5 // funct7 bit 5 selects sra
	F3Or     = 6
	F3And    = 7
)

// funct7 values for OpInt.
const (
	F7Base = 0x00
	F7Alt  = 0x20 // sub, sra
	F7MulD = 0x01 // mul/div/rem group (funct3 selects)
)

// Mul/div funct3 values under F7MulD.
const (
	F3Mul  = 0
	F3Mulh = 1
	F3Div  = 4
	F3Divu = 5
	F3Rem  = 6
	F3Remu = 7
)

// Load/store funct3 values.
const (
	F3Byte  = 0 // lb / sb
	F3Word  = 2 // lw / sw
	F3ByteU = 4 // lbu
	F3FWord = 2 // flw / fsw
	F3FDbl  = 3 // fld / fsd
)

// Branch funct3 values.
const (
	F3Beq  = 0
	F3Bne  = 1
	F3Blt  = 4
	F3Bge  = 5
	F3Bltu = 6
	F3Bgeu = 7
)

// FPFunc is the funct7 field of OpFP instructions. Values 0-11 are the 12
// FPU operations in internal/fpu order; the rest are register-file and
// compare operations that never traverse the timing-critical FPU datapath
// (and therefore are not subject to timing-error injection).
type FPFunc uint8

const (
	FPAddD FPFunc = iota
	FPSubD
	FPMulD
	FPDivD
	FPI2FD // fcvt.d.w: rs1 is an integer register
	FPF2ID // fcvt.w.d: rd is an integer register
	FPAddS
	FPSubS
	FPMulS
	FPDivS
	FPI2FS
	FPF2IS
	FPMv   // fmv rd, rs1 (fp to fp copy)
	FPNegD // sign-bit flip; implemented outside the FPU datapath
	FPAbsD
	FPEqD // writes integer rd
	FPLtD
	FPLeD
	FPMvXD  // fmv.x.d: low 32 bits of fp reg to int reg
	FPMvDX  // fmv.d.x: int reg to low 32 bits of fp reg (high zeroed)
	FPCvtSD // fcvt.s.d: narrow double to single (via softfp)
	FPCvtDS // fcvt.d.s: widen single to double
	numFPFuncs
)

// IsFPUDatapath reports whether the FP function exercises one of the 12
// gate-level FPU pipelines (and is therefore an injection target).
func (f FPFunc) IsFPUDatapath() bool { return f < 12 }

// Syscall codes (in a0 at ecall).
const (
	SysPrintInt  = 1  // print a1 as signed decimal
	SysPrintFP   = 2  // print fa0 as %g
	SysPrintChar = 3  // print a1 as a byte
	SysPrintStr  = 4  // print NUL-terminated string at a1
	SysCycles    = 5  // a0 <- low 32 bits of the cycle counter
	SysExit      = 10 // halt with exit code a1
)

// Inst is a decoded instruction.
type Inst struct {
	Op     Opcode
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Funct3 uint8
	Funct7 uint8
	Imm    int32 // sign-extended immediate (format-dependent)
	Raw    uint32
}

// Encode packs the instruction fields into its 32-bit form.
func (in Inst) Encode() uint32 {
	op := uint32(in.Op)
	rd := uint32(in.Rd) & 31
	rs1 := uint32(in.Rs1) & 31
	rs2 := uint32(in.Rs2) & 31
	f3 := uint32(in.Funct3) & 7
	f7 := uint32(in.Funct7) & 127
	imm := uint32(in.Imm)
	switch in.Op {
	case OpInt, OpFP:
		return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
	case OpIntImm, OpLoad, OpFLoad, OpJalr, OpSys:
		return imm<<20 | rs1<<15 | f3<<12 | rd<<7 | op
	case OpStore, OpFStore:
		return (imm>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (imm&0x1f)<<7 | op
	case OpBranch:
		return (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | rs2<<20 | rs1<<15 |
			f3<<12 | (imm>>1&0xf)<<8 | (imm>>11&1)<<7 | op
	case OpLui, OpAuipc:
		return imm&0xfffff000 | rd<<7 | op
	case OpJal:
		return (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 |
			(imm>>12&0xff)<<12 | rd<<7 | op
	}
	panic(fmt.Sprintf("isa: cannot encode opcode %#x", uint8(in.Op)))
}

// signExtend returns v's low n bits sign-extended.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit instruction word. It returns an error for
// unknown opcodes (an illegal-instruction trap in the simulator).
func Decode(raw uint32) (Inst, error) {
	in := Inst{
		Op:     Opcode(raw & 0x7f),
		Rd:     uint8(raw >> 7 & 31),
		Funct3: uint8(raw >> 12 & 7),
		Rs1:    uint8(raw >> 15 & 31),
		Rs2:    uint8(raw >> 20 & 31),
		Funct7: uint8(raw >> 25 & 127),
		Raw:    raw,
	}
	switch in.Op {
	case OpInt, OpFP:
		// no immediate
	case OpIntImm, OpLoad, OpFLoad, OpJalr, OpSys:
		in.Imm = signExtend(raw>>20, 12)
	case OpStore, OpFStore:
		in.Imm = signExtend(raw>>25<<5|raw>>7&0x1f, 12)
	case OpBranch:
		v := raw >> 31 << 12
		v |= raw >> 7 & 1 << 11
		v |= raw >> 25 & 0x3f << 5
		v |= raw >> 8 & 0xf << 1
		in.Imm = signExtend(v, 13)
	case OpLui, OpAuipc:
		in.Imm = int32(raw & 0xfffff000)
	case OpJal:
		v := raw >> 31 << 20
		v |= raw >> 12 & 0xff << 12
		v |= raw >> 20 & 1 << 11
		v |= raw >> 21 & 0x3ff << 1
		in.Imm = signExtend(v, 21)
	default:
		return in, fmt.Errorf("isa: illegal opcode %#02x in %#08x", uint8(in.Op), raw)
	}
	return in, nil
}

// Program is an assembled binary image.
type Program struct {
	// Text is the instruction stream, loaded at TextBase.
	Text []uint32
	// Data is the initialized data segment, loaded at DataBase.
	Data []byte
	// Symbols maps labels to addresses (diagnostics and tooling).
	Symbols map[string]uint32
	// Entry is the initial PC.
	Entry uint32
}

// Segment layout constants.
const (
	// TextBase is where the instruction stream is loaded.
	TextBase = 0x0000_1000
	// DataBase is where the data segment is loaded.
	DataBase = 0x0010_0000
	// StackTop is the initial stack pointer (grows down).
	StackTop = 0x00F0_0000
	// DefaultMemSize is the simulator's default memory size.
	DefaultMemSize = 16 << 20
)
