package isa

import "fmt"

// regName returns the ABI name for an integer register.
func regName(r uint8) string {
	names := [32]string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	return names[r&31]
}

func fpRegName(r uint8) string { return fmt.Sprintf("f%d", r&31) }

var fpFuncNames = [numFPFuncs]string{
	"fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fcvt.d.w", "fcvt.w.d",
	"fadd.s", "fsub.s", "fmul.s", "fdiv.s", "fcvt.s.w", "fcvt.w.s",
	"fmv.d", "fneg.d", "fabs.d", "feq.d", "flt.d", "fle.d",
	"fmv.x.d", "fmv.d.x", "fcvt.s.d", "fcvt.d.s",
}

// Disassemble renders a decoded instruction as assembly text.
func Disassemble(in Inst) string {
	switch in.Op {
	case OpInt:
		name := "?"
		if in.Funct7 == F7MulD {
			name = map[uint8]string{F3Mul: "mul", F3Mulh: "mulh", F3Div: "div",
				F3Divu: "divu", F3Rem: "rem", F3Remu: "remu"}[in.Funct3]
		} else {
			switch in.Funct3 {
			case F3AddSub:
				name = "add"
				if in.Funct7 == F7Alt {
					name = "sub"
				}
			case F3Sll:
				name = "sll"
			case F3Slt:
				name = "slt"
			case F3Sltu:
				name = "sltu"
			case F3Xor:
				name = "xor"
			case F3SrlSra:
				name = "srl"
				if in.Funct7 == F7Alt {
					name = "sra"
				}
			case F3Or:
				name = "or"
			case F3And:
				name = "and"
			}
		}
		return fmt.Sprintf("%s %s, %s, %s", name, regName(in.Rd), regName(in.Rs1), regName(in.Rs2))
	case OpIntImm:
		switch in.Funct3 {
		case F3Sll:
			return fmt.Sprintf("slli %s, %s, %d", regName(in.Rd), regName(in.Rs1), in.Imm&31)
		case F3SrlSra:
			name := "srli"
			if in.Imm>>5&0x7f == int32(F7Alt) {
				name = "srai"
			}
			return fmt.Sprintf("%s %s, %s, %d", name, regName(in.Rd), regName(in.Rs1), in.Imm&31)
		}
		name := map[uint8]string{F3AddSub: "addi", F3Slt: "slti", F3Sltu: "sltiu",
			F3Xor: "xori", F3Or: "ori", F3And: "andi"}[in.Funct3]
		return fmt.Sprintf("%s %s, %s, %d", name, regName(in.Rd), regName(in.Rs1), in.Imm)
	case OpLoad:
		name := map[uint8]string{F3Word: "lw", F3Byte: "lb", F3ByteU: "lbu"}[in.Funct3]
		return fmt.Sprintf("%s %s, %d(%s)", name, regName(in.Rd), in.Imm, regName(in.Rs1))
	case OpStore:
		name := "sw"
		if in.Funct3 == F3Byte {
			name = "sb"
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, regName(in.Rs2), in.Imm, regName(in.Rs1))
	case OpFLoad:
		name := "fld"
		if in.Funct3 == F3FWord {
			name = "flw"
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, fpRegName(in.Rd), in.Imm, regName(in.Rs1))
	case OpFStore:
		name := "fsd"
		if in.Funct3 == F3FWord {
			name = "fsw"
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, fpRegName(in.Rs2), in.Imm, regName(in.Rs1))
	case OpBranch:
		name := map[uint8]string{F3Beq: "beq", F3Bne: "bne", F3Blt: "blt",
			F3Bge: "bge", F3Bltu: "bltu", F3Bgeu: "bgeu"}[in.Funct3]
		return fmt.Sprintf("%s %s, %s, pc%+d", name, regName(in.Rs1), regName(in.Rs2), in.Imm)
	case OpLui:
		return fmt.Sprintf("lui %s, %#x", regName(in.Rd), uint32(in.Imm)>>12)
	case OpAuipc:
		return fmt.Sprintf("auipc %s, %#x", regName(in.Rd), uint32(in.Imm)>>12)
	case OpJal:
		return fmt.Sprintf("jal %s, pc%+d", regName(in.Rd), in.Imm)
	case OpJalr:
		return fmt.Sprintf("jalr %s, %s, %d", regName(in.Rd), regName(in.Rs1), in.Imm)
	case OpSys:
		return "ecall"
	case OpFP:
		fn := FPFunc(in.Funct7)
		if fn >= numFPFuncs {
			return fmt.Sprintf(".word %#08x", in.Raw)
		}
		name := fpFuncNames[fn]
		switch fn {
		case FPAddD, FPSubD, FPMulD, FPDivD, FPAddS, FPSubS, FPMulS, FPDivS:
			return fmt.Sprintf("%s %s, %s, %s", name, fpRegName(in.Rd), fpRegName(in.Rs1), fpRegName(in.Rs2))
		case FPI2FD, FPI2FS, FPMvDX:
			return fmt.Sprintf("%s %s, %s", name, fpRegName(in.Rd), regName(in.Rs1))
		case FPF2ID, FPF2IS, FPMvXD:
			return fmt.Sprintf("%s %s, %s", name, regName(in.Rd), fpRegName(in.Rs1))
		case FPEqD, FPLtD, FPLeD:
			return fmt.Sprintf("%s %s, %s, %s", name, regName(in.Rd), fpRegName(in.Rs1), fpRegName(in.Rs2))
		default:
			return fmt.Sprintf("%s %s, %s", name, fpRegName(in.Rd), fpRegName(in.Rs1))
		}
	}
	return fmt.Sprintf(".word %#08x", in.Raw)
}
