package isa_test

import (
	"fmt"

	"teva/internal/isa"
)

// ExampleAssemble assembles a small program and disassembles its first
// instructions.
func ExampleAssemble() {
	prog, err := isa.Assemble(`
.data
greeting: .asciiz "hi"
.text
main:
    addi t0, zero, 2
    mul  t1, t0, t0
    li   a0, 10
    li   a1, 0
    ecall
`)
	if err != nil {
		panic(err)
	}
	for _, raw := range prog.Text[:2] {
		in, _ := isa.Decode(raw)
		fmt.Println(isa.Disassemble(in))
	}
	fmt.Printf("data bytes: %d\n", len(prog.Data))
	// Output:
	// addi t0, zero, 2
	// mul t1, t0, t0
	// data bytes: 3
}
