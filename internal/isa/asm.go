package isa

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble translates MRV assembly source into a Program. The syntax is
// the conventional two-section (.text/.data) RISC style with labels,
// numeric and ABI register names, the data directives .word/.byte/
// .double/.float/.space/.asciiz/.align, and a small set of pseudo
// instructions (li, la, mv, nop, j, jr, ret, call, beqz/bnez, bgt/ble/
// bgtu/bleu, neg, not, subi).
func Assemble(source string) (*Program, error) {
	a := &assembler{
		symbols: make(map[string]uint32),
	}
	if err := a.run(source); err != nil {
		return nil, err
	}
	return &Program{
		Text:    a.text,
		Data:    a.data,
		Symbols: a.symbols,
		Entry:   TextBase,
	}, nil
}

// MustAssemble panics on assembly errors; used by the built-in workloads
// whose sources are generated programmatically.
func MustAssemble(source string) *Program {
	p, err := Assemble(source)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	symbols map[string]uint32
	text    []uint32
	data    []byte
	inData  bool
	pass    int
	textPC  uint32
	dataPC  uint32
	line    int
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) run(source string) error {
	lines := strings.Split(source, "\n")
	for a.pass = 1; a.pass <= 2; a.pass++ {
		a.inData = false
		a.textPC = TextBase
		a.dataPC = DataBase
		a.text = a.text[:0]
		a.data = a.data[:0]
		for i, raw := range lines {
			a.line = i + 1
			if err := a.doLine(raw); err != nil {
				return err
			}
		}
	}
	return nil
}

// doLine processes one source line (label, directive, or instruction).
func (a *assembler) doLine(raw string) error {
	// Strip comments. '#' inside char/string literals is not supported by
	// the workloads, so a plain scan suffices.
	if i := strings.IndexAny(raw, "#;"); i >= 0 {
		raw = raw[:i]
	}
	if i := strings.Index(raw, "//"); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	for {
		colon := strings.Index(line, ":")
		if colon < 0 {
			break
		}
		label := strings.TrimSpace(line[:colon])
		if !isIdent(label) {
			break
		}
		if a.pass == 1 {
			if _, dup := a.symbols[label]; dup {
				return a.errf("duplicate label %q", label)
			}
			a.symbols[label] = a.here()
		}
		line = strings.TrimSpace(line[colon+1:])
	}
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) here() uint32 {
	if a.inData {
		return a.dataPC
	}
	return a.textPC
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// directive handles .text/.data and the data-emitting directives.
func (a *assembler) directive(line string) error {
	name, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.inData = false
		return nil
	case ".data":
		a.inData = true
		return nil
	case ".globl", ".global", ".option", ".file", ".type", ".size":
		return nil // accepted and ignored
	}
	if !a.inData {
		return a.errf("directive %s outside .data", name)
	}
	switch name {
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.intValue(f)
			if err != nil {
				return err
			}
			a.emitData(uint64(uint32(v)), 4)
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.intValue(f)
			if err != nil {
				return err
			}
			a.emitData(uint64(uint32(v)), 1)
		}
	case ".double":
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return a.errf("bad double %q", f)
			}
			a.emitData(math.Float64bits(v), 8)
		}
	case ".float":
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return a.errf("bad float %q", f)
			}
			a.emitData(uint64(math.Float32bits(float32(v))), 4)
		}
	case ".space":
		n, err := a.intValue(rest)
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errf("negative .space")
		}
		for i := int32(0); i < n; i++ {
			a.emitData(0, 1)
		}
	case ".align":
		n, err := a.intValue(rest)
		if err != nil {
			return err
		}
		align := uint32(1) << uint(n)
		for a.dataPC%align != 0 {
			a.emitData(0, 1)
		}
	case ".asciiz", ".string":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s", rest)
		}
		for _, b := range []byte(s) {
			a.emitData(uint64(b), 1)
		}
		a.emitData(0, 1)
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

func (a *assembler) emitData(v uint64, bytes int) {
	for i := 0; i < bytes; i++ {
		a.data = append(a.data, byte(v>>uint(8*i)))
	}
	a.dataPC += uint32(bytes)
}

// emit appends one encoded instruction.
func (a *assembler) emit(in Inst) {
	a.text = append(a.text, in.Encode())
	a.textPC += 4
}

// intValue parses an integer literal or character constant.
func (a *assembler) intValue(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' {
		u, err := strconv.Unquote(s)
		if err != nil || len(u) != 1 {
			return 0, a.errf("bad char literal %s", s)
		}
		return int32(u[0]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, a.errf("bad integer %q", s)
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return 0, a.errf("integer %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// symValue resolves a label (pass 2) or returns a placeholder (pass 1).
func (a *assembler) symValue(s string) (uint32, error) {
	if v, ok := a.symbols[s]; ok {
		return v, nil
	}
	if a.pass == 1 {
		return 0, nil
	}
	return 0, a.errf("undefined label %q", s)
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
