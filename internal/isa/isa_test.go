package isa

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"teva/internal/prng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src := prng.New(1)
	ops := []Opcode{OpLoad, OpFLoad, OpIntImm, OpAuipc, OpStore, OpFStore,
		OpInt, OpLui, OpFP, OpBranch, OpJalr, OpJal, OpSys}
	for i := 0; i < 20000; i++ {
		in := Inst{
			Op:     ops[src.Intn(len(ops))],
			Rd:     uint8(src.Intn(32)),
			Rs1:    uint8(src.Intn(32)),
			Rs2:    uint8(src.Intn(32)),
			Funct3: uint8(src.Intn(8)),
			Funct7: uint8(src.Intn(128)),
		}
		switch in.Op {
		case OpIntImm, OpLoad, OpFLoad, OpJalr, OpSys:
			in.Imm = int32(src.Intn(4096)) - 2048
		case OpStore, OpFStore:
			in.Imm = int32(src.Intn(4096)) - 2048
		case OpBranch:
			in.Imm = (int32(src.Intn(8192)) - 4096) &^ 1
		case OpLui, OpAuipc:
			in.Imm = int32(src.Uint32()) &^ 0xfff
		case OpJal:
			in.Imm = (int32(src.Intn(1<<21)) - 1<<20) &^ 1
		}
		enc := in.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode(%#x): %v", enc, err)
		}
		if dec.Op != in.Op || dec.Imm != in.Imm {
			t.Fatalf("round trip failed: %+v -> %#x -> %+v", in, enc, dec)
		}
		switch in.Op {
		case OpInt, OpFP:
			if dec.Rd != in.Rd || dec.Rs1 != in.Rs1 || dec.Rs2 != in.Rs2 ||
				dec.Funct3 != in.Funct3 || dec.Funct7 != in.Funct7 {
				t.Fatalf("R-type fields lost: %+v vs %+v", in, dec)
			}
		case OpIntImm, OpLoad, OpFLoad, OpJalr:
			if dec.Rd != in.Rd || dec.Rs1 != in.Rs1 || dec.Funct3 != in.Funct3 {
				t.Fatalf("I-type fields lost: %+v vs %+v", in, dec)
			}
		case OpStore, OpFStore, OpBranch:
			if dec.Rs1 != in.Rs1 || dec.Rs2 != in.Rs2 || dec.Funct3 != in.Funct3 {
				t.Fatalf("S/B-type fields lost: %+v vs %+v", in, dec)
			}
		}
	}
}

func TestDecodeRejectsIllegal(t *testing.T) {
	if _, err := Decode(0xffffffff); err == nil {
		t.Fatal("expected illegal-opcode error")
	}
	if _, err := Decode(0); err == nil {
		t.Fatal("opcode 0 must be illegal")
	}
}

func TestQuickDecodeTotal(t *testing.T) {
	// Decode must never panic on arbitrary words.
	if err := quick.Check(func(raw uint32) bool {
		_, _ = Decode(raw)
		return true
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
.data
vec:    .double 1.5, 2.5
count:  .word 2
msg:    .asciiz "hi"
.text
main:
    la   a1, vec
    lw   t0, 0x100000+16(zero)   # not supported syntax; replaced below
`)
	if err == nil {
		_ = p
		t.Fatal("expected error for unsupported expression")
	}
}

func TestAssembleAndSymbols(t *testing.T) {
	p, err := Assemble(`
.data
vec:   .double 1.5, 2.5
n:     .word 2
bytes: .byte 1, 2, 3
s:     .asciiz "ok"
.align 3
after: .word 7
.text
main:
    li   t0, 42
    la   a1, vec
    fld  fa0, 0(a1)
    fld  fa1, 8(a1)
    fadd.d fa2, fa0, fa1
    beq  t0, t0, done
    nop
done:
    li   a0, 10
    li   a1, 0
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["vec"] != DataBase {
		t.Fatalf("vec at %#x", p.Symbols["vec"])
	}
	if p.Symbols["n"] != DataBase+16 {
		t.Fatalf("n at %#x", p.Symbols["n"])
	}
	if p.Symbols["after"]%8 != 0 {
		t.Fatal(".align 3 not applied")
	}
	if p.Symbols["main"] != TextBase {
		t.Fatalf("main at %#x", p.Symbols["main"])
	}
	// .double payloads
	if len(p.Data) < 16 {
		t.Fatal("data too short")
	}
	if got := le64(p.Data[0:]); got != 0x3FF8000000000000 { // 1.5
		t.Fatalf("vec[0] = %#x", got)
	}
	// Branch inside: decode the beq and check the target offset.
	var beqFound bool
	for i, raw := range p.Text {
		in, err := Decode(raw)
		if err != nil {
			t.Fatalf("text[%d] undecodable", i)
		}
		if in.Op == OpBranch {
			beqFound = true
			pc := TextBase + uint32(i*4)
			if pc+uint32(in.Imm) != p.Symbols["done"] {
				t.Fatalf("branch target %#x, want %#x", pc+uint32(in.Imm), p.Symbols["done"])
			}
		}
	}
	if !beqFound {
		t.Fatal("beq not assembled")
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"undefined label":   ".text\n j nowhere\n",
		"duplicate label":   ".text\na:\na:\n nop\n",
		"bad register":      ".text\n addi q7, zero, 1\n",
		"imm out of range":  ".text\n addi t0, zero, 5000\n",
		"unknown mnemonic":  ".text\n frobnicate t0\n",
		"unknown directive": ".data\n.quadword 3\n",
		"bad shift":         ".text\n slli t0, t0, 99\n",
		"data in text":      ".text\n.word 3\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLIExpansion(t *testing.T) {
	for _, v := range []int32{0, 1, -1, 2047, 2048, -2048, -2049,
		0x12345678, -0x12345678, int32(-2147483648), 2147483647, 0x7ff00000} {
		p, err := Assemble(".text\n li a0, " + strconv.Itoa(int(v)) + "\n")
		if err != nil {
			t.Fatalf("li %d: %v", v, err)
		}
		if len(p.Text) != 2 {
			t.Fatalf("li must expand to 2 instructions, got %d", len(p.Text))
		}
		lui, _ := Decode(p.Text[0])
		addi, _ := Decode(p.Text[1])
		got := uint32(lui.Imm) + uint32(addi.Imm)
		if got != uint32(v) {
			t.Fatalf("li %d assembles to %d", v, int32(got))
		}
	}
}

func TestDisassembleRoundTripish(t *testing.T) {
	src := `
.text
main:
    addi t0, zero, 5
    sub  t1, t0, t0
    mul  t2, t0, t0
    lw   a0, 4(sp)
    sw   a0, 8(sp)
    fld  fa0, 0(a1)
    fsd  fa0, 8(a1)
    fadd.d fa1, fa0, fa0
    fcvt.w.d a2, fa1
    fcvt.d.w fa2, a2
    feq.d a3, fa0, fa1
    jal  ra, main
    jalr zero, ra, 0
    lui  s0, 0x12345
    ecall
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"addi", "sub", "mul", "lw", "sw", "fld", "fsd",
		"fadd.d", "fcvt.w.d", "fcvt.d.w", "feq.d", "jal", "jalr", "lui", "ecall"}
	for i, raw := range p.Text {
		in, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		text := Disassemble(in)
		if !strings.HasPrefix(text, wants[i]) {
			t.Errorf("instr %d disassembles to %q, want prefix %q", i, text, wants[i])
		}
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble(`
.text
a:  mv   t0, t1
    neg  t2, t0
    not  t3, t0
    seqz t4, t0
    snez t5, t0
    subi t6, t0, 3
    beqz t0, a
    bnez t0, a
    bgt  t0, t1, a
    ble  t0, t1, a
    j    a
    jr   ra
    ret
    call a
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range p.Text {
		if _, err := Decode(raw); err != nil {
			t.Fatalf("pseudo expansion %d undecodable", i)
		}
	}
}
