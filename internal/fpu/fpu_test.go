package fpu

import (
	"math"
	"testing"

	"teva/internal/cell"
	"teva/internal/prng"
	"teva/internal/softfp"
)

var testFPU = mustFPU()

func mustFPU() *FPU {
	f, err := New(cell.Default(), 0xF00D)
	if err != nil {
		panic(err)
	}
	return f
}

// randOperand draws an operand appropriate for the op, mixing specials,
// magnitude-correlated values and raw patterns.
func randOperand(op Op, src *prng.Source) uint64 {
	if op.kind() == kindI2F {
		return uint64(src.Uint32())
	}
	f := op.Format()
	w := f.Width()
	switch src.Intn(10) {
	case 0:
		switch src.Intn(6) {
		case 0:
			return 0
		case 1:
			return f.Zero(1)
		case 2:
			return f.Inf(0)
		case 3:
			return f.Inf(1)
		case 4:
			return f.QNaN()
		default:
			if op.Double() {
				return math.Float64bits(1)
			}
			return uint64(math.Float32bits(1))
		}
	case 1, 2, 3:
		// Moderate magnitudes: exercises alignment and cancellation.
		v := (src.Float64() - 0.5) * 1000
		if op.Double() {
			return math.Float64bits(v)
		}
		return uint64(math.Float32bits(float32(v)))
	default:
		return src.Uint64() & (1<<w - 1)
	}
}

func TestPipelinesMatchGolden(t *testing.T) {
	src := prng.New(0xBEEF)
	for _, op := range Ops() {
		p := testFPU.Pipeline(op)
		trials := 4000
		if op.kind() == kindDiv {
			trials = 800 // long pipelines are slower to simulate
		}
		for i := 0; i < trials; i++ {
			a := randOperand(op, src)
			b := randOperand(op, src)
			got, _ := p.Exec(a, b)
			want := op.Golden(a, b)
			f := op.Format()
			if op.kind() != kindF2I && f.IsNaNBits(got) && f.IsNaNBits(want) {
				continue
			}
			if got != want {
				t.Fatalf("%s(%#x, %#x) = %#x, want %#x", op, a, b, got, want)
			}
		}
	}
}

func TestDirectedCases(t *testing.T) {
	f64 := func(v float64) uint64 { return math.Float64bits(v) }
	cases := []struct {
		op   Op
		a, b uint64
	}{
		{DAdd, f64(1), f64(1)},
		{DAdd, f64(1), f64(-1)},
		{DAdd, f64(0.1), f64(0.2)},
		{DAdd, f64(1e308), f64(1e308)},          // overflow
		{DAdd, f64(1), f64(1e-30)},              // full alignment shift
		{DAdd, f64(-0.0), f64(-0.0)},            // -0 preservation
		{DSub, f64(1), f64(1)},                  // exact cancellation
		{DSub, f64(1.0000000000000002), f64(1)}, // catastrophic cancellation
		{DSub, f64(3), f64(-7)},
		{DMul, f64(3), f64(7)},
		{DMul, f64(1e-200), f64(1e-200)}, // underflow flush
		{DMul, f64(1e200), f64(1e200)},   // overflow
		{DMul, f64(math.Pi), f64(math.E)},
		{DDiv, f64(1), f64(3)},
		{DDiv, f64(7), f64(0.5)},
		{DDiv, f64(1), f64(0)}, // divzero
		{DDiv, f64(0), f64(0)}, // invalid
		{DF2I, f64(2.5), 0},
		{DF2I, f64(-2.5), 0},
		{DF2I, f64(3e9), 0},                   // saturate
		{DF2I, f64(-2147483648), 0},           // exact MinInt32
		{DI2F, uint64(uint32(0x80000000)), 0}, // MinInt32
		{DI2F, 12345, 0},
		{SI2F, 0xFFFFFFFF, 0}, // -1
	}
	for _, tc := range cases {
		p := testFPU.Pipeline(tc.op)
		got, _ := p.Exec(tc.a, tc.b)
		want := tc.op.Golden(tc.a, tc.b)
		f := tc.op.Format()
		if tc.op.kind() != kindF2I && f.IsNaNBits(got) && f.IsNaNBits(want) {
			continue
		}
		if got != want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", tc.op, tc.a, tc.b, got, want)
		}
	}
}

func TestCalibratedClock(t *testing.T) {
	clk := testFPU.ClockPeriod()
	if math.Abs(clk-DefaultCLK) > 2 {
		t.Fatalf("Eq.1 clock %v, want %v", clk, DefaultCLK)
	}
}

func TestStageMarginOrdering(t *testing.T) {
	// The calibrated static profile: dmul sets the clock; the other
	// padded double-precision datapaths are strictly ordered below it
	// (sub > add > div, matching their error-proneness in the paper's
	// Figure 7); conversions and single-precision datapaths retain large
	// static slack, below even the VR20 dynamic-failure threshold.
	worst := func(op Op) float64 {
		d, _ := testFPU.Pipeline(op).WorstStageDelay()
		return d
	}
	clk := testFPU.CLK
	vr20 := clk / 1.256
	if d := worst(DMul); math.Abs(d-clk) > 2 {
		t.Errorf("dmul worst stage %v, want ~%v", d, clk)
	}
	if !(worst(DMul) > worst(DSub) && worst(DSub) > worst(DAdd) && worst(DAdd) > worst(DDiv)) {
		t.Errorf("padded stage ordering violated: mul=%v sub=%v add=%v div=%v",
			worst(DMul), worst(DSub), worst(DAdd), worst(DDiv))
	}
	if d := worst(DDiv); d <= vr20 {
		t.Errorf("ddiv worst stage %v should exceed the VR20 threshold %v", d, vr20)
	}
	for _, op := range []Op{DI2F, DF2I, SAdd, SSub, SMul, SDiv, SI2F, SF2I} {
		if d := worst(op); d >= vr20 {
			t.Errorf("%s worst stage %v should be below the VR20 threshold %v", op, d, vr20)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	f2, err := New(cell.Default(), 0xF00D)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range Ops() {
		a, b := testFPU.Pipeline(op), f2.Pipeline(op)
		if a.NumGates() != b.NumGates() || a.Latency() != b.Latency() {
			t.Fatalf("%s: same seed produced different pipelines", op)
		}
	}
}

func TestLatencies(t *testing.T) {
	if got := testFPU.Pipeline(DAdd).Latency(); got != 6 {
		t.Fatalf("dadd latency %d, want 6 (Figure 3)", got)
	}
	if got := testFPU.Pipeline(DMul).Latency(); got != 6 {
		t.Fatalf("dmul latency %d, want 6", got)
	}
	w := widthsOf(softfp.Binary64)
	if got := testFPU.Pipeline(DDiv).Latency(); got != 2+w.SW+1 {
		t.Fatalf("ddiv latency %d, want %d", got, 2+w.SW+1)
	}
}

func TestGateCountsRealistic(t *testing.T) {
	total := testFPU.NumGates()
	if total < 10000 {
		t.Fatalf("FPU has only %d gates; generation is degenerate", total)
	}
	if testFPU.Pipeline(DMul).NumGates() <= testFPU.Pipeline(SAdd).NumGates() {
		t.Fatal("double multiplier should dwarf single adder")
	}
}

func TestOpMetadata(t *testing.T) {
	if DAdd.String() != "fp-add.d" || SF2I.String() != "f2i.s" {
		t.Fatal("op names wrong")
	}
	if !DMul.Double() || SMul.Double() {
		t.Fatal("precision flags wrong")
	}
	if DI2F.OperandWidth() != 32 || DI2F.ResultWidth() != 64 {
		t.Fatal("i2f widths wrong")
	}
	if DF2I.OperandWidth() != 64 || DF2I.ResultWidth() != 32 {
		t.Fatal("f2i widths wrong")
	}
	if DAdd.NumOperands() != 2 || DF2I.NumOperands() != 1 {
		t.Fatal("operand counts wrong")
	}
	if len(Ops()) != 12 {
		t.Fatal("there must be 12 implemented instructions")
	}
}

func TestVariedFPUFunctionalAndTimingShift(t *testing.T) {
	die := testFPU.Vary(0.05, 7)
	// Logic preserved.
	src := prng.New(0xD1E)
	for i := 0; i < 200; i++ {
		a, b := src.Uint64(), src.Uint64()
		g1, _ := testFPU.Pipeline(DMul).Exec(a, b)
		g2, _ := die.Pipeline(DMul).Exec(a, b)
		if g1 != g2 {
			t.Fatal("process variation changed the logic function")
		}
	}
	// Timing shifted.
	d0, _ := testFPU.Pipeline(DMul).WorstStageDelay()
	d1, _ := die.Pipeline(DMul).WorstStageDelay()
	if d0 == d1 {
		t.Fatal("variation left STA unchanged")
	}
	if math.Abs(d1-d0) > 0.25*d0 {
		t.Fatalf("5%% sigma shifted worst delay by %v (from %v): implausible", d1-d0, d0)
	}
	if die.CLK != testFPU.CLK {
		t.Fatal("signoff clock must not change per die")
	}
}

// TestExecBatchMatchesScalarAndGolden validates the 64-wide bit-parallel
// path: every lane of ExecBatch must equal the scalar Exec result
// bit-for-bit (and hence the softfp golden, modulo NaN encodings).
func TestExecBatchMatchesScalarAndGolden(t *testing.T) {
	src := prng.New(0x51DE)
	for _, op := range Ops() {
		p := testFPU.Pipeline(op)
		for _, batch := range []int{64, 17, 1} {
			if op.kind() == kindDiv && batch == 64 {
				batch = 8 // long pipelines are slower to simulate
			}
			as := make([]uint64, batch)
			bs := make([]uint64, batch)
			for i := range as {
				as[i] = randOperand(op, src)
				bs[i] = randOperand(op, src)
			}
			got := p.ExecBatch(as, bs)
			for i := range as {
				scalar, _ := p.Exec(as[i], bs[i])
				if got[i] != scalar {
					t.Fatalf("%s batch %d lane %d: ExecBatch %#x, scalar Exec %#x",
						op, batch, i, got[i], scalar)
				}
				want := op.Golden(as[i], bs[i])
				f := op.Format()
				if op.kind() != kindF2I && f.IsNaNBits(got[i]) && f.IsNaNBits(want) {
					continue
				}
				if got[i] != want {
					t.Fatalf("%s(%#x, %#x) = %#x, want %#x", op, as[i], bs[i], got[i], want)
				}
			}
		}
	}
}
