package fpu

import (
	"teva/internal/netlist"
	"teva/internal/softfp"
)

// Derived widths for a format.
type widths struct {
	f  softfp.Format
	W  int // encoding width
	EB int // exponent bits
	FB int // fraction bits
	SW int // working significand width: FB+1 mantissa + 3 GRS
	EW int // exponent datapath width (signed): EB+2
	CW int // normalize-count width: smallest c with 2^c >= SW
}

func widthsOf(f softfp.Format) widths {
	w := widths{
		f:  f,
		W:  int(f.Width()),
		EB: int(f.ExpBits),
		FB: int(f.FracBits),
	}
	w.SW = w.FB + 4
	w.EW = w.EB + 2
	w.CW = 1
	for 1<<uint(w.CW) < w.SW {
		w.CW++
	}
	return w
}

// operand is the decoded form of a floating-point input inside a stage.
type operand struct {
	sign netlist.NetID
	exp  netlist.Bus // EB bits
	frac netlist.Bus // FB bits
	zero netlist.NetID
	inf  netlist.NetID
	nan  netlist.NetID
}

// decodeOperand splits an encoding bus and derives the class flags with
// flush-to-zero semantics (exponent zero reads as zero regardless of the
// fraction).
func decodeOperand(c *sb, w widths, enc netlist.Bus) operand {
	frac := netlist.Bus(enc[:w.FB])
	exp := netlist.Bus(enc[w.FB : w.FB+w.EB])
	expMax := c.IsOnes(exp)
	fracZero := c.IsZero(frac)
	return operand{
		sign: enc[w.W-1],
		exp:  exp,
		frac: frac,
		zero: c.IsZero(exp),
		inf:  c.FAnd(expMax, fracZero),
		nan:  c.FAnd(expMax, c.FNot(fracZero)),
	}
}

// sig returns the FB+1-bit significand with the implicit leading bit.
// A flushed (zero/denormal) operand reads as an all-zero significand.
func (o operand) sig(c *sb, w widths) netlist.Bus {
	nz := c.FNot(o.zero)
	return append(c.FAndWith(o.frac, nz), nz)
}

// zeroExtend widens a bus with constant zeros.
func zeroExtend(bus netlist.Bus, width int) netlist.Bus {
	out := append(netlist.Bus{}, bus...)
	for len(out) < width {
		out = append(out, netlist.Const0)
	}
	return out
}

// shiftLeftFixed rewires a bus left by s into width w.
func shiftLeftFixed(bus netlist.Bus, s, w int) netlist.Bus {
	out := make(netlist.Bus, w)
	for i := range out {
		src := i - s
		if src >= 0 && src < len(bus) {
			out[i] = bus[src]
		} else {
			out[i] = netlist.Const0
		}
	}
	return out
}

// roundFields is the schema every datapath feeds into the shared
// round/pack stage: a normalized significand with GRS, a signed exponent,
// and the resolved special-case flags.
func roundFields(w widths) []fieldSpec {
	return []fieldSpec{
		{"n", w.SW},    // mantissa with leading 1 at SW-1 and GRS in bits 2..0
		{"exp", w.EW},  // signed biased exponent of the leading-one position
		{"sign", 1},    // result sign for the numeric path
		{"zero", 1},    // result is (signed) zero
		{"inf", 1},     // result is infinity (propagated operand infinity)
		{"infsign", 1}, // sign of that infinity
		{"nan", 1},     // result is NaN
	}
}

// buildRoundStage emits the shared final stage: round-to-nearest-even on
// the GRS bits, exponent overflow/underflow resolution (overflow to
// infinity, underflow flushed to zero), and the special-case result muxes
// in priority order zero < overflow < infinity < NaN. padPS delays the
// packed result bus, placing the rounding stage at its calibrated margin.
func buildRoundStage(c *sb, w widths, padPS float64) {
	n := c.get("n")
	exp := c.get("exp")
	sign := c.bit("sign")
	zero := c.bit("zero")
	inf := c.bit("inf")
	infSign := c.bit("infsign")
	nan := c.bit("nan")

	// Round to nearest even: guard & (round | sticky | lsb).
	lsb := n[3]
	guard := n[2]
	rs := c.FOr(n[1], n[0])
	roundUp := c.FAnd(guard, c.FOr(rs, lsb))
	mant, carry := c.Increment(netlist.Bus(n[3:]), roundUp)
	// The leading significand bit is implicit in the packed encoding; a
	// rounding overflow is absorbed by the exponent increment below.
	c.Discard(mant[w.FB])
	exp2 := c.Sum(c.Increment(exp, carry))

	// Range checks on the signed exponent.
	negOrZero := c.FOr(exp2[w.EW-1], c.IsZero(exp2))
	geMax := c.FAnd(c.FNot(exp2[w.EW-1]),
		c.FNot(c.LessUnsigned(exp2, c.Constant(uint64(1<<uint(w.EB)-1), w.EW))))

	// Numeric result: frac | exp | sign.
	result := append(netlist.Bus{}, mant[:w.FB]...)
	result = append(result, exp2[:w.EB]...)
	result = append(result, sign)

	zeroBus := append(c.Zeros(w.W-1), sign)
	infBus := func(s netlist.NetID) netlist.Bus {
		b := append(c.Zeros(w.FB), c.Constant(uint64(1<<uint(w.EB)-1), w.EB)...)
		return append(b, s)
	}
	qnan := c.Constant(w.f.QNaN(), w.W)

	result = c.FMuxBus(c.FOr(zero, negOrZero), result, zeroBus)
	result = c.FMuxBus(geMax, result, infBus(sign))
	result = c.FMuxBus(inf, result, infBus(infSign))
	result = c.FMuxBus(nan, result, qnan)
	if padPS > 0 {
		result = c.DetourBus(result, padPS)
	}
	c.put("result", result)
}

// putRoundInputs emits the shared round-stage fields from a stage.
func putRoundInputs(c *sb, n, exp netlist.Bus, sign, zero, inf, infSign, nan netlist.NetID) {
	c.put("n", n)
	c.put("exp", exp)
	c.putBit("sign", sign)
	c.putBit("zero", zero)
	c.putBit("inf", inf)
	c.putBit("infsign", infSign)
	c.putBit("nan", nan)
}
