package fpu

import (
	"fmt"
	"math"
	"sync"

	"teva/internal/cell"
	"teva/internal/sta"
)

// DefaultCLK is the design's clock period in picoseconds. It matches the
// paper's reference implementation, whose fastest achieved clock is 4.5ns,
// and is produced by Eq. 1: the double-precision multiplier's
// carry-propagate stage is calibrated to exactly this delay.
const DefaultCLK = 4500

// padPlan holds the calibrated per-stage margin targets as fractions of
// the clock period. These place each instruction's critical stage where
// the reference design's dynamic timing profile has it:
//
//   - fp-mul.d's CPA stage defines the clock (fraction 1.0);
//   - fp-sub.d sits high enough to fail under 15% voltage reduction;
//   - fp-add.d and fp-div.d cross the failure threshold only at 20%;
//   - rounding stages sit lower still, contributing rare exponent-bit
//     errors at deep undervolting;
//   - conversions and the single-precision datapaths are left at their
//     natural (comfortable) slack and never fail at the studied corners.
//
// With the alpha-power delay model, the failure thresholds are
// CLK/1.174 = 0.852*CLK at VR15 and CLK/1.256 = 0.796*CLK at VR20.
var padPlan = map[Op]struct{ mant, round float64 }{
	DMul: {mant: 1.000, round: 0.790},
	DSub: {mant: 0.920, round: 0.770},
	DAdd: {mant: 0.870, round: 0.755},
	DDiv: {mant: 0.865, round: 0.740},
}

// FPU is the full gate-level floating-point unit: one pipeline per
// instruction, all calibrated against a common clock.
type FPU struct {
	// Lib is the standard-cell library the unit is implemented in.
	Lib *cell.Library
	// CLK is the clock period, ps.
	CLK float64
	// Seed reproduces the exact placed design.
	Seed uint64

	pipelines [NumOps]*Pipeline
	scratch   sync.Map
}

// Scratch is a per-FPU cache for derived state (e.g. pooled DTA
// analyzers). Consumers must key entries with their own unexported types
// so packages cannot collide; everything cached here dies with the FPU,
// which keeps such caches from pinning retired designs the way a global
// registry would.
func (f *FPU) Scratch() *sync.Map { return &f.scratch }

// New generates and calibrates the FPU. The same seed reproduces the
// identical design, including interconnect annotation.
func New(lib *cell.Library, seed uint64) (*FPU, error) {
	f := &FPU{Lib: lib, CLK: DefaultCLK, Seed: seed}
	for _, op := range Ops() {
		plan, padded := padPlan[op]
		var mantPad, roundPad float64
		var p *Pipeline
		var err error
		// Calibrate iteratively: the detour's own buffer delay shifts the
		// result, so rebuild until the padded stage lands on target. The
		// builder is deterministic per seed, so this converges exactly.
		for iter := 0; iter < 4; iter++ {
			p, err = buildOp(op, lib, seed, mantPad, roundPad)
			if err != nil {
				return nil, err
			}
			if !padded {
				break
			}
			mi, ri := criticalStageIndexes(op)
			reports := p.STA()
			dm := plan.mant*f.CLK - reports[mi].WorstDelay
			dr := plan.round*f.CLK - reports[ri].WorstDelay
			if math.Abs(dm) < 0.5 && math.Abs(dr) < 0.5 {
				break
			}
			mantPad = math.Max(0, mantPad+dm)
			roundPad = math.Max(0, roundPad+dr)
		}
		f.pipelines[op] = p
	}
	// The multiplier's CPA stage must set the clock (Eq. 1).
	if worst := f.ClockPeriod(); math.Abs(worst-f.CLK) > 2 {
		return nil, fmt.Errorf("fpu: calibrated clock %f ps, want %f", worst, f.CLK)
	}
	return f, nil
}

// buildOp dispatches to the per-kind generator. Seeds are spread so each
// op gets an independent placement.
func buildOp(op Op, lib *cell.Library, seed uint64, mantPad, roundPad float64) (*Pipeline, error) {
	s := seed + uint64(op)*0x1000003
	switch op.kind() {
	case kindAdd, kindSub:
		return buildAddSub(op, lib, s, mantPad, roundPad)
	case kindMul:
		return buildMul(op, lib, s, mantPad, roundPad)
	case kindDiv:
		return buildDiv(op, lib, s, mantPad, roundPad)
	case kindI2F:
		return buildI2F(op, lib, s)
	case kindF2I:
		return buildF2I(op, lib, s)
	}
	panic("fpu: unknown op kind")
}

// criticalStageIndexes returns the indexes of the padded mantissa-datapath
// stage and the round stage for a padded op.
func criticalStageIndexes(op Op) (mant, round int) {
	switch op.kind() {
	case kindAdd, kindSub, kindMul:
		return 3, 5
	case kindDiv:
		return 1, 3
	}
	panic("fpu: op has no padded stages")
}

// Pipeline returns the gate-level pipeline for the op.
func (f *FPU) Pipeline(op Op) *Pipeline { return f.pipelines[op] }

// StageReports runs STA on every stage of every op, tagged by unit names.
func (f *FPU) StageReports() []*sta.Report {
	var all []*sta.Report
	for _, op := range Ops() {
		all = append(all, f.pipelines[op].STA()...)
	}
	return all
}

// StageReportsCorner is StageReports re-derated at an operating corner:
// one STA per stage with every cell delay inflated by the corner's
// alpha-power scale, without rebuilding any netlist.
func (f *FPU) StageReportsCorner(corner cell.Corner) []*sta.Report {
	var all []*sta.Report
	for _, op := range Ops() {
		all = append(all, f.pipelines[op].STACorner(corner)...)
	}
	return all
}

// ClockPeriod evaluates Eq. 1 over all pipeline stages: the maximum
// worst-case stage delay, which the calibration pins to CLK.
func (f *FPU) ClockPeriod() float64 {
	return sta.ClockPeriod(f.StageReports(), 1.0)
}

// Vary returns a process-variation instance of the FPU: the same design
// with per-gate lognormal delay factors (sigma, seed select the die).
// The clock period is unchanged — variation eats into the signoff margin,
// which is exactly how silicon experiences it.
func (f *FPU) Vary(sigma float64, seed uint64) *FPU {
	die := &FPU{Lib: f.Lib, CLK: f.CLK, Seed: f.Seed}
	for op, p := range f.pipelines {
		vp := &Pipeline{Op: p.Op, lib: p.lib}
		for i, s := range p.Stages {
			vp.Stages = append(vp.Stages, &Stage{
				Name:   s.Name,
				N:      s.N.Vary(sigma, seed+uint64(op)*131+uint64(i)*17),
				Repeat: s.Repeat,
				in:     s.in,
				out:    s.out,
			})
		}
		die.pipelines[op] = vp
	}
	return die
}

// NumGates returns the total gate count of the unit.
func (f *FPU) NumGates() int {
	var n int
	for _, op := range Ops() {
		n += f.pipelines[op].NumGates()
	}
	return n
}
