package fpu

import "teva/internal/netlist"

// buildMul compiles the 6-stage multiplier pipeline:
//
//	s1 unpack      operand decode, sign/flag resolution
//	s2 ppgen       partial products + first carry-save levels (to 8 rows)
//	s3 csa         carry-save reduction to two rows; exponent sum
//	s4 cpa         the wide carry-propagate addition — the design's
//	               overall critical stage (sets the clock period)
//	s5 normalize   1-bit normalization and sticky collapse
//	s6 round       shared round/pack stage
func buildMul(op Op, lib libT, seed uint64, cpaPad, roundPad float64) (*Pipeline, error) {
	w := widthsOf(op.Format())
	pw := 2*w.FB + 2 // full product width of two FB+1-bit significands
	inSchema := newSchema(fieldSpec{"a", w.W}, fieldSpec{"b", w.W})

	specs := []stageSpec{
		{name: "s1-unpack", build: func(c *sb) {
			a := decodeOperand(c, w, c.get("a"))
			b := decodeOperand(c, w, c.get("b"))
			sign := c.FXor(a.sign, b.sign)
			// inf * 0 (either way) is invalid.
			invalid := c.FOr(c.FAnd(a.inf, b.zero), c.FAnd(b.inf, a.zero))
			c.put("sigA", a.sig(c, w))
			c.put("sigB", b.sig(c, w))
			c.put("expA", a.exp)
			c.put("expB", b.exp)
			c.putBit("sign", sign)
			c.putBit("zero", c.FOr(a.zero, b.zero))
			c.putBit("inf", c.FOr(a.inf, b.inf))
			c.putBit("nan", c.FOr(c.FOr(a.nan, b.nan), invalid))
		}},
		{name: "s2-ppgen", build: func(c *sb) {
			rows := c.CompressAddends(c.PartialProducts(c.get("sigA"), c.get("sigB")), 8)
			for i, row := range rows {
				c.put(rowName(i), row)
			}
			for i := len(rows); i < 8; i++ {
				c.put(rowName(i), c.Zeros(pw))
			}
			expSum := c.Sum(c.RippleAdder(
				zeroExtend(c.get("expA"), w.EW), zeroExtend(c.get("expB"), w.EW),
				netlist.Const0))
			c.put("expSum", expSum)
			c.forward("sign", "zero", "inf", "nan")
		}},
		{name: "s3-csa", build: func(c *sb) {
			rows := make([]netlist.Bus, 8)
			for i := range rows {
				rows[i] = c.get(rowName(i))
			}
			two := c.CompressAddends(rows, 2)
			c.put("r0", two[0])
			c.put("r1", two[1])
			c.forward("expSum", "sign", "zero", "inf", "nan")
		}},
		{name: "s4-cpa", build: func(c *sb) {
			p := c.Sum(c.HybridAdder(c.get("r0"), c.get("r1"), netlist.Const0, 16))
			if cpaPad > 0 {
				p = c.DetourBus(p, cpaPad)
			}
			c.put("p", p)
			c.forward("expSum", "sign", "zero", "inf", "nan")
		}},
		{name: "s5-normalize", build: func(c *sb) {
			p := c.get("p")
			expSum := c.get("expSum")
			top := p[pw-1] // product in [2,4): leading one at pw-1
			// High alternative: take bits [pw-SW, pw), sticky from below.
			hiN := append(netlist.Bus{}, p[pw-w.SW:]...)
			hiSticky := c.ReduceOr(netlist.Bus(p[:pw-w.SW]))
			hiN[0] = c.FOr(hiN[0], hiSticky)
			// Low alternative: product in [1,2): leading one at pw-2.
			loN := append(netlist.Bus{}, p[pw-w.SW-1:pw-1]...)
			loSticky := c.ReduceOr(netlist.Bus(p[:pw-w.SW-1]))
			loN[0] = c.FOr(loN[0], loSticky)
			n := c.FMuxBus(top, loN, hiN)
			// exp = expA + expB - bias + top.
			bias := uint64(1<<uint(w.EB-1) - 1)
			e1 := c.Sum(c.RippleSub(expSum, c.Constant(bias, w.EW)))
			e2 := c.Sum(c.Increment(e1, top))
			sign := c.bit("sign")
			putRoundInputs(c, n, e2, sign, c.bit("zero"), c.bit("inf"), sign, c.bit("nan"))
		}},
		{name: "s6-round", build: func(c *sb) {
			buildRoundStage(c, w, roundPad)
		}},
	}
	return compile(op, lib, seed, inSchema, specs)
}

func rowName(i int) string { return "row" + string(rune('0'+i)) }
