package fpu

import "teva/internal/netlist"

// buildI2F compiles the int32 → float pipeline: magnitude extraction,
// normalization (leading-zero count + shift), and the shared round stage
// (exact for binary64, rounding for binary32).
func buildI2F(op Op, lib libT, seed uint64) (*Pipeline, error) {
	w := widthsOf(op.Format())
	inSchema := newSchema(fieldSpec{"a", 32})

	specs := []stageSpec{
		{name: "s1-mag", build: func(c *sb) {
			a := c.get("a")
			sign := a[31]
			mag := c.FMuxBus(sign, a, c.Negate(a))
			c.put("mag", mag)
			c.putBit("sign", sign)
			c.putBit("zero", c.IsZero(a))
		}},
		{name: "s2-normalize", build: func(c *sb) {
			mag := c.get("mag")
			norm, lz := c.NormalizeLeft(mag, 5)
			// Leading one now at bit 31; exponent = bias + 31 - lz.
			bias := uint64(1<<uint(w.EB-1) - 1)
			e := c.Sum(c.RippleSub(c.Constant(bias+31, w.EW), zeroExtend(lz, w.EW)))
			var n netlist.Bus
			if w.SW >= 32 {
				n = shiftLeftFixed(norm, w.SW-32, w.SW)
			} else {
				drop := 32 - w.SW
				n = append(netlist.Bus{}, norm[drop:]...)
				n[0] = c.FOr(n[0], c.ReduceOr(netlist.Bus(norm[:drop])))
			}
			sign := c.bit("sign")
			putRoundInputs(c, n, e, sign, c.bit("zero"), netlist.Const0, netlist.Const0, netlist.Const0)
		}},
		{name: "s3-round", build: func(c *sb) {
			buildRoundStage(c, w, 0)
		}},
	}
	return compile(op, lib, seed, inSchema, specs)
}

// buildF2I compiles the float → int32 pipeline: unpack, shift to integer
// weight, then negate/saturate/pack. Conversion truncates toward zero;
// NaN converts to 0 and out-of-range values saturate.
func buildF2I(op Op, lib libT, seed uint64) (*Pipeline, error) {
	w := widthsOf(op.Format())
	inSchema := newSchema(fieldSpec{"a", w.W})
	// Significand zero-extended to cover both the FB+1 mantissa and the
	// 32-bit integer range.
	sw := w.FB + 1
	if sw < 32 {
		sw = 32
	}

	specs := []stageSpec{
		{name: "s1-unpack", build: func(c *sb) {
			a := decodeOperand(c, w, c.get("a"))
			bias := uint64(1<<uint(w.EB-1) - 1)
			e := c.Sum(c.RippleSub(zeroExtend(a.exp, w.EW), c.Constant(bias, w.EW)))
			c.put("sig", a.sig(c, w))
			c.put("e", e)
			c.putBit("sign", a.sign)
			c.putBit("zero", a.zero)
			c.putBit("inf", a.inf)
			c.putBit("nan", a.nan)
		}},
		{name: "s2-shift", build: func(c *sb) {
			sig := zeroExtend(c.get("sig"), sw)
			e := c.get("e")
			eNeg := e[w.EW-1]
			// |value| >= 2^31 saturates (2^31 itself packs to MinInt32 when
			// negative, which the saturation value also encodes).
			big := c.FAnd(c.FNot(eNeg),
				c.FNot(c.LessUnsigned(e, c.Constant(31, w.EW))))
			// Right shift by FB-e (or left by e-FB when e > FB, which only
			// occurs for binary32).
			r := c.Sum(c.RippleSub(c.Constant(uint64(w.FB), w.EW), e))
			rNeg := r[w.EW-1]
			magR := c.ShiftRight(sig, netlist.Bus(r[:6]), netlist.Const0)
			var mag netlist.Bus
			if w.FB < 31 {
				l := c.Negate(r)
				// Only the 6-bit shift field of the negated count is used.
				c.DiscardBus(netlist.Bus(l[6:]))
				magL := c.ShiftLeft(sig, netlist.Bus(l[:6]))
				mag = c.FMuxBus(rNeg, magR, magL)
			} else {
				// For binary64 e <= FB always, so only the 6-bit shift
				// field of r is consumed (no left-shift path, and the sign
				// mux is never built); out-of-range counts mask via drop.
				c.DiscardBus(netlist.Bus(r[6:]))
				mag = magR
			}
			if len(mag) > 32 {
				// Bits above the int32 range only matter through big/sat;
				// the shifter still computes them.
				c.DiscardBus(netlist.Bus(mag[32:]))
			}
			c.put("mag", netlist.Bus(mag[:32]))
			c.putBit("drop", c.FOr(eNeg, c.bit("zero")))
			c.forward("sign", "inf", "nan")
			c.putBit("big", big)
		}},
		{name: "s3-pack", build: func(c *sb) {
			mag := c.get("mag")
			sign := c.bit("sign")
			val := c.FMuxBus(sign, mag, c.Negate(mag))
			sat := append(c.FNotBus(c.Zeros(31)), netlist.Const0) // MaxInt32
			satNeg := append(c.Zeros(31), netlist.Const1)         // MinInt32
			satVal := c.FMuxBus(sign, sat, satNeg)
			res := c.FMuxBus(c.bit("drop"), val, c.Zeros(32))
			res = c.FMuxBus(c.FOr(c.bit("big"), c.bit("inf")), res, satVal)
			res = c.FMuxBus(c.bit("nan"), res, c.Zeros(32))
			c.put("result", res)
		}},
	}
	return compile(op, lib, seed, inSchema, specs)
}
