package fpu

import (
	"fmt"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/netlist"
	"teva/internal/sta"
)

type libT = *cell.Library

// Stage is one pipeline rank: a combinational netlist between two register
// boundaries, possibly iterated (the divider's recurrence stage).
type Stage struct {
	// Name labels the stage ("s4-cpa").
	Name string
	// N is the stage's combinational netlist.
	N *netlist.Netlist
	// Repeat is how many consecutive cycles the stage executes (1 for
	// ordinary stages, mantissa-width+4 for the divide recurrence).
	Repeat int
	// in and out are the register schemas on either side.
	in, out *schema
}

// Latency returns the number of cycles the stage occupies.
func (s *Stage) Latency() int { return s.Repeat }

// Pipeline is the gate-level implementation of one FPU instruction.
type Pipeline struct {
	// Op is the implemented instruction.
	Op Op
	// Stages in execution order.
	Stages []*Stage
	lib    libT
}

// Latency returns the pipeline's total cycle count.
func (p *Pipeline) Latency() int {
	var n int
	for _, s := range p.Stages {
		n += s.Repeat
	}
	return n
}

// NumGates returns the total gate count across stages (iterated stages
// counted once, as in hardware).
func (p *Pipeline) NumGates() int {
	var n int
	for _, s := range p.Stages {
		n += s.N.NumGates()
	}
	return n
}

// stageSpec describes a stage to the compiler.
type stageSpec struct {
	name   string
	repeat int
	build  func(c *sb)
}

// compile builds the pipeline's stage netlists, checking schema continuity
// between consecutive stages and that iterated stages preserve their
// schema.
func compile(op Op, lib libT, seed uint64, in *schema, specs []stageSpec) (*Pipeline, error) {
	p := &Pipeline{Op: op, lib: lib}
	cur := in
	for i, spec := range specs {
		name := fmt.Sprintf("fpu/%s/%s", op, spec.name)
		c := newStageBuilder(name, lib, seed+uint64(i)*0x9e37, cur)
		c.SetUnit(name)
		spec.build(c)
		n, out, err := c.finish()
		if err != nil {
			return nil, fmt.Errorf("fpu: %s: %w", name, err)
		}
		repeat := spec.repeat
		if repeat == 0 {
			repeat = 1
		}
		if repeat > 1 && !out.equal(cur) {
			return nil, fmt.Errorf("fpu: %s: iterated stage changes schema", name)
		}
		p.Stages = append(p.Stages, &Stage{
			Name: spec.name, N: n, Repeat: repeat, in: cur, out: out,
		})
		cur = out
	}
	last := p.Stages[len(p.Stages)-1]
	if got, want := last.out.total, op.ResultWidth(); got != want {
		return nil, fmt.Errorf("fpu: %s: final stage emits %d bits, want %d", op, got, want)
	}
	return p, nil
}

// Exec runs the pipeline functionally (zero delay) and returns the result
// encoding along with every register rank's values, in order: rank 0 is
// the pipeline's input vector, rank i the output of the i-th executed
// cycle. The ranks are what the dynamic timing analysis replays with
// delays. Operands are raw encodings in the low bits.
func (p *Pipeline) Exec(a, b uint64) (uint64, [][]bool) {
	in := p.packInputs(a, b)
	ranks := [][]bool{in}
	cur := in
	for _, s := range p.Stages {
		sim := logicsim.New(s.N.Compiled())
		for r := 0; r < s.Repeat; r++ {
			sim.Run(cur)
			cur = sim.Outputs(nil)
			ranks = append(ranks, cur)
		}
	}
	return unpackBits(cur, p.Op.ResultWidth()), ranks
}

// ExecBatch runs up to 64 operand pairs through the pipeline on the
// 64-wide bit-parallel engine — one circuit walk per stage-cycle
// evaluates every pair — and returns the result encodings in input
// order. Results are bit-identical to per-pair Exec calls.
func (p *Pipeline) ExecBatch(a, b []uint64) []uint64 {
	if len(a) != len(b) {
		panic("fpu: ExecBatch operand count mismatch")
	}
	if len(a) > 64 {
		panic("fpu: ExecBatch limited to 64 pairs")
	}
	w := p.Op.OperandWidth()
	words := make([]uint64, p.Stages[0].in.total)
	for lane := range a {
		logicsim.PackLaneBits(words, lane, 0, w, a[lane])
		if p.Op.NumOperands() == 2 {
			logicsim.PackLaneBits(words, lane, w, w, b[lane])
		}
	}
	for _, s := range p.Stages {
		sim := logicsim.NewWide(s.N.Compiled())
		for r := 0; r < s.Repeat; r++ {
			sim.Run(words)
			words = sim.Outputs(nil)
		}
	}
	rw := p.Op.ResultWidth()
	res := make([]uint64, len(a))
	for lane := range res {
		res[lane] = logicsim.UnpackLaneBits(words, lane, 0, rw)
	}
	return res
}

// Result extracts the result encoding from the final register rank.
func (p *Pipeline) Result(finalRank []bool) uint64 {
	return unpackBits(finalRank, p.Op.ResultWidth())
}

// packInputs builds the rank-0 vector for the operands.
func (p *Pipeline) packInputs(a, b uint64) []bool {
	in := make([]bool, p.Stages[0].in.total)
	w := p.Op.OperandWidth()
	logicsim.PackInputs(in, 0, w, a)
	if p.Op.NumOperands() == 2 {
		logicsim.PackInputs(in, w, w, b)
	}
	return in
}

func unpackBits(values []bool, width int) uint64 {
	return logicsim.UnpackOutputs(values, 0, width)
}

// STA analyzes every stage and returns the reports in stage order.
func (p *Pipeline) STA() []*sta.Report {
	reports := make([]*sta.Report, len(p.Stages))
	for i, s := range p.Stages {
		reports[i] = sta.Analyze(s.N.Compiled(), p.lib.ClockToQ, p.lib.Setup)
	}
	return reports
}

// STACorner is STA with every stage re-derated at an operating corner
// (the netlists are not rebuilt; see sta.AnalyzeCorner).
func (p *Pipeline) STACorner(corner cell.Corner) []*sta.Report {
	reports := make([]*sta.Report, len(p.Stages))
	for i, s := range p.Stages {
		reports[i] = sta.AnalyzeCorner(s.N.Compiled(), p.lib.ClockToQ, p.lib.Setup, corner)
	}
	return reports
}

// WorstStageDelay returns the slowest stage's STA delay and its index.
func (p *Pipeline) WorstStageDelay() (float64, int) {
	var worst float64
	idx := 0
	for i, r := range p.STA() {
		if r.WorstDelay > worst {
			worst = r.WorstDelay
			idx = i
		}
	}
	return worst, idx
}
