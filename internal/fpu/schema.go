package fpu

import (
	"fmt"

	"teva/internal/netlist"
)

// fieldSpec is one named bus crossing a pipeline-register boundary.
type fieldSpec struct {
	name  string
	width int
}

// schema is the ordered set of fields held in one pipeline register rank.
// Stage netlists declare their primary inputs/outputs through a schema so
// that consecutive stages agree on bit positions by construction.
type schema struct {
	fields []fieldSpec
	offset map[string]int
	total  int
}

func newSchema(fields ...fieldSpec) *schema {
	s := &schema{offset: make(map[string]int, len(fields))}
	for _, f := range fields {
		s.add(f.name, f.width)
	}
	return s
}

func (s *schema) add(name string, width int) {
	if width <= 0 {
		panic(fmt.Sprintf("fpu: field %q has width %d", name, width))
	}
	if _, dup := s.offset[name]; dup {
		panic(fmt.Sprintf("fpu: duplicate field %q", name))
	}
	s.offset[name] = s.total
	s.fields = append(s.fields, fieldSpec{name: name, width: width})
	s.total += width
}

func (s *schema) width(name string) int {
	for _, f := range s.fields {
		if f.name == name {
			return f.width
		}
	}
	panic(fmt.Sprintf("fpu: unknown field %q", name))
}

// equal reports whether two schemas have identical field sequences.
func (s *schema) equal(o *schema) bool {
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i, f := range s.fields {
		if o.fields[i] != f {
			return false
		}
	}
	return true
}

// sb is the stage-construction context: a netlist builder plus the decoded
// input fields and the accumulated output fields.
type sb struct {
	*netlist.Builder
	in      map[string]netlist.Bus
	inOrder *schema
	out     *schema
	outBus  netlist.Bus
}

// newStageBuilder declares the stage's primary inputs per the input schema
// and returns the construction context.
func newStageBuilder(name string, lib libT, seed uint64, in *schema) *sb {
	b := netlist.NewBuilder(name, lib, seed)
	ctx := &sb{
		Builder: b,
		in:      make(map[string]netlist.Bus, len(in.fields)),
		inOrder: in,
		out:     newSchema(),
	}
	for _, f := range in.fields {
		ctx.in[f.name] = b.Input(f.width)
	}
	return ctx
}

// get returns the named input field bus.
func (c *sb) get(name string) netlist.Bus {
	bus, ok := c.in[name]
	if !ok {
		panic(fmt.Sprintf("fpu: stage reads unknown field %q", name))
	}
	return bus
}

// bit returns a single-bit input field.
func (c *sb) bit(name string) netlist.NetID {
	bus := c.get(name)
	if len(bus) != 1 {
		panic(fmt.Sprintf("fpu: field %q is %d bits, not 1", name, len(bus)))
	}
	return bus[0]
}

// put declares an output field.
func (c *sb) put(name string, bus netlist.Bus) {
	c.out.add(name, len(bus))
	c.outBus = append(c.outBus, bus...)
}

// putBit declares a single-bit output field.
func (c *sb) putBit(name string, net netlist.NetID) { c.put(name, netlist.Bus{net}) }

// forward copies an input field to the output unchanged (a pipeline
// register feed-through).
func (c *sb) forward(names ...string) {
	for _, n := range names {
		c.put(n, c.get(n))
	}
}

// finish builds the netlist and returns it with the output schema.
func (c *sb) finish() (*netlist.Netlist, *schema, error) {
	c.Output(c.outBus)
	n, err := c.Build()
	return n, c.out, err
}
