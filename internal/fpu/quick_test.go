package fpu

import (
	"testing"
	"testing/quick"

	"teva/internal/softfp"
)

// quickConfig bounds the property-test effort: each Exec simulates tens
// of thousands of gates.
var quickConfig = &quick.Config{MaxCount: 300}

// checkOp verifies the gate-level pipeline against the softfp golden
// model for one generated operand pair (NaN payloads normalized).
func checkOp(op Op) func(a, b uint64) bool {
	p := testFPU.Pipeline(op)
	f := op.Format()
	mask := ^uint64(0)
	if w := op.OperandWidth(); w < 64 {
		mask = 1<<uint(w) - 1
	}
	return func(a, b uint64) bool {
		a &= mask
		b &= mask
		got, _ := p.Exec(a, b)
		want := op.Golden(a, b)
		if op.kind() != kindF2I && f.IsNaNBits(got) && f.IsNaNBits(want) {
			return true
		}
		return got == want
	}
}

func TestQuickAddMatchesGolden(t *testing.T) {
	if err := quick.Check(checkOp(DAdd), quickConfig); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubMatchesGolden(t *testing.T) {
	if err := quick.Check(checkOp(DSub), quickConfig); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulMatchesGolden(t *testing.T) {
	if err := quick.Check(checkOp(DMul), quickConfig); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSingleOpsMatchGolden(t *testing.T) {
	for _, op := range []Op{SAdd, SMul, SF2I, SI2F} {
		if err := quick.Check(checkOp(op), &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}

func TestSchemaContinuity(t *testing.T) {
	// Every stage's input register rank must carry exactly the previous
	// stage's outputs, and iterated stages must be schema-stable.
	for _, op := range Ops() {
		p := testFPU.Pipeline(op)
		for i := 1; i < len(p.Stages); i++ {
			prev, cur := p.Stages[i-1], p.Stages[i]
			if !prev.out.equal(cur.in) {
				t.Fatalf("%s: schema break between %s and %s", op, prev.Name, cur.Name)
			}
		}
		for _, s := range p.Stages {
			if s.Repeat > 1 && !s.in.equal(s.out) {
				t.Fatalf("%s: iterated stage %s changes schema", op, s.Name)
			}
			if len(s.N.Inputs()) != s.in.total || len(s.N.Outputs()) != s.out.total {
				t.Fatalf("%s/%s: netlist port counts disagree with schema", op, s.Name)
			}
		}
	}
}

func TestExecRankCount(t *testing.T) {
	for _, op := range []Op{DAdd, DMul, DDiv, SF2I} {
		p := testFPU.Pipeline(op)
		_, ranks := p.Exec(0, 0)
		if len(ranks) != p.Latency()+1 {
			t.Fatalf("%s: %d ranks for latency %d", op, len(ranks), p.Latency())
		}
		if got := p.Result(ranks[len(ranks)-1]); got != op.Golden(0, 0) {
			t.Fatalf("%s: Result() disagrees with Exec()", op)
		}
	}
}

func TestStageUnitsTagged(t *testing.T) {
	for _, op := range Ops() {
		p := testFPU.Pipeline(op)
		for _, s := range p.Stages {
			for _, g := range s.N.Gates() {
				if g.Unit == "" {
					t.Fatalf("%s/%s: untagged gate", op, s.Name)
				}
			}
		}
	}
}

func TestGoldenMatchesSoftfpDirectly(t *testing.T) {
	// Op.Golden must be exactly the softfp reference (no drift between
	// the CPU's arithmetic and the circuit's golden model).
	f := softfp.Binary64
	a, b := uint64(0x400921FB54442D18), uint64(0x4005BF0A8B145769) // pi, e
	want, _ := f.Mul(a, b)
	if DMul.Golden(a, b) != want {
		t.Fatal("Golden diverges from softfp")
	}
}
