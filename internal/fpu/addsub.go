package fpu

import "teva/internal/netlist"

// buildAddSub compiles the 6-stage add/sub pipeline of Figure 3:
//
//	s1 unpack      operand decode, FTZ, effective-sign resolution
//	s2 compare     magnitude compare/swap, exponent difference
//	s3 align       barrel right shift of the smaller significand + sticky
//	s4 mantissa    the wide add/subtract — the op's critical stage
//	s5 normalize   1-bit right shift (carry) or LZC left shift (cancel)
//	s6 round       shared round/pack stage
//
// negB distinguishes subtraction (the only datapath difference is the
// inversion of operand B's sign in s1); mantPad/roundPad are the
// calibrated stage margins.
func buildAddSub(op Op, lib libT, seed uint64, mantPad, roundPad float64) (*Pipeline, error) {
	w := widthsOf(op.Format())
	sub := op.kind() == kindSub
	inSchema := newSchema(fieldSpec{"a", w.W}, fieldSpec{"b", w.W})

	specs := []stageSpec{
		{name: "s1-unpack", build: func(c *sb) {
			a := decodeOperand(c, w, c.get("a"))
			b := decodeOperand(c, w, c.get("b"))
			signB := b.sign
			if sub {
				signB = c.Not(signB) // effective sign of B for a-b
			}
			// inf-inf with opposite effective signs is invalid.
			diffSign := c.FXor(a.sign, signB)
			nan := c.FOr(c.FOr(a.nan, b.nan), c.And3(a.inf, b.inf, diffSign))
			inf := c.FOr(a.inf, b.inf)
			infSign := c.FMux(a.inf, signB, a.sign)
			c.putBit("signA", a.sign)
			c.putBit("signB", signB)
			c.put("expA", a.exp)
			c.put("expB", b.exp)
			c.put("fracA", a.frac)
			c.put("fracB", b.frac)
			c.putBit("zeroA", a.zero)
			c.putBit("zeroB", b.zero)
			c.putBit("inf", inf)
			c.putBit("infsign", infSign)
			c.putBit("nan", nan)
		}},
		{name: "s2-compare", build: func(c *sb) {
			expA, expB := c.get("expA"), c.get("expB")
			fracA, fracB := c.get("fracA"), c.get("fracB")
			signA, signB := c.bit("signA"), c.bit("signB")
			zeroA, zeroB := c.bit("zeroA"), c.bit("zeroB")
			// Magnitude comparison over exp|frac selects the larger operand.
			magA := append(append(netlist.Bus{}, fracA...), expA...)
			magB := append(append(netlist.Bus{}, fracB...), expB...)
			bLarger := c.LessUnsigned(magA, magB)
			nzA, nzB := c.FNot(zeroA), c.FNot(zeroB)
			sigA := append(c.FAndWith(fracA, nzA), nzA)
			sigB := append(c.FAndWith(fracB, nzB), nzB)
			expL := c.FMuxBus(bLarger, expA, expB)
			expS := c.FMuxBus(bLarger, expB, expA)
			d := c.Sum(c.RippleSub(expL, expS))
			c.put("sigL", c.FMuxBus(bLarger, sigA, sigB))
			c.put("sigS", c.FMuxBus(bLarger, sigB, sigA))
			c.put("d", d)
			c.put("expL", expL)
			c.putBit("signL", c.FMux(bLarger, signA, signB))
			c.putBit("effSub", c.FXor(signA, signB))
			// Sign of an all-cancelled / all-zero result: -0 only when
			// both effective signs are negative (round-to-nearest rule).
			c.putBit("zsign", c.FAnd(signA, signB))
			c.forward("inf", "infsign", "nan")
		}},
		{name: "s3-align", build: func(c *sb) {
			sigL, sigS := c.get("sigL"), c.get("sigS")
			d := c.get("d")
			x := shiftLeftFixed(sigL, 3, w.SW)
			yRaw := shiftLeftFixed(sigS, 3, w.SW)
			y := c.ShiftRight(yRaw, d, netlist.Const0)
			sticky := c.StickyRight(yRaw, d)
			y = append(netlist.Bus{}, y...)
			y[0] = c.FOr(y[0], sticky)
			c.put("x", x)
			c.put("y", y)
			c.forward("expL", "signL", "effSub", "zsign", "inf", "infsign", "nan")
		}},
		{name: "s4-mantissa", build: func(c *sb) {
			x, y := c.get("x"), c.get("y")
			effSub := c.bit("effSub")
			// Compound adder: sum and difference computed in parallel and
			// selected by the effective operation, so each adder sees a
			// stable operand polarity (no whole-bus inversion transients).
			sumAdd, coutAdd := c.HybridAdder(x, y, netlist.Const0, 16)
			sumSub := c.Sum(c.HybridAdder(x, c.FNotBus(y), netlist.Const1, 16))
			sum := c.FMuxBus(effSub, sumAdd, sumSub)
			carry := c.FAnd(coutAdd, c.FNot(effSub))
			m := append(append(netlist.Bus{}, sum...), carry)
			if mantPad > 0 {
				m = c.DetourBus(m, mantPad)
			}
			c.put("m", m)
			c.forward("expL", "signL", "effSub", "zsign", "inf", "infsign", "nan")
		}},
		{name: "s5-normalize", build: func(c *sb) {
			m := c.get("m")
			effSub := c.bit("effSub")
			expL := c.get("expL")
			carry := m[w.SW]
			base := netlist.Bus(m[:w.SW])
			// Addition overflow: shift right one, folding the lost bit
			// into sticky.
			shifted := append(netlist.Bus{c.FOr(m[0], m[1])}, m[2:w.SW+1]...)
			nAdd := c.FMuxBus(carry, base, shifted)
			// Subtractive cancellation: normalize left.
			nSub, lz := c.NormalizeLeft(base, w.CW)
			n := c.FMuxBus(effSub, nAdd, nSub)
			// exp = expL + carry (add path) - lz (sub path).
			expExt := zeroExtend(expL, w.EW)
			carryAdd := c.FAnd(carry, c.FNot(effSub))
			e1 := c.Sum(c.Increment(expExt, carryAdd))
			lzSel := zeroExtend(c.FAndWith(lz, effSub), w.EW)
			e2 := c.Sum(c.RippleSub(e1, lzSel))
			zeroRes := c.IsZero(m) // all SW+1 bits, including the add carry
			signR := c.FMux(zeroRes, c.bit("signL"), c.bit("zsign"))
			putRoundInputs(c, n, e2, signR, zeroRes,
				c.bit("inf"), c.bit("infsign"), c.bit("nan"))
		}},
		{name: "s6-round", build: func(c *sb) {
			buildRoundStage(c, w, roundPad)
		}},
	}
	return compile(op, lib, seed, inSchema, specs)
}
