// Package fpu generates the gate-level, pipelined IEEE-754 floating-point
// unit the timing-error models are extracted from. It reproduces the
// paper's target hardware (Section IV-B): a 6-stage FPU (Figure 3)
// implementing 12 instructions — add, sub, mul, div, int-to-float and
// float-to-int in single and double precision — with flush-to-zero
// denormal handling and exception outputs, built from the standard-cell
// library as one netlist per pipeline stage.
//
// Stage margins are calibrated (via SDF-style routing detours) so that the
// post-layout timing profile matches the reference design's behaviour:
// the double-precision multiplier's carry-propagate stage sets the clock
// period, the subtractor's mantissa stage sits close enough to fail under
// 15% voltage reduction, addition and division join only at 20%, and the
// conversions and all single-precision datapaths keep comfortable slack.
package fpu

import (
	"fmt"

	"teva/internal/softfp"
)

// Op identifies one of the 12 implemented floating-point instructions.
type Op uint8

// The 12 FPU instructions (d = binary64, s = binary32).
const (
	DAdd Op = iota
	DSub
	DMul
	DDiv
	DI2F
	DF2I
	SAdd
	SSub
	SMul
	SDiv
	SI2F
	SF2I
	NumOps
)

var opNames = [NumOps]string{
	"fp-add.d", "fp-sub.d", "fp-mul.d", "fp-div.d", "i2f.d", "f2i.d",
	"fp-add.s", "fp-sub.s", "fp-mul.s", "fp-div.s", "i2f.s", "f2i.s",
}

func (op Op) String() string {
	if op < NumOps {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Ops returns all 12 instructions in order.
func Ops() []Op {
	out := make([]Op, NumOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// Double reports whether the op is double precision.
func (op Op) Double() bool { return op < SAdd }

// Format returns the floating-point format the op computes in.
func (op Op) Format() softfp.Format {
	if op.Double() {
		return softfp.Binary64
	}
	return softfp.Binary32
}

// kind collapses the precision dimension.
type kind uint8

const (
	kindAdd kind = iota
	kindSub
	kindMul
	kindDiv
	kindI2F
	kindF2I
)

func (op Op) kind() kind { return kind(uint8(op) % 6) }

// OperandWidth returns the width in bits of each source operand. I2F takes
// a 32-bit integer; all other ops take format-width floats (binary ops
// take two, conversions take one).
func (op Op) OperandWidth() int {
	if op.kind() == kindI2F {
		return 32
	}
	return int(op.Format().Width())
}

// NumOperands returns 2 for the arithmetic ops and 1 for conversions.
func (op Op) NumOperands() int {
	switch op.kind() {
	case kindI2F, kindF2I:
		return 1
	default:
		return 2
	}
}

// ResultWidth returns the width of the destination register value: the
// format width, or 32 for float-to-int.
func (op Op) ResultWidth() int {
	if op.kind() == kindF2I {
		return 32
	}
	return int(op.Format().Width())
}

// Golden computes the architecturally correct result via the bit-accurate
// software model (the "first simulation instance" of the paper's DTA).
// Operands and result are raw encodings in the low OperandWidth/
// ResultWidth bits.
func (op Op) Golden(a, b uint64) uint64 {
	f := op.Format()
	switch op.kind() {
	case kindAdd:
		r, _ := f.Add(a, b)
		return r
	case kindSub:
		r, _ := f.Sub(a, b)
		return r
	case kindMul:
		r, _ := f.Mul(a, b)
		return r
	case kindDiv:
		r, _ := f.Div(a, b)
		return r
	case kindI2F:
		r, _ := f.FromInt32(int32(uint32(a)))
		return r
	case kindF2I:
		r, _ := f.ToInt32(a)
		return uint64(uint32(r))
	}
	panic("fpu: unknown op")
}
