package fpu

import "teva/internal/netlist"

// buildDiv compiles the iterative divider: an unpack stage, a radix-2
// restoring-division recurrence stage executed once per quotient bit
// (mantissa + GRS bits), a sticky-collapse stage, and the shared round
// stage. The recurrence's compare/subtract is the divider's critical path;
// iterPad places it at its calibrated margin.
func buildDiv(op Op, lib libT, seed uint64, iterPad, roundPad float64) (*Pipeline, error) {
	w := widthsOf(op.Format())
	rw := w.FB + 2 // remainder width (invariant: rem < 2*divisor)
	qw := w.SW     // quotient bits produced: mantissa + GRS
	inSchema := newSchema(fieldSpec{"a", w.W}, fieldSpec{"b", w.W})

	specs := []stageSpec{
		{name: "s1-unpack", build: func(c *sb) {
			a := decodeOperand(c, w, c.get("a"))
			b := decodeOperand(c, w, c.get("b"))
			sign := c.FXor(a.sign, b.sign)
			nan := c.FOr(c.FOr(a.nan, b.nan),
				c.FOr(c.FAnd(a.inf, b.inf), c.FAnd(a.zero, b.zero)))
			inf := c.FOr(a.inf, b.zero)  // x/0 and inf/y diverge
			zero := c.FOr(a.zero, b.inf) // 0/y and x/inf vanish
			sigA, sigB := a.sig(c, w), b.sig(c, w)
			// Pre-shift so the first quotient bit is 1: if sigA < sigB the
			// quotient is in [0.5,1), so double the dividend and drop the
			// exponent by one.
			lt := c.LessUnsigned(sigA, sigB)
			remSame := zeroExtend(sigA, rw)
			remShift := shiftLeftFixed(sigA, 1, rw)
			rem := c.FMuxBus(lt, remSame, remShift)
			// exp = expA - expB + bias - lt.
			e1 := c.Sum(c.RippleSub(zeroExtend(a.exp, w.EW), zeroExtend(b.exp, w.EW)))
			bias := uint64(1<<uint(w.EB-1) - 1)
			e2 := c.Sum(c.RippleAdder(e1, c.Constant(bias, w.EW), netlist.Const0))
			e3 := c.Sum(c.RippleSub(e2, zeroExtend(netlist.Bus{lt}, w.EW)))
			c.put("rem", rem)
			c.put("q", c.Zeros(qw))
			c.put("sigB", sigB)
			c.put("exp", e3)
			c.putBit("sign", sign)
			c.putBit("zero", zero)
			c.putBit("inf", inf)
			c.putBit("nan", nan)
		}},
		{name: "s2-recurrence", repeat: qw, build: func(c *sb) {
			rem := c.get("rem")
			q := c.get("q")
			sigB := zeroExtend(c.get("sigB"), rw)
			diff, noBorrow := c.HybridAddSub(rem, sigB, netlist.Const1, 16)
			remSel := c.FMuxBus(noBorrow, rem, diff)
			remNext := shiftLeftFixed(remSel, 1, rw)
			// The left shifts drop the top remainder bit (kept zero by the
			// rem < 2*divisor invariant) and shift the top quotient input
			// bit out of the register.
			c.Discard(remSel[rw-1], q[qw-1])
			qNext := append(netlist.Bus{noBorrow}, q[:qw-1]...)
			if iterPad > 0 {
				remNext = c.DetourBus(remNext, iterPad)
				qNext[0] = c.Detour(qNext[0], iterPad)
			}
			c.put("rem", remNext)
			c.put("q", qNext)
			c.forward("sigB", "exp", "sign", "zero", "inf", "nan")
		}},
		{name: "s3-sticky", build: func(c *sb) {
			// The divisor rides the recurrence registers but is of no use
			// after the last subtract.
			c.DiscardBus(c.get("sigB"))
			q := append(netlist.Bus{}, c.get("q")...)
			q[0] = c.FOr(q[0], c.FNot(c.IsZero(c.get("rem"))))
			sign := c.bit("sign")
			putRoundInputs(c, q, c.get("exp"), sign, c.bit("zero"), c.bit("inf"), sign, c.bit("nan"))
		}},
		{name: "s4-round", build: func(c *sb) {
			buildRoundStage(c, w, roundPad)
		}},
	}
	return compile(op, lib, seed, inSchema, specs)
}
