// Package stats provides the statistical machinery the evaluation relies
// on: statistical-fault-injection sample sizing (Leveugle et al., the
// source of the paper's 1068-run rule), confidence intervals for observed
// ratios, and small aggregation helpers used when building figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Z95 is the two-sided 95% confidence z-score used throughout the paper.
const Z95 = 1.96

// SampleSize returns the number of fault-injection runs needed to estimate
// an outcome probability within +/-margin at the given z-score, for an
// (effectively infinite) population with worst-case p=0.5:
//
//	n = (z / (2*margin))^2
//
// SampleSize(Z95, 0.03) == 1068, matching Section V of the paper.
func SampleSize(z, margin float64) int {
	if z <= 0 || margin <= 0 {
		panic("stats: z and margin must be positive")
	}
	return int(math.Ceil((z / (2 * margin)) * (z / (2 * margin))))
}

// FiniteSampleSize applies the finite-population correction for a campaign
// over a population of size n (e.g. total dynamic instructions):
//
//	n' = n / (1 + (n-1)/N)
func FiniteSampleSize(z, margin float64, population int64) int {
	n := float64(SampleSize(z, margin))
	if population <= 0 {
		return int(n)
	}
	corrected := n / (1 + (n-1)/float64(population))
	return int(math.Ceil(corrected))
}

// Proportion is an observed ratio k/n with helpers for confidence bounds.
type Proportion struct {
	Successes int
	Trials    int
}

// Value returns k/n, or 0 for an empty sample.
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Margin returns the half-width of the normal-approximation confidence
// interval at the given z.
func (p Proportion) Margin(z float64) float64 {
	if p.Trials == 0 {
		return 0
	}
	v := p.Value()
	return z * math.Sqrt(v*(1-v)/float64(p.Trials))
}

// Wilson returns the Wilson score interval at the given z, which behaves
// sensibly for ratios near 0 or 1 (common for masked/crash probabilities).
// The interval always brackets the observed fraction:
// 0 <= lo <= k/n <= hi <= 1, including the degenerate n=0, k=0 and k=n
// cases. Analytically lo <= v <= hi already holds, but the sqrt term is
// not exactly z/(2n) when v*(1-v) vanishes in floating point, so the
// bounds are clamped to the fraction to keep the contract exact.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 0
	}
	n := float64(p.Trials)
	v := p.Value()
	z2 := z * z
	den := 1 + z2/n
	center := (v + z2/(2*n)) / den
	half := z / den * math.Sqrt(v*(1-v)/n+z2/(4*n*n))
	lo = math.Max(0, math.Min(center-half, v))
	hi = math.Min(1, math.Max(center+half, v))
	return lo, hi
}

func (p Proportion) String() string {
	return fmt.Sprintf("%d/%d (%.4f)", p.Successes, p.Trials, p.Value())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive xs. Entries <= 0
// are skipped; it returns 0 when no positive entry exists. Figure 10's
// "~250x on average" divergence between models is a geometric mean of
// per-benchmark ratios.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// FoldRatio expresses how far apart two ratios are as a symmetric ">= 1"
// factor: max(a/b, b/a). The paper reports DA-vs-WA divergence this way
// ("differs (higher or lower) by ~250x"). Zero values are clamped to floor
// so that a model injecting zero errors against a non-zero reference still
// produces a finite, large fold change.
func FoldRatio(a, b, floor float64) float64 {
	if floor <= 0 {
		panic("stats: FoldRatio floor must be positive")
	}
	a = math.Max(a, floor)
	b = math.Max(b, floor)
	if a > b {
		return a / b
	}
	return b / a
}

// AbsError returns |ref-est|/|ref| per Eq. 3 of the paper, with the
// convention that a zero reference contributes |est| scaled by the caller's
// choice; here a zero reference with zero estimate is 0, and with a
// non-zero estimate is 1 (100% error).
func AbsError(ref, est float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(ref-est) / math.Abs(ref)
}

// MeanAbsError averages AbsError over paired slices. It panics on length
// mismatch.
func MeanAbsError(ref, est []float64) float64 {
	if len(ref) != len(est) {
		panic("stats: MeanAbsError length mismatch")
	}
	if len(ref) == 0 {
		return 0
	}
	var sum float64
	for i := range ref {
		sum += AbsError(ref[i], est[i])
	}
	return sum / float64(len(ref))
}

// Histogram counts values into fixed-width bins spanning [lo, hi). Values
// outside the range are clamped into the edge bins so totals are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram returns a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns bin i's share of all observations.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
