package stats_test

import (
	"fmt"

	"teva/internal/stats"
)

// ExampleSampleSize reproduces the paper's statistical setting: 1068
// injection runs give a 3% error margin at 95% confidence.
func ExampleSampleSize() {
	fmt.Println(stats.SampleSize(stats.Z95, 0.03))
	// Output:
	// 1068
}
