package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleSizePaperValue(t *testing.T) {
	// The paper runs 1068 executions per benchmark/VR for a 3% error
	// margin at 95% confidence (Leveugle et al.).
	if n := SampleSize(Z95, 0.03); n != 1068 {
		t.Fatalf("SampleSize(1.96, 0.03) = %d, want 1068", n)
	}
}

func TestSampleSizeMonotonic(t *testing.T) {
	if SampleSize(Z95, 0.01) <= SampleSize(Z95, 0.03) {
		t.Fatal("tighter margin should need more samples")
	}
	if SampleSize(2.58, 0.03) <= SampleSize(Z95, 0.03) {
		t.Fatal("higher confidence should need more samples")
	}
}

func TestFiniteSampleSize(t *testing.T) {
	full := SampleSize(Z95, 0.03)
	if got := FiniteSampleSize(Z95, 0.03, 1e12); got != full {
		t.Fatalf("huge population should not reduce n: got %d want %d", got, full)
	}
	if got := FiniteSampleSize(Z95, 0.03, 500); got >= full || got > 500 {
		t.Fatalf("finite correction failed: got %d", got)
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 25, Trials: 100}
	if p.Value() != 0.25 {
		t.Fatalf("Value = %v", p.Value())
	}
	m := p.Margin(Z95)
	want := 1.96 * math.Sqrt(0.25*0.75/100)
	if math.Abs(m-want) > 1e-12 {
		t.Fatalf("Margin = %v want %v", m, want)
	}
	lo, hi := p.Wilson(Z95)
	if lo >= p.Value() || hi <= p.Value() {
		t.Fatalf("Wilson interval [%v, %v] does not bracket %v", lo, hi, p.Value())
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("Wilson interval out of [0,1]: [%v, %v]", lo, hi)
	}
}

func TestProportionEdgeCases(t *testing.T) {
	empty := Proportion{}
	if empty.Value() != 0 || empty.Margin(Z95) != 0 {
		t.Fatal("empty proportion should be zero")
	}
	zero := Proportion{Successes: 0, Trials: 50}
	lo, hi := zero.Wilson(Z95)
	if lo != 0 || hi <= 0 {
		t.Fatalf("Wilson for 0/50 = [%v, %v]", lo, hi)
	}
	all := Proportion{Successes: 50, Trials: 50}
	lo, hi = all.Wilson(Z95)
	if hi != 1 || lo >= 1 {
		t.Fatalf("Wilson for 50/50 = [%v, %v]", lo, hi)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	sd := StdDev(xs)
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(sd-want) > 1e-12 {
		t.Fatalf("StdDev = %v want %v", sd, want)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-input aggregates should be zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean = %v want 10", g)
	}
	if g := GeoMean([]float64{0, 4, 0}); g != 4 {
		t.Fatalf("GeoMean skipping non-positive = %v want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean of empty should be 0")
	}
}

func TestFoldRatioSymmetric(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		x, y := float64(a)+1, float64(b)+1
		f1 := FoldRatio(x, y, 1e-9)
		f2 := FoldRatio(y, x, 1e-9)
		return f1 == f2 && f1 >= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFoldRatioFloor(t *testing.T) {
	if f := FoldRatio(0, 1e-3, 1e-6); math.Abs(f-1000) > 1e-9 {
		t.Fatalf("FoldRatio(0, 1e-3) with 1e-6 floor = %v, want 1000", f)
	}
	if f := FoldRatio(0, 0, 1e-6); f != 1 {
		t.Fatalf("FoldRatio(0,0) = %v, want 1", f)
	}
}

func TestAbsError(t *testing.T) {
	if AbsError(10, 9) != 0.1 {
		t.Fatal("AbsError basic")
	}
	if AbsError(0, 0) != 0 {
		t.Fatal("AbsError(0,0)")
	}
	if AbsError(0, 5) != 1 {
		t.Fatal("AbsError(0,x)")
	}
	mae := MeanAbsError([]float64{10, 20}, []float64{9, 22})
	if math.Abs(mae-0.1) > 1e-12 {
		t.Fatalf("MeanAbsError = %v", mae)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if h.BinCenter(0) != 0.5 {
		t.Fatalf("BinCenter = %v", h.BinCenter(0))
	}
	if math.Abs(h.Fraction(1)-1.0/12) > 1e-12 {
		t.Fatalf("Fraction = %v", h.Fraction(1))
	}
}

// TestWilsonBracketsFraction is the interval contract as a property:
// 0 <= lo <= k/n <= hi <= 1 for every tally, exercised over the exact
// degenerate corners (n=0, k=0, k=n, n=1) and a quick.Check sweep. The
// k=0 and k=n corners are the floating-point traps: sqrt(z^2/(4n^2)) is
// not exactly z/(2n), so without clamping lo can land ~1e-17 above 0.
func TestWilsonBracketsFraction(t *testing.T) {
	check := func(k, n int) {
		p := Proportion{Successes: k, Trials: n}
		lo, hi := p.Wilson(Z95)
		v := p.Value()
		if !(0 <= lo && lo <= v && v <= hi && hi <= 1) {
			t.Fatalf("Wilson(%d/%d) = [%v, %v] does not bracket %v", k, n, lo, hi, v)
		}
	}
	for _, c := range []struct{ k, n int }{
		{0, 0}, {0, 1}, {1, 1}, {0, 2}, {2, 2}, {0, 50}, {50, 50},
		{0, 1068}, {1068, 1068}, {1, 1068}, {1067, 1068},
	} {
		check(c.k, c.n)
	}
	prop := func(k, n uint16) bool {
		trials := int(n) % 4096
		succ := 0
		if trials > 0 {
			succ = int(k) % (trials + 1)
		}
		p := Proportion{Successes: succ, Trials: trials}
		lo, hi := p.Wilson(Z95)
		v := p.Value()
		return 0 <= lo && lo <= v && v <= hi && hi <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
