// Package prng provides deterministic pseudo-random number generation for
// reproducible characterization and injection campaigns.
//
// All randomness in the repository flows through this package so that every
// experiment is replayable from a single seed. The core generator is
// xoshiro256**, seeded through splitmix64 as its authors recommend.
package prng

import (
	"math"
	"math/bits"
)

// Source is a deterministic random source. It intentionally mirrors a small
// subset of math/rand so call sites read idiomatically, but it is seedable,
// splittable, and stable across runs and platforms.
type Source struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns the next output. It is used
// to expand a single seed word into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four zero words from any seed, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split returns a new Source whose stream is independent of the receiver's
// subsequent outputs. It consumes one value from the receiver.
func (src *Source) Split() *Source {
	return New(src.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (src *Source) Uint32() uint32 { return uint32(src.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(src.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method (Lemire, "Fast Random Integer Generation in an Interval",
// 2019): the 64-bit draw is mapped to [0, n) by taking the high word of the
// 128-bit product draw*n, and only the rare draws falling into the biased
// low fringe (fewer than n out of 2^64) are rejected and retried — no
// division on the common path. It panics if n == 0.
func (src *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		// threshold = 2^64 mod n; products with lo below it are the
		// overrepresented remainder fringe and must be redrawn.
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly random boolean.
func (src *Source) Bool() bool { return src.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call, the twin is discarded to keep the stream position simple).
func (src *Source) NormFloat64() float64 {
	for {
		u := src.Float64()
		if u == 0 {
			continue
		}
		v := src.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n).
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := src.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
