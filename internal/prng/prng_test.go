package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	src := New(0)
	if src.Uint64() == 0 && src.Uint64() == 0 && src.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	src := New(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := src.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	src := New(11)
	for i := 0; i < 10000; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	src := New(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += src.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestUint64nUniformity(t *testing.T) {
	src := New(17)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[src.Uint64n(buckets)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v deviates from 0.1", b, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	src := New(19)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(23)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := src.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(31)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir[int](10, New(37))
	for i := 0; i < 5; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 5 {
		t.Fatalf("expected 5 items, got %d", len(r.Items()))
	}
	for i := 5; i < 100; i++ {
		r.Offer(i)
	}
	if len(r.Items()) != 10 {
		t.Fatalf("expected capacity 10, got %d", len(r.Items()))
	}
	if r.Seen() != 100 {
		t.Fatalf("expected 100 seen, got %d", r.Seen())
	}
}

func TestReservoirUniform(t *testing.T) {
	// Each of 100 stream elements should appear with probability 10/100.
	counts := make([]int, 100)
	const trials = 20000
	src := New(41)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](10, src)
		for i := 0; i < 100; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("element %d sampled with frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestReservoirPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero capacity": func() { NewReservoir[int](0, New(1)) },
		"nil source":    func() { NewReservoir[int](1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUint64nGolden(t *testing.T) {
	// Pinned outputs of the Lemire multiply-shift mapping for a fixed
	// seed: any change to the generator core, the seeding expansion, or
	// the interval reduction shows up here before it silently changes
	// every downstream experiment.
	src := New(0xDECAFBAD)
	want := []uint64{358774, 617000, 380696, 279074, 251800, 461255, 689241, 182132}
	for i, w := range want {
		if got := src.Uint64n(1000003); got != w {
			t.Fatalf("Uint64n(1000003) draw %d = %d, want %d", i, got, w)
		}
	}
	// A bound above 2^63 exercises the rejection fringe logic.
	src = New(0xDECAFBAD)
	wantBig := []uint64{0x2dec45980eefc229, 0x23b8b283cc7aa26e, 0x203af72d97087b4d, 0x3b0a5c4f2b03b541}
	for i, w := range wantBig {
		if got := src.Uint64n(1<<63 + 11); got != w {
			t.Fatalf("Uint64n(2^63+11) draw %d = %#x, want %#x", i, got, w)
		}
	}
	src = New(0xDECAFBAD)
	wantIntn := []int{34, 59, 36, 27, 24, 44}
	for i, w := range wantIntn {
		if got := src.Intn(97); got != w {
			t.Fatalf("Intn(97) draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestUint64nDeterministicAcrossSources(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 5000; i++ {
		n := a.Uint64()%100000 + 1
		if b.Uint64()%100000+1 != n {
			t.Fatal("bound streams diverged")
		}
		if av, bv := a.Uint64n(n), b.Uint64n(n); av != bv {
			t.Fatalf("Uint64n(%d) diverged at step %d: %d vs %d", n, i, av, bv)
		}
	}
}

func TestUint64nSmallBoundsExhaustive(t *testing.T) {
	// Every value in [0, n) must be reachable and roughly uniform for
	// small n, including n == 1 (always zero) and powers of two.
	src := New(101)
	for _, n := range []uint64{1, 2, 3, 7, 8, 16, 1000} {
		seen := make(map[uint64]int)
		draws := int(10000)
		for i := 0; i < draws; i++ {
			v := src.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) produced %d", n, v)
			}
			seen[v]++
		}
		if uint64(len(seen)) != n && n <= 16 {
			t.Fatalf("Uint64n(%d) only produced %d distinct values", n, len(seen))
		}
		exp := float64(draws) / float64(n)
		for v, c := range seen {
			if dev := math.Abs(float64(c)-exp) / exp; n <= 16 && dev > 0.2 {
				t.Fatalf("Uint64n(%d): value %d frequency deviates %.0f%%", n, v, 100*dev)
			}
		}
	}
}
