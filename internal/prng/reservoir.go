package prng

// Reservoir maintains a uniform random sample of fixed capacity over a
// stream of values (Algorithm R). It is used by the trace capturer to keep
// a statistically representative operand sample per instruction type while
// a workload executes billions of operations.
type Reservoir[T any] struct {
	items []T
	seen  int64
	cap   int
	src   *Source
}

// NewReservoir returns a reservoir sampling at most capacity items using the
// given source. It panics if capacity <= 0 or src is nil.
func NewReservoir[T any](capacity int, src *Source) *Reservoir[T] {
	if capacity <= 0 {
		panic("prng: reservoir capacity must be positive")
	}
	if src == nil {
		panic("prng: reservoir requires a source")
	}
	return &Reservoir[T]{cap: capacity, src: src}
}

// Offer presents one stream element to the reservoir.
func (r *Reservoir[T]) Offer(v T) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	j := r.src.Uint64n(uint64(r.seen))
	if j < uint64(r.cap) {
		r.items[j] = v
	}
}

// Items returns the current sample. The returned slice is owned by the
// reservoir; callers must not mutate it while offering more elements.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen reports how many elements have been offered in total.
func (r *Reservoir[T]) Seen() int64 { return r.seen }
