// Package shard implements multi-process campaign execution: a
// supervisor that partitions the experiment matrix into content-addressed
// work units, spawns N teva-worker child processes sharing one artifact
// cache directory, and hands units out over a local HTTP/NDJSON protocol
// with time-boxed, heartbeat-extended leases.
//
// The robustness model is ZOFI-style process isolation: a worker that
// crashes, hangs, or is SIGKILLed mid-unit has its lease expire (or its
// process death observed directly) and the unit is reclaimed and retried
// with exponential backoff on a restarted worker. A unit that strikes
// out K workers in a row is quarantined as a named poison unit while the
// rest of the matrix completes; zero live workers degrades gracefully to
// in-process execution, because sharding is a cache-prewarming
// accelerator, never a correctness dependency:
//
//   - Workers run the existing pipeline (internal/experiments over
//     internal/core) against the shared artifact store. The store's
//     provenance keys already make concurrent writers safe, and entries
//     are written atomically, so unit results are just cache entries.
//   - After the prewarm, the supervisor process runs the suite exactly
//     as an unsharded run would. Every unit the workers completed
//     reloads from the cache; every unit they did not (quarantined,
//     drained, all workers dead) is computed in-process. stdout is
//     byte-identical to the single-process run by construction.
//
// The lease state machine lives in Tracker (pure, injected clock — every
// expiry/reclaim/late-completion edge case is unit-testable without
// processes or sleeps); the HTTP protocol in proto.go; the process
// supervision in supervisor.go.
package shard

import "fmt"

// Metric names published on the supervisor's registry. Spawns counts
// worker processes started (initial spawns plus restarts); restarts the
// subset replacing a dead worker; lease expiries leases that timed out
// without a heartbeat; reclaims units returned to the queue (expiry or
// worker death); quarantines units retired as poison; late completions
// results accepted from a worker that no longer held the unit's lease.
const (
	MetricSpawns          = "shard.spawns"
	MetricRestarts        = "shard.restarts"
	MetricLeaseExpiries   = "shard.lease_expiries"
	MetricReclaims        = "shard.reclaims"
	MetricQuarantines     = "shard.quarantines"
	MetricLateCompletions = "shard.late_completions"
	MetricUnitsDone       = "shard.units_done"
	MetricSumMismatches   = "shard.sum_mismatches"
)

// UnitKind names the family of a work unit. Each kind maps onto one
// artifact family in the shared store, so "unit complete" means exactly
// "its artifacts are loadable by the in-process run".
type UnitKind string

const (
	// UnitRandom is one instruction's random-operand DTA characterization
	// at one voltage level (an artifact.SummaryKey "random" entry) — the
	// IA/DA models' substrate and Figure 7's data.
	UnitRandom UnitKind = "random"
	// UnitWA is one (level, workload) workload-operand characterization
	// (per-op artifact.SummaryKey "wl:..." entries) — the WA model's
	// substrate and Figures 5/8's data.
	UnitWA UnitKind = "wa"
	// UnitCell is one (workload, model kind, level) injection-campaign
	// cell (an artifact.CampaignKey entry) — Figures 9/10 and the AVM
	// analysis.
	UnitCell UnitKind = "cell"
)

// Unit is one shard work unit. Units are content-addressed: the ID is a
// pure function of the unit's coordinates, and the unit's result is the
// artifact-store entries those coordinates key — two runs of the same
// unit under the same Plan produce byte-identical artifacts.
type Unit struct {
	// Kind selects the unit family.
	Kind UnitKind `json:"kind"`
	// Level is the voltage-reduction level name ("VR15").
	Level string `json:"level"`
	// Op is the fpu.Op ordinal for UnitRandom units.
	Op int `json:"op,omitempty"`
	// OpName is the op's display name, carried for diagnostics only.
	OpName string `json:"op_name,omitempty"`
	// Workload names the benchmark for UnitWA and UnitCell units.
	Workload string `json:"workload,omitempty"`
	// Model is the error-model kind ("DA", "IA", "WA") for UnitCell units.
	Model string `json:"model,omitempty"`
	// Stage orders unit scheduling: the tracker leases stage s+1 units
	// only once every stage <= s unit is done or quarantined, so cells
	// find their models' summaries already cached instead of rebuilding
	// them per worker.
	Stage int `json:"stage"`
}

// ID returns the unit's canonical identity string.
func (u Unit) ID() string {
	switch u.Kind {
	case UnitRandom:
		return fmt.Sprintf("random/%s/%s", u.Level, u.OpName)
	case UnitWA:
		return fmt.Sprintf("wa/%s/%s", u.Level, u.Workload)
	case UnitCell:
		return fmt.Sprintf("cell/%s/%s/%s", u.Workload, u.Model, u.Level)
	default:
		return fmt.Sprintf("%s/%s", u.Kind, u.Level)
	}
}

// Plan is everything a worker process needs to reproduce the
// supervisor's pipeline configuration bit for bit: the resolved (post
// -quick/-full preset) option and config values that shape artifact
// provenance keys. A worker builds its own substrate from the Plan, so
// the only shared state between processes is the cache directory.
type Plan struct {
	Seed             uint64  `json:"seed"`
	Scale            string  `json:"scale"`
	Runs             int     `json:"runs"`
	RandomOperands   int     `json:"random_operands"`
	WorkloadOperands int     `json:"workload_operands"`
	DASample         int     `json:"da_sample"`
	Workers          int     `json:"workers"`
	TimeoutFactor    float64 `json:"timeout_factor"`
	Timing           string  `json:"timing"`
	ScreenEnabled    bool    `json:"screen_enabled"`
	ScreenGuardband  float64 `json:"screen_guardband"`
	ScreenValidate   bool    `json:"screen_validate"`
	// CacheDir is the shared artifact store directory — the rendezvous
	// point for every unit result.
	CacheDir string `json:"cache_dir"`
}
