package shard

import (
	"testing"
	"time"

	"teva/internal/obs"
)

// fakeClock drives the tracker's injected clock without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testUnits() []Unit {
	return []Unit{
		{Kind: UnitRandom, Level: "VR15", OpName: "fp-add.d", Stage: 0},
		{Kind: UnitWA, Level: "VR15", Workload: "is", Stage: 1},
		{Kind: UnitCell, Level: "VR15", Workload: "is", Model: "WA", Stage: 2},
	}
}

func newTestTracker(t *testing.T, units []Unit) (*Tracker, *fakeClock, *obs.Registry) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	reg := obs.NewRegistry(nil)
	tr := NewTracker(units, TrackerConfig{
		LeaseTTL:     10 * time.Second,
		MaxStrikes:   3,
		RetryBackoff: time.Second,
		Metrics:      reg,
		Now:          clk.now,
	})
	return tr, clk, reg
}

func counter(reg *obs.Registry, name string) int64 { return reg.Counter(name).Value() }

func TestLeaseStageGating(t *testing.T) {
	tr, clk, _ := newTestTracker(t, testUnits())
	g := tr.Lease("w0")
	if !g.OK || g.Unit.Kind != UnitRandom {
		t.Fatalf("first lease = %+v, want stage-0 random unit", g)
	}
	// Stage 1 must stay closed while stage 0 is in flight.
	if g2 := tr.Lease("w1"); g2.OK {
		t.Fatalf("stage-1 unit leased while stage 0 incomplete: %+v", g2)
	} else if g2.Wait <= 0 {
		t.Fatalf("blocked lease should suggest a wait, got %+v", g2)
	}
	if !tr.Complete(g.Lease, g.Unit.ID(), "sum0", "") {
		t.Fatal("complete stage-0 unit failed")
	}
	g3 := tr.Lease("w1")
	if !g3.OK || g3.Unit.Kind != UnitWA {
		t.Fatalf("post-stage-0 lease = %+v, want the WA unit", g3)
	}
	_ = clk
}

func TestHeartbeatAfterExpiry(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	g := tr.Lease("w0")
	if !g.OK {
		t.Fatalf("lease failed: %+v", g)
	}
	// Heartbeat within the TTL extends the lease.
	clk.advance(9 * time.Second)
	if !tr.Heartbeat(g.Lease) {
		t.Fatal("in-TTL heartbeat rejected")
	}
	// ...but once the (extended) deadline passes, the sweep reclaims the
	// unit and a late heartbeat must be refused.
	clk.advance(11 * time.Second)
	if tr.Heartbeat(g.Lease) {
		t.Fatal("heartbeat accepted after lease expiry")
	}
	if got := counter(reg, MetricLeaseExpiries); got != 1 {
		t.Fatalf("lease_expiries = %d, want 1", got)
	}
	if got := counter(reg, MetricReclaims); got != 1 {
		t.Fatalf("reclaims = %d, want 1", got)
	}
	// The unit is pending again under backoff: 1 strike -> 1s base delay.
	if g2 := tr.Lease("w1"); g2.OK {
		t.Fatalf("unit leased during retry backoff: %+v", g2)
	}
	clk.advance(time.Second)
	if g2 := tr.Lease("w1"); !g2.OK {
		t.Fatalf("unit not leasable after backoff: %+v", g2)
	}
}

func TestDoubleReclaim(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	g := tr.Lease("w0")
	if !g.OK {
		t.Fatalf("lease failed: %+v", g)
	}
	// Expiry reclaims once...
	clk.advance(11 * time.Second)
	tr.Sweep()
	// ...and a racing death notification for the same worker must not
	// strike the unit a second time.
	tr.WorkerDied("w0")
	tr.Sweep()
	if got := counter(reg, MetricReclaims); got != 1 {
		t.Fatalf("reclaims = %d after expiry+death of same lease, want 1", got)
	}
	c := tr.Counts()
	if c.Pending != 1 || c.Quarantined != 0 {
		t.Fatalf("counts = %+v, want the unit pending once", c)
	}
}

func TestLateCompletionByteIdenticalAccepted(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	unitID := testUnits()[0].ID()

	// w0 leases, goes quiet, lease expires, unit reassigned to w1.
	g0 := tr.Lease("w0")
	clk.advance(11 * time.Second)
	tr.Sweep()
	clk.advance(time.Second) // past retry backoff
	g1 := tr.Lease("w1")
	if !g1.OK {
		t.Fatalf("reassignment lease failed: %+v", g1)
	}
	if !tr.Complete(g1.Lease, unitID, "sumX", "") {
		t.Fatal("w1 completion rejected")
	}

	// w0 wakes up and finishes the unit it no longer leases with the
	// byte-identical result: accepted, counted as a late completion.
	if !tr.Complete(g0.Lease, unitID, "sumX", "") {
		t.Fatal("byte-identical late completion rejected")
	}
	if got := counter(reg, MetricLateCompletions); got != 1 {
		t.Fatalf("late_completions = %d, want 1", got)
	}
	if got := counter(reg, MetricSumMismatches); got != 0 {
		t.Fatalf("sum_mismatches = %d, want 0", got)
	}
	// units_done must count the unit once, not twice.
	if got := counter(reg, MetricUnitsDone); got != 1 {
		t.Fatalf("units_done = %d, want 1", got)
	}
}

func TestLateCompletionMismatchRejected(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	unitID := testUnits()[0].ID()
	g0 := tr.Lease("w0")
	clk.advance(11 * time.Second)
	tr.Sweep()
	clk.advance(time.Second)
	g1 := tr.Lease("w1")
	if !tr.Complete(g1.Lease, unitID, "sumX", "") {
		t.Fatal("w1 completion rejected")
	}
	// A differing checksum from the stale lease is a determinism
	// violation: rejected and counted.
	if tr.Complete(g0.Lease, unitID, "sumY", "") {
		t.Fatal("mismatched late completion accepted")
	}
	if got := counter(reg, MetricSumMismatches); got != 1 {
		t.Fatalf("sum_mismatches = %d, want 1", got)
	}
	if got := counter(reg, MetricLateCompletions); got != 0 {
		t.Fatalf("late_completions = %d, want 0", got)
	}
}

func TestLateCompletionOfStillPendingUnit(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	unitID := testUnits()[0].ID()
	g0 := tr.Lease("w0")
	clk.advance(11 * time.Second)
	tr.Sweep()
	// Nobody re-leased the unit yet; the stale worker's result is still
	// the cache entry the suite will load, so it completes the unit.
	if !tr.Complete(g0.Lease, unitID, "sumX", "") {
		t.Fatal("late completion of pending unit rejected")
	}
	if !tr.Done() {
		t.Fatal("tracker not done after late completion")
	}
	if got := counter(reg, MetricLateCompletions); got != 1 {
		t.Fatalf("late_completions = %d, want 1", got)
	}
}

func TestQuarantineAfterMaxStrikes(t *testing.T) {
	units := testUnits()[:2]
	units[1].Stage = 0 // keep both leasable so the matrix can finish around the poison unit
	tr, clk, reg := newTestTracker(t, units)
	poison := units[0].ID()

	for strike := 1; strike <= 3; strike++ {
		g := tr.Lease("w0")
		if !g.OK || g.Unit.ID() != poison {
			t.Fatalf("strike %d: lease = %+v, want %s", strike, g, poison)
		}
		tr.WorkerDied("w0")
		// Walk past the exponential backoff (1s, 2s, 4s).
		clk.advance(time.Duration(1<<strike) * time.Second)
	}
	q := tr.Quarantined()
	if len(q) != 1 || q[0].ID != poison || q[0].Strikes != 3 {
		t.Fatalf("quarantined = %+v, want %s at 3 strikes", q, poison)
	}
	if got := counter(reg, MetricQuarantines); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}

	// The rest of the matrix still completes and the tracker reports done
	// with the poison unit standing aside.
	g := tr.Lease("w1")
	if !g.OK || g.Unit.ID() == poison {
		t.Fatalf("post-quarantine lease = %+v, want the healthy unit", g)
	}
	if !tr.Complete(g.Lease, g.Unit.ID(), "sum", "") {
		t.Fatal("healthy unit completion failed")
	}
	if !tr.Done() {
		t.Fatal("tracker not done with poison unit quarantined")
	}
	if gd := tr.Lease("w1"); !gd.Done {
		t.Fatalf("lease after done = %+v, want Done", gd)
	}
}

func TestWorkerErrorCountsAsStrike(t *testing.T) {
	tr, clk, reg := newTestTracker(t, testUnits()[:1])
	for strike := 1; strike <= 3; strike++ {
		g := tr.Lease("w0")
		if !g.OK {
			t.Fatalf("strike %d lease failed: %+v", strike, g)
		}
		if tr.Complete(g.Lease, g.Unit.ID(), "", "synthetic unit failure") {
			t.Fatal("errored completion accepted")
		}
		clk.advance(time.Duration(1<<strike) * time.Second)
	}
	if got := counter(reg, MetricQuarantines); got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}
	if q := tr.Quarantined(); len(q) != 1 || q[0].LastErr != "synthetic unit failure" {
		t.Fatalf("quarantined = %+v, want the reported error preserved", q)
	}
}
