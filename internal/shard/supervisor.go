package shard

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"

	"teva/internal/guard"
	"teva/internal/obs"
)

// SupervisorConfig parameterizes a sharded prewarm run.
type SupervisorConfig struct {
	// Shards is the number of worker processes to keep alive (min 1).
	Shards int
	// WorkerBin is the worker executable; WorkerArgs are prepended to the
	// supervisor-provided "-supervisor ADDR -id ID" flags. Tests point
	// WorkerBin at os.Args[0] with a re-exec interception arg.
	WorkerBin  string
	WorkerArgs []string
	// WorkerEnv, when non-nil, is the complete environment ("K=V") of
	// every spawned worker, including restarts — so a poison-cell chaos
	// variable keeps killing replacements until quarantine. Nil inherits
	// the supervisor's environment; callers wanting "inherited plus
	// extras" build the slice themselves (os.Environ stays in cmd/ and
	// test code, keeping this package's inputs explicit).
	WorkerEnv []string
	// MaxRestarts bounds replacement spawns across the whole run
	// (0: 3*Shards+4 — enough for one poison unit to strike out plus
	// chaos kills). When the budget is gone, dead workers stay dead and
	// whatever is unfinished falls through to the in-process run.
	MaxRestarts int
	// KillAfterUnits > 0 arms the supervisor-side chaos switch: once that
	// many units have completed, SIGKILL one live worker (once). This is
	// the "SIGKILL a worker mid-campaign" scenario as a deterministic,
	// built-in trigger.
	KillAfterUnits int
	// Tracker tunes the lease state machine.
	Tracker TrackerConfig
	// Metrics receives shard.* counters (nil: a private registry).
	Metrics *obs.Registry
	// Diag receives supervisor diagnostics and line-prefixed worker
	// output (nil: discarded). Never stdout: the experiment stream must
	// stay byte-identical to the unsharded run.
	Diag io.Writer
	// PollInterval is the sweep/completion poll cadence (0: 100ms).
	PollInterval time.Duration
}

// Report summarizes a supervisor run for the exit summary.
type Report struct {
	Spawns          int64
	Restarts        int64
	LeaseExpiries   int64
	Reclaims        int64
	Quarantines     int64
	LateCompletions int64
	UnitsDone       int64
	SumMismatches   int64
	// Poisoned names the quarantined units, in submission order.
	Poisoned []QuarantinedUnit
	// Completed means every unit finished (none pending when the
	// supervisor stopped); quarantined units count as finished because
	// the in-process run recomputes them.
	Completed bool
}

// String renders the one-line exit summary.
func (r Report) String() string {
	s := fmt.Sprintf("shard: %d units done, %d spawns, %d restarts, %d lease expiries, %d reclaims, %d quarantined, %d late completions",
		r.UnitsDone, r.Spawns, r.Restarts, r.LeaseExpiries, r.Reclaims, r.Quarantines, r.LateCompletions)
	for _, q := range r.Poisoned {
		s += fmt.Sprintf("\nshard: poison unit %s quarantined after %d strikes: %s", q.ID, q.Strikes, q.LastErr)
	}
	return s
}

// Supervisor owns a sharded prewarm: one Tracker, one Coordinator, and
// N supervised worker processes.
type Supervisor struct {
	cfg     SupervisorConfig
	tracker *Tracker
	coord   *Coordinator
	reg     *obs.Registry
	diag    io.Writer
	diagMu  sync.Mutex

	mu       sync.Mutex
	live     map[string]*exec.Cmd
	spawns   int
	restarts int
	killed   bool // KillAfterUnits chaos already fired

	mSpawns, mRestarts *obs.Counter
}

// NewSupervisor builds the tracker and coordinator for units under cfg.
// Run starts the workers.
func NewSupervisor(units []Unit, plan Plan, cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3*cfg.Shards + 4
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	if cfg.Tracker.Metrics == nil {
		cfg.Tracker.Metrics = reg
	}
	diag := cfg.Diag
	if diag == nil {
		diag = io.Discard
	}
	s := &Supervisor{
		cfg:       cfg,
		tracker:   NewTracker(units, cfg.Tracker),
		reg:       reg,
		diag:      diag,
		live:      make(map[string]*exec.Cmd),
		mSpawns:   reg.Counter(MetricSpawns),
		mRestarts: reg.Counter(MetricRestarts),
	}
	coord, err := NewCoordinator(s.tracker, plan)
	if err != nil {
		return nil, err
	}
	s.coord = coord
	return s, nil
}

// Addr returns the coordinator's dial address.
func (s *Supervisor) Addr() string { return s.coord.Addr() }

// Tracker exposes the lease state machine (tests and the degradation
// path inspect it).
func (s *Supervisor) Tracker() *Tracker { return s.tracker }

func (s *Supervisor) diagf(format string, args ...any) {
	s.diagMu.Lock()
	defer s.diagMu.Unlock()
	fmt.Fprintf(s.diag, format+"\n", args...)
}

// Run spawns the workers and drives the prewarm until every unit is done
// or quarantined, the restart budget is exhausted with no live workers,
// or ctx is cancelled. It always returns a Report; a non-nil error
// reports a supervisor-level fault (worker faults are not errors — they
// are the thing this machinery absorbs).
func (s *Supervisor) Run(ctx context.Context) (Report, error) {
	defer func() {
		s.killAll()
		// The coordinator's shutdown grace period must survive run-ctx
		// cancellation (dying workers may still be posting completions),
		// so Close roots its own short timeout instead of forwarding ctx.
		if err := s.coord.Close(); err != nil { //teva:allow ctxflow -- shutdown grace must outlive a canceled run ctx
			s.diagf("shard: coordinator close: %v", err)
		}
	}()

	var wg sync.WaitGroup
	var sink guard.Sink
	deaths := make(chan string, s.cfg.Shards*(s.cfg.MaxRestarts+2))
	for i := 0; i < s.cfg.Shards; i++ {
		s.spawn(ctx, &wg, &sink, deaths, false)
	}

	ticker := time.NewTicker(s.cfg.PollInterval)
	defer ticker.Stop()
	for !s.tracker.Done() {
		select {
		case <-ctx.Done():
			s.diagf("shard: cancelled: %v", ctx.Err())
			return s.report(), ctx.Err()
		case id := <-deaths:
			s.tracker.WorkerDied(id)
			if s.tracker.Done() {
				break
			}
			s.mu.Lock()
			budget := s.restarts < s.cfg.MaxRestarts
			nLive := len(s.live)
			s.mu.Unlock()
			if budget {
				s.spawn(ctx, &wg, &sink, deaths, true)
			} else if nLive == 0 {
				s.diagf("shard: restart budget exhausted with no live workers; degrading to in-process execution")
				return s.report(), nil
			}
		case <-ticker.C:
			s.tracker.Sweep()
			s.maybeChaosKill()
		}
	}

	// Workers drain on their own once the tracker reports done; give
	// them a moment, then reap stragglers.
	s.killAll()
	wg.Wait()
	if err := sink.Join(); err != nil {
		s.diagf("shard: supervisor goroutine fault: %v", err)
	}
	return s.report(), nil
}

// spawn starts one worker process and its watcher goroutines.
func (s *Supervisor) spawn(ctx context.Context, wg *sync.WaitGroup, sink *guard.Sink, deaths chan<- string, restart bool) {
	s.mu.Lock()
	id := fmt.Sprintf("w%d", s.spawns)
	s.spawns++
	if restart {
		s.restarts++
	}
	s.mu.Unlock()

	args := append(append([]string{}, s.cfg.WorkerArgs...), "-supervisor", s.coord.Addr(), "-id", id)
	cmd := exec.CommandContext(ctx, s.cfg.WorkerBin, args...)
	cmd.Env = s.cfg.WorkerEnv // nil inherits the supervisor's environment
	stdout, err1 := cmd.StdoutPipe()
	stderr, err2 := cmd.StderrPipe()
	if err1 != nil || err2 != nil {
		s.diagf("shard: %s: pipe setup failed: %v %v", id, err1, err2)
		deaths <- id
		return
	}
	if err := cmd.Start(); err != nil {
		s.diagf("shard: %s: start %s failed: %v", id, s.cfg.WorkerBin, err)
		deaths <- id
		return
	}
	s.mSpawns.Inc()
	if restart {
		s.mRestarts.Inc()
		s.diagf("shard: restarted worker %s (pid %d)", id, cmd.Process.Pid)
	} else {
		s.diagf("shard: spawned worker %s (pid %d)", id, cmd.Process.Pid)
	}
	s.mu.Lock()
	s.live[id] = cmd
	s.mu.Unlock()

	guard.Go(wg, sink, "shard.pipe."+id, func() error {
		s.prefixPipe(id+"/out", stdout)
		return nil
	})
	guard.Go(wg, sink, "shard.pipe."+id, func() error {
		s.prefixPipe(id+"/err", stderr)
		return nil
	})
	guard.Go(wg, sink, "shard.watch."+id, func() error {
		err := cmd.Wait()
		s.mu.Lock()
		delete(s.live, id)
		s.mu.Unlock()
		if err != nil {
			s.diagf("shard: worker %s exited: %v", id, err)
		} else {
			s.diagf("shard: worker %s exited cleanly", id)
		}
		deaths <- id
		return nil
	})
}

// prefixPipe copies a worker stream to Diag, one prefixed line at a time.
func (s *Supervisor) prefixPipe(tag string, r io.Reader) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		s.diagf("[%s] %s", tag, sc.Text())
	}
}

// maybeChaosKill fires the KillAfterUnits switch at most once.
func (s *Supervisor) maybeChaosKill() {
	if s.cfg.KillAfterUnits <= 0 {
		return
	}
	if s.tracker.Counts().Done < s.cfg.KillAfterUnits {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return
	}
	for id, cmd := range s.live {
		if cmd.Process != nil {
			s.killed = true
			s.diagf("shard: chaos: SIGKILL worker %s (pid %d) after %d units", id, cmd.Process.Pid, s.cfg.KillAfterUnits)
			_ = cmd.Process.Kill()
			return
		}
	}
}

// killAll SIGKILLs every live worker (shutdown path).
func (s *Supervisor) killAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cmd := range s.live {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}
}

// report snapshots the counters and quarantine list.
func (s *Supervisor) report() Report {
	c := s.tracker.Counts()
	return Report{
		Spawns:          s.reg.Counter(MetricSpawns).Value(),
		Restarts:        s.reg.Counter(MetricRestarts).Value(),
		LeaseExpiries:   s.reg.Counter(MetricLeaseExpiries).Value(),
		Reclaims:        s.reg.Counter(MetricReclaims).Value(),
		Quarantines:     s.reg.Counter(MetricQuarantines).Value(),
		LateCompletions: s.reg.Counter(MetricLateCompletions).Value(),
		UnitsDone:       s.reg.Counter(MetricUnitsDone).Value(),
		SumMismatches:   s.reg.Counter(MetricSumMismatches).Value(),
		Poisoned:        s.tracker.Quarantined(),
		Completed:       c.Done+c.Quarantined == c.Total,
	}
}
