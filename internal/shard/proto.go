package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"teva/internal/guard"
)

// The supervisor<->worker protocol is four JSON endpoints on a loopback
// listener:
//
//	GET  /v1/plan       -> Plan (the resolved pipeline configuration)
//	POST /v1/lease      {"worker":W}                          -> leaseResp
//	POST /v1/heartbeat  {"lease":L}                           -> ackResp
//	POST /v1/complete   {"lease":L,"unit":U,"sum":S,"err":E}  -> ackResp
//
// Workers are stateless against it: everything a worker holds is its
// current lease, so a restarted worker just starts leasing again.

type leaseReq struct {
	Worker string `json:"worker"`
}

type leaseResp struct {
	OK     bool   `json:"ok"`
	Done   bool   `json:"done,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
	Lease  string `json:"lease,omitempty"`
	TTLMS  int64  `json:"ttl_ms,omitempty"`
	Unit   *Unit  `json:"unit,omitempty"`
}

type heartbeatReq struct {
	Lease string `json:"lease"`
}

type completeReq struct {
	Lease string `json:"lease"`
	Unit  string `json:"unit"`
	Sum   string `json:"sum,omitempty"`
	Err   string `json:"err,omitempty"`
}

type ackResp struct {
	OK bool `json:"ok"`
}

// Coordinator serves the lease protocol for one Tracker on a loopback
// listener. Close stops the listener; in-flight handlers finish.
type Coordinator struct {
	tracker *Tracker
	plan    Plan
	ln      net.Listener
	srv     *http.Server
	wg      sync.WaitGroup
	sink    guard.Sink
}

// NewCoordinator binds a loopback listener and starts serving the lease
// protocol over tracker.
func NewCoordinator(tracker *Tracker, plan Plan) (*Coordinator, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("shard: listen: %w", err)
	}
	c := &Coordinator{tracker: tracker, plan: plan, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", c.handlePlan)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	c.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	guard.Go(&c.wg, &c.sink, "shard.coordinator", func() error {
		// ErrServerClosed (and the listener-closed error surfaced on
		// Close) is the normal shutdown path; there is nothing to report.
		_ = c.srv.Serve(ln)
		return nil
	})
	return c, nil
}

// Addr returns the coordinator's dial address ("127.0.0.1:port").
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the coordinator's listener and waits for the serve loop.
func (c *Coordinator) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := c.srv.Shutdown(ctx)
	c.wg.Wait()
	if serr := c.sink.Join(); serr != nil && err == nil {
		err = serr
	}
	return err
}

func (c *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, c.plan)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseReq
	if !readJSON(w, r, &req) {
		return
	}
	g := c.tracker.Lease(req.Worker)
	resp := leaseResp{OK: g.OK, Done: g.Done, WaitMS: g.Wait.Milliseconds()}
	if g.OK {
		u := g.Unit
		resp.Unit = &u
		resp.Lease = g.Lease
		resp.TTLMS = g.TTL.Milliseconds()
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatReq
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, ackResp{OK: c.tracker.Heartbeat(req.Lease)})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeReq
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, ackResp{OK: c.tracker.Complete(req.Lease, req.Unit, req.Sum, req.Err)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, "decode: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// Client is a worker's handle on the coordinator.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient dials the coordinator at addr ("127.0.0.1:port").
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
}

// FetchPlan retrieves the supervisor's resolved pipeline configuration.
func (c *Client) FetchPlan(ctx context.Context) (Plan, error) {
	var p Plan
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/plan", nil)
	if err != nil {
		return p, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("shard: plan: %s", resp.Status)
	}
	return p, json.NewDecoder(resp.Body).Decode(&p)
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Lease asks for the next unit.
func (c *Client) Lease(ctx context.Context, worker string) (Grant, error) {
	var resp leaseResp
	if err := c.post(ctx, "/v1/lease", leaseReq{Worker: worker}, &resp); err != nil {
		return Grant{}, err
	}
	g := Grant{OK: resp.OK, Done: resp.Done, Wait: time.Duration(resp.WaitMS) * time.Millisecond}
	if resp.OK {
		if resp.Unit == nil {
			return Grant{}, errors.New("shard: lease response missing unit")
		}
		g.Unit = *resp.Unit
		g.Lease = resp.Lease
		g.TTL = time.Duration(resp.TTLMS) * time.Millisecond
	}
	return g, nil
}

// Heartbeat extends the lease; false means the lease is gone.
func (c *Client) Heartbeat(ctx context.Context, lease string) (bool, error) {
	var resp ackResp
	if err := c.post(ctx, "/v1/heartbeat", heartbeatReq{Lease: lease}, &resp); err != nil {
		return false, err
	}
	return resp.OK, nil
}

// Complete reports a unit result (sum on success, errText on failure).
func (c *Client) Complete(ctx context.Context, lease, unitID, sum, errText string) (bool, error) {
	var resp ackResp
	err := c.post(ctx, "/v1/complete", completeReq{Lease: lease, Unit: unitID, Sum: sum, Err: errText}, &resp)
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// ClientLoop runs a worker's lease/execute/complete cycle until the
// coordinator reports the unit set done, the context is cancelled, or
// the coordinator becomes unreachable. exec computes one unit and
// returns its canonical result checksum. Heartbeats are sent at TTL/3
// while exec runs; an executor panic is reported as a unit error (the
// worker survives to lease the next unit — in-process isolation on top
// of the process-level isolation the supervisor provides).
func ClientLoop(ctx context.Context, c *Client, worker string, exec func(context.Context, Unit) (string, error)) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		g, err := c.Lease(ctx, worker)
		if err != nil {
			return err
		}
		if g.Done {
			return nil
		}
		if !g.OK {
			wait := g.Wait
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		sum, execErr := runUnit(ctx, c, g, exec)
		errText := ""
		if execErr != nil {
			errText = execErr.Error()
		}
		if _, err := c.Complete(ctx, g.Lease, g.Unit.ID(), sum, errText); err != nil {
			return err
		}
	}
}

// runUnit executes one leased unit with a heartbeat ticker alongside.
func runUnit(ctx context.Context, c *Client, g Grant, exec func(context.Context, Unit) (string, error)) (sum string, err error) {
	hbCtx, stopHB := context.WithCancel(ctx)
	interval := g.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	var wg sync.WaitGroup
	var sink guard.Sink
	guard.Go(&wg, &sink, "shard.heartbeat", func() error {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return nil
			case <-t.C:
				// A false or failed heartbeat is not fatal: the worker
				// finishes the unit and lets Complete reconcile it as a
				// late completion.
				_, _ = c.Heartbeat(hbCtx, g.Lease)
			}
		}
	})
	defer func() {
		stopHB()
		wg.Wait()
	}()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("unit %s panicked: %v", g.Unit.ID(), r)
		}
	}()
	return exec(ctx, g.Unit)
}
