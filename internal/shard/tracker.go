package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"teva/internal/obs"
)

// unitState is one unit's scheduling lifecycle.
type unitState uint8

const (
	unitPending     unitState = iota // waiting (possibly under retry backoff)
	unitLeased                       // held by a worker under a live lease
	unitDone                         // completed; artifacts are in the store
	unitQuarantined                  // struck out; left to the in-process run
)

// TrackerConfig parameterizes the lease state machine.
type TrackerConfig struct {
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the sweeper reclaims its unit (0: 15s). Worker death reclaims
	// immediately, so the TTL only bounds hung-but-alive workers.
	LeaseTTL time.Duration
	// MaxStrikes quarantines a unit after this many consecutive failed
	// attempts — worker deaths, lease expiries, or worker-reported
	// errors (0: 3).
	MaxStrikes int
	// RetryBackoff is the base delay before a reclaimed unit is leased
	// again; it doubles per strike (0: 250ms).
	RetryBackoff time.Duration
	// Metrics receives the shard.* counters (nil: a private registry).
	Metrics *obs.Registry
	// Now is the injected clock (nil: time.Now). Every expiry and
	// backoff decision flows through it, so tests drive time explicitly.
	Now func() time.Time
}

// trackedUnit is the tracker's per-unit record.
type trackedUnit struct {
	unit     Unit
	state    unitState
	strikes  int       // consecutive failed attempts
	eligible time.Time // earliest next lease (retry backoff)
	lease    string    // current lease ID when unitLeased
	sum      string    // result checksum once unitDone
	lastErr  string    // most recent worker-reported error
}

// leaseRec is one outstanding lease.
type leaseRec struct {
	id       string
	unitID   string
	worker   string
	deadline time.Time
}

// Tracker is the supervisor's lease state machine: a queue of work units
// with time-boxed leases, retry backoff, poison quarantine, and
// late-completion reconciliation. It is safe for concurrent use and has
// no goroutines of its own — the owner calls Sweep periodically and
// WorkerDied on process exits.
type Tracker struct {
	cfg TrackerConfig
	now func() time.Time

	mu     sync.Mutex
	units  map[string]*trackedUnit
	order  []string // unit IDs in submission order (deterministic scans)
	leases map[string]*leaseRec
	nextID int

	mExpiries, mReclaims, mQuarantines, mLate, mDone, mMismatch *obs.Counter
}

// NewTracker builds a tracker over the unit set.
func NewTracker(units []Unit, cfg TrackerConfig) *Tracker {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxStrikes <= 0 {
		cfg.MaxStrikes = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry(nil)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracker{
		cfg:          cfg,
		now:          now,
		units:        make(map[string]*trackedUnit, len(units)),
		leases:       make(map[string]*leaseRec),
		mExpiries:    reg.Counter(MetricLeaseExpiries),
		mReclaims:    reg.Counter(MetricReclaims),
		mQuarantines: reg.Counter(MetricQuarantines),
		mLate:        reg.Counter(MetricLateCompletions),
		mDone:        reg.Counter(MetricUnitsDone),
		mMismatch:    reg.Counter(MetricSumMismatches),
	}
	for _, u := range units {
		id := u.ID()
		if _, dup := t.units[id]; dup {
			continue
		}
		t.units[id] = &trackedUnit{unit: u}
		t.order = append(t.order, id)
	}
	return t
}

// Grant is the tracker's answer to a lease request.
type Grant struct {
	// OK means Unit and Lease are populated and the worker owns the unit
	// until Deadline (extended by heartbeats).
	OK    bool
	Unit  Unit
	Lease string
	TTL   time.Duration
	// Done means every unit is done or quarantined — the worker should
	// exit cleanly.
	Done bool
	// Wait is the suggested poll delay when nothing is leasable right
	// now (everything leased out, or pending units still under backoff).
	Wait time.Duration
}

// Lease hands the next leasable unit to worker. Units are scanned in
// submission order within the lowest incomplete stage; stage s+1 opens
// only once every stage <= s unit is done or quarantined.
func (t *Tracker) Lease(worker string) Grant {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.sweepLocked(now)
	if t.doneLocked() {
		return Grant{Done: true}
	}
	stage := t.openStageLocked()
	var wait time.Duration
	for _, id := range t.order {
		tu := t.units[id]
		if tu.state != unitPending || tu.unit.Stage > stage {
			continue
		}
		if tu.eligible.After(now) {
			if d := tu.eligible.Sub(now); wait == 0 || d < wait {
				wait = d
			}
			continue
		}
		t.nextID++
		lease := fmt.Sprintf("L%d", t.nextID)
		tu.state = unitLeased
		tu.lease = lease
		t.leases[lease] = &leaseRec{
			id: lease, unitID: id, worker: worker,
			deadline: now.Add(t.cfg.LeaseTTL),
		}
		return Grant{OK: true, Unit: tu.unit, Lease: lease, TTL: t.cfg.LeaseTTL}
	}
	if wait <= 0 || wait > t.cfg.LeaseTTL/2 {
		wait = t.cfg.LeaseTTL / 2
	}
	return Grant{Wait: wait}
}

// Heartbeat extends a live lease to now+TTL. It returns false when the
// lease is gone (expired and reclaimed, or its unit already completed by
// someone else) — the worker may keep computing and submit a late
// completion, but it no longer owns the unit.
func (t *Tracker) Heartbeat(lease string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.sweepLocked(now)
	rec, ok := t.leases[lease]
	if !ok {
		return false
	}
	rec.deadline = now.Add(t.cfg.LeaseTTL)
	return true
}

// Complete records a finished unit. sum is the worker's canonical result
// checksum; errText non-empty reports a unit that failed in the worker
// without killing it (counted as a strike like a crash would be).
//
// A completion whose lease is no longer live is a late completion: the
// result already landed in the shared store, so it is accepted — and the
// unit marked done — iff it cannot conflict: either the unit is still
// unfinished, or an earlier completion produced a byte-identical sum. A
// differing sum on an already-done unit is a determinism violation,
// counted on shard.sum_mismatches and rejected.
func (t *Tracker) Complete(lease, unitID, sum, errText string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.sweepLocked(now)
	tu := t.units[unitID]
	if tu == nil {
		return false
	}
	rec, live := t.leases[lease]
	if live && rec.unitID != unitID {
		live = false
	}
	if live {
		delete(t.leases, lease)
		tu.lease = ""
	}
	if errText != "" {
		if live && tu.state == unitLeased {
			t.strikeLocked(tu, now, errText)
		}
		return false
	}
	switch tu.state {
	case unitDone:
		if !live {
			if tu.sum == sum {
				t.mLate.Inc()
				return true
			}
			t.mMismatch.Inc()
			return false
		}
		return true
	case unitQuarantined:
		// The store holds a usable result after all; un-poison it.
		tu.state = unitDone
		tu.sum = sum
		t.mDone.Inc()
		if !live {
			t.mLate.Inc()
		}
		return true
	default:
		tu.state = unitDone
		tu.sum = sum
		tu.strikes = 0
		t.mDone.Inc()
		if !live {
			t.mLate.Inc()
		}
		return true
	}
}

// WorkerDied reclaims every lease held by the worker immediately:
// process death is definitive, so there is no reason to wait out the
// TTL. Each reclaimed unit takes a strike.
func (t *Tracker) WorkerDied(worker string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var gone []string
	for id, rec := range t.leases {
		if rec.worker == worker {
			gone = append(gone, id)
		}
	}
	sort.Strings(gone)
	for _, id := range gone {
		rec := t.leases[id]
		delete(t.leases, id)
		if tu := t.units[rec.unitID]; tu != nil && tu.state == unitLeased {
			t.strikeLocked(tu, now, "worker "+worker+" died")
		}
	}
}

// Sweep reclaims expired leases; the supervisor calls it periodically.
func (t *Tracker) Sweep() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(t.now())
}

// sweepLocked expires overdue leases under the held lock.
func (t *Tracker) sweepLocked(now time.Time) {
	var expired []string
	for id, rec := range t.leases {
		if now.After(rec.deadline) {
			expired = append(expired, id)
		}
	}
	sort.Strings(expired)
	for _, id := range expired {
		rec := t.leases[id]
		delete(t.leases, id)
		t.mExpiries.Inc()
		if tu := t.units[rec.unitID]; tu != nil && tu.state == unitLeased {
			t.strikeLocked(tu, now, "lease expired on "+rec.worker)
		}
	}
}

// strikeLocked reclaims a leased unit after a failed attempt: back to
// pending under exponential backoff, or quarantined at MaxStrikes.
func (t *Tracker) strikeLocked(tu *trackedUnit, now time.Time, reason string) {
	tu.lease = ""
	tu.strikes++
	tu.lastErr = reason
	t.mReclaims.Inc()
	if tu.strikes >= t.cfg.MaxStrikes {
		tu.state = unitQuarantined
		t.mQuarantines.Inc()
		return
	}
	tu.state = unitPending
	tu.eligible = now.Add(t.cfg.RetryBackoff << uint(tu.strikes-1))
}

// openStageLocked returns the lowest stage with unfinished units.
func (t *Tracker) openStageLocked() int {
	stage := 0
	found := false
	for _, id := range t.order {
		tu := t.units[id]
		if tu.state == unitDone || tu.state == unitQuarantined {
			continue
		}
		if !found || tu.unit.Stage < stage {
			stage = tu.unit.Stage
			found = true
		}
	}
	return stage
}

// doneLocked reports whether every unit is done or quarantined.
func (t *Tracker) doneLocked() bool {
	for _, id := range t.order {
		if st := t.units[id].state; st != unitDone && st != unitQuarantined {
			return false
		}
	}
	return true
}

// Done reports whether every unit is done or quarantined.
func (t *Tracker) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doneLocked()
}

// Quarantined returns the IDs of poison units with their last failure,
// in submission order.
func (t *Tracker) Quarantined() []QuarantinedUnit {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []QuarantinedUnit
	for _, id := range t.order {
		if tu := t.units[id]; tu.state == unitQuarantined {
			out = append(out, QuarantinedUnit{ID: id, Strikes: tu.strikes, LastErr: tu.lastErr})
		}
	}
	return out
}

// QuarantinedUnit names one poison unit in the tracker's final report.
type QuarantinedUnit struct {
	ID      string
	Strikes int
	LastErr string
}

// Counts is a snapshot of the tracker's progress.
type Counts struct {
	Total, Done, Pending, Leased, Quarantined int
}

// Counts returns the current unit-state tallies.
func (t *Tracker) Counts() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := Counts{Total: len(t.order)}
	for _, id := range t.order {
		switch t.units[id].state {
		case unitDone:
			c.Done++
		case unitPending:
			c.Pending++
		case unitLeased:
			c.Leased++
		case unitQuarantined:
			c.Quarantined++
		}
	}
	return c
}
