package shard

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the test suite's worker binary: when the
// supervisor re-execs this test binary with TEVA_SHARD_TEST_WORKER set,
// we run a ClientLoop worker instead of the tests. This keeps the
// process-supervision tests hermetic — no `go build` step, no external
// binary.
func TestMain(m *testing.M) {
	if os.Getenv("TEVA_SHARD_TEST_WORKER") != "" {
		os.Exit(testWorkerMain())
	}
	os.Exit(m.Run())
}

func testWorkerMain() int {
	var addr, id string
	for i, a := range os.Args {
		switch a {
		case "-supervisor":
			addr = os.Args[i+1]
		case "-id":
			id = os.Args[i+1]
		}
	}
	killSub := os.Getenv("TEVA_SHARD_TEST_KILL_UNIT")
	delay := 0
	if v := os.Getenv("TEVA_SHARD_TEST_UNIT_DELAY_MS"); v != "" {
		delay, _ = strconv.Atoi(v)
	}
	c := NewClient(addr)
	err := ClientLoop(context.Background(), c, id, func(ctx context.Context, u Unit) (string, error) {
		if killSub != "" && strings.Contains(u.ID(), killSub) {
			// Simulate a hard OS-level fault mid-unit: SIGKILL ourselves,
			// no deferred cleanup, no exit handler.
			p, _ := os.FindProcess(os.Getpid())
			_ = p.Kill()
			select {}
		}
		if delay > 0 {
			time.Sleep(time.Duration(delay) * time.Millisecond)
		}
		return "S:" + u.ID(), nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "test worker %s: %v\n", id, err)
		return 1
	}
	return 0
}

// matrixUnits builds a flat stage-0 unit set of the given size.
func matrixUnits(n int) []Unit {
	units := make([]Unit, n)
	for i := range units {
		units[i] = Unit{Kind: UnitRandom, Level: "VR15", OpName: fmt.Sprintf("op-%02d", i), Op: i}
	}
	return units
}

func newTestSupervisor(t *testing.T, units []Unit, mutate func(*SupervisorConfig)) (*Supervisor, *bytes.Buffer) {
	t.Helper()
	var diag bytes.Buffer
	cfg := SupervisorConfig{
		Shards:    2,
		WorkerBin: os.Args[0],
		WorkerEnv: append(os.Environ(), "TEVA_SHARD_TEST_WORKER=1"),
		Tracker: TrackerConfig{
			LeaseTTL:     5 * time.Second,
			RetryBackoff: 10 * time.Millisecond,
		},
		Diag:         &diag,
		PollInterval: 10 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSupervisor(units, Plan{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, &diag
}

func runSupervisor(t *testing.T, s *Supervisor) Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatalf("supervisor run: %v\nreport: %+v", err, rep)
	}
	return rep
}

func TestSupervisorHappyPath(t *testing.T) {
	s, _ := newTestSupervisor(t, matrixUnits(6), nil)
	rep := runSupervisor(t, s)
	if !rep.Completed || rep.UnitsDone != 6 {
		t.Fatalf("report = %+v, want 6 units completed", rep)
	}
	if rep.Spawns != 2 || rep.Restarts != 0 {
		t.Fatalf("report = %+v, want 2 spawns and no restarts", rep)
	}
	if len(rep.Poisoned) != 0 {
		t.Fatalf("unexpected quarantine: %+v", rep.Poisoned)
	}
}

func TestSupervisorRestartsSIGKILLedWorker(t *testing.T) {
	s, diag := newTestSupervisor(t, matrixUnits(10), func(cfg *SupervisorConfig) {
		cfg.KillAfterUnits = 2
		cfg.WorkerEnv = append(cfg.WorkerEnv, "TEVA_SHARD_TEST_UNIT_DELAY_MS=30")
	})
	rep := runSupervisor(t, s)
	if !rep.Completed || rep.UnitsDone < 10 {
		t.Fatalf("report = %+v, want all 10 units done despite the SIGKILL", rep)
	}
	if rep.Restarts < 1 {
		t.Fatalf("report = %+v, want at least one restart after the chaos SIGKILL", rep)
	}
	if !strings.Contains(diag.String(), "chaos: SIGKILL worker") {
		t.Fatalf("diag missing chaos kill record:\n%s", diag.String())
	}
	if !strings.Contains(rep.String(), fmt.Sprintf("%d restarts", rep.Restarts)) {
		t.Fatalf("exit summary %q does not report restarts", rep.String())
	}
}

func TestSupervisorQuarantinesPoisonUnit(t *testing.T) {
	units := matrixUnits(5)
	poison := units[2].ID()
	s, _ := newTestSupervisor(t, units, func(cfg *SupervisorConfig) {
		// Every worker (including restarts) self-SIGKILLs on the poison
		// unit, so it strikes out and is quarantined by name while the
		// other four units finish.
		cfg.WorkerEnv = append(cfg.WorkerEnv, "TEVA_SHARD_TEST_KILL_UNIT="+poison)
	})
	rep := runSupervisor(t, s)
	if !rep.Completed {
		t.Fatalf("report = %+v, want run completed around the poison unit", rep)
	}
	if rep.UnitsDone != 4 || rep.Quarantines != 1 {
		t.Fatalf("report = %+v, want 4 done + 1 quarantined", rep)
	}
	if len(rep.Poisoned) != 1 || rep.Poisoned[0].ID != poison {
		t.Fatalf("poisoned = %+v, want %s", rep.Poisoned, poison)
	}
	if !strings.Contains(rep.String(), "poison unit "+poison) {
		t.Fatalf("exit summary %q does not name the poison unit", rep.String())
	}
}

func TestSupervisorDegradesWhenWorkersUnavailable(t *testing.T) {
	s, diag := newTestSupervisor(t, matrixUnits(3), func(cfg *SupervisorConfig) {
		cfg.WorkerBin = "/nonexistent/teva-worker"
		cfg.MaxRestarts = 2
	})
	rep := runSupervisor(t, s)
	if rep.Completed || rep.UnitsDone != 0 {
		t.Fatalf("report = %+v, want an incomplete prewarm with zero units done", rep)
	}
	if !strings.Contains(diag.String(), "degrading to in-process execution") {
		t.Fatalf("diag missing degradation notice:\n%s", diag.String())
	}
}
