package shard

import (
	"context"
	"testing"
	"time"

	"teva/internal/obs"
)

func TestCoordinatorRoundTrip(t *testing.T) {
	reg := obs.NewRegistry(nil)
	tr := NewTracker(testUnits(), TrackerConfig{
		LeaseTTL:     5 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
		Metrics:      reg,
	})
	plan := Plan{Seed: 42, Scale: "Tiny", Runs: 24, CacheDir: "/tmp/x"}
	coord, err := NewCoordinator(tr, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx := context.Background()
	c := NewClient(coord.Addr())

	got, err := c.FetchPlan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != plan {
		t.Fatalf("plan round trip = %+v, want %+v", got, plan)
	}

	g, err := c.Lease(ctx, "w0")
	if err != nil || !g.OK {
		t.Fatalf("lease = %+v, %v", g, err)
	}
	if g.Unit.ID() != testUnits()[0].ID() {
		t.Fatalf("leased %s, want %s", g.Unit.ID(), testUnits()[0].ID())
	}
	if ok, err := c.Heartbeat(ctx, g.Lease); err != nil || !ok {
		t.Fatalf("heartbeat = %v, %v", ok, err)
	}
	if ok, err := c.Complete(ctx, g.Lease, g.Unit.ID(), "sum", ""); err != nil || !ok {
		t.Fatalf("complete = %v, %v", ok, err)
	}
	if ok, err := c.Heartbeat(ctx, g.Lease); err != nil || ok {
		t.Fatalf("heartbeat on settled lease = %v, %v; want refused", ok, err)
	}
}

func TestClientLoopDrainsTracker(t *testing.T) {
	reg := obs.NewRegistry(nil)
	tr := NewTracker(testUnits(), TrackerConfig{
		LeaseTTL:     5 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
		Metrics:      reg,
	})
	coord, err := NewCoordinator(tr, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := NewClient(coord.Addr())
	var seen []string
	err = ClientLoop(ctx, c, "w0", func(ctx context.Context, u Unit) (string, error) {
		seen = append(seen, u.ID())
		return "S:" + u.ID(), nil
	})
	if err != nil {
		t.Fatalf("ClientLoop: %v", err)
	}
	if !tr.Done() {
		t.Fatal("tracker not drained")
	}
	if len(seen) != len(testUnits()) {
		t.Fatalf("executed %d units, want %d", len(seen), len(testUnits()))
	}
	// Stage gating must have ordered random -> wa -> cell.
	want := []string{"random/VR15/fp-add.d", "wa/VR15/is", "cell/is/WA/VR15"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", seen, want)
		}
	}
}

func TestClientLoopIsolatesExecutorPanic(t *testing.T) {
	reg := obs.NewRegistry(nil)
	tr := NewTracker(testUnits()[:2], TrackerConfig{
		LeaseTTL:     5 * time.Second,
		MaxStrikes:   1, // first panic quarantines, so the loop terminates fast
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	coord, err := NewCoordinator(tr, Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c := NewClient(coord.Addr())
	err = ClientLoop(ctx, c, "w0", func(ctx context.Context, u Unit) (string, error) {
		if u.Kind == UnitRandom {
			panic("injected executor panic")
		}
		return "S:" + u.ID(), nil
	})
	if err != nil {
		t.Fatalf("ClientLoop should survive an executor panic, got %v", err)
	}
	q := tr.Quarantined()
	if len(q) != 1 || q[0].ID != testUnits()[0].ID() {
		t.Fatalf("quarantined = %+v, want the panicking unit", q)
	}
	if got := reg.Counter(MetricUnitsDone).Value(); got != 1 {
		t.Fatalf("units_done = %d, want 1 (the healthy unit)", got)
	}
}
