package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"teva/internal/dta"
	"teva/internal/fpu"
	"teva/internal/obs"
	"teva/internal/vscale"
)

func screenFramework(t *testing.T, screen dta.ScreenConfig) (*Framework, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry(nil)
	f, err := New(Config{
		Seed:             0xF00D,
		RandomOperands:   1200,
		WorkloadOperands: 800,
		Metrics:          reg,
		Screen:           screen,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, reg
}

// TestScreenedSummariesByteIdentical is the acceptance check for the
// screening fast path: random characterization with the screen on must
// produce summaries byte-identical to the unscreened baseline for every
// op, while actually skipping dense DTA for the slack-cleared ones.
func TestScreenedSummariesByteIdentical(t *testing.T) {
	base, _ := screenFramework(t, dta.ScreenConfig{})
	scr, reg := screenFramework(t, dta.ScreenConfig{Enabled: true})

	want := base.RandomSummaries(vscale.VR15)
	got := scr.RandomSummaries(vscale.VR15)
	for _, op := range fpu.Ops() {
		wj, err := json.Marshal(want[op])
		if err != nil {
			t.Fatal(err)
		}
		gj, err := json.Marshal(got[op])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wj, gj) {
			t.Fatalf("%s: screened summary differs from baseline:\nbase %s\nscrn %s", op, wj, gj)
		}
	}

	checked := reg.Counter(dta.MetricScreenChecked).Value()
	screened := reg.Counter(dta.MetricScreenedOps).Value()
	if checked != int64(fpu.NumOps) {
		t.Fatalf("screen checked %d ops, want %d", checked, fpu.NumOps)
	}
	if screened == 0 {
		t.Fatal("no op was screened at VR15 (conversions should clear the slack)")
	}
	if screened == checked {
		t.Fatal("every op was screened at VR15 (the padded multiplier must fail the screen)")
	}
	// DTA must have run only for the unscreened ops.
	if calls := reg.Counter(dta.MetricStreamCalls).Value(); calls != checked-screened {
		t.Fatalf("dta ran %d streams, want %d (checked %d - screened %d)",
			calls, checked-screened, checked, screened)
	}
}

// TestScreenValidationMode runs the screen with the cross-check on: every
// screened op is simulated anyway and the run fails if the slack screen
// ever disagrees with simulation.
func TestScreenValidationMode(t *testing.T) {
	f, reg := screenFramework(t, dta.ScreenConfig{Enabled: true, Validate: true})
	if _, err := f.RandomSummariesCtx(t.Context(), vscale.VR20); err != nil {
		t.Fatalf("screen validation failed: %v", err)
	}
	screened := reg.Counter(dta.MetricScreenedOps).Value()
	validated := reg.Counter(dta.MetricScreenValidated).Value()
	if screened == 0 {
		t.Fatal("nothing screened at VR20")
	}
	if validated != screened {
		t.Fatalf("validated %d of %d screened ops", validated, screened)
	}
	// Validation mode simulates everything: stream calls equal checks.
	if calls, checked := reg.Counter(dta.MetricStreamCalls).Value(), reg.Counter(dta.MetricScreenChecked).Value(); calls != checked {
		t.Fatalf("validation mode ran %d streams for %d checks", calls, checked)
	}
}
