// Package core is the paper's primary contribution: the cross-layer
// timing-error injection framework. It wires the circuit layer (gate-level
// FPU + dynamic timing analysis at a voltage corner) to the
// microarchitecture layer (workload execution, operand tracing, error
// injection) through the two phases of Figure 2:
//
//   - Model development: run DTA over operand streams (uniformly random
//     for the DA/IA models, workload-extracted for the WA model) and
//     build the corresponding injection models.
//   - Application evaluation: run statistical injection campaigns with
//     those models and classify outcomes (Masked/SDC/Crash/Timeout),
//     yielding error ratios (Eq. 2) and the Application Vulnerability
//     Metric (Eq. 4).
package core

import (
	"context"
	"fmt"
	"os"
	"sync"

	"teva/internal/artifact"
	"teva/internal/campaign"
	"teva/internal/cell"
	"teva/internal/dta"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/obs"
	"teva/internal/prng"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// Config parameterizes the framework.
type Config struct {
	// Seed drives design generation and every stochastic step.
	Seed uint64
	// RandomOperands is the DTA sample size per instruction type for the
	// IA model (the paper uses 1M; the default here is laptop-scale).
	RandomOperands int
	// WorkloadOperands is the DTA sample size per instruction type per
	// benchmark for the WA model.
	WorkloadOperands int
	// DASample is the mixed-instruction Monte-Carlo sample size for the
	// DA model's fixed ratio (the paper uses 10M).
	DASample int
	// Workers bounds DTA/campaign parallelism (0: GOMAXPROCS).
	Workers int
	// TimeoutFactor is the campaign timeout budget as a multiple of the
	// golden run's cycle count (0: campaign.Run's 2.0 default). Folded
	// into artifact cache keys — a different budget can reclassify runs
	// as Timeout, so cells from different factors must never alias.
	TimeoutFactor float64
	// Timing selects the reduced-voltage timing engine. The zero value is
	// dta.EngineWide (64-lane levelized, the fastest); dta.EngineFast and
	// dta.EngineExact are the scalar reference engines. Wide and fast
	// produce identical records, so only Exact() is folded into artifact
	// cache keys.
	Timing dta.Engine
	// Artifacts, when non-nil, persists DTA characterization summaries
	// across runs: a second run with the same seed and sample sizes
	// reloads every summary instead of re-simulating. A nil store
	// disables on-disk caching.
	Artifacts *artifact.Store
	// Metrics, when non-nil, receives dta.*, campaign.* and
	// experiments.* counters plus phase timers from every framework
	// operation. A nil registry disables instrumentation at zero cost.
	Metrics *obs.Registry
	// Screen configures slack-driven DTA screening: ops whose worst STA
	// slack at the analyzed corner clears the guardband are predicted
	// error-free and skip dense DTA (see dta.ScreenConfig). Screened ops
	// are counted on dta.screened_ops; validation mode simulates them
	// anyway and fails loudly on any disagreement.
	Screen dta.ScreenConfig
}

// DefaultConfig returns the scaled-down defaults.
func DefaultConfig() Config {
	return Config{
		Seed:             0xF00D,
		RandomOperands:   20000,
		WorkloadOperands: 8000,
		DASample:         200000,
	}
}

// Framework is an instantiated cross-layer toolflow. Its methods are safe
// for concurrent use: the experiment pipeline materializes many cells in
// parallel, and all of them funnel through the per-level characterization
// below.
type Framework struct {
	Cfg  Config
	Lib  *cell.Library
	FPU  *fpu.FPU
	Volt vscale.Model
	// per-level random-operand summaries (shared by DA and IA), built
	// once per level with single-flight so concurrent model builds at
	// the same level wait instead of duplicating the DTA work.
	mu          sync.Mutex
	randomCalls map[string]*summaryCall
	// saveWarn rate-limits the cache-write-failure warning to once per
	// framework: write errors are non-fatal (counted on
	// artifact.write_errors) and a degraded disk would otherwise spam one
	// line per summary.
	saveWarn sync.Once
}

// summaryCall is one single-flight characterization slot.
type summaryCall struct {
	once sync.Once
	sums map[fpu.Op]*dta.Summary
	err  error
}

// New builds (and calibrates) the hardware substrate and returns the
// framework.
func New(cfg Config) (*Framework, error) {
	d := DefaultConfig()
	if cfg.RandomOperands == 0 {
		cfg.RandomOperands = d.RandomOperands
	}
	if cfg.WorkloadOperands == 0 {
		cfg.WorkloadOperands = d.WorkloadOperands
	}
	if cfg.DASample == 0 {
		cfg.DASample = d.DASample
	}
	if cfg.Seed == 0 {
		cfg.Seed = d.Seed
	}
	lib := cell.Default()
	f, err := fpu.New(lib, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Framework{
		Cfg:         cfg,
		Lib:         lib,
		FPU:         f,
		Volt:        vscale.Default45nm(),
		randomCalls: make(map[string]*summaryCall),
	}, nil
}

// noteSaveErr surfaces a non-fatal artifact cache write failure: the
// store already counted it on artifact.write_errors; here it becomes one
// (and only one) stderr warning so a silently read-only cache directory
// is visible without flooding the run's output.
func (f *Framework) noteSaveErr(err error) {
	if err == nil {
		return
	}
	f.saveWarn.Do(func() {
		fmt.Fprintf(os.Stderr, "teva: artifact cache write failed (non-fatal, results are recomputed next run): %v\n", err)
	})
}

// randomPairs draws uniformly distributed operand encodings for an op.
func randomPairs(op fpu.Op, n int, src *prng.Source) []dta.Pair {
	w := op.OperandWidth()
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<uint(w) - 1
	}
	pairs := make([]dta.Pair, n)
	for i := range pairs {
		pairs[i] = dta.Pair{A: src.Uint64() & mask, B: src.Uint64() & mask}
	}
	return pairs
}

// RandomSummaries runs (or returns cached) DTA over uniformly random
// operands for every instruction type at the level — the IA model's
// characterization and Figure 7's data. Each op's operand stream is
// seeded independently of the others, so per-op summaries are stable
// cache artifacts regardless of which ops were analyzed before them.
func (f *Framework) RandomSummaries(level vscale.VRLevel) map[fpu.Op]*dta.Summary {
	sums, _ := f.RandomSummariesCtx(context.Background(), level)
	return sums
}

// RandomSummariesCtx is RandomSummaries with cooperative cancellation.
// Cancellation mid-characterization never poisons the single-flight slot:
// the aborted slot is discarded, so a later call (e.g. a resumed run)
// recomputes instead of inheriting the cancellation error.
func (f *Framework) RandomSummariesCtx(ctx context.Context, level vscale.VRLevel) (map[fpu.Op]*dta.Summary, error) {
	f.mu.Lock()
	call, ok := f.randomCalls[level.Name]
	if !ok {
		call = &summaryCall{}
		f.randomCalls[level.Name] = call
	}
	f.mu.Unlock()
	call.once.Do(func() {
		call.sums, call.err = f.randomSummaries(ctx, level)
	})
	if call.err != nil {
		f.mu.Lock()
		if f.randomCalls[level.Name] == call {
			delete(f.randomCalls, level.Name)
		}
		f.mu.Unlock()
		return nil, call.err
	}
	return call.sums, nil
}

func (f *Framework) randomSummaries(ctx context.Context, level vscale.VRLevel) (map[fpu.Op]*dta.Summary, error) {
	out := make(map[fpu.Op]*dta.Summary, fpu.NumOps)
	for _, op := range fpu.Ops() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := f.RandomSummaryOpCtx(ctx, level, op)
		if err != nil {
			return nil, err
		}
		out[op] = s
	}
	return out, nil
}

// RandomSummaryOpCtx characterizes (or reloads from the artifact store)
// a single op's random-operand DTA summary at a level — one loop
// iteration of RandomSummariesCtx, exposed so a shard worker can compute
// exactly one (level, op) unit. The artifact key is identical to the one
// the full loop writes, so a prewarmed store makes the in-process loop a
// pure cache read.
func (f *Framework) RandomSummaryOpCtx(ctx context.Context, level vscale.VRLevel, op fpu.Op) (*dta.Summary, error) {
	scale := f.Volt.ScaleFor(level)
	n := f.Cfg.RandomOperands
	if op == fpu.DDiv || op == fpu.SDiv {
		n /= 8 // the iterative divider is ~50x slower to analyze
	}
	screened := f.screens(op, scale)
	if screened && !f.Cfg.Screen.Validate {
		return dta.ScreenedSummary(op, n), nil
	}
	opSeed := f.Cfg.Seed ^ 0x1A5EED ^ hashString("random/"+op.String())
	key := artifact.SummaryKey("random", op.String(), scale, opSeed, n, f.Cfg.Timing.Exact())
	s := new(dta.Summary)
	if !f.Cfg.Artifacts.Load(key, s) {
		pairs := randomPairs(op, n, prng.New(opSeed))
		recs, err := dta.AnalyzeStreamCtx(ctx, f.FPU, op, scale, f.Cfg.Timing, pairs, f.Cfg.Workers, f.Cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s = dta.Summarize(op, recs)
		f.noteSaveErr(f.Cfg.Artifacts.Save(key, s))
	}
	if err := f.validateScreen(screened, op, scale, s); err != nil {
		return nil, err
	}
	return s, nil
}

// screens evaluates (and counts) the slack screen for one op at a corner.
func (f *Framework) screens(op fpu.Op, scale float64) bool {
	if !f.Cfg.Screen.Enabled {
		return false
	}
	m := f.Cfg.Metrics
	m.Counter(dta.MetricScreenChecked).Inc()
	if !f.Cfg.Screen.Screens(f.FPU, op, scale) {
		return false
	}
	m.Counter(dta.MetricScreenedOps).Inc()
	return true
}

// validateScreen cross-checks a screened op's simulated summary in
// validation mode: the STA bound guarantees zero faulty instructions, so
// any fault the simulation found is a soundness bug worth failing the run
// over.
func (f *Framework) validateScreen(screened bool, op fpu.Op, scale float64, s *dta.Summary) error {
	if !screened || !f.Cfg.Screen.Validate {
		return nil
	}
	f.Cfg.Metrics.Counter(dta.MetricScreenValidated).Inc()
	if s.Faulty != 0 {
		return fmt.Errorf("core: STA screen predicted %s error-free at delay scale %.6g (slack %.1f ps >= guardband %.1f ps), but simulation found %d/%d faulty instructions",
			op, scale, dta.OpSlack(f.FPU, op, scale), f.Cfg.Screen.Guardband, s.Faulty, s.Total)
	}
	return nil
}

// WorkloadSummaries runs DTA over operands extracted from the workload
// trace — the WA model's characterization and Figure 8's data. The cache
// key folds in the trace's content fingerprint, so summaries from a
// different workload scale or trace seed can never be confused.
func (f *Framework) WorkloadSummaries(level vscale.VRLevel, tr *trace.Trace) map[fpu.Op]*dta.Summary {
	sums, _ := f.WorkloadSummariesCtx(context.Background(), level, tr)
	return sums
}

// WorkloadSummariesCtx is WorkloadSummaries with cooperative cancellation.
func (f *Framework) WorkloadSummariesCtx(ctx context.Context, level vscale.VRLevel, tr *trace.Trace) (map[fpu.Op]*dta.Summary, error) {
	out := make(map[fpu.Op]*dta.Summary, fpu.NumOps)
	for _, op := range fpu.Ops() {
		if len(tr.Pairs[op]) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := f.WorkloadSummaryOpCtx(ctx, level, tr, op)
		if err != nil {
			return nil, err
		}
		if s != nil {
			out[op] = s
		}
	}
	return out, nil
}

// WorkloadSummaryOpCtx characterizes (or reloads) a single op's
// workload-operand DTA summary — one loop iteration of
// WorkloadSummariesCtx, exposed for shard workers. It returns (nil, nil)
// when the trace carries no operands for op.
func (f *Framework) WorkloadSummaryOpCtx(ctx context.Context, level vscale.VRLevel, tr *trace.Trace, op fpu.Op) (*dta.Summary, error) {
	pool := tr.Pairs[op]
	if len(pool) == 0 {
		return nil, nil
	}
	scale := f.Volt.ScaleFor(level)
	source := fmt.Sprintf("wl:%s:%#x", tr.Workload, tr.Fingerprint())
	n := f.Cfg.WorkloadOperands
	if op == fpu.DDiv || op == fpu.SDiv {
		n /= 8
	}
	if n < 1 {
		n = 1
	}
	screened := f.screens(op, scale)
	if screened && !f.Cfg.Screen.Validate {
		return dta.ScreenedSummary(op, n), nil
	}
	opSeed := f.Cfg.Seed ^ 0x3A5EED ^ hashString(tr.Workload+"/"+op.String())
	key := artifact.SummaryKey(source, op.String(), scale, opSeed, n, f.Cfg.Timing.Exact())
	s := new(dta.Summary)
	if !f.Cfg.Artifacts.Load(key, s) {
		pairs := make([]dta.Pair, n)
		rs := prng.New(opSeed)
		for i := range pairs {
			pairs[i] = pool[rs.Intn(len(pool))]
		}
		recs, err := dta.AnalyzeStreamCtx(ctx, f.FPU, op, scale, f.Cfg.Timing, pairs, f.Cfg.Workers, f.Cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s = dta.Summarize(op, recs)
		f.noteSaveErr(f.Cfg.Artifacts.Save(key, s))
	}
	if err := f.validateScreen(screened, op, scale, s); err != nil {
		return nil, err
	}
	return s, nil
}

// CaptureTrace extracts the workload's operand trace (the model
// development phase's workload input).
func (f *Framework) CaptureTrace(w *workloads.Workload) (*trace.Trace, error) {
	return trace.Capture(w, maxInt(f.Cfg.WorkloadOperands, 4096), f.Cfg.Seed^0x7ACE)
}

// DevelopDA estimates the data-agnostic model: DTA over a mixed
// Monte-Carlo instruction sample drawn from the benchmarks' dynamic
// instruction distribution (instructions outside the FPU datapath cannot
// fail and dilute the ratio, as in the paper's fixed-ER estimate).
func (f *Framework) DevelopDA(level vscale.VRLevel, traces []*trace.Trace) (*errmodel.DAModel, error) {
	return f.DevelopDACtx(context.Background(), level, traces)
}

// DevelopDACtx is DevelopDA with cooperative cancellation.
func (f *Framework) DevelopDACtx(ctx context.Context, level vscale.VRLevel, traces []*trace.Trace) (*errmodel.DAModel, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: DA development needs workload traces")
	}
	var totalInstr int64
	var opCounts [fpu.NumOps]int64
	for _, tr := range traces {
		totalInstr += tr.TotalInstr
		for op, c := range tr.OpCounts {
			opCounts[op] += c
		}
	}
	if totalInstr == 0 {
		return nil, fmt.Errorf("core: empty traces")
	}
	sums, err := f.RandomSummariesCtx(ctx, level)
	if err != nil {
		return nil, err
	}
	// Expected faulty instructions in a DASample-sized mixed draw.
	var faulty float64
	for op, c := range opCounts {
		share := float64(c) / float64(totalInstr)
		faulty += share * float64(f.Cfg.DASample) * sums[fpu.Op(op)].ErrorRatio()
	}
	return errmodel.BuildDA(level.Name, int64(faulty+0.5), int64(f.Cfg.DASample)), nil
}

// DevelopIA builds the instruction-aware model at the level.
func (f *Framework) DevelopIA(level vscale.VRLevel) *errmodel.IAModel {
	m, _ := f.DevelopIACtx(context.Background(), level)
	return m
}

// DevelopIACtx is DevelopIA with cooperative cancellation.
func (f *Framework) DevelopIACtx(ctx context.Context, level vscale.VRLevel) (*errmodel.IAModel, error) {
	sums, err := f.RandomSummariesCtx(ctx, level)
	if err != nil {
		return nil, err
	}
	return errmodel.BuildIA(level.Name, sums), nil
}

// DevelopWA builds the workload-aware model for one benchmark trace.
func (f *Framework) DevelopWA(level vscale.VRLevel, tr *trace.Trace) *errmodel.WAModel {
	m, _ := f.DevelopWACtx(context.Background(), level, tr)
	return m
}

// DevelopWACtx is DevelopWA with cooperative cancellation.
func (f *Framework) DevelopWACtx(ctx context.Context, level vscale.VRLevel, tr *trace.Trace) (*errmodel.WAModel, error) {
	sums, err := f.WorkloadSummariesCtx(ctx, level, tr)
	if err != nil {
		return nil, err
	}
	return errmodel.BuildWA(level.Name, tr.Workload, sums), nil
}

// Evaluate runs the application-evaluation phase for one cell with the
// model injecting stochastically throughout each run.
func (f *Framework) Evaluate(w *workloads.Workload, m errmodel.Model, runs int) (*campaign.Result, error) {
	return f.evaluate(context.Background(), w, m, runs, false)
}

// EvaluateCtx is Evaluate with cooperative cancellation: workers stop
// picking up injection runs once ctx is done and the cell errors out
// instead of producing a partially sampled (statistically biased) result.
func (f *Framework) EvaluateCtx(ctx context.Context, w *workloads.Workload, m errmodel.Model, runs int) (*campaign.Result, error) {
	return f.evaluate(ctx, w, m, runs, false)
}

// EvaluateSingle runs the paper's statistical-fault-injection discipline:
// exactly one injected error per run (Section V's 1068-run methodology).
func (f *Framework) EvaluateSingle(w *workloads.Workload, m errmodel.Model, runs int) (*campaign.Result, error) {
	return f.evaluate(context.Background(), w, m, runs, true)
}

// EvaluateSingleCtx is EvaluateSingle with cooperative cancellation.
func (f *Framework) EvaluateSingleCtx(ctx context.Context, w *workloads.Workload, m errmodel.Model, runs int) (*campaign.Result, error) {
	return f.evaluate(ctx, w, m, runs, true)
}

func (f *Framework) evaluate(ctx context.Context, w *workloads.Workload, m errmodel.Model, runs int, single bool) (*campaign.Result, error) {
	return campaign.Run(campaign.Spec{
		Workload:        w,
		Model:           m,
		Runs:            runs,
		Seed:            f.Cfg.Seed ^ hashString(w.Name) ^ hashString(string(m.Kind())+m.Level()),
		Workers:         f.Cfg.Workers,
		SingleInjection: single,
		TimeoutFactor:   f.Cfg.TimeoutFactor,
		Metrics:         f.Cfg.Metrics,
		Context:         ctx,
	})
}

// hashString is a small FNV-1a for seed derivation.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
