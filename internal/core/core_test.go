package core

import (
	"testing"

	"teva/internal/campaign"
	"teva/internal/errmodel"
	"teva/internal/fpu"
	"teva/internal/trace"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// testFramework is shared across tests; characterization sizes are kept
// small for test speed.
var testFramework = mustFramework()

func mustFramework() *Framework {
	f, err := New(Config{
		Seed:             0xF00D,
		RandomOperands:   3000,
		WorkloadOperands: 1500,
		DASample:         100000,
	})
	if err != nil {
		panic(err)
	}
	return f
}

func TestFrameworkConstruction(t *testing.T) {
	f := testFramework
	if f.FPU == nil || f.Lib == nil {
		t.Fatal("substrate missing")
	}
	if f.FPU.CLK != fpu.DefaultCLK {
		t.Fatalf("clock %v", f.FPU.CLK)
	}
	if err := f.Volt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := DefaultConfig()
	if f.Cfg.RandomOperands != d.RandomOperands || f.Cfg.Seed != d.Seed {
		t.Fatalf("defaults not applied: %+v", f.Cfg)
	}
}

func TestRandomSummariesCachedAndShaped(t *testing.T) {
	if testing.Short() {
		t.Skip("random characterization")
	}
	f := testFramework
	s1 := f.RandomSummaries(vscale.VR20)
	s2 := f.RandomSummaries(vscale.VR20)
	if s1[fpu.DMul] != s2[fpu.DMul] {
		t.Fatal("summaries not cached")
	}
	if s1[fpu.DMul].ErrorRatio() == 0 {
		t.Fatal("fp-mul.d must show VR20 errors")
	}
	if s1[fpu.SI2F].ErrorRatio() != 0 {
		t.Fatal("single-precision conversion must be error-free")
	}
}

// capturedTrace memoizes the is trace for the end-to-end tests.
var capturedTrace *trace.Trace

func isTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if capturedTrace != nil {
		return capturedTrace
	}
	w, err := workloads.ByName("is", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := testFramework.CaptureTrace(w)
	if err != nil {
		t.Fatal(err)
	}
	capturedTrace = tr
	return tr
}

func TestDevelopDA(t *testing.T) {
	f := testFramework
	tr := isTrace(t)
	da, err := f.DevelopDA(vscale.VR20, []*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if da.Kind() != errmodel.DA || da.Level() != "VR20" {
		t.Fatal("DA metadata")
	}
	// is runs plenty of fp-mul.d, which fails at VR20, so the mixed
	// ratio must be positive but heavily diluted by integer work.
	mulER := f.RandomSummaries(vscale.VR20)[fpu.DMul].ErrorRatio()
	if da.ER <= 0 || da.ER >= mulER {
		t.Fatalf("DA ER %v not in (0, %v)", da.ER, mulER)
	}
	if _, err := f.DevelopDA(vscale.VR20, nil); err == nil {
		t.Fatal("empty trace list must error")
	}
}

func TestDevelopIA(t *testing.T) {
	ia := testFramework.DevelopIA(vscale.VR20)
	if ia.Level() != "VR20" {
		t.Fatal("level")
	}
	if ia.PerOp[fpu.DMul].ER == 0 {
		t.Fatal("IA must characterize fp-mul.d errors at VR20")
	}
	if ia.PerOp[fpu.SI2F].ER != 0 {
		t.Fatal("IA must see no errors for i2f.s")
	}
	// Conditional bit probabilities live in [0,1] and include a set bit.
	probs := ia.PerOp[fpu.DMul].BitProb
	var anyPos bool
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("bit probability %v out of range", p)
		}
		anyPos = anyPos || p > 0
	}
	if !anyPos {
		t.Fatal("no error-prone bits recorded")
	}
}

func TestDevelopWA(t *testing.T) {
	f := testFramework
	tr := isTrace(t)
	wa := f.DevelopWA(vscale.VR20, tr)
	if wa.Workload != "is" || wa.Level() != "VR20" {
		t.Fatal("WA metadata")
	}
	// is's randlc multiplications operate on large integral doubles whose
	// products excite the multiplier; the model must capture a workload-
	// specific ratio (positive, different from the IA random-operand one).
	ia := f.DevelopIA(vscale.VR20)
	waER := wa.PerOp[fpu.DMul].ER
	iaER := ia.PerOp[fpu.DMul].ER
	if waER == 0 {
		t.Fatal("WA fp-mul.d ER should be nonzero for is at VR20")
	}
	if waER == iaER {
		t.Fatal("WA and IA ratios should differ (workload dependence)")
	}
	if len(wa.PerOp[fpu.DMul].Masks) == 0 {
		t.Fatal("WA mask pool empty")
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign")
	}
	f := testFramework
	w, err := workloads.ByName("is", workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	tr := isTrace(t)
	wa := f.DevelopWA(vscale.VR20, tr)
	res, err := f.Evaluate(w, wa, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 24 {
		t.Fatalf("runs %d", res.Runs)
	}
	var total int
	for _, c := range res.Outcomes {
		total += c
	}
	if total != 24 {
		t.Fatalf("outcomes don't sum to runs: %v", res.Outcomes)
	}
	if res.RunsWithInjection == 0 {
		t.Fatal("VR20 WA campaign on is should inject errors")
	}
	if res.Model != errmodel.WA || res.Level != "VR20" || res.Workload != "is" {
		t.Fatalf("result identity: %+v", res)
	}
	_ = campaign.Masked
}
