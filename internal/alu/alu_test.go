package alu

import (
	"testing"

	"teva/internal/cell"
	"teva/internal/logicsim"
	"teva/internal/prng"
)

var unit = mustUnit()

func mustUnit() *Unit {
	u, err := New(cell.Default(), 0xA10)
	if err != nil {
		panic(err)
	}
	return u
}

// ALU function codes as wired in buildALU.
const (
	fnAdd = 0b000
	fnSub = 0b001
	fnAnd = 0b010
	fnXor = 0b100
	fnOr  = 0b110
	fnSlt = 0b111
)

func TestALUFunctions(t *testing.T) {
	sim := logicsim.New(unit.ALU.Compiled())
	in := make([]bool, 67)
	src := prng.New(3)
	run := func(x, y uint32, fn uint64) uint32 {
		logicsim.PackInputs(in, 0, 32, uint64(x))
		logicsim.PackInputs(in, 32, 32, uint64(y))
		logicsim.PackInputs(in, 64, 3, fn)
		sim.Run(in)
		var out uint32
		for i, net := range unit.ALU.Outputs()[:32] {
			if sim.Value(net) {
				out |= 1 << uint(i)
			}
		}
		return out
	}
	for i := 0; i < 3000; i++ {
		x, y := src.Uint32(), src.Uint32()
		if got := run(x, y, fnAdd); got != x+y {
			t.Fatalf("add(%d,%d) = %d", x, y, got)
		}
		if got := run(x, y, fnSub); got != x-y {
			t.Fatalf("sub(%d,%d) = %d", x, y, got)
		}
		if got := run(x, y, fnAnd); got != x&y {
			t.Fatalf("and")
		}
		if got := run(x, y, fnOr); got != x|y {
			t.Fatalf("or")
		}
		if got := run(x, y, fnXor); got != x^y {
			t.Fatalf("xor")
		}
		want := uint32(0)
		if int32(x) < int32(y) {
			want = 1
		}
		if got := run(x, y, fnSlt); got != want {
			t.Fatalf("slt(%d,%d) = %d want %d", int32(x), int32(y), got, want)
		}
	}
}

func TestShifter(t *testing.T) {
	sim := logicsim.New(unit.Shifter.Compiled())
	in := make([]bool, 39)
	src := prng.New(5)
	run := func(x uint32, amt uint64, arith, left bool) uint32 {
		logicsim.PackInputs(in, 0, 32, uint64(x))
		logicsim.PackInputs(in, 32, 5, amt)
		in[37] = arith
		in[38] = left
		sim.Run(in)
		var out uint32
		for i, net := range unit.Shifter.Outputs() {
			if sim.Value(net) {
				out |= 1 << uint(i)
			}
		}
		return out
	}
	for i := 0; i < 3000; i++ {
		x := src.Uint32()
		amt := uint64(src.Intn(32))
		if got := run(x, amt, false, false); got != x>>amt {
			t.Fatalf("srl(%d,%d) = %d", x, amt, got)
		}
		if got := run(x, amt, true, false); got != uint32(int32(x)>>amt) {
			t.Fatalf("sra(%d,%d) = %d", int32(x), amt, got)
		}
		if got := run(x, amt, false, true); got != x<<amt {
			t.Fatalf("sll(%d,%d) = %d", x, amt, got)
		}
	}
}

func TestAGU(t *testing.T) {
	sim := logicsim.New(unit.AGU.Compiled())
	in := make([]bool, 64)
	src := prng.New(7)
	for i := 0; i < 3000; i++ {
		base, off := src.Uint32(), src.Uint32()
		logicsim.PackInputs(in, 0, 32, uint64(base))
		logicsim.PackInputs(in, 32, 32, uint64(off))
		sim.Run(in)
		var out uint32
		for b, net := range unit.AGU.Outputs() {
			if sim.Value(net) {
				out |= 1 << uint(b)
			}
		}
		if out != base+off {
			t.Fatalf("agu(%d,%d) = %d", base, off, out)
		}
	}
}

func TestIntegerPathsShort(t *testing.T) {
	// Figure 4's premise: every integer-side path has generous slack at
	// the FPU-determined clock; even the VR20 delay inflation leaves it
	// safe. (4500/1.256 ≈ 3583 ps.)
	if d := unit.WorstDelay(); d >= 3500 {
		t.Fatalf("integer worst delay %v too close to the FPU clock", d)
	}
	if unit.NumGates() == 0 {
		t.Fatal("no gates")
	}
	if len(unit.StageReports()) != 3 {
		t.Fatal("expected 3 integer stage reports")
	}
}
