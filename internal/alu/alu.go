// Package alu generates the gate-level integer execution units of the
// core: the 32-bit ALU, the barrel shifter, and the address-generation
// adder. Their static timing sits far above the FPU's — the contrast
// behind the paper's Figure 4, which shows that only FPU-related paths
// populate the low-slack tail of the placed design — and the reason this
// study (like the paper's) restricts error modelling to the
// floating-point subsystem.
package alu

import (
	"teva/internal/cell"
	"teva/internal/netlist"
	"teva/internal/sta"
)

// Unit bundles the integer-side netlists.
type Unit struct {
	// ALU is the arithmetic/logic stage (add/sub/and/or/xor/slt).
	ALU *netlist.Netlist
	// Shifter is the 32-bit barrel shifter.
	Shifter *netlist.Netlist
	// AGU is the address-generation adder (base + offset).
	AGU *netlist.Netlist
	lib *cell.Library
}

// New generates the integer units with the given placement seed.
func New(lib *cell.Library, seed uint64) (*Unit, error) {
	aluN, err := buildALU(lib, seed)
	if err != nil {
		return nil, err
	}
	sh, err := buildShifter(lib, seed+1)
	if err != nil {
		return nil, err
	}
	agu, err := buildAGU(lib, seed+2)
	if err != nil {
		return nil, err
	}
	return &Unit{ALU: aluN, Shifter: sh, AGU: agu, lib: lib}, nil
}

// buildALU emits a 32-bit ALU: a fast hybrid adder/subtractor plus the
// logic ops, selected by a 3-bit function code.
func buildALU(lib *cell.Library, seed uint64) (*netlist.Netlist, error) {
	b := netlist.NewBuilder("alu/exec", lib, seed)
	b.SetUnit("alu/exec")
	x := b.Input(32)
	y := b.Input(32)
	fn := b.Input(3)
	sub := fn[0]
	sum, cout := b.HybridAddSub(x, y, sub, 8)
	andB := b.AndBus(x, y)
	orB := b.OrBus(x, y)
	xorB := b.XorBus(x, y)
	// slt (valid when fn selects subtraction): the difference's sign
	// corrected for signed overflow.
	diffSign := b.FXor(x[31], y[31])
	ovf := b.FAnd(diffSign, b.FXor(x[31], sum[31]))
	lt := b.FXor(sum[31], ovf)
	slt := append(netlist.Bus{lt}, b.Zeros(31)...)
	r := b.FMuxBus(fn[1], sum, andB)
	r2 := b.FMuxBus(fn[1], xorB, orB)
	r = b.FMuxBus(fn[2], r, r2)
	r = b.FMuxBus(b.FAnd(fn[2], b.FAnd(fn[1], fn[0])), r, slt)
	b.Output(append(r, cout))
	return b.Build()
}

// buildShifter emits the 32-bit barrel shifter (logical/arithmetic).
func buildShifter(lib *cell.Library, seed uint64) (*netlist.Netlist, error) {
	b := netlist.NewBuilder("alu/shift", lib, seed)
	b.SetUnit("alu/shift")
	x := b.Input(32)
	amt := b.Input(5)
	arith := b.InputNet()
	fill := b.FAnd(arith, x[31])
	sr := b.ShiftRight(x, amt, fill)
	sl := b.ShiftLeft(x, amt)
	dir := b.InputNet()
	b.Output(b.FMuxBus(dir, sr, sl))
	return b.Build()
}

// buildAGU emits the load/store address adder.
func buildAGU(lib *cell.Library, seed uint64) (*netlist.Netlist, error) {
	b := netlist.NewBuilder("alu/agu", lib, seed)
	b.SetUnit("alu/agu")
	base := b.Input(32)
	off := b.Input(32)
	sum := b.Sum(b.HybridAdder(base, off, netlist.Const0, 8))
	b.Output(sum)
	return b.Build()
}

// StageReports runs STA on all integer units.
func (u *Unit) StageReports() []*sta.Report {
	return []*sta.Report{
		sta.Analyze(u.ALU.Compiled(), u.lib.ClockToQ, u.lib.Setup),
		sta.Analyze(u.Shifter.Compiled(), u.lib.ClockToQ, u.lib.Setup),
		sta.Analyze(u.AGU.Compiled(), u.lib.ClockToQ, u.lib.Setup),
	}
}

// WorstDelay returns the slowest integer-side path delay.
func (u *Unit) WorstDelay() float64 {
	var worst float64
	for _, r := range u.StageReports() {
		if r.WorstDelay > worst {
			worst = r.WorstDelay
		}
	}
	return worst
}

// NumGates returns the integer units' total gate count.
func (u *Unit) NumGates() int {
	return u.ALU.NumGates() + u.Shifter.NumGates() + u.AGU.NumGates()
}
