package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineHygiene flags `go` statements launched from a function with no
// join mechanism at all: no sync.WaitGroup.Add, no channel operation
// (send, receive, close, range-over-channel) and no Wait call anywhere in
// the enclosing function. Such a goroutine cannot be waited for — in the
// dta/campaign/experiments worker pools that means results silently
// missing from a shard, or work outliving the test that spawned it.
//
// The check is evidence-based, not a proof: a function that manipulates a
// WaitGroup or channels is assumed to join its goroutines (the race
// detector covers the rest); a function with neither cannot possibly
// join, and is reported.
func GoroutineHygiene() *Analyzer {
	return &Analyzer{
		Name: "goroutinehygiene",
		Doc:  "go statement without any WaitGroup/channel join mechanism in scope",
		Run:  runGoroutineHygiene,
	}
}

func runGoroutineHygiene(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			fn := enclosingFunc(stack)
			body := funcBody(fn)
			if body == nil || hasJoinEvidence(p, body) {
				return
			}
			out = append(out, p.finding("goroutinehygiene", gs,
				"goroutine launched without a WaitGroup.Add or any channel join in the enclosing function"))
		})
	}
	return out
}

// hasJoinEvidence scans a function body for any construct that could join
// or synchronize a goroutine.
func hasJoinEvidence(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, n, "close") {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Wait":
					found = true
				case "Add", "Done":
					if isWaitGroup(p, sel.X) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether the expression is a sync.WaitGroup (or
// pointer to one).
func isWaitGroup(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
