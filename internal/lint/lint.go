// Package lint is TEVA's in-repo static-analysis suite. It machine-checks
// the invariants the Go compiler cannot: the byte-for-byte reproducibility
// guarantee of the experiment pipeline (no unordered map iteration feeding
// ordered output, no unseeded randomness or wall-clock reads inside
// simulation packages), exhaustive opcode dispatch in every engine, no
// exact float equality outside approved comparators, and joined goroutines
// in the worker pools. The suite is built purely on the standard library
// (go/parser, go/ast, go/types) so the repo keeps its no-external-deps
// rule, and runs as `go run ./cmd/teva-vet ./...` (wired into CI).
//
// Findings can be suppressed case by case with a trailing or preceding
// comment:
//
//	//teva:allow <analyzer> [<analyzer>...]  -- optional justification
//
// which silences the named analyzers on that line and the next.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the file path (relative to the module root when possible).
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violated invariant.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one domain check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in reports and //teva:allow comments.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run reports the package's findings (unsuppressed; the driver
	// filters //teva:allow afterwards).
	Run func(p *Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		OpcodeSwitch(),
		SimPurity(),
		FloatEq(),
		GoroutineHygiene(),
		ObsNames(),
		PanicBarrier(),
		SampleRetain(),
		DetFlow(),
		CtxFlow(),
		HotAlloc(),
	}
}

// Package is a loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the import path ("teva/internal/dta").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// Prog is the whole-program summary database shared by the
	// interprocedural analyzers (detflow, ctxflow, hotalloc). Drivers set
	// it once via BuildProgram over every loaded package; when nil, the
	// analyzers fall back to a single-package program.
	Prog *Program
}

// posn converts a node position into a Finding location.
func (p *Package) posn(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// finding builds a Finding at a node.
func (p *Package) finding(an string, n ast.Node, format string, args ...any) Finding {
	pos := p.posn(n)
	return Finding{
		Analyzer: an,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allowDirective is the suppression comment prefix.
const allowDirective = "teva:allow"

// allows maps file -> line -> analyzer names allowed on that line.
type allows map[string]map[int]map[string]bool

// buildAllows scans every comment of the package for //teva:allow
// directives. A directive covers its own line and the line after it, so
// both trailing and preceding placements work.
func buildAllows(p *Package) allows {
	a := make(allows)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, allowDirective)
				// Cut an optional trailing justification after "--".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = rest[:i]
				}
				pos := p.Fset.Position(c.Pos())
				byLine := a[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					a[pos.Filename] = byLine
				}
				for _, name := range strings.Fields(rest) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return a
}

func (a allows) allowed(f Finding) bool {
	byLine := a[f.File]
	if byLine == nil {
		return false
	}
	return byLine[f.Line][f.Analyzer]
}

// RunAnalyzers applies the analyzers to the package and returns the
// surviving (unsuppressed) findings, deduplicated and in stable order.
func RunAnalyzers(p *Package, analyzers []*Analyzer) []Finding {
	sup := buildAllows(p)
	var out []Finding
	for _, an := range analyzers {
		for _, f := range an.Run(p) {
			if !sup.allowed(f) {
				out = append(out, f)
			}
		}
	}
	return SortFindings(out)
}

// SortFindings orders findings by (file, line, col, analyzer, message) and
// drops exact duplicates, so vet output is byte-identical regardless of
// loader parallelism or a file reaching the driver through more than one
// package variant. The slice is sorted in place and the (possibly shorter)
// deduplicated prefix returned.
func SortFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// inspectWithStack walks the file like ast.Inspect while maintaining the
// ancestor stack (stack[len-1] is the current node's parent).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost function declaration or literal in
// the stack, or nil when the node is at file scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// funcBody returns the body of a node returned by enclosingFunc.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// isFloat reports whether t is (or is an alias/named wrapper of) a
// floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent unwraps selectors/indexes/stars/parens down to the leftmost
// identifier: a.b[i].c -> a.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// pkgFunc reports whether the call expression invokes pkgPath.name (via a
// plain or aliased package qualifier).
func pkgFunc(p *Package, call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}
