package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expect is one `// want <analyzer>` marker parsed from a fixture.
type expect struct {
	line     int
	analyzer string
}

func (e expect) String() string { return fmt.Sprintf("line %d: %s", e.line, e.analyzer) }

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	return NewLoader(root)
}

func loadFixture(t *testing.T, l *Loader, fixture, asPath string) *Package {
	t.Helper()
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", fixture)
	p, err := l.CheckDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", fixture, asPath, err)
	}
	return p
}

// wantMarkers scans the fixture's comments for `// want <analyzer>`
// expectations.
func wantMarkers(p *Package) []expect {
	var out []expect
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, an := range strings.Fields(strings.TrimPrefix(text, "want ")) {
					out = append(out, expect{line: line, analyzer: an})
				}
			}
		}
	}
	return out
}

func sortExpects(es []expect) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].line != es[j].line {
			return es[i].line < es[j].line
		}
		return es[i].analyzer < es[j].analyzer
	})
}

// checkFixture asserts that the analyzer suite reports exactly the marked
// lines of the fixture — true positives fire, true negatives stay silent,
// and //teva:allow-suppressed lines are filtered by the driver.
func checkFixture(t *testing.T, p *Package) {
	t.Helper()
	checkFixtureWith(t, p, All())
}

// checkFixtureWith is checkFixture restricted to an analyzer subset —
// interprocedural fixtures deliberately contain violations of other
// analyzers (a detflow fixture is full of time.Now calls simpurity would
// also flag), so their markers describe a single analyzer's output.
func checkFixtureWith(t *testing.T, p *Package, analyzers []*Analyzer) {
	t.Helper()
	want := wantMarkers(p)
	var got []expect
	for _, f := range RunAnalyzers(p, analyzers) {
		got = append(got, expect{line: f.Line, analyzer: f.Analyzer})
	}
	sortExpects(want)
	sortExpects(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("findings mismatch for %s\n got: %v\nwant: %v", p.Path, got, want)
		for _, f := range RunAnalyzers(p, analyzers) {
			t.Logf("  finding: %s", f)
		}
	}
}

func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		asPath  string
	}{
		// maporder, floateq and goroutinehygiene are path-independent;
		// simpurity must be loaded under an internal/ path for its
		// positives to fire; opcodeswitch needs the real cell import.
		{"maporder", "teva/internal/lintfixture/maporder"},
		{"opcodeswitch", "teva/internal/lintfixture/opcodeswitch"},
		{"simpurity", "teva/internal/lintfixture/simpurity"},
		{"floateq", "teva/internal/lintfixture/floateq"},
		{"goroutine", "teva/internal/lintfixture/goroutine"},
		{"obsnames", "teva/internal/lintfixture/obsnames"},
		// panicbarrier is path-gated: positives fire only under the
		// guarded worker-pool packages.
		{"panicbarrier", "teva/internal/experiments/lintfixture"},
		// sampleretain needs the real timingsim import for its types.
		{"sampleretain", "teva/internal/lintfixture/sampleretain"},
	}
	l := newTestLoader(t)
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			checkFixture(t, loadFixture(t, l, tc.fixture, tc.asPath))
		})
	}
}

// TestInterproceduralFixtures runs each dataflow analyzer alone over its
// fixture: the markers are exact (true positives fire, the clean idioms
// and //teva:allow cases stay silent).
func TestInterproceduralFixtures(t *testing.T) {
	cases := []struct {
		fixture  string
		asPath   string
		analyzer *Analyzer
	}{
		// detflow's sinks are gated to internal/ packages.
		{"detflow", "teva/internal/lintfixture/detflow", DetFlow()},
		// ctxflow is gated to the cancellation-threaded packages.
		{"ctxflow", "teva/internal/campaign/lintfixture", CtxFlow()},
		// hotalloc keys off //teva:hotpath, not the import path.
		{"hotalloc", "teva/internal/lintfixture/hotalloc", HotAlloc()},
	}
	l := newTestLoader(t)
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			p := loadFixture(t, l, tc.fixture, tc.asPath)
			checkFixtureWith(t, p, []*Analyzer{tc.analyzer})
		})
	}
}

// TestInterproceduralPathGates loads the gated dataflow fixtures under
// exempt import paths: every marker line must stay silent.
func TestInterproceduralPathGates(t *testing.T) {
	l := newTestLoader(t)
	cases := []struct {
		fixture  string
		asPath   string
		analyzer *Analyzer
	}{
		// cmd/ binaries own their progress output.
		{"detflow", "teva/cmd/lintfixture", DetFlow()},
		// ctxflow fires only inside the threaded packages.
		{"ctxflow", "teva/internal/lintfixture/ctxflow", CtxFlow()},
	}
	for _, tc := range cases {
		t.Run(tc.fixture+"/"+tc.asPath, func(t *testing.T) {
			p := loadFixture(t, l, tc.fixture, tc.asPath)
			if got := RunAnalyzers(p, []*Analyzer{tc.analyzer}); len(got) != 0 {
				t.Errorf("%s under exempt path %s: want 0 findings, got %d: %v",
					tc.analyzer.Name, tc.asPath, len(got), got)
			}
		})
	}
}

// TestHotClosureCrossesPackages asserts the summary engine's whole-repo
// reach: the //teva:hotpath root on dta.Analyzer.AnalyzeBatch must pull
// logicsim.WideSim.Outputs (called by goldenBatch two packages away) into
// the hot closure.
func TestHotClosureCrossesPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks several packages; skipped in -short")
	}
	l := newTestLoader(t)
	if _, err := l.LoadDir(filepath.Join(l.Root, "internal", "dta")); err != nil {
		t.Fatalf("loading internal/dta: %v", err)
	}
	prog := BuildProgram(l.Loaded())
	var outputs *FuncInfo
	for _, fi := range prog.Funcs {
		if fi.Display() == "logicsim.WideSim.Outputs" {
			outputs = fi
		}
	}
	if outputs == nil {
		t.Fatal("no summary for logicsim.WideSim.Outputs")
	}
	if outputs.HotFrom == nil {
		t.Fatal("logicsim.WideSim.Outputs is not in any hot closure; want root dta.Analyzer.AnalyzeBatch")
	}
	if got := outputs.HotFrom.Display(); got != "dta.Analyzer.AnalyzeBatch" {
		t.Errorf("hot root = %s, want dta.Analyzer.AnalyzeBatch", got)
	}
}

// TestSortFindingsDedupe covers the stable-output contract: exact
// duplicates (a file reaching the driver through two package variants)
// collapse, and order is (file, line, col, analyzer, message) regardless
// of input order.
func TestSortFindingsDedupe(t *testing.T) {
	a := Finding{Analyzer: "x", File: "a.go", Line: 3, Col: 1, Message: "m"}
	b := Finding{Analyzer: "x", File: "a.go", Line: 3, Col: 1, Message: "n"}
	c := Finding{Analyzer: "w", File: "a.go", Line: 3, Col: 1, Message: "m"}
	d := Finding{Analyzer: "x", File: "b.go", Line: 1, Col: 1, Message: "m"}
	got := SortFindings([]Finding{d, b, a, c, a, d, b})
	want := []Finding{c, a, b, d}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SortFindings:\n got: %v\nwant: %v", got, want)
	}
}

// TestSimPurityAllowlist loads the simpurity fixture under exempt import
// paths: cmd/ binaries and internal/prng may read clocks, env and
// math/rand, so the same file that produces five findings under internal/
// must produce none here.
func TestSimPurityAllowlist(t *testing.T) {
	for _, asPath := range []string{
		"teva/cmd/lintfixture",
		"teva/internal/prng/lintfixture",
	} {
		t.Run(asPath, func(t *testing.T) {
			l := newTestLoader(t)
			p := loadFixture(t, l, "simpurity", asPath)
			if got := RunAnalyzers(p, []*Analyzer{SimPurity()}); len(got) != 0 {
				t.Errorf("simpurity under exempt path %s: want 0 findings, got %d: %v", asPath, len(got), got)
			}
		})
	}
}

// TestPanicBarrierPathGate loads the panicbarrier fixture under paths
// outside the guarded worker-pool packages: the same raw go statements
// that fire under internal/experiments must stay silent everywhere else
// (and under internal/campaign they must fire again).
func TestPanicBarrierPathGate(t *testing.T) {
	l := newTestLoader(t)
	for asPath, wantFindings := range map[string]int{
		"teva/internal/dta/lintfixture":      0,
		"teva/internal/campaign/lintfixture": 2,
		"teva/internal/sta/lintfixture":      2,
		"teva/internal/shard/lintfixture":    2,
	} {
		t.Run(asPath, func(t *testing.T) {
			p := loadFixture(t, l, "panicbarrier", asPath)
			got := RunAnalyzers(p, []*Analyzer{PanicBarrier()})
			if len(got) != wantFindings {
				t.Errorf("panicbarrier under %s: want %d findings, got %d: %v",
					asPath, wantFindings, len(got), got)
			}
		})
	}
}

// TestAllowDirectiveParsing unit-tests the suppression machinery: multiple
// analyzers per directive, justification stripping, and the
// line-plus-next coverage window.
func TestAllowDirectiveParsing(t *testing.T) {
	src := `package x

func f() {
	_ = 1 //teva:allow floateq maporder -- both silenced here
	_ = 2
	_ = 3
	//teva:allow simpurity
	_ = 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	a := buildAllows(&Package{Fset: fset, Files: []*ast.File{f}})

	tests := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "floateq", true},    // directive's own line
		{4, "maporder", true},   // second analyzer in one directive
		{5, "floateq", true},    // next line is covered too
		{6, "floateq", false},   // two lines below is not
		{4, "simpurity", false}, /* other analyzers stay live */
		{7, "simpurity", true},  // preceding-line placement, own line
		{8, "simpurity", true},  // preceding-line placement, next line
	}
	for _, tc := range tests {
		got := a.allowed(Finding{File: "allow.go", Line: tc.line, Analyzer: tc.analyzer})
		if got != tc.want {
			t.Errorf("allowed(line %d, %s) = %v, want %v", tc.line, tc.analyzer, got, tc.want)
		}
	}
}

// TestExpandSkipsTestdata ensures the driver never loads analyzer fixtures
// (which contain deliberate violations) when expanding ./... patterns.
func TestExpandSkipsTestdata(t *testing.T) {
	l := newTestLoader(t)
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) returned no package directories")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand(./...) included fixture directory %s", d)
		}
	}
}

// TestRepoIsClean runs the full analyzer suite over every package of the
// module — the in-test twin of the `teva-vet ./...` CI gate. Any new
// unsuppressed violation of a determinism/exhaustiveness/concurrency
// invariant fails this test.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	l := newTestLoader(t)
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll(dirs, 8)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	// Mirror the CLI: one summary database over everything loaded, so the
	// interprocedural analyzers see cross-package chains.
	prog := BuildProgram(l.Loaded())
	for _, p := range pkgs {
		p.Prog = prog
		for _, f := range RunAnalyzers(p, All()) {
			t.Errorf("%s", l.RelFile(f))
		}
	}
}
