package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetFlow is the interprocedural determinism-taint analyzer: it reports
// paths from nondeterminism sources (wall clock, environment, unseeded
// math/rand, map-iteration order escaping a function, goroutine
// completion order) into determinism sinks — artifact payloads, CSV and
// stdout/report writers, and obs metric updates. The byte-identical
// output guarantee (DESIGN.md) holds only if every value written through
// those sinks is a pure function of inputs and seeds; this analyzer is
// the compile-time twin of the chaos byte-diff tests.
//
// Function summaries make the check whole-repo: a sink argument computed
// by experiments code that (through campaign and dta) ends in time.Now is
// reported with the full call chain as a witness. cmd/ binaries are
// exempt — progress logs and exit summaries legitimately read the clock;
// the experiment data they orchestrate must not.
func DetFlow() *Analyzer {
	return &Analyzer{
		Name: "detflow",
		Doc:  "nondeterministic values must not reach artifact payloads, CSV/report writers, or obs metrics",
		Run:  runDetFlow,
	}
}

// detSink describes one determinism sink: which arguments carry data that
// must be deterministic.
type detSink struct {
	desc string
	// firstArg is the index of the first data argument (1 skips an
	// io.Writer or key argument).
	firstArg int
}

// sinkFor classifies a resolved call as a determinism sink, or returns
// nil. The table deliberately names concrete write paths rather than all
// of io: a tainted value is only a determinism bug once it reaches
// persisted or compared output.
func sinkFor(c Call) *detSink {
	if c.Callee == nil || c.Callee.Pkg() == nil {
		return nil
	}
	pkg, name := c.Callee.Pkg().Path(), c.Callee.Name()
	switch pkg {
	case "teva/internal/artifact":
		if name == "Save" {
			return &detSink{desc: "artifact payload", firstArg: 1}
		}
	case "encoding/csv":
		if name == "Write" || name == "WriteAll" {
			return &detSink{desc: "CSV output", firstArg: 0}
		}
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			return &detSink{desc: "report writer", firstArg: 1}
		case "Print", "Printf", "Println":
			return &detSink{desc: "stdout", firstArg: 0}
		}
	case "teva/internal/obs":
		switch name {
		case "Add", "Set", "Observe":
			return &detSink{desc: "obs metric", firstArg: 0}
		}
	}
	return nil
}

func runDetFlow(p *Package) []Finding {
	// Only experiment-side packages carry the determinism guarantee;
	// cmd/ binaries own their progress output.
	if !strings.HasPrefix(p.Path, "teva/internal/") {
		return nil
	}
	prog := program(p)
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			fi := prog.info(obj)
			if fi == nil {
				continue
			}
			out = append(out, detFlowFunc(p, prog, fi)...)
		}
	}
	return out
}

// detFlowFunc checks one function: taint local variables from their
// assignments (flow-insensitive fixed point), then test every sink
// argument for a tainted subexpression.
func detFlowFunc(p *Package, prog *Program, fi *FuncInfo) []Finding {
	tainted := taintedVars(p, prog, fi)
	var out []Finding
	for _, c := range fi.Calls {
		sink := sinkFor(c)
		if sink == nil {
			continue
		}
		args := c.Site.Args
		if sink.firstArg >= len(args) {
			continue
		}
		for _, arg := range args[sink.firstArg:] {
			if reason := exprTaint(p, prog, tainted, arg); reason != "" {
				out = append(out, p.finding("detflow", arg,
					"nondeterministic value reaches %s: %s", sink.desc, reason))
			}
		}
	}
	return out
}

// taintedVars computes the function's tainted local variables: objects
// assigned (directly or transitively) from a nondeterminism source or a
// tainted callee. Flow-insensitive — an assignment anywhere in the body
// taints the variable everywhere — which over-approximates re-assigned
// variables but never misses a flow.
func taintedVars(p *Package, prog *Program, fi *FuncInfo) map[types.Object]string {
	tv := make(map[types.Object]string)
	mark := func(e ast.Expr, reason string) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return false
		}
		if _, done := tv[obj]; done {
			return false
		}
		tv[obj] = reason
		return true
	}
	// Seed: a slice appended in map-iteration or channel-completion order
	// (the function's structural sources) is tainted from birth.
	for _, s := range fi.Sources {
		call, ok := s.Node.(*ast.CallExpr)
		if !ok || !isBuiltin(p, call, "append") || len(call.Args) == 0 {
			continue
		}
		if target := appendTarget(call); target != nil {
			mark(target, s.Desc)
		}
	}
	// len(body assignments) bounds the chain length; 64 rounds is far past
	// any real function and keeps pathological fixtures terminating.
	for round := 0; round < 64; round++ {
		changed := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// v, err := f(): one tainted result taints all lhs.
					if reason := exprTaint(p, prog, tv, n.Rhs[0]); reason != "" {
						for _, lhs := range n.Lhs {
							changed = mark(lhs, reason) || changed
						}
					}
					return true
				}
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if reason := exprTaint(p, prog, tv, rhs); reason != "" {
						changed = mark(n.Lhs[i], reason) || changed
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) > 1 {
					if reason := exprTaint(p, prog, tv, n.Values[0]); reason != "" {
						for _, name := range n.Names {
							changed = mark(name, reason) || changed
						}
					}
					return true
				}
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					if reason := exprTaint(p, prog, tv, v); reason != "" {
						changed = mark(n.Names[i], reason) || changed
					}
				}
			case *ast.RangeStmt:
				// Ranging over a tainted collection taints key and value.
				if reason := exprTaint(p, prog, tv, n.X); reason != "" {
					if n.Key != nil {
						changed = mark(n.Key, reason) || changed
					}
					if n.Value != nil {
						changed = mark(n.Value, reason) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return tv
		}
	}
	return tv
}

// exprTaint reports why the expression is tainted ("" when clean): it
// contains a call to a nondeterminism source, a call to a transitively
// tainted module function, or a use of a tainted variable.
func exprTaint(p *Package, prog *Program, tv map[types.Object]string, e ast.Expr) string {
	reason := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			c := resolveCall(p, n)
			if src := sourceCall(c); src != "" {
				reason = src
				return false
			}
			if fi := prog.info(c.Callee); fi != nil && fi.Taint != nil {
				reason = fi.chain(fi.Taint)
				return false
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil {
				if r, ok := tv[obj]; ok {
					reason = "tainted variable " + n.Name + " (" + r + ")"
					return false
				}
			}
		case *ast.FuncLit:
			// A literal's body runs when called, not when passed; its
			// sinks were already checked as part of the enclosing walk.
			return false
		}
		return true
	})
	return reason
}
