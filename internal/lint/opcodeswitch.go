package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// OpcodeSwitch flags a `switch` over cell.OpCode that is neither
// exhaustive over the declared opcode constants nor guarded by a
// panicking default. After the compiled-IR refactor every engine
// dispatches on OpCode; a missed case is a silently wrong simulation, so
// each dispatch switch must either list every valid opcode or fail loudly
// on anything unexpected.
//
// The required constant set is derived from the cell package itself: all
// package-level OpCode constants except the invalid zero value (OpNone)
// and counting sentinels (Num... names), so adding an opcode immediately
// flags every engine that does not yet handle it.
func OpcodeSwitch() *Analyzer {
	return &Analyzer{
		Name: "opcodeswitch",
		Doc:  "non-exhaustive switch over cell.OpCode without a panicking default",
		Run:  runOpcodeSwitch,
	}
}

func runOpcodeSwitch(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := p.Info.TypeOf(sw.Tag)
			named := opcodeNamed(t)
			if named == nil {
				return true
			}
			required := opcodeConstants(named)
			covered := make(map[int64]bool)
			hasDefault, defaultPanics := false, false
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					defaultPanics = bodyPanics(p, cc.Body)
					continue
				}
				for _, expr := range cc.List {
					if tv, ok := p.Info.Types[expr]; ok && tv.Value != nil {
						if v, exact := constant.Int64Val(tv.Value); exact {
							covered[v] = true
						}
					}
				}
			}
			var missing []string
			for _, c := range required {
				if !covered[c.val] {
					missing = append(missing, c.name)
				}
			}
			if len(missing) == 0 {
				return true
			}
			if hasDefault && defaultPanics {
				return true
			}
			why := "and has no default"
			if hasDefault {
				why = "and its default does not panic"
			}
			out = append(out, p.finding("opcodeswitch", sw,
				"switch over %s misses %s %s; list every opcode or panic in default",
				named.Obj().Name(), strings.Join(missing, ", "), why))
			return true
		})
	}
	return out
}

// opcodeNamed returns t as the cell.OpCode named type, or nil.
func opcodeNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "OpCode" {
		return nil
	}
	if !strings.HasSuffix(obj.Pkg().Path(), "internal/cell") {
		return nil
	}
	return named
}

type opcodeConst struct {
	name string
	val  int64
}

// opcodeConstants enumerates the valid opcode constants of the type's
// package, sorted by value.
func opcodeConstants(named *types.Named) []opcodeConst {
	scope := named.Obj().Pkg().Scope()
	var out []opcodeConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact {
			continue
		}
		// OpNone (the invalid zero value) and counting sentinels are not
		// dispatchable opcodes.
		if v == 0 || strings.HasPrefix(name, "Num") {
			continue
		}
		out = append(out, opcodeConst{name: name, val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val < out[j].val })
	return out
}

// bodyPanics reports whether the statement list always reaches a loud
// failure: a panic call or log.Fatal*.
func bodyPanics(p *Package, body []ast.Stmt) bool {
	found := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBuiltin(p, call, "panic") || pkgFunc(p, call, "log", "Fatal", "Fatalf", "Fatalln") {
				found = true
			}
			return true
		})
	}
	return found
}
