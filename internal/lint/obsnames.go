package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"teva/internal/obs"
)

// ObsNames guards the metrics namespace: every Counter/Gauge/Histogram
// registration on an obs.Registry must pass a constant name matching
// obs.NameRE (lowercase dotted path). Constant names keep the Prometheus
// rendering stable — a name computed at run time could vary between runs
// and change the byte layout of the metrics snapshot, or collide with an
// existing family under a different schema. Phase paths are exempt: the
// set of phases a run executes is itself deterministic given the flags,
// and per-figure paths like "exp/"+name are derived by design.
func ObsNames() *Analyzer {
	return &Analyzer{
		Name: "obsnames",
		Doc:  "non-constant or malformed metric names at obs.Registry registration sites",
		Run:  runObsNames,
	}
}

// obsPkgPath is the import path of the observability package.
const obsPkgPath = "teva/internal/obs"

// obsRegistrationMethod reports whether the call is one of the checked
// registration methods on *obs.Registry (Phase and Time are exempt —
// phase paths may be dynamic).
func obsRegistrationMethod(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	tn, ok := named.Elem().(*types.Named)
	return ok && tn.Obj().Name() == "Registry"
}

func runObsNames(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !obsRegistrationMethod(p, call) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				out = append(out, p.finding("obsnames", arg,
					"metric name must be a constant expression so the metrics namespace is fixed at compile time"))
				return true
			}
			if name := constant.StringVal(tv.Value); !obs.NameRE.MatchString(name) {
				out = append(out, p.finding("obsnames",
					arg, "metric name %q does not match %s", name, obs.NameRE))
			}
			return true
		})
	}
	return out
}
