package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// timingsimPath is the package whose sample types are borrow-only.
const timingsimPath = "teva/internal/timingsim"

// SampleRetain flags timingsim Sample/WideSample pointers that are stored
// past the Run call that produced them. Every timing engine returns its
// one internal sample by pointer — the result is valid only until the
// engine's next Run — so appending it to a slice, assigning it to a
// struct field, map entry, or a variable declared outside the analysis
// loop, sending it on a channel, or returning a Run call's result aliases
// storage the next iteration silently overwrites. Callers that need to
// keep a result must deep-copy it first (Sample.Clone / WideSample.Clone),
// which is the only recognized escape: Clone results are fresh and may be
// retained freely.
func SampleRetain() *Analyzer {
	return &Analyzer{
		Name: "sampleretain",
		Doc:  "timingsim sample pointer retained past the engine's next Run",
		Run:  runSampleRetain,
	}
}

func runSampleRetain(p *Package) []Finding {
	if p.Path == timingsimPath {
		// The engines themselves own the samples they hand out.
		return nil
	}
	var out []Finding
	report := func(n ast.Node, how string) {
		out = append(out, p.finding("sampleretain",
			n, "timingsim sample %s outlives the engine's next Run; Clone() it (or copy the needed fields) before storing", how))
	}
	for _, file := range p.Files {
		// stack mirrors ast.Inspect's traversal so the innermost
		// enclosing loop of any node is at hand.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 1 {
					for _, arg := range n.Args[1:] {
						if retainsSample(p, arg) {
							report(arg, "appended to a slice")
						}
					}
				}
			case *ast.SendStmt:
				if retainsSample(p, n.Value) {
					report(n.Value, "sent on a channel")
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if retainsSample(p, el) {
						report(el, "stored in a composite literal")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if call, ok := res.(*ast.CallExpr); ok && isRunCall(call) && retainsSample(p, res) {
						report(res, "returned from a Run call")
					}
				}
			case *ast.AssignStmt:
				checkSampleAssign(p, n, stack, report)
			}
			return true
		})
	}
	return out
}

// checkSampleAssign flags sample-typed right-hand sides stored into
// fields, map/slice entries, or identifiers declared outside the
// innermost enclosing loop (a value that survives into the iteration
// that invalidates it).
func checkSampleAssign(p *Package, n *ast.AssignStmt, stack []ast.Node, report func(ast.Node, string)) {
	if len(n.Lhs) != len(n.Rhs) {
		// Tuple assignment from a multi-result call: no engine API
		// returns a sample in a tuple, so nothing to check.
		return
	}
	for i, rhs := range n.Rhs {
		if !retainsSample(p, rhs) {
			continue
		}
		switch lhs := n.Lhs[i].(type) {
		case *ast.SelectorExpr:
			report(n, "assigned to a struct field")
		case *ast.IndexExpr:
			report(n, "assigned to a map or slice element")
		case *ast.Ident:
			if n.Tok != token.ASSIGN {
				continue // := declares a loop-local borrow, the intended idiom
			}
			obj := p.Info.ObjectOf(lhs)
			loop := innermostLoop(stack)
			if obj != nil && loop != nil && (obj.Pos() < loop.Pos() || obj.Pos() > loop.End()) {
				report(n, "assigned to a variable declared outside the loop")
			}
		}
	}
}

// innermostLoop returns the deepest for/range statement on the traversal
// stack (excluding the node itself at the top), or nil.
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		}
	}
	return nil
}

// retainsSample reports whether the expression is a borrow-only timingsim
// sample pointer. Clone calls are the sanctioned escape hatch: their
// result is an independent copy.
func retainsSample(p *Package, e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Clone" {
			return false
		}
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name := named.Obj().Name()
	return named.Obj().Pkg().Path() == timingsimPath &&
		(name == "Sample" || name == "WideSample")
}

// isRunCall reports whether the call's method is named Run.
func isRunCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Run"
}
