package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// modulePath is the repo's module path; module-local imports are resolved
// by mapping "teva/x/y" onto "<root>/x/y" instead of shelling out to the
// go tool, keeping the loader deterministic and dependency-free.
const modulePath = "teva"

// Loader parses and type-checks packages of this module. Standard-library
// imports are type-checked from $GOROOT source via go/importer's "source"
// compiler; module-local imports are resolved recursively through the
// loader itself, so one Loader instance memoizes every package it touches.
type Loader struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root: root,
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*Package),
		errs: make(map[string]error),
	}
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves command-line package patterns ("./...", "./internal/...",
// "./cmd/teva-vet") into package directories relative to the module root.
// Directories named testdata (analyzer fixtures), hidden directories, and
// directories without non-test Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its module-derived import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := modulePath
	if rel != "." {
		path = modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, dir)
}

// CheckDir type-checks dir as if it had the given import path. Analyzer
// fixtures use this to exercise path-dependent rules (simpurity) from
// testdata directories.
func (l *Loader) CheckDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir)
}

// Import implements types.Importer so packages can reference each other
// and the standard library during type-checking.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
		p, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one directory, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	p, err := l.loadUncached(path, dir)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// RelFile rewrites a finding's file path relative to the module root for
// stable, machine-friendly output.
func (l *Loader) RelFile(f Finding) Finding {
	if rel, err := filepath.Rel(l.Root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
		f.File = filepath.ToSlash(rel)
	}
	return f
}
