package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
)

// modulePath is the repo's module path; module-local imports are resolved
// by mapping "teva/x/y" onto "<root>/x/y" instead of shelling out to the
// go tool, keeping the loader deterministic and dependency-free.
const modulePath = "teva"

// Loader parses and type-checks packages of this module. Standard-library
// imports are type-checked from $GOROOT source via go/importer's "source"
// compiler; module-local imports are resolved recursively through the
// loader itself, so one Loader instance memoizes every package it touches.
//
// The loader is safe for concurrent use: LoadAll type-checks independent
// packages in parallel, with per-path promises so a package shared by two
// load chains is checked exactly once. token.FileSet is concurrency-safe;
// the stdlib source importer is not, so stdMu serializes it (it memoizes
// internally, so the serialization only costs on first touch).
type Loader struct {
	// Root is the module root (the directory holding go.mod).
	Root string
	// Fset positions every file loaded through this loader.
	Fset *token.FileSet

	std   types.Importer
	stdMu sync.Mutex

	mu    sync.Mutex
	loads map[string]*loadPromise
}

// loadPromise is the memo entry for one import path: the first goroutine
// to request the path populates pkg/err and closes done; later requests
// wait on done and share the result.
type loadPromise struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:  root,
		Fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		loads: make(map[string]*loadPromise),
	}
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves command-line package patterns ("./...", "./internal/...",
// "./cmd/teva-vet") into package directories relative to the module root.
// Directories named testdata (analyzer fixtures), hidden directories, and
// directories without non-test Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir under its module-derived import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := modulePath
	if rel != "." {
		path = modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, dir, nil)
}

// LoadAll loads every directory with up to workers goroutines and returns
// the packages in the dirs' order (so output is deterministic regardless
// of scheduling). Shared imports are type-checked once. Per-directory
// failures are joined into one error; the successfully loaded packages
// are still returned alongside it.
func (l *Loader) LoadAll(dirs []string, workers int) ([]*Package, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkgs[i], errs[i] = l.LoadDir(dirs[i])
			}
		}()
	}
	for i := range dirs {
		next <- i
	}
	close(next)
	wg.Wait()
	out := pkgs[:0]
	for _, p := range pkgs {
		if p != nil {
			out = append(out, p)
		}
	}
	return out, errors.Join(errs...)
}

// Loaded returns every package this loader has successfully type-checked —
// requested directories and their transitive module-local imports — sorted
// by import path. This is the package set BuildProgram wants: summaries
// over imports included, so cross-package chains compose fully.
func (l *Loader) Loaded() []*Package {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Package
	for _, pr := range l.loads {
		select {
		case <-pr.done:
			if pr.pkg != nil {
				out = append(out, pr.pkg)
			}
		default: // still loading; caller is racing LoadAll, skip
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// CheckDir type-checks dir as if it had the given import path. Analyzer
// fixtures use this to exercise path-dependent rules (simpurity) from
// testdata directories.
func (l *Loader) CheckDir(dir, asPath string) (*Package, error) {
	return l.load(asPath, dir, nil)
}

// Import implements types.Importer so external callers can resolve paths
// through the loader; internal type-checking goes through chainImporter,
// which additionally carries the import chain for cycle detection.
func (l *Loader) Import(path string) (*types.Package, error) {
	return chainImporter{l: l}.Import(path)
}

// chainImporter resolves imports for one package's type-check, carrying
// the chain of in-progress import paths: a module-local cycle is reported
// as a named error instead of deadlocking two promise waits.
type chainImporter struct {
	l     *Loader
	chain []string
}

func (ci chainImporter) Import(path string) (*types.Package, error) {
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
		p, err := ci.l.load(path, filepath.Join(ci.l.Root, filepath.FromSlash(rel)), ci.chain)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	ci.l.stdMu.Lock()
	defer ci.l.stdMu.Unlock()
	return ci.l.std.Import(path)
}

// load parses and type-checks one directory, memoized by import path.
// Concurrent requests for the same path share one promise; the chain of
// import paths currently being loaded by this goroutine detects cycles.
func (l *Loader) load(path, dir string, chain []string) (*Package, error) {
	if slices.Contains(chain, path) {
		return nil, fmt.Errorf("lint: import cycle: %s -> %s", strings.Join(chain, " -> "), path)
	}
	l.mu.Lock()
	if pr, ok := l.loads[path]; ok {
		l.mu.Unlock()
		<-pr.done
		return pr.pkg, pr.err
	}
	pr := &loadPromise{done: make(chan struct{})}
	l.loads[path] = pr
	l.mu.Unlock()
	pr.pkg, pr.err = l.loadUncached(path, dir, append(chain, path))
	close(pr.done)
	return pr.pkg, pr.err
}

func (l *Loader) loadUncached(path, dir string, chain []string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	excluded := 0
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing package %s: %w", path, err)
		}
		if !fileIncluded(f) {
			excluded++
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: package %s in %s: all %d Go files excluded by build constraints",
			path, dir, excluded)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: chainImporter{l: l, chain: chain}}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// fileIncluded evaluates the file's build constraints (//go:build and
// legacy // +build lines above the package clause) against the host
// platform. Files constrained away are skipped like `go build` would —
// they may reference symbols that do not exist here and must not poison
// the type-check.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue // malformed constraint: include, let the checker complain
			}
			if !expr.Eval(buildTagSet) {
				return false
			}
		}
	}
	return true
}

// buildTagSet answers constraint tags for the host platform. Release tags
// (go1.x) are all considered satisfied: the toolchain building this
// binary is at least as new as any constraint in the repo.
func buildTagSet(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "illumos", "aix":
			return true
		}
		return false
	}
	return strings.HasPrefix(tag, "go1.")
}

// RelFile rewrites a finding's file path relative to the module root for
// stable, machine-friendly output.
func (l *Loader) RelFile(f Finding) Finding {
	if rel, err := filepath.Rel(l.Root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
		f.File = filepath.ToSlash(rel)
	}
	return f
}
