package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow checks cancellation threading in the worker-pool packages: a
// function that receives a context.Context must keep that context (or a
// context derived from it) flowing into everything it calls. PR 5 threads
// cancellation CLI → experiments → core → campaign → dta so the first
// hard error or -max-duration stops all remaining work promptly; one
// function that conjures context.Background() on that path silently
// severs the chain, and nothing times out until a chaos test notices.
//
// Three rules, on functions with a ctx parameter in the gated packages:
//
//  1. Calling context.Background()/context.TODO() is flagged — derive
//     from the parameter instead.
//  2. Passing a context other than one derived from the parameter to a
//     ctx-accepting callee is flagged (derived = the parameter, anything
//     assigned from it, and context.With* over a derived context —
//     including the ctx, cancel := context.WithCancel(ctx) form).
//  3. Calling a module function that transitively defaults to
//     context.Background() — core.EvaluateSingle-style ctx-less wrappers
//     — without handing it the context through any argument (spec
//     structs like campaign.Spec{Context: ctx} count) is flagged with
//     the defaulting chain as witness.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "ctx-receiving functions in cancellation-threaded packages must forward their context",
		Run:  runCtxFlow,
	}
}

// ctxflowPkgs are the cancellation-threaded package roots (subpackages
// included).
var ctxflowPkgs = []string{
	"teva/internal/experiments",
	"teva/internal/campaign",
	"teva/internal/dta",
	"teva/internal/core",
	"teva/internal/sta",
	"teva/internal/serve",
	"teva/internal/shard",
}

func ctxflowGated(path string) bool {
	for _, root := range ctxflowPkgs {
		if path == root || strings.HasPrefix(path, root+"/") {
			return true
		}
	}
	return false
}

func runCtxFlow(p *Package) []Finding {
	if !ctxflowGated(p.Path) {
		return nil
	}
	prog := program(p)
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			fi := prog.info(obj)
			if fi == nil || len(fi.CtxParams) == 0 {
				continue
			}
			out = append(out, ctxFlowFunc(p, prog, fi)...)
		}
	}
	return out
}

func ctxFlowFunc(p *Package, prog *Program, fi *FuncInfo) []Finding {
	derived := derivedCtxs(p, fi)
	reseeds := nilGuardReseeds(p, fi, derived)
	var out []Finding
	for _, c := range fi.Calls {
		// Rule 1: fresh contexts on a threaded path. The nil-guard idiom
		// `if ctx == nil { ctx = context.Background() }` re-seeds the
		// derived parameter itself and stays legal.
		if isCtxDefault(c) && !reseeds[c.Site] {
			out = append(out, p.finding("ctxflow", c.Site,
				"context.%s() inside a ctx-receiving function severs the cancellation chain; derive from ctx instead",
				c.Callee.Name()))
			continue
		}
		argHasDerived := false
		for _, arg := range c.Site.Args {
			if containsDerived(p, derived, arg) {
				argHasDerived = true
				break
			}
		}
		// Rule 2: explicit Context arguments must be derived.
		for _, arg := range c.Site.Args {
			t := p.Info.TypeOf(arg)
			if t == nil || !isContextType(t) || containsDerived(p, derived, arg) {
				continue
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isCtxDefault(resolveCall(p, inner)) {
				continue // the Background()/TODO() call itself is already flagged by rule 1
			}
			out = append(out, p.finding("ctxflow", arg,
				"call to %s passes a context not derived from the function's ctx parameter", c.Desc))
		}
		// Rule 3: ctx-less callees that default to Background().
		if callee := prog.info(c.Callee); callee != nil && callee.CtxDefaulting != nil &&
			len(callee.CtxParams) == 0 && !argHasDerived {
			out = append(out, p.finding("ctxflow", c.Site,
				"drops ctx: %s (forward ctx via its Ctx variant or a spec field)",
				callee.ctxChain(callee.CtxDefaulting)))
		}
	}
	return out
}

// nilGuardReseeds collects context.Background()/TODO() calls whose result
// is assigned straight onto an already-derived context variable — the
// defensive `if ctx == nil { ctx = context.Background() }` default. The
// chain is not severed: the variable keeps being the function's context.
func nilGuardReseeds(p *Package, fi *FuncInfo, derived map[types.Object]bool) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isCtxDefault(resolveCall(p, call)) {
			return true
		}
		if containsDerived(p, derived, as.Lhs[0]) {
			out[call] = true
		}
		return true
	})
	return out
}

// isCtxDefault reports whether the call is context.Background() or
// context.TODO().
func isCtxDefault(c Call) bool {
	return c.Callee != nil && c.Callee.Pkg() != nil && c.Callee.Pkg().Path() == "context" &&
		(c.Callee.Name() == "Background" || c.Callee.Name() == "TODO")
}

// derivedCtxs computes the function's derived-context objects: the ctx
// parameters, any Context-typed variable assigned from an expression
// containing a derived context (covers ctx2 := ctx and inner, cancel :=
// context.WithCancel(ctx)), and Context-typed parameters of nested
// function literals (the literal's caller owns that handoff).
func derivedCtxs(p *Package, fi *FuncInfo) map[types.Object]bool {
	derived := make(map[types.Object]bool, len(fi.CtxParams))
	for _, v := range fi.CtxParams {
		derived[v] = true
	}
	markIfCtx := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil || derived[obj] || !isContextType(obj.Type()) {
			return false
		}
		derived[obj] = true
		return true
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			for _, field := range fl.Type.Params.List {
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
						derived[obj] = true
					}
				}
			}
		}
		return true
	})
	for round := 0; round < 64; round++ {
		changed := false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Both forms — inner := context.WithCancel-style multi-assign
			// and one-to-one — reduce to: a Context-typed lhs is derived
			// when any rhs contains a derived context.
			rhsDerived := false
			for _, rhs := range as.Rhs {
				if containsDerived(p, derived, rhs) {
					rhsDerived = true
					break
				}
			}
			if !rhsDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				changed = markIfCtx(lhs) || changed
			}
			return true
		})
		if !changed {
			break
		}
	}
	return derived
}

// containsDerived reports whether the expression's subtree uses a derived
// context object (a bare derived ident, context.WithTimeout(ctx, d), or a
// spec literal with a Context: ctx field).
func containsDerived(p *Package, derived map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := p.Info.Uses[id]
			if obj == nil {
				obj = p.Info.Defs[id]
			}
			if obj != nil && derived[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
