package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// SimPurity forbids ambient nondeterminism inside the simulation packages
// (everything under internal/): math/rand imports, wall-clock reads
// (time.Now/Since/Until) and environment reads (os.Getenv & friends).
// Every random stream must come from the seedable internal/prng package
// and every configuration knob from explicit flags, or `-quick` output
// stops being byte-for-byte reproducible.
//
// Allowlisted: internal/prng (the sanctioned randomness source) and the
// cmd/ entry points (wall-clock progress reporting is their job). Test
// files are not loaded by the driver and are therefore exempt.
func SimPurity() *Analyzer {
	return &Analyzer{
		Name: "simpurity",
		Doc:  "math/rand, wall-clock or env reads inside internal/ simulation packages",
		Run:  runSimPurity,
	}
}

// simPurityExempt lists import-path suffixes exempt from the purity rule.
var simPurityExempt = []string{
	"internal/prng", // the seedable randomness source itself
}

func runSimPurity(p *Package) []Finding {
	if !strings.Contains(p.Path, "internal/") {
		return nil // cmd/, examples/ and the module root are fair game
	}
	for _, ex := range simPurityExempt {
		if strings.HasSuffix(p.Path, ex) || strings.Contains(p.Path, ex+"/") {
			return nil
		}
	}
	var out []Finding
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding("simpurity", imp,
					"import of %s in a simulation package; use the seedable internal/prng instead", path))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkgFunc(p, call, "time", "Now", "Since", "Until"):
				out = append(out, p.finding("simpurity", call,
					"wall-clock read in a simulation package makes runs time-dependent; thread timing through parameters"))
			case pkgFunc(p, call, "os", "Getenv", "LookupEnv", "Environ"):
				out = append(out, p.finding("simpurity", call,
					"environment read in a simulation package hides a configuration input; pass it explicitly"))
			}
			return true
		})
	}
	return out
}
