package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// writeFiles materializes a package directory in a temp dir.
func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadSyntaxError: a package with a parse error must produce an error
// naming the package, never a panic or a silently skipped file.
func TestLoadSyntaxError(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"bad.go": "package bad\n\nfunc broken( {\n",
	})
	l := newTestLoader(t)
	_, err := l.CheckDir(dir, "teva/internal/lintfixture/badsyntax")
	if err == nil {
		t.Fatal("CheckDir on a syntax-error package: want error, got nil")
	}
	if !strings.Contains(err.Error(), "badsyntax") {
		t.Errorf("error does not name the package: %v", err)
	}
}

// TestLoadBuildTagExclusion: a file constrained away for the host
// platform is skipped exactly like `go build` would skip it — even when
// it would not type-check — and the rest of the package still loads.
func TestLoadBuildTagExclusion(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"keep.go": "package tagged\n\n// Kept is compiled everywhere.\nfunc Kept() int { return 1 }\n",
		"skip.go": "//go:build sometag_that_never_matches\n\npackage tagged\n\nfunc Skipped() int { return undefinedSymbol }\n",
	})
	l := newTestLoader(t)
	p, err := l.CheckDir(dir, "teva/internal/lintfixture/tagged")
	if err != nil {
		t.Fatalf("CheckDir with an excluded file: %v", err)
	}
	if len(p.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (skip.go excluded by its constraint)", len(p.Files))
	}
}

// TestLoadAllFilesExcluded: when build constraints exclude every file the
// loader must say so by name instead of failing on a confusing
// no-such-symbol type error later.
func TestLoadAllFilesExcluded(t *testing.T) {
	dir := writeFiles(t, map[string]string{
		"only.go": "//go:build sometag_that_never_matches\n\npackage gone\n",
	})
	l := newTestLoader(t)
	_, err := l.CheckDir(dir, "teva/internal/lintfixture/gone")
	if err == nil {
		t.Fatal("CheckDir on an all-excluded package: want error, got nil")
	}
	if !strings.Contains(err.Error(), "excluded by build constraints") {
		t.Errorf("error does not name the cause: %v", err)
	}
}

// TestLoadImportCycle: a module-local import cycle is a named error (the
// chain importer detects it), not a promise deadlock.
func TestLoadImportCycle(t *testing.T) {
	l := newTestLoader(t)
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", "loader", "cycle", "a")
	_, err := l.LoadDir(dir)
	if err == nil {
		t.Fatal("LoadDir on an import cycle: want error, got nil")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}

// TestLoadAllOrderAndErrors: LoadAll returns packages in directory order
// regardless of worker scheduling, joins per-directory failures into the
// returned error, and still hands back the packages that did load.
func TestLoadAllOrderAndErrors(t *testing.T) {
	l := newTestLoader(t)
	good := []string{
		filepath.Join(l.Root, "internal", "guard"),
		filepath.Join(l.Root, "internal", "obs"),
		filepath.Join(l.Root, "internal", "prng"),
	}
	empty := t.TempDir() // no Go files: a named load error
	dirs := append(append([]string{}, good[:2]...), empty, good[2])
	pkgs, err := l.LoadAll(dirs, 4)
	if err == nil {
		t.Error("LoadAll with an empty directory: want joined error, got nil")
	}
	if len(pkgs) != len(good) {
		t.Fatalf("LoadAll returned %d packages, want %d", len(pkgs), len(good))
	}
	for i, dir := range good {
		if pkgs[i].Dir != dir {
			t.Errorf("pkgs[%d].Dir = %s, want %s (directory order must survive parallel load)", i, pkgs[i].Dir, dir)
		}
	}
	// Loaded() includes transitive module imports, sorted by path.
	loaded := l.Loaded()
	if len(loaded) < len(good) {
		t.Errorf("Loaded() returned %d packages, want >= %d", len(loaded), len(good))
	}
	for i := 1; i < len(loaded); i++ {
		if loaded[i-1].Path >= loaded[i].Path {
			t.Errorf("Loaded() not sorted: %s before %s", loaded[i-1].Path, loaded[i].Path)
		}
	}
}

// BenchmarkVetFullRepo is the CI wall-time smoke for the whole vet
// pipeline: expand, parallel type-check of every package, whole-program
// summary build, all analyzers. Run with -benchtime=1x in CI; a big
// regression here means vet is no longer cheap enough to block merges.
func BenchmarkVetFullRepo(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l := NewLoader(root)
		dirs, err := l.Expand([]string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadAll(dirs, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		prog := BuildProgram(l.Loaded())
		count := 0
		for _, p := range pkgs {
			p.Prog = prog
			count += len(RunAnalyzers(p, All()))
		}
		if count != 0 {
			b.Fatalf("repo not clean: %d findings", count)
		}
	}
}
