package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc proves the //teva:hotpath closure allocation-free at compile
// time, complementing the AllocsPerRun regression tests (which catch a
// regression only on the exact path a benchmark drives). A function
// marked //teva:hotpath — the DTA batch loop, the 64-lane timing kernels,
// the STA level walk — and everything it transitively calls through
// statically resolved module functions must not allocate in steady state.
//
// Because this is a proof rather than a bug hunt, the analyzer
// over-approximates: anything it cannot see through is a finding. That
// means direct allocation sites (append growth, make/new, heap composite
// literals, string building, slice↔string conversions, closures, go
// statements, interface boxing at call boundaries) and opaque calls
// (dynamic dispatch, unsummarized externals outside a small pure
// allowlist). Failure paths are exempt: anything inside a panic(...)
// argument runs at most once per crash.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "//teva:hotpath functions and their transitive callees must be allocation-free",
		Run:  runHotAlloc,
	}
}

// hotallocExternalOK lists external packages whose functions are known
// allocation-free (pure value math), so hot code may call them.
var hotallocExternalOK = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

func runHotAlloc(p *Package) []Finding {
	prog := program(p)
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			fi := prog.info(obj)
			if fi == nil || fi.HotFrom == nil {
				continue
			}
			root := fi.HotFrom.Display()
			where := "hot path"
			if fi.HotFrom != fi {
				where = "hot path rooted at " + root
			}
			for _, a := range fi.Allocs {
				out = append(out, p.finding("hotalloc", a.Node, "%s: %s", where, a.Desc))
			}
			for _, c := range fi.Calls {
				if c.InPanic {
					continue
				}
				if msg := opaqueCall(prog, c); msg != "" {
					out = append(out, p.finding("hotalloc", c.Site, "%s: %s", where, msg))
				}
			}
		}
	}
	return out
}

// opaqueCall reports why a call site breaks the allocation-freedom proof
// ("" when the callee is provable or structurally harmless).
func opaqueCall(prog *Program, c Call) string {
	switch c.Kind {
	case CallDynamic:
		return c.Desc + " cannot be proven allocation-free"
	case CallModule, CallExternal:
		if c.Callee == nil {
			// Builtins, conversions, inline literals: the allocating
			// subset is flagged structurally by collectAllocs.
			return ""
		}
		if prog.info(c.Callee) != nil {
			// Summarized module function: its own body is part of the hot
			// closure and reports its own sites.
			return ""
		}
		pkg := ""
		if c.Callee.Pkg() != nil {
			pkg = c.Callee.Pkg().Path()
		}
		if hotallocExternalOK[pkg] {
			return ""
		}
		return "calls unsummarized " + c.Desc
	}
	return ""
}

// allocBuiltins are the builtins that (may) allocate.
var allocBuiltins = map[string]string{
	"append": "append may grow the backing array",
	"make":   "make allocates",
	"new":    "new allocates",
}

// collectAllocs records the function's direct allocation sites (and
// constructs the proof cannot see through) into fi.Allocs. Shared with
// ipa.go's summary collection so the sites are gathered in the same pass
// discipline as calls and sources.
func collectAllocs(p *Package, body *ast.BlockStmt, fi *FuncInfo) {
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) {
		if underPanic(p, stack) {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			collectCallAllocs(p, n, fi)
		case *ast.CompositeLit:
			collectCompositeAlloc(p, n, stack, fi)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.Info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						fi.Allocs = append(fi.Allocs, AllocSite{Node: n, Desc: "string concatenation allocates"})
					}
				}
			}
		case *ast.FuncLit:
			fi.Allocs = append(fi.Allocs, AllocSite{Node: n, Desc: "func literal may allocate a closure"})
		case *ast.GoStmt:
			fi.Allocs = append(fi.Allocs, AllocSite{Node: n, Desc: "go statement allocates a goroutine"})
		}
	})
}

// collectCallAllocs handles the call-shaped allocation sites: allocating
// builtins, slice↔string conversions, and interface boxing of arguments.
func collectCallAllocs(p *Package, call *ast.CallExpr, fi *FuncInfo) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
			if desc, bad := allocBuiltins[id.Name]; bad {
				fi.Allocs = append(fi.Allocs, AllocSite{Node: call, Desc: desc})
			}
			return
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: only the slice↔string shapes copy their operand.
		if len(call.Args) == 1 && conversionAllocates(p.Info.TypeOf(call.Args[0]), tv.Type) {
			fi.Allocs = append(fi.Allocs, AllocSite{Node: call, Desc: "slice/string conversion copies its operand"})
		}
		return
	}
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && call.Ellipsis == token.NoPos && i >= params.Len()-1:
			if params.Len() > 0 {
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		at := p.Info.TypeOf(arg)
		if pt == nil || at == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) && !isUntypedNil(at) {
			fi.Allocs = append(fi.Allocs, AllocSite{Node: arg,
				Desc: "interface boxing of " + at.String() + " argument may allocate"})
		}
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		// The variadic slice itself is allocated per call.
		fi.Allocs = append(fi.Allocs, AllocSite{Node: call, Desc: "variadic call allocates its argument slice"})
	}
}

// collectCompositeAlloc flags heap-shaped composite literals: slice and
// map literals always allocate; &T{...} escapes to the heap in general.
// Plain value struct and array literals are assignment, not allocation.
func collectCompositeAlloc(p *Package, lit *ast.CompositeLit, stack []ast.Node, fi *FuncInfo) {
	t := p.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		fi.Allocs = append(fi.Allocs, AllocSite{Node: lit, Desc: "slice literal allocates"})
		return
	case *types.Map:
		fi.Allocs = append(fi.Allocs, AllocSite{Node: lit, Desc: "map literal allocates"})
		return
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			fi.Allocs = append(fi.Allocs, AllocSite{Node: u, Desc: "&composite literal may escape to the heap"})
		}
	}
}

// conversionAllocates reports whether converting from -> to copies the
// operand ([]byte(s), string(b), []rune(s), ...). Pointer, numeric and
// same-kind conversions are free.
func conversionAllocates(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	_, fromSlice := from.Underlying().(*types.Slice)
	_, toSlice := to.Underlying().(*types.Slice)
	return (isStr(from) && toSlice) || (fromSlice && isStr(to))
}

// isUntypedNil reports whether t is the untyped nil type (boxing nil into
// an interface stores no value).
func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// underPanic reports whether the node is inside a panic(...) argument —
// the crash path may allocate its message freely.
func underPanic(p *Package, stack []ast.Node) bool {
	for _, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(p, call, "panic") {
			return true
		}
	}
	return false
}
