package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural core of the suite: a whole-program call
// graph over every loaded package with one summary per function, plus the
// fixed-point propagation the detflow/ctxflow/hotalloc analyzers query.
//
// The single-function analyzers (maporder, simpurity, ...) inspect one
// package at a time; the summary engine instead reasons about paths that
// cross package boundaries — experiments → campaign → dta — the way
// FastFlip composes per-section injection results into whole-program
// outcomes. Summaries are collected in one AST pass per function and the
// propagation lattices are tiny (a boolean plus a witness edge), so
// whole-repo analysis stays in the tens of milliseconds.
//
// Two deliberate asymmetries, matching each analyzer's job:
//
//   - detflow UNDER-approximates through dynamic calls (interface methods,
//     func values do not propagate taint): it is a bug finder, and
//     assuming every dynamic call nondeterministic would drown real
//     source→sink paths in noise.
//   - hotalloc OVER-approximates (a dynamic or unsummarized call in a hot
//     path is itself a finding): it is a proof of allocation-freedom, and
//     a call it cannot see through is a hole in the proof.

// hotpathDirective marks a function whose transitive closure must be
// allocation-free (checked by the hotalloc analyzer).
const hotpathDirective = "teva:hotpath"

// CallKind classifies one call site for the summary consumers.
type CallKind uint8

const (
	// CallModule targets a function whose body the program has loaded
	// (summaries compose through it).
	CallModule CallKind = iota
	// CallExternal targets a function outside the loaded set (stdlib);
	// only name-based tables (sources, allowlists) apply.
	CallExternal
	// CallDynamic is an interface-method or func-value invocation: the
	// callee is unresolvable statically.
	CallDynamic
)

// Call is one resolved call site inside a function body.
type Call struct {
	Kind CallKind
	// Callee is the invoked function (its generic origin for instantiated
	// generics); nil for CallDynamic.
	Callee *types.Func
	// Site is the call expression (positions, arguments).
	Site *ast.CallExpr
	// Desc names the target for reporting ("timingsim.Runner.Run",
	// "func value f", "fmt.Sprintf").
	Desc string
	// InPanic is true when the call sits inside a panic(...) argument —
	// the failure path is exempt from hot-closure propagation and the
	// allocation proof (it runs at most once per crash).
	InPanic bool
}

// SourceUse is one direct nondeterminism source inside a function.
type SourceUse struct {
	Node ast.Node
	// Desc names the source ("time.Now", "map-range order escaping into
	// an appended slice", ...).
	Desc string
}

// AllocSite is one direct allocation (or unprovable construct) inside a
// function, for the hotalloc proof.
type AllocSite struct {
	Node ast.Node
	Desc string
}

// FuncInfo is the per-function summary.
type FuncInfo struct {
	Obj  *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls lists every call site in source order (nested literals
	// included — a closure body executes on behalf of its creator).
	Calls []Call
	// Sources are the function's direct nondeterminism sources.
	Sources []SourceUse
	// Allocs are the function's direct allocation sites.
	Allocs []AllocSite
	// Hotpath is true when the declaration carries //teva:hotpath.
	Hotpath bool
	// CtxParams holds the function's context.Context parameter objects.
	CtxParams []*types.Var
	// DefaultsCtx is true when the body calls context.Background() or
	// context.TODO() directly.
	DefaultsCtx bool

	// Computed by Resolve:

	// Taint, when non-nil, witnesses that the function (transitively)
	// reaches a nondeterminism source.
	Taint *Witness
	// HotFrom, when non-nil, names the //teva:hotpath root that makes this
	// function part of a hot closure.
	HotFrom *FuncInfo
	// HotVia is the call chain (exclusive of self) from HotFrom here.
	HotVia []*FuncInfo
	// CtxDefaulting, when non-nil, witnesses that this ctx-less function
	// transitively reaches a context.Background()/TODO() call through
	// ctx-less module functions only.
	CtxDefaulting *Witness
}

// Witness is one step of an interprocedural evidence chain: either a
// terminal fact observed directly in the function, or a call edge into the
// next function on the path.
type Witness struct {
	// Desc describes the terminal fact ("calls time.Now") when Via is nil,
	// or is empty for pure forwarding steps.
	Desc string
	// Pos locates the evidence (the source use or the call site).
	Pos token.Position
	// Via is the next function on the path (nil at the chain's end).
	Via *FuncInfo
}

// Chain renders the full evidence path starting at fn: "a → b: calls
// time.Now (file:line)".
func (f *FuncInfo) chain(w *Witness) string {
	var parts []string
	cur := f
	for w != nil {
		if w.Via == nil {
			return fmt.Sprintf("%s%s %s (%s:%d)", strings.Join(parts, ""), cur.Display(), w.Desc, shortFile(w.Pos.Filename), w.Pos.Line)
		}
		parts = append(parts, cur.Display()+" → ")
		cur = w.Via
		w = cur.Taint
		if len(parts) > 8 { // defensive bound; chains are acyclic in practice
			break
		}
	}
	return strings.Join(parts, "") + cur.Display()
}

// ctxChain renders the ctx-defaulting evidence path starting at fn.
func (f *FuncInfo) ctxChain(w *Witness) string {
	var parts []string
	cur := f
	for w != nil {
		if w.Via == nil {
			return fmt.Sprintf("%s%s %s", strings.Join(parts, ""), cur.Display(), w.Desc)
		}
		parts = append(parts, cur.Display()+" → ")
		cur = w.Via
		w = cur.CtxDefaulting
		if len(parts) > 8 {
			break
		}
	}
	return strings.Join(parts, "") + cur.Display()
}

// Display is the function's compact report name: "dta.AnalyzeStream" or
// "sta.passes.forward".
func (f *FuncInfo) Display() string { return displayFunc(f.Obj) }

func displayFunc(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
		if i := strings.LastIndex(pkg, "/"); i >= 0 {
			pkg = pkg[i+1:]
		}
		pkg += "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// shortFile trims a file path to its last two segments for chain rendering.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// Program is the whole-repo summary database shared by the
// interprocedural analyzers.
type Program struct {
	// Funcs maps each loaded function (generic origin) to its summary.
	Funcs map[*types.Func]*FuncInfo
	// order is the deterministic iteration order (package path, then
	// source position) every fixed point runs in, so witness chains are
	// byte-identical across runs and loader parallelism.
	order []*FuncInfo
}

// BuildProgram collects summaries for every function of the given packages
// and resolves the interprocedural fixed points. The packages are
// typically Loader.Loaded() — every package the driver touched, imports
// included — so cross-package chains compose fully.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{Funcs: make(map[*types.Func]*FuncInfo)}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, p := range sorted {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := collectFunc(p, fd, obj)
				prog.Funcs[obj] = fi
				prog.order = append(prog.order, fi)
			}
		}
	}
	prog.resolve()
	return prog
}

// info returns the summary for a callee, resolving generic instantiations
// to their origin declaration.
func (prog *Program) info(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return prog.Funcs[fn.Origin()]
}

// collectFunc builds one function's summary in a single AST pass.
func collectFunc(p *Package, fd *ast.FuncDecl, obj *types.Func) *FuncInfo {
	fi := &FuncInfo{Obj: obj, Pkg: p, Decl: fd}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotpathDirective) {
				fi.Hotpath = true
			}
		}
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			if v := sig.Params().At(i); isContextType(v.Type()) {
				fi.CtxParams = append(fi.CtxParams, v)
			}
		}
	}
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			call := resolveCall(p, n)
			call.InPanic = underPanic(p, stack)
			fi.Calls = append(fi.Calls, call)
			if src := sourceCall(call); src != "" {
				fi.Sources = append(fi.Sources, SourceUse{Node: n, Desc: src})
			}
			if call.Callee != nil && call.Callee.Pkg() != nil &&
				call.Callee.Pkg().Path() == "context" &&
				(call.Callee.Name() == "Background" || call.Callee.Name() == "TODO") {
				fi.DefaultsCtx = true
			}
		case *ast.RangeStmt:
			collectRangeSources(p, fd.Body, n, fi)
		}
	})
	collectAllocs(p, fd.Body, fi)
	return fi
}

// resolveCall classifies one call expression.
func resolveCall(p *Package, call *ast.CallExpr) Call {
	c := Call{Site: call, Kind: CallDynamic, Desc: "func value"}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fun].(type) {
		case *types.Func:
			return classifyStatic(p, call, obj)
		case *types.Builtin:
			return Call{Site: call, Kind: CallExternal, Desc: "builtin " + fun.Name,
				Callee: nil}
		case *types.TypeName:
			// Type conversion, handled by the alloc collector.
			return Call{Site: call, Kind: CallExternal, Desc: "conversion"}
		}
		if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
			return Call{Site: call, Kind: CallExternal, Desc: "conversion"}
		}
		c.Desc = "func value " + fun.Name
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if recvIsInterface(fn) {
					return Call{Site: call, Kind: CallDynamic, Callee: fn,
						Desc: "dynamic dispatch " + displayFunc(fn)}
				}
				return classifyStatic(p, call, fn)
			}
			c.Desc = "func-valued field " + fun.Sel.Name
			return c
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return classifyStatic(p, call, fn)
		}
		if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
			return Call{Site: call, Kind: CallExternal, Desc: "conversion"}
		}
		c.Desc = "func value " + fun.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			if fn, ok := p.Info.Uses[id].(*types.Func); ok {
				return classifyStatic(p, call, fn)
			}
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if fn, ok := p.Info.Uses[id].(*types.Func); ok {
				return classifyStatic(p, call, fn)
			}
		}
	case *ast.FuncLit:
		// Immediately invoked literal: its body was already walked as part
		// of this function, so the call itself is a no-op edge.
		return Call{Site: call, Kind: CallExternal, Desc: "inline literal"}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr:
		return Call{Site: call, Kind: CallExternal, Desc: "conversion"}
	}
	return c
}

// classifyStatic builds the edge for a statically resolved function.
// Module-vs-external is decided later by the Program (whether the origin
// has a summary), so here both get the callee attached.
func classifyStatic(p *Package, call *ast.CallExpr, fn *types.Func) Call {
	return Call{Site: call, Kind: CallModule, Callee: fn.Origin(), Desc: displayFunc(fn)}
}

// recvIsInterface reports whether fn is declared on an interface type
// (dynamic dispatch at every call site).
func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// nondetSources names the external calls treated as direct nondeterminism
// sources by detflow: wall-clock reads, environment reads, and the global
// (unseeded) math/rand streams.
var nondetSources = map[string]map[string]bool{
	"time":         {"Now": true, "Since": true, "Until": true},
	"os":           {"Getenv": true, "LookupEnv": true, "Environ": true},
	"math/rand":    nil, // nil: every function in the package
	"math/rand/v2": nil,
}

// sourceCall returns the source description when the call targets a
// nondeterminism source, else "".
func sourceCall(c Call) string {
	if c.Callee == nil || c.Callee.Pkg() == nil {
		return ""
	}
	names, ok := nondetSources[c.Callee.Pkg().Path()]
	if !ok {
		return ""
	}
	if names == nil || names[c.Callee.Name()] {
		return "calls " + c.Callee.Pkg().Path() + "." + c.Callee.Name()
	}
	return ""
}

// collectRangeSources records map-iteration order escaping the function
// and goroutine-unordered channel collection as nondeterminism sources.
func collectRangeSources(p *Package, body *ast.BlockStmt, rs *ast.RangeStmt, fi *FuncInfo) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		// Appending inside a map range without a later sort makes the
		// slice's element order depend on map iteration — if that slice
		// reaches a sink, the output is nondeterministic. The
		// collect-then-sort idiom stays clean.
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "append") || len(call.Args) == 0 {
				return true
			}
			if target := appendTarget(call); target != nil && !sortedLater(p, body, target) {
				fi.Sources = append(fi.Sources, SourceUse{Node: call,
					Desc: "appends in map-iteration order (unsorted)"})
			}
			return true
		})
	case *types.Chan:
		// Ranging a channel and appending yields completion order — only
		// nondeterministic when several goroutines feed the channel, which
		// the enclosing function launching goroutines approximates.
		if !launchesGoroutine(body) {
			return
		}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isBuiltin(p, call, "append") {
				fi.Sources = append(fi.Sources, SourceUse{Node: call,
					Desc: "collects goroutine results in channel-completion order"})
				return false
			}
			return true
		})
	}
}

// launchesGoroutine reports whether the body contains any go statement.
func launchesGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// resolve runs the interprocedural fixed points in deterministic order.
func (prog *Program) resolve() {
	prog.resolveTaint()
	prog.resolveHot()
	prog.resolveCtxDefaulting()
}

// resolveTaint computes the transitive nondeterminism taint: a function is
// tainted when it uses a source directly or calls a tainted module
// function. Dynamic calls do not propagate (see the file comment).
func (prog *Program) resolveTaint() {
	for _, fi := range prog.order {
		if len(fi.Sources) > 0 {
			s := fi.Sources[0]
			fi.Taint = &Witness{Desc: s.Desc, Pos: fi.Pkg.posn(s.Node)}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.order {
			if fi.Taint != nil {
				continue
			}
			for _, c := range fi.Calls {
				callee := prog.info(c.Callee)
				if callee == nil || callee.Taint == nil {
					continue
				}
				fi.Taint = &Witness{Pos: fi.Pkg.posn(c.Site), Via: callee}
				changed = true
				break
			}
		}
	}
}

// resolveHot computes the hot closure: every function reachable from a
// //teva:hotpath root through statically resolved module calls.
func (prog *Program) resolveHot() {
	var queue []*FuncInfo
	for _, fi := range prog.order {
		if fi.Hotpath {
			fi.HotFrom = fi
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, c := range fi.Calls {
			if c.InPanic {
				continue // crash-path callees are not hot
			}
			callee := prog.info(c.Callee)
			if callee == nil || callee.HotFrom != nil {
				continue
			}
			callee.HotFrom = fi.HotFrom
			callee.HotVia = append(append([]*FuncInfo(nil), fi.HotVia...), fi)
			queue = append(queue, callee)
		}
	}
}

// resolveCtxDefaulting marks ctx-less module functions that reach a
// context.Background()/TODO() call through ctx-less module functions only:
// calling one from a context-threaded function silently severs the
// cancellation chain (ctxflow reports those call sites).
func (prog *Program) resolveCtxDefaulting() {
	for _, fi := range prog.order {
		if len(fi.CtxParams) == 0 && fi.DefaultsCtx {
			fi.CtxDefaulting = &Witness{Desc: "calls context.Background()/TODO()"}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.order {
			if fi.CtxDefaulting != nil || len(fi.CtxParams) > 0 {
				continue
			}
			for _, c := range fi.Calls {
				callee := prog.info(c.Callee)
				if callee == nil || callee.CtxDefaulting == nil || len(callee.CtxParams) > 0 {
					continue
				}
				fi.CtxDefaulting = &Witness{Pos: fi.Pkg.posn(c.Site), Via: callee}
				changed = true
				break
			}
		}
	}
}

// program returns the package's whole-program summary database, building a
// single-package fallback when the driver did not attach one (fixture
// tests and direct RunAnalyzers callers attach the real thing).
func program(p *Package) *Program {
	if p.Prog == nil {
		p.Prog = BuildProgram([]*Package{p})
	}
	return p.Prog
}
