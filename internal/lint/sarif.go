package lint

import "encoding/json"

// SARIF 2.1.0 output: the minimal document CI annotation tooling (GitHub
// code scanning, sarif-viewer) consumes — one run, one rule per analyzer,
// one result per finding. Fields are emitted in struct order by
// encoding/json and findings arrive pre-sorted, so the document is
// byte-deterministic like every other artifact in the repo.

type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// SARIF renders the findings as a SARIF 2.1.0 document. The analyzers
// parameter populates the rule table (pass All() or the subset that ran);
// findings should already carry module-relative paths (Loader.RelFile).
func SARIF(analyzers []*Analyzer, findings []Finding) ([]byte, error) {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}}
	}
	results := make([]sarifResult, len(findings))
	for i, f := range findings {
		results[i] = sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
	}
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "teva-vet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
