// Package hotalloc exercises the hot-path allocation analyzer. The
// //teva:hotpath roots below and everything they reach must be
// allocation-free; each marked line carries exactly one violation.
// Markers assume only the hotalloc analyzer runs.
package hotalloc

import (
	"math"
	"strconv"
)

type point struct{ x int }

type stepper interface{ Step() }

// box has an interface parameter: passing a concrete value boxes it.
func box(v any) { _ = v }

// vararg allocates its argument slice at every non-spread call.
func vararg(vs ...int) int { return len(vs) }

// helper is pulled into the hot closure transitively: its allocation is
// reported at its own site, attributed to the root.
func helper(n int) int {
	tmp := make([]int, n) // want hotalloc
	return len(tmp)
}

// cold is identical to helper but unreachable from any hot root: silent.
func cold(n int) int {
	tmp := make([]int, n)
	return len(tmp)
}

// hot is a hot root exercising every direct violation class.
//
//teva:hotpath
func hot(buf []int, r stepper, name string, n int) int {
	buf = append(buf, n) // want hotalloc
	s := make([]int, 1)  // want hotalloc
	p := &point{x: n}    // want hotalloc
	sl := []int{n}       // want hotalloc
	r.Step()             // want hotalloc
	g := func() {}       // want hotalloc
	box(n)               // want hotalloc
	vararg(n, n)         // want hotalloc
	name = name + "!"    // want hotalloc
	_ = strconv.Itoa(n)  // want hotalloc
	go helper(n)         // want hotalloc
	_ = g
	_ = math.Abs(float64(n)) // pure allowlisted math: silent
	helper(n)                // transitive: the finding is inside helper
	if n < 0 {
		panic("hotalloc fixture: bad n " + name) // crash path: silent
	}
	return buf[0] + s[0] + p.x + sl[0] + len(name)
}

// warm shows the suppression hatch for a reviewed one-time allocation.
//
//teva:hotpath
func warm(n int) []int {
	return make([]int, n) //teva:allow hotalloc -- reviewed: one-time warm-up buffer, not steady state
}
