// Package ctxflow exercises the context-propagation analyzer. Loaded
// under a cancellation-threaded import path (internal/campaign here) the
// marked calls must be flagged; loaded anywhere else the same file must
// stay silent.
package ctxflow

import "context"

// spec mirrors campaign.Spec: cancellation rides a struct field.
type spec struct {
	Ctx context.Context
}

// holder mirrors experiments.Env: a context stored at construction time.
type holder struct {
	ctx context.Context
}

// work is a ctx-accepting callee.
func work(ctx context.Context) error { return ctx.Err() }

// legacy is the ctx-less wrapper shape (core.EvaluateSingle): it defaults
// to Background. Not flagged itself — it has no ctx to forward — but
// calling it from a ctx-receiving function is a severed chain.
func legacy() error { return work(context.Background()) }

// runSpec is the spec-threaded shape: ctx-less, defaulting only when the
// spec carries none.
func runSpec(s spec) error {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// fresh conjures a new root context on a threaded path.
func fresh(ctx context.Context) error {
	return work(context.Background()) // want ctxflow
}

// stored passes the constructor-time context instead of the parameter.
func (h *holder) stored(ctx context.Context) error {
	return work(h.ctx) // want ctxflow
}

// dropped calls the ctx-less defaulting wrapper without handing over ctx.
func dropped(ctx context.Context) error {
	return legacy() // want ctxflow
}

// forwarded is the required idiom.
func forwarded(ctx context.Context) error {
	return work(ctx)
}

// derived forwards a context derived from the parameter.
func derived(ctx context.Context) error {
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(inner)
}

// viaSpec hands ctx to a defaulting callee through a spec field: the
// chain is intact, so rule 3 stays silent.
func viaSpec(ctx context.Context) error {
	return runSpec(spec{Ctx: ctx})
}

// nilGuard re-seeds the parameter under the defensive nil default.
func nilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// allowed shows the suppression hatch for a reviewed exception.
func allowed(ctx context.Context) error {
	return work(context.Background()) //teva:allow ctxflow -- reviewed: audit write must survive cancellation
}
