// Package detflow exercises the determinism-taint analyzer. Loaded under
// an internal/ import path the marked sink arguments must be flagged;
// loaded under a cmd/ path the same file must stay silent (binaries own
// their progress output). Markers assume only the detflow analyzer runs:
// the wall-clock reads and unsorted map ranges here would also trip
// simpurity and maporder.
package detflow

import (
	"fmt"
	"io"
	"sort"
	"time"

	"teva/internal/artifact"
	"teva/internal/obs"
)

// stamp is a nondeterminism source one call away: callers of stamp are
// tainted through its summary, not by seeing time.Now themselves.
func stamp() int64 { return time.Now().UnixNano() }

// direct passes a source straight into a report writer.
func direct(w io.Writer) {
	fmt.Fprintln(w, time.Now()) // want detflow
}

// viaSummary reaches the source through a module call and a local.
func viaSummary(w io.Writer) {
	v := stamp()
	fmt.Fprintln(w, v) // want detflow
}

// viaPayload persists a tainted value as an artifact payload — the cache
// would never hit twice on the same inputs again.
func viaPayload(s *artifact.Store, k artifact.Key) error {
	payload := stamp()
	return s.Save(k, payload) // want detflow
}

// viaMetric feeds a tainted value into an obs counter: snapshots stop
// being byte-identical across runs.
func viaMetric(reg *obs.Registry) {
	reg.Counter("fixture.bad").Add(stamp()) // want detflow
}

// mapOrder appends in map-iteration order without sorting; the slice's
// order is nondeterministic when it reaches the writer.
func mapOrder(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintln(w, keys) // want detflow
}

// chanOrder reports completion-order collection reaching a writer through
// the collect summary.
func chanOrder(w io.Writer, n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() { ch <- i }()
	}
	results := collect(ch, n)
	fmt.Fprintln(w, results) // want detflow
}

// collect is the range-over-channel form of completion-order collection.
func collect(ch chan int, n int) []int {
	var out []int
	done := make(chan struct{})
	go func() { close(done) }()
	for v := range ch {
		out = append(out, v)
		if len(out) == n {
			break
		}
	}
	return out
}

// sortedOut is the clean collect-then-sort idiom: map order never escapes.
func sortedOut(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, keys)
}

// pure writes a deterministic value: no finding.
func pure(w io.Writer, seed int64) {
	fmt.Fprintln(w, seed*2654435761)
}

// allowed shows the suppression hatch for a reviewed exception.
func allowed(w io.Writer) {
	fmt.Fprintln(w, stamp()) //teva:allow detflow -- reviewed: debug-only diagnostics writer
}
