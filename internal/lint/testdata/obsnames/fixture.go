// Package obsnames exercises the obsnames analyzer. Registration sites
// (Counter/Gauge/Histogram) must pass constant names matching obs.NameRE;
// phase paths (Phase/Time) are exempt and may be derived at run time.
package obsnames

import "teva/internal/obs"

const goodName = "campaign.injections"

const badCase = "Campaign.Injections"

func registrations(r *obs.Registry, dyn string) {
	r.Counter(goodName)
	r.Counter("artifact.hits")
	r.Counter(goodName + ".sub") // constant concatenation is still constant
	r.Gauge("cfg.workers_2")
	r.Histogram("dta.latency", []float64{1, 2})

	r.Counter(badCase)                 // want obsnames
	r.Counter("9leading.digit")        // want obsnames
	r.Gauge("has-dash")                // want obsnames
	r.Histogram("UPPER", []float64{1}) // want obsnames
	r.Counter(dyn)                     // want obsnames
	r.Counter(goodName + "." + dyn)    // want obsnames

	// Phase paths are deliberately unchecked: the executed phase set is
	// deterministic given the flags even when paths are concatenated.
	sp := r.Phase("exp/" + dyn)
	sp.Phase(dyn).End()
	sp.End()
	r.Time("dyn/"+dyn, func() {})

	// A nil registry's no-op instruments go through the same sites; the
	// analyzer is purely syntactic about the receiver type.
	var nr *obs.Registry
	nr.Counter("still.checked_here")
}
