// Package fixture seeds floateq golden cases.
package fixture

// equalDirect is a true positive: exact equality between two independently
// computed floats.
func equalDirect(a, b float64) bool {
	return a == b // want floateq
}

// notEqualField is a true positive on struct fields too.
type point struct{ X, Y float64 }

func notEqualField(p, q point) bool {
	return p.X != q.Y // want floateq
}

// equalNonZeroConst is a true positive: comparing against a non-zero
// literal is still exact equality.
func equalNonZeroConst(a float64) bool {
	return a == 0.5 // want floateq
}

// zeroSentinel is a true negative: exact-zero sentinel checks are the one
// literal comparison that is well-defined.
func zeroSentinel(a float64) bool {
	return a == 0
}

// isNaN is a true negative: x != x is the canonical NaN test.
func isNaN(x float64) bool {
	return x != x
}

// intEqual is a true negative: integer equality is exact.
func intEqual(a, b int) bool {
	return a == b
}

// tieBreak is the suppressed case: a comparator where exact equality is
// the point.
func tieBreak(t1, t2 float64, s1, s2 uint64) bool {
	//teva:allow floateq -- tie-break comparator falls through to seq
	if t1 != t2 {
		return t1 < t2
	}
	return s1 < s2
}

var _ = []any{equalDirect, notEqualField, equalNonZeroConst, zeroSentinel, isNaN, intEqual, tieBreak}
