// Package fixture seeds maporder golden cases: true positives carry a
// `// want maporder` marker, true negatives carry nothing, and the
// suppressed case carries a //teva:allow directive.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

// appendUnsorted is a true positive: the slice is built in map-iteration
// order and never sorted.
func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// appendSorted is a true negative: the collect-keys-then-sort idiom.
func appendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendHelperSorted is a true negative: sorted through a local helper
// whose name marks it as a sort.
func appendHelperSorted(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sortInts(ks)
	return ks
}

func sortInts(xs []int) { sort.Ints(xs) }

// emit is a true positive: bytes leave in map-iteration order.
func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder
	}
}

// sumFloats is a true positive: float addition is not associative, so the
// rounded sum depends on iteration order.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want maporder
	}
	return s
}

// sumInts is a true negative: integer accumulation commutes exactly.
func sumInts(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// countInto is a true negative: building an unordered map from an
// unordered map is order-independent.
func countInto(m map[string]int) map[string]int {
	out := make(map[string]int)
	for k, v := range m {
		out[k] += v
	}
	return out
}

// emitAllowed is the suppressed case.
func emitAllowed(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //teva:allow maporder -- diagnostic dump, order irrelevant
	}
}

var _ = []any{appendUnsorted, appendSorted, appendHelperSorted, emit, sumFloats, sumInts, countInto, emitAllowed}
