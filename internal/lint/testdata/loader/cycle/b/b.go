// Package b is the other half of the deliberate import cycle with a.
package b

import "teva/internal/lint/testdata/loader/cycle/a"

// V closes the cycle through a.
var V = a.V + 1
