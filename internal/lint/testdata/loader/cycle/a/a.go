// Package a is half of a deliberate module-local import cycle: the
// loader must surface it as a named error, not deadlock two promise
// waits or recurse forever.
package a

import "teva/internal/lint/testdata/loader/cycle/b"

// V closes the cycle through b.
var V = b.V + 1
