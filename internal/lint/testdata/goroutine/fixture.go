// Package fixture seeds goroutinehygiene golden cases.
package fixture

import "sync"

// fireAndForget is a true positive: the goroutine has no join evidence in
// the spawning function.
func fireAndForget(work func()) {
	go work() // want goroutinehygiene
}

// waitGroupJoin is a true negative: classic wg.Add / go / wg.Wait.
func waitGroupJoin(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(j)
	}
	wg.Wait()
}

// channelJoin is a true negative: results are drained over a channel.
func channelJoin(jobs []func() int) []int {
	ch := make(chan int, len(jobs))
	for _, j := range jobs {
		go func(f func() int) { ch <- f() }(j)
	}
	out := make([]int, 0, len(jobs))
	for range jobs {
		out = append(out, <-ch)
	}
	return out
}

// detachedAllowed is the suppressed case: a deliberately detached
// background goroutine.
func detachedAllowed(loop func()) {
	go loop() //teva:allow goroutinehygiene -- fixture: daemon loop by design
}

var _ = []any{fireAndForget, waitGroupJoin, channelJoin, detachedAllowed}
