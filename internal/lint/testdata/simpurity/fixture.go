// Package fixture seeds simpurity golden cases. The test harness loads
// this directory twice: once under a teva/internal/... import path (where
// every marker below must fire) and once under a teva/cmd/... path (where
// the whole file must be clean, exercising the allowlist).
package fixture

import (
	"math/rand" // want simpurity
	"os"
	"time"
)

// wallClock is a true positive under internal/: nondeterministic time.
func wallClock() int64 {
	return time.Now().UnixNano() // want simpurity
}

// elapsed is a true positive under internal/: time.Since reads the clock.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want simpurity
}

// envKnob is a true positive under internal/: hidden environment input.
func envKnob() string {
	return os.Getenv("TEVA_SEED") // want simpurity
}

// seededDraw uses the flagged math/rand import (the import line carries
// the finding, not the call sites).
func seededDraw(r *rand.Rand) int {
	return r.Intn(16)
}

// formatDuration is a true negative: manipulating time values without
// reading the clock is fine.
func formatDuration(d time.Duration) string {
	return d.String()
}

// allowedClock is the suppressed case.
func allowedClock() time.Time {
	//teva:allow simpurity -- fixture: progress logging only
	return time.Now()
}

var _ = []any{wallClock, elapsed, envKnob, seededDraw, formatDuration, allowedClock}
