// Package panicbarrier exercises the panic-barrier analyzer. Loaded
// under a guarded import path (internal/experiments, internal/campaign
// or internal/sta) the raw go statements below must be flagged; loaded
// under any other path the same file must stay silent.
package panicbarrier

import (
	"sync"

	"teva/internal/guard"
)

// rawWorker joins its goroutine (so goroutinehygiene stays silent) but
// bypasses the recover barrier: a panic inside the literal kills the run.
func rawWorker(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want panicbarrier
		defer wg.Done()
	}()
	wg.Wait()
}

// rawCall launches a named function; the statement form does not matter.
func rawCall(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go fn() // want panicbarrier
	wg.Wait()
}

// guardedWorker is the required idiom: guard.Go recovers a worker panic
// into a labeled error on the sink.
func guardedWorker(wg *sync.WaitGroup, sink *guard.Sink) {
	guard.Go(wg, sink, "worker", func() error { return nil })
	wg.Wait()
}

// allowedEscape shows the suppression hatch for a reviewed exception.
func allowedEscape(done chan struct{}) {
	go close(done) //teva:allow panicbarrier -- reviewed: close cannot panic here
	<-done
}
