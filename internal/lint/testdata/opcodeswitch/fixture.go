// Package fixture seeds opcodeswitch golden cases against the real
// teva/internal/cell.OpCode type.
package fixture

import (
	"log"

	"teva/internal/cell"
)

// badSilentDefault is a true positive: OpMaj3 (among others) falls into a
// default that silently returns a value instead of panicking.
func badSilentDefault(op cell.OpCode, a, b bool) bool {
	switch op { // want opcodeswitch
	case cell.OpBuf:
		return a
	case cell.OpInv:
		return !a
	case cell.OpAnd2:
		return a && b
	default:
		return false
	}
}

// badNoDefault is a true positive: not exhaustive and no default at all.
func badNoDefault(op cell.OpCode, a bool) bool {
	switch op { // want opcodeswitch
	case cell.OpBuf:
		return a
	case cell.OpInv:
		return !a
	}
	return false
}

// goodPanickingDefault is a true negative: missing opcodes land in a
// panicking default, so nothing is silently absorbed.
func goodPanickingDefault(op cell.OpCode, a, b bool) bool {
	switch op {
	case cell.OpAnd2:
		return a && b
	case cell.OpOr2:
		return a || b
	default:
		panic("unhandled opcode " + op.String())
	}
}

// goodFatalDefault is a true negative: log.Fatalf counts as panicking.
func goodFatalDefault(op cell.OpCode) int {
	switch op {
	case cell.OpXor2:
		return 1
	default:
		log.Fatalf("unhandled opcode %v", op)
	}
	return 0
}

// goodExhaustive is a true negative: every declared opcode has a case, so
// no default is required.
func goodExhaustive(op cell.OpCode) string {
	switch op {
	case cell.OpBuf, cell.OpInv, cell.OpAnd2, cell.OpOr2, cell.OpNand2,
		cell.OpNor2, cell.OpXor2, cell.OpXnor2, cell.OpMux2, cell.OpAoi21,
		cell.OpOai21, cell.OpAnd3, cell.OpOr3, cell.OpNand3, cell.OpNor3,
		cell.OpXor3, cell.OpMaj3:
		return op.String()
	}
	return "invalid"
}

// suppressed is the suppressed case: same shape as badSilentDefault but
// explicitly allowed.
func suppressed(op cell.OpCode, a bool) bool {
	//teva:allow opcodeswitch -- fixture: deliberate partial decode
	switch op {
	case cell.OpBuf:
		return a
	default:
		return false
	}
}

var _ = []any{badSilentDefault, badNoDefault, goodPanickingDefault, goodFatalDefault, goodExhaustive, suppressed}
