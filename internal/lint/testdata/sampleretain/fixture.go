// Package fixture seeds sampleretain golden cases: timingsim sample
// pointers retained past the Run that produced them must fire; the
// borrow-within-the-iteration idiom and Clone escapes must stay silent.
package fixture

import (
	"teva/internal/timingsim"
)

type keeper struct {
	last *timingsim.Sample
	wide *timingsim.WideSample
}

// retainAppend is a true positive: the appended pointer aliases the
// engine's single sample, so every element ends up identical.
func retainAppend(r timingsim.Runner, prev, cur [][]bool) []*timingsim.Sample {
	var out []*timingsim.Sample
	for i := range prev {
		s := r.Run(prev[i], cur[i], 0, 1000)
		out = append(out, s) // want sampleretain
	}
	return out
}

// retainField is a true positive: a struct field outlives the loop.
func retainField(k *keeper, r timingsim.Runner, prev, cur [][]bool) {
	for i := range prev {
		k.last = r.Run(prev[i], cur[i], 0, 1000) // want sampleretain
	}
}

// retainWideField is a true positive on the 64-lane sample type.
func retainWideField(k *keeper, w *timingsim.WideFastSim, prev, cur [][]uint64) {
	for i := range prev {
		k.wide = w.Run(prev[i], cur[i], 0, 1000) // want sampleretain
	}
}

// retainMap is a true positive: map entries survive the iteration.
func retainMap(r timingsim.Runner, prev, cur [][]bool) map[int]*timingsim.Sample {
	m := make(map[int]*timingsim.Sample)
	for i := range prev {
		m[i] = r.Run(prev[i], cur[i], 0, 1000) // want sampleretain
	}
	return m
}

// retainOuterVar is a true positive: the variable is declared outside the
// loop, so the final iteration's alias escapes.
func retainOuterVar(r timingsim.Runner, prev, cur [][]bool) *timingsim.Sample {
	var last *timingsim.Sample
	for i := range prev {
		last = r.Run(prev[i], cur[i], 0, 1000) // want sampleretain
	}
	return last
}

// retainChannel is a true positive: the receiver sees overwritten data.
func retainChannel(r timingsim.Runner, prev, cur [][]bool, ch chan *timingsim.Sample) {
	for i := range prev {
		ch <- r.Run(prev[i], cur[i], 0, 1000) // want sampleretain
	}
}

// retainComposite is a true positive: the literal stores the alias.
func retainComposite(r timingsim.Runner, prev, cur []bool) keeper {
	return keeper{
		last: r.Run(prev, cur, 0, 1000), // want sampleretain
	}
}

// retainReturn is a true positive: returning the engine's sample hands
// the caller a pointer the next Run invalidates.
func retainReturn(r timingsim.Runner, prev, cur []bool) *timingsim.Sample {
	return r.Run(prev, cur, 0, 1000) // want sampleretain
}

// borrow is a true negative: the loop-local := borrow, consumed within
// the iteration, is the intended idiom.
func borrow(r timingsim.Runner, prev, cur [][]bool) float64 {
	worst := 0.0
	for i := range prev {
		s := r.Run(prev[i], cur[i], 0, 1000)
		if s.WorstArrival > worst {
			worst = s.WorstArrival
		}
	}
	return worst
}

// cloneEscape is a true negative: Clone results are independent copies
// and may be retained freely.
func cloneEscape(r timingsim.Runner, prev, cur [][]bool) []*timingsim.Sample {
	var out []*timingsim.Sample
	for i := range prev {
		out = append(out, r.Run(prev[i], cur[i], 0, 1000).Clone())
	}
	return out
}

// cloneWideEscape is a true negative on the 64-lane sample type.
func cloneWideEscape(k *keeper, w *timingsim.WideFastSim, prev, cur []uint64) {
	k.wide = w.Run(prev, cur, 0, 1000).Clone()
}

// copiedFields is a true negative: copying the needed slices detaches the
// data from the engine's storage.
func copiedFields(r timingsim.Runner, prev, cur [][]bool) [][]bool {
	var out [][]bool
	for i := range prev {
		s := r.Run(prev[i], cur[i], 0, 1000)
		out = append(out, append([]bool(nil), s.Captured...))
	}
	return out
}
