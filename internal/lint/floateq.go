package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq flags == and != between floating-point expressions. Exact float
// equality is almost always a rounding-sensitive bug in analysis code;
// comparisons should use a tolerance or compare the underlying integer
// encodings. Two idioms are recognized as legitimate and skipped:
//
//   - comparison against an exact-zero constant (a "never touched"
//     sentinel, e.g. `if avm == 0`), which is representable exactly;
//   - self-comparison `x != x` (the NaN test).
//
// Intentional exact comparisons (tie-break comparators in heaps/sorts,
// golden-value assertions) carry a //teva:allow floateq comment.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "exact ==/!= between floating-point expressions",
		Run:  runFloatEq,
	}
}

func runFloatEq(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if xt == nil || yt == nil || !isFloat(xt) && !isFloat(yt) {
				return true
			}
			// Untyped constants take the other side's type; require at
			// least one genuinely floating operand.
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x: the NaN test
			}
			out = append(out, p.finding("floateq", be,
				"exact floating-point %s comparison; use a tolerance, compare encodings, or //teva:allow floateq for tie-breaks", be.Op))
			return true
		})
	}
	return out
}

// isZeroConst reports whether the expression is a constant exact zero.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0 && tv.Value.Kind() != constant.Bool &&
		tv.Value.Kind() != constant.String
}

// sameExpr reports whether two expressions are structurally identical
// identifier/selector chains (enough to recognize the x != x NaN idiom).
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.ParenExpr:
		b, ok := b.(*ast.ParenExpr)
		return ok && sameExpr(a.X, b.X)
	}
	return false
}
