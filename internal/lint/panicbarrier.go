package lint

import (
	"go/ast"
	"strings"
)

// PanicBarrier flags raw `go` statements in the packages whose worker
// pools are required to survive a panicking task (internal/experiments,
// internal/campaign and internal/sta): every goroutine there must be
// launched through guard.Go, whose recover barrier converts a worker
// panic into an error labeled with the work's identity. A raw goroutine
// that panics instead kills the whole process mid-matrix — exactly the
// failure mode the fault-tolerant pipeline exists to prevent. The STA
// level workers are under the same rule: a panic in a level chunk must
// surface as the analysis's own panic after the join, not as a process
// abort from an anonymous goroutine.
func PanicBarrier() *Analyzer {
	return &Analyzer{
		Name: "panicbarrier",
		Doc:  "raw go statement where workers must route through guard.Go's recover barrier",
		Run:  runPanicBarrier,
	}
}

// panicBarrierPaths are the import-path fragments under the barrier
// requirement. internal/guard itself hosts the one legitimate raw `go`
// (inside guard.Go) and is exempt by not being listed.
var panicBarrierPaths = []string{
	"internal/experiments",
	"internal/campaign",
	"internal/sta",
	"internal/serve",
	"internal/shard",
}

func runPanicBarrier(p *Package) []Finding {
	guarded := false
	for _, frag := range panicBarrierPaths {
		if strings.Contains(p.Path, frag) {
			guarded = true
			break
		}
	}
	if !guarded {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				out = append(out, p.finding("panicbarrier", gs,
					"raw go statement in a panic-barrier package: launch workers through guard.Go so a panic becomes a labeled per-cell error instead of killing the run"))
			}
			return true
		})
	}
	return out
}
