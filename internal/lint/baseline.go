package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline support: a checked-in inventory of accepted findings so a new
// analyzer can land blocking in CI before the repo is fully swept.
// Baselined findings are suppressed at report time and burned down
// incrementally; stale entries (fixed findings still in the file) are
// reported so the inventory only shrinks.
//
// Entries are keyed by (analyzer, file, message) — deliberately without
// line numbers, so unrelated edits shifting a finding up or down do not
// resurrect it.

// baselineVersion is bumped when the entry key changes shape.
const baselineVersion = 1

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// baselineFile is the on-disk shape of a baseline.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// Baseline is a loaded set of accepted findings.
type Baseline struct {
	entries map[BaselineEntry]bool
}

// NewBaseline builds an empty baseline (nothing suppressed).
func NewBaseline() *Baseline { return &Baseline{entries: make(map[BaselineEntry]bool)} }

// LoadBaseline reads a baseline file. A missing or malformed file is an
// error: the CLI passes the flag explicitly, and silently running without
// the baseline would flip CI from incremental to all-or-nothing.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s has version %d, want %d", path, bf.Version, baselineVersion)
	}
	b := NewBaseline()
	for _, e := range bf.Entries {
		b.entries[e] = true
	}
	return b, nil
}

// WriteBaseline writes the findings as a baseline file, sorted and
// deduplicated so the file is byte-stable across runs.
func WriteBaseline(path string, findings []Finding) error {
	set := make(map[BaselineEntry]bool)
	for _, f := range findings {
		set[entryOf(f)] = true
	}
	entries := make([]BaselineEntry, 0, len(set))
	for e := range set {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Version: baselineVersion, Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func entryOf(f Finding) BaselineEntry {
	return BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
}

// Filter splits findings into fresh (reported) and baselined (suppressed)
// groups, preserving order.
func (b *Baseline) Filter(findings []Finding) (fresh []Finding, suppressed int) {
	for _, f := range findings {
		if b.entries[entryOf(f)] {
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// Stale returns baseline entries no finding matched — fixed findings whose
// entries should be deleted from the file — in stable order.
func (b *Baseline) Stale(findings []Finding) []BaselineEntry {
	seen := make(map[BaselineEntry]bool, len(findings))
	for _, f := range findings {
		seen[entryOf(f)] = true
	}
	var stale []BaselineEntry
	for e := range b.entries {
		if !seen[e] {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return stale
}

// Len reports the number of baseline entries.
func (b *Baseline) Len() int { return len(b.entries) }
