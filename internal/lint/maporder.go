package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body feeds ordered output — the
// canonical nondeterminism source behind the repo's byte-for-byte
// reproducibility guarantee. Three body shapes are reported:
//
//   - appending to a slice (unless the same function later passes that
//     slice to a sort call — the collect-keys-then-sort idiom is the
//     approved fix and is recognized as a true negative);
//   - writing to a writer/encoder (fmt.Fprint*, Write*, Encode, ...);
//   - accumulating floating-point values (+=, -=, *=, /=), whose result
//     depends on summation order.
//
// Integer accumulation and map-to-map counting are order-independent and
// are deliberately not flagged.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "range over a map feeding ordered output (slice append, writer, float accumulation)",
		Run:  runMapOrder,
	}
}

// emissionMethods are method names treated as ordered output sinks.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Encode": true, "Print": true, "Printf": true, "Println": true,
}

func runMapOrder(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return
			}
			scope := funcBody(enclosingFunc(stack))
			out = append(out, mapOrderBody(p, rs, scope)...)
		})
	}
	return out
}

// mapOrderBody reports the ordered-output sinks inside one map range body.
func mapOrderBody(p *Package, rs *ast.RangeStmt, scope *ast.BlockStmt) []Finding {
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs {
				// Nested map ranges report on their own.
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if t := p.Info.TypeOf(lhs); t != nil && isFloat(t) {
						out = append(out, p.finding("maporder", n,
							"float accumulation inside map range: iteration order changes the rounded result"))
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltin(p, n, "append") && len(n.Args) > 0 {
				if target := appendTarget(n); target != nil && !sortedLater(p, scope, target) {
					out = append(out, p.finding("maporder", n,
						"append inside map range builds a slice in map-iteration order; collect and sort, or iterate sorted keys"))
				}
			}
			if isEmissionCall(p, n) {
				out = append(out, p.finding("maporder", n,
					"write to an output sink inside map range emits in map-iteration order; iterate sorted keys instead"))
			}
		}
		return true
	})
	return out
}

// appendTarget returns the object of the slice variable grown by the
// append call's first argument, when resolvable.
func appendTarget(call *ast.CallExpr) *ast.Ident {
	return rootIdent(call.Args[0])
}

// sortedLater reports whether the function body passes the appended slice
// to a sort call — sort.*, slices.Sort*, or any helper whose name
// mentions sorting (the repo's sortInts/sortedKeys style).
func sortedLater(p *Package, scope *ast.BlockStmt, target *ast.Ident) bool {
	if scope == nil {
		return false
	}
	obj := p.Info.Uses[target]
	if obj == nil {
		obj = p.Info.Defs[target]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(scope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil {
				if ro := p.Info.Uses[root]; ro == obj {
					sorted = true
				}
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognizes sort.*/slices.Sort* calls and local helpers whose
// name contains "sort".
func isSortCall(p *Package, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sort", "slices":
				return strings.Contains(strings.ToLower(fun.Sel.Name), "sort") ||
					obj.Pkg().Path() == "sort"
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.IndexExpr: // generic instantiation, e.g. sortSlice[int](xs)
		if id, ok := fun.X.(*ast.Ident); ok {
			return strings.Contains(strings.ToLower(id.Name), "sort")
		}
	}
	return false
}

// isEmissionCall recognizes ordered-output calls: fmt print functions
// bound to a writer and Write/Encode-style methods.
func isEmissionCall(p *Package, call *ast.CallExpr) bool {
	if pkgFunc(p, call, "fmt", "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println") {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !emissionMethods[sel.Sel.Name] {
		return false
	}
	// Only method calls (a receiver selection), not package-qualified
	// functions from arbitrary packages.
	_, isMethod := p.Info.Selections[sel]
	return isMethod
}
