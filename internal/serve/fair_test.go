package serve

import (
	"net/http/httptest"
	"testing"
	"time"
)

// fairHarness drives a fairSched with labeled goroutine acquirers whose
// grant order is observable on a channel and whose slot hold time is
// controlled by the test.
type fairHarness struct {
	f       *fairSched
	grants  chan string
	release chan struct{}
}

func newFairHarness(slots int) *fairHarness {
	return &fairHarness{
		f:       newFairSched(slots),
		grants:  make(chan string, 32),
		release: make(chan struct{}),
	}
}

// acquire starts a labeled acquisition and waits until it is either
// granted or durably queued, so successive calls enqueue in program
// order (which is what makes grant-order assertions deterministic).
func (h *fairHarness) acquire(t *testing.T, label, client string) {
	t.Helper()
	h.f.mu.Lock()
	before := len(h.f.queues[client])
	h.f.mu.Unlock()
	go func() {
		if h.f.Acquire(client, nil) {
			h.grants <- label
			<-h.release
			h.f.Release()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case g := <-h.grants:
			h.grants <- g // not ours to consume; put it back for expect
			return
		default:
		}
		h.f.mu.Lock()
		queued := len(h.f.queues[client]) > before
		h.f.mu.Unlock()
		if queued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s: neither granted nor queued", label)
}

func (h *fairHarness) expect(t *testing.T, label string) {
	t.Helper()
	select {
	case got := <-h.grants:
		if got != label {
			t.Fatalf("grant order: got %s, want %s", got, label)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for grant %s", label)
	}
}

// TestFairSchedRoundRobinPreventsStarvation is the starvation
// regression test for -max-jobs queueing: with one run slot, client A
// stacking three jobs must not make client B's single job wait out A's
// whole backlog. Round-robin grant order is A1, B1, A2, A3 — under the
// old global-FIFO semaphore it was A1, A2, A3, B1.
func TestFairSchedRoundRobinPreventsStarvation(t *testing.T) {
	h := newFairHarness(1)
	h.acquire(t, "A1", "A")
	h.expect(t, "A1") // slot free: granted immediately
	h.acquire(t, "A2", "A")
	h.acquire(t, "A3", "A")
	h.acquire(t, "B1", "B")
	for _, want := range []string{"B1", "A2", "A3"} {
		h.release <- struct{}{}
		h.expect(t, want)
	}
	h.release <- struct{}{}
}

// TestFairSchedRotatesAcrossManyClients pins the rotation: three
// clients with two queued jobs each interleave A B C A B C rather than
// draining any one client's queue.
func TestFairSchedRotatesAcrossManyClients(t *testing.T) {
	h := newFairHarness(1)
	h.acquire(t, "hold", "holder")
	h.expect(t, "hold")
	for _, c := range []string{"A", "B", "C"} {
		h.acquire(t, c+"1", c)
	}
	for _, c := range []string{"A", "B", "C"} {
		h.acquire(t, c+"2", c)
	}
	for _, want := range []string{"A1", "B1", "C1", "A2", "B2", "C2"} {
		h.release <- struct{}{}
		h.expect(t, want)
	}
	h.release <- struct{}{}
}

// TestFairSchedCancelWhileQueued exercises the drain path: a canceled
// waiter leaves the queue without consuming a slot, and later clients
// still get served.
func TestFairSchedCancelWhileQueued(t *testing.T) {
	f := newFairSched(1)
	if !f.Acquire("A", nil) {
		t.Fatal("free slot must grant")
	}
	cancel := make(chan struct{})
	done := make(chan bool)
	go func() { done <- f.Acquire("B", cancel) }()
	waitFor(t, func() bool {
		f.mu.Lock()
		defer f.mu.Unlock()
		return len(f.queues["B"]) == 1
	})
	close(cancel)
	if got := <-done; got {
		t.Fatal("canceled Acquire returned true")
	}
	f.mu.Lock()
	if len(f.queues) != 0 {
		t.Fatalf("canceled waiter left queue residue: %v", f.queues)
	}
	f.mu.Unlock()
	// The slot A holds is unaffected; releasing it serves the next client.
	f.Release()
	if !f.Acquire("C", nil) {
		t.Fatal("slot lost after canceled waiter")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestClientIDExtraction pins how the HTTP layer names clients for the
// scheduler: explicit header first, then the peer host without port.
func TestClientIDExtraction(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/jobs", nil)
	r.RemoteAddr = "192.0.2.7:4321"
	if got := clientID(r); got != "192.0.2.7" {
		t.Fatalf("clientID from RemoteAddr = %q, want 192.0.2.7", got)
	}
	r.Header.Set("X-Teva-Client", "ci-runner-3")
	if got := clientID(r); got != "ci-runner-3" {
		t.Fatalf("clientID with header = %q, want ci-runner-3", got)
	}
	r.Header.Del("X-Teva-Client")
	r.RemoteAddr = "weird-no-port"
	if got := clientID(r); got != "weird-no-port" {
		t.Fatalf("clientID fallback = %q", got)
	}
}
