package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/experiments"
	"teva/internal/obs"
	"teva/internal/vscale"
	"teva/internal/workloads"
)

// runWant executes a spec through the experiment library directly — the
// path the CLI takes — returning the report bytes and CSV exports the
// served job must reproduce exactly.
func runWant(t *testing.T, sp Spec) ([]byte, map[string][]byte) {
	t.Helper()
	opts, cfg, err := sp.Effective()
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv(f, opts)
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := experiments.RunSuite(env, experiments.SuiteConfig{
		Experiments: sp.Experiments,
		CornerSpec:  sp.Corners,
		CSVDir:      dir,
	}, &buf); err != nil {
		t.Fatal(err)
	}
	csv, _, err := slurpCSVs(dir)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), csv
}

// submitSpec posts a raw spec body, returning the decoded submit
// response.
func submitSpec(t *testing.T, baseURL, body string, wantStatus int) submitBody {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("submit: status %d want %d (%s)", resp.StatusCode, wantStatus, data)
	}
	var sb submitBody
	if err := json.Unmarshal(data, &sb); err != nil {
		t.Fatalf("submit: bad body %q: %v", data, err)
	}
	return sb
}

// streamToEnd reads the job's NDJSON event stream until the terminal
// event, returning every event seen. The stream itself blocks until the
// job finishes, so this doubles as the wait primitive.
func streamToEnd(t *testing.T, baseURL, id string) []Event {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, data)
	}
	return data
}

// TestServeE2EFig7Parity is the tentpole contract test: the bytes a
// served job returns for a quick fig7 campaign are identical to what
// the CLI's suite runner prints for the same spec, and so are the CSV
// exports.
func TestServeE2EFig7Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (quick) campaign")
	}
	const body = `{"experiments":["fig7"],"quick":true}`
	sp, err := DecodeSpec(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, wantCSV := runWant(t, sp)

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sb := submitSpec(t, ts.URL, body, http.StatusAccepted)
	if sb.ID != sp.JobID() {
		t.Fatalf("job ID %s, want content address %s", sb.ID, sp.JobID())
	}
	if sb.Deduped {
		t.Fatal("first submission reported deduped")
	}
	evs := streamToEnd(t, ts.URL, sb.ID)
	var sawStart, sawExp bool
	for _, ev := range evs {
		if ev.Type == "start" && ev.Experiment == "fig7" {
			sawStart = true
		}
		if ev.Type == "experiment" && ev.Experiment == "fig7" && ev.Error == "" {
			sawExp = true
		}
	}
	if !sawStart || !sawExp {
		t.Fatalf("event stream missing fig7 start/experiment events: %+v", evs)
	}
	if last := evs[len(evs)-1]; last.Type != "done" {
		t.Fatalf("final event %+v, want done", last)
	}

	got := fetch(t, ts.URL+"/v1/jobs/"+sb.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Fatalf("served result differs from library run:\n--- served (%d bytes)\n%s\n--- want (%d bytes)\n%s",
			len(got), got, len(want), want)
	}

	var list struct {
		CSV []string `json:"csv"`
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/v1/jobs/"+sb.ID+"/csv"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.CSV) != len(wantCSV) {
		t.Fatalf("served %d CSVs %v, want %d", len(list.CSV), list.CSV, len(wantCSV))
	}
	for _, name := range list.CSV {
		gotCSV := fetch(t, ts.URL+"/v1/jobs/"+sb.ID+"/csv/"+name)
		if !bytes.Equal(gotCSV, wantCSV[name]) {
			t.Fatalf("CSV %s differs:\n--- served\n%s\n--- want\n%s", name, gotCSV, wantCSV[name])
		}
	}
}

// TestServeDedupeSingleFlight proves the single-flight contract: N
// concurrent submissions of the same spec share one job, the matrix is
// simulated exactly once (counted by the job's own campaign.cells
// counter), and every client downloads identical bytes.
func TestServeDedupeSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (quick) campaign")
	}
	const body = `{"experiments":["fig9"],"quick":true,"runs":2}`
	reg := obs.NewRegistry(nil)
	s := New(Config{Metrics: reg, MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 8
	results := make([]submitBody, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d (%s)", i, resp.StatusCode, data)
				return
			}
			if err := json.Unmarshal(data, &results[i]); err != nil {
				t.Errorf("client %d: bad body %q: %v", i, data, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var created int
	for i, sb := range results {
		if sb.ID != results[0].ID {
			t.Fatalf("client %d got job %s, client 0 got %s", i, sb.ID, results[0].ID)
		}
		if !sb.Deduped {
			created++
		}
	}
	if created != 1 {
		t.Fatalf("%d submissions created jobs, want exactly 1", created)
	}

	streamToEnd(t, ts.URL, results[0].ID)
	j := s.Job(results[0].ID)
	if st := j.State(); st != StateDone {
		t.Fatalf("job state %s (%s)", st, j.Err())
	}

	// Exactly one simulation per cell: the shared job's registry counted
	// each matrix cell once, even with 8 clients and 2 job slots.
	ws, err := workloads.All(workloads.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := int64(len(ws) * len(experiments.ModelKinds()) * len(vscale.PaperLevels()))
	if cells := j.reg.Snapshot().Counter(campaign.MetricCells); cells != wantCells {
		t.Fatalf("campaign.cells = %d, want %d (one simulation per cell)", cells, wantCells)
	}

	// Every client reads identical bytes.
	first := fetch(t, ts.URL+"/v1/jobs/"+results[0].ID+"/result")
	if len(first) == 0 {
		t.Fatal("empty result")
	}
	for i := 1; i < clients; i++ {
		if got := fetch(t, ts.URL+"/v1/jobs/"+results[0].ID+"/result"); !bytes.Equal(got, first) {
			t.Fatalf("download %d differs from first", i)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counter(MetricJobsSubmitted); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1", got)
	}
	if got := snap.Counter(MetricJobsDeduped); got != int64(clients-1) {
		t.Fatalf("jobs_deduped = %d, want %d", got, clients-1)
	}

	// Resubmitting after completion still dedupes onto the finished job:
	// no new simulation, cells counter unchanged.
	sb := submitSpec(t, ts.URL, body, http.StatusOK)
	if !sb.Deduped || sb.ID != results[0].ID {
		t.Fatalf("post-completion resubmit: %+v", sb)
	}
	if cells := j.reg.Snapshot().Counter(campaign.MetricCells); cells != wantCells {
		t.Fatalf("resubmit re-simulated: campaign.cells = %d, want %d", cells, wantCells)
	}
	if got := reg.Snapshot().Counter(MetricJobsSubmitted); got != 1 {
		t.Fatalf("jobs_submitted after resubmit = %d, want 1", got)
	}
}
