package serve

import "sync"

// fairSched allocates the server's job-run slots across clients with
// per-client round-robin instead of global FIFO. Each client gets a FIFO
// queue of waiters; free slots are handed to the front of the queue of
// the least-recently-served client, so one client submitting a deep
// backlog cannot starve another's single job behind -max-jobs: with one
// slot and client A queueing three jobs against client B's one, the
// grant order is A, B, A, A — not A, A, A, B.
type fairSched struct {
	mu     sync.Mutex
	slots  int                  // free run slots
	queues map[string][]*waiter // per-client FIFO of blocked Acquires
	// rot is the rotation: every client ever seen, front = most
	// deserving. A grant moves the client to the back; a never-served
	// client is inserted ahead of all served ones (it has consumed
	// nothing yet) but behind earlier never-served arrivals.
	rot    []string
	served map[string]bool
}

type waiter struct {
	ready   chan struct{} // closed on grant
	granted bool          // guarded by fairSched.mu
}

func newFairSched(slots int) *fairSched {
	if slots < 1 {
		slots = 1
	}
	return &fairSched{
		slots:  slots,
		queues: make(map[string][]*waiter),
		served: make(map[string]bool),
	}
}

// Acquire blocks until the client is granted a run slot or cancel is
// closed, reporting which. Every acquisition goes through the queue —
// even when a slot is free — so the rotation accounting is identical on
// the fast and slow paths.
func (f *fairSched) Acquire(client string, cancel <-chan struct{}) bool {
	w := &waiter{ready: make(chan struct{})}
	f.mu.Lock()
	f.enqueueLocked(client, w)
	f.dispatchLocked()
	f.mu.Unlock()

	select {
	case <-w.ready:
		return true
	case <-cancel:
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if w.granted {
		// The grant raced the cancel: hand the slot straight back so the
		// next waiter is not stranded.
		f.slots++
		f.dispatchLocked()
		return false
	}
	f.removeLocked(client, w)
	return false
}

// Release returns a slot and wakes the next waiter in rotation.
func (f *fairSched) Release() {
	f.mu.Lock()
	f.slots++
	f.dispatchLocked()
	f.mu.Unlock()
}

func (f *fairSched) enqueueLocked(client string, w *waiter) {
	f.queues[client] = append(f.queues[client], w)
	for _, c := range f.rot {
		if c == client {
			return
		}
	}
	// New client: slot it in ahead of every already-served client.
	at := len(f.rot)
	for i, c := range f.rot {
		if f.served[c] {
			at = i
			break
		}
	}
	f.rot = append(f.rot, "")
	copy(f.rot[at+1:], f.rot[at:])
	f.rot[at] = client
}

// dispatchLocked hands out free slots round-robin: scan the rotation
// front to back for a client with a queued waiter, grant, move that
// client to the back, repeat while slots remain.
func (f *fairSched) dispatchLocked() {
	for f.slots > 0 {
		idx := -1
		for i, c := range f.rot {
			if len(f.queues[c]) > 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		c := f.rot[idx]
		q := f.queues[c]
		w := q[0]
		if len(q) == 1 {
			delete(f.queues, c)
		} else {
			f.queues[c] = q[1:]
		}
		f.rot = append(append(f.rot[:idx:idx], f.rot[idx+1:]...), c)
		f.served[c] = true
		f.slots--
		w.granted = true
		close(w.ready)
	}
}

func (f *fairSched) removeLocked(client string, w *waiter) {
	q := f.queues[client]
	for i, x := range q {
		if x == w {
			f.queues[client] = append(q[:i:i], q[i+1:]...)
			if len(f.queues[client]) == 0 {
				delete(f.queues, client)
			}
			return
		}
	}
}
