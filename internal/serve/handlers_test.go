package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"teva/internal/obs"
)

// testServer builds a server with a synthetic job injected straight
// into the tables, so handler semantics are testable without running a
// single simulation.
func testServer(t *testing.T, sp Spec) (*Server, *Job, *httptest.Server) {
	t.Helper()
	sp.normalize()
	s := New(Config{})
	j := newJob(sp, obs.NewRegistry(nil))
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.byKey[sp.Key()] = j
	s.mu.Unlock()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, j, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d want %d (%s)", url, resp.StatusCode, wantStatus, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return m
}

func TestHandlersUnknownJob(t *testing.T) {
	_, _, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	for _, path := range []string{
		"/v1/jobs/nope", "/v1/jobs/nope/events", "/v1/jobs/nope/result",
		"/v1/jobs/nope/metrics", "/v1/jobs/nope/csv", "/v1/jobs/nope/csv/x.csv",
	} {
		m := getJSON(t, ts.URL+path, http.StatusNotFound)
		if m["error"] == "" {
			t.Fatalf("%s: missing error body", path)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/nope/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: status %d", resp.StatusCode)
	}
}

func TestHandlersBadSpec400(t *testing.T) {
	_, _, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	for _, body := range []string{
		`{"experiments": ["bogus"]}`,
		`{"timing": "turbo"}`,
		`{"timeout_factor": -3}`,
		`{nope`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d want 400", body, resp.StatusCode)
		}
	}
}

func TestHandlersResultBeforeDone409(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	m := getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/result", http.StatusConflict)
	if !strings.Contains(m["error"].(string), "not done") {
		t.Fatalf("409 body: %v", m)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/csv", http.StatusConflict)
}

func TestHandlersStatusAndList(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	m := getJSON(t, ts.URL+"/v1/jobs/"+j.ID, http.StatusOK)
	if m["id"] != j.ID || m["state"] != "pending" {
		t.Fatalf("status body: %v", m)
	}
	l := getJSON(t, ts.URL+"/v1/jobs", http.StatusOK)
	jobs := l["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("list: %v", l)
	}
	h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("healthz: %v", h)
	}
}

func TestHandlersCancelIdempotent(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs/"+j.ID+"/cancel", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel #%d: status %d", i, resp.StatusCode)
		}
	}
	if !j.Canceled() {
		t.Fatal("job not marked canceled")
	}
	// A canceled-then-finished job keeps its terminal state on further
	// cancels.
	j.finish(StateCanceled, "canceled before start", nil, nil, nil)
	j.Cancel()
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state after late cancel: %s", st)
	}
}

func TestHandlersDrainRejects503(t *testing.T) {
	s, _, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	s.Drain()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["table1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d want 503", resp.StatusCode)
	}
	h := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if h["status"] != "draining" {
		t.Fatalf("healthz while draining: %v", h)
	}
	snap := s.cfg.Metrics.Snapshot()
	_ = snap // server built without metrics: counters are nil-safe no-ops
}

func TestEventStreamNDJSONAndReplay(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	j.post(Event{Type: "start", Experiment: "table1"})
	j.post(Event{Type: "experiment", Experiment: "table1"})
	j.finish(StateDone, "", []byte("report\n"), map[string][]byte{"t1.csv": []byte("a,b\n")}, []string{"t1.csv"})

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	sc := bufio.NewScanner(resp.Body)
	lastSeq := -1
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("gap in event stream: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		types = append(types, ev.Type)
	}
	want := []string{"submitted", "start", "experiment", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event types %v want %v", types, want)
	}

	// Replay from an offset returns exactly the suffix.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data, _ := io.ReadAll(resp2.Body)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("replay from=2: %d lines (%q)", len(lines), data)
	}

	// Bad from parameter.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/events?from=x")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d", resp3.StatusCode)
	}
}

func TestEventStreamSSE(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	j.finish(StateDone, "", []byte("r\n"), nil, nil)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{"id: 0\n", "event: submitted\n", "data: {", "event: done\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("SSE stream missing %q:\n%s", want, text)
		}
	}
}

func TestResultAndCSVAfterDone(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	j.finish(StateDone, "", []byte("the report\n"),
		map[string][]byte{"t1.csv": []byte("a,b\n1,2\n")}, []string{"t1.csv"})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "the report\n" {
		t.Fatalf("result body %q", body)
	}
	m := getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/csv", http.StatusOK)
	names := m["csv"].([]any)
	if len(names) != 1 || names[0] != "t1.csv" {
		t.Fatalf("csv list: %v", m)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/csv/t1.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if string(csv) != "a,b\n1,2\n" {
		t.Fatalf("csv body %q", csv)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+j.ID+"/csv/other.csv", http.StatusNotFound)
}

func TestJobMetricsEndpoint(t *testing.T) {
	_, j, ts := testServer(t, Spec{Experiments: []string{"table1"}})
	j.reg.Counter("campaign.cells").Add(3)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), `"campaign.cells": 3`) {
		t.Fatalf("metrics JSON missing counter:\n%s", data)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(prom), "campaign_cells 3") {
		t.Fatalf("metrics prom missing counter:\n%s", prom)
	}
}
