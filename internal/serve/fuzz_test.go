package serve

import (
	"strings"
	"testing"
)

// FuzzDecodeSpec hammers the spec decoder with arbitrary bodies. The
// invariant: DecodeSpec either rejects with an error or returns a spec
// that is fully usable — it re-validates, has a content address, and
// translates into pipeline options — and it never panics. The decoder
// is the server's entire untrusted-input surface, so this is the fuzz
// target that matters.
func FuzzDecodeSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`null`,
		`{"experiments":["fig7"],"quick":true}`,
		`{"experiments":["all"],"full":true,"seed":99}`,
		`{"experiments":["fig9","fig7"],"runs":12,"workers":4,"timing":"exact"}`,
		`{"corners":"nominal,0.85,VR20","sta_screen":true,"screen_guardband":2.5,"screen_validate":true}`,
		`{"scale":"tiny","timeout_factor":3.5,"max_duration":"90s"}`,
		`{"experiments":[`,
		`{"experiments": "fig7"}`,
		`{"experiment": "fig7"}`,
		`{"runs": -1}`,
		`{"runs": 1e18}`,
		`{"seed": -1}`,
		`{"timeout_factor": -1}`,
		`{"timeout_factor": 1e999}`,
		`{"max_duration": "soon"}`,
		`{"timing": "turbo"}`,
		`{} {}`,
		`[]`,
		`"fig7"`,
		strings.Repeat(`{"experiments":["fig7",`, 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		sp, err := DecodeSpec(strings.NewReader(body))
		if err != nil {
			return // rejected is always acceptable; panicking is not
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v (body %q)", err, body)
		}
		if sp.JobID() == "" || sp.Key() == "" {
			t.Fatalf("accepted spec has no content address (body %q)", body)
		}
		if _, _, err := sp.Effective(); err != nil {
			t.Fatalf("accepted spec fails Effective: %v (body %q)", err, body)
		}
	})
}
