package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"teva/internal/chaos"
)

// TestServeChaosStoreResume runs the server over a fault-injecting
// artifact store and proves the storage faults never reach the client:
// responses stay byte-identical to a clean run, and a second server
// sharing the (abused) cache directory — the restart case — resumes and
// serves the same bytes again.
func TestServeChaosStoreResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (quick) campaigns")
	}
	const body = `{"experiments":["fig7"],"quick":true}`
	sp, err := DecodeSpec(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := runWant(t, sp)

	dir := t.TempDir()
	opts := chaos.Options{Seed: 0xC0FFEE, WriteFail: 0.1, ReadFail: 0.1, TornRead: 0.05, FlipRead: 0.05}

	store, err := chaos.OpenStore(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Artifacts: store})
	ts := httptest.NewServer(s.Handler())
	sb := submitSpec(t, ts.URL, body, http.StatusAccepted)
	streamToEnd(t, ts.URL, sb.ID)
	if j := s.Job(sb.ID); j.State() != StateDone {
		t.Fatalf("chaos run state %s (%s)", j.State(), j.Err())
	}
	got := fetch(t, ts.URL+"/v1/jobs/"+sb.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-store result differs from clean run:\n--- chaos\n%s\n--- want\n%s", got, want)
	}
	ts.Close()
	s.Drain()
	s.Wait()

	// Restart: a fresh server over the same abused cache directory. The
	// resubmitted spec is a new job in the new process; it reloads what
	// the torn/flipped store can prove intact and recomputes the rest,
	// landing on the same bytes.
	store2, err := chaos.OpenStore(dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Artifacts: store2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	sb2 := submitSpec(t, ts2.URL, body, http.StatusAccepted)
	if sb2.ID != sb.ID {
		t.Fatalf("restart changed the content address: %s vs %s", sb2.ID, sb.ID)
	}
	streamToEnd(t, ts2.URL, sb2.ID)
	got2 := fetch(t, ts2.URL+"/v1/jobs/"+sb2.ID+"/result")
	if !bytes.Equal(got2, want) {
		t.Fatal("post-restart result differs from clean run")
	}
	s2.Drain()
	s2.Wait()

	// The store must not leak temp files from failed/torn writes.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leaked temp file %s in artifact dir", e.Name())
		}
	}
}

// TestServeChaosCancelMidFlight cancels a job under a chaos store and
// requires a clean terminal state — never a hang, never a process
// abort.
func TestServeChaosCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (quick) campaign")
	}
	store, err := chaos.OpenStore(t.TempDir(), nil, chaos.Options{Seed: 7, WriteFail: 0.2, ReadFail: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Artifacts: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sb := submitSpec(t, ts.URL, `{"experiments":["fig9"],"quick":true,"runs":2}`, http.StatusAccepted)
	resp, err := http.Post(ts.URL+"/v1/jobs/"+sb.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	j := s.Job(sb.ID)
	<-j.Done()
	if st := j.State(); st != StateCanceled && st != StateDone {
		t.Fatalf("state after cancel: %s (%s)", st, j.Err())
	}
	s.Drain()
	s.Wait()
}
