package serve

import (
	"encoding/json"
	"sync"

	"teva/internal/experiments"
	"teva/internal/obs"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Pending (accepted, waiting for a run slot) → Running →
// one of Done (result available), Failed (hard error), or Canceled
// (drained by a cancel request or server shutdown; completed cells are
// in the artifact cache, so resubmitting the same spec resumes).
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry in a job's ordered event log. Seq is dense from 0,
// so a client that reconnects with ?from=N replays exactly the suffix
// it missed. Events carry no wall-clock timestamps: the log's content
// is a function of the spec and scheduling, and clients that need
// timing read the snapshot events' phase timers.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // submitted|start|experiment|progress|snapshot|done|failed|canceled
	// Experiment names the experiment for start/experiment events.
	Experiment string `json:"experiment,omitempty"`
	// Error carries the failure or interrupt reason.
	Error string `json:"error,omitempty"`
	// Cells* mirror experiments.Progress for progress events.
	CellsDone   int64 `json:"cells_done,omitempty"`
	CellsTotal  int64 `json:"cells_total,omitempty"`
	CellsCached int64 `json:"cells_cached,omitempty"`
	// Snapshot is the job registry's deterministic obs snapshot (JSON)
	// for snapshot events.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// Job is one accepted campaign-matrix request. Its identity is the
// spec's content address, so "the job" is shared by every client that
// submitted the same spec; the run context is rooted in the server, not
// any request, and a client disconnect never cancels it.
type Job struct {
	ID   string
	Spec Spec

	// reg is the job's own metrics registry; its snapshot is the
	// /metrics payload and the source of snapshot events.
	reg *obs.Registry

	mu       sync.Mutex
	state    State
	errText  string
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	env      *experiments.Env
	canceled bool
	result   []byte            // the deterministic report (state Done)
	csv      map[string][]byte // exported CSVs by file name (state Done)
	csvNames []string          // sorted CSV names (directory order, not map order)
	done     chan struct{}     // closed on any terminal state
}

func newJob(sp Spec, reg *obs.Registry) *Job {
	j := &Job{
		ID:     sp.JobID(),
		Spec:   sp,
		reg:    reg,
		state:  StatePending,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	j.post(Event{Type: "submitted"})
	return j
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure/interrupt reason ("" while healthy).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errText
}

// Done returns the channel closed when the job reaches a terminal
// state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the deterministic report bytes (nil until Done).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// CSV returns the named CSV export (nil when absent or not done).
func (j *Job) CSV(name string) []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.csv[name]
}

// CSVNames returns the sorted exported CSV file names. The list is
// recorded from the sorted directory listing at completion time, not
// re-derived from map iteration, so it is deterministic by
// construction.
func (j *Job) CSVNames() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.csvNames...)
}

// EventCount returns the number of events posted so far.
func (j *Job) EventCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Progress reports the running matrix counters; ok is false before the
// job's environment exists (pending, or failed before start).
func (j *Job) Progress() (experiments.Progress, bool) {
	j.mu.Lock()
	env := j.env
	j.mu.Unlock()
	if env == nil {
		return experiments.Progress{}, false
	}
	return env.Progress(), true
}

// post appends an event, assigning its sequence number and waking every
// subscriber.
func (j *Job) post(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// eventsSince returns the events at sequence >= from, a channel that is
// closed when more arrive, and whether the job is already terminal.
// Terminal with an empty slice means the subscriber has replayed
// everything and can stop.
func (j *Job) eventsSince(from int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.notify, j.state.Terminal()
}

// attach records the running job's environment so Cancel and server
// drain can reach it. Returns false when the job was canceled before it
// started — the runner must stop without touching the environment.
func (j *Job) attach(env *experiments.Env) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return false
	}
	j.env = env
	j.state = StateRunning
	return true
}

// Cancel requests a graceful stop: no new cells are dispatched,
// in-flight cells finish and land in the artifact cache (resubmitting
// the spec later resumes from them). Idempotent; a no-op once terminal.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.canceled = true
	env := j.env
	j.mu.Unlock()
	if env != nil {
		env.Drain()
	}
}

// Canceled reports whether a cancel was requested.
func (j *Job) Canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// finish moves the job to a terminal state, publishes the matching
// event, and releases waiters. result/csv are only retained for Done;
// csvNames must already be sorted. The state flip and the terminal
// event are appended under one lock so any observer that sees a
// terminal state also sees the complete event log — event streams rely
// on this to know when replay is finished.
func (j *Job) finish(state State, errText string, result []byte, csv map[string][]byte, csvNames []string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errText = errText
	if state == StateDone {
		j.result = result
		j.csv = csv
		j.csvNames = csvNames
	}
	j.events = append(j.events, Event{Seq: len(j.events), Type: string(state), Error: errText})
	close(j.notify)
	j.notify = make(chan struct{})
	close(j.done)
	j.mu.Unlock()
}
