// Package serve is the campaign-as-a-service layer: a stdlib net/http
// API that accepts experiment-matrix specs (JSON mirroring the
// teva-experiments flags), schedules them onto the shared experiment
// pipeline (experiments.Env over the bounded worker pool), dedupes
// identical submissions through the same provenance keying the artifact
// store uses, streams per-cell progress and obs snapshots over
// SSE/NDJSON, and serves final results as the byte-deterministic report
// the CLI prints.
//
// The determinism contract is the CLI's: for a given spec, the bytes of
// GET /v1/jobs/{id}/result are identical to `teva-experiments` stdout
// with the wall-clock lines removed (the same `grep -vE 'built
// in|completed in|total wall time'` filter CI applies), cold or warm
// cache, any worker count, any number of concurrent clients.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"teva/internal/campaign"
	"teva/internal/core"
	"teva/internal/dta"
	"teva/internal/experiments"
	"teva/internal/workloads"
)

// Spec is the wire form of one campaign-matrix request. Fields mirror
// the teva-experiments flags of the same name; zero values mean "the
// CLI default". Workers deliberately has no effect on results (the
// repo-wide worker-count-invariance contract), so it is accepted but
// excluded from the dedupe key: two clients asking for the same matrix
// at different parallelism share one computation.
type Spec struct {
	// Experiments selects experiments by name (experiments.Names, or
	// "all"). Empty means all.
	Experiments []string `json:"experiments,omitempty"`
	// Quick/Full apply the -quick/-full presets (quick wins, like the
	// CLI).
	Quick bool `json:"quick,omitempty"`
	Full  bool `json:"full,omitempty"`
	// Scale overrides the workload scale: tiny, small, full.
	Scale string `json:"scale,omitempty"`
	// Runs overrides injections per campaign cell.
	Runs int `json:"runs,omitempty"`
	// Seed is the master seed (0: the 0xF00D default).
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the job's parallelism (0: all cores). Not part of
	// the dedupe key — results are worker-count invariant.
	Workers int `json:"workers,omitempty"`
	// Timing selects the DTA engine: wide, fast, exact ("": wide).
	Timing string `json:"timing,omitempty"`
	// Corners is the -corners sweep spec ("": the default set).
	Corners string `json:"corners,omitempty"`
	// STAScreen/ScreenGuardband/ScreenValidate mirror -sta-screen and
	// friends.
	STAScreen       bool    `json:"sta_screen,omitempty"`
	ScreenGuardband float64 `json:"screen_guardband,omitempty"`
	ScreenValidate  bool    `json:"screen_validate,omitempty"`
	// TimeoutFactor is the campaign timeout budget as a multiple of the
	// golden cycle count (0: the 2.0 default).
	TimeoutFactor float64 `json:"timeout_factor,omitempty"`
	// MaxDuration is the job's wall-clock budget as a Go duration
	// string ("": unlimited).
	MaxDuration string `json:"max_duration,omitempty"`
}

// maxSpecBytes bounds a submitted spec body; real specs are a few
// hundred bytes.
const maxSpecBytes = 1 << 16

// DecodeSpec reads one JSON spec. Unknown fields, malformed JSON,
// trailing garbage, and out-of-range values are all errors — a request
// the decoder cannot fully account for must 400, never start a job.
func DecodeSpec(r io.Reader) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("serve: bad spec: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("serve: bad spec: trailing data after JSON object")
	}
	sp.normalize()
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// normalize rewrites the spec into its canonical form so that
// equivalent requests produce equal dedupe keys: experiment names are
// trimmed, deduplicated and sorted ("all" collapses the list), the seed
// default is made explicit (core.New maps 0 to 0xF00D), and the engine
// default is spelled out.
func (sp *Spec) normalize() {
	seen := map[string]bool{}
	var names []string
	for _, n := range sp.Experiments {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 || seen["all"] {
		names = []string{"all"}
	}
	sp.Experiments = names
	if sp.Seed == 0 {
		sp.Seed = 0xF00D
	}
	if sp.Timing == "" {
		sp.Timing = "wide"
	}
	if sp.Quick {
		sp.Full = false // quick wins, like the CLI's switch order
	}
}

// Validate rejects specs the pipeline would reject later (or worse,
// accept with garbage semantics), reusing the validation the execution
// layers own: dta.ParseEngine for the engine name,
// experiments.ParseCorners for the corner sweep,
// campaign.ValidateTimeoutFactor for the timeout budget.
func (sp Spec) Validate() error {
	for _, n := range sp.Experiments {
		if !experiments.KnownExperiment(n) {
			return fmt.Errorf("serve: unknown experiment %q", n)
		}
	}
	if _, err := dta.ParseEngine(sp.Timing); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if _, err := experiments.ParseCorners(sp.Corners); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if sp.Scale != "" {
		if _, err := workloads.ParseScale(sp.Scale); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if sp.Runs < 0 || sp.Runs > 1_000_000 {
		return fmt.Errorf("serve: runs %d out of range [0, 1000000]", sp.Runs)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("serve: negative workers %d", sp.Workers)
	}
	if sp.ScreenGuardband < 0 {
		return fmt.Errorf("serve: negative screen_guardband %v", sp.ScreenGuardband)
	}
	if err := campaign.ValidateTimeoutFactor(sp.TimeoutFactor); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if _, err := sp.maxDuration(); err != nil {
		return err
	}
	return nil
}

// maxDuration parses the wall-clock budget ("" means unlimited).
func (sp Spec) maxDuration() (time.Duration, error) {
	if sp.MaxDuration == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(sp.MaxDuration)
	if err != nil {
		return 0, fmt.Errorf("serve: bad max_duration: %w", err)
	}
	if d < 0 {
		return 0, fmt.Errorf("serve: negative max_duration %s", d)
	}
	return d, nil
}

// Key is the spec's canonical provenance string: every field that
// shapes result bytes, in a fixed order — the serving-layer analogue of
// the artifact store's cache keys. Workers and MaxDuration are
// excluded: worker count never changes results, and a wall-clock budget
// changes only whether a job finishes, not what a finished job returns.
func (sp Spec) Key() string {
	return fmt.Sprintf("exp=%s;quick=%v;full=%v;scale=%s;runs=%d;seed=%#x;timing=%s;corners=%s;screen=%v/%v/%v;tf=%v",
		strings.Join(sp.Experiments, "+"), sp.Quick, sp.Full, sp.Scale, sp.Runs,
		sp.Seed, sp.Timing, sp.Corners,
		sp.STAScreen, sp.ScreenGuardband, sp.ScreenValidate, sp.TimeoutFactor)
}

// JobID is the content-addressed job identifier: a short SHA-256 of the
// canonical key. Identical specs get identical IDs, which is what makes
// submission idempotent across clients and restarts.
func (sp Spec) JobID() string {
	sum := sha256.Sum256([]byte(sp.Key()))
	return "j" + hex.EncodeToString(sum[:8])
}

// Effective translates the spec into the pipeline's option/config pair,
// exactly as the CLI flag handling does (preset first, then explicit
// overrides). The caller attaches the shared artifact store and the
// job's metrics registry.
func (sp Spec) Effective() (experiments.Options, core.Config, error) {
	eng, err := dta.ParseEngine(sp.Timing)
	if err != nil {
		return experiments.Options{}, core.Config{}, err
	}
	opts := experiments.DefaultOptions()
	cfg := core.Config{
		Seed:          sp.Seed,
		Workers:       sp.Workers,
		Timing:        eng,
		TimeoutFactor: sp.TimeoutFactor,
		Screen: dta.ScreenConfig{
			Enabled:   sp.STAScreen,
			Guardband: sp.ScreenGuardband,
			Validate:  sp.ScreenValidate,
		},
	}
	experiments.ApplyPreset(sp.Quick, sp.Full, &opts, &cfg)
	if sp.Scale != "" {
		sc, err := workloads.ParseScale(sp.Scale)
		if err != nil {
			return experiments.Options{}, core.Config{}, err
		}
		opts.Scale = sc
	}
	if sp.Runs > 0 {
		opts.Runs = sp.Runs
	}
	return opts, cfg, nil
}
