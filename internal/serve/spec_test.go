package serve

import (
	"strings"
	"testing"
)

func TestSpecNormalizeCanonicalizes(t *testing.T) {
	a := Spec{Experiments: []string{"fig9", " fig7", "fig9", ""}, Seed: 0}
	a.normalize()
	b := Spec{Experiments: []string{"fig7", "fig9"}, Seed: 0xF00D, Timing: "wide"}
	b.normalize()
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs disagree:\n  %s\n  %s", a.Key(), b.Key())
	}
	if a.JobID() != b.JobID() {
		t.Fatalf("equivalent specs got different job IDs %s vs %s", a.JobID(), b.JobID())
	}
	if got := a.Experiments; len(got) != 2 || got[0] != "fig7" || got[1] != "fig9" {
		t.Fatalf("normalize kept %v", got)
	}
}

func TestSpecAllCollapses(t *testing.T) {
	a := Spec{}
	a.normalize()
	b := Spec{Experiments: []string{"all", "fig9"}}
	b.normalize()
	if a.Key() != b.Key() {
		t.Fatalf("empty selection and explicit all disagree:\n  %s\n  %s", a.Key(), b.Key())
	}
}

func TestSpecWorkersExcludedFromKey(t *testing.T) {
	a := Spec{Workers: 1}
	a.normalize()
	b := Spec{Workers: 16}
	b.normalize()
	if a.Key() != b.Key() {
		t.Fatalf("worker count leaked into the dedupe key (results are worker-invariant):\n  %s\n  %s",
			a.Key(), b.Key())
	}
	c := Spec{MaxDuration: "1h"}
	c.normalize()
	if a.Key() != c.Key() {
		t.Fatalf("max_duration leaked into the dedupe key:\n  %s\n  %s", a.Key(), c.Key())
	}
}

func TestSpecKeySeparatesResultShapingFields(t *testing.T) {
	base := Spec{}
	base.normalize()
	variants := []Spec{
		{Quick: true},
		{Seed: 99},
		{Runs: 7},
		{Scale: "tiny"},
		{Timing: "exact"},
		{Corners: "nominal,0.85"},
		{STAScreen: true},
		{ScreenGuardband: 3},
		{ScreenValidate: true, STAScreen: true},
		{TimeoutFactor: 4},
		{Experiments: []string{"fig7"}},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		v.normalize()
		if seen[v.Key()] {
			t.Fatalf("spec variant %+v aliases another spec's key %s", v, v.Key())
		}
		seen[v.Key()] = true
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed json", `{"experiments": [`, "bad spec"},
		{"unknown field", `{"experiment": "fig7"}`, "unknown field"},
		{"trailing data", `{"quick": true} {"quick": false}`, "trailing data"},
		{"wrong matrix type", `{"experiments": "fig7"}`, "bad spec"},
		{"unknown experiment", `{"experiments": ["fig7", "fig77"]}`, "unknown experiment"},
		{"unknown engine", `{"timing": "turbo"}`, "unknown timing engine"},
		{"unknown scale", `{"scale": "huge"}`, "unknown scale"},
		{"bad corners", `{"corners": "nominal,not-a-voltage"}`, "corner"},
		{"negative runs", `{"runs": -1}`, "runs"},
		{"huge runs", `{"runs": 100000000}`, "runs"},
		{"negative workers", `{"workers": -2}`, "workers"},
		{"negative timeout factor", `{"timeout_factor": -1}`, "TimeoutFactor"},
		{"infinite timeout factor", `{"timeout_factor": 1e999}`, "bad spec"},
		{"negative guardband", `{"screen_guardband": -0.5}`, "guardband"},
		{"bad max duration", `{"max_duration": "soon"}`, "max_duration"},
		{"negative max duration", `{"max_duration": "-5s"}`, "max_duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("DecodeSpec(%s) accepted", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("DecodeSpec(%s) error %q does not mention %q", tc.body, err, tc.wantErr)
			}
		})
	}
}

func TestDecodeSpecAccepts(t *testing.T) {
	sp, err := DecodeSpec(strings.NewReader(
		`{"experiments":["fig7"],"quick":true,"timing":"fast","corners":"nominal,VR20","runs":12,"max_duration":"90s"}`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 0xF00D {
		t.Fatalf("seed default not applied: %#x", sp.Seed)
	}
	opts, cfg, err := sp.Effective()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Runs != 12 {
		t.Fatalf("runs override lost: %d", opts.Runs)
	}
	if cfg.RandomOperands != 4000 {
		t.Fatalf("quick preset not applied: RandomOperands=%d", cfg.RandomOperands)
	}
	d, err := sp.maxDuration()
	if err != nil || d.Seconds() != 90 {
		t.Fatalf("max duration: %v %v", d, err)
	}
}
